// Poisson: use the MG benchmark's V-cycle machinery as a real solver.
//
// We place a dipole of point charges in a periodic 64^3 box — the same
// kind of right-hand side the MG benchmark's zran3 generates — and
// watch the residual fall by roughly an order of magnitude per V-cycle,
// which is the multigrid property the benchmark certifies.
package main

import (
	"fmt"
	"log"

	"npbgo"
	"npbgo/internal/grid"
)

func main() {
	const n = 64
	solver, err := npbgo.NewPoissonSolver(n, 2)
	if err != nil {
		log.Fatal(err)
	}

	// Right-hand side: +1 and -1 point charges (zero mean, so the
	// periodic problem is well posed).
	rhs := make([]float64, n*n*n)
	dim := grid.Dim3{N1: n, N2: n, N3: n}
	at := dim.At
	rhs[at(16, 16, 16)] = 1.0
	rhs[at(48, 48, 48)] = -1.0

	fmt.Println("cycles  residual L2 norm")
	for _, cycles := range []int{1, 2, 4, 8} {
		_, res, err := solver.Solve(rhs, cycles)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%6d  %.6e\n", cycles, res)
	}

	u, res, err := solver.Solve(rhs, 8)
	if err != nil {
		log.Fatal(err)
	}
	// The MG operator has a negative diagonal (a0 = -8/3), so the
	// potential is negative under the + charge and positive under the
	// - charge, with equal magnitudes by symmetry.
	fmt.Printf("\nfinal residual %.3e\n", res)
	fmt.Printf("u near +charge: %+.6f   u near -charge: %+.6f\n",
		u[at(16, 16, 16)], u[at(48, 48, 48)])
}
