// Spectral: solve the periodic 3-D heat equation u_t = alpha*Laplace(u)
// with the FT benchmark's FFT machinery, and check the numerical decay
// of a single Fourier mode against the exact analytic answer — the same
// forward-transform / spectral-evolution / inverse-transform pipeline
// the FT benchmark times.
package main

import (
	"fmt"
	"log"
	"math"
	"math/cmplx"

	"npbgo"
	"npbgo/internal/grid"
)

func main() {
	const (
		nx, ny, nz = 64, 32, 32
		alpha      = 0.05
		tFinal     = 0.10
	)
	ntotal := nx * ny * nz

	// Initial condition: a single mode sin(2*pi*3x)*cos(2*pi*2y), whose
	// exact solution decays as exp(-alpha*(2*pi)^2*(3^2+2^2)*t).
	data := make([]complex128, ntotal)
	dim := grid.Dim3{N1: nx, N2: ny, N3: nz}
	idx := dim.At
	for k := 0; k < nz; k++ {
		for j := 0; j < ny; j++ {
			for i := 0; i < nx; i++ {
				x := float64(i) / nx
				y := float64(j) / ny
				data[idx(i, j, k)] = complex(
					math.Sin(2*math.Pi*3*x)*math.Cos(2*math.Pi*2*y), 0)
			}
		}
	}
	before := data[idx(3, 5, 7)]

	// Forward transform, multiply each mode by its decay factor, and
	// transform back (dividing by ntotal to normalize the inverse).
	if err := npbgo.FFT3D(1, nx, ny, nz, data, 2); err != nil {
		log.Fatal(err)
	}
	for k := 0; k < nz; k++ {
		kk := signedFreq(k, nz)
		for j := 0; j < ny; j++ {
			jj := signedFreq(j, ny)
			for i := 0; i < nx; i++ {
				ii := signedFreq(i, nx)
				lambda := alpha * 4 * math.Pi * math.Pi * float64(ii*ii+jj*jj+kk*kk)
				data[idx(i, j, k)] *= complex(math.Exp(-lambda*tFinal), 0)
			}
		}
	}
	if err := npbgo.FFT3D(-1, nx, ny, nz, data, 2); err != nil {
		log.Fatal(err)
	}
	scale := complex(1/float64(ntotal), 0)
	for i := range data {
		data[i] *= scale
	}

	decayExact := math.Exp(-alpha * 4 * math.Pi * math.Pi * (9 + 4) * tFinal)
	got := data[idx(3, 5, 7)]
	want := before * complex(decayExact, 0)
	fmt.Printf("mode decay after t=%.2f: exact factor %.6f\n", tFinal, decayExact)
	fmt.Printf("sample point: before %+.6f  after %+.6f  expected %+.6f\n",
		real(before), real(got), real(want))
	if cmplx.Abs(got-want) > 1e-9 {
		log.Fatalf("spectral solution off by %g", cmplx.Abs(got-want))
	}
	fmt.Println("spectral heat solve matches the analytic decay: OK")
}

// signedFreq maps an FFT bin to its signed frequency.
func signedFreq(i, n int) int { return ((i + n/2) % n) - n/2 }
