// Quickstart: run one NAS Parallel Benchmark through the public API and
// print its verified result — the "hello world" of the suite.
package main

import (
	"fmt"
	"log"

	"npbgo"
)

func main() {
	// CG class S: estimate the smallest eigenvalue of a 1400x1400
	// random sparse symmetric matrix with a conjugate-gradient inverse
	// power iteration, on 2 worker threads.
	res, err := npbgo.Run(npbgo.Config{
		Benchmark: npbgo.CG,
		Class:     'S',
		Threads:   2,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res)
	fmt.Print(res.Detail)

	// The same API runs every benchmark of the suite:
	for _, b := range npbgo.Benchmarks() {
		r, err := npbgo.Run(npbgo.Config{Benchmark: b, Class: 'S', Threads: 1})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(r)
	}
}
