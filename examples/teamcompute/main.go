// Teamcompute: use the suite's master-worker team runtime directly for
// a custom computation, the way the translated benchmarks use it — a
// fixed pool of workers, static loop partitioning, barriers between
// phases and a deterministic reduction.
//
// The computation is a Jacobi relaxation of the 1-D Poisson equation
// -u” = f with a known solution, iterated until the error stops
// improving, followed by a parallel trapezoid-rule integration.
package main

import (
	"fmt"
	"math"

	"npbgo"
)

func main() {
	const n = 64
	const iters = 20000
	team := npbgo.NewTeam(4)
	defer team.Close()

	// -u'' = pi^2 sin(pi x) on (0,1), u(0)=u(1)=0, exact u = sin(pi x).
	h := 1.0 / float64(n)
	f := make([]float64, n+1)
	u := make([]float64, n+1)
	unew := make([]float64, n+1)
	for i := 0; i <= n; i++ {
		x := float64(i) * h
		f[i] = math.Pi * math.Pi * math.Sin(math.Pi*x)
	}

	// Jacobi sweeps: each worker owns a static block of the interior;
	// the barrier separates the read phase from the pointer swap.
	for it := 0; it < iters; it++ {
		team.Run(func(id int) {
			lo, hi := npbgo.BlockRange(1, n, team.Size(), id)
			for i := lo; i < hi; i++ {
				unew[i] = 0.5 * (u[i-1] + u[i+1] + h*h*f[i])
			}
		})
		u, unew = unew, u
	}

	// Deterministic parallel reduction: RMS error against the exact
	// solution.
	sum := team.ReduceSum(1, n, func(lo, hi int) float64 {
		s := 0.0
		for i := lo; i < hi; i++ {
			d := u[i] - math.Sin(math.Pi*float64(i)*h)
			s += d * d
		}
		return s
	})
	fmt.Printf("Jacobi after %d sweeps: RMS error %.6f\n", iters, math.Sqrt(sum/float64(n-1)))

	// Parallel trapezoid rule for the integral of the current solution;
	// exact integral of sin(pi x) over (0,1) is 2/pi.
	integral := team.ReduceSum(0, n, func(lo, hi int) float64 {
		s := 0.0
		for i := lo; i < hi; i++ {
			s += 0.5 * (u[i] + u[i+1]) * h
		}
		return s
	})
	fmt.Printf("integral of u: %.6f (2/pi = %.6f)\n", integral, 2/math.Pi)
}
