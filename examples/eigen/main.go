// Eigen: use the CG benchmark's inverse power method as a library to
// estimate the smallest eigenvalue of a matrix with a known spectrum —
// the 3-D discrete Dirichlet Laplacian on a 20^3 grid, whose
// eigenvalues are sums of 2 - 2 cos(k*pi/21) over the three axes.
package main

import (
	"fmt"
	"log"
	"math"

	"npbgo"
	"npbgo/internal/grid"
)

func main() {
	const m = 20 // grid points per side
	n := m * m * m

	// Assemble the 7-point Laplacian in CSR form.
	dim := grid.Dim3{N1: m, N2: m, N3: m}
	idx := dim.At
	rowstr := make([]int, n+1)
	var colidx []int
	var a []float64
	add := func(c int, v float64) {
		colidx = append(colidx, c)
		a = append(a, v)
	}
	for k := 0; k < m; k++ {
		for j := 0; j < m; j++ {
			for i := 0; i < m; i++ {
				row := idx(i, j, k)
				rowstr[row] = len(a)
				if k > 0 {
					add(idx(i, j, k-1), -1)
				}
				if j > 0 {
					add(idx(i, j-1, k), -1)
				}
				if i > 0 {
					add(idx(i-1, j, k), -1)
				}
				add(row, 6)
				if i < m-1 {
					add(idx(i+1, j, k), -1)
				}
				if j < m-1 {
					add(idx(i, j+1, k), -1)
				}
				if k < m-1 {
					add(idx(i, j, k+1), -1)
				}
			}
		}
	}
	rowstr[n] = len(a)

	res, err := npbgo.EstimateSmallestEigenvalue(n, rowstr, colidx, a, 0.0, 20, 2)
	if err != nil {
		log.Fatal(err)
	}
	exact := 3 * (2 - 2*math.Cos(math.Pi/float64(m+1)))
	fmt.Printf("estimate  %.12f\n", res.Eigenvalue)
	fmt.Printf("exact     %.12f\n", exact)
	fmt.Printf("rel.err   %.2e   (inner CG residual %.2e)\n",
		math.Abs(res.Eigenvalue-exact)/exact, res.Residual)
	for i, h := range res.History {
		if i%5 == 0 || i == len(res.History)-1 {
			fmt.Printf("  outer %2d: %.10f\n", i+1, h)
		}
	}
}
