// Command npbescape reports, baselines, and diffs the Go compiler's
// escape-analysis verdicts for the suite's hot packages. It is the
// compiler-precision leg of the allocation discipline: hotalloc flags
// allocation syntax in hot regions, allocgate measures steady-state
// allocations per iteration, and npbescape pins the full set of heap
// escapes the compiler proves, so a refactor that quietly turns a
// stack value into a heap allocation fails CI with a named site.
//
// Usage:
//
//	npbescape [-pkgs a,b,...]                 # print the npbgo/escape/v1 report
//	npbescape -o report.jsonl                 # write the report to a file
//	npbescape -update baseline.jsonl          # rewrite the committed baseline
//	npbescape -diff baseline.jsonl            # exit 1 on escapes not in the baseline
//
// Run it from the repository root: the compiler prints file paths
// relative to the working directory, and the baseline stores them
// verbatim. Reports diff by (package, file, message) with
// multiplicities, so line-number churn from unrelated edits does not
// invalidate the baseline — only a genuinely new escape (or a new
// occurrence of a known one) does. Escapes that disappear are reported
// as improvements; refresh the baseline with -update to lock them in.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/exec"
	"strings"

	"npbgo/internal/escape"
)

// defaultPkgs are the hot packages the report covers: the eight kernels
// plus the shared runtime (team), the solver core (nscore) they inline,
// and the counter sampler (perfcount) whose RegionStart/RegionEnd run
// inside every sampled region.
const defaultPkgs = "./internal/bt,./internal/cg,./internal/ep,./internal/ft," +
	"./internal/is,./internal/lu,./internal/mg,./internal/sp," +
	"./internal/team,./internal/nscore,./internal/perfcount"

func main() {
	var (
		pkgs   = flag.String("pkgs", defaultPkgs, "comma-separated packages to analyze")
		out    = flag.String("o", "", "write the report to this file instead of stdout")
		diff   = flag.String("diff", "", "compare against this baseline report; exit 1 on new escapes")
		update = flag.String("update", "", "write the report to this baseline file")
	)
	flag.Parse()
	if err := run(*pkgs, *out, *diff, *update); err != nil {
		fmt.Fprintln(os.Stderr, "npbescape:", err)
		os.Exit(1)
	}
}

func run(pkgs, out, diff, update string) error {
	if diff != "" && update != "" {
		return fmt.Errorf("-diff and -update are mutually exclusive")
	}
	recs, err := report(strings.Split(pkgs, ","))
	if err != nil {
		return err
	}

	switch {
	case update != "":
		f, err := os.Create(update)
		if err != nil {
			return err
		}
		if err := escape.Write(f, recs); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("npbescape: wrote %d escape records to %s\n", len(recs), update)
		return nil

	case diff != "":
		f, err := os.Open(diff)
		if err != nil {
			return err
		}
		base, err := escape.Read(f)
		f.Close()
		if err != nil {
			return err
		}
		added, removed := escape.Diff(base, recs)
		for _, d := range removed {
			fmt.Printf("npbescape: improved: %s no longer has %q (%d -> %d); refresh with -update %s\n",
				d.File, d.Msg, d.Base, d.Cur, diff)
		}
		for _, d := range added {
			fmt.Printf("npbescape: NEW ESCAPE %s:%d:%d: %s (%s; baseline %d, now %d)\n",
				d.Sample.File, d.Sample.Line, d.Sample.Col, d.Msg, d.Pkg, d.Base, d.Cur)
		}
		if len(added) > 0 {
			return fmt.Errorf("%d new escape site(s) versus %s", len(added), diff)
		}
		fmt.Printf("npbescape: %d escape records match %s\n", len(recs), diff)
		return nil

	default:
		w := os.Stdout
		if out != "" {
			f, err := os.Create(out)
			if err != nil {
				return err
			}
			defer f.Close()
			w = f
		}
		return escape.Write(w, recs)
	}
}

// report compiles pkgs with escape diagnostics enabled and parses the
// result. The build cache replays compiler diagnostics, so repeated
// runs are fast and byte-identical.
func report(pkgs []string) ([]escape.Record, error) {
	args := append([]string{"build", "-gcflags=-m=2"}, pkgs...)
	cmd := exec.Command("go", args...)
	cmd.Env = os.Environ()
	outBytes, err := cmd.CombinedOutput()
	output := string(outBytes)
	if err != nil {
		return nil, fmt.Errorf("go %s: %v\n%s", strings.Join(args, " "), err, output)
	}
	return escape.Parse(output), nil
}
