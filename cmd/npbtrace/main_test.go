package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"npbgo/internal/trace"
)

// writeTraceFile records a tiny two-worker timeline and exports it as
// a Chrome/Perfetto file.
func writeTraceFile(t *testing.T, dir, name string) string {
	t.Helper()
	tr := trace.New(2)
	tr.RegionBegin(1)
	tr.BlockBegin(0, 1)
	tr.BlockEnd(0, 1)
	tr.BlockBegin(1, 1)
	tr.BlockEnd(1, 1)
	tr.BarrierArrive(0, 1)
	tr.BarrierArrive(1, 1)
	tr.BarrierRelease(0, 1)
	tr.BarrierRelease(1, 1)
	tr.RegionEnd(1)
	path := filepath.Join(dir, name)
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Snapshot().WriteChrome(f, "test"); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestUsageErrors(t *testing.T) {
	for _, args := range [][]string{nil, {"validate"}, {"frobnicate", "x.json"}} {
		var out, errBuf bytes.Buffer
		if code := run(args, &out, &errBuf); code != 2 {
			t.Errorf("run(%v) = %d, want 2", args, code)
		}
		if !strings.Contains(errBuf.String(), "usage") {
			t.Errorf("run(%v) stderr: %q", args, errBuf.String())
		}
	}
}

func TestValidateGoodTrace(t *testing.T) {
	path := writeTraceFile(t, t.TempDir(), "good.trace.json")
	var out, errBuf bytes.Buffer
	if code := run([]string{"validate", path}, &out, &errBuf); code != 0 {
		t.Fatalf("exit %d: %s", code, errBuf.String())
	}
	s := out.String()
	if !strings.HasPrefix(s, "ok ") || !strings.Contains(s, "events") || !strings.Contains(s, "barrier flows") {
		t.Fatalf("validate line malformed: %q", s)
	}
}

func TestSummaryPrintsTracks(t *testing.T) {
	path := writeTraceFile(t, t.TempDir(), "good.trace.json")
	var out, errBuf bytes.Buffer
	if code := run([]string{"summary", path}, &out, &errBuf); code != 0 {
		t.Fatalf("exit %d: %s", code, errBuf.String())
	}
	s := out.String()
	if !strings.Contains(s, path+":") {
		t.Fatalf("summary missing file header:\n%s", s)
	}
	// Per-track rows: the two workers plus the master track.
	for _, want := range []string{"worker 0", "worker 1"} {
		if !strings.Contains(s, want) {
			t.Fatalf("summary missing %q:\n%s", want, s)
		}
	}
}

func TestMalformedTraceExitsOne(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.trace.json")
	if err := os.WriteFile(bad, []byte(`{"traceEvents": [{"ph":"B","name":"x","pid":1,"tid":1,"ts":5}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errBuf bytes.Buffer
	if code := run([]string{"validate", bad}, &out, &errBuf); code != 1 {
		t.Fatalf("malformed trace exit %d, want 1", code)
	}
	if !strings.Contains(errBuf.String(), bad) {
		t.Fatalf("error does not name the file: %s", errBuf.String())
	}
	if code := run([]string{"validate", filepath.Join(dir, "missing.json")}, &out, &errBuf); code != 1 {
		t.Fatal("missing file should exit 1")
	}
}
