// Command npbtrace inspects the Chrome/Perfetto trace files written by
// the execution tracer (npbsuite -trace, harness Options.TraceDir).
//
//	npbtrace validate file.trace.json...
//	npbtrace summary  file.trace.json...
//
// validate checks the structural invariants a trace viewer assumes and
// the tracer promises: every duration slice has a matching end and
// nests strictly within its track, per-track timestamps are monotonic,
// and every barrier flow arrow connects two recorded events. It prints
// one line per valid file and exits non-zero on the first malformed
// one, which is how CI gates the trace pipeline.
//
// summary prints the per-track event table of each file — a quick look
// at which workers recorded what without opening a viewer.
package main

import (
	"fmt"
	"io"
	"os"

	"npbgo/internal/trace"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entry point; it returns the process exit code.
func run(args []string, stdout, stderr io.Writer) int {
	if len(args) < 2 {
		fmt.Fprintf(stderr, "usage: npbtrace validate|summary file.trace.json...\n")
		return 2
	}
	mode := args[0]
	if mode != "validate" && mode != "summary" {
		fmt.Fprintf(stderr, "usage: npbtrace validate|summary file.trace.json...\n")
		return 2
	}
	for _, path := range args[1:] {
		data, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintf(stderr, "npbtrace: %v\n", err)
			return 1
		}
		info, err := trace.Validate(data)
		if err != nil {
			fmt.Fprintf(stderr, "npbtrace: %s: %v\n", path, err)
			return 1
		}
		switch mode {
		case "validate":
			fmt.Fprintf(stdout, "ok %s: %d events, %d tracks, %d barrier flows\n",
				path, info.Events, len(info.Tracks), info.FlowStarts)
		case "summary":
			fmt.Fprintf(stdout, "%s:\n%s\n", path, info)
		}
	}
	return 0
}
