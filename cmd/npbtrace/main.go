// Command npbtrace inspects the Chrome/Perfetto trace files written by
// the execution tracer (npbsuite -trace, harness Options.TraceDir).
//
//	npbtrace validate file.trace.json...
//	npbtrace summary  file.trace.json...
//
// validate checks the structural invariants a trace viewer assumes and
// the tracer promises: every duration slice has a matching end and
// nests strictly within its track, per-track timestamps are monotonic,
// and every barrier flow arrow connects two recorded events. It prints
// one line per valid file and exits non-zero on the first malformed
// one, which is how CI gates the trace pipeline.
//
// summary prints the per-track event table of each file — a quick look
// at which workers recorded what without opening a viewer.
package main

import (
	"fmt"
	"os"

	"npbgo/internal/trace"
)

func usage() {
	fmt.Fprintf(os.Stderr, "usage: npbtrace validate|summary file.trace.json...\n")
	os.Exit(2)
}

func main() {
	if len(os.Args) < 3 {
		usage()
	}
	mode := os.Args[1]
	if mode != "validate" && mode != "summary" {
		usage()
	}
	for _, path := range os.Args[2:] {
		data, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "npbtrace: %v\n", err)
			os.Exit(1)
		}
		info, err := trace.Validate(data)
		if err != nil {
			fmt.Fprintf(os.Stderr, "npbtrace: %s: %v\n", path, err)
			os.Exit(1)
		}
		switch mode {
		case "validate":
			fmt.Printf("ok %s: %d events, %d tracks, %d barrier flows\n",
				path, info.Events, len(info.Tracks), info.FlowStarts)
		case "summary":
			fmt.Printf("%s:\n%s\n", path, info)
		}
	}
}
