// Command npbsuite regenerates the paper's Tables 2-6 for this host:
// every benchmark of the suite at one class, timed serial and across a
// sweep of thread counts, with speedup and efficiency summaries.
//
//	npbsuite -class S -threads 1,2,4 -repeats 2 -timeout 5m -retries 1
//
// The paper ran the same sweep on five SMP machines; on a single host
// the machine axis collapses and one table is produced. The sweep
// degrades gracefully: a cell that panics, times out (-timeout) or
// fails verification is retried (-retries, exponential backoff) and, if
// it still fails, rendered as FAIL(reason) while the rest of the table
// is produced; npbsuite then exits non-zero at the end.
//
// -list-faults prints the registered fault injection site keys (the
// same registry the npblint faultsite analyzer checks) and exits.
//
// -obs turns on the observability layer: every cell collects per-worker
// runtime metrics (busy/barrier-wait time, imbalance ratio) and a phase
// profile, a metrics summary table is printed after the sweeps, one
// JSON line per cell is appended to -obs-jsonl, and -obs-listen serves
// live /debug/vars (expvar, including the per-run recorders under
// npb.obs) and /debug/pprof on a local port for the duration of the
// sweep.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"npbgo"
	"npbgo/internal/fault"
	"npbgo/internal/harness"
	"npbgo/internal/obs"
)

func main() {
	class := flag.String("class", "S", "problem class: S W A B C")
	threadsFlag := flag.String("threads", "1,2,4", "comma-separated thread counts")
	benchFlag := flag.String("bench", "", "comma-separated benchmark subset (default: all)")
	repeats := flag.Int("repeats", 1, "repetitions per cell (best time kept)")
	warmup := flag.Bool("warmup", false, "apply the CG warmup fix of §5.2")
	timeout := flag.Duration("timeout", 0, "per-run deadline, e.g. 5m (0 = unbounded)")
	retries := flag.Int("retries", 0, "retries per failed run, with exponential backoff")
	obsFlag := flag.Bool("obs", false, "collect runtime metrics per cell and print the metrics summary")
	obsListen := flag.String("obs-listen", "127.0.0.1:6060", "with -obs: address for the expvar/pprof endpoint (empty = no endpoint)")
	obsJSONL := flag.String("obs-jsonl", "npb-metrics.jsonl", "with -obs: per-cell metrics JSONL file, appended (empty = no file)")
	listFaults := flag.Bool("list-faults", false, "print the registered fault injection site keys and exit")
	flag.Parse()

	if *listFaults {
		for _, site := range fault.Sites() {
			fmt.Println(site)
		}
		return
	}

	var threads []int
	for _, tok := range strings.Split(*threadsFlag, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(tok))
		if err != nil || n < 1 {
			fmt.Fprintf(os.Stderr, "npbsuite: bad thread count %q\n", tok)
			os.Exit(2)
		}
		threads = append(threads, n)
	}
	benches := npbgo.Benchmarks()
	if *benchFlag != "" {
		benches = nil
		for _, tok := range strings.Split(*benchFlag, ",") {
			benches = append(benches, npbgo.Benchmark(strings.ToUpper(strings.TrimSpace(tok))))
		}
	}
	cl := strings.ToUpper(*class)[0]

	fmt.Printf("NPB-Go suite sweep: class %c, GOMAXPROCS=%d, host CPUs=%d\n\n",
		cl, runtime.GOMAXPROCS(0), runtime.NumCPU())

	opt := harness.Options{
		Warmup:  *warmup,
		Repeats: *repeats,
		Timeout: *timeout,
		Retries: *retries,
		Backoff: 500 * time.Millisecond,
		Obs:     *obsFlag,
	}
	if *obsFlag {
		if *obsListen != "" {
			bound, shutdown, err := obs.Serve(*obsListen)
			if err != nil {
				fmt.Fprintf(os.Stderr, "npbsuite: obs endpoint: %v\n", err)
				os.Exit(2)
			}
			defer shutdown()
			fmt.Printf("obs: live metrics at http://%s/debug/vars, profiles at http://%s/debug/pprof/\n", bound, bound)
		}
		if *obsJSONL != "" {
			f, err := os.OpenFile(*obsJSONL, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				fmt.Fprintf(os.Stderr, "npbsuite: obs jsonl: %v\n", err)
				os.Exit(2)
			}
			defer f.Close()
			opt.Metrics = f
			fmt.Printf("obs: per-cell metrics appended to %s\n", *obsJSONL)
		}
		fmt.Println()
	}
	var sweeps []harness.Sweep
	failed := false
	for _, b := range benches {
		sw, err := harness.RunSweepOpts(b, cl, threads, opt)
		if err != nil {
			// A failed cell does not abort the suite: report it, keep the
			// partial sweep, and finish the table.
			fmt.Fprintf(os.Stderr, "npbsuite: %s: %v\n", b, err)
			failed = true
		}
		sweeps = append(sweeps, sw)
		if base, ok := sw.Serial(); ok && base.Err == nil {
			fmt.Printf("  %s.%c serial %.3fs (%.1f Mop/s)\n", b, cl, base.Elapsed.Seconds(), base.Mops)
		}
	}
	fmt.Println()
	fmt.Print(harness.SuiteTable(
		fmt.Sprintf("Benchmark times in seconds (class %c) — cf. paper Tables 2-6", cl),
		sweeps, threads))
	fmt.Println()
	fmt.Print(harness.SpeedupTable("Speedup S(n) and efficiency E(n) over serial", sweeps, threads))
	if *obsFlag {
		fmt.Println()
		fmt.Print(harness.ObsTable("Runtime metrics (imbalance = max busy / mean busy; cf. §5.2)", sweeps))
	}
	if failed {
		os.Exit(1)
	}
}
