// Command npbsuite regenerates the paper's Tables 2-6 for this host:
// every benchmark of the suite at one class, timed serial and across a
// sweep of thread counts, with speedup and efficiency summaries.
//
//	npbsuite -class S -threads 1,2,4 -repeats 2 -timeout 5m -retries 1
//
// The paper ran the same sweep on five SMP machines; on a single host
// the machine axis collapses and one table is produced. The sweep
// degrades gracefully: a cell that panics, times out (-timeout) or
// fails verification is retried (-retries, exponential backoff) and, if
// it still fails, rendered as FAIL(reason) while the rest of the table
// is produced; npbsuite then exits non-zero at the end.
//
// -list-faults prints the registered fault injection site keys (the
// same registry the npblint faultsite analyzer checks) and exits.
//
// -obs turns on the observability layer: every cell collects per-worker
// runtime metrics (busy/barrier-wait time, imbalance ratio) and a phase
// profile, a metrics summary table is printed after the sweeps, one
// JSON line per cell is appended to -obs-jsonl, and -obs-listen serves
// live /debug/vars (expvar, including the per-run recorders under
// npb.obs) and /debug/pprof on a local port for the duration of the
// sweep.
//
// -trace <dir> turns on the execution tracer: every cell records
// per-worker event timelines (region blocks, barrier arrive/release,
// LU pipeline waits) and writes one Chrome/Perfetto trace file per
// cell into the directory — open them at ui.perfetto.dev, or check
// them with `npbtrace validate`.
//
// -bench-json <path> writes the sweep's machine-readable performance
// record (schema npbgo/bench/v1: per-cell Mop/s, time, threads,
// imbalance under a stamped host header). Pointing it at a directory
// auto-names the file BENCH_<stamp>.json, so repeated sweeps
// accumulate a perf history. With -repeats N every repeat's elapsed
// time is recorded in the cell's samples_sec — the distribution
// `npbperf compare` builds its confidence intervals from — while the
// headline stays the best time.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"time"

	"npbgo"
	"npbgo/internal/fault"
	"npbgo/internal/harness"
	"npbgo/internal/obs"
	"npbgo/internal/report"
)

func main() {
	class := flag.String("class", "S", "problem class: S W A B C")
	threadsFlag := flag.String("threads", "1,2,4", "comma-separated thread counts")
	benchFlag := flag.String("bench", "", "comma-separated benchmark subset (default: all)")
	repeats := flag.Int("repeats", 1, "repetitions per cell (best time kept)")
	warmup := flag.Bool("warmup", false, "apply the CG warmup fix of §5.2")
	timeout := flag.Duration("timeout", 0, "per-run deadline, e.g. 5m (0 = unbounded)")
	retries := flag.Int("retries", 0, "retries per failed run, with exponential backoff")
	obsFlag := flag.Bool("obs", false, "collect runtime metrics per cell and print the metrics summary")
	obsListen := flag.String("obs-listen", "127.0.0.1:6060", "with -obs: address for the expvar/pprof endpoint (empty = no endpoint)")
	obsJSONL := flag.String("obs-jsonl", "npb-metrics.jsonl", "with -obs: per-cell metrics JSONL file, appended (empty = no file)")
	traceDir := flag.String("trace", "", "write one Chrome/Perfetto trace file per cell into this directory (enables execution tracing)")
	benchJSON := flag.String("bench-json", "", "write the sweep's performance record as JSON to this path (a directory auto-names BENCH_<stamp>.json)")
	listFaults := flag.Bool("list-faults", false, "print the registered fault injection site keys and exit")
	flag.Parse()

	if *listFaults {
		for _, site := range fault.Sites() {
			fmt.Println(site)
		}
		return
	}

	var threads []int
	for _, tok := range strings.Split(*threadsFlag, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(tok))
		if err != nil || n < 1 {
			fmt.Fprintf(os.Stderr, "npbsuite: bad thread count %q\n", tok)
			os.Exit(2)
		}
		threads = append(threads, n)
	}
	benches := npbgo.Benchmarks()
	if *benchFlag != "" {
		benches = nil
		for _, tok := range strings.Split(*benchFlag, ",") {
			benches = append(benches, npbgo.Benchmark(strings.ToUpper(strings.TrimSpace(tok))))
		}
	}
	cl := strings.ToUpper(*class)[0]

	fmt.Printf("NPB-Go suite sweep: class %c, GOMAXPROCS=%d, host CPUs=%d\n\n",
		cl, runtime.GOMAXPROCS(0), runtime.NumCPU())

	opt := harness.Options{
		Warmup:   *warmup,
		Repeats:  *repeats,
		Timeout:  *timeout,
		Retries:  *retries,
		Backoff:  500 * time.Millisecond,
		Obs:      *obsFlag,
		TraceDir: *traceDir,
	}
	if *traceDir != "" {
		fmt.Printf("trace: per-cell Perfetto timelines written to %s/ (open at ui.perfetto.dev)\n\n", *traceDir)
	}
	if *obsFlag {
		if *obsListen != "" {
			bound, shutdown, err := obs.Serve(*obsListen)
			if err != nil {
				fmt.Fprintf(os.Stderr, "npbsuite: obs endpoint: %v\n", err)
				os.Exit(2)
			}
			defer shutdown()
			fmt.Printf("obs: live metrics at http://%s/debug/vars, profiles at http://%s/debug/pprof/\n", bound, bound)
		}
		if *obsJSONL != "" {
			f, err := os.OpenFile(*obsJSONL, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				fmt.Fprintf(os.Stderr, "npbsuite: obs jsonl: %v\n", err)
				os.Exit(2)
			}
			defer f.Close()
			opt.Metrics = f
			fmt.Printf("obs: per-cell metrics appended to %s\n", *obsJSONL)
		}
		fmt.Println()
	}
	var sweeps []harness.Sweep
	failed := false
	for _, b := range benches {
		sw, err := harness.RunSweepOpts(b, cl, threads, opt)
		if err != nil {
			// A failed cell does not abort the suite: report it, keep the
			// partial sweep, and finish the table.
			fmt.Fprintf(os.Stderr, "npbsuite: %s: %v\n", b, err)
			failed = true
		}
		sweeps = append(sweeps, sw)
		if base, ok := sw.Serial(); ok && base.Err == nil {
			fmt.Printf("  %s.%c serial %.3fs (%.1f Mop/s)\n", b, cl, base.Elapsed.Seconds(), base.Mops)
		}
	}
	fmt.Println()
	fmt.Print(harness.SuiteTable(
		fmt.Sprintf("Benchmark times in seconds (class %c) — cf. paper Tables 2-6", cl),
		sweeps, threads))
	fmt.Println()
	fmt.Print(harness.SpeedupTable("Speedup S(n) and efficiency E(n) over serial", sweeps, threads))
	if *obsFlag {
		fmt.Println()
		fmt.Print(harness.ObsTable("Runtime metrics (imbalance = max busy / mean busy; cf. §5.2)", sweeps))
	}
	if *benchJSON != "" {
		path, err := writeBenchRecord(*benchJSON, cl, sweeps)
		if err != nil {
			fmt.Fprintf(os.Stderr, "npbsuite: bench-json: %v\n", err)
			failed = true
		} else {
			fmt.Printf("\nbench-json: performance record written to %s\n", path)
		}
	}
	if failed {
		os.Exit(1)
	}
}

// writeBenchRecord writes the sweep's machine-readable performance
// record. A directory path (existing, or ending in a separator) gets an
// auto-stamped BENCH_<stamp>.json inside it and is created if missing.
func writeBenchRecord(path string, class byte, sweeps []harness.Sweep) (string, error) {
	stamp := time.Now().UTC().Format("20060102T150405Z")
	isDir := strings.HasSuffix(path, string(os.PathSeparator))
	if fi, err := os.Stat(path); err == nil && fi.IsDir() {
		isDir = true
	}
	if isDir {
		if err := os.MkdirAll(path, 0o755); err != nil {
			return "", err
		}
		path = filepath.Join(path, "BENCH_"+stamp+".json")
	}
	rec := harness.BenchRecordFrom(class, sweeps, stamp)
	f, err := os.Create(path)
	if err != nil {
		return "", err
	}
	werr := report.WriteBenchJSON(f, rec)
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	return path, werr
}
