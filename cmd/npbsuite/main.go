// Command npbsuite regenerates the paper's Tables 2-6 for this host:
// every benchmark of the suite at one class, timed serial and across a
// sweep of thread counts, with speedup and efficiency summaries.
//
//	npbsuite -class S -threads 1,2,4 -repeats 2 -timeout 5m -retries 1
//
// The paper ran the same sweep on five SMP machines; on a single host
// the machine axis collapses and one table is produced. The sweep
// degrades gracefully: a cell that panics, times out (-timeout) or
// fails verification is retried (-retries, exponential backoff) and, if
// it still fails, rendered as FAIL(reason) while the rest of the table
// is produced; npbsuite then exits non-zero at the end.
//
// -schedule selects the team loop schedule for every cell (static —
// the default — dynamic, guided, stealing or auto; see DESIGN.md §14).
// Schedules redistribute loop chunks between workers without changing
// any numerical result; the chosen name is stamped into each cell's
// bench-record and journal rows so sweeps stay comparable.
//
// -list-faults prints the registered fault injection site keys (the
// same registry the npblint faultsite analyzer checks) and exits.
//
// -obs turns on the observability layer: every cell collects per-worker
// runtime metrics (busy/barrier-wait time, imbalance ratio) and a phase
// profile, a metrics summary table is printed after the sweeps, one
// JSON line per cell is appended to -obs-jsonl, and -obs-listen serves
// live /debug/vars (expvar, including the per-run recorders under
// npb.obs) and /debug/pprof on a local port for the duration of the
// sweep.
//
// -counters turns on hardware-counter attribution: every cell samples
// cycles, instructions, LLC loads/misses and branch misses per worker
// per parallel region via perf_event_open, the totals land in the
// cell's metrics/bench records, and a counter summary table (IPC, LLC
// miss rate) is printed after the sweeps. Where counters are
// unavailable — restrictive perf_event_paranoid, no PMU in the
// VM/container, non-Linux build — the sweep runs normally and each
// record carries an explicit "counters: unavailable (<reason>)" note
// instead of silent zeros.
//
// -trace <dir> turns on the execution tracer: every cell records
// per-worker event timelines (region blocks, barrier arrive/release,
// LU pipeline waits) and writes one Chrome/Perfetto trace file per
// cell into the directory — open them at ui.perfetto.dev, or check
// them with `npbtrace validate`.
//
// -profile captures a CPU and a heap profile per cell into -profile-dir
// (default profiles/) as "<BENCH>.<class>.<cell>.cpu.pprof" and
// ".heap.pprof", recorded in the cell's metrics and bench records and
// decoded by `npbperf hotspots` — no external pprof tooling needed. The
// capture brackets the cell outside its timed region; under -isolate
// the child process captures its own profiles and the parent collects
// the files. A cell that fails still flushes its profile before the
// failure is rendered — the profile of a dying cell is the
// post-mortem (a hard-killed child flushes nothing; its empty file is
// dropped rather than recorded as data).
//
// -bench-json <path> writes the sweep's machine-readable performance
// record (schema npbgo/bench/v1: per-cell Mop/s, time, threads,
// imbalance under a stamped host header). Pointing it at a directory
// auto-names the file BENCH_<stamp>.json, so repeated sweeps
// accumulate a perf history. With -repeats N every repeat's elapsed
// time is recorded in the cell's samples_sec — the distribution
// `npbperf compare` builds its confidence intervals from — while the
// headline stays the best time.
//
// Crash safety (see DESIGN.md §12):
//
// -journal <path> writes a durable write-ahead journal of the sweep
// (schema npbgo/journal/v1, one fsync'd JSON line per event). If the
// process dies mid-sweep — OOM kill, power loss, ^C — the journal
// holds every completed cell's metrics. -resume <path> picks the sweep
// back up: the plan (class, threads, benchmarks) is read from the
// journal, completed cells are replayed from their recorded metrics
// without re-executing, and only pending or interrupted cells run.
//
// -isolate runs every cell in a child process (`npbsuite -run-cell`,
// an internal mode) under a parent-side watchdog: a cell that blows
// its -timeout or, with -mem-limit, its resident-set budget is
// hard-killed and recorded as FAIL(timeout-killed | oom-killed) while
// the sweep continues. -mem-guard consults each cell's estimated
// footprint against available memory first and records
// SKIP(memory: ...) for cells that cannot fit.
//
// -chaos runs a seeded chaos soak campaign instead of a sweep:
// -chaos-cells randomized cells drawn from -chaos-seed, each under a
// random fault/cancel/timeout schedule, with recovery invariants
// asserted after every cell. -check-journal <path> validates a journal
// and prints its state summary (the CI soak job's final gate).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"syscall"
	"time"

	"npbgo"
	"npbgo/internal/chaos"
	"npbgo/internal/fault"
	"npbgo/internal/harness"
	"npbgo/internal/journal"
	"npbgo/internal/obs"
	"npbgo/internal/perfcount"
	"npbgo/internal/report"
	"npbgo/internal/team"
)

func main() {
	class := flag.String("class", "S", "problem class: S W A B C")
	threadsFlag := flag.String("threads", "1,2,4", "comma-separated thread counts")
	benchFlag := flag.String("bench", "", "comma-separated benchmark subset (default: all)")
	repeats := flag.Int("repeats", 1, "repetitions per cell (best time kept)")
	warmup := flag.Bool("warmup", false, "apply the CG warmup fix of §5.2")
	schedule := flag.String("schedule", "", "team loop schedule: static (default), dynamic, guided, stealing or auto")
	timeout := flag.Duration("timeout", 0, "per-run deadline, e.g. 5m (0 = unbounded)")
	retries := flag.Int("retries", 0, "retries per failed run, with exponential backoff")
	obsFlag := flag.Bool("obs", false, "collect runtime metrics per cell and print the metrics summary")
	countersFlag := flag.Bool("counters", false, "sample hardware counters (cycles/IPC/LLC misses) per cell and print the counter summary")
	obsListen := flag.String("obs-listen", "127.0.0.1:6060", "with -obs: address for the expvar/pprof endpoint (empty = no endpoint)")
	obsJSONL := flag.String("obs-jsonl", "npb-metrics.jsonl", "with -obs: per-cell metrics JSONL file, appended (empty = no file)")
	traceDir := flag.String("trace", "", "write one Chrome/Perfetto trace file per cell into this directory (enables execution tracing)")
	profileFlag := flag.Bool("profile", false, "capture a CPU and heap profile per cell (see -profile-dir); decode with `npbperf hotspots`")
	profileDir := flag.String("profile-dir", "profiles", "with -profile: directory for the per-cell .cpu.pprof/.heap.pprof files")
	benchJSON := flag.String("bench-json", "", "write the sweep's performance record as JSON to this path (a directory auto-names BENCH_<stamp>.json)")
	listFaults := flag.Bool("list-faults", false, "print the registered fault injection site keys and exit")
	journalPath := flag.String("journal", "", "write a durable sweep journal (fsync'd JSONL) to this path")
	resumePath := flag.String("resume", "", "resume an interrupted journaled sweep: replay completed cells, run the rest (plan read from the journal)")
	isolate := flag.Bool("isolate", false, "run every cell in a watchdogged child process; runaway or OOM-ing cells are killed and recorded as FAIL")
	memLimit := flag.String("mem-limit", "", "with -isolate: kill a cell whose resident set exceeds this size, e.g. 2GiB")
	memGuard := flag.Bool("mem-guard", false, "skip cells whose estimated memory footprint cannot fit in available memory")
	chaosFlag := flag.Bool("chaos", false, "run a seeded chaos soak campaign instead of a sweep (see -chaos-seed, -chaos-cells)")
	chaosSeed := flag.Int64("chaos-seed", 1, "with -chaos: campaign seed (same seed = same schedule = same failures)")
	chaosCells := flag.Int("chaos-cells", 8, "with -chaos: number of chaos cells to run")
	checkJournal := flag.String("check-journal", "", "validate a sweep journal, print its state summary, and exit")
	runCellMode := flag.Bool("run-cell", false, "internal: execute one cell from the JSON spec argument and print its result (used by -isolate)")
	flag.Parse()

	if *runCellMode {
		if flag.NArg() != 1 {
			fmt.Fprintln(os.Stderr, "npbsuite: -run-cell needs exactly one cell-spec argument")
			os.Exit(2)
		}
		os.Exit(harness.RunCellMain(flag.Arg(0), os.Stdout))
	}
	if *listFaults {
		for _, site := range fault.Sites() {
			fmt.Println(site)
		}
		return
	}
	if *checkJournal != "" {
		os.Exit(checkJournalMain(*checkJournal))
	}

	var threads []int
	for _, tok := range strings.Split(*threadsFlag, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(tok))
		if err != nil || n < 1 {
			fmt.Fprintf(os.Stderr, "npbsuite: bad thread count %q\n", tok)
			os.Exit(2)
		}
		threads = append(threads, n)
	}
	benches := npbgo.Benchmarks()
	if *benchFlag != "" {
		benches = nil
		for _, tok := range strings.Split(*benchFlag, ",") {
			benches = append(benches, npbgo.Benchmark(strings.ToUpper(strings.TrimSpace(tok))))
		}
	}
	cl := strings.ToUpper(*class)[0]
	if _, err := team.ParseSchedule(*schedule); err != nil {
		fmt.Fprintf(os.Stderr, "npbsuite: %v\n", err)
		os.Exit(2)
	}

	// ^C / SIGTERM cancels the sweep cooperatively: the current cell
	// stops (hard-killed under -isolate), retries and backoffs are
	// abandoned, and a journaled sweep stays resumable.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *chaosFlag {
		camp := &chaos.Campaign{
			Seed:    *chaosSeed,
			Cells:   *chaosCells,
			Class:   cl,
			Threads: threads,
			Journal: *journalPath,
			Out:     os.Stdout,
		}
		if *benchFlag != "" {
			camp.Benchmarks = benches
		}
		if *timeout > 0 {
			camp.WallLimit = *timeout
		}
		rep, err := camp.Run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "npbsuite: chaos: %v\n", err)
			os.Exit(1)
		}
		if rep.Failed() {
			os.Exit(1)
		}
		return
	}

	opt := harness.Options{
		Warmup:   *warmup,
		Schedule: *schedule,
		Repeats:  *repeats,
		Timeout:  *timeout,
		Retries:  *retries,
		Backoff:  500 * time.Millisecond,
		Obs:      *obsFlag,
		Counters: *countersFlag,
		TraceDir: *traceDir,
		Context:  ctx,
	}
	if *profileFlag {
		if *profileDir == "" {
			fmt.Fprintln(os.Stderr, "npbsuite: -profile needs a non-empty -profile-dir")
			os.Exit(2)
		}
		opt.ProfileDir = *profileDir
	}
	stamp := time.Now().UTC().Format("20060102T150405Z")
	switch {
	case *resumePath != "":
		w, lg, err := journal.AppendTo(*resumePath, stamp)
		if err != nil {
			fmt.Fprintf(os.Stderr, "npbsuite: resume: %v\n", err)
			os.Exit(2)
		}
		defer w.Close()
		// The journal's plan is authoritative on resume: the sweep must
		// finish what was planned, not what today's flags happen to say.
		plan := lg.Plan()
		if plan.Class != "" {
			cl = plan.Class[0]
		}
		if len(plan.Threads) > 0 {
			threads = plan.Threads
		}
		if len(plan.Benchmarks) > 0 {
			benches = nil
			for _, name := range plan.Benchmarks {
				benches = append(benches, npbgo.Benchmark(name))
			}
		}
		st := lg.State()
		opt.Journal = w
		opt.Resume = st.Done
		fmt.Printf("resume: %s — %d of %d planned cells already done, %d pending%s\n",
			*resumePath, len(st.Done), len(plan.Planned), len(st.Pending()),
			map[bool]string{true: " (torn tail recovered)", false: ""}[lg.Truncated])
	case *journalPath != "":
		names := make([]string, len(benches))
		for i, b := range benches {
			names[i] = string(b)
		}
		w, err := journal.Create(*journalPath, journal.Plan{
			Stamp: stamp, Class: string(cl), Threads: threads,
			Benchmarks: names, Planned: harness.PlannedCells(benches, cl, threads),
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "npbsuite: journal: %v\n", err)
			os.Exit(2)
		}
		defer w.Close()
		opt.Journal = w
		fmt.Printf("journal: durable sweep journal at %s (resume with -resume %s)\n", *journalPath, *journalPath)
	}
	if *isolate {
		exe, err := os.Executable()
		if err != nil {
			fmt.Fprintf(os.Stderr, "npbsuite: isolate: %v\n", err)
			os.Exit(2)
		}
		iso := &harness.Isolation{Cmd: []string{exe, "-run-cell"}}
		if *memLimit != "" {
			n, err := harness.ParseBytes(*memLimit)
			if err != nil {
				fmt.Fprintf(os.Stderr, "npbsuite: %v\n", err)
				os.Exit(2)
			}
			iso.MemLimitBytes = n
		}
		opt.Isolate = iso
		fmt.Printf("isolate: cells run as watchdogged child processes%s\n",
			map[bool]string{true: ", RSS limit " + *memLimit, false: ""}[*memLimit != ""])
	} else if *memLimit != "" {
		fmt.Fprintln(os.Stderr, "npbsuite: -mem-limit requires -isolate (RSS is watched from outside the cell process)")
		os.Exit(2)
	}
	if *memGuard {
		opt.MemGuard = &harness.MemGuard{}
		if avail, ok := harness.AvailableMemory(); ok {
			fmt.Printf("mem-guard: admission checks against %s available\n", harness.FormatBytes(avail))
		}
	}

	fmt.Printf("NPB-Go suite sweep: class %c, GOMAXPROCS=%d, host CPUs=%d\n\n",
		cl, runtime.GOMAXPROCS(0), runtime.NumCPU())
	if *traceDir != "" {
		fmt.Printf("trace: per-cell Perfetto timelines written to %s/ (open at ui.perfetto.dev)\n\n", *traceDir)
	}
	if opt.ProfileDir != "" {
		fmt.Printf("profile: per-cell CPU/heap profiles written to %s/ (decode with `npbperf hotspots`)\n\n", opt.ProfileDir)
	}
	if *countersFlag {
		if err := perfcount.Probe(); err != nil {
			fmt.Printf("counters: unavailable (%v) — cells run unsampled, records carry the note\n\n", err)
		} else {
			fmt.Printf("counters: per-region hardware counters enabled (perf_event_open)\n\n")
		}
	}
	if *obsFlag {
		if *obsListen != "" {
			bound, shutdown, err := obs.Serve(*obsListen)
			if err != nil {
				fmt.Fprintf(os.Stderr, "npbsuite: obs endpoint: %v\n", err)
				os.Exit(2)
			}
			defer shutdown()
			fmt.Printf("obs: live metrics at http://%s/debug/vars, profiles at http://%s/debug/pprof/\n", bound, bound)
		}
		if *obsJSONL != "" {
			f, err := os.OpenFile(*obsJSONL, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				fmt.Fprintf(os.Stderr, "npbsuite: obs jsonl: %v\n", err)
				os.Exit(2)
			}
			defer f.Close()
			opt.Metrics = f
			fmt.Printf("obs: per-cell metrics appended to %s\n", *obsJSONL)
		}
		fmt.Println()
	}
	var sweeps []harness.Sweep
	failed := false
	for _, b := range benches {
		sw, err := harness.RunSweepOpts(b, cl, threads, opt)
		if err != nil {
			// A failed cell does not abort the suite: report it, keep the
			// partial sweep, and finish the table.
			fmt.Fprintf(os.Stderr, "npbsuite: %s: %v\n", b, err)
			failed = true
		}
		sweeps = append(sweeps, sw)
		if base, ok := sw.Serial(); ok && base.Err == nil {
			fmt.Printf("  %s.%c serial %.3fs (%.1f Mop/s)\n", b, cl, base.Elapsed.Seconds(), base.Mops)
		}
	}
	fmt.Println()
	fmt.Print(harness.SuiteTable(
		fmt.Sprintf("Benchmark times in seconds (class %c) — cf. paper Tables 2-6", cl),
		sweeps, threads))
	fmt.Println()
	fmt.Print(harness.SpeedupTable("Speedup S(n) and efficiency E(n) over serial", sweeps, threads))
	if *obsFlag {
		fmt.Println()
		fmt.Print(harness.ObsTable("Runtime metrics (imbalance = max busy / mean busy; cf. §5.2)", sweeps))
	}
	if *countersFlag {
		fmt.Println()
		fmt.Print(harness.CountersTable("Hardware counters (IPC = instructions/cycle; miss rate = LLC misses/loads)", sweeps))
	}
	if *benchJSON != "" {
		path, err := writeBenchRecord(*benchJSON, cl, sweeps)
		if err != nil {
			fmt.Fprintf(os.Stderr, "npbsuite: bench-json: %v\n", err)
			failed = true
		} else {
			fmt.Printf("\nbench-json: performance record written to %s\n", path)
		}
	}
	if failed {
		os.Exit(1)
	}
}

// checkJournalMain validates a sweep journal and prints its state
// summary; it is the CI soak job's final gate. Exit 0 means the journal
// parsed under the current schema; a recovered torn tail is reported
// but is not a failure (that is the journal working as designed).
func checkJournalMain(path string) int {
	lg, err := journal.Read(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "npbsuite: check-journal: %v\n", err)
		return 1
	}
	plan := lg.Plan()
	st := lg.State()
	fmt.Printf("journal: %s\n", path)
	fmt.Printf("  schema:  %s (%d entries)\n", journal.Schema, len(lg.Entries))
	if plan.Stamp != "" {
		fmt.Printf("  stamp:   %s\n", plan.Stamp)
	}
	fmt.Printf("  plan:    class %s, %d cells\n", plan.Class, len(plan.Planned))
	fmt.Printf("  state:   %d done, %d skipped, %d pending, %d resume marker(s)\n",
		len(st.Done), len(st.Skipped), len(st.Pending()), st.Resumes)
	if lg.Truncated {
		fmt.Println("  note:    torn trailing line dropped (crash-interrupted append); journal is resumable")
	}
	return 0
}

// writeBenchRecord writes the sweep's machine-readable performance
// record. A directory path (existing, or ending in a separator) gets an
// auto-stamped BENCH_<stamp>.json inside it and is created if missing.
func writeBenchRecord(path string, class byte, sweeps []harness.Sweep) (string, error) {
	stamp := time.Now().UTC().Format("20060102T150405Z")
	isDir := strings.HasSuffix(path, string(os.PathSeparator))
	if fi, err := os.Stat(path); err == nil && fi.IsDir() {
		isDir = true
	}
	if isDir {
		if err := os.MkdirAll(path, 0o755); err != nil {
			return "", err
		}
		path = filepath.Join(path, "BENCH_"+stamp+".json")
	}
	rec := harness.BenchRecordFrom(class, sweeps, stamp)
	f, err := os.Create(path)
	if err != nil {
		return "", err
	}
	werr := report.WriteBenchJSON(f, rec)
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	return path, werr
}
