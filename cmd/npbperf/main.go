// Command npbperf analyses the bench records written by npbsuite
// -bench-json (schema npbgo/bench/v1): per-cell distribution
// statistics, noise-aware record-to-record comparison, and the paper's
// §5 scalability diagnostics.
//
//	npbperf stats    [-json] record.json...
//	npbperf compare  [-json] [-threshold 0.02] [-confidence 0.95] [-min-time 0.001] base.json head.json
//	npbperf scaling  [-json] [-imbalance 1.5] [-barrier-share 0.2] [-small-work 0.001] [-ipc-drop 0.15] [-miss-rise 0.25] [-fail-on list] record.json...
//	npbperf counters [-json] [-require] record.json...
//	npbperf hotspots [-json] [-top n] [-heap] [-min-attr pct] [-require] record.json...
//	npbperf profdiff [-json] [-heap] [-min-delta share] [-min-share share] base.json head.json
//
// stats prints median/min/IQR and a bootstrap confidence interval of
// the median for every cell of each record — run sweeps with
// npbsuite -repeats N so cells carry a real distribution.
//
// compare judges head against base cell by cell and exits 1 iff a
// statistically separated regression exists: the medians' confidence
// intervals must not overlap AND the slowdown must clear -threshold
// (so back-to-back runs of identical code stay green — the CI
// perf-gate depends on this). A cell that verified in base but failed
// in head also counts as a regression. Cells whose medians sit below
// -min-time are never judged: they are inside timer resolution, where
// the paper's own IS class-S numbers stopped being meaningful.
//
// scaling prints speedup, efficiency and the Karp–Flatt serial
// fraction per (benchmark, class) thread curve, plus rule-based
// anomaly flags joined from the obs counters in the record:
// load-imbalance (§5.2 CG), barrier-sync (§5 LU pipeline), small-work
// (§5 IS) and memory-bound (IPC falling while the LLC miss rate rises
// as threads grow — needs records written with npbsuite -counters).
// -fail-on takes a comma-separated list of those anomaly names and
// turns any diagnosed occurrence into exit code 1, which is how CI
// asserts that `-schedule auto` keeps the CG load-imbalance flag clear.
//
// counters prints the per-benchmark hardware-counter view of each
// record: IPC, LLC miss rate, and cycles/instructions/misses per
// iteration-second of the cell. Cells whose counters were requested but
// unavailable print their "unavailable (<reason>)" note. -require exits
// 1 when no cell of any record carries counters or a note — the CI
// smoke's "never silent zeros" assertion.
//
// hotspots decodes the per-cell pprof profiles a sweep captured with
// npbsuite -profile (paths recorded in each cell) into symbolized
// flat/cumulative hot-function tables — the decoder is this repo's own
// stdlib-only pprof reader, no google/pprof needed. Each cell's table
// is joined with its recorded imbalance and IPC, so one row answers
// both where the time went and why. -json emits npbgo/profile/v1
// records; -heap analyzes allocation (alloc_space) profiles; -min-attr
// exits 1 when a decoded CPU profile attributes less than the given
// percentage to symbolized npbgo/internal/... code (the CI floor);
// -require exits 1 when no cell carries a decodable profile. A profile
// that fails to decode (a truncated or damaged file) renders as an
// explicit note, never silently.
//
// profdiff judges head profiles against base per matching cell
// (benchmark, class, threads, schedule) under the compare conventions:
// a function flags only when its sample-share shift is statistically
// separated (binomial CIs at z=1.96) AND exceeds -min-delta, so two
// sweeps of identical code exit 0. Exit 1 iff a significant shift
// exists.
//
// All subcommands take -json for machine-readable output. Exit codes:
// 0 clean, 1 regression found (compare, scaling with -fail-on,
// hotspots with -min-attr/-require, profdiff with a shift), 2 usage or
// input error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"npbgo/internal/perfstat"
	"npbgo/internal/report"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entry point; it returns the process exit code.
func run(args []string, stdout, stderr io.Writer) int {
	if len(args) < 1 {
		usage(stderr)
		return 2
	}
	switch args[0] {
	case "stats":
		return runStats(args[1:], stdout, stderr)
	case "compare":
		return runCompare(args[1:], stdout, stderr)
	case "scaling":
		return runScaling(args[1:], stdout, stderr)
	case "counters":
		return runCounters(args[1:], stdout, stderr)
	case "hotspots":
		return runHotspots(args[1:], stdout, stderr)
	case "profdiff":
		return runProfdiff(args[1:], stdout, stderr)
	default:
		fmt.Fprintf(stderr, "npbperf: unknown subcommand %q\n", args[0])
		usage(stderr)
		return 2
	}
}

func usage(w io.Writer) {
	fmt.Fprintf(w, `usage:
  npbperf stats   [-json] record.json...
  npbperf compare [-json] [-threshold rel] [-confidence c] [-min-time sec] base.json head.json
  npbperf scaling  [-json] [-imbalance r] [-barrier-share s] [-small-work sec] [-ipc-drop f] [-miss-rise f] [-fail-on list] record.json...
  npbperf counters [-json] [-require] record.json...
  npbperf hotspots [-json] [-top n] [-heap] [-min-attr pct] [-require] record.json...
  npbperf profdiff [-json] [-heap] [-min-delta share] [-min-share share] base.json head.json
`)
}

// readRecords loads every bench record of every named file.
func readRecords(paths []string, stderr io.Writer) ([]report.BenchRecord, bool) {
	var out []report.BenchRecord
	for _, path := range paths {
		f, err := os.Open(path)
		if err != nil {
			fmt.Fprintf(stderr, "npbperf: %v\n", err)
			return nil, false
		}
		recs, err := report.ReadBenchRecords(f)
		f.Close()
		if err != nil {
			fmt.Fprintf(stderr, "npbperf: %s: %v\n", path, err)
			return nil, false
		}
		out = append(out, recs...)
	}
	return out, true
}

// writeJSON emits v as indented JSON.
func writeJSON(w io.Writer, v any) {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func runStats(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("stats", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "machine-readable output")
	conf := fs.Float64("confidence", 0.95, "bootstrap CI confidence")
	if fs.Parse(args) != nil || fs.NArg() < 1 {
		usage(stderr)
		return 2
	}
	recs, ok := readRecords(fs.Args(), stderr)
	if !ok {
		return 2
	}
	opt := perfstat.CIOptions{Confidence: *conf}
	for _, rec := range recs {
		cells := perfstat.Stats(rec, opt)
		if *jsonOut {
			writeJSON(stdout, struct {
				Stamp string                 `json:"stamp"`
				Cells []perfstat.CellSummary `json:"cells"`
			}{rec.Stamp, cells})
			continue
		}
		fmt.Fprint(stdout, perfstat.StatsTable(rec.Stamp, cells))
		fmt.Fprintln(stdout)
	}
	return 0
}

func runCompare(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("compare", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "machine-readable output")
	threshold := fs.Float64("threshold", 0.02, "relative slowdown a separated cell must exceed to flag")
	conf := fs.Float64("confidence", 0.95, "bootstrap CI confidence")
	minTime := fs.Float64("min-time", 0.001, "floor in seconds below which cells are not judged")
	if fs.Parse(args) != nil || fs.NArg() != 2 {
		usage(stderr)
		return 2
	}
	recs, ok := readRecords(fs.Args(), stderr)
	if !ok {
		return 2
	}
	if len(recs) != 2 {
		fmt.Fprintf(stderr, "npbperf: compare wants exactly one record per file, got %d records\n", len(recs))
		return 2
	}
	cmp := perfstat.Compare(recs[0], recs[1], perfstat.CompareOptions{
		CIOptions:   perfstat.CIOptions{Confidence: *conf},
		MinRelDelta: *threshold,
		MinTime:     *minTime,
	})
	if *jsonOut {
		writeJSON(stdout, cmp)
	} else {
		fmt.Fprint(stdout, cmp.Table())
		fmt.Fprintf(stdout, "\n%d regression(s), %d improvement(s) across %d cell(s)\n",
			cmp.Regressions, cmp.Improvements, len(cmp.Cells))
	}
	if cmp.Regressions > 0 {
		return 1
	}
	return 0
}

func runScaling(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("scaling", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "machine-readable output")
	imbalance := fs.Float64("imbalance", 1.5, "imbalance ratio at which load-imbalance flags")
	barrierShare := fs.Float64("barrier-share", 0.2, "barrier-wait share at which barrier-sync flags")
	smallWork := fs.Float64("small-work", 0.001, "median seconds below which small-work flags")
	ipcDrop := fs.Float64("ipc-drop", 0.15, "fractional IPC drop vs baseline at which memory-bound flags")
	missRise := fs.Float64("miss-rise", 0.25, "fractional LLC miss-rate rise vs baseline at which memory-bound flags")
	failOn := fs.String("fail-on", "", "comma-separated anomaly names that make the exit code 1 when diagnosed")
	if fs.Parse(args) != nil || fs.NArg() < 1 {
		usage(stderr)
		return 2
	}
	fatal, ok := parseFailOn(*failOn, stderr)
	if !ok {
		return 2
	}
	recs, ok := readRecords(fs.Args(), stderr)
	if !ok {
		return 2
	}
	opt := perfstat.ScalingOptions{
		ImbalanceMin:    *imbalance,
		BarrierShareMin: *barrierShare,
		SmallWorkSec:    *smallWork,
		IPCDropMin:      *ipcDrop,
		MissRiseMin:     *missRise,
	}
	exit := 0
	for _, rec := range recs {
		analysis := perfstat.Scaling(rec, opt)
		if *jsonOut {
			writeJSON(stdout, struct {
				Stamp  string                  `json:"stamp"`
				Groups []perfstat.BenchScaling `json:"groups"`
			}{rec.Stamp, analysis})
		} else {
			fmt.Fprintf(stdout, "record %s (GOMAXPROCS=%d, CPUs=%d)\n", rec.Stamp, rec.GoMaxProcs, rec.NumCPU)
			fmt.Fprint(stdout, perfstat.ScalingTable(analysis))
			fmt.Fprintln(stdout)
		}
		for _, bs := range analysis {
			for _, a := range bs.Anomalies {
				if fatal[a] {
					fmt.Fprintf(stderr, "npbperf: %s.%s diagnosed %s (listed in -fail-on)\n",
						bs.Benchmark, bs.Class, a)
					exit = 1
				}
			}
		}
	}
	return exit
}

// parseFailOn turns the -fail-on list into an anomaly set, rejecting
// names the scaling rules can never produce so a typo in a CI gate
// fails the job instead of silently never matching.
func parseFailOn(list string, stderr io.Writer) (map[perfstat.Anomaly]bool, bool) {
	fatal := make(map[perfstat.Anomaly]bool)
	if list == "" {
		return fatal, true
	}
	known := map[perfstat.Anomaly]bool{
		perfstat.LoadImbalance: true,
		perfstat.BarrierSync:   true,
		perfstat.SmallWork:     true,
		perfstat.MemoryBound:   true,
	}
	for _, name := range strings.Split(list, ",") {
		a := perfstat.Anomaly(strings.TrimSpace(name))
		if !known[a] {
			fmt.Fprintf(stderr, "npbperf: -fail-on: unknown anomaly %q (known: %s, %s, %s, %s)\n",
				a, perfstat.LoadImbalance, perfstat.BarrierSync, perfstat.SmallWork, perfstat.MemoryBound)
			return nil, false
		}
		fatal[a] = true
	}
	return fatal, true
}

// counterRow is the JSON shape of one cell in `npbperf counters -json`.
type counterRow struct {
	Benchmark    string  `json:"benchmark"`
	Class        string  `json:"class"`
	Threads      int     `json:"threads"`
	Set          string  `json:"set,omitempty"`
	IPC          float64 `json:"ipc,omitempty"`
	LLCMissRate  float64 `json:"llc_miss_rate,omitempty"`
	CyclesPerMop float64 `json:"cycles_per_mop,omitempty"`
	MissesPerMop float64 `json:"misses_per_mop,omitempty"`
	Cycles       uint64  `json:"cycles,omitempty"`
	Instructions uint64  `json:"instructions,omitempty"`
	LLCMisses    uint64  `json:"llc_misses,omitempty"`
	Note         string  `json:"note,omitempty"`
}

// runCounters renders the per-benchmark hardware-counter view of bench
// records: IPC, the LLC miss rate, and cycles/misses normalized per
// Mop (the benchmark's own unit of work: Mop/s x elapsed seconds), so
// figures stay comparable across classes and thread counts.
func runCounters(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("counters", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "machine-readable output")
	require := fs.Bool("require", false, "exit 1 unless at least one cell carries counters or an explicit unavailable note")
	if fs.Parse(args) != nil || fs.NArg() < 1 {
		usage(stderr)
		return 2
	}
	recs, ok := readRecords(fs.Args(), stderr)
	if !ok {
		return 2
	}
	attributed := false
	for _, rec := range recs {
		var rows []counterRow
		for _, c := range rec.Cells {
			row := counterRow{Benchmark: c.Benchmark, Class: c.Class, Threads: c.Threads, Note: c.CountersNote}
			if ctr := c.Counters; ctr != nil {
				attributed = true
				row.Set = ctr.Set
				row.IPC = ctr.IPC()
				row.LLCMissRate = ctr.LLCMissRate()
				row.Cycles = ctr.Cycles
				row.Instructions = ctr.Instructions
				row.LLCMisses = ctr.LLCMisses
				if mop := c.Mops * c.Elapsed; mop > 0 {
					row.CyclesPerMop = float64(ctr.Cycles) / mop
					row.MissesPerMop = float64(ctr.LLCMisses) / mop
				}
			} else if c.CountersNote != "" {
				attributed = true
			} else {
				continue // cell ran without counters requested; nothing to show
			}
			rows = append(rows, row)
		}
		if *jsonOut {
			writeJSON(stdout, struct {
				Stamp string       `json:"stamp"`
				Cells []counterRow `json:"cells"`
			}{rec.Stamp, rows})
			continue
		}
		fmt.Fprintf(stdout, "record %s (GOMAXPROCS=%d, CPUs=%d)\n", rec.Stamp, rec.GoMaxProcs, rec.NumCPU)
		tb := report.New("Hardware counters per cell (Mop = Mop/s x elapsed)",
			"Cell", "Set", "IPC", "MissRate", "Cyc/Mop", "Miss/Mop", "Cycles", "Instr")
		for _, row := range rows {
			cell := fmt.Sprintf("%s.%s t%d", row.Benchmark, row.Class, row.Threads)
			if row.Threads == 0 {
				cell = fmt.Sprintf("%s.%s serial", row.Benchmark, row.Class)
			}
			if row.Set == "" {
				tb.AddRow(cell, row.Note)
				continue
			}
			tb.AddRow(cell, row.Set,
				fmt.Sprintf("%.2f", row.IPC),
				fmt.Sprintf("%.4f", row.LLCMissRate),
				fmt.Sprintf("%.0f", row.CyclesPerMop),
				fmt.Sprintf("%.1f", row.MissesPerMop),
				fmt.Sprintf("%d", row.Cycles),
				fmt.Sprintf("%d", row.Instructions))
		}
		if len(rows) == 0 {
			tb.AddRow("(record carries no counter data; run npbsuite -counters)")
		}
		fmt.Fprint(stdout, tb.String())
		fmt.Fprintln(stdout)
	}
	if *require && !attributed {
		fmt.Fprintln(stderr, "npbperf: counters -require: no cell carries counter data or an unavailable note (silent zeros)")
		return 1
	}
	return 0
}
