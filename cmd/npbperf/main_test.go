package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"npbgo/internal/report"
)

// golden is the shared bench-record fixture of the report package.
const golden = "../../internal/report/testdata/bench_v1.json"

// writeRecord writes one record into dir and returns its path.
func writeRecord(t *testing.T, dir, name string, rec report.BenchRecord) string {
	t.Helper()
	path := filepath.Join(dir, name)
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := report.WriteBenchJSON(f, rec); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

// cgRecord builds a single-cell record with the given CG.S t2 samples.
func cgRecord(stamp string, samples []float64) report.BenchRecord {
	best := samples[0]
	for _, s := range samples {
		if s < best {
			best = s
		}
	}
	return report.BenchRecord{
		Schema: report.BenchSchema, Stamp: stamp, Class: "S", GoMaxProcs: 2, NumCPU: 2,
		Cells: []report.CellMetrics{{Benchmark: "CG", Class: "S", Threads: 2,
			Elapsed: best, Verified: true, Samples: samples}},
	}
}

func TestUsageErrors(t *testing.T) {
	cases := [][]string{
		nil,
		{"frobnicate"},
		{"stats"},
		{"compare", "only-one.json"},
		{"compare", "a.json", "b.json", "c.json"},
		{"scaling"},
	}
	for _, args := range cases {
		var out, errBuf bytes.Buffer
		if code := run(args, &out, &errBuf); code != 2 {
			t.Errorf("run(%v) = %d, want 2", args, code)
		}
		if !strings.Contains(errBuf.String(), "usage") && !strings.Contains(errBuf.String(), "npbperf") {
			t.Errorf("run(%v) stderr unhelpful: %q", args, errBuf.String())
		}
	}
}

func TestStatsGoldenRecord(t *testing.T) {
	var out, errBuf bytes.Buffer
	if code := run([]string{"stats", golden}, &out, &errBuf); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errBuf.String())
	}
	s := out.String()
	for _, want := range []string{"20260801T120000Z", "CG.S serial", "CG.S t4", "Median", "failed: npbgo: EP.S panic: injected"} {
		if !strings.Contains(s, want) {
			t.Fatalf("stats output missing %q:\n%s", want, s)
		}
	}
}

func TestStatsJSON(t *testing.T) {
	var out, errBuf bytes.Buffer
	if code := run([]string{"stats", "-json", golden}, &out, &errBuf); code != 0 {
		t.Fatalf("exit %d: %s", code, errBuf.String())
	}
	var doc struct {
		Stamp string `json:"stamp"`
		Cells []struct {
			Benchmark string `json:"benchmark"`
			Summary   struct {
				N      int     `json:"n"`
				Median float64 `json:"median"`
			} `json:"summary"`
		} `json:"cells"`
	}
	if err := json.Unmarshal(out.Bytes(), &doc); err != nil {
		t.Fatalf("stats -json not parseable: %v\n%s", err, out.String())
	}
	if doc.Stamp == "" || len(doc.Cells) != 8 || doc.Cells[0].Summary.N != 3 {
		t.Fatalf("stats -json shape wrong: %+v", doc)
	}
}

func TestCompareCleanExitsZero(t *testing.T) {
	dir := t.TempDir()
	// Identical code, two runs: same distribution up to noise.
	a := writeRecord(t, dir, "a.json", cgRecord("A", []float64{1.00, 1.02, 0.98}))
	b := writeRecord(t, dir, "b.json", cgRecord("B", []float64{1.01, 0.99, 1.00}))
	var out, errBuf bytes.Buffer
	if code := run([]string{"compare", a, b}, &out, &errBuf); code != 0 {
		t.Fatalf("clean compare exit %d:\n%s%s", code, out.String(), errBuf.String())
	}
	if !strings.Contains(out.String(), "0 regression(s)") {
		t.Fatalf("summary line missing:\n%s", out.String())
	}
}

func TestCompareRegressionExitsOne(t *testing.T) {
	dir := t.TempDir()
	a := writeRecord(t, dir, "a.json", cgRecord("A", []float64{1.00, 1.01, 0.99}))
	b := writeRecord(t, dir, "b.json", cgRecord("B", []float64{1.50, 1.51, 1.49}))
	var out, errBuf bytes.Buffer
	if code := run([]string{"compare", a, b}, &out, &errBuf); code != 1 {
		t.Fatalf("regression compare exit %d, want 1:\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "REGRESSION") || !strings.Contains(out.String(), "1 regression(s)") {
		t.Fatalf("regression not reported:\n%s", out.String())
	}
	// The improvement direction must NOT fail the gate.
	out.Reset()
	if code := run([]string{"compare", b, a}, &out, &errBuf); code != 0 {
		t.Fatalf("improvement compare exit %d, want 0:\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "1 improvement(s)") {
		t.Fatalf("improvement not reported:\n%s", out.String())
	}
}

func TestCompareJSONCarriesVerdicts(t *testing.T) {
	dir := t.TempDir()
	a := writeRecord(t, dir, "a.json", cgRecord("A", []float64{1.00, 1.01, 0.99}))
	b := writeRecord(t, dir, "b.json", cgRecord("B", []float64{1.50, 1.51, 1.49}))
	var out, errBuf bytes.Buffer
	if code := run([]string{"compare", "-json", a, b}, &out, &errBuf); code != 1 {
		t.Fatalf("exit %d", code)
	}
	var doc struct {
		Regressions int `json:"regressions"`
		Cells       []struct {
			Regression bool    `json:"regression"`
			RelDelta   float64 `json:"rel_delta"`
		} `json:"cells"`
	}
	if err := json.Unmarshal(out.Bytes(), &doc); err != nil {
		t.Fatalf("compare -json not parseable: %v", err)
	}
	if doc.Regressions != 1 || len(doc.Cells) != 1 || !doc.Cells[0].Regression {
		t.Fatalf("compare -json shape wrong: %+v", doc)
	}
}

func TestCompareRejectsUnknownSchema(t *testing.T) {
	dir := t.TempDir()
	rec := cgRecord("A", []float64{1.0})
	rec.Schema = "npbgo/bench/v999"
	bad := writeRecord(t, dir, "bad.json", rec)
	good := writeRecord(t, dir, "good.json", cgRecord("B", []float64{1.0}))
	var out, errBuf bytes.Buffer
	if code := run([]string{"compare", bad, good}, &out, &errBuf); code != 2 {
		t.Fatalf("unknown schema exit %d, want 2", code)
	}
	if !strings.Contains(errBuf.String(), "npbgo/bench/v999") {
		t.Fatalf("error should name the schema: %s", errBuf.String())
	}
}

func TestScalingGoldenRecord(t *testing.T) {
	var out, errBuf bytes.Buffer
	if code := run([]string{"scaling", golden}, &out, &errBuf); code != 0 {
		t.Fatalf("exit %d: %s", code, errBuf.String())
	}
	s := out.String()
	// The three paper-§5 anomaly classes must all fire on the fixture:
	// CG t4 is imbalanced, LU t4 is barrier-bound, IS is sub-ms.
	for _, want := range []string{"load-imbalance", "barrier-sync", "small-work", "e(KF)", "CG.S t4", "record 20260801T120000Z"} {
		if !strings.Contains(s, want) {
			t.Fatalf("scaling output missing %q:\n%s", want, s)
		}
	}
}

// TestScalingFailOn: the golden fixture diagnoses all three anomaly
// classes, so -fail-on must turn each named one into exit 1, name the
// flagged cell on stderr, stay 0 when the listed anomaly is absent
// (loose thresholds), and reject unknown anomaly names up front — a
// typo in a CI gate must fail the job, not silently never match.
func TestScalingFailOn(t *testing.T) {
	var out, errBuf bytes.Buffer
	if code := run([]string{"scaling", "-fail-on", "load-imbalance", golden}, &out, &errBuf); code != 1 {
		t.Fatalf("fail-on load-imbalance exit %d, want 1", code)
	}
	if !strings.Contains(errBuf.String(), "load-imbalance") || !strings.Contains(errBuf.String(), "CG") {
		t.Fatalf("stderr should name the anomaly and cell: %s", errBuf.String())
	}
	out.Reset()
	errBuf.Reset()
	if code := run([]string{"scaling", "-fail-on", "load-imbalance,barrier-sync", "-json", golden}, &out, &errBuf); code != 1 {
		t.Fatalf("fail-on list exit %d, want 1", code)
	}
	out.Reset()
	errBuf.Reset()
	if code := run([]string{"scaling", "-imbalance", "99", "-fail-on", "load-imbalance", golden}, &out, &errBuf); code != 0 {
		t.Fatalf("undiagnosed fail-on exit %d, want 0: %s", code, errBuf.String())
	}
	out.Reset()
	errBuf.Reset()
	if code := run([]string{"scaling", "-fail-on", "imbalance", golden}, &out, &errBuf); code != 2 {
		t.Fatalf("unknown fail-on name exit %d, want 2", code)
	}
	if !strings.Contains(errBuf.String(), "load-imbalance") {
		t.Fatalf("error should list the known names: %s", errBuf.String())
	}
}

func TestScalingJSONAndThresholds(t *testing.T) {
	var out, errBuf bytes.Buffer
	if code := run([]string{"scaling", "-json", golden}, &out, &errBuf); code != 0 {
		t.Fatalf("exit %d: %s", code, errBuf.String())
	}
	var doc struct {
		Groups []struct {
			Benchmark string   `json:"benchmark"`
			Anomalies []string `json:"anomalies"`
		} `json:"groups"`
	}
	if err := json.Unmarshal(out.Bytes(), &doc); err != nil {
		t.Fatalf("scaling -json not parseable: %v", err)
	}
	// CG, IS, LU; EP has only a failed cell and forms no group.
	if len(doc.Groups) != 3 {
		t.Fatalf("scaling -json groups: %+v", doc.Groups)
	}
	// Thresholds loose enough that nothing flags.
	out.Reset()
	if code := run([]string{"scaling", "-imbalance", "99", "-barrier-share", "0.99", "-small-work", "1e-9", golden}, &out, &errBuf); code != 0 {
		t.Fatalf("exit %d", code)
	}
	for _, flag := range []string{"load-imbalance", "barrier-sync", "small-work"} {
		if strings.Contains(out.String(), flag) {
			t.Fatalf("loose thresholds still flagged %s:\n%s", flag, out.String())
		}
	}
}
