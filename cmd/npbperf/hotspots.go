// The profile subcommands: hotspots decodes the per-cell pprof files a
// sweep captured (npbsuite -profile) into symbolized flat/cumulative
// hot-function tables, and profdiff judges two sweeps' profiles against
// each other with the same noise discipline `npbperf compare` applies
// to times — a function's share must be both statistically separated
// and practically shifted before it flags.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"npbgo/internal/profile"
	"npbgo/internal/report"
)

// cellProf is one sweep cell joined with its decoded profile table (or
// the reason it could not be decoded).
type cellProf struct {
	cell report.CellMetrics
	path string // resolved profile path ("" when the cell has none)
	tab  *profile.Table
	note string
}

// profKey identifies matching cells across two records.
type profKey struct {
	bench, class, schedule string
	threads                int
}

func (c cellProf) key() profKey {
	return profKey{c.cell.Benchmark, c.cell.Class, c.cell.Schedule, c.cell.Threads}
}

func (k profKey) String() string {
	cell := fmt.Sprintf("t%d", k.threads)
	if k.threads == 0 {
		cell = "serial"
	}
	if k.schedule != "" {
		cell += "/" + k.schedule
	}
	return fmt.Sprintf("%s.%s %s", k.bench, k.class, cell)
}

// resolveProfile makes a record's profile path usable from here: paths
// are recorded as written by the sweep (usually relative to its working
// directory), so a path that does not resolve directly is retried
// relative to the record file's own directory — the layout `npbsuite
// -profile -bench-json results/` leaves behind.
func resolveProfile(recPath, profPath string) string {
	if profPath == "" {
		return ""
	}
	if _, err := os.Stat(profPath); err == nil || filepath.IsAbs(profPath) {
		return profPath
	}
	return filepath.Join(filepath.Dir(recPath), profPath)
}

// cellProfiles decodes the chosen profile of every cell of rec. A cell
// without a profile is skipped; a cell whose profile fails to decode
// (missing file, capture cut by a hard kill) is kept with its note —
// absence with a reason, never silently.
func cellProfiles(recPath string, rec report.BenchRecord, heap bool) []cellProf {
	var out []cellProf
	for _, c := range rec.Cells {
		path := c.CPUProfile
		if heap {
			path = c.HeapProfile
		}
		if path == "" {
			continue
		}
		cp := cellProf{cell: c, path: resolveProfile(recPath, path)}
		p, err := profile.ParseFile(cp.path)
		if err != nil {
			cp.note = err.Error()
			out = append(out, cp)
			continue
		}
		idx := p.DefaultIndex()
		if heap {
			if i := p.ValueIndex("alloc_space"); i >= 0 {
				idx = i
			}
		}
		tab, err := profile.Aggregate(p, idx)
		if err != nil {
			cp.note = err.Error()
			out = append(out, cp)
			continue
		}
		cp.tab = tab
		out = append(out, cp)
	}
	return out
}

// profileCell flattens one decoded cell into the npbgo/profile/v1 cell
// shape, joining the runtime diagnostics recorded next to the profile.
func profileCell(cp cellProf, top int) report.ProfileCell {
	pc := report.ProfileCell{
		Benchmark: cp.cell.Benchmark,
		Class:     cp.cell.Class,
		Threads:   cp.cell.Threads,
		Schedule:  cp.cell.Schedule,
		Profile:   cp.path,
		Imbalance: cp.cell.Imbalance,
		Note:      cp.note,
	}
	if c := cp.cell.Counters; c != nil {
		pc.IPC = c.IPC()
	}
	if t := cp.tab; t != nil {
		pc.Type = t.Type
		pc.Unit = t.Unit
		pc.Total = t.Total
		pc.Samples = t.Samples
		pc.AttributedPct = t.AttributedPct
		pc.Functions = t.Top(top)
	}
	return pc
}

// runHotspots renders the hot-function view of bench records written
// with profiling enabled.
func runHotspots(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("hotspots", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "machine-readable output (schema npbgo/profile/v1)")
	top := fs.Int("top", 10, "functions per cell, by flat share")
	heap := fs.Bool("heap", false, "analyze the heap (alloc_space) profiles instead of CPU")
	minAttr := fs.Float64("min-attr", 0, "exit 1 when any decoded profile attributes less than this percentage to symbolized "+profile.KernelPrefix+" code")
	require := fs.Bool("require", false, "exit 1 unless at least one cell carries a decodable profile")
	if fs.Parse(args) != nil || fs.NArg() < 1 {
		usage(stderr)
		return 2
	}
	exit := 0
	decoded := false
	for _, path := range fs.Args() {
		f, err := os.Open(path)
		if err != nil {
			fmt.Fprintf(stderr, "npbperf: %v\n", err)
			return 2
		}
		recs, err := report.ReadBenchRecords(f)
		f.Close()
		if err != nil {
			fmt.Fprintf(stderr, "npbperf: %s: %v\n", path, err)
			return 2
		}
		for _, rec := range recs {
			var cells []report.ProfileCell
			for _, cp := range cellProfiles(path, rec, *heap) {
				pc := profileCell(cp, *top)
				cells = append(cells, pc)
				if cp.tab != nil {
					decoded = true
					if *minAttr > 0 && !*heap && pc.AttributedPct < *minAttr {
						fmt.Fprintf(stderr, "npbperf: hotspots: %s attributes %.1f%% to %s code (floor %.1f%%)\n",
							cp.key(), pc.AttributedPct, profile.KernelPrefix, *minAttr)
						exit = 1
					}
				}
			}
			if *jsonOut {
				report.WriteProfileJSON(stdout, report.ProfileRecord{
					Schema: report.ProfileSchema, Stamp: rec.Stamp, Cells: cells})
				continue
			}
			renderHotspots(stdout, rec, cells)
		}
	}
	if *require && !decoded {
		fmt.Fprintln(stderr, "npbperf: hotspots -require: no cell carries a decodable profile (run npbsuite -profile)")
		return 1
	}
	return exit
}

// renderHotspots prints the human view: a per-cell summary joined with
// the cell's imbalance and IPC, then the top functions of every cell.
func renderHotspots(stdout io.Writer, rec report.BenchRecord, cells []report.ProfileCell) {
	fmt.Fprintf(stdout, "record %s (GOMAXPROCS=%d, CPUs=%d)\n", rec.Stamp, rec.GoMaxProcs, rec.NumCPU)
	sum := report.New("Profiles per cell (Attr% = samples touching "+profile.KernelPrefix+" code)",
		"Cell", "Type", "Total", "Samples", "Attr%", "Imbal", "IPC")
	for _, pc := range cells {
		key := profKey{pc.Benchmark, pc.Class, pc.Schedule, pc.Threads}
		if pc.Note != "" {
			sum.AddRow(key.String(), "undecodable: "+pc.Note)
			continue
		}
		tab := profile.Table{Unit: pc.Unit}
		imbal, ipc := "-", "-"
		if pc.Imbalance > 0 {
			imbal = fmt.Sprintf("%.2f", pc.Imbalance)
		}
		if pc.IPC > 0 {
			ipc = fmt.Sprintf("%.2f", pc.IPC)
		}
		sum.AddRow(key.String(), pc.Type, tab.FormatValue(pc.Total),
			fmt.Sprintf("%d", pc.Samples), fmt.Sprintf("%.1f", pc.AttributedPct), imbal, ipc)
	}
	if len(cells) == 0 {
		sum.AddRow("(record carries no profiles; run npbsuite -profile)")
	}
	fmt.Fprint(stdout, sum.String())
	for _, pc := range cells {
		if pc.Note != "" {
			continue
		}
		key := profKey{pc.Benchmark, pc.Class, pc.Schedule, pc.Threads}
		tab := profile.Table{Unit: pc.Unit}
		tb := report.New("Hot functions: "+key.String(), "Flat", "Flat%", "Cum", "Cum%", "Function")
		for _, fn := range pc.Functions {
			tb.AddRow(tab.FormatValue(fn.Flat), fmt.Sprintf("%.1f", fn.FlatPct),
				tab.FormatValue(fn.Cum), fmt.Sprintf("%.1f", fn.CumPct), fn.Name)
		}
		fmt.Fprint(stdout, tb.String())
	}
	fmt.Fprintln(stdout)
}

// runProfdiff judges head's profiles against base's, cell by matching
// cell. Exit 1 iff a significant shift exists — two identical sweeps
// must exit 0, which is what makes this usable as a gate.
func runProfdiff(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("profdiff", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "machine-readable output")
	heap := fs.Bool("heap", false, "diff the heap (alloc_space) profiles instead of CPU")
	minDelta := fs.Float64("min-delta", 0.05, "absolute share shift a function must exceed to flag (0.05 = 5 points)")
	minShare := fs.Float64("min-share", 0.02, "functions below this share on both sides are ignored")
	if fs.Parse(args) != nil || fs.NArg() != 2 {
		usage(stderr)
		return 2
	}
	var sides [2][]cellProf
	for i, path := range fs.Args() {
		f, err := os.Open(path)
		if err != nil {
			fmt.Fprintf(stderr, "npbperf: %v\n", err)
			return 2
		}
		recs, err := report.ReadBenchRecords(f)
		f.Close()
		if err != nil {
			fmt.Fprintf(stderr, "npbperf: %s: %v\n", path, err)
			return 2
		}
		if len(recs) != 1 {
			fmt.Fprintf(stderr, "npbperf: profdiff wants exactly one record per file, %s has %d\n", path, len(recs))
			return 2
		}
		sides[i] = cellProfiles(path, recs[0], *heap)
	}
	base := make(map[profKey]cellProf, len(sides[0]))
	for _, cp := range sides[0] {
		base[cp.key()] = cp
	}
	opt := profile.DiffOptions{MinShareDelta: *minDelta, MinShare: *minShare}

	type cellDiff struct {
		Cell string       `json:"cell"`
		Note string       `json:"note,omitempty"`
		Diff profile.Diff `json:"diff"`
	}
	var diffs []cellDiff
	significant := 0
	for _, head := range sides[1] {
		b, ok := base[head.key()]
		if !ok {
			continue // cell exists only in head; nothing to diff against
		}
		cd := cellDiff{Cell: head.key().String()}
		switch {
		case b.tab == nil:
			cd.Note = "base profile undecodable: " + b.note
		case head.tab == nil:
			cd.Note = "head profile undecodable: " + head.note
		default:
			cd.Diff = profile.CompareTables(b.tab, head.tab, opt)
			significant += cd.Diff.Significant
		}
		diffs = append(diffs, cd)
	}
	if *jsonOut {
		writeJSON(stdout, struct {
			Significant int        `json:"significant"`
			Cells       []cellDiff `json:"cells"`
		}{significant, diffs})
	} else {
		tb := report.New("Profile share shifts (flagged = separated CI and |delta| >= min-delta)",
			"Cell", "Function", "Base%", "Head%", "Delta", "Flag")
		for _, cd := range diffs {
			if cd.Note != "" {
				tb.AddRow(cd.Cell, cd.Note)
				continue
			}
			for _, d := range cd.Diff.Deltas {
				flag := ""
				if d.Significant {
					flag = "SHIFT"
				}
				tb.AddRow(cd.Cell, d.Name,
					fmt.Sprintf("%.1f", d.BaseShare*100),
					fmt.Sprintf("%.1f", d.HeadShare*100),
					fmt.Sprintf("%+.1f", d.Delta*100), flag)
			}
		}
		if tb.NumRows() == 0 {
			tb.AddRow("(no overlapping profiled cells, or every function below min-share)")
		}
		fmt.Fprint(stdout, tb.String())
		fmt.Fprintf(stdout, "\n%d significant shift(s) across %d cell(s)\n", significant, len(diffs))
	}
	if significant > 0 {
		return 1
	}
	return 0
}
