package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"npbgo/internal/perfcount"
	"npbgo/internal/report"
)

// The profile fixtures are the report package's bench-record analogue:
// real runtime/pprof output frozen in the profile package's testdata.
const (
	cpuFixture  = "../../internal/profile/testdata/cpu.pprof"
	heapFixture = "../../internal/profile/testdata/heap.pprof"
)

// profiledRecord builds a one-cell record whose CG.S t2 cell points at
// the given profile files, with imbalance and counters to join.
func profiledRecord(stamp, cpu, heap string) report.BenchRecord {
	return report.BenchRecord{
		Schema: report.BenchSchema, Stamp: stamp, Class: "S", GoMaxProcs: 2, NumCPU: 2,
		Cells: []report.CellMetrics{{Benchmark: "CG", Class: "S", Threads: 2,
			Elapsed: 1.0, Verified: true,
			CPUProfile: cpu, HeapProfile: heap,
			Imbalance: 1.37,
			Counters: &perfcount.Stats{Set: "hardware",
				Values: perfcount.Values{Cycles: 100, Instructions: 250}},
		}},
	}
}

func absFixture(t *testing.T, rel string) string {
	t.Helper()
	abs, err := filepath.Abs(rel)
	if err != nil {
		t.Fatal(err)
	}
	return abs
}

func TestHotspotsGoldenFixture(t *testing.T) {
	dir := t.TempDir()
	rec := writeRecord(t, dir, "rec.json",
		profiledRecord("P1", absFixture(t, cpuFixture), absFixture(t, heapFixture)))
	var out, errBuf bytes.Buffer
	if code := run([]string{"hotspots", rec}, &out, &errBuf); code != 0 {
		t.Fatalf("exit %d: %s", code, errBuf.String())
	}
	s := out.String()
	for _, want := range []string{"CG.S t2", "npbgo/internal/profile.spin", "1.37", "2.50", "record P1"} {
		if !strings.Contains(s, want) {
			t.Fatalf("hotspots output missing %q (the imbalance/IPC join and the hot function):\n%s", want, s)
		}
	}
}

func TestHotspotsJSONSchema(t *testing.T) {
	dir := t.TempDir()
	rec := writeRecord(t, dir, "rec.json",
		profiledRecord("P1", absFixture(t, cpuFixture), absFixture(t, heapFixture)))
	var out, errBuf bytes.Buffer
	if code := run([]string{"hotspots", "-json", "-top", "3", rec}, &out, &errBuf); code != 0 {
		t.Fatalf("exit %d: %s", code, errBuf.String())
	}
	recs, err := report.ReadProfileRecords(&out)
	if err != nil {
		t.Fatalf("hotspots -json is not a readable npbgo/profile/v1 stream: %v", err)
	}
	if len(recs) != 1 || recs[0].Schema != report.ProfileSchema || recs[0].Stamp != "P1" {
		t.Fatalf("profile record header wrong: %+v", recs[0])
	}
	cells := recs[0].Cells
	if len(cells) != 1 {
		t.Fatalf("cells = %d, want 1", len(cells))
	}
	c := cells[0]
	if c.Type != "cpu" || c.Unit != "nanoseconds" || c.Samples != 4 {
		t.Fatalf("aggregated dimension wrong: %+v", c)
	}
	if len(c.Functions) != 3 {
		t.Fatalf("-top 3 returned %d functions", len(c.Functions))
	}
	if c.Functions[0].Name != "npbgo/internal/profile.spin" {
		t.Fatalf("top function = %q", c.Functions[0].Name)
	}
	if c.Imbalance != 1.37 || c.IPC != 2.5 {
		t.Fatalf("diagnostics not joined: imbalance=%v ipc=%v", c.Imbalance, c.IPC)
	}
	if c.AttributedPct < 90 {
		t.Fatalf("AttributedPct = %.1f", c.AttributedPct)
	}
}

func TestHotspotsHeapDimension(t *testing.T) {
	dir := t.TempDir()
	rec := writeRecord(t, dir, "rec.json",
		profiledRecord("P1", absFixture(t, cpuFixture), absFixture(t, heapFixture)))
	var out, errBuf bytes.Buffer
	if code := run([]string{"hotspots", "-heap", "-json", rec}, &out, &errBuf); code != 0 {
		t.Fatalf("exit %d: %s", code, errBuf.String())
	}
	recs, err := report.ReadProfileRecords(&out)
	if err != nil {
		t.Fatal(err)
	}
	if c := recs[0].Cells[0]; c.Type != "alloc_space" || c.Unit != "bytes" {
		t.Fatalf("heap dimension wrong: %+v", c)
	}
}

// TestHotspotsMinAttrGate: the fixture attributes ~99% to
// npbgo/internal/ code, so a floor of 95 passes and 99.9 fails — with
// the breaching cell named on stderr.
func TestHotspotsMinAttrGate(t *testing.T) {
	dir := t.TempDir()
	rec := writeRecord(t, dir, "rec.json",
		profiledRecord("P1", absFixture(t, cpuFixture), absFixture(t, heapFixture)))
	var out, errBuf bytes.Buffer
	if code := run([]string{"hotspots", "-min-attr", "95", rec}, &out, &errBuf); code != 0 {
		t.Fatalf("floor 95 exit %d: %s", code, errBuf.String())
	}
	out.Reset()
	errBuf.Reset()
	if code := run([]string{"hotspots", "-min-attr", "99.9", rec}, &out, &errBuf); code != 1 {
		t.Fatalf("floor 99.9 exit %d, want 1", code)
	}
	if !strings.Contains(errBuf.String(), "CG.S t2") {
		t.Fatalf("stderr should name the breaching cell: %s", errBuf.String())
	}
}

// TestHotspotsMissingProfileIsNoted: a record pointing at a vanished
// file renders an explicit note and, under -require with no other
// decodable cell, exits 1 — absence never passes silently.
func TestHotspotsMissingProfileIsNoted(t *testing.T) {
	dir := t.TempDir()
	rec := writeRecord(t, dir, "rec.json",
		profiledRecord("P1", filepath.Join(dir, "gone.cpu.pprof"), ""))
	var out, errBuf bytes.Buffer
	if code := run([]string{"hotspots", rec}, &out, &errBuf); code != 0 {
		t.Fatalf("missing profile should not fail without -require: %d %s", code, errBuf.String())
	}
	if !strings.Contains(out.String(), "undecodable") {
		t.Fatalf("missing profile must render a note:\n%s", out.String())
	}
	out.Reset()
	if code := run([]string{"hotspots", "-require", rec}, &out, &errBuf); code != 1 {
		t.Fatalf("-require with nothing decodable exit %d, want 1", code)
	}
}

// TestHotspotsTruncatedProfileIsNoted: a crash-cut capture (valid gzip
// prefix, cut short) must surface as a per-cell note, not crash the
// command or pass as data.
func TestHotspotsTruncatedProfileIsNoted(t *testing.T) {
	dir := t.TempDir()
	data, err := os.ReadFile(absFixture(t, cpuFixture))
	if err != nil {
		t.Fatal(err)
	}
	cut := filepath.Join(dir, "cut.cpu.pprof")
	if err := os.WriteFile(cut, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	rec := writeRecord(t, dir, "rec.json", profiledRecord("P1", cut, ""))
	var out, errBuf bytes.Buffer
	if code := run([]string{"hotspots", rec}, &out, &errBuf); code != 0 {
		t.Fatalf("exit %d: %s", code, errBuf.String())
	}
	if !strings.Contains(out.String(), "undecodable") {
		t.Fatalf("truncated profile must render a note:\n%s", out.String())
	}
}

// TestHotspotsResolvesRecordRelativePaths: profile paths recorded
// relative to the sweep's working directory resolve against the record
// file's own directory — the `npbsuite -profile -bench-json results/`
// layout read from anywhere.
func TestHotspotsResolvesRecordRelativePaths(t *testing.T) {
	dir := t.TempDir()
	data, err := os.ReadFile(absFixture(t, cpuFixture))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(filepath.Join(dir, "profiles"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "profiles", "CG.S.t2.cpu.pprof"), data, 0o644); err != nil {
		t.Fatal(err)
	}
	rec := writeRecord(t, dir, "rec.json",
		profiledRecord("P1", filepath.Join("profiles", "CG.S.t2.cpu.pprof"), ""))
	var out, errBuf bytes.Buffer
	if code := run([]string{"hotspots", "-require", rec}, &out, &errBuf); code != 0 {
		t.Fatalf("record-relative path did not resolve: exit %d\n%s%s", code, out.String(), errBuf.String())
	}
	if !strings.Contains(out.String(), "npbgo/internal/profile.spin") {
		t.Fatalf("resolved profile not decoded:\n%s", out.String())
	}
}

// TestProfdiffIdenticalExitsZero is the acceptance criterion: two
// sweeps pointing at identical profiles must produce zero significant
// shifts and exit 0.
func TestProfdiffIdenticalExitsZero(t *testing.T) {
	dir := t.TempDir()
	cpu := absFixture(t, cpuFixture)
	a := writeRecord(t, dir, "a.json", profiledRecord("A", cpu, ""))
	b := writeRecord(t, dir, "b.json", profiledRecord("B", cpu, ""))
	var out, errBuf bytes.Buffer
	if code := run([]string{"profdiff", a, b}, &out, &errBuf); code != 0 {
		t.Fatalf("identical profdiff exit %d:\n%s%s", code, out.String(), errBuf.String())
	}
	if !strings.Contains(out.String(), "0 significant shift(s)") {
		t.Fatalf("summary missing:\n%s", out.String())
	}
}

// TestProfdiffShiftExitsOne: diffing against a profile with a wholly
// different hot set (the heap fixture stood in as head) must flag and
// exit 1.
func TestProfdiffShiftExitsOne(t *testing.T) {
	dir := t.TempDir()
	a := writeRecord(t, dir, "a.json", profiledRecord("A", absFixture(t, cpuFixture), ""))
	b := writeRecord(t, dir, "b.json", profiledRecord("B", absFixture(t, heapFixture), ""))
	var out, errBuf bytes.Buffer
	if code := run([]string{"profdiff", "-json", a, b}, &out, &errBuf); code != 1 {
		t.Fatalf("shifted profdiff exit %d, want 1:\n%s", code, out.String())
	}
	var doc struct {
		Significant int `json:"significant"`
		Cells       []struct {
			Cell string `json:"cell"`
			Diff struct {
				Deltas []struct {
					Name        string  `json:"name"`
					Delta       float64 `json:"delta"`
					Significant bool    `json:"significant"`
				} `json:"deltas"`
			} `json:"diff"`
		} `json:"cells"`
	}
	if err := json.Unmarshal(out.Bytes(), &doc); err != nil {
		t.Fatalf("profdiff -json not parseable: %v", err)
	}
	if doc.Significant == 0 || len(doc.Cells) != 1 {
		t.Fatalf("shift not flagged: %+v", doc)
	}
}

// TestProfdiffUndecodableSideIsNoted: one side's profile vanishing
// yields a per-cell note and exit 0 — a missing measurement is not a
// regression verdict.
func TestProfdiffUndecodableSideIsNoted(t *testing.T) {
	dir := t.TempDir()
	a := writeRecord(t, dir, "a.json", profiledRecord("A", absFixture(t, cpuFixture), ""))
	b := writeRecord(t, dir, "b.json", profiledRecord("B", filepath.Join(dir, "gone.pprof"), ""))
	var out, errBuf bytes.Buffer
	if code := run([]string{"profdiff", a, b}, &out, &errBuf); code != 0 {
		t.Fatalf("exit %d:\n%s%s", code, out.String(), errBuf.String())
	}
	if !strings.Contains(out.String(), "undecodable") {
		t.Fatalf("missing side must be noted:\n%s", out.String())
	}
}
