// Command npb runs a single NAS Parallel Benchmark, like the individual
// NPB binaries (bt.S.x, cg.A.x, ...):
//
//	npb -bench BT -class A -threads 4
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"npbgo"
)

func main() {
	bench := flag.String("bench", "CG", "benchmark: BT SP LU FT MG CG IS EP")
	class := flag.String("class", "S", "problem class: S W A B C")
	threads := flag.Int("threads", 1, "worker threads (1 = serial)")
	warmup := flag.Bool("warmup", false, "apply the per-thread warmup load of the paper's §5.2 (CG)")
	schedule := flag.String("schedule", "", "team loop schedule: static (default), dynamic, guided, stealing or auto")
	verbose := flag.Bool("v", false, "print the full verification report")
	profile := flag.Bool("profile", false, "print a per-phase timing profile (BT)")
	flag.Parse()

	if len(*class) != 1 {
		fmt.Fprintln(os.Stderr, "npb: -class must be one letter")
		os.Exit(2)
	}
	cfg := npbgo.Config{
		Benchmark: npbgo.Benchmark(strings.ToUpper(*bench)),
		Class:     strings.ToUpper(*class)[0],
		Threads:   *threads,
		Warmup:    *warmup,
		Schedule:  *schedule,
		Profile:   *profile,
	}
	fmt.Printf("NAS Parallel Benchmarks (Go translation) - %s Benchmark\n", cfg.Benchmark)
	fmt.Printf(" Class %c, %d thread(s)\n", cfg.Class, cfg.Threads)
	res, err := npbgo.Run(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "npb:", err)
		os.Exit(1)
	}
	fmt.Println(res)
	if *verbose {
		fmt.Print(res.Detail)
	}
	if res.Profile != "" {
		fmt.Println("phase profile:")
		fmt.Print(res.Profile)
	}
	if res.Failed {
		os.Exit(1)
	}
}
