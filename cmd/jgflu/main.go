// Command jgflu regenerates the paper's Table 7: the Java Grande lufact
// benchmark (unblocked BLAS1 LU with partial pivoting) against a
// LINPACK/LAPACK-style blocked LU with a matrix-multiply update, on
// classes A, B and C (500, 1000 and 2000 square matrices).
//
//	jgflu -classes A,B,C -nb 32
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"npbgo/internal/jgf"
	"npbgo/internal/report"
)

func main() {
	classesFlag := flag.String("classes", "A,B,C", "comma-separated class letters")
	nb := flag.Int("nb", 32, "block size for the blocked (DGETRF-style) variant")
	flag.Parse()

	tb := report.New(
		"Java Grande LU study (cf. paper Table 7), times in seconds",
		"Class", "n", "lufact", "blocked LU", "lufact Mflop/s", "blocked Mflop/s", "ratio")

	for _, tok := range strings.Split(*classesFlag, ",") {
		cl := strings.ToUpper(strings.TrimSpace(tok))[0]
		lres, err := jgf.RunLufact(cl, 0)
		if err != nil {
			fmt.Fprintln(os.Stderr, "jgflu:", err)
			os.Exit(2)
		}
		bres, err := jgf.RunBlocked(cl, 0, *nb)
		if err != nil {
			fmt.Fprintln(os.Stderr, "jgflu:", err)
			os.Exit(2)
		}
		if !lres.OK || !bres.OK {
			fmt.Fprintf(os.Stderr, "jgflu: class %c residual check failed (%g, %g)\n",
				cl, lres.Residual, bres.Residual)
			os.Exit(1)
		}
		lt := (lres.Factor + lres.Solve).Seconds()
		bt := (bres.Factor + bres.Solve).Seconds()
		ratio := 0.0
		if bt > 0 {
			ratio = lt / bt
		}
		tb.AddRow(string(cl), fmt.Sprintf("%d", lres.N),
			report.Seconds(lt), report.Seconds(bt),
			fmt.Sprintf("%.1f", lres.Mflops), fmt.Sprintf("%.1f", bres.Mflops),
			fmt.Sprintf("%.2f", ratio))
	}
	fmt.Print(tb.String())
	fmt.Println("\nThe paper's point: lufact is BLAS1/memory-bound (poor cache reuse), so it")
	fmt.Println("obscures language comparisons; the blocked LU shows the machine's real headroom.")
}
