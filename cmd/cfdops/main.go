// Command cfdops regenerates the paper's §3 translation study: the
// execution times of the five basic CFD operations on the 81x81x100
// grid (Table 1), for the serial code, the dimension-preserving array
// layout, and a sweep of thread counts.
//
//	cfdops -threads 1,2,4 -iters 100
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"npbgo/internal/grid"
	"npbgo/internal/ops"
	"npbgo/internal/report"
	"npbgo/internal/team"
)

// timeIt reports the best-of-3 time of iters calls to f.
func timeIt(iters int, f func()) float64 {
	best := 0.0
	for rep := 0; rep < 3; rep++ {
		t0 := time.Now()
		for i := 0; i < iters; i++ {
			f()
		}
		s := time.Since(t0).Seconds()
		if rep == 0 || s < best {
			best = s
		}
	}
	return best
}

func main() {
	threadsFlag := flag.String("threads", "1,2,4", "comma-separated thread counts")
	iters := flag.Int("iters", 20, "iterations per measurement")
	layout := flag.Bool("layout", true, "include the linearized vs nested layout comparison")
	dim := flag.String("grid", "81x81x100", "grid extents n1xn2xn3")
	flag.Parse()

	var threads []int
	for _, tok := range strings.Split(*threadsFlag, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(tok))
		if err != nil || n < 1 {
			fmt.Fprintf(os.Stderr, "cfdops: bad thread count %q\n", tok)
			os.Exit(2)
		}
		threads = append(threads, n)
	}
	d := ops.DefaultDim
	if n, err := fmt.Sscanf(*dim, "%dx%dx%d", &d.N1, &d.N2, &d.N3); n != 3 || err != nil {
		fmt.Fprintf(os.Stderr, "cfdops: bad -grid %q\n", *dim)
		os.Exit(2)
	}
	w := ops.NewWorkload(d)
	var sink float64

	type op struct {
		name     string
		factor   int   // the paper times Assignment for 10 iterations
		flops    int64 // analytic flop count per invocation (0: none)
		serial   func()
		parallel func(tm *team.Team)
	}
	operations := []op{
		{"Assignment (10 iterations)", 10, 0, w.Assignment, w.AssignmentParallel},
		{"First Order Stencil", 1, w.FlopsFirstOrder(), w.FirstOrder, w.FirstOrderParallel},
		{"Second Order Stencil", 1, w.FlopsSecondOrder(), w.SecondOrder, w.SecondOrderParallel},
		{"Matrix vector multiplication", 1, w.FlopsMatVec(), w.MatVec, w.MatVecParallel},
		{"Reduction Sum", 1, w.FlopsReduceSum(), func() { sink += w.ReduceSum() },
			func(tm *team.Team) { sink += w.ReduceSumParallel(tm) }},
	}

	header := []string{"Operation", "Serial"}
	for _, t := range threads {
		header = append(header, fmt.Sprintf("%d", t))
	}
	header = append(header, "serial Mflop/s")
	tb := report.New(
		fmt.Sprintf("Basic CFD operation times in seconds on %dx%dx%d (cf. paper Table 1; per-cell value = time of %d op invocations)",
			d.N1, d.N2, d.N3, *iters),
		header...)

	for _, o := range operations {
		row := []string{o.name}
		ts := timeIt(*iters*o.factor, o.serial)
		row = append(row, report.Seconds(ts))
		for _, t := range threads {
			tm := team.New(t)
			row = append(row, report.Seconds(timeIt(*iters*o.factor, func() { o.parallel(tm) })))
			tm.Close()
		}
		if o.flops > 0 && ts > 0 {
			rate := float64(o.flops) * float64(*iters*o.factor) / ts * 1e-6
			row = append(row, fmt.Sprintf("%.0f", rate))
		} else {
			row = append(row, "-")
		}
		tb.AddRow(row...)
	}
	fmt.Print(tb.String())

	if *layout {
		fmt.Println()
		lt := report.New("Array layout study (cf. §3): linearized vs dimension-preserving, serial",
			"Operation", "Linearized", "Nested", "Nested/Linearized")
		var sink float64
		pairs := []struct {
			name     string
			lin, nst func()
		}{
			{"Assignment", w.Assignment, w.AssignmentNested},
			{"First Order Stencil", w.FirstOrder, w.FirstOrderNested},
			{"Second Order Stencil", w.SecondOrder, w.SecondOrderNested},
			{"Matrix vector multiplication", w.MatVec, w.MatVecNested},
			{"Reduction Sum", func() { sink += w.ReduceSum() }, func() { sink += w.ReduceSumNested() }},
		}
		for _, p := range pairs {
			tl := timeIt(*iters, p.lin)
			tn := timeIt(*iters, p.nst)
			ratio := 0.0
			if tl > 0 {
				ratio = tn / tl
			}
			lt.AddRow(p.name, report.Seconds(tl), report.Seconds(tn), fmt.Sprintf("%.2f", ratio))
		}
		fmt.Print(lt.String())
		_ = sink
	}
	_ = sink
	_ = grid.Dim3{}
}
