// Command gengolden regenerates the pinned verification-reference
// tables for the pseudo-applications (BT, SP, LU) by running each at
// the requested classes and printing the Go literals that live in the
// benchmarks' reference maps. This documents — and makes reproducible —
// the provenance of those values (see DESIGN.md §5): they are this
// implementation's deterministic outputs, cross-checked against the
// published verify.f constants.
//
//	gengolden -classes S,W -bench BT,SP,LU
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"npbgo/internal/bt"
	"npbgo/internal/lu"
	"npbgo/internal/sp"
)

func fiveVec(v [5]float64) string {
	return fmt.Sprintf("[5]float64{%.13e, %.13e, %.13e, %.13e, %.13e}",
		v[0], v[1], v[2], v[3], v[4])
}

func main() {
	classesFlag := flag.String("classes", "S", "comma-separated class letters")
	benchFlag := flag.String("bench", "BT,SP,LU", "comma-separated benchmark subset")
	flag.Parse()

	var classes []byte
	for _, tok := range strings.Split(*classesFlag, ",") {
		classes = append(classes, strings.ToUpper(strings.TrimSpace(tok))[0])
	}
	for _, tok := range strings.Split(*benchFlag, ",") {
		name := strings.ToUpper(strings.TrimSpace(tok))
		for _, cl := range classes {
			switch name {
			case "BT":
				b, err := bt.New(cl, 1)
				die(err)
				r := b.Run()
				fmt.Printf("// bt reference\n'%c': {\n\txcr: %s,\n\txce: %s,\n},\n",
					cl, fiveVec(r.XCR), fiveVec(r.XCE))
			case "SP":
				b, err := sp.New(cl, 1)
				die(err)
				r := b.Run()
				fmt.Printf("// sp reference\n'%c': {\n\txcr: %s,\n\txce: %s,\n},\n",
					cl, fiveVec(r.XCR), fiveVec(r.XCE))
			case "LU":
				b, err := lu.New(cl, 1)
				die(err)
				r := b.Run()
				fmt.Printf("// lu reference\n'%c': {\n\txcr: %s,\n\txce: %s,\n\txci: %.13e,\n},\n",
					cl, fiveVec(r.RsdNm), fiveVec(r.ErrNm), r.Frc)
			default:
				fmt.Fprintf(os.Stderr, "gengolden: unknown benchmark %q\n", name)
				os.Exit(2)
			}
		}
	}
}

func die(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "gengolden:", err)
		os.Exit(1)
	}
}
