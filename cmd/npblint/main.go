// Command npblint runs the npbgo static-analysis suite: the
// team-parallelism and linearized-array invariant checkers described in
// DESIGN.md §7.
//
// Two modes share the same analyzers:
//
//	npblint [-list] [packages]      standalone; packages default to ./...
//	go vet -vettool=$(realpath npblint) ./...   unit mode, driven by go vet
//
// Unit mode implements the vettool command-line protocol (-V=full,
// -flags, unit.cfg) and additionally covers _test.go files, since go
// vet analyzes test variants of each package. Findings are suppressed
// by a trailing or preceding comment of the form
//
//	//npblint:ignore <analyzer> <reason>
//
// Per-analyzer boolean flags (-gridindex=false, ...) select or deselect
// individual checks, as with the x/tools multichecker.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"npbgo/internal/analysis"
	"npbgo/internal/analysis/driver"
	"npbgo/internal/analysis/npblint"
)

func main() {
	all := npblint.Analyzers()

	// The -V, -flags and per-analyzer flags form the go vet tool
	// protocol; they must exist before flag.Parse.
	flag.Var(versionFlag{}, "V", "print version and exit")
	printflags := flag.Bool("flags", false, "print analyzer flags in JSON (vettool protocol)")
	list := flag.Bool("list", false, "list analyzers and exit")
	unusedIgnores := flag.Bool("unused-ignores", false,
		"warn about //npblint:ignore comments that suppress nothing (standalone mode; never affects the exit status)")
	enabled := make(map[string]*string)
	for _, a := range all {
		enabled[a.Name] = flag.String(a.Name, "", "enable/disable the "+a.Name+" analyzer (true/false)")
	}
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: npblint [flags] [package patterns | unit.cfg]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *printflags {
		printFlags()
		return
	}
	if *list {
		for _, a := range all {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers := selectAnalyzers(all, enabled)
	// Suppression names are validated against the full catalog, not the
	// selected subset: -gridindex=false must not turn every valid
	// `//npblint:ignore gridindex` in the repo into an unknown name.
	cfg := driver.RunConfig{UnusedIgnores: *unusedIgnores}
	for _, a := range all {
		cfg.Known = append(cfg.Known, a.Name)
	}
	args := flag.Args()

	// Unit mode: go vet hands us exactly one *.cfg file.
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		n, err := driver.RunUnit(os.Stderr, args[0], analyzers, cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "npblint: %v\n", err)
			os.Exit(1)
		}
		if n > 0 {
			os.Exit(1)
		}
		return
	}

	// Standalone mode.
	if len(args) == 0 {
		args = []string{"./..."}
	}
	pkgs, err := driver.Load(".", args...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "npblint: %v\n", err)
		os.Exit(1)
	}
	findings, warnings, err := driver.RunConfigured(pkgs, analyzers, cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "npblint: %v\n", err)
		os.Exit(1)
	}
	for _, f := range findings {
		fmt.Fprintf(os.Stderr, "%s: %s (%s)\n", f.Pos, f.Message, f.Analyzer)
	}
	// The suppression audit is advisory: warnings are labeled and never
	// change the exit status.
	for _, w := range warnings {
		fmt.Fprintf(os.Stderr, "%s: warning: %s (%s)\n", w.Pos, w.Message, w.Analyzer)
	}
	if len(findings) > 0 {
		os.Exit(1)
	}
}

// selectAnalyzers applies the multichecker flag convention: if any
// -name=true flag is set, run only those; otherwise run all except the
// -name=false ones.
func selectAnalyzers(all []*analysis.Analyzer, enabled map[string]*string) []*analysis.Analyzer {
	anyTrue := false
	for _, v := range enabled {
		if *v == "true" {
			anyTrue = true
		}
	}
	var keep []*analysis.Analyzer
	for _, a := range all {
		v := *enabled[a.Name]
		if anyTrue && v != "true" {
			continue
		}
		if v == "false" {
			continue
		}
		keep = append(keep, a)
	}
	return keep
}

// printFlags describes our flags in the JSON form go vet consumes to
// validate the flags it forwards.
func printFlags() {
	type jsonFlag struct {
		Name  string
		Bool  bool
		Usage string
	}
	var flags []jsonFlag
	flag.VisitAll(func(f *flag.Flag) {
		b, ok := f.Value.(interface{ IsBoolFlag() bool })
		flags = append(flags, jsonFlag{f.Name, ok && b.IsBoolFlag(), f.Usage})
	})
	data, err := json.MarshalIndent(flags, "", "\t")
	if err != nil {
		fmt.Fprintf(os.Stderr, "npblint: %v\n", err)
		os.Exit(1)
	}
	os.Stdout.Write(data)
}

// versionFlag implements the -V=full protocol go vet uses to fingerprint
// the tool for build caching: print a line containing the executable
// hash and exit.
type versionFlag struct{}

func (versionFlag) IsBoolFlag() bool { return true }
func (versionFlag) String() string   { return "" }

func (versionFlag) Set(s string) error {
	if s != "full" {
		return fmt.Errorf("unsupported: -V=%s (use -V=full)", s)
	}
	exe, err := os.Executable()
	if err != nil {
		return err
	}
	f, err := os.Open(exe)
	if err != nil {
		return err
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return err
	}
	fmt.Printf("%s version devel comments-go-here buildID=%02x\n", exe, string(h.Sum(nil)))
	os.Exit(0)
	return nil
}
