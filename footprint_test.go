package npbgo

import "testing"

// TestFootprintGrowsWithClass: each benchmark's estimate must be
// positive and non-decreasing along the class ladder — the property the
// admission guard relies on (a cell skipped at class B must not be
// admitted at class C).
func TestFootprintGrowsWithClass(t *testing.T) {
	for _, b := range Benchmarks() {
		var prev uint64
		for _, class := range Classes() {
			got, err := Config{Benchmark: b, Class: class, Threads: 2}.FootprintBytes()
			if err != nil {
				t.Fatalf("%s.%c: %v", b, class, err)
			}
			if got == 0 {
				t.Fatalf("%s.%c: zero footprint", b, class)
			}
			if got < prev {
				t.Fatalf("%s.%c: footprint %d below class predecessor %d", b, class, got, prev)
			}
			prev = got
		}
	}
}

// TestFootprintScalesWithThreads: benchmarks with per-thread arrays
// (IS's density replicas are the clearest case) must charge for them.
func TestFootprintScalesWithThreads(t *testing.T) {
	one, err := Config{Benchmark: IS, Class: 'A', Threads: 1}.FootprintBytes()
	if err != nil {
		t.Fatal(err)
	}
	eight, err := Config{Benchmark: IS, Class: 'A', Threads: 8}.FootprintBytes()
	if err != nil {
		t.Fatal(err)
	}
	if eight <= one {
		t.Fatalf("IS footprint flat across threads: t1=%d t8=%d", one, eight)
	}
}

// TestFootprintOrdersOfMagnitude pins a few anchors so a broken
// estimator (bytes-vs-words slips, dropped factors) fails loudly: FT
// class A is three 256·256·128 complex grids — ~470 MiB — while class S
// cells are tens of MiB at most.
func TestFootprintOrdersOfMagnitude(t *testing.T) {
	ftA, err := Config{Benchmark: FT, Class: 'A', Threads: 1}.FootprintBytes()
	if err != nil {
		t.Fatal(err)
	}
	if ftA < 400<<20 || ftA > 1<<30 {
		t.Fatalf("FT.A footprint %d outside [400MiB, 1GiB]", ftA)
	}
	cgS, err := Config{Benchmark: CG, Class: 'S', Threads: 1}.FootprintBytes()
	if err != nil {
		t.Fatal(err)
	}
	if cgS > 64<<20 {
		t.Fatalf("CG.S footprint %d implausibly large", cgS)
	}
}

func TestFootprintRejectsUnknown(t *testing.T) {
	if _, err := (Config{Benchmark: "XX", Class: 'S'}).FootprintBytes(); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
	if _, err := (Config{Benchmark: FT, Class: 'Z'}).FootprintBytes(); err == nil {
		t.Fatal("unknown class accepted")
	}
}

// TestFootprintDefaults: zero-valued Class/Threads follow RunContext's
// defaults instead of erroring.
func TestFootprintDefaults(t *testing.T) {
	got, err := Config{Benchmark: EP}.FootprintBytes()
	if err != nil || got == 0 {
		t.Fatalf("defaults not applied: %d, %v", got, err)
	}
}
