package npbgo_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"npbgo"
	"npbgo/internal/fault"
	"npbgo/internal/team"
)

// TestRunContextDeadlineCancelsCGMidIteration slows CG's outer loop
// with an injected per-iteration delay so a run would take seconds, and
// checks a short deadline stops it within roughly one iteration.
func TestRunContextDeadlineCancelsCGMidIteration(t *testing.T) {
	fault.Activate(1, fault.Rule{
		Site: "cg.iter", Kind: fault.KindDelay, Count: -1, Sleep: 50 * time.Millisecond,
	})
	defer fault.Reset()
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := npbgo.RunContext(ctx, npbgo.Config{Benchmark: npbgo.CG, Class: 'S', Threads: 2})
	took := time.Since(start)
	if err == nil {
		t.Fatal("deadline-bounded run reported success")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded in chain", err)
	}
	var re *npbgo.RunError
	if !errors.As(err, &re) || re.Kind != npbgo.ErrCancelled {
		t.Fatalf("err = %#v, want *RunError kind %q", err, npbgo.ErrCancelled)
	}
	if re.Benchmark != npbgo.CG || re.Class != 'S' || re.Threads != 2 {
		t.Fatalf("RunError cell context wrong: %+v", re)
	}
	// 15 iterations x 50ms of injected delay alone would be 750ms; a
	// prompt cancellation returns within a small multiple of one
	// iteration after the 120ms deadline.
	if took > 10*time.Second {
		t.Fatalf("run not cancelled promptly: took %v", took)
	}
}

// TestRunContextIsolatesInjectedWorkerPanic proves a worker panic in a
// real benchmark region surfaces as a typed error, not a crash.
func TestRunContextIsolatesInjectedWorkerPanic(t *testing.T) {
	fault.Activate(1, fault.Rule{Site: "team.region", Kind: fault.KindPanic, Count: -1})
	defer fault.Reset()
	_, err := npbgo.RunContext(context.Background(),
		npbgo.Config{Benchmark: npbgo.EP, Class: 'S', Threads: 4})
	if err == nil {
		t.Fatal("worker panic swallowed")
	}
	var re *npbgo.RunError
	if !errors.As(err, &re) || re.Kind != npbgo.ErrPanic {
		t.Fatalf("err = %v, want *RunError kind %q", err, npbgo.ErrPanic)
	}
	var pe *team.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("cause %v does not unwrap to *team.PanicError", re.Cause)
	}
	if _, ok := pe.Value.(fault.InjectedPanic); !ok {
		t.Fatalf("panic value %v (%T), want fault.InjectedPanic", pe.Value, pe.Value)
	}
}

// TestRunContextVerificationFailureIsTyped corrupts EP's verification
// value and checks the mismatch comes back as a verification RunError
// alongside the failed Result.
func TestRunContextVerificationFailureIsTyped(t *testing.T) {
	fault.Activate(1, fault.Rule{Site: "ep.verify", Kind: fault.KindCorrupt, Count: -1})
	defer fault.Reset()
	res, err := npbgo.RunContext(context.Background(),
		npbgo.Config{Benchmark: npbgo.EP, Class: 'S', Threads: 2})
	if err == nil {
		t.Fatal("corrupted verification accepted")
	}
	var re *npbgo.RunError
	if !errors.As(err, &re) || re.Kind != npbgo.ErrVerification {
		t.Fatalf("err = %v, want kind %q", err, npbgo.ErrVerification)
	}
	if !res.Failed {
		t.Fatal("Result.Failed not set on verification mismatch")
	}
}

// TestRunValidatesConfigUpFront: bad thread counts and classes must
// produce descriptive errors, not panics deep inside team.New.
func TestRunValidatesConfigUpFront(t *testing.T) {
	cases := []npbgo.Config{
		{Benchmark: npbgo.CG, Threads: -3},
		{Benchmark: npbgo.CG, Class: 'Z'},
		{Benchmark: "QQ"},
	}
	for _, cfg := range cases {
		res, err := npbgo.Run(cfg) // must not panic
		if err == nil {
			t.Fatalf("config %+v accepted", cfg)
		}
		var re *npbgo.RunError
		if !errors.As(err, &re) || re.Kind != npbgo.ErrConfig {
			t.Fatalf("config %+v: err = %v, want *RunError kind %q", cfg, err, npbgo.ErrConfig)
		}
		_ = res
	}
}

// TestRunContextNilAndDoneContexts covers the edges of context handling.
func TestRunContextNilAndDoneContexts(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := npbgo.RunContext(ctx, npbgo.Config{Benchmark: npbgo.EP, Class: 'S'})
	var re *npbgo.RunError
	if !errors.As(err, &re) || re.Kind != npbgo.ErrCancelled {
		t.Fatalf("pre-cancelled ctx: err = %v", err)
	}
	// A nil context behaves like Background.
	res, err := npbgo.RunContext(nil, npbgo.Config{Benchmark: npbgo.EP, Class: 'S'}) //nolint:staticcheck
	if err != nil || !res.Verified {
		t.Fatalf("nil ctx run failed: %v %+v", err, res)
	}
}

// TestRunContextDeadlineCancelsFTAndMG exercises the cancellation
// plumbing of the other two cancellable kernels.
func TestRunContextDeadlineCancelsFTAndMG(t *testing.T) {
	// Class W: large enough that a 1ms deadline always lands mid-run
	// (class S MG can finish inside the deadline on a fast host).
	for _, b := range []npbgo.Benchmark{npbgo.FT, npbgo.MG} {
		ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
		_, err := npbgo.RunContext(ctx, npbgo.Config{Benchmark: b, Class: 'W', Threads: 2})
		cancel()
		if err == nil {
			t.Fatalf("%s: expired deadline produced no error", b)
		}
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("%s: err = %v", b, err)
		}
	}
}
