package npbgo_test

import (
	"fmt"

	"npbgo"
)

// ExampleRun shows the basic benchmark-driving API. (Timing varies per
// host, so this example asserts only the verification outcome.)
func ExampleRun() {
	res, err := npbgo.Run(npbgo.Config{Benchmark: npbgo.MG, Class: 'S', Threads: 2})
	if err != nil {
		panic(err)
	}
	fmt.Println(res.Benchmark, string(res.Class), res.Verified, res.Tier)
	// Output: MG S true official
}

// ExampleBlockRange shows the static partitioning the team runtime uses
// for loop work-sharing.
func ExampleBlockRange() {
	for id := 0; id < 3; id++ {
		lo, hi := npbgo.BlockRange(0, 10, 3, id)
		fmt.Printf("worker %d: [%d,%d)\n", id, lo, hi)
	}
	// Output:
	// worker 0: [0,4)
	// worker 1: [4,7)
	// worker 2: [7,10)
}

// ExampleTeam demonstrates a deterministic parallel reduction.
func ExampleTeam() {
	team := npbgo.NewTeam(4)
	defer team.Close()
	sum := team.ReduceSum(1, 101, func(lo, hi int) float64 {
		s := 0.0
		for i := lo; i < hi; i++ {
			s += float64(i)
		}
		return s
	})
	fmt.Println(sum)
	// Output: 5050
}

// ExampleNewPoissonSolver solves a dipole right-hand side and reports
// the order of the residual after four V-cycles.
func ExampleNewPoissonSolver() {
	s, err := npbgo.NewPoissonSolver(16, 1)
	if err != nil {
		panic(err)
	}
	rhs := make([]float64, 16*16*16)
	rhs[0], rhs[2048] = 1, -1
	_, res, err := s.Solve(rhs, 6)
	if err != nil {
		panic(err)
	}
	fmt.Println(res < 1e-4)
	// Output: true
}
