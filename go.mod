module npbgo

go 1.22
