// Benchmark harness: one testing.B benchmark per table of the paper.
//
//	Table 0 (§3 layout study)  BenchmarkTable0ArrayLayout
//	Table 1 (basic CFD ops)    BenchmarkTable1BasicOps
//	Tables 2-6 (suite sweep)   BenchmarkTable2to6Suite
//	Table 7 (Java Grande LU)   BenchmarkTable7JavaGrandeLU
//
// Each sub-benchmark reports seconds per operation, the unit of the
// paper's tables. The suite benchmarks default to class S so that
// `go test -bench .` finishes quickly; set NPB_CLASS=W or A (and give
// -timeout accordingly) to regenerate the paper-scale numbers, or use
// cmd/npbsuite, which prints the assembled tables directly.
package npbgo_test

import (
	"fmt"
	"os"
	"testing"

	"npbgo"
	"npbgo/internal/cg"
	"npbgo/internal/grid"
	"npbgo/internal/jgf"
	"npbgo/internal/lu"
	"npbgo/internal/ops"
	"npbgo/internal/team"
)

// suiteClass returns the problem class for the suite benchmarks.
func suiteClass() byte {
	if c := os.Getenv("NPB_CLASS"); len(c) == 1 {
		return c[0]
	}
	return 'S'
}

var threadCounts = []int{1, 2, 4}

// BenchmarkTable0ArrayLayout reproduces the §3 translation study: the
// same stencil kernels on linearized versus dimension-preserving
// arrays. The paper measured the nested form "times slower" and chose
// linearized arrays for the whole suite.
func BenchmarkTable0ArrayLayout(b *testing.B) {
	w := ops.NewWorkload(grid.Dim3{N1: 81, N2: 81, N3: 100})
	cases := []struct {
		name string
		fn   func()
	}{
		{"Assignment/linearized", w.Assignment},
		{"Assignment/nested", w.AssignmentNested},
		{"FirstOrder/linearized", w.FirstOrder},
		{"FirstOrder/nested", w.FirstOrderNested},
		{"SecondOrder/linearized", w.SecondOrder},
		{"SecondOrder/nested", w.SecondOrderNested},
		{"MatVec5x5/linearized", w.MatVec},
		{"MatVec5x5/nested", w.MatVecNested},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				c.fn()
			}
		})
	}
	var sink float64
	b.Run("ReductionSum/linearized", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sink += w.ReduceSum()
		}
	})
	b.Run("ReductionSum/nested", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sink += w.ReduceSumNested()
		}
	})
	_ = sink
}

// BenchmarkTable1BasicOps reproduces Table 1: the five basic CFD
// operations on the 81x81x100 grid, serial and across thread counts.
// (The paper's Assignment row times 10 iterations; here one iteration
// is one op, so multiply by 10 to compare.)
func BenchmarkTable1BasicOps(b *testing.B) {
	w := ops.NewWorkload(grid.Dim3{N1: 81, N2: 81, N3: 100})
	var sink float64
	serial := []struct {
		name string
		fn   func()
	}{
		{"Assignment", w.Assignment},
		{"FirstOrderStencil", w.FirstOrder},
		{"SecondOrderStencil", w.SecondOrder},
		{"MatVec5x5", w.MatVec},
		{"ReductionSum", func() { sink += w.ReduceSum() }},
	}
	for _, c := range serial {
		b.Run(c.name+"/serial", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				c.fn()
			}
		})
	}
	parallel := []struct {
		name string
		fn   func(tm *team.Team)
	}{
		{"Assignment", w.AssignmentParallel},
		{"FirstOrderStencil", w.FirstOrderParallel},
		{"SecondOrderStencil", w.SecondOrderParallel},
		{"MatVec5x5", w.MatVecParallel},
		{"ReductionSum", func(tm *team.Team) { sink += w.ReduceSumParallel(tm) }},
	}
	for _, c := range parallel {
		for _, n := range threadCounts {
			b.Run(fmt.Sprintf("%s/threads=%d", c.name, n), func(b *testing.B) {
				tm := team.New(n)
				defer tm.Close()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					c.fn(tm)
				}
			})
		}
	}
	_ = sink
}

// BenchmarkTable2to6Suite reproduces the benchmark rows of Tables 2-6:
// every NPB benchmark, serial (threads=1, regions inline) and across
// thread counts. One iteration is one complete verified benchmark run.
func BenchmarkTable2to6Suite(b *testing.B) {
	class := suiteClass()
	for _, bench := range npbgo.Benchmarks() {
		for _, n := range append([]int{1}, threadCounts[1:]...) {
			b.Run(fmt.Sprintf("%s.%c/threads=%d", bench, class, n), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					res, err := npbgo.Run(npbgo.Config{Benchmark: bench, Class: class, Threads: n})
					if err != nil {
						b.Fatal(err)
					}
					if res.Failed {
						b.Fatalf("verification failed:\n%s", res.Detail)
					}
				}
			})
		}
	}
}

// BenchmarkTable7JavaGrandeLU reproduces Table 7: the Java Grande
// lufact LU (BLAS1, poor cache reuse) against the blocked DGETRF-style
// LU (matrix-multiply update) on classes A and B (C via NPB_CLASS=C).
func BenchmarkTable7JavaGrandeLU(b *testing.B) {
	classes := []byte{'A', 'B'}
	if suiteClass() == 'C' {
		classes = append(classes, 'C')
	}
	for _, cl := range classes {
		b.Run(fmt.Sprintf("lufact/class=%c", cl), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := jgf.RunLufact(cl, 0)
				if err != nil {
					b.Fatal(err)
				}
				if !res.OK {
					b.Fatalf("residual %v", res.Residual)
				}
			}
		})
		b.Run(fmt.Sprintf("blocked/class=%c", cl), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := jgf.RunBlocked(cl, 0, 32)
				if err != nil {
					b.Fatal(err)
				}
				if !res.OK {
					b.Fatalf("residual %v", res.Residual)
				}
			}
		})
	}
}

// BenchmarkAblationCGWarmup measures the §5.2 warmup fix: on the
// paper's SGI the warmup load was what made the JVM place CG's threads
// on distinct CPUs; the benchmark exposes its pure overhead cost here.
func BenchmarkAblationCGWarmup(b *testing.B) {
	for _, warm := range []bool{false, true} {
		name := "off"
		if warm {
			name = "on"
		}
		b.Run("warmup="+name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := npbgo.Run(npbgo.Config{Benchmark: npbgo.CG, Class: 'S', Threads: 2, Warmup: warm})
				if err != nil {
					b.Fatal(err)
				}
				if res.Failed {
					b.Fatal("verification failed")
				}
			}
		})
	}
}

// BenchmarkAblationLUSchedule contrasts the two LU sweep schedules the
// NPB world uses: the paper's pipelined sweeps (synchronization inside
// the loop over one grid dimension, §5.2) against hyperplane/wavefront
// scheduling (a barrier per diagonal front). Results are bitwise
// identical; only the synchronization pattern differs.
func BenchmarkAblationLUSchedule(b *testing.B) {
	for _, hyper := range []bool{false, true} {
		name := "pipelined"
		var opts []lu.Option
		if hyper {
			name = "hyperplane"
			opts = append(opts, lu.WithHyperplane())
		}
		for _, n := range []int{1, 2, 4} {
			b.Run(fmt.Sprintf("%s/threads=%d", name, n), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					bench, err := lu.New('S', n, opts...)
					if err != nil {
						b.Fatal(err)
					}
					if res := bench.Run(); res.Verify.Failed() {
						b.Fatal("verification failed")
					}
				}
			})
		}
	}
}

// BenchmarkAblationCGBallast reproduces the other §5.2 experiment: an
// artificial increase of CG's memory use ("also resulted in a drop of
// scalability" in the paper). Each worker streams the given ballast
// once per outer iteration, evicting the solver's working set.
func BenchmarkAblationCGBallast(b *testing.B) {
	for _, mb := range []int{0, 8, 64} {
		b.Run(fmt.Sprintf("ballastMB=%d", mb), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				var opts []cg.Option
				if mb > 0 {
					opts = append(opts, cg.WithBallast(mb<<20))
				}
				bench, err := cg.New('S', 2, opts...)
				if err != nil {
					b.Fatal(err)
				}
				if res := bench.Run(); !res.Verify.Passed() {
					b.Fatal("verification failed")
				}
			}
		})
	}
}

// BenchmarkAblationISBuckets contrasts IS's two ranking algorithms:
// straight histogramming versus the bucketed (USE_BUCKETS) variant that
// trades a scatter pass for cache-resident counting.
func BenchmarkAblationISBuckets(b *testing.B) {
	for _, buckets := range []bool{false, true} {
		name := "straight"
		if buckets {
			name = "buckets"
		}
		for _, n := range []int{1, 2} {
			b.Run(fmt.Sprintf("%s/threads=%d", name, n), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					res, err := npbgo.Run(npbgo.Config{Benchmark: npbgo.IS, Class: 'S', Threads: n, Buckets: buckets})
					if err != nil {
						b.Fatal(err)
					}
					if res.Failed {
						b.Fatal("verification failed")
					}
				}
			})
		}
	}
}
