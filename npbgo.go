// Package npbgo is a Go implementation of the NAS Parallel Benchmarks
// (NPB) in the style studied by Frumkin, Schultz, Jin and Yan in
// "Performance and Scalability of the NAS Parallel Benchmarks in Java":
// a literal translation of the NPB2.3-serial suite onto linearized
// arrays, parallelized with a master-worker team of goroutines playing
// the role of the paper's Java threads.
//
// The suite contains the three simulated CFD applications BT, SP and LU
// and the five kernels FT, MG, CG, IS and EP, each configurable to the
// standard problem classes S, W, A, B and C and any number of worker
// threads. Runs end with NPB verification where reference values exist.
//
//	res, err := npbgo.Run(npbgo.Config{Benchmark: npbgo.CG, Class: 'S', Threads: 4})
package npbgo

import (
	"context"
	"errors"
	"fmt"
	"time"

	"npbgo/internal/bt"
	"npbgo/internal/cg"
	"npbgo/internal/ep"
	"npbgo/internal/ft"
	"npbgo/internal/is"
	"npbgo/internal/lu"
	"npbgo/internal/mg"
	"npbgo/internal/obs"
	"npbgo/internal/perfcount"
	"npbgo/internal/sp"
	"npbgo/internal/team"
	"npbgo/internal/timer"
	"npbgo/internal/trace"
	"npbgo/internal/verify"
)

// Benchmark names one NPB benchmark.
type Benchmark string

// The eight NPB benchmarks.
const (
	BT Benchmark = "BT" // block-tridiagonal ADI pseudo-application
	SP Benchmark = "SP" // scalar-pentadiagonal pseudo-application
	LU Benchmark = "LU" // SSOR pseudo-application
	FT Benchmark = "FT" // 3-D FFT PDE kernel
	MG Benchmark = "MG" // V-cycle multigrid kernel
	CG Benchmark = "CG" // conjugate-gradient kernel
	IS Benchmark = "IS" // integer-sort kernel
	EP Benchmark = "EP" // embarrassingly-parallel kernel
)

// Benchmarks returns the suite in the paper's table order (BT, SP, LU,
// FT, IS, CG, MG) with EP appended.
func Benchmarks() []Benchmark {
	return []Benchmark{BT, SP, LU, FT, IS, CG, MG, EP}
}

// Classes returns the problem classes in increasing size order.
func Classes() []byte { return []byte{'S', 'W', 'A', 'B', 'C'} }

// Config selects a benchmark run.
type Config struct {
	Benchmark Benchmark
	Class     byte // 'S', 'W', 'A', 'B' or 'C'
	Threads   int  // worker count; 1 runs the regions inline (serial)
	// Warmup gives every worker a large busy-work load before the timed
	// section, reproducing the CG thread-placement fix of the paper's
	// §5.2. It currently affects CG only (where the paper applied it).
	Warmup bool
	// Profile enables per-phase timing where the benchmark supports it
	// (BT, SP, LU); the profile text lands in Result.Profile.
	Profile bool
	// Buckets selects IS's bucketed ranking algorithm (the C original's
	// USE_BUCKETS path). Ignored by the other benchmarks.
	Buckets bool
	// Obs collects runtime metrics for the run: per-worker busy and
	// barrier-wait times, region/cancellation/panic counts and the
	// worker-imbalance ratio land in Result.Obs, and the run's recorder
	// is registered in the obs expvar registry under
	// "<bench>.<class>.t<threads>" for live inspection. Obs implies
	// Profile where the benchmark supports per-phase timers.
	Obs bool
	// Trace records per-worker event timelines for the run — region
	// blocks, barrier arrive/release, LU pipeline waits, cancellations
	// and panics — into fixed-capacity ring buffers; the snapshot lands
	// in Result.Trace, exportable as Chrome/Perfetto JSON
	// (Snapshot.WriteChrome) or a text timeline (Snapshot.Summary).
	// While the Go execution tracer is active, the run is additionally
	// annotated as a runtime/trace task with one region per parallel
	// region, so `go tool trace` shows NPB phases beside the scheduler
	// view.
	Trace bool
	// Schedule selects the team's loop schedule: "static" (default),
	// "dynamic", "guided", "stealing" or "auto". Static is the paper's
	// block distribution; the others redistribute loop chunks at runtime
	// to fix load imbalance (the paper's §5.2 CG anomaly) without
	// changing any numerical result, and "auto" picks per-region from
	// runtime feedback. Empty means static.
	Schedule string
	// Counters samples hardware performance counters (cycles,
	// instructions, LLC loads/misses, branch misses) per worker per
	// parallel region via perf_event_open; the run totals and per-worker
	// split land in Result.Counters. Where counters are unavailable
	// (restrictive perf_event_paranoid, no PMU, non-Linux build) the run
	// proceeds normally and Result.CountersNote records the reason.
	Counters bool
}

// Result reports one benchmark run.
type Result struct {
	Benchmark Benchmark
	Class     byte
	Threads   int
	Elapsed   time.Duration
	Mops      float64 // NPB Mop/s figure of merit
	Verified  bool    // verification compared and passed
	Failed    bool    // verification compared and mismatched
	Tier      string  // "official", "golden" or "none"
	Detail    string  // the full verification printout
	Profile   string  // per-phase timing profile, if requested/available
	// Phases is the structured form of Profile (seconds and lap counts
	// per phase), nil unless Profile/Obs was requested and the
	// benchmark owns a timer set.
	Phases []timer.Phase
	// Obs holds the run's per-worker runtime metrics, nil unless
	// Config.Obs was set.
	Obs *obs.Stats
	// Trace holds the run's event-timeline snapshot, nil unless
	// Config.Trace was set.
	Trace *trace.Snapshot
	// Counters holds the run's hardware-counter totals and per-worker
	// split, nil unless Config.Counters was set and counters were
	// available.
	Counters *perfcount.Stats
	// CountersNote records why Counters is nil when Config.Counters was
	// set but sampling was unavailable: "unavailable (<reason>)".
	CountersNote string
}

func fromReport(r *Result, rep *verify.Report) {
	r.Verified = rep.Passed()
	r.Failed = rep.Failed()
	r.Tier = rep.Tier.String()
	r.Detail = rep.String()
}

// RunError is the structured failure of a benchmark run: it carries the
// benchmark/class/threads context of the failing cell plus a Kind
// classifying the failure, and wraps the underlying cause (for example a
// *team.PanicError or a context error) for errors.Is/As.
type RunError struct {
	Benchmark Benchmark
	Class     byte
	Threads   int
	Kind      string // one of the Err* kind constants
	Cause     error
}

// RunError kinds.
const (
	ErrConfig       = "config"       // invalid Config (bad class, thread count, benchmark)
	ErrPanic        = "panic"        // a panic (e.g. on a team worker) was recovered
	ErrCancelled    = "cancelled"    // the context was cancelled or its deadline passed
	ErrVerification = "verification" // the run completed but NPB verification mismatched
)

func (e *RunError) Error() string {
	return fmt.Sprintf("npbgo: %s.%c threads=%d: %s: %v",
		e.Benchmark, e.Class, e.Threads, e.Kind, e.Cause)
}

func (e *RunError) Unwrap() error { return e.Cause }

// Run executes one benchmark run as configured. It is
// RunContext(context.Background(), cfg).
func Run(cfg Config) (Result, error) {
	return RunContext(context.Background(), cfg)
}

func validClass(c byte) bool {
	for _, k := range Classes() {
		if c == k {
			return true
		}
	}
	return false
}

func validBenchmark(b Benchmark) bool {
	for _, k := range Benchmarks() {
		if b == k {
			return true
		}
	}
	return false
}

// RunContext executes one benchmark run under a context. The
// configuration is validated up front, worker panics are isolated and
// returned (never propagated — the process survives a crashing region),
// and the kernels that support cooperative cancellation (CG, EP, FT, MG)
// stop within roughly one outer iteration of ctx expiring. All failures
// come back as a *RunError identifying the cell and the failure kind.
//
// On cancellation the returned Result holds whatever partial timing was
// accumulated; it is not meaningful for reporting.
func RunContext(ctx context.Context, cfg Config) (Result, error) {
	if ctx == nil {
		ctx = context.Background() //npblint:ignore ctxpropagate nil means "not cancellable"; Background is the documented default
	}
	if cfg.Threads == 0 {
		cfg.Threads = 1
	}
	if cfg.Class == 0 {
		cfg.Class = 'S'
	}
	res := Result{Benchmark: cfg.Benchmark, Class: cfg.Class, Threads: cfg.Threads}
	fail := func(kind string, cause error) (Result, error) {
		return res, &RunError{Benchmark: cfg.Benchmark, Class: cfg.Class,
			Threads: cfg.Threads, Kind: kind, Cause: cause}
	}
	if cfg.Threads < 1 {
		return fail(ErrConfig, fmt.Errorf("threads %d < 1", cfg.Threads))
	}
	if !validClass(cfg.Class) {
		return fail(ErrConfig, fmt.Errorf("unknown class %q (want S, W, A, B or C)", string(cfg.Class)))
	}
	if !validBenchmark(cfg.Benchmark) {
		return fail(ErrConfig, fmt.Errorf("unknown benchmark %q", cfg.Benchmark))
	}
	sched, err := team.ParseSchedule(cfg.Schedule)
	if err != nil {
		return fail(ErrConfig, err)
	}
	if err := ctx.Err(); err != nil {
		return fail(ErrCancelled, err)
	}
	var rec *obs.Recorder
	if cfg.Obs {
		rec = obs.New(cfg.Threads)
		obs.Register(fmt.Sprintf("%s.%c.t%d", cfg.Benchmark, cfg.Class, cfg.Threads), rec)
	}
	var tr *trace.Tracer
	if cfg.Trace {
		tr = trace.New(cfg.Threads)
		var endTask func()
		ctx, endTask = trace.StartTask(ctx, fmt.Sprintf("%s.%c.t%d", cfg.Benchmark, cfg.Class, cfg.Threads))
		defer endTask()
	}
	var pc *perfcount.Sampler
	if cfg.Counters {
		var cErr error
		pc, cErr = perfcount.New(cfg.Threads)
		if cErr != nil {
			res.CountersNote = "unavailable (" + cErr.Error() + ")"
		} else {
			// Slot 0 is the master: benchmark regions run synchronously on
			// this goroutine, so binding here pins it to its OS thread for
			// the whole run and attributes the master's share. Workers
			// bind their own slots (team.WithCounters). Close after the
			// run is safe: the benchmark's team has joined by then.
			pc.Bind(0)
			defer func() { pc.Unbind(0); pc.Close() }()
			if rec != nil {
				rec.AttachCounters(pc)
			}
		}
	}
	err, panicked := runBenchmark(ctx, cfg, sched, rec, tr, pc, &res)
	if pc != nil {
		res.Counters = pc.Snapshot()
		if n := res.Counters.Note; n != "" && res.CountersNote == "" {
			res.CountersNote = n
		}
	}
	if rec != nil {
		res.Obs = rec.Snapshot()
	}
	if tr != nil {
		// The benchmark's team has joined (or the panic was recovered),
		// so the rings are quiescent and safe to snapshot.
		res.Trace = tr.Snapshot()
	}
	if panicked {
		return fail(ErrPanic, err)
	}
	if err != nil {
		return fail(ErrConfig, err)
	}
	if err := ctx.Err(); err != nil {
		return fail(ErrCancelled, err)
	}
	if res.Failed {
		return fail(ErrVerification, errors.New("verification mismatch (see Result.Detail)"))
	}
	return res, nil
}

// setProfile fills the textual and structured phase profiles from a
// benchmark's timer set (nil-safe).
func setProfile(res *Result, ts *timer.Set) {
	if ts == nil {
		return
	}
	res.Profile = ts.String()
	res.Phases = ts.Phases()
}

// runBenchmark dispatches to the benchmark implementation with panic
// isolation: any panic escaping the run — a *team.PanicError re-raised
// by a crashed worker region, or a master-side panic — is recovered and
// returned with panicked = true. rec, tr and pc, when non-nil, are
// attached to the run's team for per-worker metrics, event timelines
// and hardware-counter attribution.
func runBenchmark(ctx context.Context, cfg Config, sched team.Schedule, rec *obs.Recorder, tr *trace.Tracer, pc *perfcount.Sampler, res *Result) (err error, panicked bool) {
	defer func() {
		if v := recover(); v != nil {
			panicked = true
			if pe, ok := v.(*team.PanicError); ok {
				err = pe
			} else {
				err = fmt.Errorf("panic: %v", v)
			}
		}
	}()
	profile := cfg.Profile || cfg.Obs
	switch cfg.Benchmark {
	case BT:
		opts := []bt.Option{bt.WithObs(rec), bt.WithTrace(tr), bt.WithCounters(pc), bt.WithSchedule(sched)}
		if profile {
			opts = append(opts, bt.WithTimers())
		}
		b, err := bt.New(cfg.Class, cfg.Threads, opts...)
		if err != nil {
			return err, false
		}
		r := b.Run()
		res.Elapsed, res.Mops = r.Elapsed, r.Mops
		setProfile(res, r.Timers)
		fromReport(res, r.Verify)
	case SP:
		opts := []sp.Option{sp.WithObs(rec), sp.WithTrace(tr), sp.WithCounters(pc), sp.WithSchedule(sched)}
		if profile {
			opts = append(opts, sp.WithTimers())
		}
		b, err := sp.New(cfg.Class, cfg.Threads, opts...)
		if err != nil {
			return err, false
		}
		r := b.Run()
		res.Elapsed, res.Mops = r.Elapsed, r.Mops
		setProfile(res, r.Timers)
		fromReport(res, r.Verify)
	case LU:
		opts := []lu.Option{lu.WithObs(rec), lu.WithTrace(tr), lu.WithCounters(pc), lu.WithSchedule(sched)}
		if profile {
			opts = append(opts, lu.WithTimers())
		}
		b, err := lu.New(cfg.Class, cfg.Threads, opts...)
		if err != nil {
			return err, false
		}
		r := b.Run()
		res.Elapsed, res.Mops = r.Elapsed, r.Mops
		setProfile(res, r.Timers)
		fromReport(res, r.Verify)
	case FT:
		b, err := ft.New(cfg.Class, cfg.Threads, ft.WithContext(ctx), ft.WithObs(rec), ft.WithTrace(tr), ft.WithCounters(pc), ft.WithSchedule(sched))
		if err != nil {
			return err, false
		}
		r := b.Run()
		res.Elapsed, res.Mops = r.Elapsed, r.Mops
		fromReport(res, r.Verify)
	case MG:
		b, err := mg.New(cfg.Class, cfg.Threads, mg.WithContext(ctx), mg.WithObs(rec), mg.WithTrace(tr), mg.WithCounters(pc), mg.WithSchedule(sched))
		if err != nil {
			return err, false
		}
		r := b.Run()
		res.Elapsed, res.Mops = r.Elapsed, r.Mops
		fromReport(res, r.Verify)
	case CG:
		opts := []cg.Option{cg.WithContext(ctx), cg.WithObs(rec), cg.WithTrace(tr), cg.WithCounters(pc), cg.WithSchedule(sched)}
		if cfg.Warmup {
			opts = append(opts, cg.WithWarmup())
		}
		if profile {
			opts = append(opts, cg.WithTimers())
		}
		b, err := cg.New(cfg.Class, cfg.Threads, opts...)
		if err != nil {
			return err, false
		}
		r := b.Run()
		res.Elapsed, res.Mops = r.Elapsed, r.Mops
		setProfile(res, r.Timers)
		fromReport(res, r.Verify)
	case IS:
		opts := []is.Option{is.WithObs(rec), is.WithTrace(tr), is.WithCounters(pc), is.WithSchedule(sched)}
		if cfg.Buckets {
			opts = append(opts, is.WithBuckets())
		}
		b, err := is.New(cfg.Class, cfg.Threads, opts...)
		if err != nil {
			return err, false
		}
		r := b.Run()
		res.Elapsed, res.Mops = r.Elapsed, r.Mops
		fromReport(res, r.Verify)
	case EP:
		opts := []ep.Option{ep.WithContext(ctx), ep.WithObs(rec), ep.WithTrace(tr), ep.WithCounters(pc), ep.WithSchedule(sched)}
		if profile {
			opts = append(opts, ep.WithTimers())
		}
		b, err := ep.New(cfg.Class, cfg.Threads, opts...)
		if err != nil {
			return err, false
		}
		r := b.Run()
		res.Elapsed, res.Mops = r.Elapsed, r.Mops
		setProfile(res, r.Timers)
		fromReport(res, r.Verify)
	default:
		return fmt.Errorf("npbgo: unknown benchmark %q", cfg.Benchmark), false
	}
	return nil, false
}

// String formats a result as one NPB-style summary line.
func (r Result) String() string {
	status := "UNVERIFIED"
	if r.Verified {
		status = "VERIFIED(" + r.Tier + ")"
	} else if r.Failed {
		status = "VERIFICATION FAILED"
	}
	return fmt.Sprintf("%s.%c threads=%d time=%.3fs mop/s=%.2f %s",
		r.Benchmark, r.Class, r.Threads, r.Elapsed.Seconds(), r.Mops, status)
}
