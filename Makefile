# Convenience targets; everything is plain `go` underneath.

GO ?= go
NPBLINT := bin/npblint

.PHONY: build test test-race race vet lint allocgate escape-check escape-baseline bench bench-json perf suite suite-obs suite-trace soak schedule-check counters-check profile-check tables clean

build:
	$(GO) build ./...

# Tier-1 path: vet + npblint + full test suite.
test: vet lint
	$(GO) test ./...

vet:
	$(GO) vet ./...

# npblint: the project's own go/analysis suite (cmd/npblint), run
# through `go vet -vettool` so test files are covered too. Suppress a
# finding with `//npblint:ignore <analyzer> <reason>`.
lint: $(NPBLINT)
	$(GO) vet -vettool=$(abspath $(NPBLINT)) ./...

$(NPBLINT): FORCE
	$(GO) build -o $(NPBLINT) ./cmd/npblint

.PHONY: FORCE
FORCE:

# Dynamic allocation gate: steady-state allocations per benchmark
# iteration, measured with testing.AllocsPerRun and asserted against
# the checked-in budgets in internal/allocgate/budgets.go. The class-W
# gates run full-size iterations; drop them with GOFLAGS=-short.
allocgate:
	$(GO) test -run 'TestGate' -v ./internal/allocgate

# Escape-analysis discipline: diff the compiler's current heap-escape
# report (go build -gcflags=-m=2 on the hot packages) against the
# committed baseline. New escapes fail; after fixing escapes, lock the
# improvement in with escape-baseline.
escape-check:
	$(GO) run ./cmd/npbescape -diff escape_baseline.jsonl

escape-baseline:
	$(GO) run ./cmd/npbescape -update escape_baseline.jsonl

# Race detection on short classes; the robustness-critical packages get
# a dedicated -race pass even under -short.
race:
	$(GO) test -race -short ./...
	$(GO) test -race ./internal/team ./internal/harness ./internal/fault ./internal/timer ./internal/obs ./internal/journal ./internal/chaos ./internal/perfcount

test-race: race

bench:
	$(GO) test -bench . -benchmem -run '^$$' .

# Regenerate the paper's tables for this host (class W keeps the
# pseudo-applications to seconds-to-minutes; use CLASS=A for paper scale).
CLASS ?= W
THREADS ?= 1,2,4
suite:
	$(GO) run ./cmd/npbsuite -class $(CLASS) -threads $(THREADS)

# Suite sweep with the observability layer on: metrics summary table,
# per-cell JSONL, and a live expvar/pprof endpoint during the run.
suite-obs:
	$(GO) run ./cmd/npbsuite -class $(CLASS) -threads $(THREADS) -obs

# Suite sweep with the execution tracer on: one Chrome/Perfetto trace
# file per cell in $(TRACEDIR), validated afterwards. Open any of them
# at ui.perfetto.dev (or chrome://tracing).
TRACEDIR ?= traces
suite-trace:
	$(GO) run ./cmd/npbsuite -class $(CLASS) -threads $(THREADS) -trace $(TRACEDIR)
	$(GO) run ./cmd/npbtrace validate $(TRACEDIR)/*.trace.json

# Machine-readable perf trajectory: one stamped BENCH_<stamp>.json per
# sweep accumulates under $(RESULTS) for cross-commit diffing.
RESULTS ?= results
bench-json:
	$(GO) run ./cmd/npbsuite -class $(CLASS) -threads $(THREADS) -bench-json $(RESULTS)/

# Local perf-gate rehearsal: two identical class-S sweeps with repeats,
# judged by npbperf. On unchanged code this must print 0 regressions
# and exit 0 — the CI perf-gate job runs exactly this sequence. The
# -min-time floor keeps the gate honest on shared/noisy runners: tens-
# of-millisecond cells drift double-digit percentages between separate
# process invocations there, so only cells long enough to support a
# 10% claim (EP's ~1s cells) are judged; the smaller CG cells still
# run for the scaling diagnostics and the recorded artifacts.
PERF_BENCH ?= CG,EP
PERF_REPEATS ?= 3
PERF_THRESHOLD ?= 0.10
PERF_MINTIME ?= 0.1
perf:
	$(GO) run ./cmd/npbsuite -class S -bench $(PERF_BENCH) -threads 2 -repeats $(PERF_REPEATS) -obs -obs-listen "" -obs-jsonl "" -bench-json perf-base.json
	$(GO) run ./cmd/npbsuite -class S -bench $(PERF_BENCH) -threads 2 -repeats $(PERF_REPEATS) -obs -obs-listen "" -obs-jsonl "" -bench-json perf-head.json
	$(GO) run ./cmd/npbperf compare -threshold $(PERF_THRESHOLD) -min-time $(PERF_MINTIME) perf-base.json perf-head.json
	$(GO) run ./cmd/npbperf scaling perf-head.json

# Seeded chaos soak: randomized fault/cancel/timeout schedules against
# class-S cells with recovery invariants asserted after each one, then
# the journal validated. Deterministic per seed — a red soak reproduces
# with the same SOAK_SEED. The CI soak job runs exactly this and keeps
# the journal as an artifact.
SOAK_SEED ?= 1
SOAK_CELLS ?= 10
soak:
	$(GO) run ./cmd/npbsuite -chaos -chaos-seed $(SOAK_SEED) -chaos-cells $(SOAK_CELLS) -class S -bench CG,EP -threads 1,2 -journal soak-journal.jsonl
	$(GO) run ./cmd/npbsuite -check-journal soak-journal.jsonl

# Schedule smoke: every loop schedule sweeps CG+IS class S under the
# race detector, then a CG class-W sweep under -schedule auto must come
# out of npbperf scaling without the §5.2 load-imbalance flag. The CI
# schedule-matrix job runs the same steps, one schedule per matrix leg.
SCHEDULES ?= static dynamic guided stealing auto
schedule-check:
	for s in $(SCHEDULES); do \
		$(GO) run -race ./cmd/npbsuite -class S -bench CG,IS -threads 2,4 -schedule $$s -obs -obs-listen "" -obs-jsonl "" || exit 1; \
	done
	$(GO) run ./cmd/npbsuite -class W -bench CG -threads 1,2,4 -schedule auto -repeats 2 -obs -obs-listen "" -obs-jsonl "" -bench-json sched-auto.json
	$(GO) run ./cmd/npbperf scaling -fail-on load-imbalance sched-auto.json

# Counter-attribution smoke: IS+CG class S with -counters on, then
# npbperf counters -require asserts every cell either carries populated
# counter fields or an explicit "unavailable (<reason>)" note — never
# silent zeros. Passes both on PMU-backed hosts (real figures) and in
# PMU-less containers/CI (the journaled degradation path). The CI
# counters-smoke job runs exactly this and keeps the record artifact.
counters-check:
	$(GO) run ./cmd/npbsuite -class S -bench IS,CG -threads 2 -counters -obs -obs-listen "" -obs-jsonl counters-cells.jsonl -bench-json counters-smoke.json
	$(GO) run ./cmd/npbperf counters -require counters-smoke.json

# Profiling smoke: a CG class-W sweep captured with -profile, decoded by
# npbperf hotspots with the attribution floor — at least 80% of CPU
# samples must land in symbolized npbgo/internal/... code (the paper's
# "which kernel is the time in" question must stay answerable). Then two
# identical class-S sweeps are profdiff'd: identical code must produce
# zero significant share shifts, the gate's no-false-positives contract.
# The CI profile-smoke job runs exactly this and keeps the artifacts.
PROFILE_MINATTR ?= 80
profile-check:
	$(GO) run ./cmd/npbsuite -class W -bench CG -threads 2 -profile -profile-dir prof-w -bench-json prof-w.json
	$(GO) run ./cmd/npbperf hotspots -require -min-attr $(PROFILE_MINATTR) prof-w.json
	$(GO) run ./cmd/npbsuite -class S -bench CG,IS -threads 2 -profile -profile-dir prof-base -bench-json prof-base.json
	$(GO) run ./cmd/npbsuite -class S -bench CG,IS -threads 2 -profile -profile-dir prof-head -bench-json prof-head.json
	$(GO) run ./cmd/npbperf profdiff prof-base.json prof-head.json

tables:
	$(GO) run ./cmd/cfdops -threads $(THREADS)
	$(GO) run ./cmd/jgflu -classes A,B,C
	$(GO) run ./cmd/npbsuite -class $(CLASS) -threads $(THREADS)

clean:
	$(GO) clean ./...
	rm -rf bin
	rm -f perf-base.json perf-head.json soak-journal.jsonl sched-auto.json counters-smoke.json counters-cells.jsonl
	rm -rf prof-w prof-base prof-head
	rm -f prof-w.json prof-base.json prof-head.json
