# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: build test test-race bench suite tables clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

test-race:
	$(GO) test -race -short ./...

bench:
	$(GO) test -bench . -benchmem -run '^$$' .

# Regenerate the paper's tables for this host (class W keeps the
# pseudo-applications to seconds-to-minutes; use CLASS=A for paper scale).
CLASS ?= W
THREADS ?= 1,2,4
suite:
	$(GO) run ./cmd/npbsuite -class $(CLASS) -threads $(THREADS)

tables:
	$(GO) run ./cmd/cfdops -threads $(THREADS)
	$(GO) run ./cmd/jgflu -classes A,B,C
	$(GO) run ./cmd/npbsuite -class $(CLASS) -threads $(THREADS)

clean:
	$(GO) clean ./...
