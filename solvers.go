package npbgo

import (
	"npbgo/internal/cg"
	"npbgo/internal/ft"
	"npbgo/internal/mg"
	"npbgo/internal/team"
)

// This file re-exports the reusable numerical surfaces behind the
// benchmarks, so downstream code can use the solvers without touching
// the benchmark drivers.

// PoissonSolver is a periodic 3-D Poisson-type multigrid solver (the MG
// benchmark's V-cycle as a library).
type PoissonSolver = mg.Solver

// NewPoissonSolver creates a multigrid solver for an n^3 periodic grid
// (n a power of two >= 4) using the given number of worker threads.
func NewPoissonSolver(n, threads int) (*PoissonSolver, error) {
	return mg.NewSolver(n, threads)
}

// FFT3D computes the unnormalized 3-D DFT (dir = +1) or unnormalized
// inverse (dir = -1) of data in place; extents must be powers of two
// and data holds nx*ny*nz complex values, first index fastest.
func FFT3D(dir, nx, ny, nz int, data []complex128, threads int) error {
	return ft.Transform3D(dir, nx, ny, nz, data, threads)
}

// Team is the master-worker goroutine pool the suite is parallelized
// with, exposed for building custom parallel computations in the same
// style (see examples/teamcompute).
type Team = team.Team

// NewTeam creates a team of n workers; Close it when done.
func NewTeam(n int) *Team { return team.New(n) }

// BlockRange statically partitions [lo, hi) into parts pieces and
// returns piece id, as the team's loop scheduler does.
func BlockRange(lo, hi, parts, id int) (blo, bhi int) {
	return team.Block(lo, hi, parts, id)
}

// EigenResult is the outcome of EstimateSmallestEigenvalue.
type EigenResult = cg.EigenResult

// EstimateSmallestEigenvalue estimates the eigenvalue of a sparse
// symmetric CSR matrix nearest the given shift using the CG benchmark's
// inverse power method (25 inner CG iterations per outer step). For a
// positive-definite matrix a shift of 0 finds the smallest eigenvalue.
func EstimateSmallestEigenvalue(n int, rowstr, colidx []int, a []float64,
	shift float64, outerIters, threads int) (EigenResult, error) {
	return cg.EstimateSmallestEigenvalue(n, rowstr, colidx, a, shift, outerIters, threads)
}
