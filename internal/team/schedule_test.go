package team

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"npbgo/internal/obs"
)

// Schedule-equivalence properties: whatever schedule distributes the
// chunks, a loop must cover each index exactly once, element-wise
// writes must be bit-identical to the static schedule, and reductions
// must be bit-identical to static at a fixed team size. These are the
// invariants that let `-schedule` change benchmark performance without
// ever changing a verification result.

func allSchedules() []Schedule {
	return []Schedule{Static, Dynamic, Guided, Stealing, Auto}
}

// TestScheduleForCoversEachIndexExactlyOnce: every schedule × team size
// × range shape (empty, smaller than the team, much larger) visits each
// index exactly once. Repeats reuse the team so the loop-slot ring and
// the instance tags are exercised across many loop generations.
func TestScheduleForCoversEachIndexExactlyOnce(t *testing.T) {
	ranges := []struct{ lo, hi int }{
		{0, 0},    // empty
		{5, 5},    // empty, nonzero origin
		{0, 3},    // fewer indices than most teams
		{7, 1000}, // many chunks under every grain
	}
	for _, s := range allSchedules() {
		for _, n := range []int{1, 2, 3, 4, 7} {
			tm := New(n, WithSchedule(s))
			for _, r := range ranges {
				for rep := 0; rep < 5; rep++ {
					hits := make([]int32, r.hi)
					tm.For(r.lo, r.hi, func(i int) { atomic.AddInt32(&hits[i], 1) })
					for i := 0; i < r.lo; i++ {
						if hits[i] != 0 {
							t.Fatalf("%v n=%d [%d,%d): index %d below range touched", s, n, r.lo, r.hi, i)
						}
					}
					for i := r.lo; i < r.hi; i++ {
						if hits[i] != 1 {
							t.Fatalf("%v n=%d [%d,%d) rep %d: index %d hit %d times",
								s, n, r.lo, r.hi, rep, i, hits[i])
						}
					}
				}
			}
			tm.Close()
		}
	}
}

// TestScheduleGrainCoverage: explicit grains — including a grain of 1
// (maximum chunk count) and one larger than the whole range (single
// chunk) — must not break the exactly-once property.
func TestScheduleGrainCoverage(t *testing.T) {
	for _, s := range []Schedule{Dynamic, Guided, Stealing} {
		for _, grain := range []int{1, 7, 5000} {
			tm := New(4, WithSchedule(s), WithGrain(grain))
			hits := make([]int32, 600)
			tm.For(0, len(hits), func(i int) { atomic.AddInt32(&hits[i], 1) })
			tm.Close()
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("%v grain=%d: index %d hit %d times", s, grain, i, h)
				}
			}
		}
	}
}

// TestScheduleMultipleLoopsPerRegion: several work-sharing loops inside
// one region body take consecutive cursor slots; their chunks must not
// bleed into each other. Up to loopSlots loops may run with no barrier
// at all; past that the ring wraps and loops need a barrier between
// reuses of a slot, so the second half of the region interleaves
// barriers and crosses the ring boundary.
func TestScheduleMultipleLoopsPerRegion(t *testing.T) {
	for _, s := range []Schedule{Dynamic, Guided, Stealing} {
		tm := New(4, WithSchedule(s))
		const loops, span = loopSlots + 8, 257
		hits := make([][]int32, loops)
		for l := range hits {
			hits[l] = make([]int32, span)
		}
		tm.Run(func(id int) {
			// Unbarriered burst: exactly the loopSlots concurrent loops
			// the ring is documented to support.
			for l := 0; l < loopSlots; l++ {
				for it := tm.Loop(id, 0, span); it.Next(); {
					for i := it.Lo; i < it.Hi; i++ {
						atomic.AddInt32(&hits[l][i], 1)
					}
				}
			}
			// Past the ring: a barrier per loop guarantees no straggler
			// still holds the slot being reused.
			for l := loopSlots; l < loops; l++ {
				tm.BarrierID(id)
				for it := tm.Loop(id, 0, span); it.Next(); {
					for i := it.Lo; i < it.Hi; i++ {
						atomic.AddInt32(&hits[l][i], 1)
					}
				}
			}
		})
		tm.Close()
		for l := range hits {
			for i, h := range hits[l] {
				if h != 1 {
					t.Fatalf("%v loop %d index %d hit %d times", s, l, i, h)
				}
			}
		}
	}
}

// TestScheduleForBlockBitIdenticalToStatic: an element-wise stencil via
// ForBlock writes the exact same bytes under every schedule, because
// scheduling moves chunks between workers without changing which chunk
// owns which index.
func TestScheduleForBlockBitIdenticalToStatic(t *testing.T) {
	const span = 1203
	in := make([]float64, span)
	x := 0.7
	for i := range in {
		x = x*1.0001 + 0.013
		in[i] = x
	}
	run := func(s Schedule, n int) []float64 {
		out := make([]float64, span)
		tm := New(n, WithSchedule(s))
		defer tm.Close()
		tm.ForBlock(1, span-1, func(blo, bhi int) {
			for i := blo; i < bhi; i++ {
				out[i] = 0.5*in[i-1] + in[i]/3.0 + 0.25*in[i+1]
			}
		})
		return out
	}
	for _, n := range []int{2, 3, 5} {
		want := run(Static, n)
		for _, s := range []Schedule{Dynamic, Guided, Stealing, Auto} {
			got := run(s, n)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("%v n=%d: out[%d] = %v, static = %v", s, n, i, got[i], want[i])
				}
			}
		}
	}
}

// TestScheduleReduceSumBitIdenticalToStatic: reductions always chunk by
// the static blocks and land partials in block-indexed slots, so the
// float64 total is bit-identical to the static schedule regardless of
// which worker ran which block. The values are chosen so a different
// summation association would actually change the rounding.
func TestScheduleReduceSumBitIdenticalToStatic(t *testing.T) {
	vals := make([]float64, 4096)
	x := 0.5
	for i := range vals {
		x = x*1.000301 + 0.125
		if x > 1e6 {
			x *= 1e-6
		}
		vals[i] = x
	}
	body := func(blo, bhi int) float64 {
		s := 0.0
		for i := blo; i < bhi; i++ {
			s += vals[i]
		}
		return s
	}
	for _, n := range []int{2, 4, 7} {
		tmStatic := New(n, WithSchedule(Static))
		want := tmStatic.ReduceSum(0, len(vals), body)
		tmStatic.Close()
		for _, s := range []Schedule{Dynamic, Guided, Stealing, Auto} {
			tm := New(n, WithSchedule(s))
			for rep := 0; rep < 10; rep++ {
				if got := tm.ReduceSum(0, len(vals), body); got != want {
					t.Fatalf("%v n=%d rep %d: ReduceSum = %v, static = %v", s, n, rep, got, want)
				}
			}
			tm.Close()
		}
	}
}

// TestScheduleCancelledTeamSkipsLoops: the cancellation semantics of
// For/ForBlock/ReduceSum are schedule-independent — a cancelled team
// never runs a body and a reduction returns 0.
func TestScheduleCancelledTeamSkipsLoops(t *testing.T) {
	for _, s := range allSchedules() {
		tm := New(3, WithSchedule(s))
		tm.Cancel(errors.New("stop"))
		var ran atomic.Bool
		tm.For(0, 100, func(i int) { ran.Store(true) })
		tm.ForBlock(0, 100, func(blo, bhi int) { ran.Store(true) })
		got := tm.ReduceSum(0, 100, func(blo, bhi int) float64 { ran.Store(true); return 1 })
		tm.Close()
		if ran.Load() {
			t.Fatalf("%v: a loop body ran on a cancelled team", s)
		}
		if got != 0 {
			t.Fatalf("%v: ReduceSum on cancelled team = %v, want 0", s, got)
		}
	}
}

// TestScheduleMidFlightCancelReturnsZero: a body cancelling the team
// while chunks are still being dealt must yield 0 from ReduceSum under
// every schedule, not a mix of fresh and stale partials.
func TestScheduleMidFlightCancelReturnsZero(t *testing.T) {
	for _, s := range allSchedules() {
		tm := New(2, WithSchedule(s))
		if got := tm.ReduceSum(0, 2, func(blo, bhi int) float64 { return 1000 }); got != 2000 {
			t.Fatalf("%v: seed ReduceSum = %v, want 2000", s, got)
		}
		got := tm.ReduceSum(0, 2, func(blo, bhi int) float64 {
			tm.Cancel(errors.New("mid-region stop"))
			return 1
		})
		tm.Close()
		if got != 0 {
			t.Fatalf("%v: mid-flight-cancelled ReduceSum = %v, want 0", s, got)
		}
	}
}

// TestScheduleWorkerPanicUnwinds: a panic inside a scheduled chunk must
// surface as a *PanicError and leave the team reusable, exactly like
// the static path — the cursor/deque state of the dead loop must not
// wedge the next region.
func TestScheduleWorkerPanicUnwinds(t *testing.T) {
	for _, s := range []Schedule{Dynamic, Guided, Stealing} {
		tm := New(4, WithSchedule(s))
		pe := runRecovered(tm, func(id int) {
			for it := tm.Loop(id, 0, 1000); it.Next(); {
				if it.Lo <= 500 && 500 < it.Hi {
					panic("chunk boom")
				}
			}
		})
		if pe == nil {
			t.Fatalf("%v: worker panic did not surface", s)
		}
		// The team must still schedule correctly after the failure.
		hits := make([]int32, 300)
		tm.For(0, len(hits), func(i int) { atomic.AddInt32(&hits[i], 1) })
		tm.Close()
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("%v: post-panic loop index %d hit %d times", s, i, h)
			}
		}
	}
}

// TestStealingRecordsSteals: with one worker hogging the clock the
// other must take chunks from its deque, visible in the obs counters.
func TestStealingRecordsSteals(t *testing.T) {
	rec := obs.New(2)
	tm := New(2, WithSchedule(Stealing), WithRecorder(rec))
	defer tm.Close()
	var slow atomic.Bool
	tm.For(0, 64, func(i int) {
		// Worker 0 owns the front chunks; make the very first index slow
		// so the other worker drains both deques meanwhile.
		if i == 0 && slow.CompareAndSwap(false, true) {
			time.Sleep(20 * time.Millisecond)
		}
	})
	st := rec.Snapshot()
	var chunks, steals uint64
	for id := 0; id < 2; id++ {
		chunks += st.Chunks[id]
		steals += st.Steals[id]
	}
	if chunks == 0 {
		t.Fatal("stealing schedule claimed no chunks")
	}
	if steals == 0 {
		t.Fatal("no steal recorded despite a stalled owner")
	}
}

// TestAutoTunerEscalatesUnderImbalance: under a persistently imbalanced
// load the auto schedule must move off static within a tuning window,
// and the retune must be counted. This is the feedback loop that clears
// the §5.2 CG load-imbalance flag without touching the kernel.
func TestAutoTunerEscalatesUnderImbalance(t *testing.T) {
	rec := obs.New(4)
	tm := New(4, WithSchedule(Auto), WithRecorder(rec))
	defer tm.Close()
	// tuneEvery+1 regions where worker 0 does essentially all the work.
	for r := 0; r <= tuneEvery; r++ {
		tm.Run(func(id int) {
			if id == 0 {
				time.Sleep(2 * time.Millisecond)
			}
		})
	}
	if got := tm.tun.cur; got == Static {
		t.Fatalf("tuner still static after %d imbalanced regions", tuneEvery+1)
	}
	if st := rec.Snapshot(); st.Retunes == 0 {
		t.Fatal("retune not counted in the obs recorder")
	}
}

// TestAutoTunerCalmsDown: once the load is balanced again the tuner
// must walk back toward static after calmEpochs consecutive calm
// windows — the hysteresis that stops it flapping.
func TestAutoTunerCalmsDown(t *testing.T) {
	rec := obs.New(2)
	tm := New(2, WithSchedule(Auto), WithRecorder(rec))
	defer tm.Close()
	for r := 0; r <= tuneEvery; r++ {
		tm.Run(func(id int) {
			if id == 0 {
				time.Sleep(2 * time.Millisecond)
			}
		})
	}
	escalated := tm.tun.cur
	if escalated == Static {
		t.Fatal("precondition: tuner did not escalate")
	}
	// Balanced windows: both workers do the same tiny spin.
	for r := 0; r <= tuneEvery*(calmEpochs+1); r++ {
		tm.Run(func(id int) { time.Sleep(200 * time.Microsecond) })
	}
	if got := tm.tun.cur; got >= escalated {
		t.Fatalf("tuner stuck at %v after sustained balance (was %v)", got, escalated)
	}
}

// TestParseScheduleRoundTrip: every advertised name parses to a
// schedule that spells itself the same way, the empty string stays
// static (unset config fields keep the historical default), and an
// unknown name reports the valid spellings.
func TestParseScheduleRoundTrip(t *testing.T) {
	for _, name := range ScheduleNames() {
		s, err := ParseSchedule(name)
		if err != nil {
			t.Fatalf("ParseSchedule(%q): %v", name, err)
		}
		if s.String() != name {
			t.Fatalf("ParseSchedule(%q).String() = %q", name, s.String())
		}
	}
	if s, err := ParseSchedule(""); err != nil || s != Static {
		t.Fatalf("ParseSchedule(\"\") = %v, %v; want Static", s, err)
	}
	if _, err := ParseSchedule("round-robin"); err == nil {
		t.Fatal("ParseSchedule accepted an unknown name")
	}
}

// TestBlockRejectsOutOfRangeID: Block must panic on an id outside
// [0, parts) instead of silently returning a bogus (possibly
// overlapping) range — the guard that turns a mis-sized caller into a
// crash at the fault, not a corrupted array far away.
func TestBlockRejectsOutOfRangeID(t *testing.T) {
	for _, id := range []int{-1, 4, 100} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("Block(id=%d, parts=4) did not panic", id)
				}
			}()
			Block(0, 10, 4, id)
		}()
	}
	// Edge ids are legal and must still partition exactly.
	if lo, hi := Block(0, 10, 4, 0); lo != 0 || hi != 3 {
		t.Fatalf("Block first piece = [%d,%d)", lo, hi)
	}
	if lo, hi := Block(0, 10, 4, 3); lo != 8 || hi != 10 {
		t.Fatalf("Block last piece = [%d,%d)", lo, hi)
	}
	// Inverted ranges clamp to empty rather than panicking.
	if lo, hi := Block(10, 0, 4, 0); lo != hi {
		t.Fatalf("Block on inverted range = [%d,%d), want empty", lo, hi)
	}
}

// TestReduceSumSizeOneMidFlightCancel: the n==1 inline ReduceSum used
// to return the body's partial even when the body cancelled the team —
// the dispatched path returns 0, and the inline path must match.
func TestReduceSumSizeOneMidFlightCancel(t *testing.T) {
	tm := New(1)
	defer tm.Close()
	got := tm.ReduceSum(0, 10, func(blo, bhi int) float64 {
		tm.Cancel(errors.New("stop from inside"))
		return 42
	})
	if got != 0 {
		t.Fatalf("size-1 mid-flight-cancelled ReduceSum = %v, want 0", got)
	}
	if !tm.Cancelled() {
		t.Fatal("Cancelled() = false after in-body Cancel")
	}
}
