package team

import (
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestBlockPartitionProperty(t *testing.T) {
	f := func(loRaw int8, nRaw uint16, pRaw uint8) bool {
		lo := int(loRaw)
		n := int(nRaw % 1000)
		parts := int(pRaw%16) + 1
		hi := lo + n
		prev := lo
		total := 0
		for id := 0; id < parts; id++ {
			blo, bhi := Block(lo, hi, parts, id)
			if blo != prev { // contiguous cover, in order
				return false
			}
			size := bhi - blo
			if size < 0 || size > n/parts+1 {
				return false
			}
			total += size
			prev = bhi
		}
		return prev == hi && total == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestBlockSizesDifferByAtMostOne(t *testing.T) {
	for _, parts := range []int{1, 2, 3, 7, 16} {
		for n := 0; n < 40; n++ {
			minSz, maxSz := 1<<30, -1
			for id := 0; id < parts; id++ {
				lo, hi := Block(0, n, parts, id)
				sz := hi - lo
				if sz < minSz {
					minSz = sz
				}
				if sz > maxSz {
					maxSz = sz
				}
			}
			if maxSz-minSz > 1 {
				t.Fatalf("n=%d parts=%d: sizes range %d..%d", n, parts, minSz, maxSz)
			}
		}
	}
}

func TestRunExecutesEveryWorkerOnce(t *testing.T) {
	for _, n := range []int{1, 2, 4, 8} {
		tm := New(n)
		counts := make([]int32, n)
		for rep := 0; rep < 10; rep++ {
			tm.Run(func(id int) { atomic.AddInt32(&counts[id], 1) })
		}
		tm.Close()
		for id, c := range counts {
			if c != 10 {
				t.Fatalf("n=%d worker %d ran %d times, want 10", n, id, c)
			}
		}
	}
}

func TestForCoversEachIndexExactlyOnce(t *testing.T) {
	for _, n := range []int{1, 3, 5} {
		tm := New(n)
		const lo, hi = 3, 250
		hits := make([]int32, hi)
		tm.For(lo, hi, func(i int) { atomic.AddInt32(&hits[i], 1) })
		tm.Close()
		for i := 0; i < lo; i++ {
			if hits[i] != 0 {
				t.Fatalf("index %d below range touched", i)
			}
		}
		for i := lo; i < hi; i++ {
			if hits[i] != 1 {
				t.Fatalf("n=%d index %d hit %d times", n, i, hits[i])
			}
		}
	}
}

func TestForBlockCoversRange(t *testing.T) {
	tm := New(4)
	defer tm.Close()
	var mu sync.Mutex
	covered := make(map[int]bool)
	tm.ForBlock(0, 101, func(blo, bhi int) {
		mu.Lock()
		for i := blo; i < bhi; i++ {
			if covered[i] {
				mu.Unlock()
				t.Errorf("index %d covered twice", i)
				return
			}
			covered[i] = true
		}
		mu.Unlock()
	})
	if len(covered) != 101 {
		t.Fatalf("covered %d indices, want 101", len(covered))
	}
}

func TestReduceSumMatchesSerial(t *testing.T) {
	vals := make([]float64, 1000)
	for i := range vals {
		vals[i] = float64(i%97) * 0.5
	}
	want := 0.0
	for _, v := range vals {
		want += v
	}
	for _, n := range []int{1, 2, 4, 7} {
		tm := New(n)
		got := tm.ReduceSum(0, len(vals), func(blo, bhi int) float64 {
			s := 0.0
			for i := blo; i < bhi; i++ {
				s += vals[i]
			}
			return s
		})
		tm.Close()
		if got != want {
			// Partial sums are accumulated in worker order over
			// contiguous blocks, matching the serial association up
			// to block boundaries; for these values the result must
			// be identical because all partials are exactly
			// representable sums of halves.
			t.Fatalf("n=%d: ReduceSum = %v, want %v", n, got, want)
		}
	}
}

func TestReduceSumDeterministicAcrossRepeats(t *testing.T) {
	vals := make([]float64, 4096)
	x := 0.5
	for i := range vals {
		x = x*1.000301 + 0.125
		if x > 1e6 {
			x *= 1e-6
		}
		vals[i] = x
	}
	tm := New(4)
	defer tm.Close()
	body := func(blo, bhi int) float64 {
		s := 0.0
		for i := blo; i < bhi; i++ {
			s += vals[i]
		}
		return s
	}
	first := tm.ReduceSum(0, len(vals), body)
	for rep := 0; rep < 20; rep++ {
		if got := tm.ReduceSum(0, len(vals), body); got != first {
			t.Fatalf("repeat %d: %v != %v (reduction not deterministic)", rep, got, first)
		}
	}
}

func TestBarrierOrdersPhases(t *testing.T) {
	const n = 4
	tm := New(n)
	defer tm.Close()
	var phase1 int32
	violated := int32(0)
	tm.Run(func(id int) {
		atomic.AddInt32(&phase1, 1)
		tm.Barrier()
		// After the barrier every worker must observe all n phase-1
		// increments.
		if atomic.LoadInt32(&phase1) != n {
			atomic.StoreInt32(&violated, 1)
		}
	})
	if atomic.LoadInt32(&violated) != 0 {
		t.Fatal("barrier let a worker through before all reached phase 1")
	}
}

func TestBarrierReusableManyTimes(t *testing.T) {
	const n = 3
	tm := New(n)
	defer tm.Close()
	var counter int32
	bad := int32(0)
	tm.Run(func(id int) {
		for step := 1; step <= 50; step++ {
			atomic.AddInt32(&counter, 1)
			tm.Barrier()
			if atomic.LoadInt32(&counter) != int32(n*step) {
				atomic.StoreInt32(&bad, int32(step))
			}
			tm.Barrier()
		}
	})
	if n := atomic.LoadInt32(&bad); n != 0 {
		t.Fatalf("barrier misordered at step %d", n)
	}
}

func TestPipelineEnforcesOrder(t *testing.T) {
	const n = 4
	const planes = 20
	tm := New(n)
	defer tm.Close()
	p := NewPipeline(n, planes)
	// progress[w] = number of planes finished by worker w.
	progress := make([]int32, n)
	bad := int32(0)
	tm.Run(func(id int) {
		for k := 0; k < planes; k++ {
			p.Wait(id)
			// Invariant: predecessor must have finished plane k.
			if id > 0 && atomic.LoadInt32(&progress[id-1]) < int32(k+1) {
				atomic.StoreInt32(&bad, 1)
			}
			atomic.AddInt32(&progress[id], 1)
			p.Post(id)
		}
	})
	if atomic.LoadInt32(&bad) != 0 {
		t.Fatal("pipeline order violated")
	}
	for w := 0; w < n; w++ {
		if progress[w] != planes {
			t.Fatalf("worker %d finished %d planes, want %d", w, progress[w], planes)
		}
	}
}

func TestPipelineReverse(t *testing.T) {
	const n = 3
	const planes = 10
	tm := New(n)
	defer tm.Close()
	p := NewPipeline(n, planes)
	progress := make([]int32, n)
	bad := int32(0)
	tm.Run(func(id int) {
		for k := 0; k < planes; k++ {
			p.WaitReverse(id)
			if id < n-1 && atomic.LoadInt32(&progress[id+1]) < int32(k+1) {
				atomic.StoreInt32(&bad, 1)
			}
			atomic.AddInt32(&progress[id], 1)
			p.PostReverse(id)
		}
	})
	if atomic.LoadInt32(&bad) != 0 {
		t.Fatal("reverse pipeline order violated")
	}
}

func TestPipelineDrainAllowsReuse(t *testing.T) {
	const n = 2
	tm := New(n)
	defer tm.Close()
	p := NewPipeline(n, 4)
	for sweep := 0; sweep < 3; sweep++ {
		tm.Run(func(id int) {
			for k := 0; k < 4; k++ {
				p.Wait(id)
				p.Post(id)
			}
		})
		p.Drain()
	}
}

func TestWarmupReturnsWork(t *testing.T) {
	tm := New(2)
	defer tm.Close()
	if v := tm.Warmup(1000); v <= 0 {
		t.Fatalf("warmup returned %v", v)
	}
}

func TestSizeOneRunsInline(t *testing.T) {
	tm := New(1)
	defer tm.Close()
	ran := false
	tm.Run(func(id int) {
		if id != 0 {
			t.Errorf("id = %d, want 0", id)
		}
		ran = true //npblint:ignore sharedwrite every worker writes the same value
	})
	if !ran {
		t.Fatal("region did not run")
	}
}

func TestNewPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(0) did not panic")
		}
	}()
	New(0)
}

func TestCloseIdempotent(t *testing.T) {
	tm := New(3)
	tm.Close()
	tm.Close()
}

func TestPartialSlots(t *testing.T) {
	tm := New(3)
	defer tm.Close()
	tm.Run(func(id int) { *tm.Partial(id) = float64(id + 1) })
	if got := tm.PartialSum(); got != 6 {
		t.Fatalf("PartialSum = %v, want 6", got)
	}
}

func BenchmarkRegionForkJoin(b *testing.B) {
	for _, n := range []int{1, 2, 4, 8} {
		b.Run(benchName(n), func(b *testing.B) {
			tm := New(n)
			defer tm.Close()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tm.Run(func(int) {})
			}
		})
	}
}

func BenchmarkBarrier(b *testing.B) {
	for _, n := range []int{2, 4, 8} {
		b.Run(benchName(n), func(b *testing.B) {
			tm := New(n)
			defer tm.Close()
			b.ResetTimer()
			tm.Run(func(id int) {
				for i := 0; i < b.N; i++ {
					tm.Barrier()
				}
			})
		})
	}
}

func benchName(n int) string {
	return "threads=" + itoa(n)
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

func TestNestedRegionPanics(t *testing.T) {
	tm := New(2)
	defer tm.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("nested Run did not panic")
		}
	}()
	tm.Run(func(id int) {
		if id == 0 {
			//npblint:ignore barrierbalance deliberately nested to pin the panic behaviour
			tm.Run(func(int) {}) // must panic, not deadlock
		}
	})
}
