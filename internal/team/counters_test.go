package team

import (
	"errors"
	"sync"
	"testing"

	"npbgo/internal/obs"
	"npbgo/internal/perfcount"
)

// softwareSampler skips where even software perf events are
// unavailable (non-Linux stub builds); everywhere else it gives the
// team a real group-read path to sample.
func softwareSampler(t *testing.T, workers int) *perfcount.Sampler {
	t.Helper()
	pc, err := perfcount.NewSoftware(workers)
	if err != nil {
		var ue *perfcount.UnavailableError
		if !errors.As(err, &ue) {
			t.Fatalf("NewSoftware: error is %T, want *UnavailableError: %v", err, err)
		}
		t.Skipf("software counters unavailable here: %v", err)
	}
	return pc
}

// TestWithCountersSamplesRegions: an attached sampler accumulates
// per-worker deltas as the team runs regions, and the workers' slots
// (1..n-1, bound by the worker goroutines) see their own time.
func TestWithCountersSamplesRegions(t *testing.T) {
	const n = 3
	pc := softwareSampler(t, n)
	tm := New(n, WithCounters(pc))
	defer func() { tm.Close(); pc.Close() }()
	for r := 0; r < 5; r++ {
		tm.Run(func(id int) {
			x := 1.0
			for i := 0; i < 300_000; i++ {
				x = x*1.0000001 + 0.5
			}
			_ = x
			tm.BarrierID(id)
		})
	}
	st := pc.Snapshot()
	// Slot 0 (the master) is unbound here — the run driver owns it — so
	// only worker slots are asserted.
	for id := 1; id < n; id++ {
		if st.PerWorker[id].TaskClockNs == 0 {
			t.Errorf("worker %d accumulated no task clock over 5 regions", id)
		}
	}
}

// TestCountersConcurrentSampling drives concurrent region start/stop
// sampling against concurrent snapshots under -race: workers sample
// their slots while another goroutine reads them, which is exactly the
// registry's live-expvar access pattern mid-run.
func TestCountersConcurrentSampling(t *testing.T) {
	const n = 4
	pc := softwareSampler(t, n)
	rec := obs.New(n)
	rec.AttachCounters(pc)
	tm := New(n, WithCounters(pc), WithRecorder(rec))
	defer func() { tm.Close(); pc.Close() }()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				s := rec.Snapshot()
				if s.Counters == nil {
					t.Error("recorder snapshot lost its attached counters")
					return
				}
			}
		}
	}()
	for r := 0; r < 50; r++ {
		tm.For(0, 4*n, func(i int) {
			x := 1.0
			for k := 0; k < 20_000; k++ {
				x = x*1.0000001 + 0.5
			}
			_ = x
		})
	}
	close(stop)
	wg.Wait()
}

// TestCountersNilDisabled: a team without a sampler must behave exactly
// as before — the nil check is the whole disabled path.
func TestCountersNilDisabled(t *testing.T) {
	tm := New(2, WithCounters(nil))
	defer tm.Close()
	sum := tm.ReduceSum(0, 100, func(lo, hi int) float64 {
		s := 0.0
		for i := lo; i < hi; i++ {
			s++
		}
		return s
	})
	if sum != 100 {
		t.Fatalf("ReduceSum = %v, want 100", sum)
	}
}

// TestCountersSurvivePanic: a panicking region still charges its
// counter deltas (the RegionEnd defer registered before the recover
// defer), and the team remains usable.
func TestCountersSurvivePanic(t *testing.T) {
	const n = 2
	pc := softwareSampler(t, n)
	tm := New(n, WithCounters(pc))
	defer func() { tm.Close(); pc.Close() }()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("expected re-raised *PanicError")
			}
		}()
		tm.Run(func(id int) {
			if id == 1 {
				panic("boom")
			}
		})
	}()
	// The team must still run regions and sample after the failure.
	tm.Run(func(id int) {
		x := 1.0
		for i := 0; i < 100_000; i++ {
			x = x*1.0000001 + 0.5
		}
		_ = x
	})
	if st := pc.Snapshot(); st.PerWorker[1].TaskClockNs == 0 {
		t.Error("worker 1 charged no counters across panic and recovery regions")
	}
}
