package team

import (
	"time"

	"npbgo/internal/obs"
	"npbgo/internal/trace"
)

// Pipeline provides the point-to-point ordering used by LU's parallel
// SSOR sweeps. The lower/upper triangular solves carry a dependence along
// one grid dimension, so the OpenMP NPB (and the paper's Java port)
// pipeline them: worker w may process plane k of its block only after
// worker w-1 has finished plane k of the neighbouring block. The paper
// identifies exactly this per-plane synchronization inside the k loop as
// the reason LU scales worse than BT and SP.
//
// Each worker owns a buffered channel of tokens; Post(id) publishes "my
// next plane is done" and Wait(id) consumes the predecessor's token.
// Tokens are consumed in order, so no plane indices need to travel.
//
// A pipeline built with Team.NewPipeline inherits the team's obs
// recorder and tracer: time a worker spends parked for a token is
// charged to its obs wait slot — the same attribution BarrierID gives
// barriers, so LU's pipeline stalls show in the imbalance diagnostics —
// and waits that actually block are recorded as spans on the worker's
// trace timeline. The bare NewPipeline constructor stays
// instrumentation-free.
type Pipeline struct {
	ready []chan struct{}
	rec   *obs.Recorder
	tr    *trace.Tracer
	// Per-worker token counters for trace correlation. Each slot is
	// only touched by its own worker's goroutine, padded against false
	// sharing; they stay nil without a tracer.
	waits, posts []pipeCounter
}

// pipeCounter is a per-worker counter on its own cache line.
type pipeCounter struct {
	n uint64
	_ [7]uint64
}

// NewPipeline creates pipeline state for a team of n workers processing
// at most steps ordered stages (typically the number of grid planes in
// the swept dimension). Buffering channels to steps lets a fast
// predecessor run ahead without blocking.
func NewPipeline(n, steps int) *Pipeline {
	p := &Pipeline{ready: make([]chan struct{}, n)}
	for i := range p.ready {
		p.ready[i] = make(chan struct{}, steps)
	}
	return p
}

// NewPipeline creates a Pipeline sized for the team and wired to the
// team's obs recorder and tracer, so the per-plane waits of a pipelined
// sweep get the same per-worker attribution as barriers. It is the
// constructor the benchmark kernels use.
func (t *Team) NewPipeline(steps int) *Pipeline {
	p := NewPipeline(t.n, steps)
	p.rec = t.rec
	p.tr = t.tr
	if p.tr != nil {
		p.waits = make([]pipeCounter, t.n)
		p.posts = make([]pipeCounter, t.n)
	}
	return p
}

// recv consumes one token from the channel at index from on behalf of
// worker id. An immediately-available token costs one channel receive,
// as before; only a wait that actually blocks is timed and traced.
func (p *Pipeline) recv(id, from int) {
	ch := p.ready[from]
	if p.rec == nil && p.tr == nil {
		<-ch
		return
	}
	select {
	case <-ch:
		return // token already posted: no stall to record
	default:
	}
	var tok uint64
	if p.tr != nil {
		tok = p.waits[id].n
		p.waits[id].n++
		p.tr.PipeWaitBegin(id, tok)
	}
	var start time.Time
	if p.rec != nil {
		start = time.Now()
	}
	<-ch
	if p.rec != nil {
		p.rec.AddWait(id, time.Since(start))
	}
	if p.tr != nil {
		p.tr.PipeWaitEnd(id, tok)
	}
}

// send posts one token on worker id's own channel slot at index at.
// The channels are buffered to the full stage count, so send never
// blocks.
func (p *Pipeline) send(id, at int) {
	p.ready[at] <- struct{}{}
	if p.tr != nil {
		tok := p.posts[id].n
		p.posts[id].n++
		p.tr.PipeSignal(id, tok)
	}
}

// Wait blocks worker id until its predecessor (id-1) has posted one more
// completed stage. Worker 0 has no predecessor and never blocks.
func (p *Pipeline) Wait(id int) {
	if id > 0 {
		p.recv(id, id-1)
	}
}

// Post records that worker id has completed one more stage, releasing
// its successor. The last worker's posts are simply never consumed
// (the channel is buffered to the full stage count).
func (p *Pipeline) Post(id int) {
	if id < len(p.ready)-1 {
		p.send(id, id)
	}
}

// WaitReverse blocks worker id until its successor (id+1) has posted one
// completed stage; used by the upper-triangular sweep, which runs the
// pipeline in the opposite direction.
func (p *Pipeline) WaitReverse(id int) {
	if id < len(p.ready)-1 {
		p.recv(id, id+1)
	}
}

// PostReverse records a completed stage for the reverse sweep,
// releasing worker id-1.
func (p *Pipeline) PostReverse(id int) {
	if id > 0 {
		p.send(id, id)
	}
}

// Drain empties all token channels so the Pipeline can be reused for the
// next sweep. Call it from a single goroutine between sweeps (e.g. after
// a team barrier).
func (p *Pipeline) Drain() {
	for _, ch := range p.ready {
		for {
			select {
			case <-ch:
			default:
				goto next
			}
		}
	next:
	}
}
