package team

// Pipeline provides the point-to-point ordering used by LU's parallel
// SSOR sweeps. The lower/upper triangular solves carry a dependence along
// one grid dimension, so the OpenMP NPB (and the paper's Java port)
// pipeline them: worker w may process plane k of its block only after
// worker w-1 has finished plane k of the neighbouring block. The paper
// identifies exactly this per-plane synchronization inside the k loop as
// the reason LU scales worse than BT and SP.
//
// Each worker owns a buffered channel of tokens; Post(id) publishes "my
// next plane is done" and Wait(id) consumes the predecessor's token.
// Tokens are consumed in order, so no plane indices need to travel.
type Pipeline struct {
	ready []chan struct{}
}

// NewPipeline creates pipeline state for a team of n workers processing
// at most steps ordered stages (typically the number of grid planes in
// the swept dimension). Buffering channels to steps lets a fast
// predecessor run ahead without blocking.
func NewPipeline(n, steps int) *Pipeline {
	p := &Pipeline{ready: make([]chan struct{}, n)}
	for i := range p.ready {
		p.ready[i] = make(chan struct{}, steps)
	}
	return p
}

// Wait blocks worker id until its predecessor (id-1) has posted one more
// completed stage. Worker 0 has no predecessor and never blocks.
func (p *Pipeline) Wait(id int) {
	if id > 0 {
		<-p.ready[id-1]
	}
}

// Post records that worker id has completed one more stage, releasing
// its successor. The last worker's posts are simply never consumed
// (the channel is buffered to the full stage count).
func (p *Pipeline) Post(id int) {
	if id < len(p.ready)-1 {
		p.ready[id] <- struct{}{}
	}
}

// WaitReverse blocks worker id until its successor (id+1) has posted one
// completed stage; used by the upper-triangular sweep, which runs the
// pipeline in the opposite direction.
func (p *Pipeline) WaitReverse(id int) {
	if id < len(p.ready)-1 {
		<-p.ready[id+1]
	}
}

// PostReverse records a completed stage for the reverse sweep,
// releasing worker id-1.
func (p *Pipeline) PostReverse(id int) {
	if id > 0 {
		p.ready[id] <- struct{}{}
	}
}

// Drain empties all token channels so the Pipeline can be reused for the
// next sweep. Call it from a single goroutine between sweeps (e.g. after
// a team barrier).
func (p *Pipeline) Drain() {
	for _, ch := range p.ready {
		for {
			select {
			case <-ch:
			default:
				goto next
			}
		}
	next:
	}
}
