package team

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
)

// Regression tests for the cancellation-correctness fixes: before them,
// ReduceSum/PartialSum/Warmup on a cancelled team silently returned
// sums of stale partial slots, the n==1 inline For/ForBlock/ReduceSum
// paths ran their bodies on a cancelled team, and concurrent Close
// calls raced on an unguarded bool.

// TestReduceSumCancelledReturnsZero: a cancelled team must not sum the
// previous region's partials (they are stale) — it returns 0 and the
// caller checks Cancelled().
func TestReduceSumCancelledReturnsZero(t *testing.T) {
	tm := New(4)
	defer tm.Close()

	body := func(blo, bhi int) float64 { return float64(bhi - blo) }
	if got := tm.ReduceSum(0, 100, body); got != 100 {
		t.Fatalf("warm-up ReduceSum = %v, want 100", got)
	}

	tm.Cancel(errors.New("stop"))
	var ran atomic.Bool
	got := tm.ReduceSum(0, 100, func(blo, bhi int) float64 {
		ran.Store(true)
		return float64(bhi - blo)
	})
	if got != 0 {
		t.Fatalf("ReduceSum on cancelled team = %v, want 0 (stale partials must not leak)", got)
	}
	if ran.Load() {
		t.Fatal("ReduceSum body ran on a cancelled team")
	}
	if !tm.Cancelled() {
		t.Fatal("Cancelled() = false after Cancel")
	}
}

// TestPartialSumCancelledReturnsZero: the slots may mix an aborted
// region's partials with older ones, so PartialSum refuses to sum them.
func TestPartialSumCancelledReturnsZero(t *testing.T) {
	tm := New(3)
	defer tm.Close()
	tm.Run(func(id int) { *tm.Partial(id) = float64(id + 1) })
	if got := tm.PartialSum(); got != 6 {
		t.Fatalf("PartialSum = %v, want 6", got)
	}
	tm.Cancel(nil)
	if got := tm.PartialSum(); got != 0 {
		t.Fatalf("PartialSum on cancelled team = %v, want 0", got)
	}
}

// TestWarmupCancelledReturnsZero: Warmup is built from a region plus
// PartialSum and must inherit the same no-op semantics.
func TestWarmupCancelledReturnsZero(t *testing.T) {
	tm := New(2)
	defer tm.Close()
	tm.Cancel(nil)
	if got := tm.Warmup(1000); got != 0 {
		t.Fatalf("Warmup on cancelled team = %v, want 0", got)
	}
}

// TestInlinePathsHonorCancellation: with n == 1 the For/ForBlock/
// ReduceSum bodies used to run inline even on a cancelled team,
// bypassing the no-op semantics the dispatched n>1 path has.
func TestInlinePathsHonorCancellation(t *testing.T) {
	tm := New(1)
	defer tm.Close()
	tm.Cancel(errors.New("stop"))

	var ran atomic.Bool
	tm.For(0, 10, func(i int) { ran.Store(true) })
	if ran.Load() {
		t.Fatal("For body ran inline on a cancelled size-1 team")
	}
	tm.ForBlock(0, 10, func(blo, bhi int) { ran.Store(true) })
	if ran.Load() {
		t.Fatal("ForBlock body ran inline on a cancelled size-1 team")
	}
	if got := tm.ReduceSum(0, 10, func(blo, bhi int) float64 { ran.Store(true); return 1 }); got != 0 || ran.Load() {
		t.Fatalf("ReduceSum on cancelled size-1 team: got %v, body ran %v", got, ran.Load())
	}
}

// TestInlinePathsStillRunUncancelled guards the fix against
// over-correction: a live size-1 team still runs the bodies inline.
func TestInlinePathsStillRunUncancelled(t *testing.T) {
	tm := New(1)
	defer tm.Close()
	var n atomic.Int64
	tm.For(0, 5, func(i int) { n.Add(1) })
	if n.Load() != 5 {
		t.Fatalf("For ran %d iterations, want 5", n.Load())
	}
	tm.ForBlock(0, 5, func(blo, bhi int) { n.Add(int64(bhi - blo)) })
	if n.Load() != 10 {
		t.Fatalf("ForBlock covered %d total, want 10", n.Load())
	}
	if got := tm.ReduceSum(0, 4, func(blo, bhi int) float64 { return float64(bhi - blo) }); got != 4 {
		t.Fatalf("ReduceSum = %v, want 4", got)
	}
}

// TestCloseConcurrent: Close is documented idempotent; before the fix
// two racing Close calls could both observe closed == false and
// double-close the work channels. Run under -race this also checks the
// closed flag is properly synchronized.
func TestCloseConcurrent(t *testing.T) {
	tm := New(4)
	tm.Run(func(id int) {}) // make sure the workers are live first
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			tm.Close()
		}()
	}
	wg.Wait()
	tm.Close() // still idempotent afterwards
}

// TestCancelledReduceSumMidRegion: a cancellation landing while the
// region is in flight must also yield 0, not a half-updated mix of old
// and new partials.
func TestCancelledReduceSumMidRegion(t *testing.T) {
	tm := New(2)
	defer tm.Close()
	if got := tm.ReduceSum(0, 2, func(blo, bhi int) float64 { return 1000 }); got != 2000 {
		t.Fatalf("seed ReduceSum = %v, want 2000", got)
	}
	got := tm.ReduceSum(0, 2, func(blo, bhi int) float64 {
		tm.Cancel(errors.New("mid-region stop"))
		return 1
	})
	if got != 0 {
		t.Fatalf("mid-region-cancelled ReduceSum = %v, want 0", got)
	}
}
