package team

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"npbgo/internal/fault"
)

// runRecovered invokes tm.Run and returns the *PanicError it re-raised,
// or nil if the region completed.
func runRecovered(tm *Team, fn func(int)) (pe *PanicError) {
	defer func() {
		if v := recover(); v != nil {
			var ok bool
			if pe, ok = v.(*PanicError); !ok {
				panic(v)
			}
		}
	}()
	tm.Run(fn)
	return nil
}

func TestWorkerPanicSurfacesAsPanicError(t *testing.T) {
	tm := New(4)
	defer tm.Close()
	pe := runRecovered(tm, func(id int) {
		if id == 2 {
			panic("boom")
		}
		// The other three workers park here; without barrier poisoning
		// this region would deadlock.
		tm.Barrier()
	})
	if pe == nil {
		t.Fatal("worker panic did not surface")
	}
	if pe.ID != 2 {
		t.Fatalf("PanicError.ID = %d, want 2", pe.ID)
	}
	if pe.Value != "boom" {
		t.Fatalf("PanicError.Value = %v", pe.Value)
	}
	if len(pe.Stack) == 0 || !strings.Contains(string(pe.Stack), "robust_test") {
		t.Fatalf("stack not captured at panic site:\n%s", pe.Stack)
	}
	if !strings.Contains(pe.Error(), "worker 2") {
		t.Fatalf("Error() = %q", pe.Error())
	}
}

func TestTeamUsableAfterFailedRegion(t *testing.T) {
	tm := New(3)
	defer tm.Close()
	if pe := runRecovered(tm, func(id int) {
		if id == 1 {
			panic("first region fails")
		}
		tm.Barrier()
	}); pe == nil {
		t.Fatal("expected failure in first region")
	}
	// The team must have rejoined cleanly: a fresh region runs on all
	// workers and the barrier works again.
	ran := make(chan int, 3)
	tm.Run(func(id int) {
		tm.Barrier()
		ran <- id
	})
	if len(ran) != 3 {
		t.Fatalf("second region ran on %d workers, want 3", len(ran))
	}
}

func TestCloseAfterFailedRegionDoesNotHang(t *testing.T) {
	tm := New(4)
	runRecovered(tm, func(id int) {
		if id == 3 {
			panic("die")
		}
		tm.Barrier()
	})
	closed := make(chan struct{})
	go func() {
		tm.Close()
		close(closed)
	}()
	select {
	case <-closed:
	case <-time.After(5 * time.Second):
		t.Fatal("Close hung after failed region")
	}
}

func TestSerialTeamPanicIsTyped(t *testing.T) {
	tm := New(1)
	defer tm.Close()
	pe := runRecovered(tm, func(id int) { panic("inline") })
	if pe == nil || pe.ID != 0 || pe.Value != "inline" {
		t.Fatalf("serial panic not converted: %+v", pe)
	}
}

func TestRunCtxCancelUnparksWorkers(t *testing.T) {
	tm := New(4)
	defer tm.Close()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		done <- tm.RunCtx(ctx, func(id int) {
			if id != 0 {
				// The master never arrives: workers 1..3 park here until
				// the context poisons the barrier.
				//npblint:ignore barrierbalance deliberately unbalanced to exercise barrier poisoning
				tm.Barrier()
			}
		})
	}()
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("RunCtx error = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancellation did not unpark workers")
	}
	if !tm.Cancelled() {
		t.Fatal("team not marked cancelled")
	}
}

func TestRunCtxDeadline(t *testing.T) {
	tm := New(2)
	defer tm.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	err := tm.RunCtx(ctx, func(id int) {
		if id != 0 {
			//npblint:ignore barrierbalance deliberately unbalanced to exercise the deadline path
			tm.Barrier() // parked until the deadline fires
		}
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("RunCtx error = %v, want DeadlineExceeded", err)
	}
}

func TestCancelledTeamSkipsRegions(t *testing.T) {
	tm := New(2)
	defer tm.Close()
	tm.Cancel(nil)
	ran := false
	tm.Run(func(id int) { ran = true }) //npblint:ignore sharedwrite every worker writes the same value
	if ran {
		t.Fatal("region ran on a cancelled team")
	}
	if err := tm.RunCtx(context.Background(), func(int) {}); !errors.Is(err, context.Canceled) {
		t.Fatalf("RunCtx on cancelled team = %v", err)
	}
}

func TestRunCtxExpiredContextSkipsRegion(t *testing.T) {
	tm := New(2)
	defer tm.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran := false
	//npblint:ignore sharedwrite every worker writes the same value
	if err := tm.RunCtx(ctx, func(int) { ran = true }); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
	if ran {
		t.Fatal("region ran under an already-expired context")
	}
}

func TestRunCtxSuccess(t *testing.T) {
	tm := New(3)
	defer tm.Close()
	hits := make(chan int, 3)
	if err := tm.RunCtx(context.Background(), func(id int) { hits <- id }); err != nil {
		t.Fatal(err)
	}
	if len(hits) != 3 {
		t.Fatalf("ran on %d workers", len(hits))
	}
}

func TestBlockGuardsBadParts(t *testing.T) {
	defer func() {
		v := recover()
		if v == nil {
			t.Fatal("Block(parts=0) did not panic")
		}
		if !strings.Contains(v.(string), "parts 0 < 1") {
			t.Fatalf("panic message %q not descriptive", v)
		}
	}()
	Block(0, 10, 0, 0)
}

func TestInjectedRegionPanicIsIsolated(t *testing.T) {
	fault.Activate(1, fault.Rule{Site: "team.region", Kind: fault.KindPanic})
	defer fault.Reset()
	tm := New(4)
	defer tm.Close()
	pe := runRecovered(tm, func(id int) { tm.Barrier() })
	if pe == nil {
		t.Fatal("injected panic not surfaced")
	}
	if _, ok := pe.Value.(fault.InjectedPanic); !ok {
		t.Fatalf("panic value %v (%T), want fault.InjectedPanic", pe.Value, pe.Value)
	}
	// The rule fired once; the team must be healthy again.
	tm.Run(func(id int) { tm.Barrier() })
}

func TestMultipleWorkerPanicsCounted(t *testing.T) {
	tm := New(4)
	defer tm.Close()
	pe := runRecovered(tm, func(id int) {
		panic(id) // every worker panics
	})
	if pe == nil {
		t.Fatal("no failure surfaced")
	}
	if pe.Others != 3 {
		t.Fatalf("Others = %d, want 3", pe.Others)
	}
}
