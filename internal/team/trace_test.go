package team

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"npbgo/internal/trace"
)

var errTestStop = errors.New("test stop")

// kindCount tallies one track's events by kind.
func kindCount(tk trace.Track) map[trace.Kind]int {
	m := map[trace.Kind]int{}
	for _, e := range tk.Events {
		m[e.Kind]++
	}
	return m
}

// TestTracerRecordsRegionsAndBlocks: every region form produces one
// paired region span on the master track and one paired block span per
// worker, on both the team and the n==1 inline path.
func TestTracerRecordsRegionsAndBlocks(t *testing.T) {
	for _, n := range []int{1, 4} {
		tr := trace.New(n)
		tm := New(n, WithTracer(tr))
		tm.Run(func(id int) {})
		tm.For(0, 8, func(i int) {})
		tm.ForBlock(0, 8, func(blo, bhi int) {})
		_ = tm.ReduceSum(0, 8, func(blo, bhi int) float64 { return 1 })
		tm.Close()

		s := tr.Snapshot()
		master := kindCount(s.Tracks[n])
		if master[trace.KindRegionBegin] != 4 || master[trace.KindRegionEnd] != 4 {
			t.Fatalf("n=%d: master region events = %d/%d, want 4/4",
				n, master[trace.KindRegionBegin], master[trace.KindRegionEnd])
		}
		if master[trace.KindReduce] != 1 {
			t.Fatalf("n=%d: reduce instants = %d, want 1", n, master[trace.KindReduce])
		}
		for id := 0; id < n; id++ {
			w := kindCount(s.Tracks[id])
			if w[trace.KindBlockBegin] != 4 || w[trace.KindBlockEnd] != 4 {
				t.Fatalf("n=%d: worker %d block events = %d/%d, want 4/4",
					n, id, w[trace.KindBlockBegin], w[trace.KindBlockEnd])
			}
		}
	}
}

// TestTracerBarrierPairsShareGeneration: BarrierID emits one
// arrive/release pair per worker per trip, and all workers of one trip
// carry the same generation — the correlation the exporter's flow
// arrows are built from.
func TestTracerBarrierPairsShareGeneration(t *testing.T) {
	const n, trips = 3, 5
	tr := trace.New(n)
	tm := New(n, WithTracer(tr))
	defer tm.Close()
	tm.Run(func(id int) {
		for i := 0; i < trips; i++ {
			tm.BarrierID(id)
		}
	})
	s := tr.Snapshot()
	gens := map[uint64]int{}
	for id := 0; id < n; id++ {
		w := kindCount(s.Tracks[id])
		if w[trace.KindBarrierArrive] != trips || w[trace.KindBarrierRelease] != trips {
			t.Fatalf("worker %d barrier events = %d/%d, want %d/%d",
				id, w[trace.KindBarrierArrive], w[trace.KindBarrierRelease], trips, trips)
		}
		for _, e := range s.Tracks[id].Events {
			if e.Kind == trace.KindBarrierArrive {
				gens[e.ID]++
			}
		}
	}
	if len(gens) != trips {
		t.Fatalf("saw %d distinct generations, want %d", len(gens), trips)
	}
	for gen, count := range gens {
		if count != n {
			t.Fatalf("generation %d has %d arrivals, want %d", gen, count, n)
		}
	}
}

// TestTracerAnonymousBarrierNotTraced: the unattributed Barrier() has
// no worker identity to land events on, so it must stay silent rather
// than corrupt a track.
func TestTracerAnonymousBarrierNotTraced(t *testing.T) {
	const n = 2
	tr := trace.New(n)
	tm := New(n, WithTracer(tr))
	defer tm.Close()
	tm.Run(func(id int) { tm.Barrier() })
	s := tr.Snapshot()
	for _, tk := range s.Tracks {
		kc := kindCount(tk)
		if kc[trace.KindBarrierArrive] != 0 || kc[trace.KindBarrierRelease] != 0 {
			t.Fatalf("track %q recorded anonymous barrier events: %v", tk.Name, kc)
		}
	}
}

// TestTracerPanicAndPoisonedBarrierStayPaired: a worker panic is an
// instant inside its block span, and workers unwound from the poisoned
// barrier still close their arrive spans — the exported file must
// validate even for a crashed region.
func TestTracerPanicAndPoisonedBarrierStayPaired(t *testing.T) {
	const n = 3
	tr := trace.New(n)
	tm := New(n, WithTracer(tr))
	defer tm.Close()
	pe := runRecovered(tm, func(id int) {
		if id == 0 {
			panic("boom")
		}
		tm.BarrierID(id)
	})
	if pe == nil {
		t.Fatal("expected a PanicError")
	}
	s := tr.Snapshot()
	if kc := kindCount(s.Tracks[0]); kc[trace.KindPanic] != 1 {
		t.Fatalf("worker 0 panic instants = %d, want 1", kc[trace.KindPanic])
	}
	for id := 0; id < n; id++ {
		kc := kindCount(s.Tracks[id])
		if kc[trace.KindBarrierArrive] != kc[trace.KindBarrierRelease] {
			t.Fatalf("worker %d: %d arrives vs %d releases — poisoned unwind leaked a span",
				id, kc[trace.KindBarrierArrive], kc[trace.KindBarrierRelease])
		}
		if kc[trace.KindBlockBegin] != kc[trace.KindBlockEnd] {
			t.Fatalf("worker %d: %d block begins vs %d ends", id,
				kc[trace.KindBlockBegin], kc[trace.KindBlockEnd])
		}
	}
	var buf bytes.Buffer
	if err := s.WriteChrome(&buf, "crashed"); err != nil {
		t.Fatal(err)
	}
	if _, err := trace.Validate(buf.Bytes()); err != nil {
		t.Fatalf("crashed-region trace fails validation: %v", err)
	}
}

// TestTracerPipelineFastPathSilent: a token that is already posted is
// consumed on the select fast path — a signal instant on the sender,
// no wait span on the receiver.
func TestTracerPipelineFastPathSilent(t *testing.T) {
	tr := trace.New(2)
	tm := New(2, WithTracer(tr))
	defer tm.Close()
	pipe := tm.NewPipeline(4)
	pipe.Post(0)
	pipe.Wait(1)
	s := tr.Snapshot()
	if kc := kindCount(s.Tracks[0]); kc[trace.KindPipeSignal] != 1 {
		t.Fatalf("worker 0 posts = %d, want 1", kc[trace.KindPipeSignal])
	}
	if kc := kindCount(s.Tracks[1]); kc[trace.KindPipeWaitBegin] != 0 {
		t.Fatal("non-blocking receive recorded a wait span")
	}
}

// TestTracerPipelineBlockingWaitRecorded: a receive that actually
// parks records a paired wait span on the receiver's track.
func TestTracerPipelineBlockingWaitRecorded(t *testing.T) {
	tr := trace.New(2)
	tm := New(2, WithTracer(tr))
	defer tm.Close()
	pipe := tm.NewPipeline(4)
	done := make(chan struct{})
	go func() {
		time.Sleep(20 * time.Millisecond) // let Wait(1) park first
		pipe.Post(0)
		close(done)
	}()
	pipe.Wait(1)
	<-done
	s := tr.Snapshot()
	w1 := kindCount(s.Tracks[1])
	if w1[trace.KindPipeWaitBegin] != 1 || w1[trace.KindPipeWaitEnd] != 1 {
		t.Fatalf("worker 1 wait spans = %d begins, %d ends; want 1/1",
			w1[trace.KindPipeWaitBegin], w1[trace.KindPipeWaitEnd])
	}
}

// TestTracerCancelOnRuntimeTrack: the watcher-driven cancellation is
// asynchronous, so it must land on the runtime track, with the reason.
func TestTracerCancelOnRuntimeTrack(t *testing.T) {
	tr := trace.New(2)
	tm := New(2, WithTracer(tr))
	defer tm.Close()
	tm.Cancel(errTestStop)
	tm.Cancel(errTestStop) // sticky: only the first is an event
	s := tr.Snapshot()
	rt := s.Tracks[3]
	if len(rt.Events) != 1 || rt.Events[0].Kind != trace.KindCancel {
		t.Fatalf("runtime track = %+v, want exactly one cancel", rt.Events)
	}
	if rt.Events[0].Name != errTestStop.Error() {
		t.Fatalf("cancel reason = %q, want %q", rt.Events[0].Name, errTestStop)
	}
}

// BenchmarkRegionTrace measures per-region dispatch with and without a
// tracer — the disabled path's budget is one nil check, so notrace must
// match the plain-team numbers of BenchmarkRegionObs.
func BenchmarkRegionTrace(b *testing.B) {
	for _, n := range []int{1, 4} {
		for _, on := range []bool{false, true} {
			name := benchName(n)
			if on {
				name += "/trace"
			} else {
				name += "/notrace"
			}
			b.Run(name, func(b *testing.B) {
				var opts []Option
				if on {
					// Outsized capacity so the ring never fills mid-benchmark;
					// a full ring costs less (no store), which would flatter
					// the numbers.
					opts = append(opts, WithTracer(trace.New(n, trace.WithCapacity(1<<22))))
				}
				tm := New(n, opts...)
				defer tm.Close()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					tm.Run(func(id int) {})
				}
			})
		}
	}
}

// BenchmarkBarrierTrace measures the id-attributed barrier with and
// without event recording.
func BenchmarkBarrierTrace(b *testing.B) {
	for _, on := range []bool{false, true} {
		name := "notrace"
		var opts []Option
		if on {
			name = "trace"
			opts = append(opts, WithTracer(trace.New(4, trace.WithCapacity(1<<22))))
		}
		b.Run(name, func(b *testing.B) {
			tm := New(4, opts...)
			defer tm.Close()
			b.ResetTimer()
			tm.Run(func(id int) {
				for i := 0; i < b.N; i++ {
					tm.BarrierID(id)
				}
			})
		})
	}
}
