// Loop scheduling: the OpenMP schedule(static|dynamic|guided) family
// plus work stealing, mapped onto the team runtime.
//
// The paper's §5.2 traces CG's poor scaling to load imbalance under the
// static block distribution its Java prototype hard-codes — the same
// distribution Block computes. A Schedule makes the distribution a
// property of the team: static keeps the old behavior (and stays the
// default), dynamic hands out fixed-size chunks through an atomic
// cursor, guided shrinks chunks geometrically so the tail self-balances,
// and stealing gives every worker a deque of chunks with idle workers
// taking the back half of a victim's remaining range. Auto starts
// static and lets the tuner escalate using the obs feedback (imbalance
// ratio and barrier-wait share) the recorder already collects.
//
// Determinism. Scheduling only moves chunks between workers; it never
// changes which output element a chunk writes, so loops whose body
// writes f(i) for each owned index i produce bit-identical arrays under
// every schedule. Reductions additionally fix the chunk *decomposition*:
// a reduce loop always uses the n static blocks as its chunks, each
// chunk's partial lands in the slot of its block index (not the worker
// that ran it), and the master sums slots in block order — so reduction
// results are bit-identical to static under every schedule at a fixed
// team size, no matter which worker claimed which block.
//
// All cursor and deque state lives in the Team (allocated once in New)
// and the body-side Iter is a plain value on the worker's stack, so a
// scheduled loop allocates nothing on the hot path and the zero-alloc
// gates hold at budget 0.
package team

import (
	"fmt"
	"runtime"
	"sync/atomic"
)

// Schedule selects how loop iterations are distributed over the team.
type Schedule uint8

const (
	// Static is the historical default: each worker runs one contiguous
	// block computed by Block, the OpenMP schedule(static) of the
	// paper's prototype.
	Static Schedule = iota
	// Dynamic deals fixed-size chunks through a shared atomic cursor;
	// workers grab the next chunk when they finish their current one.
	Dynamic
	// Guided deals geometrically shrinking chunks (remaining/(2n),
	// floored at the grain), so early chunks are big and the tail is
	// fine-grained enough to even out.
	Guided
	// Stealing gives each worker a deque of chunks; an idle worker
	// steals the back half of a victim's remaining range, preserving
	// the owner's locality at the front.
	Stealing
	// Auto starts static and re-evaluates every few regions using the
	// obs feedback (imbalance ratio, barrier-wait share), escalating
	// static → dynamic → guided → stealing and de-escalating after
	// sustained balance.
	Auto
)

// String returns the schedule's flag spelling.
func (s Schedule) String() string {
	switch s {
	case Static:
		return "static"
	case Dynamic:
		return "dynamic"
	case Guided:
		return "guided"
	case Stealing:
		return "stealing"
	case Auto:
		return "auto"
	}
	return "?"
}

// ScheduleNames lists the accepted ParseSchedule spellings, in flag
// help order.
func ScheduleNames() []string {
	return []string{"static", "dynamic", "guided", "stealing", "auto"}
}

// ParseSchedule parses a schedule name. The empty string parses as
// Static, so an unset config field keeps the historical behavior.
func ParseSchedule(s string) (Schedule, error) {
	switch s {
	case "", "static":
		return Static, nil
	case "dynamic":
		return Dynamic, nil
	case "guided":
		return Guided, nil
	case "stealing":
		return Stealing, nil
	case "auto":
		return Auto, nil
	}
	return Static, fmt.Errorf("team: unknown schedule %q (want static, dynamic, guided, stealing or auto)", s)
}

// WithSchedule selects the team's loop schedule. The zero value Static
// is the default.
func WithSchedule(s Schedule) Option {
	return func(t *Team) { t.sched = s }
}

// WithGrain sets the chunk grain in iterations for dynamic and stealing
// (the fixed chunk size) and guided (the minimum chunk size). grain < 1
// — the default — sizes chunks automatically from the loop range.
func WithGrain(grain int) Option {
	return func(t *Team) { t.grain = grain }
}

const (
	// loopSlots is the ring of shared cursor words. Worksharing loops
	// inside one region take consecutive slots; a slot is reused only
	// loopSlots loops later (or by a later region, whose join guarantees
	// no straggler still holds it). Region bodies therefore must not run
	// more than loopSlots worksharing loops concurrently without an
	// intervening barrier — far beyond what any kernel here does.
	loopSlots = 16
	// oversub is the automatic-grain target for dynamic and stealing:
	// about oversub chunks per worker, enough slack to rebalance without
	// drowning in cursor traffic.
	oversub = 8
	// maxChunks caps a loop's chunk count so chunk ordinals and deque
	// bounds always fit their 32-bit halves.
	maxChunks = 1 << 24

	cursorMask = (uint64(1) << 32) - 1
	tagMask    = ^cursorMask
)

// padU64 is an atomic word on its own cache line: loop cursors and
// deque words are CAS-contended by every worker.
type padU64 struct {
	v atomic.Uint64
	_ [56]byte
}

// padCount is a per-worker counter on its own cache line (the worker's
// loop ordinal within the current region; master-reset between regions).
type padCount struct {
	v uint32
	_ [60]byte
}

// Iter is the body-side work-sharing iterator. A region body obtains
// one per loop with Team.Loop (or Team.ReduceBlocks for reductions) and
// drains it:
//
//	for it := tm.Loop(id, lo, hi); it.Next(); {
//		for i := it.Lo; i < it.Hi; i++ { ... }
//	}
//
// Under the static schedule the single chunk is exactly the worker's
// Block share, so migrated code behaves identically by default. Every
// worker of the region must construct the iterator (all of them bump
// their loop ordinal), even if it claims no chunks. Iter is a value:
// it lives on the worker's stack and allocates nothing.
type Iter struct {
	t      *Team
	id     int
	lo, hi int

	sched     Schedule
	blockMode bool // chunks are the nchunks static blocks, not grain-sized
	grain     int
	nchunks   int

	slot *padU64 // shared cursor word (dynamic/guided) or arm word (stealing)
	tag  uint64  // loop-instance tag in the word's high 32 bits
	deq  []padU64

	next, stop int // static/inline ordinal window
	gMin       int // guided minimum chunk size
	gIdx, gLo  int // guided recurrence cache: chunk gIdx starts at offset gLo

	cur int // ordinal of the current chunk
	// Lo and Hi bound the current chunk, half-open, after Next returns
	// true.
	Lo, Hi int
}

// Loop returns the work-sharing iterator for [lo, hi) under the team's
// schedule. id must be the calling worker's region id.
func (t *Team) Loop(id, lo, hi int) Iter { return t.newIter(id, lo, hi, false) }

// ReduceBlocks returns the reduction iterator for [lo, hi): its chunks
// are always the Size() static blocks, every chunk is yielded (even
// empty ones), and Chunk names the block index — so a body that stores
// chunk results via Partial(it.Chunk()) combines with PartialSum into a
// total that is bit-identical to the static schedule no matter which
// worker ran which block.
func (t *Team) ReduceBlocks(id, lo, hi int) Iter { return t.newIter(id, lo, hi, true) }

func (t *Team) newIter(id, lo, hi int, blocks bool) Iter {
	if hi < lo {
		hi = lo
	}
	it := Iter{t: t, id: id, lo: lo, hi: hi, cur: -1}
	n := t.n
	if n == 1 {
		it.blockMode = true
		it.nchunks = 1
		it.stop = 1
		return it
	}
	s := t.cur
	it.sched = s
	if blocks || s == Static {
		it.blockMode = true
		it.nchunks = n
	}
	if s == Static {
		it.next, it.stop = id, id+1
		return it
	}
	// Slot-consuming schedules: claim this loop's cursor word by its
	// per-region ordinal. The tag makes the first arriver's claim
	// unambiguous against the slot's previous (dead) loop.
	k := t.loopK[id].v
	t.loopK[id].v = k + 1
	inst := uint64(t.regionTag)<<8 | uint64(k&0xff)
	it.tag = (inst & 0xffffffff) << 32
	it.slot = &t.loops[inst%loopSlots]
	if !it.blockMode {
		span := hi - lo
		g := t.grain
		if s == Guided {
			if g < 1 {
				g = 1
			}
			it.gMin = g
			it.nchunks = guidedChunks(span, n, g)
		} else {
			if g < 1 {
				g = span / (oversub * n)
			}
			if g < 1 {
				g = 1
			}
			if span/g >= maxChunks {
				g = (span + maxChunks - 1) / maxChunks
			}
			it.grain = g
			it.nchunks = (span + g - 1) / g
		}
	}
	if s == Stealing {
		it.deq = t.deques[inst%loopSlots]
		if it.nchunks > 0 {
			it.armSteal()
		}
	}
	return it
}

// Next advances to the next chunk, returning false when the loop's
// iteration space is exhausted for this worker.
func (it *Iter) Next() bool {
	if it.nchunks == 0 {
		return false
	}
	var c, victim int
	switch it.sched {
	case Stealing:
		var ok bool
		c, victim, ok = it.stealNext()
		if !ok {
			return false
		}
	default:
		if it.slot == nil { // Static or inline
			if it.next >= it.stop {
				return false
			}
			c = it.next
			it.next++
			it.cur = c
			it.Lo, it.Hi = it.chunkRange(c)
			return true
		}
		var ok bool
		c, ok = it.grab()
		if !ok {
			return false
		}
		victim = -1
	}
	t := it.t
	if t.rec != nil {
		t.rec.IncChunk(it.id)
		if victim >= 0 {
			t.rec.IncSteal(it.id)
		}
	}
	if t.tr != nil {
		if victim >= 0 {
			t.tr.Steal(it.id, uint64(victim))
		} else {
			t.tr.Chunk(it.id, uint64(c))
		}
	}
	it.cur = c
	it.Lo, it.Hi = it.chunkRange(c)
	return true
}

// Chunk returns the ordinal of the current chunk. Under ReduceBlocks it
// is the block index, the deterministic slot for this chunk's partial.
func (it *Iter) Chunk() int { return it.cur }

// grab claims the next chunk ordinal off the shared cursor. The first
// arriver finds the slot tagged by a dead loop and re-arms it, claiming
// chunk 0 in the same CAS.
func (it *Iter) grab() (int, bool) {
	slot := &it.slot.v
	for {
		v := slot.Load()
		if v&tagMask != it.tag {
			if slot.CompareAndSwap(v, it.tag|1) {
				return 0, true
			}
			continue
		}
		c := int(v & cursorMask)
		if c >= it.nchunks {
			return 0, false
		}
		if slot.CompareAndSwap(v, v+1) {
			return c, true
		}
	}
}

// armSteal makes sure this loop's deques are filled before any chunk is
// taken: the first arriver claims the slot word (tag with the armed bit
// clear), writes every worker's initial chunk range, then publishes the
// armed bit; later arrivers spin until they see it.
func (it *Iter) armSteal() {
	slot := &it.slot.v
	for {
		v := slot.Load()
		if v&tagMask == it.tag {
			if v&1 != 0 {
				return
			}
			runtime.Gosched()
			continue
		}
		if !slot.CompareAndSwap(v, it.tag) {
			continue
		}
		d := it.deq
		for w := range d {
			clo, chi := Block(0, it.nchunks, len(d), w)
			d[w].v.Store(uint64(clo)<<32 | uint64(chi))
		}
		slot.Store(it.tag | 1)
		return
	}
}

// stealNext pops the front of the worker's own deque, or — once that is
// empty — steals the back half of a victim's remaining range, keeping
// the first stolen chunk and installing the rest as its own new deque.
// It returns false only when every deque is empty; a chunk popped by
// another worker is that worker's to finish, so every chunk is run
// exactly once.
func (it *Iter) stealNext() (c, victim int, ok bool) {
	d := it.deq
	own := &d[it.id].v
	for {
		v := own.Load()
		clo, chi := int(v>>32), int(v&cursorMask)
		if clo >= chi {
			break
		}
		if own.CompareAndSwap(v, v+(1<<32)) {
			return clo, -1, true
		}
	}
	n := len(d)
	for {
		empty := true
		for off := 1; off < n; off++ {
			w := it.id + off
			if w >= n {
				w -= n
			}
			v := d[w].v.Load()
			clo, chi := int(v>>32), int(v&cursorMask)
			if clo >= chi {
				continue
			}
			empty = false
			mid := clo + (chi-clo)/2 // victim keeps the front half
			if !d[w].v.CompareAndSwap(v, uint64(clo)<<32|uint64(mid)) {
				continue
			}
			if mid+1 < chi {
				own.Store(uint64(mid+1)<<32 | uint64(chi))
			}
			return mid, w, true
		}
		if empty {
			return 0, -1, false
		}
	}
}

// chunkRange maps a chunk ordinal to its half-open index range.
func (it *Iter) chunkRange(c int) (int, int) {
	if it.blockMode {
		return Block(it.lo, it.hi, it.nchunks, c)
	}
	if it.sched == Guided {
		return it.guidedRange(c)
	}
	lo := it.lo + c*it.grain
	hi := lo + it.grain
	if hi > it.hi {
		hi = it.hi
	}
	return lo, hi
}

// guidedRange maps ordinal c through the guided recurrence. A worker's
// ordinals are monotonically increasing (the cursor only moves
// forward), so stepping from the cached position amortizes to O(1) per
// chunk.
func (it *Iter) guidedRange(c int) (int, int) {
	span := it.hi - it.lo
	idx, off := it.gIdx, it.gLo
	if c < idx {
		idx, off = 0, 0
	}
	for idx < c {
		off += guidedSize(span-off, it.t.n, it.gMin)
		idx++
	}
	it.gIdx, it.gLo = idx, off
	lo := it.lo + off
	hi := lo + guidedSize(span-off, it.t.n, it.gMin)
	if hi > it.hi {
		hi = it.hi
	}
	return lo, hi
}

// guidedSize is the guided chunk recurrence: half the per-worker share
// of what remains, floored at the configured grain.
func guidedSize(remaining, n, min int) int {
	s := remaining / (2 * n)
	if s < min {
		s = min
	}
	return s
}

// guidedChunks runs the recurrence to count a guided loop's chunks.
func guidedChunks(span, n, min int) int {
	c, off := 0, 0
	for off < span {
		off += guidedSize(span-off, n, min)
		c++
	}
	return c
}

// Auto-tuning. The master re-evaluates every tuneEvery regions, between
// regions (so every worker of a region sees one agreed schedule), from
// the obs recorder's per-worker busy/wait deltas: the same imbalance
// ratio and barrier-wait share the perfstat anomaly detectors flag. An
// imbalanced window escalates one rung up the static → dynamic →
// guided → stealing ladder; calmEpochs consecutive balanced windows
// walk one rung back down (hysteresis, so the tuner does not flap
// around the threshold).
const (
	tuneEvery    = 32
	escalateImb  = 1.25 // escalate at this busy-time imbalance ratio
	assistImb    = 1.10 // ... or at this ratio when waits pile up too
	escalateWait = 0.20 // barrier-wait share backing an assistImb escalation
	calmImb      = 1.08 // a window at or below this ratio counts as calm
	calmEpochs   = 4
)

type tuner struct {
	cur      Schedule
	epoch    int
	calm     int
	lastBusy []int64
	lastWait []int64
}

// maybeTune runs one tuner step; called by the master from resetRegion,
// before the region's schedule is resolved and published.
func (t *Team) maybeTune() {
	tn := &t.tun
	tn.epoch++
	if tn.epoch < tuneEvery || t.rec == nil {
		return
	}
	tn.epoch = 0
	var maxB, sumB, sumW int64
	for id := 0; id < t.n; id++ {
		b, w := t.rec.BusyNs(id), t.rec.WaitNs(id)
		db, dw := b-tn.lastBusy[id], w-tn.lastWait[id]
		tn.lastBusy[id], tn.lastWait[id] = b, w
		sumB += db
		sumW += dw
		if db > maxB {
			maxB = db
		}
	}
	if sumB <= 0 {
		return
	}
	imb := float64(maxB) * float64(t.n) / float64(sumB)
	waitShare := float64(sumW) / float64(sumB+sumW)
	switch {
	case imb >= escalateImb || (imb >= assistImb && waitShare >= escalateWait):
		tn.calm = 0
		if tn.cur < Stealing {
			t.retune(tn.cur + 1)
		}
	case imb <= calmImb:
		tn.calm++
		if tn.calm >= calmEpochs && tn.cur > Static {
			tn.calm = 0
			t.retune(tn.cur - 1)
		}
	default:
		tn.calm = 0
	}
}

func (t *Team) retune(s Schedule) {
	t.tun.cur = s
	if t.rec != nil {
		t.rec.IncRetune()
	}
	if t.tr != nil {
		t.tr.Retune(s.String())
	}
}
