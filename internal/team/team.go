// Package team implements the master–worker thread-team runtime the
// translated benchmarks are parallelized with.
//
// The paper derives every benchmark class from java.lang.Thread, keeps a
// fixed set of worker objects alive for the whole run, and has the master
// switch them between blocked and runnable states with wait()/notify()
// around each parallel region — a direct imitation of the OpenMP version
// of the NPB. This package is the Go equivalent: a Team owns a fixed pool
// of goroutines parked on channels; the master broadcasts a region
// function to the pool and joins in as worker 0, and a sense-counting
// barrier provides in-region synchronization. Loop-level work sharing
// uses the same static block distribution as the OpenMP schedule(static)
// the paper's prototype used by default; WithSchedule switches a team to
// dynamic, guided, work-stealing or auto-tuned distribution (see
// schedule.go), the knob §5.2's load-imbalance diagnosis calls for.
//
// The runtime is fault-isolating: a panic on any worker is captured with
// its stack, the barrier is poisoned so sibling workers parked on it
// unwind instead of deadlocking, and the master re-raises the failure as
// a typed *PanicError once every worker has rejoined — the process
// survives and the team remains usable. Cancellation works the same way:
// Cancel (or a context watched via RunCtx/WatchContext) poisons the
// barrier, unparks everyone, and makes subsequent regions no-ops; region
// bodies and benchmark iteration loops poll Cancelled for a prompt stop.
package team

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"npbgo/internal/fault"
	"npbgo/internal/obs"
	"npbgo/internal/perfcount"
	"npbgo/internal/trace"
)

// PanicError reports a panic captured on a team worker during a parallel
// region. The master re-raises it (Run) or returns it (RunCtx) after all
// workers have rejoined, so the process survives a worker crash.
type PanicError struct {
	ID     int    // id of the first worker that panicked
	Value  any    // the recovered panic value
	Stack  []byte // stack of the panicking worker at the panic site
	Others int    // additional workers that panicked in the same region
}

func (e *PanicError) Error() string {
	s := fmt.Sprintf("team: worker %d panicked: %v", e.ID, e.Value)
	if e.Others > 0 {
		s += fmt.Sprintf(" (and %d more worker(s))", e.Others)
	}
	return s
}

// regionAbort is the sentinel panicked by a poisoned barrier to unwind
// workers parked on it; it marks a secondary victim, never the failure
// itself, so the recover wrapper swallows it.
type regionAbort struct{}

// Team is a fixed pool of workers executing parallel regions on demand.
// A Team with size 1 runs regions inline on the caller's goroutine, so
// "1 thread" measures the framework overhead the paper quantifies
// against the serial code (§5: "Java thread overhead ... contributes no
// more than 20%").
type Team struct {
	n       int
	work    []chan func(int)
	done    chan struct{}
	barrier barrier
	partial []padded    // reduction scratch, one padded slot per worker
	closed  atomic.Bool // set once by Close; guarded by CAS so Close races with itself safely
	joined  sync.WaitGroup

	// rec is the optional obs recorder (WithRecorder). When nil —
	// the default — every instrumentation point is a single pointer
	// check, so an unobserved team pays nothing measurable.
	rec *obs.Recorder

	// tr is the optional execution tracer (WithTracer), under the same
	// contract as rec: nil disables every trace point down to one
	// pointer check.
	tr *trace.Tracer

	// pc is the optional hardware-counter sampler (WithCounters), under
	// the same nil-disabled contract: workers bind their perf event
	// groups to their OS threads at spawn and the team samples the
	// groups at region entry/exit, charging per-worker counter deltas.
	pc *perfcount.Sampler
	// regionSeq numbers parallel regions for trace correlation; it only
	// advances while a tracer is attached.
	regionSeq atomic.Uint64

	inRegion atomic.Bool // guards against nested parallel regions

	// Loop scheduling state (schedule.go). All of it is allocated once
	// in New and reused by every loop, so scheduled loops stay
	// allocation-free. sched and grain are the configured policy; cur
	// is the schedule resolved for the current region (the tuner's pick
	// under Auto), written by the master in resetRegion before dispatch
	// and read by workers — the channel send orders the accesses.
	sched     Schedule
	grain     int
	cur       Schedule
	regionTag uint32     // per-region ordinal feeding loop-instance tags
	loopK     []padCount // per-worker loop ordinal within the region
	loops     []padU64   // shared cursor ring, one word per loop slot
	deques    [][]padU64 // per-slot stealing deques, one word per worker
	tun       tuner

	halt   atomic.Bool // sticky cancellation flag, read by Cancelled
	failMu sync.Mutex  // guards regionFail and cancelErr
	// regionFail is the first real panic of the current region; cleared
	// when the next region starts.
	regionFail *PanicError
	// cancelErr is the sticky reason passed to Cancel; once set the team
	// refuses to start new regions.
	cancelErr error
}

// padded is a float64 on its own cache line so that per-worker reduction
// partials do not false-share.
type padded struct {
	v float64
	_ [7]float64
}

// Option configures optional team behaviour at construction.
type Option func(*Team)

// WithRecorder attaches an obs recorder: the team charges per-worker
// busy time, barrier-wait time and region/cancellation/panic counts to
// it. rec should be sized obs.New(n) for a team of n; a nil rec leaves
// observation disabled.
func WithRecorder(rec *obs.Recorder) Option {
	return func(t *Team) { t.rec = rec }
}

// WithTracer attaches an execution tracer: the team records region
// fork/join, per-worker block begin/end, id-attributed barrier
// arrive/release, reductions, cancellation and panics as timestamped
// events on tr's per-worker rings. tr should be sized trace.New(n) for
// a team of n; a nil tr leaves tracing disabled. While a tracer is
// attached and the Go execution tracer is running, each region is also
// annotated as a runtime/trace region, so `go tool trace` shows the
// team's fork-join structure next to the scheduler view.
func WithTracer(tr *trace.Tracer) Option {
	return func(t *Team) { t.tr = tr }
}

// WithCounters attaches a hardware-counter sampler: each worker
// goroutine locks its OS thread, binds its perf event group to it for
// the team's lifetime, and the team reads the group at every region
// entry and exit so cycles/instructions/cache-miss deltas are charged
// per worker per region (perfcount.Sampler slots 1..n-1; slot 0, the
// master, is bound by the run driver that owns the calling goroutine).
// pc should be sized perfcount.New(n) for a team of n; a nil pc leaves
// counter sampling disabled at the cost of one pointer check.
func WithCounters(pc *perfcount.Sampler) Option {
	return func(t *Team) { t.pc = pc }
}

// New creates a team of n workers (n >= 1). Workers other than worker 0
// are persistent goroutines parked on their work channels, mirroring the
// paper's always-alive Thread objects in the blocked state. Close the
// team when done to release them.
func New(n int, opts ...Option) *Team {
	if n < 1 {
		panic(fmt.Sprintf("team: size %d < 1", n))
	}
	t := &Team{
		n:       n,
		work:    make([]chan func(int), n),
		done:    make(chan struct{}, n),
		partial: make([]padded, n),
	}
	for _, o := range opts {
		o(t)
	}
	if n > 1 {
		t.loopK = make([]padCount, n)
		t.loops = make([]padU64, loopSlots)
		t.deques = make([][]padU64, loopSlots)
		for i := range t.deques {
			t.deques[i] = make([]padU64, n)
		}
		if t.sched == Auto {
			// The tuner needs the busy/wait feedback; give an
			// unobserved team a private recorder.
			if t.rec == nil {
				t.rec = obs.New(n)
			}
			t.tun.lastBusy = make([]int64, n)
			t.tun.lastWait = make([]int64, n)
		}
	}
	t.barrier.init(n, &t.halt, t.rec, t.tr)
	for id := 1; id < n; id++ {
		t.work[id] = make(chan func(int))
		t.joined.Add(1)
		go t.worker(id)
	}
	return t
}

func (t *Team) worker(id int) {
	defer t.joined.Done()
	if t.pc != nil {
		// Counter groups measure the thread they are opened on, so the
		// worker pins itself to its OS thread for its whole life and
		// opens its group here; a bind failure is noted on the sampler
		// and the worker simply runs unsampled.
		t.pc.Bind(id)
		defer t.pc.Unbind(id)
	}
	for fn := range t.work[id] {
		t.runOne(fn, id)
		t.done <- struct{}{}
	}
}

// runOne executes fn(id) with panic isolation: a real panic is recorded
// as the region's failure (with the worker's stack) and poisons the
// barrier so parked siblings unwind; the regionAbort sentinel those
// siblings throw is swallowed here.
func (t *Team) runOne(fn func(int), id int) {
	if t.tr != nil {
		// The block span closes in a defer registered before the recover
		// defer, so it runs after it: a panicking worker's block still
		// ends, with the panic instant recorded inside it.
		seq := t.regionSeq.Load()
		t.tr.BlockBegin(id, seq)
		defer t.tr.BlockEnd(id, seq)
	}
	if t.rec != nil {
		start := time.Now()
		// Registered before the recover defer so it runs after it:
		// a panicking worker's time is still charged.
		defer func() { t.rec.AddBusy(id, time.Since(start)) }()
	}
	if t.pc != nil {
		// Same defer ordering argument as the recorder: a panicking
		// worker's counter deltas are still charged to its slot.
		t.pc.RegionStart(id)
		defer t.pc.RegionEnd(id)
	}
	defer func() {
		if v := recover(); v != nil {
			if _, ok := v.(regionAbort); ok {
				return // secondary unwind; primary failure already recorded
			}
			t.notePanic(id, v, debug.Stack())
		}
	}()
	fault.Maybe("team.region")
	fn(id)
}

func (t *Team) notePanic(id int, v any, stack []byte) {
	t.failMu.Lock()
	if t.regionFail == nil {
		t.regionFail = &PanicError{ID: id, Value: v, Stack: stack}
	} else {
		t.regionFail.Others++
	}
	t.failMu.Unlock()
	if t.rec != nil {
		t.rec.IncPanic()
	}
	if t.tr != nil {
		t.tr.Panic(id)
	}
	t.barrier.poison()
}

// Cancel cancels the team: parked workers are unpoisoned off the barrier,
// in-flight region bodies observe Cancelled() == true, and subsequent
// regions become no-ops. The first reason sticks; nil means
// context.Canceled. A cancelled team can still be Closed.
func (t *Team) Cancel(reason error) {
	if reason == nil {
		reason = context.Canceled
	}
	t.failMu.Lock()
	first := t.cancelErr == nil
	if first {
		t.cancelErr = reason
	}
	t.failMu.Unlock()
	if first && t.rec != nil {
		t.rec.IncCancel()
	}
	if first && t.tr != nil {
		t.tr.Cancel(reason.Error())
	}
	t.halt.Store(true)
	t.barrier.poison()
}

// Cancelled reports whether the team has been cancelled. Region bodies
// and benchmark iteration loops poll it for a prompt cooperative stop.
func (t *Team) Cancelled() bool { return t.halt.Load() }

func (t *Team) cancelReason() error {
	t.failMu.Lock()
	defer t.failMu.Unlock()
	return t.cancelErr
}

// WatchContext cancels the team when ctx is done. It returns a stop
// function releasing the watcher goroutine; callers typically
// `defer stop()` for the duration of a benchmark run. stop waits for
// the watcher to exit, so after stop returns no cancellation side
// effect (including its trace event) is still in flight.
func (t *Team) WatchContext(ctx context.Context) (stop func()) {
	if ctx == nil || ctx.Done() == nil {
		return func() {}
	}
	quit := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		select {
		case <-ctx.Done():
			t.Cancel(ctx.Err())
		case <-quit:
		}
	}()
	return func() { close(quit); <-done }
}

// Size returns the number of workers in the team.
func (t *Team) Size() int { return t.n }

// Close shuts the worker goroutines down and joins them. The team must
// be idle (no region in flight); a team whose last region failed or was
// cancelled is idle once Run/RunCtx has returned. Close is idempotent
// and safe to call from multiple goroutines: exactly one caller wins
// the compare-and-swap and closes the work channels, and every caller
// waits for the workers to exit — so once any Close returns, the
// workers have run their deferred cleanup (counter-group unbinds in
// particular) and an attached perfcount.Sampler may safely be closed.
func (t *Team) Close() {
	if t.closed.CompareAndSwap(false, true) {
		for id := 1; id < t.n; id++ {
			close(t.work[id])
		}
	}
	t.joined.Wait()
}

// Run executes fn(id) on every worker, id in [0, Size()), with the
// caller acting as worker 0 (the master), and returns when all workers
// have finished — one parallel region with an implicit join, the
// notify-all/wait-all cycle of the paper's master. If any worker
// panicked, Run re-raises the failure on the master as a *PanicError
// after the join. On a cancelled team Run is a no-op; callers observe
// the cancellation through Cancelled().
func (t *Team) Run(fn func(id int)) {
	if err := t.run(fn); err != nil {
		var pe *PanicError
		if errors.As(err, &pe) {
			panic(pe)
		}
		// Cancellation: the region was skipped or unwound; the caller's
		// iteration loop is expected to poll Cancelled() and stop.
	}
}

// RunCtx is Run with a context: the region is skipped if ctx is already
// done, the team is cancelled (parked workers unblocked) the moment ctx
// expires mid-region, and worker panics are returned as a *PanicError
// instead of being re-raised.
func (t *Team) RunCtx(ctx context.Context, fn func(id int)) error {
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			t.Cancel(err)
			return err
		}
		stop := t.WatchContext(ctx)
		defer stop()
	}
	return t.run(fn)
}

func (t *Team) run(fn func(id int)) error {
	if t.closed.Load() {
		panic("team: Run on closed team")
	}
	if t.halt.Load() {
		return t.cancelReason()
	}
	if t.rec != nil {
		t.rec.IncRegion()
	}
	if t.tr != nil {
		seq := t.regionSeq.Add(1)
		defer trace.StartRegion("team.region")()
		t.tr.RegionBegin(seq)
		defer t.tr.RegionEnd(seq)
	}
	if t.n == 1 {
		t.runOne(fn, 0)
		return t.takeFailure()
	}
	if !t.inRegion.CompareAndSwap(false, true) {
		// Starting a region from inside a region would deadlock on the
		// work channels; fail loudly instead.
		panic("team: nested parallel regions are not supported")
	}
	defer t.inRegion.Store(false)
	t.resetRegion()
	for id := 1; id < t.n; id++ {
		t.work[id] <- fn
	}
	t.runOne(fn, 0)
	var joinStart time.Time
	if t.rec != nil {
		joinStart = time.Now()
	}
	for id := 1; id < t.n; id++ {
		<-t.done
	}
	if t.rec != nil {
		// Join wait: how long the slowest worker ran past the master —
		// the skew the imbalance ratio summarizes per run.
		t.rec.AddJoin(time.Since(joinStart))
	}
	return t.takeFailure()
}

// resetRegion clears the previous region's failure state. The sticky
// cancellation flag is deliberately not cleared: the barrier's halt
// pointer keeps a cancelled team poisoned forever, so a cancellation
// racing with region start can never be lost.
func (t *Team) resetRegion() {
	t.failMu.Lock()
	t.regionFail = nil
	t.failMu.Unlock()
	t.barrier.reset()
	// Re-arm the loop machinery and publish the region's schedule. The
	// previous region has fully joined, so no worker still reads these.
	t.regionTag++
	for i := range t.loopK {
		t.loopK[i].v = 0
	}
	s := t.sched
	if s == Auto {
		t.maybeTune()
		s = t.tun.cur
	}
	t.cur = s
}

func (t *Team) takeFailure() error {
	t.failMu.Lock()
	pe := t.regionFail
	t.regionFail = nil
	cancel := t.cancelErr
	t.failMu.Unlock()
	if pe != nil {
		return pe
	}
	if cancel != nil {
		return cancel
	}
	return nil
}

// Barrier blocks until every worker of the current region has reached
// it. It must be called by all Size() workers exactly the same number of
// times inside a region, as with an OpenMP barrier. If the region failed
// or the team was cancelled, Barrier unwinds the calling worker instead
// of deadlocking.
//
// Barrier is a thin wrapper over BarrierID with the wait unattributed
// (id -1): wait time is charged to the obs recorder in aggregate only,
// and no trace events are recorded (an unattributed wait has no worker
// timeline to land on). Region bodies — where the worker id is always
// in scope — should call BarrierID instead; the benchmark kernels all
// do, and this wrapper remains for id-free contexts such as tests and
// examples.
func (t *Team) Barrier() { t.BarrierID(-1) }

// BarrierID is Barrier with per-worker attribution: id must be the
// calling worker's region id. With an obs recorder attached, the time
// this worker spends parked is charged to its wait slot — the signal
// that exposed the paper's LU pipeline stalls as per-thread timing
// asymmetry. With a tracer attached, the wait is recorded as an
// arrive/release span on the worker's timeline, keyed by the barrier
// generation so the exporter can link the trip with flow events.
// Without either it behaves exactly like Barrier.
func (t *Team) BarrierID(id int) {
	if t.n > 1 {
		t.barrier.await(id)
	}
}

// Block computes the static partition of the half-open index range
// [lo, hi) into parts pieces and returns piece id as [blo, bhi). Ranges
// are contiguous, cover [lo, hi) exactly, and differ in size by at most
// one — the schedule(static) distribution of the OpenMP prototype.
// parts must be at least 1.
func Block(lo, hi, parts, id int) (blo, bhi int) {
	if parts < 1 {
		panic(fmt.Sprintf("team: Block called with parts %d < 1 (range [%d,%d))", parts, lo, hi))
	}
	if id < 0 || id >= parts {
		panic(fmt.Sprintf("team: Block called with id %d out of range [0,%d) (range [%d,%d))", id, parts, lo, hi))
	}
	n := hi - lo
	if n < 0 {
		n = 0
	}
	q, r := n/parts, n%parts
	blo = lo + id*q
	if id < r {
		blo += id
	} else {
		blo += r
	}
	bhi = blo + q
	if id < r {
		bhi++
	}
	return blo, bhi
}

// inline runs a size-1 team's loop body on the caller with the same
// region and trace accounting as a dispatched region. Callers have
// already checked the halt flag.
func (t *Team) inline(fn func()) {
	if t.tr != nil {
		seq := t.regionSeq.Add(1)
		t.tr.RegionBegin(seq)
		t.tr.BlockBegin(0, seq)
		defer func() {
			t.tr.BlockEnd(0, seq)
			t.tr.RegionEnd(seq)
		}()
	}
	if t.pc != nil {
		t.pc.RegionStart(0)
		defer t.pc.RegionEnd(0)
	}
	if t.rec == nil {
		fn()
		return
	}
	t.rec.IncRegion()
	start := time.Now()
	fn()
	t.rec.AddBusy(0, time.Since(start))
}

// For runs body(i) for every i in [lo, hi) with iterations distributed
// over the team by its schedule (one static block per worker by
// default), as a complete parallel region (fork + join). On a cancelled
// team For is a no-op, like Run; callers observe the cancellation
// through Cancelled().
func (t *Team) For(lo, hi int, body func(i int)) {
	if t.n == 1 {
		if t.halt.Load() {
			return // same no-op semantics as the dispatched n>1 path
		}
		t.inline(func() {
			for i := lo; i < hi; i++ {
				body(i)
			}
		})
		return
	}
	t.Run(func(id int) {
		for it := t.Loop(id, lo, hi); it.Next(); {
			for i := it.Lo; i < it.Hi; i++ {
				body(i)
			}
		}
	})
}

// ForBlock runs body(blo, bhi) once per scheduled chunk of [lo, hi) —
// under the default static schedule, exactly once per worker with that
// worker's Block share — as a complete parallel region. Benchmarks use
// this form so the worker can keep its own inner loop nests, exactly
// like the translated Java run() bodies. On a cancelled team ForBlock
// is a no-op, like Run.
func (t *Team) ForBlock(lo, hi int, body func(blo, bhi int)) {
	if t.n == 1 {
		if t.halt.Load() {
			return // same no-op semantics as the dispatched n>1 path
		}
		t.inline(func() { body(lo, hi) })
		return
	}
	t.Run(func(id int) {
		for it := t.Loop(id, lo, hi); it.Next(); {
			body(it.Lo, it.Hi)
		}
	})
}

// ReduceSum runs body over the Size() static blocks of [lo, hi), each
// chunk returning its partial sum, and returns the total. The chunk
// decomposition is the static one under every schedule — only the
// worker that runs each block varies — and each block's partial lands
// in the slot of its block index, summed in block order, so the result
// is bit-reproducible for a given team size no matter the schedule. On
// a cancelled team the region is skipped and ReduceSum returns 0 —
// never a sum of stale partials from an earlier region — so callers
// must check Cancelled() before using the result.
func (t *Team) ReduceSum(lo, hi int, body func(blo, bhi int) float64) float64 {
	if t.halt.Load() {
		return 0
	}
	if t.n == 1 {
		var sum float64
		t.inline(func() { sum = body(lo, hi) })
		if t.halt.Load() {
			// The body cancelled the team mid-flight: return 0 like the
			// dispatched path, never a partial of an aborted region.
			return 0
		}
		if t.tr != nil {
			t.tr.Reduce(t.regionSeq.Load())
		}
		return sum
	}
	t.Run(func(id int) {
		for it := t.ReduceBlocks(id, lo, hi); it.Next(); {
			t.partial[it.Chunk()].v = body(it.Lo, it.Hi)
		}
	})
	if t.halt.Load() {
		// The region was skipped or unwound mid-flight: some slots may
		// still hold a previous region's partials.
		return 0
	}
	sum := 0.0
	for id := 0; id < t.n; id++ {
		sum += t.partial[id].v
	}
	if t.tr != nil {
		t.tr.Reduce(t.regionSeq.Load())
	}
	return sum
}

// Partial exposes worker id's reduction slot for regions that manage
// their own reductions across barriers.
func (t *Team) Partial(id int) *float64 { return &t.partial[id].v }

// PartialSum adds up all reduction slots in worker order. On a
// cancelled team it returns 0: the slots may mix the aborted region's
// partials with an earlier region's, so no sum of them is meaningful.
func (t *Team) PartialSum() float64 {
	if t.halt.Load() {
		return 0
	}
	sum := 0.0
	for id := 0; id < t.n; id++ {
		sum += t.partial[id].v
	}
	return sum
}

// Warmup gives every worker a significant amount of busy work before the
// timed computation starts. This reproduces the fix of §5.2: on the
// paper's SGI the JVM ran CG's lightly-loaded threads on only 1–2
// processors until each thread was given a large initialization load,
// after which every thread got its own CPU. iters controls the per-worker
// load; the returned value defeats dead-code elimination. On a
// cancelled team Warmup is a no-op returning 0, like the regions it is
// built from.
func (t *Team) Warmup(iters int) float64 {
	if t.halt.Load() {
		return 0
	}
	t.Run(func(id int) {
		x := 1.0 + float64(id)
		s := 0.0
		for i := 0; i < iters; i++ {
			x = x*1.0000001 + 0.5
			if x > 2e9 {
				x *= 0.5
			}
			s += x
		}
		t.partial[id].v = s
	})
	return t.PartialSum()
}

// barrier is a reusable counting barrier (generation-numbered, the
// classic sense-reversal scheme expressed with a condition variable; the
// paper's Java code does the same thing with wait()/notifyAll()). It is
// poisonable: after poison() every waiter — present and future — panics
// with the regionAbort sentinel instead of blocking, which is how a
// failed or cancelled region unparks its workers. reset() re-arms the
// barrier for the next region; the team-level halt flag stays in force
// so cancellation survives resets.
type barrier struct {
	mu     sync.Mutex
	cond   *sync.Cond
	n      int
	count  int
	gen    uint64
	broken bool          // per-region poison (a worker panicked)
	halt   *atomic.Bool  // sticky team cancellation, never cleared here
	rec    *obs.Recorder // optional wait-time accounting; nil when unobserved
	tr     *trace.Tracer // optional arrive/release events; nil when untraced
}

func (b *barrier) init(n int, halt *atomic.Bool, rec *obs.Recorder, tr *trace.Tracer) {
	b.n = n
	b.halt = halt
	b.rec = rec
	b.tr = tr
	b.cond = sync.NewCond(&b.mu)
}

// poison wakes every waiter and makes future await calls unwind.
func (b *barrier) poison() {
	b.mu.Lock()
	b.broken = true
	b.cond.Broadcast()
	b.mu.Unlock()
}

// reset re-arms the barrier between regions. Only per-region poison is
// cleared; a halted (cancelled) team stays poisoned through *halt.
func (b *barrier) reset() {
	b.mu.Lock()
	b.count = 0
	b.gen++
	b.broken = false
	b.mu.Unlock()
}

func (b *barrier) poisoned() bool {
	return b.broken || b.halt.Load()
}

// await parks the caller until the barrier trips. id attributes the
// wait time to a worker's obs slot and trace timeline; id < 0 records
// it in aggregate only (and leaves no trace — there is no timeline to
// put it on). The last arriver trips the barrier and records no wait.
//
// Trace events are emitted under the barrier mutex, so arrivals are
// totally ordered: the latest arrive timestamp of a generation really
// is the worker whose arrival tripped the barrier, which is what the
// exporter's flow linking relies on. A worker unwound by poisoning
// still emits its release, so arrive spans always close.
func (b *barrier) await(id int) {
	traced := b.tr != nil && id >= 0
	b.mu.Lock()
	if b.poisoned() {
		b.mu.Unlock()
		panic(regionAbort{})
	}
	gen := b.gen
	if traced {
		b.tr.BarrierArrive(id, gen)
	}
	b.count++
	if b.count == b.n {
		b.count = 0
		b.gen++
		b.cond.Broadcast()
		if traced {
			b.tr.BarrierRelease(id, gen)
		}
		b.mu.Unlock()
		return
	}
	var waitStart time.Time
	if b.rec != nil {
		waitStart = time.Now()
	}
	for gen == b.gen && !b.poisoned() {
		b.cond.Wait()
	}
	if b.rec != nil {
		b.rec.AddWait(id, time.Since(waitStart))
	}
	if traced {
		b.tr.BarrierRelease(id, gen)
	}
	bad := b.poisoned()
	b.mu.Unlock()
	if bad {
		panic(regionAbort{})
	}
}
