// Package team implements the master–worker thread-team runtime the
// translated benchmarks are parallelized with.
//
// The paper derives every benchmark class from java.lang.Thread, keeps a
// fixed set of worker objects alive for the whole run, and has the master
// switch them between blocked and runnable states with wait()/notify()
// around each parallel region — a direct imitation of the OpenMP version
// of the NPB. This package is the Go equivalent: a Team owns a fixed pool
// of goroutines parked on channels; the master broadcasts a region
// function to the pool and joins in as worker 0, and a sense-counting
// barrier provides in-region synchronization. Loop-level work sharing
// uses the same static block distribution as the OpenMP schedule(static)
// the paper's prototype used.
package team

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Team is a fixed pool of workers executing parallel regions on demand.
// A Team with size 1 runs regions inline on the caller's goroutine, so
// "1 thread" measures the framework overhead the paper quantifies
// against the serial code (§5: "Java thread overhead ... contributes no
// more than 20%").
type Team struct {
	n       int
	work    []chan func(int)
	done    chan struct{}
	barrier barrier
	partial []padded // reduction scratch, one padded slot per worker
	closed  bool

	inRegion atomic.Bool // guards against nested parallel regions
}

// padded is a float64 on its own cache line so that per-worker reduction
// partials do not false-share.
type padded struct {
	v float64
	_ [7]float64
}

// New creates a team of n workers (n >= 1). Workers other than worker 0
// are persistent goroutines parked on their work channels, mirroring the
// paper's always-alive Thread objects in the blocked state. Close the
// team when done to release them.
func New(n int) *Team {
	if n < 1 {
		panic(fmt.Sprintf("team: size %d < 1", n))
	}
	t := &Team{
		n:       n,
		work:    make([]chan func(int), n),
		done:    make(chan struct{}, n),
		partial: make([]padded, n),
	}
	t.barrier.init(n)
	for id := 1; id < n; id++ {
		t.work[id] = make(chan func(int))
		go t.worker(id)
	}
	return t
}

func (t *Team) worker(id int) {
	for fn := range t.work[id] {
		fn(id)
		t.done <- struct{}{}
	}
}

// Size returns the number of workers in the team.
func (t *Team) Size() int { return t.n }

// Close shuts the worker goroutines down. The team must be idle (no
// region in flight). Close is idempotent.
func (t *Team) Close() {
	if t.closed {
		return
	}
	t.closed = true
	for id := 1; id < t.n; id++ {
		close(t.work[id])
	}
}

// Run executes fn(id) on every worker, id in [0, Size()), with the
// caller acting as worker 0 (the master), and returns when all workers
// have finished — one parallel region with an implicit join, the
// notify-all/wait-all cycle of the paper's master.
func (t *Team) Run(fn func(id int)) {
	if t.closed {
		panic("team: Run on closed team")
	}
	if t.n == 1 {
		fn(0)
		return
	}
	if !t.inRegion.CompareAndSwap(false, true) {
		// Starting a region from inside a region would deadlock on the
		// work channels; fail loudly instead.
		panic("team: nested parallel regions are not supported")
	}
	defer t.inRegion.Store(false)
	for id := 1; id < t.n; id++ {
		t.work[id] <- fn
	}
	fn(0)
	for id := 1; id < t.n; id++ {
		<-t.done
	}
}

// Barrier blocks until every worker of the current region has reached
// it. It must be called by all Size() workers exactly the same number of
// times inside a region, as with an OpenMP barrier.
func (t *Team) Barrier() {
	if t.n > 1 {
		t.barrier.await()
	}
}

// Block computes the static partition of the half-open index range
// [lo, hi) into parts pieces and returns piece id as [blo, bhi). Ranges
// are contiguous, cover [lo, hi) exactly, and differ in size by at most
// one — the schedule(static) distribution of the OpenMP prototype.
func Block(lo, hi, parts, id int) (blo, bhi int) {
	n := hi - lo
	if n < 0 {
		n = 0
	}
	q, r := n/parts, n%parts
	blo = lo + id*q
	if id < r {
		blo += id
	} else {
		blo += r
	}
	bhi = blo + q
	if id < r {
		bhi++
	}
	return blo, bhi
}

// For runs body(i) for every i in [lo, hi) with iterations statically
// blocked over the team, as a complete parallel region (fork + join).
func (t *Team) For(lo, hi int, body func(i int)) {
	if t.n == 1 {
		for i := lo; i < hi; i++ {
			body(i)
		}
		return
	}
	t.Run(func(id int) {
		blo, bhi := Block(lo, hi, t.n, id)
		for i := blo; i < bhi; i++ {
			body(i)
		}
	})
}

// ForBlock runs body(blo, bhi) once per worker with that worker's static
// share of [lo, hi), as a complete parallel region. Benchmarks use this
// form so the worker can keep its own inner loop nests, exactly like the
// translated Java run() bodies.
func (t *Team) ForBlock(lo, hi int, body func(blo, bhi int)) {
	if t.n == 1 {
		body(lo, hi)
		return
	}
	t.Run(func(id int) {
		blo, bhi := Block(lo, hi, t.n, id)
		body(blo, bhi)
	})
}

// ReduceSum runs body over static blocks of [lo, hi), each worker
// returning its partial sum, and returns the total. Partials are
// accumulated in deterministic worker order so that a run with a given
// team size is bit-reproducible.
func (t *Team) ReduceSum(lo, hi int, body func(blo, bhi int) float64) float64 {
	if t.n == 1 {
		return body(lo, hi)
	}
	t.Run(func(id int) {
		blo, bhi := Block(lo, hi, t.n, id)
		t.partial[id].v = body(blo, bhi)
	})
	sum := 0.0
	for id := 0; id < t.n; id++ {
		sum += t.partial[id].v
	}
	return sum
}

// Partial exposes worker id's reduction slot for regions that manage
// their own reductions across barriers.
func (t *Team) Partial(id int) *float64 { return &t.partial[id].v }

// PartialSum adds up all reduction slots in worker order.
func (t *Team) PartialSum() float64 {
	sum := 0.0
	for id := 0; id < t.n; id++ {
		sum += t.partial[id].v
	}
	return sum
}

// Warmup gives every worker a significant amount of busy work before the
// timed computation starts. This reproduces the fix of §5.2: on the
// paper's SGI the JVM ran CG's lightly-loaded threads on only 1–2
// processors until each thread was given a large initialization load,
// after which every thread got its own CPU. iters controls the per-worker
// load; the returned value defeats dead-code elimination.
func (t *Team) Warmup(iters int) float64 {
	t.Run(func(id int) {
		x := 1.0 + float64(id)
		s := 0.0
		for i := 0; i < iters; i++ {
			x = x*1.0000001 + 0.5
			if x > 2e9 {
				x *= 0.5
			}
			s += x
		}
		t.partial[id].v = s
	})
	return t.PartialSum()
}

// barrier is a reusable counting barrier (generation-numbered, the
// classic sense-reversal scheme expressed with a condition variable; the
// paper's Java code does the same thing with wait()/notifyAll()).
type barrier struct {
	mu    sync.Mutex
	cond  *sync.Cond
	n     int
	count int
	gen   uint64
}

func (b *barrier) init(n int) {
	b.n = n
	b.cond = sync.NewCond(&b.mu)
}

func (b *barrier) await() {
	b.mu.Lock()
	gen := b.gen
	b.count++
	if b.count == b.n {
		b.count = 0
		b.gen++
		b.cond.Broadcast()
		b.mu.Unlock()
		return
	}
	for gen == b.gen {
		b.cond.Wait()
	}
	b.mu.Unlock()
}
