package team

import (
	"errors"
	"testing"
	"time"

	"npbgo/internal/obs"
)

// TestRecorderCountsRegionsAndBusy: every region form (Run, For,
// ForBlock, ReduceSum, the n==1 inline paths) is counted and charges
// per-worker busy time.
func TestRecorderCountsRegionsAndBusy(t *testing.T) {
	for _, n := range []int{1, 4} {
		rec := obs.New(n)
		tm := New(n, WithRecorder(rec))
		tm.Run(func(id int) { time.Sleep(time.Millisecond) })
		tm.For(0, 8, func(i int) {})
		tm.ForBlock(0, 8, func(blo, bhi int) {})
		_ = tm.ReduceSum(0, 8, func(blo, bhi int) float64 { return 1 })
		tm.Close()

		s := rec.Snapshot()
		if s.Regions != 4 {
			t.Fatalf("n=%d: regions = %d, want 4", n, s.Regions)
		}
		if s.Workers != n {
			t.Fatalf("n=%d: workers = %d", n, s.Workers)
		}
		for id, b := range s.Busy {
			if b <= 0 {
				t.Fatalf("n=%d: worker %d busy = %v, want > 0", n, id, b)
			}
		}
		if imb := s.Imbalance(); imb < 1 {
			t.Fatalf("n=%d: imbalance = %v, want >= 1", n, imb)
		}
	}
}

// TestRecorderBarrierWaitPerWorker: a deliberately skewed region (one
// slow worker) must show up as barrier wait on the fast workers when
// they synchronize with BarrierID.
func TestRecorderBarrierWaitPerWorker(t *testing.T) {
	const n = 4
	rec := obs.New(n)
	tm := New(n, WithRecorder(rec))
	defer tm.Close()
	tm.Run(func(id int) {
		if id == 0 {
			time.Sleep(20 * time.Millisecond) // the laggard
		}
		tm.BarrierID(id)
	})
	s := rec.Snapshot()
	if s.BarrierWaits == 0 || s.BarrierWait <= 0 {
		t.Fatalf("no aggregate barrier wait recorded: %+v", s)
	}
	if s.Wait[0] >= 10*time.Millisecond {
		t.Fatalf("laggard charged %v of wait; it should wait least", s.Wait[0])
	}
	fast := 0
	for id := 1; id < n; id++ {
		if s.Wait[id] >= 10*time.Millisecond {
			fast++
		}
	}
	if fast == 0 {
		t.Fatalf("no fast worker charged barrier wait: %+v", s.Wait)
	}
}

// TestRecorderCancelAndPanicCounts: cancellations are counted once
// (the flag is sticky) and each panicking worker increments the panic
// counter.
func TestRecorderCancelAndPanicCounts(t *testing.T) {
	rec := obs.New(2)
	tm := New(2, WithRecorder(rec))
	defer tm.Close()

	pe := runRecovered(tm, func(id int) {
		if id == 0 {
			panic("boom")
		}
		tm.Barrier()
	})
	if pe == nil {
		t.Fatal("expected a PanicError")
	}
	tm.Cancel(errors.New("stop"))
	tm.Cancel(errors.New("stop again")) // sticky: not a second cancellation
	s := rec.Snapshot()
	if s.Panics != 1 {
		t.Fatalf("panics = %d, want 1", s.Panics)
	}
	if s.Cancellations != 1 {
		t.Fatalf("cancellations = %d, want 1", s.Cancellations)
	}
}

// TestImbalanceDetectsSkew reproduces the §5.2 diagnosis in miniature:
// all the work on one worker pushes the imbalance ratio toward the team
// size, while balanced work keeps it near 1.
func TestImbalanceDetectsSkew(t *testing.T) {
	const n = 4
	rec := obs.New(n)
	tm := New(n, WithRecorder(rec))
	defer tm.Close()
	tm.Run(func(id int) {
		if id == 1 {
			time.Sleep(30 * time.Millisecond)
		}
	})
	imb := rec.Snapshot().Imbalance()
	if imb < 2 {
		t.Fatalf("skewed region imbalance = %.2f, want well above 1", imb)
	}
}

// BenchmarkRegionObs measures the per-region dispatch cost with and
// without a recorder attached — the obs layer's overhead budget is
// "near-zero when disabled, two clock reads per worker when enabled".
func BenchmarkRegionObs(b *testing.B) {
	for _, n := range []int{1, 4} {
		for _, obsOn := range []bool{false, true} {
			name := benchName(n)
			if obsOn {
				name += "/obs"
			} else {
				name += "/noobs"
			}
			b.Run(name, func(b *testing.B) {
				var opts []Option
				if obsOn {
					opts = append(opts, WithRecorder(obs.New(n)))
				}
				tm := New(n, opts...)
				defer tm.Close()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					tm.Run(func(id int) {})
				}
			})
		}
	}
}

// BenchmarkBarrierObs measures the barrier cost with and without wait
// accounting.
func BenchmarkBarrierObs(b *testing.B) {
	for _, obsOn := range []bool{false, true} {
		name := "noobs"
		var opts []Option
		if obsOn {
			name = "obs"
			opts = append(opts, WithRecorder(obs.New(4)))
		}
		b.Run(name, func(b *testing.B) {
			tm := New(4, opts...)
			defer tm.Close()
			b.ResetTimer()
			tm.Run(func(id int) {
				for i := 0; i < b.N; i++ {
					tm.BarrierID(id)
				}
			})
		})
	}
}
