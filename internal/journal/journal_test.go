package journal

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"npbgo/internal/report"
)

func testPlan() Plan {
	return Plan{
		Stamp:      "20260807T120000Z",
		Class:      "S",
		Threads:    []int{1, 2},
		Benchmarks: []string{"CG", "EP"},
		Planned: []CellKey{
			{"CG", "S", 0}, {"CG", "S", 1}, {"CG", "S", 2},
			{"EP", "S", 0}, {"EP", "S", 1}, {"EP", "S", 2},
		},
	}
}

func TestRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.jsonl")
	w, err := Create(path, testPlan())
	if err != nil {
		t.Fatal(err)
	}
	cg0 := CellKey{"CG", "S", 0}
	if err := w.Start(cg0); err != nil {
		t.Fatal(err)
	}
	m := &report.CellMetrics{Benchmark: "CG", Class: "S", Threads: 0, Elapsed: 0.5, Verified: true}
	if err := w.Finish(cg0, StatusOK, m); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	log, err := Read(path)
	if err != nil {
		t.Fatal(err)
	}
	if log.Truncated {
		t.Fatal("clean journal reported truncated")
	}
	if len(log.Entries) != 3 {
		t.Fatalf("got %d entries, want 3", len(log.Entries))
	}
	if p := log.Plan(); p.Class != "S" || len(p.Planned) != 6 || p.Benchmarks[1] != "EP" {
		t.Fatalf("plan did not round-trip: %+v", p)
	}
	st := log.State()
	if got, ok := st.Done[cg0]; !ok || got == nil || got.Elapsed != 0.5 || !got.Verified {
		t.Fatalf("finished cell not in Done with metrics: %+v", got)
	}
	if n := len(st.Pending()); n != 5 {
		t.Fatalf("pending = %d, want 5", n)
	}
}

// TestTornTailDropped simulates a crash mid-append: the trailing line is
// cut mid-JSON. Recovery must keep every intact entry, flag the
// truncation, and treat the torn cell as pending.
func TestTornTailDropped(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.jsonl")
	w, err := Create(path, testPlan())
	if err != nil {
		t.Fatal(err)
	}
	cg0 := CellKey{"CG", "S", 0}
	if err := w.Start(cg0); err != nil {
		t.Fatal(err)
	}
	if err := w.Finish(cg0, StatusOK, &report.CellMetrics{Benchmark: "CG", Elapsed: 0.5}); err != nil {
		t.Fatal(err)
	}
	if err := w.Start(CellKey{"CG", "S", 1}); err != nil {
		t.Fatal(err)
	}
	w.Close()

	// Tear the last line in half, as SIGKILL mid-write would.
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, buf[:len(buf)-17], 0o644); err != nil {
		t.Fatal(err)
	}

	log, err := Read(path)
	if err != nil {
		t.Fatalf("torn journal did not recover: %v", err)
	}
	if !log.Truncated {
		t.Fatal("torn tail not flagged")
	}
	if len(log.Entries) != 3 { // plan + start + finish; torn start dropped
		t.Fatalf("got %d entries, want 3", len(log.Entries))
	}
	st := log.State()
	if len(st.Done) != 1 {
		t.Fatalf("Done = %v", st.Done)
	}
	pending := st.Pending()
	if len(pending) != 5 || pending[0] != (CellKey{"CG", "S", 1}) {
		t.Fatalf("pending = %v", pending)
	}
}

// TestAppendToCutsTornTailAndResumes: reopening a torn journal must
// truncate the partial line, append a resume marker, and leave a fully
// parseable journal behind.
func TestAppendToCutsTornTailAndResumes(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.jsonl")
	w, err := Create(path, testPlan())
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Start(CellKey{"CG", "S", 0}); err != nil {
		t.Fatal(err)
	}
	w.Close()
	buf, _ := os.ReadFile(path)
	os.WriteFile(path, buf[:len(buf)-9], 0o644)

	w2, log, err := AppendTo(path, "20260807T130000Z")
	if err != nil {
		t.Fatal(err)
	}
	if !log.Truncated {
		t.Fatal("resume did not see the torn tail")
	}
	cg0 := CellKey{"CG", "S", 0}
	if err := w2.Start(cg0); err != nil {
		t.Fatal(err)
	}
	if err := w2.Finish(cg0, StatusOK, &report.CellMetrics{Benchmark: "CG"}); err != nil {
		t.Fatal(err)
	}
	w2.Close()

	final, err := Read(path)
	if err != nil {
		t.Fatalf("journal not whole after resume: %v", err)
	}
	if final.Truncated {
		t.Fatal("resumed journal still torn")
	}
	kinds := make([]string, len(final.Entries))
	for i, e := range final.Entries {
		kinds[i] = e.Kind
	}
	want := []string{KindPlan, KindResume, KindStart, KindFinish}
	if strings.Join(kinds, ",") != strings.Join(want, ",") {
		t.Fatalf("entry kinds = %v, want %v", kinds, want)
	}
	if final.State().Resumes != 1 {
		t.Fatalf("resume marker lost: %+v", final.State())
	}
	// Sequence numbers must stay strictly increasing across the resume.
	for i, e := range final.Entries {
		if e.Seq != i+1 {
			t.Fatalf("entry %d has seq %d", i, e.Seq)
		}
	}
}

// TestSkipIsReattempted: a memory-skipped cell is journaled terminal for
// the run but stays pending for resume — the next host may have room.
func TestSkipIsReattempted(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.jsonl")
	w, err := Create(path, testPlan())
	if err != nil {
		t.Fatal(err)
	}
	ep2 := CellKey{"EP", "S", 2}
	if err := w.Finish(ep2, StatusSkip, &report.CellMetrics{Benchmark: "EP", Error: "memory: need 8GiB, have 1GiB"}); err != nil {
		t.Fatal(err)
	}
	w.Close()
	st, err := Read(path)
	if err != nil {
		t.Fatal(err)
	}
	s := st.State()
	if !s.Skipped[ep2] {
		t.Fatal("skip not recorded")
	}
	if _, done := s.Done[ep2]; done {
		t.Fatal("skip treated as terminal")
	}
	found := false
	for _, k := range s.Pending() {
		if k == ep2 {
			found = true
		}
	}
	if !found {
		t.Fatal("skipped cell not pending on resume")
	}
}

// TestFailIsTerminal: a failed cell already consumed its retries; resume
// must not execute it again.
func TestFailIsTerminal(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.jsonl")
	w, err := Create(path, testPlan())
	if err != nil {
		t.Fatal(err)
	}
	cg1 := CellKey{"CG", "S", 1}
	w.Start(cg1)
	if err := w.Finish(cg1, StatusFail, &report.CellMetrics{Benchmark: "CG", Error: "panic"}); err != nil {
		t.Fatal(err)
	}
	w.Close()
	log, err := Read(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range log.State().Pending() {
		if k == cg1 {
			t.Fatal("failed cell still pending")
		}
	}
}

func TestCorruptMidFileIsFatal(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.jsonl")
	w, err := Create(path, testPlan())
	if err != nil {
		t.Fatal(err)
	}
	w.Start(CellKey{"CG", "S", 0})
	w.Close()
	buf, _ := os.ReadFile(path)
	// Corrupt the first line but keep the second intact: not a torn
	// tail, so recovery must refuse rather than silently drop entries.
	buf[2] = 0
	os.WriteFile(path, buf, 0o644)
	if _, err := Read(path); err == nil {
		t.Fatal("mid-file corruption accepted")
	}
}

func TestUnknownSchemaRejected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.jsonl")
	os.WriteFile(path, []byte(`{"kind":"plan","seq":1,"schema":"npbgo/journal/v99"}`+"\n"), 0o644)
	if _, err := Read(path); err == nil || !strings.Contains(err.Error(), "schema") {
		t.Fatalf("future schema accepted: %v", err)
	}
}

func TestEmptyJournalRejected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.jsonl")
	os.WriteFile(path, nil, 0o644)
	if _, err := Read(path); err == nil {
		t.Fatal("empty journal accepted")
	}
}
