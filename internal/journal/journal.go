// Package journal is the durable write-ahead log of a sweep: one JSON
// line per event (the plan, each cell start, each cell finish with its
// measured metrics), fsync'd before the harness moves on, so any crash
// — OOM kill, power loss, SIGKILL — loses at most the line being
// written when it hit. A later `npbsuite -resume` replays the journal's
// completed cells and re-executes only the pending and interrupted
// ones; the paper's long multi-configuration sweeps are exactly the
// runs where losing hours of partial results to one bad cell is the
// dominant cost.
//
// The format is JSON Lines under the schema stamp "npbgo/journal/v1".
// The first entry is always the plan (the full cell list plus the
// sweep's class/threads/benchmark axes, so resume needs no flags); a
// crash mid-append truncates the trailing line, which the reader
// detects and drops rather than failing the whole recovery.
package journal

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"

	"npbgo/internal/report"
)

// Schema identifies the journal layout; bump on incompatible change so
// resume fails loudly on a journal written by a different generation.
const Schema = "npbgo/journal/v1"

// Entry kinds, in the order they appear in a healthy journal.
const (
	KindPlan   = "plan"   // first entry: the planned cell list and sweep axes
	KindResume = "resume" // a resumed process appended from here on
	KindStart  = "start"  // a cell's execution began
	KindFinish = "finish" // a cell's execution ended (see the Status* values)
)

// Finish statuses.
const (
	StatusOK   = "ok"   // cell measured (verification may still be "no")
	StatusFail = "fail" // cell failed after all retries; Metrics.Error says why
	StatusSkip = "skip" // cell withheld (e.g. memory admission); re-attempted on resume
)

// CellKey identifies one sweep cell. Threads 0 is the serial baseline
// column, matching harness.Run.
type CellKey struct {
	Benchmark string `json:"benchmark"`
	Class     string `json:"class"`
	Threads   int    `json:"threads"`
}

func (k CellKey) String() string {
	cell := fmt.Sprintf("t%d", k.Threads)
	if k.Threads == 0 {
		cell = "serial"
	}
	return fmt.Sprintf("%s.%s.%s", k.Benchmark, k.Class, cell)
}

// Entry is one journal line.
type Entry struct {
	Kind string `json:"kind"`
	Seq  int    `json:"seq"` // 1-based position in the journal

	// Plan fields (KindPlan only; Schema also stamps KindResume).
	Schema     string    `json:"schema,omitempty"`
	Stamp      string    `json:"stamp,omitempty"` // UTC, 20060102T150405Z
	Class      string    `json:"class,omitempty"`
	Threads    []int     `json:"threads,omitempty"`
	Benchmarks []string  `json:"benchmarks,omitempty"`
	Planned    []CellKey `json:"planned,omitempty"`

	// Cell fields (KindStart/KindFinish).
	Cell    *CellKey            `json:"cell,omitempty"`
	Status  string              `json:"status,omitempty"`  // KindFinish: Status*
	Metrics *report.CellMetrics `json:"metrics,omitempty"` // KindFinish: the measured record
}

// Plan describes the sweep a journal belongs to, as recorded in its
// first entry.
type Plan struct {
	Stamp      string
	Class      string
	Threads    []int
	Benchmarks []string
	Planned    []CellKey
}

// Writer appends fsync'd entries to a journal file. It is safe for one
// process at a time; entries are sequenced and synced before Append
// returns, so an entry the caller has seen acknowledged survives any
// subsequent crash.
type Writer struct {
	mu  sync.Mutex
	f   *os.File
	seq int
}

// Create starts a fresh journal at path (truncating any previous file)
// and durably writes the plan entry.
func Create(path string, plan Plan) (*Writer, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	w := &Writer{f: f}
	err = w.Append(Entry{Kind: KindPlan, Schema: Schema, Stamp: plan.Stamp,
		Class: plan.Class, Threads: plan.Threads, Benchmarks: plan.Benchmarks,
		Planned: plan.Planned})
	if err != nil {
		f.Close()
		return nil, err
	}
	return w, nil
}

// AppendTo reopens an existing journal for a resumed sweep, validates
// it (schema, parseability), and durably writes a resume marker. It
// returns the writer positioned after the last intact entry together
// with the recovered log; a crash-truncated trailing line is dropped
// from the file so the journal is whole again before new entries land.
func AppendTo(path, stamp string) (*Writer, *Log, error) {
	log, err := Read(path)
	if err != nil {
		return nil, nil, err
	}
	f, err := os.OpenFile(path, os.O_WRONLY, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("journal: %w", err)
	}
	// Drop the torn tail, if any: everything after the last intact
	// entry is a partial line from the crashed writer.
	if err := f.Truncate(log.intactBytes); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("journal: truncate torn tail: %w", err)
	}
	if _, err := f.Seek(log.intactBytes, io.SeekStart); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("journal: %w", err)
	}
	w := &Writer{f: f, seq: len(log.Entries)}
	if err := w.Append(Entry{Kind: KindResume, Schema: Schema, Stamp: stamp}); err != nil {
		f.Close()
		return nil, nil, err
	}
	return w, log, nil
}

// Append durably writes one entry: marshal, write, fsync. The entry's
// Seq is assigned by the writer.
func (w *Writer) Append(e Entry) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.seq++
	e.Seq = w.seq
	buf, err := json.Marshal(e)
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	buf = append(buf, '\n')
	if _, err := w.f.Write(buf); err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	return nil
}

// Start journals that a cell's execution is beginning.
func (w *Writer) Start(cell CellKey) error {
	return w.Append(Entry{Kind: KindStart, Cell: &cell})
}

// Finish journals a cell's terminal state with its measured record.
func (w *Writer) Finish(cell CellKey, status string, m *report.CellMetrics) error {
	return w.Append(Entry{Kind: KindFinish, Cell: &cell, Status: status, Metrics: m})
}

// Close closes the underlying file (entries are already synced).
func (w *Writer) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.f.Close()
}

// Log is a recovered journal.
type Log struct {
	Entries   []Entry
	Truncated bool // the trailing line was torn by a crash and dropped

	// intactBytes is the file offset after the last whole entry, used
	// by AppendTo to cut the torn tail before resuming.
	intactBytes int64
}

// Read recovers the journal at path. A torn trailing line (the signature
// of a crash mid-append) is dropped and flagged via Log.Truncated; a
// malformed line anywhere else is a hard error, as is a journal whose
// first entry is not a plan under the supported schema.
func Read(path string) (*Log, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	defer f.Close()
	return ReadFrom(f)
}

// ReadFrom is Read over an arbitrary stream.
func ReadFrom(r io.Reader) (*Log, error) {
	br := bufio.NewReader(r)
	log := &Log{}
	var pos int64
	for {
		line, err := br.ReadBytes('\n')
		atEOF := err == io.EOF
		if err != nil && !atEOF {
			return nil, fmt.Errorf("journal: %w", err)
		}
		pos += int64(len(line))
		trimmed := bytes.TrimSpace(line)
		if len(trimmed) > 0 {
			var e Entry
			if jerr := json.Unmarshal(trimmed, &e); jerr != nil {
				// A line that fails to parse at the very end of the file
				// is the torn write of a crashed process: drop it. The
				// same failure mid-file means corruption and is fatal.
				if atEOF || lastLine(br) {
					log.Truncated = true
					return validated(log)
				}
				return nil, fmt.Errorf("journal: entry %d: %w", len(log.Entries)+1, jerr)
			}
			// A whole line that did parse but lacks its newline was still
			// in flight when the writer died; its fsync never returned, so
			// treat it as torn too — resume re-executes that cell.
			if atEOF && !bytes.HasSuffix(line, []byte("\n")) {
				log.Truncated = true
				return validated(log)
			}
			log.Entries = append(log.Entries, e)
			log.intactBytes = pos
		}
		if atEOF {
			return validated(log)
		}
	}
}

// lastLine reports whether the reader has no further non-empty content.
func lastLine(br *bufio.Reader) bool {
	for {
		b, err := br.ReadByte()
		if err != nil {
			return true
		}
		if b != '\n' && b != ' ' && b != '\t' && b != '\r' {
			return false
		}
	}
}

// validated applies the structural checks every recovered journal must
// pass: at least one entry, a plan first, and a supported schema.
func validated(log *Log) (*Log, error) {
	if len(log.Entries) == 0 {
		return nil, fmt.Errorf("journal: no intact entries")
	}
	first := log.Entries[0]
	if first.Kind != KindPlan {
		return nil, fmt.Errorf("journal: first entry is %q, want %q", first.Kind, KindPlan)
	}
	if first.Schema != Schema {
		return nil, fmt.Errorf("journal: unknown schema %q (this tool reads %q)", first.Schema, Schema)
	}
	return log, nil
}

// Plan returns the sweep description from the journal's plan entry.
func (l *Log) Plan() Plan {
	first := l.Entries[0]
	return Plan{Stamp: first.Stamp, Class: first.Class, Threads: first.Threads,
		Benchmarks: first.Benchmarks, Planned: first.Planned}
}

// State is the recovery view of a journal: which planned cells are
// terminal (completed or failed — both count as done, a fail already
// consumed its retries), which were skipped (re-attempted on resume,
// since admission conditions change between hosts and runs), and which
// were started but never finished (interrupted mid-flight; resume
// re-executes them).
type State struct {
	Plan    Plan
	Done    map[CellKey]*report.CellMetrics // finish ok|fail
	Skipped map[CellKey]bool                // finish skip
	Starts  map[CellKey]int                 // start entries per cell
	Resumes int                             // resume markers seen
}

// State folds the journal into its recovery view.
func (l *Log) State() *State {
	s := &State{
		Plan:    l.Plan(),
		Done:    make(map[CellKey]*report.CellMetrics),
		Skipped: make(map[CellKey]bool),
		Starts:  make(map[CellKey]int),
	}
	for _, e := range l.Entries {
		switch e.Kind {
		case KindResume:
			s.Resumes++
		case KindStart:
			if e.Cell != nil {
				s.Starts[*e.Cell]++
			}
		case KindFinish:
			if e.Cell == nil {
				continue
			}
			switch e.Status {
			case StatusOK, StatusFail:
				s.Done[*e.Cell] = e.Metrics
				delete(s.Skipped, *e.Cell)
			case StatusSkip:
				s.Skipped[*e.Cell] = true
			}
		}
	}
	return s
}

// Pending returns the planned cells that still need execution, in plan
// order: everything not terminal — never-started, interrupted, and
// skipped cells alike.
func (s *State) Pending() []CellKey {
	var out []CellKey
	for _, k := range s.Plan.Planned {
		if _, done := s.Done[k]; !done {
			out = append(out, k)
		}
	}
	return out
}
