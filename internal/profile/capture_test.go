package profile

import (
	"os"
	"path/filepath"
	"testing"
	"time"
)

// spin burns CPU so the profiler has something to sample.
func spin(d time.Duration) float64 {
	x := 1.0
	for start := time.Now(); time.Since(start) < d; {
		for i := 0; i < 1000; i++ {
			x = x*1.0000001 + 1e-9
		}
	}
	return x
}

func TestCaptureRoundTrip(t *testing.T) {
	dir := t.TempDir()
	c, err := Start(dir, "EP.S.t1")
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	spin(300 * time.Millisecond)
	if err := c.Stop(); err != nil {
		t.Fatalf("Stop: %v", err)
	}
	// Stop must be idempotent: a second call (the defer-plus-explicit
	// pattern in the harness) is a no-op.
	if err := c.Stop(); err != nil {
		t.Fatalf("second Stop: %v", err)
	}
	cpu, heap := CellPaths(dir, "EP.S.t1")
	if c.CPUPath() != cpu || c.HeapPath() != heap {
		t.Fatalf("paths = %q %q, want %q %q", c.CPUPath(), c.HeapPath(), cpu, heap)
	}

	p, err := ParseFile(cpu)
	if err != nil {
		t.Fatalf("ParseFile(cpu): %v", err)
	}
	if i := p.ValueIndex("cpu"); i < 0 || p.SampleTypes[i].Unit != "nanoseconds" {
		t.Fatalf("cpu profile sample types = %+v", p.SampleTypes)
	}
	if len(p.Samples) == 0 {
		t.Fatal("cpu profile has no samples after 300ms of spinning")
	}
	tab, err := Aggregate(p, p.DefaultIndex())
	if err != nil {
		t.Fatalf("Aggregate: %v", err)
	}
	if tab.Total <= 0 || len(tab.Funcs) == 0 {
		t.Fatalf("table = %+v", tab)
	}

	hp, err := ParseFile(heap)
	if err != nil {
		t.Fatalf("ParseFile(heap): %v", err)
	}
	if i := hp.ValueIndex("alloc_space"); i < 0 || hp.SampleTypes[i].Unit != "bytes" {
		t.Fatalf("heap profile sample types = %+v", hp.SampleTypes)
	}
}

func TestCaptureNilDisabled(t *testing.T) {
	var c *Capture
	if err := c.Stop(); err != nil {
		t.Fatalf("nil Stop: %v", err)
	}
	if c.CPUPath() != "" || c.HeapPath() != "" {
		t.Fatal("nil capture reports paths")
	}
}

func TestCaptureCreatesDir(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "nested", "profiles")
	c, err := Start(dir, "IS.S.serial")
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	if err := c.Stop(); err != nil {
		t.Fatalf("Stop: %v", err)
	}
	if _, err := os.Stat(c.CPUPath()); err != nil {
		t.Fatalf("cpu profile missing: %v", err)
	}
}

// A second Start while a capture is active must fail cleanly (one CPU
// profile per process is the runtime's rule) and must not leave a
// stray file locked.
func TestCaptureExclusive(t *testing.T) {
	dir := t.TempDir()
	c, err := Start(dir, "a")
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	defer c.Stop()
	if _, err := Start(dir, "b"); err == nil {
		t.Fatal("second concurrent Start succeeded")
	}
	if err := c.Stop(); err != nil {
		t.Fatalf("Stop after failed second Start: %v", err)
	}
}
