// Stdlib-only decoder for the pprof profile format: a gzipped protocol
// buffer (profile.proto from github.com/google/pprof), hand-parsed at
// the wire level the same way internal/escape hand-parses the
// compiler's -m=2 output — no google/pprof dependency, because this
// repo's house rule is that analysis tooling rides on the standard
// library alone.
//
// Only the subset the hotspot tables need is decoded: sample types,
// samples with their location stacks, the location → line → function
// graph, the string table, and the period/duration header. Labels,
// mappings and the keep/drop frame filters are skipped field-by-field
// (unknown fields are legal protobuf and must be tolerated), but a
// stream that is structurally broken — truncated varint, length header
// running past the buffer, string index or function/location reference
// out of range — is a hard error: a profile from a hard-killed cell can
// be cut anywhere, and misattributing its samples would be worse than
// refusing them.
package profile

import (
	"bytes"
	"compress/gzip"
	"errors"
	"fmt"
	"io"
	"os"
	"strings"
)

// ValueType is one sample dimension: what is counted and in which unit
// ("samples"/"count", "cpu"/"nanoseconds", "alloc_space"/"bytes", ...).
type ValueType struct {
	Type string
	Unit string
}

// Frame is one resolved stack frame. Frames produced by expanding a
// location's inline chain carry the same location's file coordinates.
type Frame struct {
	Function string
	File     string
	Line     int64
}

// Sample is one resolved profile sample: the call stack leaf-first
// (inline frames expanded, innermost first — exactly the proto's
// ordering) and one value per sample type.
type Sample struct {
	Stack  []Frame
	Values []int64
}

// Profile is a decoded pprof profile.
type Profile struct {
	SampleTypes   []ValueType
	Samples       []Sample
	PeriodType    ValueType
	Period        int64
	TimeNanos     int64
	DurationNanos int64
	// DefaultSampleType is the producer's preferred value dimension, ""
	// when unset (Go's CPU profiles leave it unset).
	DefaultSampleType string
}

// ValueIndex returns the index of the sample type with the given type
// name, or -1 if the profile does not carry that dimension.
func (p *Profile) ValueIndex(typ string) int {
	for i, st := range p.SampleTypes {
		if st.Type == typ {
			return i
		}
	}
	return -1
}

// DefaultIndex picks the value dimension hotspot tables should rank by:
// the producer's default sample type when stamped, otherwise the last
// dimension — which for Go's profiles is "cpu"/"nanoseconds" (CPU) and
// "inuse_space"/"bytes" (heap), matching `go tool pprof`'s own default.
func (p *Profile) DefaultIndex() int {
	if p.DefaultSampleType != "" {
		if i := p.ValueIndex(p.DefaultSampleType); i >= 0 {
			return i
		}
	}
	return len(p.SampleTypes) - 1
}

// gzip magic bytes; pprof writers always compress, but a raw proto is
// legal per the format documentation, so both are accepted.
var gzipMagic = []byte{0x1f, 0x8b}

// Parse decodes a pprof profile from its serialized (usually gzipped)
// form.
func Parse(data []byte) (*Profile, error) {
	if bytes.HasPrefix(data, gzipMagic) {
		zr, err := gzip.NewReader(bytes.NewReader(data))
		if err != nil {
			return nil, fmt.Errorf("profile: gzip header: %w", err)
		}
		raw, err := io.ReadAll(zr)
		if err != nil {
			return nil, fmt.Errorf("profile: gzip stream: %w", err)
		}
		if err := zr.Close(); err != nil {
			return nil, fmt.Errorf("profile: gzip checksum: %w", err)
		}
		data = raw
	}
	return parseProto(data)
}

// ParseFile reads and decodes one profile file.
func ParseFile(path string) (*Profile, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(data) == 0 {
		return nil, fmt.Errorf("profile: %s: empty file (capture interrupted before any flush?)", path)
	}
	p, err := Parse(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return p, nil
}

// ---- wire-level protobuf reader -----------------------------------

// errTruncated marks any structural cut — a varint or length header
// running past the end of the buffer.
var errTruncated = errors.New("profile: truncated protobuf stream")

// wire reads protobuf primitives off a byte slice.
type wire struct {
	buf []byte
	pos int
}

func (w *wire) done() bool { return w.pos >= len(w.buf) }

// varint reads one base-128 varint (max 64 bits / 10 bytes).
func (w *wire) varint() (uint64, error) {
	var v uint64
	for shift := uint(0); shift < 64; shift += 7 {
		if w.pos >= len(w.buf) {
			return 0, errTruncated
		}
		b := w.buf[w.pos]
		w.pos++
		v |= uint64(b&0x7f) << shift
		if b < 0x80 {
			return v, nil
		}
	}
	return 0, errors.New("profile: varint overflows 64 bits")
}

// bytes reads one length-delimited field body.
func (w *wire) bytes() ([]byte, error) {
	n, err := w.varint()
	if err != nil {
		return nil, err
	}
	if n > uint64(len(w.buf)-w.pos) {
		return nil, errTruncated
	}
	out := w.buf[w.pos : w.pos+int(n)]
	w.pos += int(n)
	return out, nil
}

// field reads the next field tag, splitting it into number and wire
// type.
func (w *wire) field() (num int, typ int, err error) {
	tag, err := w.varint()
	if err != nil {
		return 0, 0, err
	}
	return int(tag >> 3), int(tag & 7), nil
}

// skip consumes one field body of the given wire type. Group wire types
// (3/4) are ancient proto1 leftovers no pprof writer emits; finding one
// means the stream is not a profile.
func (w *wire) skip(typ int) error {
	switch typ {
	case 0:
		_, err := w.varint()
		return err
	case 1:
		if len(w.buf)-w.pos < 8 {
			return errTruncated
		}
		w.pos += 8
		return nil
	case 2:
		_, err := w.bytes()
		return err
	case 5:
		if len(w.buf)-w.pos < 4 {
			return errTruncated
		}
		w.pos += 4
		return nil
	default:
		return fmt.Errorf("profile: unsupported wire type %d (not a pprof stream?)", typ)
	}
}

// ints reads a repeated integer field, which protobuf serializes either
// packed (one length-delimited blob of varints) or as one varint per
// occurrence; Go's pprof writer packs, but both are legal and both
// appear in the wild.
func ints(w *wire, typ int, dst []uint64) ([]uint64, error) {
	switch typ {
	case 0:
		v, err := w.varint()
		if err != nil {
			return dst, err
		}
		return append(dst, v), nil
	case 2:
		body, err := w.bytes()
		if err != nil {
			return dst, err
		}
		pw := wire{buf: body}
		for !pw.done() {
			v, err := pw.varint()
			if err != nil {
				return dst, err
			}
			dst = append(dst, v)
		}
		return dst, nil
	default:
		return dst, fmt.Errorf("profile: integer field with wire type %d", typ)
	}
}

// ---- message parsing ----------------------------------------------

// raw* mirror the proto messages before cross-references are resolved.
type rawValueType struct{ typ, unit int64 }

type rawSample struct {
	locs   []uint64
	values []int64
}

type rawLine struct {
	function uint64
	line     int64
}

type rawLocation struct {
	id    uint64
	lines []rawLine
}

type rawFunction struct {
	id             uint64
	name, filename int64
}

func parseValueType(body []byte) (rawValueType, error) {
	w := wire{buf: body}
	var vt rawValueType
	for !w.done() {
		num, typ, err := w.field()
		if err != nil {
			return vt, err
		}
		switch num {
		case 1, 2:
			v, err := w.varint()
			if err != nil {
				return vt, err
			}
			if num == 1 {
				vt.typ = int64(v)
			} else {
				vt.unit = int64(v)
			}
		default:
			if err := w.skip(typ); err != nil {
				return vt, err
			}
		}
	}
	return vt, nil
}

func parseSample(body []byte) (rawSample, error) {
	w := wire{buf: body}
	var s rawSample
	var vals []uint64
	for !w.done() {
		num, typ, err := w.field()
		if err != nil {
			return s, err
		}
		switch num {
		case 1:
			if s.locs, err = ints(&w, typ, s.locs); err != nil {
				return s, err
			}
		case 2:
			if vals, err = ints(&w, typ, nil); err != nil {
				return s, err
			}
			for _, v := range vals {
				s.values = append(s.values, int64(v))
			}
			vals = nil
		default:
			if err := w.skip(typ); err != nil {
				return s, err
			}
		}
	}
	return s, nil
}

func parseLine(body []byte) (rawLine, error) {
	w := wire{buf: body}
	var l rawLine
	for !w.done() {
		num, typ, err := w.field()
		if err != nil {
			return l, err
		}
		switch num {
		case 1:
			v, err := w.varint()
			if err != nil {
				return l, err
			}
			l.function = v
		case 2:
			v, err := w.varint()
			if err != nil {
				return l, err
			}
			l.line = int64(v)
		default:
			if err := w.skip(typ); err != nil {
				return l, err
			}
		}
	}
	return l, nil
}

func parseLocation(body []byte) (rawLocation, error) {
	w := wire{buf: body}
	var loc rawLocation
	for !w.done() {
		num, typ, err := w.field()
		if err != nil {
			return loc, err
		}
		switch num {
		case 1:
			v, err := w.varint()
			if err != nil {
				return loc, err
			}
			loc.id = v
		case 4:
			lb, err := w.bytes()
			if err != nil {
				return loc, err
			}
			line, err := parseLine(lb)
			if err != nil {
				return loc, err
			}
			loc.lines = append(loc.lines, line)
		default:
			if err := w.skip(typ); err != nil {
				return loc, err
			}
		}
	}
	return loc, nil
}

func parseFunction(body []byte) (rawFunction, error) {
	w := wire{buf: body}
	var fn rawFunction
	for !w.done() {
		num, typ, err := w.field()
		if err != nil {
			return fn, err
		}
		switch num {
		case 1:
			v, err := w.varint()
			if err != nil {
				return fn, err
			}
			fn.id = v
		case 2:
			v, err := w.varint()
			if err != nil {
				return fn, err
			}
			fn.name = int64(v)
		case 4:
			v, err := w.varint()
			if err != nil {
				return fn, err
			}
			fn.filename = int64(v)
		default:
			if err := w.skip(typ); err != nil {
				return fn, err
			}
		}
	}
	return fn, nil
}

// parseProto decodes the uncompressed Profile message and resolves all
// cross-references.
func parseProto(data []byte) (*Profile, error) {
	w := wire{buf: data}
	var (
		sampleTypes []rawValueType
		samples     []rawSample
		locations   []rawLocation
		functions   []rawFunction
		strTab      []string
		periodType  rawValueType
		period      int64
		timeNanos   int64
		durNanos    int64
		defaultType int64
	)
	for !w.done() {
		num, typ, err := w.field()
		if err != nil {
			return nil, err
		}
		switch num {
		case 1: // sample_type
			body, err := w.bytes()
			if err != nil {
				return nil, err
			}
			vt, err := parseValueType(body)
			if err != nil {
				return nil, err
			}
			sampleTypes = append(sampleTypes, vt)
		case 2: // sample
			body, err := w.bytes()
			if err != nil {
				return nil, err
			}
			s, err := parseSample(body)
			if err != nil {
				return nil, err
			}
			samples = append(samples, s)
		case 4: // location
			body, err := w.bytes()
			if err != nil {
				return nil, err
			}
			loc, err := parseLocation(body)
			if err != nil {
				return nil, err
			}
			locations = append(locations, loc)
		case 5: // function
			body, err := w.bytes()
			if err != nil {
				return nil, err
			}
			fn, err := parseFunction(body)
			if err != nil {
				return nil, err
			}
			functions = append(functions, fn)
		case 6: // string_table
			body, err := w.bytes()
			if err != nil {
				return nil, err
			}
			strTab = append(strTab, string(body))
		case 9, 10, 12, 14: // time_nanos, duration_nanos, period, default_sample_type
			v, err := w.varint()
			if err != nil {
				return nil, err
			}
			switch num {
			case 9:
				timeNanos = int64(v)
			case 10:
				durNanos = int64(v)
			case 12:
				period = int64(v)
			case 14:
				defaultType = int64(v)
			}
		case 11: // period_type
			body, err := w.bytes()
			if err != nil {
				return nil, err
			}
			if periodType, err = parseValueType(body); err != nil {
				return nil, err
			}
		default:
			if err := w.skip(typ); err != nil {
				return nil, err
			}
		}
	}

	// Resolution. The string table's slot 0 must be "" per the format;
	// tolerate an empty table only for an entirely empty profile.
	str := func(i int64) (string, error) {
		if i < 0 || i >= int64(len(strTab)) {
			return "", fmt.Errorf("profile: string index %d out of range (table has %d)", i, len(strTab))
		}
		return strTab[i], nil
	}
	p := &Profile{Period: period, TimeNanos: timeNanos, DurationNanos: durNanos}
	var err error
	for _, vt := range sampleTypes {
		var st ValueType
		if st.Type, err = str(vt.typ); err != nil {
			return nil, err
		}
		if st.Unit, err = str(vt.unit); err != nil {
			return nil, err
		}
		p.SampleTypes = append(p.SampleTypes, st)
	}
	if periodType != (rawValueType{}) {
		if p.PeriodType.Type, err = str(periodType.typ); err != nil {
			return nil, err
		}
		if p.PeriodType.Unit, err = str(periodType.unit); err != nil {
			return nil, err
		}
	}
	if defaultType != 0 {
		if p.DefaultSampleType, err = str(defaultType); err != nil {
			return nil, err
		}
	}

	funcByID := make(map[uint64]Frame, len(functions))
	for _, fn := range functions {
		if fn.id == 0 {
			return nil, errors.New("profile: function with id 0")
		}
		var fr Frame
		if fr.Function, err = str(fn.name); err != nil {
			return nil, err
		}
		if fr.File, err = str(fn.filename); err != nil {
			return nil, err
		}
		funcByID[fn.id] = fr
	}
	locByID := make(map[uint64][]Frame, len(locations))
	for _, loc := range locations {
		if loc.id == 0 {
			return nil, errors.New("profile: location with id 0")
		}
		frames := make([]Frame, 0, len(loc.lines))
		for _, ln := range loc.lines {
			fr, ok := funcByID[ln.function]
			if !ok {
				return nil, fmt.Errorf("profile: location %d references unknown function %d", loc.id, ln.function)
			}
			fr.Line = ln.line
			frames = append(frames, fr)
		}
		if len(frames) == 0 {
			// An unsymbolized location (address only). Keep a placeholder
			// frame so stack depth is preserved; attribution counts it as
			// unresolved.
			frames = append(frames, Frame{Function: ""})
		}
		locByID[loc.id] = frames
	}
	for _, s := range samples {
		if len(s.values) != len(p.SampleTypes) {
			return nil, fmt.Errorf("profile: sample carries %d values for %d sample types", len(s.values), len(p.SampleTypes))
		}
		rs := Sample{Values: s.values}
		for _, id := range s.locs {
			frames, ok := locByID[id]
			if !ok {
				return nil, fmt.Errorf("profile: sample references unknown location %d", id)
			}
			rs.Stack = append(rs.Stack, frames...)
		}
		p.Samples = append(p.Samples, rs)
	}
	return p, nil
}

// String renders the profile header one line per dimension, for
// debugging and the tests.
func (p *Profile) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "profile: %d samples", len(p.Samples))
	for _, st := range p.SampleTypes {
		fmt.Fprintf(&b, " [%s/%s]", st.Type, st.Unit)
	}
	if p.DurationNanos > 0 {
		fmt.Fprintf(&b, " duration=%.2fs", float64(p.DurationNanos)/1e9)
	}
	return b.String()
}
