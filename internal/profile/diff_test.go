package profile

import (
	"math"
	"testing"
)

// table builds a flat-only Table from name→value pairs.
func table(samples int, funcs map[string]int64) *Table {
	t := &Table{Type: "samples", Unit: "count", Samples: samples}
	for name, v := range funcs {
		t.Total += v
		t.Funcs = append(t.Funcs, FuncStat{Name: name, Flat: v, Cum: v})
	}
	return t
}

func TestCompareIdenticalTablesStaysQuiet(t *testing.T) {
	a := table(1000, map[string]int64{"kernel": 600, "solver": 300, "other": 100})
	b := table(1000, map[string]int64{"kernel": 600, "solver": 300, "other": 100})
	d := CompareTables(a, b, DiffOptions{})
	if d.Significant != 0 {
		t.Fatalf("identical tables flagged %d significant deltas: %+v", d.Significant, d.Deltas)
	}
}

func TestCompareJitterBelowThresholdStaysQuiet(t *testing.T) {
	// 2-point share movement on plenty of samples: separated, but under
	// the 5-point practical floor — the perfstat convention (CI
	// separation alone is not a finding).
	a := table(100000, map[string]int64{"kernel": 60000, "solver": 40000})
	b := table(100000, map[string]int64{"kernel": 62000, "solver": 38000})
	d := CompareTables(a, b, DiffOptions{})
	if d.Significant != 0 {
		t.Fatalf("2-point jitter flagged: %+v", d.Deltas)
	}
	// It is still reported as separated, just not significant.
	var kernel FuncDelta
	for _, fd := range d.Deltas {
		if fd.Name == "kernel" {
			kernel = fd
		}
	}
	if !kernel.Separated || kernel.Significant {
		t.Fatalf("kernel delta = %+v, want separated && !significant", kernel)
	}
}

func TestCompareRealShiftFlags(t *testing.T) {
	a := table(10000, map[string]int64{"kernel": 6000, "solver": 4000})
	b := table(10000, map[string]int64{"kernel": 7500, "solver": 2500})
	d := CompareTables(a, b, DiffOptions{})
	if d.Significant != 2 {
		t.Fatalf("15-point shift: significant = %d, want 2: %+v", d.Significant, d.Deltas)
	}
	// Ordered by |delta| descending; both moved 15 points.
	if math.Abs(d.Deltas[0].Delta) < math.Abs(d.Deltas[len(d.Deltas)-1].Delta) {
		t.Fatalf("deltas not ordered by magnitude: %+v", d.Deltas)
	}
}

func TestCompareFewSamplesCannotSeparate(t *testing.T) {
	// The same 15-point shift on 20 samples is inside sampling noise:
	// the binomial standard errors swallow it.
	a := table(20, map[string]int64{"kernel": 12, "solver": 8})
	b := table(20, map[string]int64{"kernel": 15, "solver": 5})
	d := CompareTables(a, b, DiffOptions{})
	if d.Significant != 0 {
		t.Fatalf("20-sample profiles separated: %+v", d.Deltas)
	}
}

func TestCompareSingleSampleFlipStaysQuiet(t *testing.T) {
	// A ~1ms class-S cell collects one CPU sample; between two runs of
	// identical code that sample can land in a different function,
	// producing a 100-point raw delta at p = 0 and p = 1 — where the
	// unsmoothed binomial stderr is zero and any delta would "separate".
	// The Laplace-smoothed error must swallow it.
	a := table(1, map[string]int64{"randlc": 1})
	b := table(1, map[string]int64{"buildBodies": 1})
	d := CompareTables(a, b, DiffOptions{})
	if d.Significant != 0 {
		t.Fatalf("one-sample flip flagged as a shift: %+v", d.Deltas)
	}
	for _, fd := range d.Deltas {
		if fd.Separated {
			t.Fatalf("one-sample flip separated: %+v", fd)
		}
	}
}

func TestCompareMinShareDropsNoise(t *testing.T) {
	a := table(10000, map[string]int64{"kernel": 9900, "tiny": 100})
	b := table(10000, map[string]int64{"kernel": 9980, "tiny": 20})
	d := CompareTables(a, b, DiffOptions{MinShare: 0.02})
	for _, fd := range d.Deltas {
		if fd.Name == "tiny" {
			t.Fatalf("sub-threshold function compared: %+v", fd)
		}
	}
}

func TestCompareEmptyProfileNeverFlags(t *testing.T) {
	a := table(0, nil)
	b := table(1000, map[string]int64{"kernel": 1000})
	if d := CompareTables(a, b, DiffOptions{}); d.Significant != 0 {
		t.Fatalf("empty base produced findings: %+v", d.Deltas)
	}
	if d := CompareTables(b, a, DiffOptions{}); d.Significant != 0 {
		t.Fatalf("empty head produced findings: %+v", d.Deltas)
	}
}

func TestCompareFunctionAppearsAndVanishes(t *testing.T) {
	a := table(10000, map[string]int64{"kernel": 10000})
	b := table(10000, map[string]int64{"kernel": 7000, "newcode": 3000})
	d := CompareTables(a, b, DiffOptions{})
	var nc FuncDelta
	for _, fd := range d.Deltas {
		if fd.Name == "newcode" {
			nc = fd
		}
	}
	if !nc.Significant || nc.BaseShare != 0 || math.Abs(nc.Delta-0.3) > 1e-9 {
		t.Fatalf("appearing function = %+v, want significant 30-point arrival", nc)
	}
}
