package profile_test

import (
	"strings"
	"testing"
	"time"

	"npbgo"
	"npbgo/internal/profile"
)

// TestCGRoundTrip is the end-to-end claim of the profiling layer: a
// real CG run captured with this package's Capture, decoded with this
// package's decoder, must attribute its CPU to the CG kernel symbols —
// the paper's §4 "which function is the serial gap in" question,
// answered without any external pprof tooling.
func TestCGRoundTrip(t *testing.T) {
	dir := t.TempDir()
	c, err := profile.Start(dir, "CG.S.t2")
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	// Accumulate enough CPU under the capture for a stable sample set:
	// CG class S is short, so repeat it until ~1.5s has elapsed.
	for start := time.Now(); time.Since(start) < 1500*time.Millisecond; {
		res, err := npbgo.Run(npbgo.Config{Benchmark: npbgo.CG, Class: 'S', Threads: 2})
		if err != nil {
			c.Stop()
			t.Fatalf("CG run: %v", err)
		}
		if !res.Verified {
			c.Stop()
			t.Fatal("CG run did not verify under profiling")
		}
	}
	if err := c.Stop(); err != nil {
		t.Fatalf("Stop: %v", err)
	}

	p, err := profile.ParseFile(c.CPUPath())
	if err != nil {
		t.Fatalf("decode captured CPU profile: %v", err)
	}
	if len(p.Samples) < 20 {
		t.Fatalf("only %d samples after 1.5s of CG (profiler off?)", len(p.Samples))
	}
	tab, err := profile.Aggregate(p, p.DefaultIndex())
	if err != nil {
		t.Fatalf("Aggregate: %v", err)
	}

	// The top flat functions must be symbolized kernel code. CG's inner
	// products and sparse mat-vec dominate; depending on inlining the
	// leaf is a cg.* method or the team runtime driving it.
	foundCG := false
	for _, f := range tab.Top(10) {
		if strings.HasPrefix(f.Name, "npbgo/internal/cg.") {
			foundCG = true
			break
		}
	}
	if !foundCG {
		var names []string
		for _, f := range tab.Top(10) {
			names = append(names, f.Name)
		}
		t.Fatalf("no npbgo/internal/cg.* function in the top 10 flat: %v", names)
	}
	if !strings.HasPrefix(tab.Funcs[0].Name, "npbgo/") {
		t.Fatalf("top flat function %q is not this module's code", tab.Funcs[0].Name)
	}
	if tab.AttributedPct < 60 {
		t.Fatalf("AttributedPct = %.1f%%, want >= 60%% of CPU inside %s",
			tab.AttributedPct, profile.KernelPrefix)
	}

	// The heap side decodes too, and carries CG's setup allocations.
	hp, err := profile.ParseFile(c.HeapPath())
	if err != nil {
		t.Fatalf("decode captured heap profile: %v", err)
	}
	if hp.ValueIndex("alloc_space") < 0 {
		t.Fatalf("heap profile types = %+v", hp.SampleTypes)
	}
}
