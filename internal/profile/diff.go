// Noise-aware comparison of two hot-function tables, following the
// same convention perfstat.Compare applies to elapsed times: a delta
// only counts when it is statistically separated AND clears a
// practical-significance threshold, so two profiles of identical code
// never flag (sampling jitter alone must stay green — the CI
// profile gate depends on it, like the perf gate before it).
//
// The statistics ride on sample counts: a function holding share p of
// n samples is a binomial observation with (add-one-smoothed) standard
// error sqrt(p'(1-p')/(n+2)), p' = (k+1)/(n+2). Two shares are
// separated when their difference exceeds z times the summed standard
// errors — the profile analogue of perfstat's "confidence intervals
// must not overlap".
package profile

import (
	"math"
	"sort"
)

// DiffOptions tunes significance judgment.
type DiffOptions struct {
	// MinShareDelta is the practical-significance floor: a function's
	// share of the profile must move by at least this many fractional
	// points (0.05 = five percentage points) to flag. <= 0 means 0.05.
	MinShareDelta float64
	// MinShare drops functions holding less than this share in both
	// profiles — a sub-percent helper doubling its share is not a
	// hotspot story. <= 0 means 0.02.
	MinShare float64
	// Z is the separation multiplier applied to the summed binomial
	// standard errors; <= 0 means 1.96 (~95% two-sided).
	Z float64
}

func (o DiffOptions) withDefaults() DiffOptions {
	if o.MinShareDelta <= 0 {
		o.MinShareDelta = 0.05
	}
	if o.MinShare <= 0 {
		o.MinShare = 0.02
	}
	if o.Z <= 0 {
		o.Z = 1.96
	}
	return o
}

// FuncDelta is one function's movement between two profiles.
type FuncDelta struct {
	Name      string  `json:"name"`
	BaseShare float64 `json:"base_share"` // fraction of the base profile's flat total
	HeadShare float64 `json:"head_share"`
	Delta     float64 `json:"delta"` // HeadShare - BaseShare, fractional points
	// Separated reports statistical separation alone; Significant
	// additionally requires the MinShareDelta practical floor.
	Separated   bool `json:"separated"`
	Significant bool `json:"significant"`
}

// Diff is the comparison of two hot-function tables.
type Diff struct {
	// BaseSamples/HeadSamples are the sample counts the standard errors
	// were computed from.
	BaseSamples int `json:"base_samples"`
	HeadSamples int `json:"head_samples"`
	// Deltas holds every function clearing MinShare in either profile,
	// ordered by descending |Delta|.
	Deltas []FuncDelta `json:"deltas"`
	// Significant counts the deltas that flagged.
	Significant int `json:"significant"`
}

// CompareTables judges head against base. Shares are flat shares of
// each table's total; sample counts drive the separation test.
func CompareTables(base, head *Table, opt DiffOptions) Diff {
	opt = opt.withDefaults()
	d := Diff{BaseSamples: base.Samples, HeadSamples: head.Samples}
	baseShare := shares(base)
	headShare := shares(head)
	names := map[string]bool{}
	for n := range baseShare {
		names[n] = true
	}
	for n := range headShare {
		names[n] = true
	}
	for name := range names {
		b, h := baseShare[name], headShare[name]
		if b < opt.MinShare && h < opt.MinShare {
			continue
		}
		fd := FuncDelta{Name: name, BaseShare: b, HeadShare: h, Delta: h - b}
		se := opt.Z * (stderr(b, base.Samples) + stderr(h, head.Samples))
		fd.Separated = math.Abs(fd.Delta) > se
		fd.Significant = fd.Separated && math.Abs(fd.Delta) >= opt.MinShareDelta
		if fd.Significant {
			d.Significant++
		}
		d.Deltas = append(d.Deltas, fd)
	}
	sort.Slice(d.Deltas, func(i, j int) bool {
		a, b := d.Deltas[i], d.Deltas[j]
		if math.Abs(a.Delta) != math.Abs(b.Delta) {
			return math.Abs(a.Delta) > math.Abs(b.Delta)
		}
		return a.Name < b.Name
	})
	return d
}

// shares maps function name to flat share of the table's total.
func shares(t *Table) map[string]float64 {
	out := make(map[string]float64, len(t.Funcs))
	if t.Total == 0 {
		return out
	}
	for _, f := range t.Funcs {
		if f.Flat > 0 {
			out[f.Name] = float64(f.Flat) / float64(t.Total)
		}
	}
	return out
}

// stderr is the add-one-smoothed binomial standard error of share p
// over n samples. The raw formula sqrt(p(1-p)/n) degenerates to zero
// at p = 0 or p = 1, so a one-sample cell whose single sample lands in
// a different function between runs would look infinitely separated —
// exactly the short class-S cells the gate must stay quiet on. Laplace
// smoothing ((k+1)/(n+2)) keeps the error honest at the extremes:
// tiny-sample cells cannot separate, while well-sampled profiles are
// essentially unchanged. A profile with no samples yields +Inf, so
// nothing can separate against it — an empty profile never produces
// findings, only absence.
func stderr(p float64, n int) float64 {
	if n <= 0 {
		return math.Inf(1)
	}
	ps := (p*float64(n) + 1) / float64(n+2)
	return math.Sqrt(ps * (1 - ps) / float64(n+2))
}
