// Hot-function aggregation: collapse a decoded profile's samples into
// the flat/cumulative per-function table the paper's per-kernel
// diagnosis needs — "CG spends 61% of its CPU in sparseMatVec" is one
// row of this table. Flat charges a sample to its leaf function only;
// cumulative charges it once to every distinct function on the stack
// (once, so recursion cannot exceed 100%).
package profile

import (
	"fmt"
	"sort"
	"strings"
)

// KernelPrefix marks this repository's own code in symbolized function
// names; attribution statistics report how much of a profile lands
// under it. Kernels, the team runtime and the solver cores all live in
// internal/, so a healthy benchmark profile is dominated by it.
const KernelPrefix = "npbgo/internal/"

// FuncStat is one function's row of a hot-function table.
type FuncStat struct {
	Name    string  `json:"name"`
	Flat    int64   `json:"flat"`
	FlatPct float64 `json:"flat_pct"`
	Cum     int64   `json:"cum"`
	CumPct  float64 `json:"cum_pct"`
}

// Table is the aggregated hot-function view of one profile dimension.
type Table struct {
	// Type/Unit name the aggregated dimension ("cpu"/"nanoseconds",
	// "alloc_space"/"bytes", ...).
	Type string `json:"type"`
	Unit string `json:"unit"`
	// Total is the summed value of every sample.
	Total int64 `json:"total"`
	// Samples counts the profile's samples (stacks, not value units).
	Samples int `json:"samples"`
	// AttributedPct is the share of Total whose stack contains at least
	// one symbolized KernelPrefix function — the "how much of this
	// profile do we understand" figure the CI smoke asserts on.
	AttributedPct float64 `json:"attributed_pct"`
	// Funcs is every function observed, ordered by descending flat
	// value (ties broken by name for determinism).
	Funcs []FuncStat `json:"functions"`
}

// Aggregate builds the hot-function table for the profile's given value
// dimension (see Profile.ValueIndex / DefaultIndex).
func Aggregate(p *Profile, valueIndex int) (*Table, error) {
	if valueIndex < 0 || valueIndex >= len(p.SampleTypes) {
		return nil, fmt.Errorf("profile: value index %d out of range (profile has %d sample types)",
			valueIndex, len(p.SampleTypes))
	}
	t := &Table{
		Type: p.SampleTypes[valueIndex].Type,
		Unit: p.SampleTypes[valueIndex].Unit,
	}
	flat := map[string]int64{}
	cum := map[string]int64{}
	seen := map[string]bool{} // per-sample dedup for cum
	for _, s := range p.Samples {
		v := s.Values[valueIndex]
		if v == 0 {
			continue
		}
		t.Total += v
		t.Samples++
		if len(s.Stack) == 0 {
			flat["<no stack>"] += v
			cum["<no stack>"] += v
			continue
		}
		flat[frameName(s.Stack[0])] += v
		clear(seen)
		attributed := false
		for _, fr := range s.Stack {
			name := frameName(fr)
			if !seen[name] {
				seen[name] = true
				cum[name] += v
			}
			if strings.HasPrefix(fr.Function, KernelPrefix) {
				attributed = true
			}
		}
		if attributed {
			// AttributedPct is accumulated in Total units via FlatPct's
			// denominator below; stash in Samples-independent sum.
			t.AttributedPct += float64(v)
		}
	}
	if t.Total > 0 {
		t.AttributedPct = 100 * t.AttributedPct / float64(t.Total)
	}
	for name, f := range flat {
		fs := FuncStat{Name: name, Flat: f, Cum: cum[name]}
		if t.Total > 0 {
			fs.FlatPct = 100 * float64(f) / float64(t.Total)
			fs.CumPct = 100 * float64(cum[name]) / float64(t.Total)
		}
		t.Funcs = append(t.Funcs, fs)
	}
	// Functions that never appear as a leaf still deserve rows — their
	// cumulative share is how callers like (*CG).Run show up at all.
	for name, c := range cum {
		if _, ok := flat[name]; ok {
			continue
		}
		fs := FuncStat{Name: name, Cum: c}
		if t.Total > 0 {
			fs.CumPct = 100 * float64(c) / float64(t.Total)
		}
		t.Funcs = append(t.Funcs, fs)
	}
	sort.Slice(t.Funcs, func(i, j int) bool {
		a, b := t.Funcs[i], t.Funcs[j]
		if a.Flat != b.Flat {
			return a.Flat > b.Flat
		}
		if a.Cum != b.Cum {
			return a.Cum > b.Cum
		}
		return a.Name < b.Name
	})
	return t, nil
}

// frameName is the display name of a frame; unsymbolized frames share
// one bucket so they aggregate visibly instead of vanishing.
func frameName(fr Frame) string {
	if fr.Function == "" {
		return "<unsymbolized>"
	}
	return fr.Function
}

// Top returns the table truncated to its n heaviest functions by flat
// value (all of them if n <= 0 or beyond the end).
func (t *Table) Top(n int) []FuncStat {
	if n <= 0 || n > len(t.Funcs) {
		n = len(t.Funcs)
	}
	return t.Funcs[:n]
}

// FormatValue renders one value in the table's unit: seconds for
// nanosecond units, IEC bytes for byte units, plain counts otherwise.
func (t *Table) FormatValue(v int64) string {
	switch t.Unit {
	case "nanoseconds":
		return fmt.Sprintf("%.3fs", float64(v)/1e9)
	case "bytes":
		switch {
		case v >= 1<<30:
			return fmt.Sprintf("%.2fGiB", float64(v)/(1<<30))
		case v >= 1<<20:
			return fmt.Sprintf("%.2fMiB", float64(v)/(1<<20))
		case v >= 1<<10:
			return fmt.Sprintf("%.2fKiB", float64(v)/(1<<10))
		default:
			return fmt.Sprintf("%dB", v)
		}
	default:
		return fmt.Sprintf("%d", v)
	}
}
