package profile

import (
	"bytes"
	"compress/gzip"
	"strings"
	"testing"
)

// enc builds protobuf wire format by hand, mirroring the decoder's
// hand-rolled parsing — the tests own both ends of the wire.
type enc struct{ bytes.Buffer }

func (e *enc) varint(v uint64) {
	for v >= 0x80 {
		e.WriteByte(byte(v) | 0x80)
		v >>= 7
	}
	e.WriteByte(byte(v))
}

func (e *enc) tag(field, wire int) { e.varint(uint64(field)<<3 | uint64(wire)) }

func (e *enc) intField(field int, v uint64) {
	e.tag(field, 0)
	e.varint(v)
}

func (e *enc) bytesField(field int, b []byte) {
	e.tag(field, 2)
	e.varint(uint64(len(b)))
	e.Write(b)
}

func (e *enc) packed(field int, vals ...uint64) {
	var body enc
	for _, v := range vals {
		body.varint(v)
	}
	e.bytesField(field, body.Bytes())
}

func valueType(typ, unit int) []byte {
	var e enc
	e.intField(1, uint64(typ))
	e.intField(2, uint64(unit))
	return e.Bytes()
}

func function(id uint64, name, file int) []byte {
	var e enc
	e.intField(1, id)
	e.intField(2, uint64(name))
	e.intField(4, uint64(file))
	return e.Bytes()
}

func location(id uint64, lines ...[2]uint64) []byte {
	var e enc
	e.intField(1, id)
	for _, ln := range lines {
		var le enc
		le.intField(1, ln[0])
		le.intField(2, ln[1])
		e.bytesField(4, le.Bytes())
	}
	return e.Bytes()
}

// testProfile is a two-dimension (samples/count + cpu/nanoseconds)
// profile with three functions:
//
//	f1 = npbgo/internal/cg.sparseMatVec (leaf of samples 1 and 2)
//	f2 = npbgo/internal/cg.(*CG).Run    (caller; also inline parent in loc 1)
//	f3 = main.main                      (root of everything, leaf of sample 3)
//
// Location 1 is an inline chain [f1 innermost, f2], location 2 is f2,
// location 3 is f3.
func testProfile(t *testing.T) []byte {
	t.Helper()
	strs := []string{"", "samples", "count", "cpu", "nanoseconds",
		"npbgo/internal/cg.sparseMatVec", "cg.go",
		"npbgo/internal/cg.(*CG).Run", "main.main", "main.go"}
	var e enc
	e.bytesField(1, valueType(1, 2)) // samples/count
	e.bytesField(1, valueType(3, 4)) // cpu/nanoseconds

	// sample 1: stack loc1,loc3 — packed encodings
	var s1 enc
	s1.packed(1, 1, 3)
	s1.packed(2, 3, 30_000_000)
	e.bytesField(2, s1.Bytes())
	// sample 2: stack loc1,loc2,loc3 — unpacked encodings
	var s2 enc
	s2.intField(1, 1)
	s2.intField(1, 2)
	s2.intField(1, 3)
	s2.intField(2, 1)
	s2.intField(2, 10_000_000)
	e.bytesField(2, s2.Bytes())
	// sample 3: leaf main.main
	var s3 enc
	s3.packed(1, 3)
	s3.packed(2, 6, 60_000_000)
	e.bytesField(2, s3.Bytes())

	e.bytesField(4, location(1, [2]uint64{1, 42}, [2]uint64{2, 101}))
	e.bytesField(4, location(2, [2]uint64{2, 99}))
	e.bytesField(4, location(3, [2]uint64{3, 7}))
	e.bytesField(5, function(1, 5, 6))
	e.bytesField(5, function(2, 7, 6))
	e.bytesField(5, function(3, 8, 9))
	for _, s := range strs {
		e.bytesField(6, []byte(s))
	}
	e.intField(9, 1700000000)    // time_nanos
	e.intField(10, 2_000_000_00) // duration_nanos
	e.bytesField(11, valueType(3, 4))
	e.intField(12, 10_000_000) // period
	return e.Bytes()
}

func TestParseSyntheticProfile(t *testing.T) {
	p, err := Parse(testProfile(t))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(p.SampleTypes) != 2 || p.SampleTypes[0].Type != "samples" || p.SampleTypes[1] != (ValueType{"cpu", "nanoseconds"}) {
		t.Fatalf("sample types = %+v", p.SampleTypes)
	}
	if p.Period != 10_000_000 || p.PeriodType.Type != "cpu" {
		t.Fatalf("period = %d %+v", p.Period, p.PeriodType)
	}
	if len(p.Samples) != 3 {
		t.Fatalf("samples = %d, want 3", len(p.Samples))
	}
	// Sample 1's stack must expand location 1's inline chain innermost
	// first: sparseMatVec, Run, then main.
	got := p.Samples[0].Stack
	want := []string{"npbgo/internal/cg.sparseMatVec", "npbgo/internal/cg.(*CG).Run", "main.main"}
	if len(got) != len(want) {
		t.Fatalf("sample 1 stack = %+v, want %v", got, want)
	}
	for i, w := range want {
		if got[i].Function != w {
			t.Fatalf("sample 1 frame %d = %q, want %q", i, got[i].Function, w)
		}
	}
	if got[0].Line != 42 || got[0].File != "cg.go" {
		t.Fatalf("leaf frame coordinates = %+v", got[0])
	}
	// Unpacked sample 2 must decode identically in shape.
	if n := len(p.Samples[1].Stack); n != 4 {
		t.Fatalf("sample 2 stack depth = %d, want 4 (inline chain + 2)", n)
	}
	if v := p.Samples[1].Values; v[0] != 1 || v[1] != 10_000_000 {
		t.Fatalf("sample 2 values = %v", v)
	}
	if p.DefaultIndex() != 1 {
		t.Fatalf("DefaultIndex = %d, want 1 (cpu)", p.DefaultIndex())
	}
	if i := p.ValueIndex("samples"); i != 0 {
		t.Fatalf("ValueIndex(samples) = %d", i)
	}
	if i := p.ValueIndex("absent"); i != -1 {
		t.Fatalf("ValueIndex(absent) = %d, want -1", i)
	}
}

func TestParseGzipped(t *testing.T) {
	raw := testProfile(t)
	var gz bytes.Buffer
	zw := gzip.NewWriter(&gz)
	zw.Write(raw)
	zw.Close()
	p, err := Parse(gz.Bytes())
	if err != nil {
		t.Fatalf("Parse(gzipped): %v", err)
	}
	if len(p.Samples) != 3 {
		t.Fatalf("samples = %d, want 3", len(p.Samples))
	}

	// A gzip stream cut mid-member must be rejected, not silently
	// half-decoded — this is the shape a hard-killed cell leaves behind.
	for _, cut := range []int{3, 10, gz.Len() / 2, gz.Len() - 1} {
		if _, err := Parse(gz.Bytes()[:cut]); err == nil {
			t.Fatalf("Parse(gzip cut at %d) succeeded, want error", cut)
		}
	}
}

func TestAggregateSynthetic(t *testing.T) {
	p, err := Parse(testProfile(t))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	tab, err := Aggregate(p, 1) // cpu nanoseconds
	if err != nil {
		t.Fatalf("Aggregate: %v", err)
	}
	if tab.Total != 100_000_000 || tab.Samples != 3 {
		t.Fatalf("total = %d samples = %d", tab.Total, tab.Samples)
	}
	byName := map[string]FuncStat{}
	for _, f := range tab.Funcs {
		byName[f.Name] = f
	}
	mv := byName["npbgo/internal/cg.sparseMatVec"]
	if mv.Flat != 40_000_000 || mv.Cum != 40_000_000 {
		t.Fatalf("sparseMatVec = %+v", mv)
	}
	run := byName["npbgo/internal/cg.(*CG).Run"]
	if run.Flat != 0 || run.Cum != 40_000_000 {
		t.Fatalf("Run = %+v (cum must count the inline chain once per sample)", run)
	}
	mn := byName["main.main"]
	if mn.Flat != 60_000_000 || mn.Cum != 100_000_000 {
		t.Fatalf("main = %+v", mn)
	}
	// 40% of CPU touches npbgo/internal/ frames.
	if tab.AttributedPct < 39.9 || tab.AttributedPct > 40.1 {
		t.Fatalf("AttributedPct = %.2f, want 40", tab.AttributedPct)
	}
	// The heaviest flat function leads the table.
	if tab.Funcs[0].Name != "main.main" {
		t.Fatalf("top = %q, want main.main", tab.Funcs[0].Name)
	}
	if top := tab.Top(1); len(top) != 1 || top[0].Name != "main.main" {
		t.Fatalf("Top(1) = %+v", top)
	}
	if got := tab.FormatValue(mv.Flat); got != "0.040s" {
		t.Fatalf("FormatValue = %q", got)
	}
	if _, err := Aggregate(p, 5); err == nil {
		t.Fatal("Aggregate with out-of-range index succeeded")
	}
}

// corrupt applies a structural mutation and asserts rejection.
func TestParseRejectsCorruptStreams(t *testing.T) {
	base := testProfile(t)
	cases := map[string]func() []byte{
		"truncated varint": func() []byte {
			var e enc
			e.tag(9, 0)
			e.WriteByte(0x80) // continuation bit with no next byte
			return e.Bytes()
		},
		"varint overflow": func() []byte {
			var e enc
			e.tag(9, 0)
			for i := 0; i < 11; i++ {
				e.WriteByte(0x80)
			}
			e.WriteByte(0x01)
			return e.Bytes()
		},
		"length past end": func() []byte {
			var e enc
			e.tag(6, 2)
			e.varint(1000)
			e.WriteString("short")
			return e.Bytes()
		},
		"group wire type": func() []byte {
			var e enc
			e.tag(7, 3)
			return e.Bytes()
		},
		"string index out of range": func() []byte {
			var e enc
			e.bytesField(1, valueType(99, 0))
			e.bytesField(6, []byte(""))
			return e.Bytes()
		},
		"unknown location reference": func() []byte {
			var e enc
			e.bytesField(1, valueType(0, 0))
			var s enc
			s.packed(1, 7)
			s.packed(2, 1)
			e.bytesField(2, s.Bytes())
			e.bytesField(6, []byte(""))
			return e.Bytes()
		},
		"unknown function reference": func() []byte {
			var e enc
			e.bytesField(4, location(1, [2]uint64{9, 1}))
			e.bytesField(6, []byte(""))
			return e.Bytes()
		},
		"value/type arity mismatch": func() []byte {
			var e enc
			e.bytesField(1, valueType(0, 0))
			e.bytesField(1, valueType(0, 0))
			var s enc
			s.packed(2, 5) // one value for two sample types
			e.bytesField(2, s.Bytes())
			e.bytesField(6, []byte(""))
			return e.Bytes()
		},
		"zero function id": func() []byte {
			var e enc
			e.bytesField(5, function(0, 0, 0))
			e.bytesField(6, []byte(""))
			return e.Bytes()
		},
		"zero location id": func() []byte {
			var e enc
			e.bytesField(4, location(0))
			e.bytesField(6, []byte(""))
			return e.Bytes()
		},
		"proto cut mid-message": func() []byte {
			return base[:len(base)-3]
		},
	}
	for name, build := range cases {
		if _, err := Parse(build()); err == nil {
			t.Errorf("%s: Parse succeeded, want error", name)
		}
	}
}

func TestParseToleratesUnknownFields(t *testing.T) {
	var e enc
	e.Write(testProfile(t))
	e.intField(7, 12)                       // drop_frames
	e.bytesField(3, []byte{0x08, 0x01})     // mapping {id:1}
	e.intField(99, 5)                       // far-future field
	e.tag(98, 1)                            // fixed64 field
	e.Write(make([]byte, 8))                //
	e.tag(97, 5)                            // fixed32 field
	e.Write(make([]byte, 4))                //
	p, err := Parse(e.Bytes())
	if err != nil {
		t.Fatalf("Parse with unknown fields: %v", err)
	}
	if len(p.Samples) != 3 {
		t.Fatalf("samples = %d, want 3", len(p.Samples))
	}
	if !strings.Contains(p.String(), "3 samples") {
		t.Fatalf("String() = %q", p.String())
	}
}

func TestParseFileErrors(t *testing.T) {
	if _, err := ParseFile(t.TempDir() + "/absent.pprof"); err == nil {
		t.Fatal("ParseFile(absent) succeeded")
	}
}
