package profile

import (
	"os"
	"strings"
	"testing"
)

// The checked-in fixtures are real runtime/pprof output captured once
// via this package's own Capture (a spin loop under CPU profiling, then
// the allocs profile): genuine gzipped proto from the Go runtime, so
// the decoder is exercised against the writer it must read in
// production, not only against the synthetic encoder in decode_test.go.
// The fixtures are frozen, so the assertions are exact.

func TestGoldenCPUFixture(t *testing.T) {
	p, err := ParseFile("testdata/cpu.pprof")
	if err != nil {
		t.Fatalf("ParseFile: %v", err)
	}
	wantTypes := []ValueType{{"samples", "count"}, {"cpu", "nanoseconds"}}
	if len(p.SampleTypes) != 2 || p.SampleTypes[0] != wantTypes[0] || p.SampleTypes[1] != wantTypes[1] {
		t.Fatalf("sample types = %+v, want %+v", p.SampleTypes, wantTypes)
	}
	if len(p.Samples) != 4 {
		t.Fatalf("samples = %d, want 4", len(p.Samples))
	}
	if p.Period != 10_000_000 || p.PeriodType != (ValueType{"cpu", "nanoseconds"}) {
		t.Fatalf("period = %d %+v", p.Period, p.PeriodType)
	}
	if p.DurationNanos <= 0 {
		t.Fatal("no duration header")
	}
	tab, err := Aggregate(p, p.DefaultIndex())
	if err != nil {
		t.Fatalf("Aggregate: %v", err)
	}
	if tab.Funcs[0].Name != "npbgo/internal/profile.spin" {
		t.Fatalf("top flat = %q, want the capture's spin loop", tab.Funcs[0].Name)
	}
	if tab.Funcs[0].FlatPct < 90 {
		t.Fatalf("spin flat = %.2f%%, want > 90%%", tab.Funcs[0].FlatPct)
	}
	if tab.AttributedPct < 90 {
		t.Fatalf("AttributedPct = %.2f%%, want > 90%% (spin lives under %s)", tab.AttributedPct, KernelPrefix)
	}
	// The test harness frames appear with zero flat but high cum — the
	// flat/cum distinction the table exists for.
	var runner FuncStat
	for _, f := range tab.Funcs {
		if f.Name == "testing.tRunner" {
			runner = f
		}
	}
	if runner.Name == "" || runner.Flat != 0 || runner.CumPct < 90 {
		t.Fatalf("tRunner = %+v, want flat 0 / cum > 90%%", runner)
	}
}

func TestGoldenHeapFixture(t *testing.T) {
	p, err := ParseFile("testdata/heap.pprof")
	if err != nil {
		t.Fatalf("ParseFile: %v", err)
	}
	want := []ValueType{
		{"alloc_objects", "count"}, {"alloc_space", "bytes"},
		{"inuse_objects", "count"}, {"inuse_space", "bytes"},
	}
	if len(p.SampleTypes) != len(want) {
		t.Fatalf("sample types = %+v, want %+v", p.SampleTypes, want)
	}
	for i, w := range want {
		if p.SampleTypes[i] != w {
			t.Fatalf("sample type %d = %+v, want %+v", i, p.SampleTypes[i], w)
		}
	}
	if i := p.ValueIndex("alloc_space"); i != 1 {
		t.Fatalf("ValueIndex(alloc_space) = %d, want 1", i)
	}
	tab, err := Aggregate(p, p.ValueIndex("alloc_space"))
	if err != nil {
		t.Fatalf("Aggregate: %v", err)
	}
	if tab.Total <= 0 || len(tab.Funcs) == 0 {
		t.Fatalf("empty alloc_space table: %+v", tab)
	}
	if !strings.HasSuffix(tab.FormatValue(tab.Total), "B") {
		t.Fatalf("byte formatting = %q", tab.FormatValue(tab.Total))
	}
}

// The golden files stay parseable after a byte-level round trip through
// disk — guards against fixture corruption by tooling (git filters,
// editors) going unnoticed.
func TestGoldenFixturesAreGzipped(t *testing.T) {
	for _, f := range []string{"testdata/cpu.pprof", "testdata/heap.pprof"} {
		data, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		if len(data) < 2 || data[0] != 0x1f || data[1] != 0x8b {
			t.Fatalf("%s is not gzipped (magic = %x)", f, data[:2])
		}
	}
}
