// Per-cell profile capture via runtime/pprof. The harness starts a
// capture immediately before a cell executes and stops it immediately
// after — outside the benchmark's own timed region, per the house rule
// that instrumentation must never sit inside what it measures (the
// timed section is unchanged; the CPU profiler's sampling interrupts
// are the only overhead, and they are on for the whole cell either
// way).
//
// A Capture survives the cell dying: Stop runs in a defer registered
// after the panic recovery, so a cell that panics still flushes and
// fsyncs whatever samples it accumulated before the failure is
// rendered — the profile of a dying cell is the post-mortem, exactly
// like the PR 9 metrics-flush ordering.
package profile

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
)

// CPUSuffix and HeapSuffix name the two per-cell profile files:
// "<BENCH>.<class>.<cell>" + suffix, mirroring the trace file naming.
const (
	CPUSuffix  = ".cpu.pprof"
	HeapSuffix = ".heap.pprof"
)

// CellPaths returns the CPU and heap profile paths of one labeled cell
// inside dir — the single naming authority, shared by the capturing
// side (harness, isolate child) and the collecting side (harness
// parent, npbperf).
func CellPaths(dir, label string) (cpu, heap string) {
	return filepath.Join(dir, label+CPUSuffix), filepath.Join(dir, label+HeapSuffix)
}

// Capture is one in-flight per-cell profile capture. The zero value is
// not useful; a nil *Capture is the disabled state and every method
// no-ops on it, matching the obs/trace/perfcount nil-disabled contract.
type Capture struct {
	cpuPath  string
	heapPath string
	cpuFile  *os.File
}

// Start creates dir if needed and begins a CPU profile capture for the
// labeled cell. Exactly one capture can be active per process
// (runtime/pprof's own rule); the harness runs cells sequentially, so
// this never contends.
func Start(dir, label string) (*Capture, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("profile: %w", err)
	}
	cpu, heap := CellPaths(dir, label)
	f, err := os.Create(cpu)
	if err != nil {
		return nil, fmt.Errorf("profile: %w", err)
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		os.Remove(cpu)
		return nil, fmt.Errorf("profile: %w", err)
	}
	return &Capture{cpuPath: cpu, heapPath: heap, cpuFile: f}, nil
}

// Stop ends the capture: the CPU profile is stopped, flushed and
// fsync'd, then the allocation profile ("allocs", every allocation
// since process start) is written and fsync'd next to it. Stop is
// idempotent and nil-safe, and returns the first error while still
// attempting every remaining step — a broken heap write must not lose
// an already-complete CPU profile.
func (c *Capture) Stop() error {
	if c == nil || c.cpuFile == nil {
		return nil
	}
	pprof.StopCPUProfile()
	var first error
	keep := func(err error) {
		if first == nil && err != nil {
			first = fmt.Errorf("profile: %w", err)
		}
	}
	keep(c.cpuFile.Sync())
	keep(c.cpuFile.Close())
	c.cpuFile = nil

	// One GC so the allocation profile reflects everything up to this
	// instant (the runtime publishes alloc stats at GC boundaries). This
	// runs strictly after the cell's timed region ended.
	runtime.GC()
	hf, err := os.Create(c.heapPath)
	if err != nil {
		keep(err)
		return first
	}
	keep(pprof.Lookup("allocs").WriteTo(hf, 0))
	keep(hf.Sync())
	keep(hf.Close())
	return first
}

// CPUPath and HeapPath report the capture's target files (valid even
// after Stop). Nil-safe: empty on a disabled capture.
func (c *Capture) CPUPath() string {
	if c == nil {
		return ""
	}
	return c.cpuPath
}

func (c *Capture) HeapPath() string {
	if c == nil {
		return ""
	}
	return c.heapPath
}
