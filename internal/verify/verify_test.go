package verify

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestCheckExactMatch(t *testing.T) {
	if rel, ok := Check(1.25, 1.25, Epsilon); !ok || rel != 0 {
		t.Fatalf("exact match: rel=%v ok=%v", rel, ok)
	}
}

func TestCheckWithinTolerance(t *testing.T) {
	ref := 17.130235054029
	if _, ok := Check(ref*(1+1e-9), ref, Epsilon); !ok {
		t.Fatal("value within 1e-9 rejected")
	}
	if _, ok := Check(ref*(1+1e-6), ref, Epsilon); ok {
		t.Fatal("value off by 1e-6 accepted")
	}
}

func TestCheckZeroReferenceUsesAbsolute(t *testing.T) {
	if _, ok := Check(1e-9, 0, Epsilon); !ok {
		t.Fatal("tiny absolute error vs zero reference rejected")
	}
	if _, ok := Check(1e-3, 0, Epsilon); ok {
		t.Fatal("large absolute error vs zero reference accepted")
	}
}

func TestCheckNaNFails(t *testing.T) {
	if _, ok := Check(math.NaN(), 1.0, Epsilon); ok {
		t.Fatal("NaN passed verification")
	}
	if _, ok := Check(math.NaN(), 0.0, Epsilon); ok {
		t.Fatal("NaN vs zero reference passed verification")
	}
}

func TestCheckSymmetryProperty(t *testing.T) {
	// If computed passes against reference, then reference (as computed)
	// passes against itself, and scaling both by the same factor
	// preserves the verdict.
	f := func(raw int32, scaleRaw uint8) bool {
		ref := float64(raw)/1000 + 1 // avoid zero
		scale := float64(scaleRaw%100) + 1
		_, ok1 := Check(ref*(1+5e-9), ref, Epsilon)
		_, ok2 := Check(scale*ref*(1+5e-9), scale*ref, Epsilon)
		return ok1 && ok2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestReportPassedRequiresItems(t *testing.T) {
	r := &Report{Tier: TierOfficial}
	if r.Passed() {
		t.Fatal("empty report passed")
	}
	r.Add("x", 1, 1)
	if !r.Passed() {
		t.Fatal("matching report failed")
	}
	r.Add("y", 1, 2)
	if r.Passed() || !r.Failed() {
		t.Fatal("mismatching item not detected")
	}
}

func TestReportTierNone(t *testing.T) {
	r := &Report{Tier: TierNone}
	r.Add("x", 1, 1)
	if r.Passed() {
		t.Fatal("TierNone report must not pass")
	}
	if r.Failed() {
		t.Fatal("TierNone report with matching items must not be failed")
	}
	if !strings.Contains(r.String(), "unverified") {
		t.Fatalf("String = %q", r.String())
	}
}

func TestReportString(t *testing.T) {
	r := &Report{Tier: TierGolden}
	r.Add("zeta", 17.13, 17.13)
	s := r.String()
	if !strings.Contains(s, "golden") || !strings.Contains(s, "SUCCESSFUL") {
		t.Fatalf("String = %q", s)
	}
	r.Add("bad", 1, 2)
	if !strings.Contains(r.String(), "FAILED") {
		t.Fatalf("String = %q", r.String())
	}
}

func TestTierString(t *testing.T) {
	if TierOfficial.String() != "official" || TierGolden.String() != "golden" || TierNone.String() != "none" {
		t.Fatal("tier names wrong")
	}
}
