package cg

import (
	"math"
	"testing"

	"npbgo/internal/randdp"
)

func TestSprnvcDistinctLocations(t *testing.T) {
	tran := 314159265.0
	v := make([]float64, 8)
	iv := make([]int, 8)
	mark := make([]bool, 101)
	nzv := sprnvc(100, 8, &tran, v, iv, mark)
	if nzv != 8 {
		t.Fatalf("nzv = %d, want 8", nzv)
	}
	seen := map[int]bool{}
	for k := 0; k < nzv; k++ {
		if iv[k] < 1 || iv[k] > 100 {
			t.Fatalf("location %d out of [1,100]", iv[k])
		}
		if seen[iv[k]] {
			t.Fatalf("duplicate location %d", iv[k])
		}
		seen[iv[k]] = true
		if v[k] <= 0 || v[k] >= 1 {
			t.Fatalf("value %v outside (0,1)", v[k])
		}
	}
	for i := range mark {
		if mark[i] {
			t.Fatalf("mark[%d] not reset", i)
		}
	}
}

func TestSprnvcConsumesTwoDrawsPerAttempt(t *testing.T) {
	// With n a power of two, no draw can be rejected for i > n, so the
	// stream advances exactly 2*nz when there are no duplicates.
	tran := 314159265.0
	ref := tran
	v := make([]float64, 4)
	iv := make([]int, 4)
	mark := make([]bool, 1<<16+1)
	sprnvc(1<<16, 4, &tran, v, iv, mark)
	// Advance a reference stream 8 times (assuming no duplicate hits in
	// a 65536-slot space for 4 draws — overwhelmingly likely and
	// deterministic for this seed).
	for i := 0; i < 8; i++ {
		randdp.Randlc(&ref, randdp.A)
	}
	if tran != ref {
		t.Fatalf("stream misaligned: %v vs %v", tran, ref)
	}
}

func TestVecset(t *testing.T) {
	v := []float64{1, 2, 3, 0}
	iv := []int{5, 9, 2, 0}
	if nzv := vecset(v, iv, 3, 9, 0.5); nzv != 3 || v[1] != 0.5 {
		t.Fatalf("existing update failed: nzv=%d v=%v", nzv, v)
	}
	if nzv := vecset(v, iv, 3, 7, 0.25); nzv != 4 || v[3] != 0.25 || iv[3] != 7 {
		t.Fatalf("append failed: nzv=%d v=%v iv=%v", nzv, v, iv)
	}
}

func TestMakeaStructure(t *testing.T) {
	const n = 200
	rowstr, colidx, a := makea(n, 5, rcond, 10.0)
	if len(rowstr) != n+1 || rowstr[0] != 0 {
		t.Fatalf("rowstr malformed: len=%d first=%d", len(rowstr), rowstr[0])
	}
	if rowstr[n] != len(a) || len(a) != len(colidx) {
		t.Fatalf("CSR arrays inconsistent: %d %d %d", rowstr[n], len(a), len(colidx))
	}
	for i := 0; i < n; i++ {
		if rowstr[i+1] < rowstr[i] {
			t.Fatalf("rowstr not monotone at %d", i)
		}
		for k := rowstr[i]; k < rowstr[i+1]; k++ {
			if colidx[k] < 0 || colidx[k] >= n {
				t.Fatalf("column %d out of range", colidx[k])
			}
			if k > rowstr[i] && colidx[k] <= colidx[k-1] {
				t.Fatalf("row %d columns not strictly increasing", i)
			}
		}
	}
}

func TestMakeaSymmetric(t *testing.T) {
	const n = 150
	rowstr, colidx, a := makea(n, 4, rcond, 10.0)
	get := func(i, j int) float64 {
		for k := rowstr[i]; k < rowstr[i+1]; k++ {
			if colidx[k] == j {
				return a[k]
			}
		}
		return 0
	}
	for i := 0; i < n; i++ {
		for k := rowstr[i]; k < rowstr[i+1]; k++ {
			j := colidx[k]
			if d := math.Abs(a[k] - get(j, i)); d > 1e-12 {
				t.Fatalf("A[%d,%d]=%v but A[%d,%d]=%v", i, j, a[k], j, i, get(j, i))
			}
		}
	}
}

func TestMakeaDiagonalShift(t *testing.T) {
	// Every diagonal entry includes rcond - shift; with shift large the
	// diagonal must be strongly negative.
	const n = 100
	const shift = 50.0
	rowstr, colidx, a := makea(n, 4, rcond, shift)
	for i := 0; i < n; i++ {
		found := false
		for k := rowstr[i]; k < rowstr[i+1]; k++ {
			if colidx[k] == i {
				found = true
				if a[k] > rcond-shift+5 {
					t.Fatalf("diagonal %d = %v, expected near %v", i, a[k], rcond-shift)
				}
			}
		}
		if !found {
			t.Fatalf("row %d missing diagonal", i)
		}
	}
}

func TestClassSVerifies(t *testing.T) {
	b, err := New('S', 1)
	if err != nil {
		t.Fatal(err)
	}
	res := b.Run()
	if !res.Verify.Passed() {
		t.Fatalf("class S failed verification:\n%s", res.Verify)
	}
	if res.RNorm > 1e-8 {
		t.Fatalf("final residual %v too large", res.RNorm)
	}
}

func TestParallelMatchesOfficialZeta(t *testing.T) {
	for _, n := range []int{2, 4} {
		b, err := New('S', n)
		if err != nil {
			t.Fatal(err)
		}
		res := b.Run()
		if !res.Verify.Passed() {
			t.Fatalf("threads=%d failed verification:\n%s", n, res.Verify)
		}
	}
}

func TestWarmupOptionStillVerifies(t *testing.T) {
	b, err := New('S', 2, WithWarmup())
	if err != nil {
		t.Fatal(err)
	}
	if res := b.Run(); !res.Verify.Passed() {
		t.Fatalf("warmup run failed verification:\n%s", res.Verify)
	}
}

func TestRepeatedRunsDeterministic(t *testing.T) {
	b, _ := New('S', 2)
	r1 := b.Run()
	r2 := b.Run()
	if r1.Zeta != r2.Zeta {
		t.Fatalf("zeta not reproducible: %v vs %v", r1.Zeta, r2.Zeta)
	}
}

func TestUnknownClassRejected(t *testing.T) {
	if _, err := New('Q', 1); err == nil {
		t.Fatal("class Q accepted")
	}
	if _, err := New('S', -1); err == nil {
		t.Fatal("negative threads accepted")
	}
}

func TestNNZPositive(t *testing.T) {
	b, _ := New('S', 1)
	if b.NNZ() <= b.p.na {
		t.Fatalf("NNZ = %d suspiciously small", b.NNZ())
	}
}

// TestCorruptedMatrixFailsVerification is a failure-injection check:
// perturbing one stored matrix entry must flip the verification verdict
// (the eigenvalue estimate is sensitive to the operator).
func TestCorruptedMatrixFailsVerification(t *testing.T) {
	b, err := New('S', 1)
	if err != nil {
		t.Fatal(err)
	}
	b.a[len(b.a)/3] += 0.5
	res := b.Run()
	if res.Verify.Passed() {
		t.Fatalf("corrupted matrix still verified: zeta=%v", res.Zeta)
	}
	if !res.Verify.Failed() {
		t.Fatal("corruption not reported as failure")
	}
}

func TestBallastOptionStillVerifies(t *testing.T) {
	b, err := New('S', 2, WithBallast(1<<20))
	if err != nil {
		t.Fatal(err)
	}
	if res := b.Run(); !res.Verify.Passed() {
		t.Fatalf("ballast run failed verification:\n%s", res.Verify)
	}
}
