package cg

import (
	"fmt"
	"math"

	"npbgo/internal/team"
)

// EigenResult reports an inverse-power-method eigenvalue estimation.
type EigenResult struct {
	Eigenvalue float64   // the estimate after the final outer iteration
	History    []float64 // estimate after each outer iteration
	Residual   float64   // final ||x - A_shifted z|| from the inner CG
}

// EstimateSmallestEigenvalue runs the CG benchmark's shifted
// inverse-power iteration on a caller-supplied sparse symmetric matrix
// in CSR form (rowstr of length n+1, 0-based colidx, values a): each of
// outerIters steps solves (A - shift*I) z = x with 25 CG iterations and
// refines the estimate shift + 1/(x.z), converging to the eigenvalue of
// A nearest the shift (the smallest one for shift below the spectrum).
// This is exactly the benchmark's algorithm exposed as a library.
func EstimateSmallestEigenvalue(n int, rowstr, colidx []int, a []float64,
	shift float64, outerIters, threads int) (EigenResult, error) {
	var res EigenResult
	if len(rowstr) != n+1 {
		return res, fmt.Errorf("cg: rowstr has length %d, want n+1 = %d", len(rowstr), n+1)
	}
	if len(colidx) != len(a) || rowstr[n] != len(a) {
		return res, fmt.Errorf("cg: CSR arrays inconsistent")
	}
	if outerIters < 1 || threads < 1 {
		return res, fmt.Errorf("cg: outerIters and threads must be >= 1")
	}

	// Shift the diagonal on a private copy (the benchmark's makea bakes
	// rcond - shift into the generated matrix).
	av := make([]float64, len(a))
	copy(av, a)
	if shift != 0 {
		for i := 0; i < n; i++ {
			found := false
			for k := rowstr[i]; k < rowstr[i+1]; k++ {
				if colidx[k] == i {
					av[k] -= shift
					found = true
					break
				}
			}
			if !found {
				return res, fmt.Errorf("cg: row %d has no stored diagonal to shift", i)
			}
		}
	}

	b := &Benchmark{
		p:       params{na: n, shift: shift},
		threads: threads,
		rowstr:  rowstr, colidx: colidx, a: av,
		x: make([]float64, n), z: make([]float64, n),
		pv: make([]float64, n), q: make([]float64, n), r: make([]float64, n),
	}
	b.buildBodies()
	tm := team.New(threads)
	defer tm.Close()
	b.tm = tm

	for i := range b.x {
		b.x[i] = 1.0
	}
	for it := 0; it < outerIters; it++ {
		res.Residual = b.conjGrad()
		norm1 := b.dot(b.x, b.z)
		res.Eigenvalue = shift + 1.0/norm1
		res.History = append(res.History, res.Eigenvalue)
		b.normalize()
	}
	if math.IsNaN(res.Eigenvalue) {
		return res, fmt.Errorf("cg: iteration diverged (NaN estimate)")
	}
	return res, nil
}
