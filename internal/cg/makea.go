package cg

import (
	"math"

	"npbgo/internal/randdp"
)

// sprnvc generates a sparse vector with nz distinct nonzero locations in
// [1, n], drawing both values and locations from the shared generator
// stream, exactly as cg.f's sprnvc: every attempt consumes two generator
// draws (value, location) whether or not the location is accepted, so
// the stream stays aligned with the reference implementation.
// mark is a caller-provided scratch of n+1 bools (1-based), reset before
// return. v and iv receive the values and (1-based) locations.
func sprnvc(n, nz int, tran *float64, v []float64, iv []int, mark []bool) int {
	// Smallest power of two not less than n, for the portable
	// integer-from-double conversion.
	nn1 := 1
	for nn1 < n {
		nn1 *= 2
	}
	nzv := 0
	for nzv < nz {
		vecelt := randdp.Randlc(tran, randdp.A)
		vecloc := randdp.Randlc(tran, randdp.A)
		i := int(float64(nn1)*vecloc) + 1
		if i > n {
			continue
		}
		if mark[i] {
			continue
		}
		mark[i] = true
		v[nzv] = vecelt
		iv[nzv] = i
		nzv++
	}
	for k := 0; k < nzv; k++ {
		mark[iv[k]] = false
	}
	return nzv
}

// vecset sets element ival of the sparse vector (v, iv, nzv) to val,
// appending it if not present, as cg.f's vecset.
func vecset(v []float64, iv []int, nzv, ival int, val float64) int {
	for k := 0; k < nzv; k++ {
		if iv[k] == ival {
			v[k] = val
			return nzv
		}
	}
	v[nzv] = val
	iv[nzv] = ival
	return nzv + 1
}

// triplet is one generated matrix element before duplicate summation.
type triplet struct {
	col int
	val float64
}

// makea generates the class-defining sparse symmetric matrix in CSR
// form: the weighted sum of outer products of random sparse vectors
// (geometrically decaying weights give condition number ~1/rcond),
// plus (rcond - shift) on the diagonal. Returns rowstr (0-based CSR row
// pointers over 0..n), colidx (0-based columns) and a (values).
func makea(n, nonzer int, rcond, shift float64) (rowstr []int, colidx []int, a []float64) {
	tran := 314159265.0
	// cg.f draws zeta once before makea; reproduce the stream position.
	randdp.Randlc(&tran, randdp.A)

	// Row-major triplet buckets (1-based rows); duplicates are summed
	// during assembly in stable column order.
	perRow := make([][]triplet, n+1)

	v := make([]float64, nonzer+1)
	iv := make([]int, nonzer+1)
	mark := make([]bool, n+1)

	size := 1.0
	ratio := math.Pow(rcond, 1.0/float64(n))

	for i := 1; i <= n; i++ {
		nzv := sprnvc(n, nonzer, &tran, v, iv, mark)
		nzv = vecset(v, iv, nzv, i, 0.5)
		for ivelt := 0; ivelt < nzv; ivelt++ {
			jcol := iv[ivelt]
			scale := size * v[ivelt]
			for ivelt1 := 0; ivelt1 < nzv; ivelt1++ {
				irow := iv[ivelt1]
				perRow[irow] = append(perRow[irow], triplet{jcol, v[ivelt1] * scale})
			}
		}
		size *= ratio
	}
	for i := 1; i <= n; i++ {
		perRow[i] = append(perRow[i], triplet{i, rcond - shift})
	}

	// Assemble CSR, summing duplicates. cg.f's sparse() sums duplicates
	// during a counting-sort pass; we stable-sort each row by column so
	// summation within a (row, col) pair follows generation order (any
	// difference from the Fortran association is pure rounding, far
	// below the 1e-10 verification tolerance).
	rowstr = make([]int, n+1)
	nnz := 0
	for i := 1; i <= n; i++ {
		sortTripletsByCol(perRow[i])
		for k := 0; k < len(perRow[i]); k++ {
			if k == 0 || perRow[i][k].col != perRow[i][k-1].col {
				nnz++
			}
		}
	}
	colidx = make([]int, nnz)
	a = make([]float64, nnz)
	pos := 0
	for i := 1; i <= n; i++ {
		rowstr[i-1] = pos
		row := perRow[i]
		for k := 0; k < len(row); k++ {
			if k > 0 && row[k].col == row[k-1].col {
				a[pos-1] += row[k].val
				continue
			}
			colidx[pos] = row[k].col - 1
			a[pos] = row[k].val
			pos++
		}
	}
	rowstr[n] = pos
	return rowstr, colidx, a
}

// sortTripletsByCol stable-sorts a row's triplets by column with an
// insertion sort (rows are short, about (nonzer+1)^2 entries).
func sortTripletsByCol(row []triplet) {
	for i := 1; i < len(row); i++ {
		t := row[i]
		j := i - 1
		for j >= 0 && row[j].col > t.col {
			row[j+1] = row[j]
			j--
		}
		row[j+1] = t
	}
}
