// Package cg implements the NPB CG kernel: a conjugate-gradient inverse
// power method estimating the smallest eigenvalue of a large sparse
// symmetric matrix with random pattern — the paper's representative of
// "unstructured" computation (irregular memory access through index
// vectors), which it contrasts with the structured-grid group.
//
// The paper's §5.2 spends most of its CG discussion on a scheduling
// anomaly: the JVM ran CG's lightly-loaded threads on only 1-2
// processors until each thread was given a large warmup load. The
// Warmup option reproduces that fix.
package cg

import (
	"context"
	"fmt"
	"math"
	"time"

	"npbgo/internal/fault"
	"npbgo/internal/obs"
	"npbgo/internal/perfcount"
	"npbgo/internal/team"
	"npbgo/internal/timer"
	"npbgo/internal/trace"
	"npbgo/internal/verify"
)

// params holds the per-class problem definition from cg.f.
type params struct {
	na     int
	nonzer int
	niter  int
	shift  float64
	zeta   float64 // official verification value
}

var classes = map[byte]params{
	'S': {1400, 7, 15, 10.0, 8.5971775078648},
	'W': {7000, 8, 15, 12.0, 10.362595087124},
	'A': {14000, 11, 15, 20.0, 17.130235054029},
	'B': {75000, 13, 75, 60.0, 22.712745482631},
	'C': {150000, 15, 75, 110.0, 28.973605592845},
}

const (
	rcond   = 0.1
	cgitmax = 25 // inner CG iterations per outer step
)

// Benchmark is a configured CG instance. The sparse matrix is generated
// by New so repeated Run calls time only the solver.
type Benchmark struct {
	Class   byte
	p       params
	threads int
	warmup  bool
	ctx     context.Context    // nil means not cancellable
	rec     *obs.Recorder      // nil without WithObs
	tr      *trace.Tracer      // nil without WithTrace
	pc      *perfcount.Sampler // nil without WithCounters
	timers  *timer.Set         // nil without WithTimers
	sched   team.Schedule      // loop schedule, Static without WithSchedule

	ballastBytes int
	ballast      [][]float64 // per-worker ballast, nil without WithBallast

	rowstr []int
	colidx []int
	a      []float64

	x, z, pv, q, r []float64

	// Steady-state machinery: the region bodies below are built once by
	// New and reused by every iteration, because For/ForBlock/ReduceSum
	// wrap their body in a fresh closure per call and a literal closure
	// capturing loop-variant scalars allocates per creation. The bodies
	// instead read the per-iteration scalars (alpha, beta, scaleInv) and
	// the current team from the Benchmark, keeping the timed loop free of
	// heap allocation (enforced by internal/allocgate).
	tm       *team.Team // team of the current Run/Iter
	alpha    float64    // CG step length, set each inner iteration
	beta     float64    // CG direction update, set each inner iteration
	scaleInv float64    // 1/||z|| for normalize
	dotA     []float64  // operands of the pending dot product
	dotB     []float64

	initBody    func(id int)
	spmvPQBody  func(id int)
	spmvZRBody  func(id int)
	axpyBody    func(id int)
	pUpdBody    func(id int)
	residBody   func(id int)
	scaleBody   func(id int)
	dotBody     func(id int)
	ballastBody func(id int)
	conjFn      func() float64
	normFn      func() float64
}

// Option configures optional benchmark behaviour.
type Option func(*Benchmark)

// WithWarmup enables the per-thread initialization load of §5.2.
func WithWarmup() Option { return func(b *Benchmark) { b.warmup = true } }

// WithObs attaches a runtime-metrics recorder to the run's team:
// per-worker busy and barrier-wait times, region counts and the
// imbalance ratio — the instrumentation the paper's §5.2 CG diagnosis
// was made with.
func WithObs(rec *obs.Recorder) Option { return func(b *Benchmark) { b.rec = rec } }

// WithTrace attaches an execution tracer to the run's team: per-worker
// event timelines (region blocks, barrier and pipeline waits),
// exportable as Chrome/Perfetto JSON — the when-view that complements
// the obs layer's how-much totals.
func WithTrace(tr *trace.Tracer) Option { return func(b *Benchmark) { b.tr = tr } }

// WithCounters attaches a hardware-counter sampler to the run's team:
// per-worker cycles/instructions/cache-miss deltas are charged to pc at
// every parallel region. pc should be sized perfcount.New(threads); nil
// leaves counter sampling disabled.
func WithCounters(pc *perfcount.Sampler) Option { return func(b *Benchmark) { b.pc = pc } }

// WithSchedule selects the team's loop schedule — the knob §5.2's
// load-imbalance diagnosis calls for. The default is team.Static, the
// paper's block distribution.
func WithSchedule(s team.Schedule) Option { return func(b *Benchmark) { b.sched = s } }

// WithTimers enables the per-phase profile (t_conj_grad, t_norm), the
// cg.f timer slots the paper's profiling discussion uses.
func WithTimers() Option { return func(b *Benchmark) { b.timers = timer.NewSet() } }

// WithContext makes Run cancellable: when ctx expires the team is
// cancelled (unblocking any parked workers) and the timed outer loop
// stops within about one iteration, returning a partial result.
func WithContext(ctx context.Context) Option {
	return func(b *Benchmark) { b.ctx = ctx }
}

// WithBallast reproduces the paper's other §5.2 experiment: "an
// artificial increase in the memory use ... also resulted in a drop of
// scalability". Each worker is given bytes of ballast that the timed
// loop streams through once per outer iteration, inflating the
// benchmark's working set without changing its arithmetic.
func WithBallast(bytes int) Option {
	return func(b *Benchmark) { b.ballastBytes = bytes }
}

// New builds the CG benchmark for a class and thread count, generating
// the sparse matrix (the untimed setup phase).
func New(class byte, threads int, opts ...Option) (*Benchmark, error) {
	p, ok := classes[class]
	if !ok {
		return nil, fmt.Errorf("cg: unknown class %q", string(class))
	}
	if threads < 1 {
		return nil, fmt.Errorf("cg: threads %d < 1", threads)
	}
	b := &Benchmark{Class: class, p: p, threads: threads}
	for _, o := range opts {
		o(b)
	}
	b.rowstr, b.colidx, b.a = makea(p.na, p.nonzer, rcond, p.shift)
	if b.ballastBytes > 0 {
		words := b.ballastBytes / 8
		if words < 1 {
			words = 1
		}
		b.ballast = make([][]float64, threads)
		for i := range b.ballast {
			b.ballast[i] = make([]float64, words)
		}
	}
	n := p.na
	b.x = make([]float64, n)
	b.z = make([]float64, n)
	b.pv = make([]float64, n)
	b.q = make([]float64, n)
	b.r = make([]float64, n)
	b.buildBodies()
	return b, nil
}

// buildBodies constructs every parallel-region body once. Each is a
// func(id int) handed straight to Team.Run; loop shares come from the
// team's schedule iterator inside the body and loop-variant scalars
// from Benchmark fields, so no closure is created in the timed loop.
// The reduction bodies iterate block-granularity chunks (ReduceBlocks)
// and store each chunk's partial under its block index, keeping
// PartialSum bit-identical to the static schedule whichever worker ran
// which block.
func (b *Benchmark) buildBodies() {
	n := b.p.na

	//npblint:hot vector init, constructed once and reused every conjGrad call
	b.initBody = func(id int) {
		x, z, p, q, r := b.x, b.z, b.pv, b.q, b.r
		for it := b.tm.Loop(id, 0, n); it.Next(); {
			for i := it.Lo; i < it.Hi; i++ {
				q[i] = 0
				z[i] = 0
				r[i] = x[i]
				p[i] = x[i]
			}
		}
	}

	//npblint:hot sparse mat-vec q = A p, the kernel of every inner iteration
	b.spmvPQBody = func(id int) {
		rowstr, colidx, a := b.rowstr, b.colidx, b.a
		in, out := b.pv, b.q
		for it := b.tm.Loop(id, 0, n); it.Next(); {
			for i := it.Lo; i < it.Hi; i++ {
				sum := 0.0
				for k := rowstr[i]; k < rowstr[i+1]; k++ {
					sum += a[k] * in[colidx[k]]
				}
				out[i] = sum
			}
		}
	}

	//npblint:hot sparse mat-vec r = A z for the residual norm
	b.spmvZRBody = func(id int) {
		rowstr, colidx, a := b.rowstr, b.colidx, b.a
		in, out := b.z, b.r
		for it := b.tm.Loop(id, 0, n); it.Next(); {
			for i := it.Lo; i < it.Hi; i++ {
				sum := 0.0
				for k := rowstr[i]; k < rowstr[i+1]; k++ {
					sum += a[k] * in[colidx[k]]
				}
				out[i] = sum
			}
		}
	}

	//npblint:hot z/r update with the iteration's alpha read from the Benchmark
	b.axpyBody = func(id int) {
		alpha := b.alpha
		z, r, p, q := b.z, b.r, b.pv, b.q
		for it := b.tm.Loop(id, 0, n); it.Next(); {
			for i := it.Lo; i < it.Hi; i++ {
				z[i] += alpha * p[i]
				r[i] -= alpha * q[i]
			}
		}
	}

	//npblint:hot search-direction update with the iteration's beta
	b.pUpdBody = func(id int) {
		beta := b.beta
		p, r := b.pv, b.r
		for it := b.tm.Loop(id, 0, n); it.Next(); {
			for i := it.Lo; i < it.Hi; i++ {
				p[i] = r[i] + beta*p[i]
			}
		}
	}

	//npblint:hot partial sums of ||x - A z||^2 into the block-indexed slots
	b.residBody = func(id int) {
		tm := b.tm
		x, r := b.x, b.r
		for it := tm.ReduceBlocks(id, 0, n); it.Next(); {
			s := 0.0
			for i := it.Lo; i < it.Hi; i++ {
				d := x[i] - r[i]
				s += d * d
			}
			*tm.Partial(it.Chunk()) = s
		}
	}

	//npblint:hot x = z/||z|| with the norm's reciprocal read from the Benchmark
	b.scaleBody = func(id int) {
		inv := b.scaleInv
		x, z := b.x, b.z
		for it := b.tm.Loop(id, 0, n); it.Next(); {
			for i := it.Lo; i < it.Hi; i++ {
				x[i] = inv * z[i]
			}
		}
	}

	//npblint:hot shared dot-product body over the operands staged in dotA/dotB
	b.dotBody = func(id int) {
		tm := b.tm
		u, v := b.dotA, b.dotB
		for it := tm.ReduceBlocks(id, 0, len(u)); it.Next(); {
			s := 0.0
			for i := it.Lo; i < it.Hi; i++ {
				s += u[i] * v[i]
			}
			*tm.Partial(it.Chunk()) = s
		}
	}

	//npblint:hot per-worker ballast streaming (no-op without WithBallast)
	b.ballastBody = func(id int) {
		bal := b.ballast[id]
		s := 0.0
		for i := range bal {
			s += bal[i]
			bal[i] = s * 0.5
		}
		*b.tm.Partial(id) = s
	}

	b.conjFn = func() float64 { return b.conjGrad() }
	b.normFn = func() float64 { b.normalize(); return 0 }
}

// NNZ returns the number of stored matrix nonzeros.
func (b *Benchmark) NNZ() int { return b.rowstr[b.p.na] }

// Result reports one CG run.
type Result struct {
	Zeta    float64
	RNorm   float64 // final residual norm ||x - A z||
	Elapsed time.Duration
	Mops    float64
	Verify  *verify.Report
	Timers  *timer.Set // per-phase profile when WithTimers was given
}

// Run executes the benchmark: one untimed feed-through iteration, then
// niter timed outer iterations, then verification, following cg.f.
func (b *Benchmark) Run() Result {
	tm := team.New(b.threads, team.WithRecorder(b.rec), team.WithTracer(b.tr), team.WithCounters(b.pc), team.WithSchedule(b.sched))
	defer tm.Close()
	if b.ctx != nil {
		stop := tm.WatchContext(b.ctx)
		defer stop()
	}
	if b.warmup {
		tm.Warmup(5_000_000)
	}
	b.tm = tm

	n := b.p.na

	// Untimed iteration to touch all data.
	for i := range b.x {
		b.x[i] = 1.0
	}
	b.conjGrad()
	b.normalize()

	// Reset and time.
	for i := range b.x {
		b.x[i] = 1.0
	}
	zeta := 0.0
	var rnorm float64
	start := time.Now()
	for it := 1; it <= b.p.niter; it++ {
		if tm.Cancelled() {
			break
		}
		z, rn, ok := b.Iter(tm)
		rnorm = rn
		if !ok {
			// The reductions of a cancelled team return 0, so zeta
			// derived from them would be garbage; keep the last complete
			// iteration's value instead.
			break
		}
		zeta = z
	}
	elapsed := time.Since(start)

	var res Result
	res.Zeta = zeta
	res.RNorm = rnorm
	res.Timers = b.timers
	res.Elapsed = elapsed
	// Standard NPB CG flop estimate per outer iteration.
	nzf := float64(b.NNZ())
	naf := float64(n)
	flops := float64(b.p.niter) * (2*float64(cgitmax)*(3+nzf+5*naf) + 3 + nzf + 8*naf + 5*naf)
	if s := elapsed.Seconds(); s > 0 {
		res.Mops = flops * 1e-6 / s
	}

	rep := &verify.Report{Tier: verify.TierOfficial}
	rep.AddTol("zeta", fault.CorruptFloat("cg.verify", zeta), b.p.zeta, 1e-10)
	res.Verify = rep
	return res
}

// timed charges fn's wall time to the named master-side phase timer
// and, when tracing, brackets it as a named phase span on the master
// timeline (a direct call when both are off). The name reaches the
// tracer as a parameter, so the Begin/End pairing is owned here —
// call sites cannot leak a phase.
func (b *Benchmark) timed(name string, fn func() float64) float64 {
	if b.timers == nil && b.tr == nil {
		return fn()
	}
	if b.tr != nil {
		b.tr.BeginPhase(name)
		defer b.tr.EndPhase(name)
	}
	if b.timers == nil {
		return fn()
	}
	b.timers.Start(name)
	v := fn()
	b.timers.Stop(name)
	return v
}

// Iter runs one timed outer iteration (conjGrad, the zeta update, and
// the normalization) on tm, whose Size must equal the thread count the
// Benchmark was built with. It returns the iteration's zeta and
// residual norm; ok is false when the team was cancelled mid-iteration,
// in which case zeta is meaningless. Iter is the steady-state hook the
// allocation gate measures: after the first call it performs no heap
// allocation.
func (b *Benchmark) Iter(tm *team.Team) (zeta, rnorm float64, ok bool) {
	b.tm = tm
	fault.Maybe("cg.iter")
	b.touchBallast()
	rnorm = b.timed("t_conj_grad", b.conjFn)
	if tm.Cancelled() {
		return 0, rnorm, false
	}
	norm1 := b.dot(b.x, b.z)
	zeta = b.p.shift + 1.0/norm1
	b.timed("t_norm", b.normFn)
	return zeta, rnorm, true
}

// touchBallast streams every worker through its ballast once, evicting
// the benchmark's real working set from the caches (a no-op without
// WithBallast).
func (b *Benchmark) touchBallast() {
	if b.ballast == nil {
		return
	}
	b.tm.Run(b.ballastBody)
}

// normalize scales z to unit norm into x (end of each outer iteration).
func (b *Benchmark) normalize() {
	norm2 := b.dot(b.z, b.z)
	b.scaleInv = 1.0 / math.Sqrt(norm2)
	b.tm.Run(b.scaleBody)
}

// conjGrad runs cgitmax CG iterations for the system A z = x and returns
// the residual norm ||x - A z||, as cg.f's conj_grad.
func (b *Benchmark) conjGrad() float64 {
	tm := b.tm

	tm.Run(b.initBody)
	rho := b.dot(b.r, b.r)

	for cgit := 1; cgit <= cgitmax; cgit++ {
		tm.Run(b.spmvPQBody)
		d := b.dot(b.pv, b.q)
		b.alpha = rho / d
		tm.Run(b.axpyBody)
		rho0 := rho
		rho = b.dot(b.r, b.r)
		b.beta = rho / rho0
		tm.Run(b.pUpdBody)
	}

	// rnorm = ||x - A z||.
	tm.Run(b.spmvZRBody)
	tm.Run(b.residBody)
	return math.Sqrt(tm.PartialSum())
}

// dot is a team-parallel dot product with deterministic partial
// combination: operands are staged on the Benchmark for the prebuilt
// body, partials land in the team's reduction slots, and PartialSum
// combines them in worker order — the same arithmetic as
// Team.ReduceSum without its per-call closure.
func (b *Benchmark) dot(u, v []float64) float64 {
	b.dotA, b.dotB = u, v
	b.tm.Run(b.dotBody)
	return b.tm.PartialSum()
}
