// Package cg implements the NPB CG kernel: a conjugate-gradient inverse
// power method estimating the smallest eigenvalue of a large sparse
// symmetric matrix with random pattern — the paper's representative of
// "unstructured" computation (irregular memory access through index
// vectors), which it contrasts with the structured-grid group.
//
// The paper's §5.2 spends most of its CG discussion on a scheduling
// anomaly: the JVM ran CG's lightly-loaded threads on only 1-2
// processors until each thread was given a large warmup load. The
// Warmup option reproduces that fix.
package cg

import (
	"context"
	"fmt"
	"math"
	"time"

	"npbgo/internal/fault"
	"npbgo/internal/obs"
	"npbgo/internal/team"
	"npbgo/internal/timer"
	"npbgo/internal/trace"
	"npbgo/internal/verify"
)

// params holds the per-class problem definition from cg.f.
type params struct {
	na     int
	nonzer int
	niter  int
	shift  float64
	zeta   float64 // official verification value
}

var classes = map[byte]params{
	'S': {1400, 7, 15, 10.0, 8.5971775078648},
	'W': {7000, 8, 15, 12.0, 10.362595087124},
	'A': {14000, 11, 15, 20.0, 17.130235054029},
	'B': {75000, 13, 75, 60.0, 22.712745482631},
	'C': {150000, 15, 75, 110.0, 28.973605592845},
}

const (
	rcond   = 0.1
	cgitmax = 25 // inner CG iterations per outer step
)

// Benchmark is a configured CG instance. The sparse matrix is generated
// by New so repeated Run calls time only the solver.
type Benchmark struct {
	Class   byte
	p       params
	threads int
	warmup  bool
	ctx     context.Context // nil means not cancellable
	rec     *obs.Recorder   // nil without WithObs
	tr      *trace.Tracer   // nil without WithTrace
	timers  *timer.Set      // nil without WithTimers

	ballastBytes int
	ballast      [][]float64 // per-worker ballast, nil without WithBallast

	rowstr []int
	colidx []int
	a      []float64

	x, z, pv, q, r []float64
}

// Option configures optional benchmark behaviour.
type Option func(*Benchmark)

// WithWarmup enables the per-thread initialization load of §5.2.
func WithWarmup() Option { return func(b *Benchmark) { b.warmup = true } }

// WithObs attaches a runtime-metrics recorder to the run's team:
// per-worker busy and barrier-wait times, region counts and the
// imbalance ratio — the instrumentation the paper's §5.2 CG diagnosis
// was made with.
func WithObs(rec *obs.Recorder) Option { return func(b *Benchmark) { b.rec = rec } }

// WithTrace attaches an execution tracer to the run's team: per-worker
// event timelines (region blocks, barrier and pipeline waits),
// exportable as Chrome/Perfetto JSON — the when-view that complements
// the obs layer's how-much totals.
func WithTrace(tr *trace.Tracer) Option { return func(b *Benchmark) { b.tr = tr } }

// WithTimers enables the per-phase profile (t_conj_grad, t_norm), the
// cg.f timer slots the paper's profiling discussion uses.
func WithTimers() Option { return func(b *Benchmark) { b.timers = timer.NewSet() } }

// WithContext makes Run cancellable: when ctx expires the team is
// cancelled (unblocking any parked workers) and the timed outer loop
// stops within about one iteration, returning a partial result.
func WithContext(ctx context.Context) Option {
	return func(b *Benchmark) { b.ctx = ctx }
}

// WithBallast reproduces the paper's other §5.2 experiment: "an
// artificial increase in the memory use ... also resulted in a drop of
// scalability". Each worker is given bytes of ballast that the timed
// loop streams through once per outer iteration, inflating the
// benchmark's working set without changing its arithmetic.
func WithBallast(bytes int) Option {
	return func(b *Benchmark) { b.ballastBytes = bytes }
}

// New builds the CG benchmark for a class and thread count, generating
// the sparse matrix (the untimed setup phase).
func New(class byte, threads int, opts ...Option) (*Benchmark, error) {
	p, ok := classes[class]
	if !ok {
		return nil, fmt.Errorf("cg: unknown class %q", string(class))
	}
	if threads < 1 {
		return nil, fmt.Errorf("cg: threads %d < 1", threads)
	}
	b := &Benchmark{Class: class, p: p, threads: threads}
	for _, o := range opts {
		o(b)
	}
	b.rowstr, b.colidx, b.a = makea(p.na, p.nonzer, rcond, p.shift)
	if b.ballastBytes > 0 {
		words := b.ballastBytes / 8
		if words < 1 {
			words = 1
		}
		b.ballast = make([][]float64, threads)
		for i := range b.ballast {
			b.ballast[i] = make([]float64, words)
		}
	}
	n := p.na
	b.x = make([]float64, n)
	b.z = make([]float64, n)
	b.pv = make([]float64, n)
	b.q = make([]float64, n)
	b.r = make([]float64, n)
	return b, nil
}

// NNZ returns the number of stored matrix nonzeros.
func (b *Benchmark) NNZ() int { return b.rowstr[b.p.na] }

// Result reports one CG run.
type Result struct {
	Zeta    float64
	RNorm   float64 // final residual norm ||x - A z||
	Elapsed time.Duration
	Mops    float64
	Verify  *verify.Report
	Timers  *timer.Set // per-phase profile when WithTimers was given
}

// Run executes the benchmark: one untimed feed-through iteration, then
// niter timed outer iterations, then verification, following cg.f.
func (b *Benchmark) Run() Result {
	tm := team.New(b.threads, team.WithRecorder(b.rec), team.WithTracer(b.tr))
	defer tm.Close()
	if b.ctx != nil {
		stop := tm.WatchContext(b.ctx)
		defer stop()
	}
	if b.warmup {
		tm.Warmup(5_000_000)
	}

	n := b.p.na

	// Untimed iteration to touch all data.
	for i := range b.x {
		b.x[i] = 1.0
	}
	b.conjGrad(tm)
	b.normalize(tm)

	// Reset and time.
	for i := range b.x {
		b.x[i] = 1.0
	}
	zeta := 0.0
	var rnorm float64
	start := time.Now()
	for it := 1; it <= b.p.niter; it++ {
		if tm.Cancelled() {
			break
		}
		fault.Maybe("cg.iter")
		b.touchBallast(tm)
		rnorm = b.timed("t_conj_grad", func() float64 { return b.conjGrad(tm) })
		if tm.Cancelled() {
			// The reductions of a cancelled team return 0, so rnorm and
			// any zeta derived from it would be garbage; keep the last
			// complete iteration's values instead.
			break
		}
		norm1 := dotBlocked(tm, b.x, b.z)
		zeta = b.p.shift + 1.0/norm1
		b.timed("t_norm", func() float64 { b.normalize(tm); return 0 })
	}
	elapsed := time.Since(start)

	var res Result
	res.Zeta = zeta
	res.RNorm = rnorm
	res.Timers = b.timers
	res.Elapsed = elapsed
	// Standard NPB CG flop estimate per outer iteration.
	nzf := float64(b.NNZ())
	naf := float64(n)
	flops := float64(b.p.niter) * (2*float64(cgitmax)*(3+nzf+5*naf) + 3 + nzf + 8*naf + 5*naf)
	if s := elapsed.Seconds(); s > 0 {
		res.Mops = flops * 1e-6 / s
	}

	rep := &verify.Report{Tier: verify.TierOfficial}
	rep.AddTol("zeta", fault.CorruptFloat("cg.verify", zeta), b.p.zeta, 1e-10)
	res.Verify = rep
	return res
}

// timed charges fn's wall time to the named master-side phase timer
// and, when tracing, brackets it as a named phase span on the master
// timeline (a direct call when both are off). The name reaches the
// tracer as a parameter, so the Begin/End pairing is owned here —
// call sites cannot leak a phase.
func (b *Benchmark) timed(name string, fn func() float64) float64 {
	if b.timers == nil && b.tr == nil {
		return fn()
	}
	if b.tr != nil {
		b.tr.BeginPhase(name)
		defer b.tr.EndPhase(name)
	}
	if b.timers == nil {
		return fn()
	}
	b.timers.Start(name)
	v := fn()
	b.timers.Stop(name)
	return v
}

// touchBallast streams every worker through its ballast once, evicting
// the benchmark's real working set from the caches (a no-op without
// WithBallast).
func (b *Benchmark) touchBallast(tm *team.Team) {
	if b.ballast == nil {
		return
	}
	tm.Run(func(id int) {
		bal := b.ballast[id]
		s := 0.0
		for i := range bal {
			s += bal[i]
			bal[i] = s * 0.5
		}
		*tm.Partial(id) = s
	})
}

// normalize scales z to unit norm into x (end of each outer iteration).
func (b *Benchmark) normalize(tm *team.Team) {
	norm2 := dotBlocked(tm, b.z, b.z)
	inv := 1.0 / math.Sqrt(norm2)
	x, z := b.x, b.z
	tm.ForBlock(0, len(x), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			x[i] = inv * z[i]
		}
	})
}

// conjGrad runs cgitmax CG iterations for the system A z = x and returns
// the residual norm ||x - A z||, as cg.f's conj_grad.
func (b *Benchmark) conjGrad(tm *team.Team) float64 {
	n := b.p.na
	x, z, p, q, r := b.x, b.z, b.pv, b.q, b.r

	tm.ForBlock(0, n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			q[i] = 0
			z[i] = 0
			r[i] = x[i]
			p[i] = x[i]
		}
	})
	rho := dotBlocked(tm, r, r)

	for cgit := 1; cgit <= cgitmax; cgit++ {
		b.spmv(tm, p, q)
		d := dotBlocked(tm, p, q)
		alpha := rho / d
		tm.ForBlock(0, n, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				z[i] += alpha * p[i]
				r[i] -= alpha * q[i]
			}
		})
		rho0 := rho
		rho = dotBlocked(tm, r, r)
		beta := rho / rho0
		tm.ForBlock(0, n, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				p[i] = r[i] + beta*p[i]
			}
		})
	}

	// rnorm = ||x - A z||.
	b.spmv(tm, z, r)
	sum := tm.ReduceSum(0, n, func(lo, hi int) float64 {
		s := 0.0
		for i := lo; i < hi; i++ {
			d := x[i] - r[i]
			s += d * d
		}
		return s
	})
	return math.Sqrt(sum)
}

// spmv computes out = A * in with rows statically split over the team —
// the irregular-access kernel that defines CG's memory behaviour.
func (b *Benchmark) spmv(tm *team.Team, in, out []float64) {
	rowstr, colidx, a := b.rowstr, b.colidx, b.a
	tm.ForBlock(0, b.p.na, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			sum := 0.0
			for k := rowstr[i]; k < rowstr[i+1]; k++ {
				sum += a[k] * in[colidx[k]]
			}
			out[i] = sum
		}
	})
}

// dotBlocked is a team-parallel dot product with deterministic partial
// combination.
func dotBlocked(tm *team.Team, a, b []float64) float64 {
	return tm.ReduceSum(0, len(a), func(lo, hi int) float64 {
		s := 0.0
		for i := lo; i < hi; i++ {
			s += a[i] * b[i]
		}
		return s
	})
}
