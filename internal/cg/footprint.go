package cg

import "fmt"

// Footprint estimates the peak working-set bytes a CG run of the given
// class allocates. The matrix build (makea) is the peak: the NPB bound
// of na·(nonzer+1)² stored nonzeros exists both as row-bucket triplets
// (24 bytes each) and as the assembled CSR arrays (16 bytes each)
// before the buckets are released. The solver vectors add 6·na words.
// Feeds the harness memory admission guard; dominant arrays only.
func Footprint(class byte, threads int) (uint64, error) {
	p, ok := classes[class]
	if !ok {
		return 0, fmt.Errorf("cg: unknown class %q", string(class))
	}
	_ = threads // per-thread state is O(1); ballast is test-only
	na := uint64(p.na)
	nz := na * uint64(p.nonzer+1) * uint64(p.nonzer+1)
	build := nz * (24 + 16) // triplet buckets + CSR (a float64, colidx int)
	vectors := na * 8 * 6   // x,z,pv,q,r + rowstr
	return build + vectors, nil
}
