package cg

import (
	"math"
	"testing"
)

// lap1d builds the n x n tridiagonal Laplacian plus c on the diagonal.
func lap1d(n int, c float64) (rowstr, colidx []int, a []float64) {
	rowstr = make([]int, n+1)
	for i := 0; i < n; i++ {
		rowstr[i] = len(a)
		if i > 0 {
			colidx = append(colidx, i-1)
			a = append(a, -1)
		}
		colidx = append(colidx, i)
		a = append(a, 2+c)
		if i < n-1 {
			colidx = append(colidx, i+1)
			a = append(a, -1)
		}
	}
	rowstr[n] = len(a)
	return
}

// diagMatrix builds diag(d1..dn) in CSR form: its spectrum is exactly
// the diagonal, giving the inverse power method a strong eigen-gap.
func diagMatrix(d []float64) (rowstr, colidx []int, a []float64) {
	n := len(d)
	rowstr = make([]int, n+1)
	colidx = make([]int, n)
	a = make([]float64, n)
	for i := 0; i < n; i++ {
		rowstr[i] = i
		colidx[i] = i
		a[i] = d[i]
	}
	rowstr[n] = n
	return
}

func TestEstimateSmallestEigenvalueKnownSpectrum(t *testing.T) {
	d := make([]float64, 60)
	for i := range d {
		d[i] = 20.0 + float64(i) // spectrum 20..79 ...
	}
	d[0] = 2.0 // ... with an isolated smallest eigenvalue at 2
	rowstr, colidx, a := diagMatrix(d)
	res, err := EstimateSmallestEigenvalue(len(d), rowstr, colidx, a, 0, 25, 2)
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(res.Eigenvalue-2.0) / 2.0; rel > 1e-10 {
		t.Fatalf("estimate %v vs exact 2 (rel %v)", res.Eigenvalue, rel)
	}
	if len(res.History) != 25 {
		t.Fatalf("history has %d entries", len(res.History))
	}
}

func TestEstimateWithShift(t *testing.T) {
	// Shifting below the spectrum must converge to the same eigenvalue.
	d := make([]float64, 40)
	for i := range d {
		d[i] = 30.0 + float64(i) // spectrum 30..69 ...
	}
	d[0] = 3.0 // ... with an isolated smallest eigenvalue at 3
	rowstr, colidx, a := diagMatrix(d)
	r0, err := EstimateSmallestEigenvalue(len(d), rowstr, colidx, a, 0, 25, 1)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := EstimateSmallestEigenvalue(len(d), rowstr, colidx, a, 1.5, 25, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r0.Eigenvalue-r1.Eigenvalue) > 1e-8 {
		t.Fatalf("shifted estimate %v != unshifted %v", r1.Eigenvalue, r0.Eigenvalue)
	}
}

func TestEstimateLaplacianConverges(t *testing.T) {
	// The 1-D Laplacian + I has a weak eigen-gap; check monotone
	// convergence toward the exact value rather than tight accuracy.
	const n = 30
	rowstr, colidx, a := lap1d(n, 1.0)
	res, err := EstimateSmallestEigenvalue(n, rowstr, colidx, a, 0, 40, 1)
	if err != nil {
		t.Fatal(err)
	}
	exact := 1 + 2 - 2*math.Cos(math.Pi/float64(n+1))
	errLate := math.Abs(res.History[len(res.History)-1] - exact)
	errEarly := math.Abs(res.History[4] - exact)
	if errLate > errEarly {
		t.Fatalf("estimate diverging: early %v late %v", errEarly, errLate)
	}
	if rel := errLate / exact; rel > 5e-2 {
		t.Fatalf("estimate %v too far from exact %v", res.Eigenvalue, exact)
	}
}

func TestEstimateRejectsBadInput(t *testing.T) {
	rowstr, colidx, a := lap1d(10, 1.0)
	if _, err := EstimateSmallestEigenvalue(11, rowstr, colidx, a, 0, 5, 1); err == nil {
		t.Fatal("wrong n accepted")
	}
	if _, err := EstimateSmallestEigenvalue(10, rowstr, colidx, a, 0, 0, 1); err == nil {
		t.Fatal("zero iterations accepted")
	}
	if _, err := EstimateSmallestEigenvalue(10, rowstr, colidx, a[:len(a)-1], 0, 5, 1); err == nil {
		t.Fatal("inconsistent CSR accepted")
	}
	// Matrix with no stored diagonal cannot be shifted.
	rs := []int{0, 1, 2}
	ci := []int{1, 0}
	av := []float64{1, 1}
	if _, err := EstimateSmallestEigenvalue(2, rs, ci, av, 0.5, 5, 1); err == nil {
		t.Fatal("missing diagonal accepted with shift")
	}
}
