package timer

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestStartStopAccumulates(t *testing.T) {
	s := NewSet()
	s.Start("phase")
	time.Sleep(5 * time.Millisecond)
	s.Stop("phase")
	first := s.Elapsed("phase")
	if first <= 0 {
		t.Fatalf("elapsed %v not positive", first)
	}
	s.Start("phase")
	time.Sleep(5 * time.Millisecond)
	s.Stop("phase")
	if s.Elapsed("phase") <= first {
		t.Fatalf("second lap did not accumulate: %v then %v", first, s.Elapsed("phase"))
	}
}

func TestStopWithoutStartIsNoop(t *testing.T) {
	s := NewSet()
	s.Stop("missing")
	if s.Elapsed("missing") != 0 {
		t.Fatalf("unexpected elapsed %v", s.Elapsed("missing"))
	}
}

func TestElapsedExcludesRunningLap(t *testing.T) {
	s := NewSet()
	s.Start("p")
	if s.Elapsed("p") != 0 {
		t.Fatalf("running lap leaked into Elapsed: %v", s.Elapsed("p"))
	}
	s.Stop("p")
}

func TestNamesInFirstStartOrder(t *testing.T) {
	s := NewSet()
	for _, n := range []string{"total", "rhs", "xsolve", "rhs"} {
		s.Start(n)
		s.Stop(n)
	}
	got := s.Names()
	want := []string{"total", "rhs", "xsolve"}
	if len(got) != len(want) {
		t.Fatalf("names %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("names %v, want %v", got, want)
		}
	}
}

func TestClear(t *testing.T) {
	s := NewSet()
	s.Start("a")
	s.Stop("a")
	s.Clear()
	if len(s.Names()) != 0 || s.Elapsed("a") != 0 {
		t.Fatalf("Clear did not reset: names=%v elapsed=%v", s.Names(), s.Elapsed("a"))
	}
}

func TestSortedByElapsed(t *testing.T) {
	s := NewSet()
	s.Start("short")
	s.Stop("short")
	s.Start("long")
	time.Sleep(3 * time.Millisecond)
	s.Stop("long")
	got := s.SortedByElapsed()
	if got[0] != "long" {
		t.Fatalf("SortedByElapsed = %v, want long first", got)
	}
}

func TestStringContainsNames(t *testing.T) {
	s := NewSet()
	s.Start("total")
	s.Stop("total")
	if !strings.Contains(s.String(), "total") {
		t.Fatalf("String() missing timer name: %q", s.String())
	}
}

func TestLapsCounted(t *testing.T) {
	s := NewSet()
	for i := 0; i < 3; i++ {
		s.Start("p")
		s.Stop("p")
	}
	s.Stop("p") // no-op: not running, must not count a lap
	if got := s.Laps("p"); got != 3 {
		t.Fatalf("Laps = %d, want 3", got)
	}
	if got := s.Laps("missing"); got != 0 {
		t.Fatalf("Laps(missing) = %d, want 0", got)
	}
}

func TestPhasesStructuredProfile(t *testing.T) {
	s := NewSet()
	s.Start("total")
	s.Start("rhs")
	time.Sleep(2 * time.Millisecond)
	s.Stop("rhs")
	s.Stop("total")
	ph := s.Phases()
	if len(ph) != 2 || ph[0].Name != "total" || ph[1].Name != "rhs" {
		t.Fatalf("Phases order = %+v, want total then rhs", ph)
	}
	if ph[1].Seconds <= 0 || ph[1].Laps != 1 {
		t.Fatalf("rhs phase = %+v, want positive seconds and 1 lap", ph[1])
	}
}

func TestWorkerName(t *testing.T) {
	if got := Worker("t_batch", 3); got != "t_batch/w3" {
		t.Fatalf("Worker = %q", got)
	}
}

// TestConcurrentSetRaceClean exercises a concurrent-mode Set from many
// goroutines at once, each charging its own per-worker phase names plus
// one shared read path; run under -race (the Makefile race target) this
// is the regression test for the thread-safe mode.
func TestConcurrentSetRaceClean(t *testing.T) {
	s := NewConcurrentSet()
	if !s.Concurrent() {
		t.Fatal("NewConcurrentSet not in concurrent mode")
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			name := Worker("t_phase", w)
			for i := 0; i < 200; i++ {
				s.Start(name)
				s.Stop(name)
				_ = s.Elapsed(name)
				_ = s.Laps(name)
			}
			_ = s.Names()
			_ = s.Phases()
			_ = s.SortedByElapsed()
			_ = s.String()
		}(w)
	}
	wg.Wait()
	for w := 0; w < 8; w++ {
		if got := s.Laps(Worker("t_phase", w)); got != 200 {
			t.Fatalf("worker %d laps = %d, want 200", w, got)
		}
	}
}
