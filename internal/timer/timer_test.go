package timer

import (
	"strings"
	"testing"
	"time"
)

func TestStartStopAccumulates(t *testing.T) {
	s := NewSet()
	s.Start("phase")
	time.Sleep(5 * time.Millisecond)
	s.Stop("phase")
	first := s.Elapsed("phase")
	if first <= 0 {
		t.Fatalf("elapsed %v not positive", first)
	}
	s.Start("phase")
	time.Sleep(5 * time.Millisecond)
	s.Stop("phase")
	if s.Elapsed("phase") <= first {
		t.Fatalf("second lap did not accumulate: %v then %v", first, s.Elapsed("phase"))
	}
}

func TestStopWithoutStartIsNoop(t *testing.T) {
	s := NewSet()
	s.Stop("missing")
	if s.Elapsed("missing") != 0 {
		t.Fatalf("unexpected elapsed %v", s.Elapsed("missing"))
	}
}

func TestElapsedExcludesRunningLap(t *testing.T) {
	s := NewSet()
	s.Start("p")
	if s.Elapsed("p") != 0 {
		t.Fatalf("running lap leaked into Elapsed: %v", s.Elapsed("p"))
	}
	s.Stop("p")
}

func TestNamesInFirstStartOrder(t *testing.T) {
	s := NewSet()
	for _, n := range []string{"total", "rhs", "xsolve", "rhs"} {
		s.Start(n)
		s.Stop(n)
	}
	got := s.Names()
	want := []string{"total", "rhs", "xsolve"}
	if len(got) != len(want) {
		t.Fatalf("names %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("names %v, want %v", got, want)
		}
	}
}

func TestClear(t *testing.T) {
	s := NewSet()
	s.Start("a")
	s.Stop("a")
	s.Clear()
	if len(s.Names()) != 0 || s.Elapsed("a") != 0 {
		t.Fatalf("Clear did not reset: names=%v elapsed=%v", s.Names(), s.Elapsed("a"))
	}
}

func TestSortedByElapsed(t *testing.T) {
	s := NewSet()
	s.Start("short")
	s.Stop("short")
	s.Start("long")
	time.Sleep(3 * time.Millisecond)
	s.Stop("long")
	got := s.SortedByElapsed()
	if got[0] != "long" {
		t.Fatalf("SortedByElapsed = %v, want long first", got)
	}
}

func TestStringContainsNames(t *testing.T) {
	s := NewSet()
	s.Start("total")
	s.Stop("total")
	if !strings.Contains(s.String(), "total") {
		t.Fatalf("String() missing timer name: %q", s.String())
	}
}
