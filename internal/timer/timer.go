// Package timer provides the NPB-style set of named stopwatch timers
// (t_total, t_rhs, ... in the Fortran sources). Each benchmark owns a Set
// and charges phases to slots; the harness reads the totals to build the
// per-phase profiles discussed in the paper's profiling sections.
//
// A Set created with NewSet is unsynchronized, matching the master-only
// charging the pseudo-applications do. NewConcurrentSet returns a
// thread-safe Set for per-worker phase capture (each worker charging
// its own names, e.g. timer.Worker("t_batch", id)) — the per-thread
// profiles the paper's anomaly hunts needed. Every completed lap is
// counted, so a phase profile reports both where time went and how many
// times each phase ran.
package timer

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Set is a collection of named stopwatch timers. The zero value is not
// ready to use; create one with NewSet or NewConcurrentSet.
type Set struct {
	mu      sync.Mutex
	locked  bool // concurrent mode: public methods take mu
	elapsed map[string]time.Duration
	started map[string]time.Time
	laps    map[string]int
	order   []string
}

// NewSet returns an empty, unsynchronized timer set for single-
// goroutine (master-side) phase charging.
func NewSet() *Set {
	return &Set{
		elapsed: make(map[string]time.Duration),
		started: make(map[string]time.Time),
		laps:    make(map[string]int),
	}
}

// NewConcurrentSet returns an empty timer set in thread-safe mode:
// every method is safe for concurrent use, so region bodies can charge
// per-worker phases (use distinct names per worker — two workers
// start/stopping the same name would overwrite each other's lap).
func NewConcurrentSet() *Set {
	s := NewSet()
	s.locked = true
	return s
}

// Concurrent reports whether the set is in thread-safe mode.
func (s *Set) Concurrent() bool { return s.locked }

// Worker derives the conventional per-worker phase name, "name/w<id>".
func Worker(name string, id int) string { return fmt.Sprintf("%s/w%d", name, id) }

func (s *Set) lock() {
	if s.locked {
		s.mu.Lock()
	}
}

func (s *Set) unlock() {
	if s.locked {
		s.mu.Unlock()
	}
}

// Clear zeroes the accumulated time and lap counts of every timer.
func (s *Set) Clear() {
	s.lock()
	defer s.unlock()
	for k := range s.elapsed {
		delete(s.elapsed, k)
	}
	for k := range s.started {
		delete(s.started, k)
	}
	for k := range s.laps {
		delete(s.laps, k)
	}
	s.order = s.order[:0]
}

// Start begins (or resumes) the named timer. Starting an already-running
// timer restarts its current lap without losing accumulated time.
func (s *Set) Start(name string) {
	s.lock()
	defer s.unlock()
	if _, seen := s.elapsed[name]; !seen {
		s.elapsed[name] = 0
		s.order = append(s.order, name)
	}
	s.started[name] = time.Now()
}

// Stop ends the current lap of the named timer, adding the lap to its
// accumulated total and incrementing its lap count. Stopping a timer
// that is not running is a no-op.
func (s *Set) Stop(name string) {
	s.lock()
	defer s.unlock()
	t0, ok := s.started[name]
	if !ok {
		return
	}
	delete(s.started, name)
	s.elapsed[name] += time.Since(t0)
	s.laps[name]++
}

// Elapsed reports the accumulated time of the named timer, excluding any
// lap still in progress.
func (s *Set) Elapsed(name string) time.Duration {
	s.lock()
	defer s.unlock()
	return s.elapsed[name]
}

// Seconds reports Elapsed in seconds, the unit the paper's tables use.
func (s *Set) Seconds(name string) float64 { return s.Elapsed(name).Seconds() }

// Laps reports how many completed Start/Stop laps the named timer has
// accumulated.
func (s *Set) Laps(name string) int {
	s.lock()
	defer s.unlock()
	return s.laps[name]
}

// Names returns the timer names in first-start order.
func (s *Set) Names() []string {
	s.lock()
	defer s.unlock()
	return s.namesLocked()
}

func (s *Set) namesLocked() []string {
	out := make([]string, len(s.order))
	copy(out, s.order)
	return out
}

// Phase is one structured profile entry: a timer's accumulated seconds
// and completed lap count.
type Phase struct {
	Name    string  `json:"name"`
	Seconds float64 `json:"seconds"`
	Laps    int     `json:"laps"`
}

// Phases returns the structured profile in first-start order — the
// machine-readable form of String, consumed by the harness's JSONL
// metrics records.
func (s *Set) Phases() []Phase {
	s.lock()
	defer s.unlock()
	out := make([]Phase, 0, len(s.order))
	for _, n := range s.order {
		out = append(out, Phase{Name: n, Seconds: s.elapsed[n].Seconds(), Laps: s.laps[n]})
	}
	return out
}

// String formats the set as an aligned profile table, phases in
// first-start order, suitable for the per-benchmark profiles.
func (s *Set) String() string {
	s.lock()
	defer s.unlock()
	var b strings.Builder
	names := s.namesLocked()
	width := 0
	for _, n := range names {
		if len(n) > width {
			width = len(n)
		}
	}
	for _, n := range names {
		fmt.Fprintf(&b, "%-*s %12.6f s  (%d laps)\n", width, n, s.elapsed[n].Seconds(), s.laps[n])
	}
	return b.String()
}

// SortedByElapsed returns timer names ordered by decreasing accumulated
// time — the "top phases" view used when profiling a benchmark.
func (s *Set) SortedByElapsed() []string {
	s.lock()
	defer s.unlock()
	names := s.namesLocked()
	sort.SliceStable(names, func(i, j int) bool {
		return s.elapsed[names[i]] > s.elapsed[names[j]]
	})
	return names
}
