// Package timer provides the NPB-style set of named stopwatch timers
// (t_total, t_rhs, ... in the Fortran sources). Each benchmark owns a Set
// and charges phases to slots; the harness reads the totals to build the
// per-phase profiles discussed in the paper's profiling sections.
package timer

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Set is a collection of named stopwatch timers. The zero value is not
// ready to use; create one with NewSet.
type Set struct {
	elapsed map[string]time.Duration
	started map[string]time.Time
	order   []string
}

// NewSet returns an empty timer set.
func NewSet() *Set {
	return &Set{
		elapsed: make(map[string]time.Duration),
		started: make(map[string]time.Time),
	}
}

// Clear zeroes the accumulated time of every timer.
func (s *Set) Clear() {
	for k := range s.elapsed {
		delete(s.elapsed, k)
	}
	for k := range s.started {
		delete(s.started, k)
	}
	s.order = s.order[:0]
}

// Start begins (or resumes) the named timer. Starting an already-running
// timer restarts its current lap without losing accumulated time.
func (s *Set) Start(name string) {
	if _, seen := s.elapsed[name]; !seen {
		s.elapsed[name] = 0
		s.order = append(s.order, name)
	}
	s.started[name] = time.Now()
}

// Stop ends the current lap of the named timer, adding the lap to its
// accumulated total. Stopping a timer that is not running is a no-op.
func (s *Set) Stop(name string) {
	t0, ok := s.started[name]
	if !ok {
		return
	}
	delete(s.started, name)
	s.elapsed[name] += time.Since(t0)
}

// Elapsed reports the accumulated time of the named timer, excluding any
// lap still in progress.
func (s *Set) Elapsed(name string) time.Duration { return s.elapsed[name] }

// Seconds reports Elapsed in seconds, the unit the paper's tables use.
func (s *Set) Seconds(name string) float64 { return s.elapsed[name].Seconds() }

// Names returns the timer names in first-start order.
func (s *Set) Names() []string {
	out := make([]string, len(s.order))
	copy(out, s.order)
	return out
}

// String formats the set as an aligned profile table, phases in
// first-start order, suitable for the per-benchmark profiles.
func (s *Set) String() string {
	var b strings.Builder
	names := s.Names()
	width := 0
	for _, n := range names {
		if len(n) > width {
			width = len(n)
		}
	}
	for _, n := range names {
		fmt.Fprintf(&b, "%-*s %12.6f s\n", width, n, s.Seconds(n))
	}
	return b.String()
}

// SortedByElapsed returns timer names ordered by decreasing accumulated
// time — the "top phases" view used when profiling a benchmark.
func (s *Set) SortedByElapsed() []string {
	names := s.Names()
	sort.SliceStable(names, func(i, j int) bool {
		return s.elapsed[names[i]] > s.elapsed[names[j]]
	})
	return names
}
