// Package randdp implements the NAS Parallel Benchmarks portable
// pseudorandom number generator (the Fortran routines randlc and vranlc
// from NPB2.3-serial), a 48-bit linear congruential generator
//
//	x_{k+1} = a * x_k  (mod 2^46)
//
// evaluated exactly in IEEE double precision arithmetic. All NPB
// benchmarks that need random input (EP, CG's makea, FT's initial
// conditions, IS key generation, MG's zran3) share this generator, so its
// bit-exact behaviour is what makes benchmark runs deterministic and
// verifiable across languages — the Java translation studied in the paper
// uses the same arithmetic.
package randdp

// Modulus constants: r23 = 2^-23, t23 = 2^23, r46 = 2^-46, t46 = 2^46.
const (
	r23 = 0.5 * 0.5 * 0.5 * 0.5 * 0.5 * 0.5 * 0.5 * 0.5 * 0.5 * 0.5 * 0.5 * 0.5 * 0.5 * 0.5 * 0.5 * 0.5 * 0.5 * 0.5 * 0.5 * 0.5 * 0.5 * 0.5 * 0.5
	t23 = 2.0 * 2.0 * 2.0 * 2.0 * 2.0 * 2.0 * 2.0 * 2.0 * 2.0 * 2.0 * 2.0 * 2.0 * 2.0 * 2.0 * 2.0 * 2.0 * 2.0 * 2.0 * 2.0 * 2.0 * 2.0 * 2.0 * 2.0
	r46 = r23 * r23
	t46 = t23 * t23
)

// DefaultSeed is the seed used by most NPB benchmarks.
const DefaultSeed = 314159265.0

// A is the standard NPB multiplier 5^13.
const A = 1220703125.0

// Randlc advances *x to the next element of the LCG sequence with
// multiplier a and returns the result scaled into (0, 1). It is a literal
// transcription of the NPB randlc function: the 46-bit product a*x is
// formed from 23-bit halves using only double precision arithmetic.
func Randlc(x *float64, a float64) float64 {
	// Break a into two parts such that a = 2^23 * a1 + a2.
	t1 := r23 * a
	a1 := float64(int64(t1))
	a2 := a - t23*a1

	// Break x into two parts such that x = 2^23 * x1 + x2, compute
	// z = a1 * x2 + a2 * x1 (mod 2^23), and then
	// a*x = 2^23 * z + a2 * x2 (mod 2^46).
	t1 = r23 * *x
	x1 := float64(int64(t1))
	x2 := *x - t23*x1
	t1 = a1*x2 + a2*x1
	t2 := float64(int64(r23 * t1))
	z := t1 - t23*t2
	t3 := t23*z + a2*x2
	t4 := float64(int64(r46 * t3))
	*x = t3 - t46*t4
	return r46 * *x
}

// Vranlc fills y[:n] with the next n elements of the sequence, advancing
// *x n times. It matches the NPB vranlc routine.
func Vranlc(n int, x *float64, a float64, y []float64) {
	t1 := r23 * a
	a1 := float64(int64(t1))
	a2 := a - t23*a1

	for i := 0; i < n; i++ {
		t1 = r23 * *x
		x1 := float64(int64(t1))
		x2 := *x - t23*x1
		t1 = a1*x2 + a2*x1
		t2 := float64(int64(r23 * t1))
		z := t1 - t23*t2
		t3 := t23*z + a2*x2
		t4 := float64(int64(r46 * t3))
		*x = t3 - t46*t4
		y[i] = r46 * *x
	}
}

// Ipow46 computes a^exponent (mod 2^46) in double precision, the NPB
// ipow46 helper used to jump the generator ahead (e.g. to give each
// worker thread an independent, reproducible subsequence in EP and FT).
func Ipow46(a float64, exponent int) float64 {
	result := 1.0
	if exponent == 0 {
		return result
	}
	q := a
	r := 1.0
	n := exponent
	for n > 1 {
		n2 := n / 2
		if n2*2 == n {
			Randlc(&q, q) // q = q*q mod 2^46
			n = n2
		} else {
			Randlc(&r, q) // r = r*q mod 2^46
			n = n - 1
		}
	}
	Randlc(&r, q)
	return r
}

// Stream is a convenience wrapper holding generator state, handy for Go
// callers that prefer methods over the Fortran-style pointer API.
type Stream struct {
	x float64
	a float64
}

// NewStream returns a Stream seeded with seed and multiplier a.
// A zero multiplier selects the standard NPB multiplier 5^13.
func NewStream(seed, a float64) *Stream {
	if a == 0 {
		a = A
	}
	return &Stream{x: seed, a: a}
}

// Next returns the next pseudorandom double in (0, 1).
func (s *Stream) Next() float64 { return Randlc(&s.x, s.a) }

// Fill fills y with len(y) pseudorandom doubles in (0, 1).
func (s *Stream) Fill(y []float64) { Vranlc(len(y), &s.x, s.a, y) }

// Seed returns the current raw 46-bit state.
func (s *Stream) Seed() float64 { return s.x }

// Skip jumps the stream ahead by n positions in O(log n) time.
func (s *Stream) Skip(n int) {
	if n <= 0 {
		return
	}
	an := Ipow46(s.a, n)
	Randlc(&s.x, an)
}
