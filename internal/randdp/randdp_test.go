package randdp

import (
	"math"
	"testing"
	"testing/quick"
)

// The generator is fully deterministic; the first few values from the
// canonical seed/multiplier pair are fixed by the recurrence
// x_{k+1} = 5^13 x_k mod 2^46 and can be computed independently with
// exact integer arithmetic. knownSequence does that with math/big-free
// 128-bit-ish arithmetic using uint64 (5^13 * x fits in 87 bits, so split
// the multiply).
func refNext(x uint64) uint64 {
	const a = 1220703125 // 5^13 < 2^31
	const mod = uint64(1) << 46
	// a*x mod 2^46 with x < 2^46: split x into 23-bit halves.
	lo := x & ((1 << 23) - 1)
	hi := x >> 23
	// a*x = a*hi*2^23 + a*lo. a*hi can be up to 2^31*2^23=2^54: fine.
	return ((a*hi%(1<<23))<<23 + a*lo) % mod
}

func TestRandlcMatchesIntegerReference(t *testing.T) {
	x := DefaultSeed
	xi := uint64(DefaultSeed)
	for i := 0; i < 10000; i++ {
		got := Randlc(&x, A)
		xi = refNext(xi)
		want := float64(xi) / float64(uint64(1)<<46)
		if got != want {
			t.Fatalf("step %d: Randlc = %.17g, integer reference = %.17g", i, got, want)
		}
		if uint64(x) != xi {
			t.Fatalf("step %d: state %v != reference %d", i, x, xi)
		}
	}
}

func TestVranlcMatchesRandlc(t *testing.T) {
	x1 := DefaultSeed
	x2 := DefaultSeed
	const n = 4096
	y := make([]float64, n)
	Vranlc(n, &x1, A, y)
	for i := 0; i < n; i++ {
		want := Randlc(&x2, A)
		if y[i] != want {
			t.Fatalf("element %d: Vranlc = %v, Randlc = %v", i, y[i], want)
		}
	}
	if x1 != x2 {
		t.Fatalf("final states differ: %v vs %v", x1, x2)
	}
}

func TestValuesInUnitInterval(t *testing.T) {
	s := NewStream(DefaultSeed, 0)
	for i := 0; i < 100000; i++ {
		v := s.Next()
		if v <= 0 || v >= 1 {
			t.Fatalf("value %d out of (0,1): %v", i, v)
		}
	}
}

func TestIpow46MatchesRepeatedMultiplication(t *testing.T) {
	for _, n := range []int{0, 1, 2, 3, 7, 16, 100, 12345} {
		want := 1.0
		if n > 0 {
			x := 1.0
			for i := 0; i < n; i++ {
				Randlc(&x, A) // x = A^i+1 mod 2^46 since x started at 1
			}
			want = x
		}
		got := Ipow46(A, n)
		if got != want {
			t.Fatalf("Ipow46(A,%d) = %v, repeated mult = %v", n, got, want)
		}
	}
}

func TestStreamSkip(t *testing.T) {
	for _, n := range []int{1, 2, 17, 1000} {
		a := NewStream(DefaultSeed, 0)
		b := NewStream(DefaultSeed, 0)
		a.Skip(n)
		for i := 0; i < n; i++ {
			b.Next()
		}
		if a.Seed() != b.Seed() {
			t.Fatalf("Skip(%d) state %v != %v from %d Next calls", n, a.Seed(), b.Seed(), n)
		}
	}
}

func TestSkipProperty(t *testing.T) {
	f := func(seed uint32, n uint16) bool {
		start := float64(seed%100000) + 1
		a := NewStream(start, 0)
		b := NewStream(start, 0)
		k := int(n % 2048)
		a.Skip(k)
		for i := 0; i < k; i++ {
			b.Next()
		}
		return a.Seed() == b.Seed()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestMeanRoughlyHalf(t *testing.T) {
	// A weak statistical check: the mean of 1e5 samples should be close
	// to 0.5 (the generator has period 2^44, uniform over (0,1)).
	s := NewStream(DefaultSeed, 0)
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		sum += s.Next()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.005 {
		t.Fatalf("mean %v too far from 0.5", mean)
	}
}

func BenchmarkRandlc(b *testing.B) {
	x := DefaultSeed
	for i := 0; i < b.N; i++ {
		Randlc(&x, A)
	}
}

func BenchmarkVranlc(b *testing.B) {
	x := DefaultSeed
	y := make([]float64, 1024)
	b.SetBytes(1024 * 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Vranlc(len(y), &x, A, y)
	}
}
