package fault

import "sort"

// knownSites is the registry of every injection site compiled into the
// suite. It is the single source of truth shared by the npblint
// faultsite analyzer (which rejects site-key literals not listed
// here), `npbsuite -list-faults`, and the robustness docs.
//
// Adding a hook: call fault.Maybe/Corrupted/CorruptFloat with a new
// "<package>.<event>" literal AND list it here — `make lint` fails
// until both sides agree.
var knownSites = [...]string{
	"cg.iter",      // cg: top of each timed outer iteration
	"cg.verify",    // cg: zeta verification value
	"ep.batch",     // ep: per-worker batch loop
	"ep.verify",    // ep: sum verification values
	"harness.cell", // harness: each (benchmark, threads) cell run
	"team.region",  // team: entry of every parallel region body
}

// Sites returns the known injection site keys in sorted order. The
// sort is applied here rather than trusted from the declaration, so
// consumers that must be deterministic and diffable (`npbsuite
// -list-faults` in CI logs, the chaos scheduler's seeded draws) cannot
// be broken by an unsorted insertion above.
func Sites() []string {
	out := make([]string, len(knownSites))
	copy(out, knownSites[:])
	sort.Strings(out)
	return out
}
