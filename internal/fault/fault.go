// Package fault is a deterministic fault-injection registry for testing
// the suite's recovery paths without flaky timing. The paper's long
// multi-machine sweeps failed in partial ways (CG thread placement, FT
// out-of-memory, LU pipeline stalls — §5); reproducing the *handling* of
// such failures requires injecting them on demand.
//
// Injection is site-keyed: code under test calls fault.Maybe("cg.iter")
// at named sites, and a test activates a plan of rules naming the sites
// and the actions (panic, delay, value corruption) to perform on chosen
// visits. Rules fire by deterministic hit counting — "panic on the 3rd
// visit to this site" — with an optional seeded probability gate, so a
// given plan and seed always reproduces the same failure sequence.
//
// When no plan is active (the production configuration), every hook is a
// single atomic load and the registry costs nothing.
package fault

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// Kind selects what an injection rule does when it fires.
type Kind int

const (
	// KindPanic makes Maybe panic with an InjectedPanic value.
	KindPanic Kind = iota
	// KindDelay makes Maybe sleep for the rule's Sleep duration.
	KindDelay
	// KindCorrupt makes Corrupted report true (and CorruptFloat perturb
	// its argument), simulating a wrong verification value.
	KindCorrupt
)

func (k Kind) String() string {
	switch k {
	case KindPanic:
		return "panic"
	case KindDelay:
		return "delay"
	case KindCorrupt:
		return "corrupt"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Rule is one injection directive of a plan.
type Rule struct {
	Site  string        // site key the rule applies to, e.g. "cg.iter"
	Kind  Kind          // action to perform
	On    int           // 1-based hit index at which the rule becomes eligible; 0 means 1
	Count int           // firings allowed: 0 means once, negative means unlimited
	Sleep time.Duration // KindDelay: how long to sleep
	Prob  float64       // eligible-hit firing probability; 0 or >= 1 fires always
}

// InjectedPanic is the value a KindPanic rule panics with, so tests can
// distinguish injected failures from real bugs.
type InjectedPanic struct {
	Site string // the site that fired
	Hit  int    // the hit index it fired on
}

func (p InjectedPanic) String() string {
	return fmt.Sprintf("fault: injected panic at %s (hit %d)", p.Site, p.Hit)
}

// ruleState is a Rule plus its firing bookkeeping.
type ruleState struct {
	Rule
	fired int
}

var (
	active atomic.Bool // fast path: no plan active

	mu   sync.Mutex
	plan []*ruleState
	hits map[string]int
	rng  *rand.Rand
)

// Activate installs a plan of rules with the given seed (used only by
// probability-gated rules) and enables injection. It replaces any
// previous plan and resets all hit counters. Tests should pair it with
// a deferred Reset.
func Activate(seed int64, rules ...Rule) {
	mu.Lock()
	defer mu.Unlock()
	plan = nil
	for _, r := range rules {
		if r.On < 1 {
			r.On = 1
		}
		if r.Count == 0 {
			r.Count = 1
		}
		plan = append(plan, &ruleState{Rule: r})
	}
	hits = make(map[string]int)
	rng = rand.New(rand.NewSource(seed))
	active.Store(len(plan) > 0)
}

// Reset removes the active plan and disables injection.
func Reset() {
	mu.Lock()
	defer mu.Unlock()
	active.Store(false)
	plan = nil
	hits = nil
	rng = nil
}

// Enabled reports whether a plan is active.
func Enabled() bool { return active.Load() }

// Hits returns how many times the site has been visited under the
// active plan (0 when inactive), for test assertions.
func Hits(site string) int {
	mu.Lock()
	defer mu.Unlock()
	return hits[site]
}

// Fired returns how many times rules of the given kind have fired at
// site under the active plan. Chaos campaigns use it to hold the suite
// honest: a run that reports its verification passed after a corrupt
// rule fired at its verify site is lying, and that is an invariant
// violation, not bad luck.
func Fired(site string, kind Kind) int {
	mu.Lock()
	defer mu.Unlock()
	n := 0
	for _, st := range plan {
		if st.Site == site && st.Kind == kind {
			n += st.fired
		}
	}
	return n
}

// eligible reports whether the rule fires on hit h, and records the
// firing. Must be called with mu held.
func (st *ruleState) eligible(h int) bool {
	if h < st.On {
		return false
	}
	if st.Count > 0 && st.fired >= st.Count {
		return false
	}
	if st.Prob > 0 && st.Prob < 1 && rng.Float64() >= st.Prob {
		return false
	}
	st.fired++
	return true
}

// Maybe is the injection hook for panic and delay rules. Each call
// counts one hit at site; if an active KindDelay rule fires the call
// sleeps, and if a KindPanic rule fires it panics with InjectedPanic.
// With no active plan it is a single atomic load.
func Maybe(site string) {
	if !active.Load() {
		return
	}
	var sleep time.Duration
	var pan *InjectedPanic
	mu.Lock()
	hits[site]++
	h := hits[site]
	for _, st := range plan {
		if st.Site != site || st.Kind == KindCorrupt {
			continue
		}
		if !st.eligible(h) {
			continue
		}
		if st.Kind == KindDelay {
			sleep += st.Sleep
		} else {
			pan = &InjectedPanic{Site: site, Hit: h}
		}
	}
	mu.Unlock()
	if sleep > 0 {
		time.Sleep(sleep)
	}
	if pan != nil {
		panic(*pan)
	}
}

// Corrupted is the injection hook for KindCorrupt rules: it counts one
// hit at site and reports whether a corrupt rule fired.
func Corrupted(site string) bool {
	if !active.Load() {
		return false
	}
	mu.Lock()
	defer mu.Unlock()
	hits[site]++
	h := hits[site]
	fired := false
	for _, st := range plan {
		if st.Site != site || st.Kind != KindCorrupt {
			continue
		}
		if st.eligible(h) {
			fired = true
		}
	}
	return fired
}

// CorruptFloat returns v perturbed far outside any verification
// tolerance when a KindCorrupt rule fires at site, and v unchanged
// otherwise. Benchmarks pass their verification values through it.
func CorruptFloat(site string, v float64) float64 {
	if Corrupted(site) {
		return v + 1.0
	}
	return v
}
