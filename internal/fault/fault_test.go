package fault

import (
	"sort"
	"testing"
	"time"
)

func TestInactiveIsNoop(t *testing.T) {
	Reset()
	Maybe("x") // must not panic
	if Corrupted("x") {
		t.Fatal("Corrupted fired with no plan")
	}
	if Hits("x") != 0 {
		t.Fatal("hits counted with no plan")
	}
	if Enabled() {
		t.Fatal("Enabled with no plan")
	}
}

func TestPanicFiresOnConfiguredHitOnly(t *testing.T) {
	Activate(1, Rule{Site: "s", Kind: KindPanic, On: 3})
	defer Reset()
	Maybe("s")
	Maybe("s")
	func() {
		defer func() {
			v := recover()
			ip, ok := v.(InjectedPanic)
			if !ok {
				t.Fatalf("recovered %v (%T), want InjectedPanic", v, v)
			}
			if ip.Site != "s" || ip.Hit != 3 {
				t.Fatalf("InjectedPanic = %+v", ip)
			}
		}()
		Maybe("s")
		t.Fatal("third hit did not panic")
	}()
	// Count defaults to one firing: later hits pass.
	Maybe("s")
	if Hits("s") != 4 {
		t.Fatalf("Hits = %d, want 4", Hits("s"))
	}
}

func TestUnlimitedCountFiresEveryHit(t *testing.T) {
	Activate(1, Rule{Site: "d", Kind: KindDelay, Count: -1, Sleep: time.Microsecond})
	defer Reset()
	for i := 0; i < 5; i++ {
		Maybe("d") // every hit sleeps; just exercising the path
	}
	if Hits("d") != 5 {
		t.Fatalf("Hits = %d", Hits("d"))
	}
}

func TestSitesAreIndependent(t *testing.T) {
	Activate(1, Rule{Site: "a", Kind: KindPanic})
	defer Reset()
	Maybe("b") // different site: no panic
	if Hits("b") != 1 || Hits("a") != 0 {
		t.Fatalf("hits a=%d b=%d", Hits("a"), Hits("b"))
	}
}

func TestCorruptFloat(t *testing.T) {
	Activate(1, Rule{Site: "v", Kind: KindCorrupt, On: 2})
	defer Reset()
	if got := CorruptFloat("v", 1.5); got != 1.5 {
		t.Fatalf("hit 1 corrupted: %v", got)
	}
	if got := CorruptFloat("v", 1.5); got == 1.5 {
		t.Fatal("hit 2 not corrupted")
	}
	if got := CorruptFloat("v", 1.5); got != 1.5 {
		t.Fatalf("hit 3 corrupted after Count exhausted: %v", got)
	}
}

func TestCorruptRulesInvisibleToMaybe(t *testing.T) {
	Activate(1, Rule{Site: "m", Kind: KindCorrupt, Count: -1})
	defer Reset()
	Maybe("m") // corrupt rules must not fire through Maybe
	if !Corrupted("m") {
		t.Fatal("corrupt rule did not fire through Corrupted")
	}
}

func TestProbabilityGateIsSeedDeterministic(t *testing.T) {
	pattern := func(seed int64) []bool {
		Activate(seed, Rule{Site: "p", Kind: KindCorrupt, Count: -1, Prob: 0.5})
		defer Reset()
		var out []bool
		for i := 0; i < 32; i++ {
			out = append(out, Corrupted("p"))
		}
		return out
	}
	a, b := pattern(42), pattern(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at hit %d", i+1)
		}
	}
	c := pattern(7)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical 32-hit pattern (suspicious)")
	}
}

func TestActivateReplacesPlan(t *testing.T) {
	Activate(1, Rule{Site: "old", Kind: KindPanic})
	Activate(1, Rule{Site: "new", Kind: KindCorrupt})
	defer Reset()
	Maybe("old") // old rule gone: no panic
	if !Corrupted("new") {
		t.Fatal("new rule inactive")
	}
}

// TestSitesSortedAndStable: `npbsuite -list-faults` output must be
// diffable across runs and builds, so Sites() guarantees sorted order
// itself rather than trusting the declaration order of the registry.
func TestSitesSortedAndStable(t *testing.T) {
	a := Sites()
	if !sort.StringsAreSorted(a) {
		t.Fatalf("Sites() not sorted: %v", a)
	}
	b := Sites()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("Sites() unstable between calls: %v vs %v", a, b)
		}
	}
	// Mutating the returned slice must not corrupt the registry.
	a[0] = "zzz.mutated"
	if c := Sites(); c[0] == "zzz.mutated" {
		t.Fatal("Sites() exposes registry storage")
	}
}

// TestFiredCountsPerSiteAndKind: the chaos campaign's honesty invariant
// needs to know whether a corrupt rule actually fired during a cell.
func TestFiredCountsPerSiteAndKind(t *testing.T) {
	Activate(1,
		Rule{Site: "v", Kind: KindCorrupt, Count: -1},
		Rule{Site: "v", Kind: KindDelay, Count: -1, Sleep: time.Microsecond})
	defer Reset()
	if Fired("v", KindCorrupt) != 0 {
		t.Fatal("fired before any hit")
	}
	Corrupted("v")
	Corrupted("v")
	Maybe("v")
	if got := Fired("v", KindCorrupt); got != 2 {
		t.Fatalf("Fired(corrupt) = %d, want 2", got)
	}
	if got := Fired("v", KindDelay); got != 1 {
		t.Fatalf("Fired(delay) = %d, want 1", got)
	}
	if got := Fired("other", KindCorrupt); got != 0 {
		t.Fatalf("Fired(other site) = %d, want 0", got)
	}
}
