package harness

import (
	"bytes"
	"encoding/json"
	"path/filepath"
	"strings"
	"testing"

	"npbgo"
	"npbgo/internal/fault"
	"npbgo/internal/journal"
	"npbgo/internal/report"
)

// recordingWriter is an in-memory metrics sink that logs the order of
// Write and Flush calls, and optionally fires a hook on first Write —
// the hook runs at exactly the point in the sweep loop where the cell's
// metrics line has landed but the journal Finish has not yet happened.
type recordingWriter struct {
	buf          bytes.Buffer
	ops          []string
	onFirstWrite func()
	wrote        bool
}

func (w *recordingWriter) Write(p []byte) (int, error) {
	w.ops = append(w.ops, "write")
	n, err := w.buf.Write(p)
	if !w.wrote {
		w.wrote = true
		if w.onFirstWrite != nil {
			w.onFirstWrite()
		}
	}
	return n, err
}

func (w *recordingWriter) Flush() error {
	w.ops = append(w.ops, "flush")
	return nil
}

// failedCellLines decodes the writer's JSONL and returns the metrics of
// cells recorded with an error.
func failedCellLines(t *testing.T, buf *bytes.Buffer) []report.CellMetrics {
	t.Helper()
	var failed []report.CellMetrics
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		if line == "" {
			continue
		}
		var m report.CellMetrics
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("metrics line is not valid JSON (torn write?): %v\n%s", err, line)
		}
		if m.Error != "" {
			failed = append(failed, m)
		}
	}
	return failed
}

// TestFailedCellMetricsAreFlushed: a cell that fails must still land in
// the metrics JSONL — with its error string — and the sink must be
// flushed for that cell, so the partial record survives a crash right
// after the failure.
func TestFailedCellMetricsAreFlushed(t *testing.T) {
	fault.Activate(1, fault.Rule{Site: "harness.cell", Kind: fault.KindPanic, Count: -1})
	defer fault.Reset()
	w := &recordingWriter{}
	sw, err := RunSweepOpts(npbgo.EP, 'S', nil, Options{Metrics: w})
	if err == nil {
		t.Fatal("persistently failing sweep reported success")
	}
	if len(sw.Runs) != 1 || sw.Runs[0].Err == nil {
		t.Fatalf("runs = %+v, want one failed cell", sw.Runs)
	}
	failed := failedCellLines(t, &w.buf)
	if len(failed) != 1 {
		t.Fatalf("failed metrics lines = %d, want 1", len(failed))
	}
	if failed[0].Benchmark != "EP" || failed[0].Error == "" {
		t.Fatalf("failed cell record incomplete: %+v", failed[0])
	}
	joined := strings.Join(w.ops, ",")
	if !strings.Contains(joined, "write,flush") {
		t.Fatalf("metrics ops = %v, want a flush immediately after the failed cell's write", w.ops)
	}
}

// TestFailedCellMetricsSurviveJournalAbort: the metrics line is written
// before journal.Finish, so a journal that dies at exactly that point —
// the sweep's hard-stop path — still leaves the failed cell's record in
// the metrics stream. The test closes the journal writer from the
// metrics sink's first Write, which runs between the cell's metrics
// append and its journal Finish.
func TestFailedCellMetricsSurviveJournalAbort(t *testing.T) {
	fault.Activate(1, fault.Rule{Site: "harness.cell", Kind: fault.KindPanic, Count: -1})
	defer fault.Reset()
	path := filepath.Join(t.TempDir(), "sweep.jsonl")
	jw, err := journal.Create(path, journal.Plan{
		Stamp: "test", Class: "S", Benchmarks: []string{"EP"},
		Planned: PlannedCells([]npbgo.Benchmark{npbgo.EP}, 'S', nil),
	})
	if err != nil {
		t.Fatalf("journal.Create: %v", err)
	}
	w := &recordingWriter{onFirstWrite: func() { jw.Close() }}
	sw, err := RunSweepOpts(npbgo.EP, 'S', nil, Options{Metrics: w, Journal: jw})
	if err == nil || !strings.Contains(err.Error(), "journal") {
		t.Fatalf("sweep error = %v, want the journal abort", err)
	}
	if len(sw.Runs) != 1 {
		t.Fatalf("got %d runs, want the failed cell in the partial sweep", len(sw.Runs))
	}
	failed := failedCellLines(t, &w.buf)
	if len(failed) != 1 {
		t.Fatalf("failed metrics lines = %d, want 1: the dying cell's record must precede the journal abort", len(failed))
	}
	if !strings.Contains(strings.Join(w.ops, ","), "write,flush") {
		t.Fatalf("metrics ops = %v, want write then flush before the journal abort", w.ops)
	}
}
