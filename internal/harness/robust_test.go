package harness

import (
	"strings"
	"testing"
	"time"

	"npbgo"
	"npbgo/internal/fault"
)

// TestRetryHealsInjectedTransientFailure injects a panic into the first
// cell attempt and checks that one retry heals it: the sweep succeeds,
// the cell is marked successful, and exactly one backoff sleep happened.
func TestRetryHealsInjectedTransientFailure(t *testing.T) {
	fault.Activate(1, fault.Rule{Site: "harness.cell", Kind: fault.KindPanic})
	defer fault.Reset()
	var sleeps []time.Duration
	sw, err := RunSweepOpts(npbgo.EP, 'S', []int{1}, Options{
		Retries: 2,
		Backoff: time.Millisecond,
		sleep:   func(d time.Duration) { sleeps = append(sleeps, d) },
	})
	if err != nil {
		t.Fatalf("sweep not healed by retry: %v", err)
	}
	if len(sw.Runs) != 2 {
		t.Fatalf("got %d cells", len(sw.Runs))
	}
	base := sw.Runs[0]
	if base.Err != nil || !base.Verified {
		t.Fatalf("healed cell unhealthy: %+v", base)
	}
	if base.Attempts != 2 {
		t.Fatalf("baseline attempts = %d, want 2 (one failure + one retry)", base.Attempts)
	}
	if sw.Runs[1].Attempts != 1 {
		t.Fatalf("second cell attempts = %d, want 1", sw.Runs[1].Attempts)
	}
	if len(sleeps) != 1 || sleeps[0] != time.Millisecond {
		t.Fatalf("backoff sleeps = %v", sleeps)
	}
}

// TestBackoffDoublesUntilRetriesExhausted makes every attempt fail and
// checks the exponential backoff schedule and the final cell failure.
func TestBackoffDoublesUntilRetriesExhausted(t *testing.T) {
	fault.Activate(1, fault.Rule{Site: "harness.cell", Kind: fault.KindPanic, Count: -1})
	defer fault.Reset()
	var sleeps []time.Duration
	sw, err := RunSweepOpts(npbgo.EP, 'S', nil, Options{
		Retries: 2,
		Backoff: 3 * time.Millisecond,
		sleep:   func(d time.Duration) { sleeps = append(sleeps, d) },
	})
	if err == nil {
		t.Fatal("persistently failing sweep reported success")
	}
	if len(sw.Runs) != 1 {
		t.Fatalf("got %d cells", len(sw.Runs))
	}
	r := sw.Runs[0]
	if r.Err == nil || r.Attempts != 3 {
		t.Fatalf("cell = %+v, want Err set and 3 attempts", r)
	}
	want := []time.Duration{3 * time.Millisecond, 6 * time.Millisecond}
	if len(sleeps) != len(want) || sleeps[0] != want[0] || sleeps[1] != want[1] {
		t.Fatalf("backoff schedule = %v, want %v", sleeps, want)
	}
}

// TestTimeoutMarksCellFailedAndSweepContinues slows CG's outer loop with
// an injected delay so a short per-cell timeout fires, and checks the
// cell degrades to FAIL(timeout) while the sweep still returns.
func TestTimeoutMarksCellFailedAndSweepContinues(t *testing.T) {
	fault.Activate(1, fault.Rule{
		Site: "cg.iter", Kind: fault.KindDelay, Count: -1, Sleep: 60 * time.Millisecond,
	})
	defer fault.Reset()
	start := time.Now()
	sw, err := RunSweepOpts(npbgo.CG, 'S', []int{2}, Options{
		Timeout: 100 * time.Millisecond,
		sleep:   func(time.Duration) {},
	})
	if err == nil {
		t.Fatal("timed-out sweep reported success")
	}
	if took := time.Since(start); took > 20*time.Second {
		t.Fatalf("timeout did not bound the sweep: took %v", took)
	}
	if len(sw.Runs) != 2 {
		t.Fatalf("sweep did not continue past the failed cell: %d cells", len(sw.Runs))
	}
	for _, r := range sw.Runs {
		if r.Err == nil {
			t.Fatalf("cell %+v should have timed out", r)
		}
	}
	out := SuiteTable("T", []Sweep{sw}, []int{2})
	if !strings.Contains(out, "FAIL(timeout)") {
		t.Fatalf("failed cell not rendered as FAIL(timeout):\n%s", out)
	}
}

// TestInjectedWorkerPanicDegradesCell routes a worker panic (inside a
// team region of a real benchmark) through the whole stack: team
// recovery, npbgo.RunError conversion, harness degradation.
func TestInjectedWorkerPanicDegradesCell(t *testing.T) {
	fault.Activate(1, fault.Rule{Site: "ep.batch", Kind: fault.KindPanic, Count: -1})
	defer fault.Reset()
	sw, err := RunSweepOpts(npbgo.EP, 'S', []int{2}, Options{sleep: func(time.Duration) {}})
	if err == nil {
		t.Fatal("worker panic not reported")
	}
	out := SuiteTable("T", []Sweep{sw}, []int{2})
	if !strings.Contains(out, "FAIL(panic)") {
		t.Fatalf("panicked cell not rendered as FAIL(panic):\n%s", out)
	}
}

// TestFailedSerialDisablesSpeedup: speedup against a failed baseline
// must come out as 0, not garbage.
func TestFailedSerialDisablesSpeedup(t *testing.T) {
	sw := Sweep{Benchmark: npbgo.CG, Class: 'S', Runs: []Run{
		{Threads: 0, Err: errTest},
		{Threads: 2, Elapsed: time.Second},
	}}
	if s := sw.Speedup(2); s != 0 {
		t.Fatalf("Speedup over failed baseline = %v", s)
	}
}

var errTest = &npbgo.RunError{Benchmark: npbgo.CG, Class: 'S', Threads: 1,
	Kind: npbgo.ErrPanic, Cause: nil}
