package harness

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"npbgo"
	"npbgo/internal/report"
)

func TestRunSweepProducesCells(t *testing.T) {
	sw, err := RunSweep(npbgo.IS, 'S', []int{1, 2}, false, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(sw.Runs) != 3 { // serial + two thread counts
		t.Fatalf("got %d runs", len(sw.Runs))
	}
	base, ok := sw.Serial()
	if !ok || base.Elapsed <= 0 {
		t.Fatalf("serial baseline missing or degenerate: %+v", base)
	}
	for _, r := range sw.Runs {
		if !r.Verified {
			t.Fatalf("run %+v unverified", r)
		}
	}
}

func TestSpeedupAndEfficiency(t *testing.T) {
	sw := Sweep{Benchmark: npbgo.CG, Class: 'S', Runs: []Run{
		{Threads: 0, Elapsed: 8 * time.Second},
		{Threads: 2, Elapsed: 4 * time.Second},
		{Threads: 4, Elapsed: 2 * time.Second},
	}}
	if s := sw.Speedup(2); s != 2 {
		t.Fatalf("Speedup(2) = %v", s)
	}
	if e := sw.Efficiency(4); e != 1 {
		t.Fatalf("Efficiency(4) = %v", e)
	}
	if sw.Speedup(8) != 0 {
		t.Fatal("missing cell should give 0 speedup")
	}
	if sw.Efficiency(0) != 0 {
		t.Fatal("zero threads should give 0 efficiency")
	}
}

func TestSuiteTableRendering(t *testing.T) {
	sw := Sweep{Benchmark: npbgo.BT, Class: 'A', Runs: []Run{
		{Threads: 0, Elapsed: 10 * time.Second, Verified: true, Tier: "official"},
		{Threads: 2, Elapsed: 6 * time.Second, Verified: true, Tier: "official"},
	}}
	out := SuiteTable("T", []Sweep{sw}, []int{2, 4})
	if !strings.Contains(out, "BT.A") || !strings.Contains(out, "10.0") {
		t.Fatalf("table missing cells: %q", out)
	}
	if !strings.Contains(out, "-") {
		t.Fatalf("missing cell not rendered as '-': %q", out)
	}
	if !strings.Contains(out, "yes") {
		t.Fatalf("verification column missing: %q", out)
	}
}

func TestSpeedupTableRendering(t *testing.T) {
	sw := Sweep{Benchmark: npbgo.LU, Class: 'S', Runs: []Run{
		{Threads: 0, Elapsed: 9 * time.Second},
		{Threads: 3, Elapsed: 3 * time.Second},
	}}
	out := SpeedupTable("S", []Sweep{sw}, []int{3})
	if !strings.Contains(out, "3.00") || !strings.Contains(out, "1.00") {
		t.Fatalf("speedup/efficiency missing: %q", out)
	}
}

func TestUnverifiedMarked(t *testing.T) {
	sw := Sweep{Benchmark: npbgo.FT, Class: 'B', Runs: []Run{
		{Threads: 0, Elapsed: time.Second, Verified: false, Tier: "none"},
	}}
	out := SuiteTable("T", []Sweep{sw}, nil)
	if !strings.Contains(out, "no(none)") {
		t.Fatalf("unverified run not marked: %q", out)
	}
}

func TestRunSweepUnknownBenchmark(t *testing.T) {
	if _, err := RunSweep(npbgo.Benchmark("XX"), 'S', []int{1}, false, 1); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
}

func TestRepeatsRetainAllSamples(t *testing.T) {
	sw, err := RunSweepOpts(npbgo.IS, 'S', []int{2}, Options{Repeats: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range sw.Runs {
		if len(r.Samples) != 3 {
			t.Fatalf("threads=%d: got %d samples, want 3 (every repeat retained)", r.Threads, len(r.Samples))
		}
		best := r.Samples[0]
		for _, s := range r.Samples {
			if s <= 0 {
				t.Fatalf("threads=%d: degenerate sample %v", r.Threads, s)
			}
			if s < best {
				best = s
			}
		}
		if r.Elapsed != best {
			t.Fatalf("threads=%d: headline %v is not the best sample %v", r.Threads, r.Elapsed, best)
		}
	}
}

func TestBenchRecordFromCarriesSamples(t *testing.T) {
	sw := Sweep{Benchmark: npbgo.CG, Class: 'S', Runs: []Run{
		{Threads: 0, Elapsed: 400 * time.Millisecond, Verified: true,
			Samples: []time.Duration{420 * time.Millisecond, 400 * time.Millisecond}},
		{Threads: 2, Elapsed: 240 * time.Millisecond, Verified: true,
			Samples: []time.Duration{240 * time.Millisecond, 260 * time.Millisecond}},
	}}
	rec := BenchRecordFrom('S', []Sweep{sw}, "20260801T120000Z")
	if rec.Schema != report.BenchSchema || rec.Class != "S" || rec.Stamp != "20260801T120000Z" {
		t.Fatalf("record header wrong: %+v", rec)
	}
	if len(rec.Cells) != 2 {
		t.Fatalf("got %d cells", len(rec.Cells))
	}
	if s := rec.Cells[0].Samples; len(s) != 2 || s[0] != 0.42 {
		t.Fatalf("samples not flattened to seconds: %+v", s)
	}
	var buf bytes.Buffer
	if err := report.WriteBenchJSON(&buf, rec); err != nil {
		t.Fatal(err)
	}
	back, err := report.ReadBenchRecords(&buf)
	if err != nil || len(back) != 1 {
		t.Fatalf("ReadBenchRecords: %v (%d records)", err, len(back))
	}
	if back[0].Cells[1].Samples[1] != 0.26 {
		t.Fatalf("sample lost in round trip: %+v", back[0].Cells[1])
	}
}
