package harness

import (
	"strings"
	"testing"
	"time"

	"npbgo"
)

func TestRunSweepProducesCells(t *testing.T) {
	sw, err := RunSweep(npbgo.IS, 'S', []int{1, 2}, false, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(sw.Runs) != 3 { // serial + two thread counts
		t.Fatalf("got %d runs", len(sw.Runs))
	}
	base, ok := sw.Serial()
	if !ok || base.Elapsed <= 0 {
		t.Fatalf("serial baseline missing or degenerate: %+v", base)
	}
	for _, r := range sw.Runs {
		if !r.Verified {
			t.Fatalf("run %+v unverified", r)
		}
	}
}

func TestSpeedupAndEfficiency(t *testing.T) {
	sw := Sweep{Benchmark: npbgo.CG, Class: 'S', Runs: []Run{
		{Threads: 0, Elapsed: 8 * time.Second},
		{Threads: 2, Elapsed: 4 * time.Second},
		{Threads: 4, Elapsed: 2 * time.Second},
	}}
	if s := sw.Speedup(2); s != 2 {
		t.Fatalf("Speedup(2) = %v", s)
	}
	if e := sw.Efficiency(4); e != 1 {
		t.Fatalf("Efficiency(4) = %v", e)
	}
	if sw.Speedup(8) != 0 {
		t.Fatal("missing cell should give 0 speedup")
	}
	if sw.Efficiency(0) != 0 {
		t.Fatal("zero threads should give 0 efficiency")
	}
}

func TestSuiteTableRendering(t *testing.T) {
	sw := Sweep{Benchmark: npbgo.BT, Class: 'A', Runs: []Run{
		{Threads: 0, Elapsed: 10 * time.Second, Verified: true, Tier: "official"},
		{Threads: 2, Elapsed: 6 * time.Second, Verified: true, Tier: "official"},
	}}
	out := SuiteTable("T", []Sweep{sw}, []int{2, 4})
	if !strings.Contains(out, "BT.A") || !strings.Contains(out, "10.0") {
		t.Fatalf("table missing cells: %q", out)
	}
	if !strings.Contains(out, "-") {
		t.Fatalf("missing cell not rendered as '-': %q", out)
	}
	if !strings.Contains(out, "yes") {
		t.Fatalf("verification column missing: %q", out)
	}
}

func TestSpeedupTableRendering(t *testing.T) {
	sw := Sweep{Benchmark: npbgo.LU, Class: 'S', Runs: []Run{
		{Threads: 0, Elapsed: 9 * time.Second},
		{Threads: 3, Elapsed: 3 * time.Second},
	}}
	out := SpeedupTable("S", []Sweep{sw}, []int{3})
	if !strings.Contains(out, "3.00") || !strings.Contains(out, "1.00") {
		t.Fatalf("speedup/efficiency missing: %q", out)
	}
}

func TestUnverifiedMarked(t *testing.T) {
	sw := Sweep{Benchmark: npbgo.FT, Class: 'B', Runs: []Run{
		{Threads: 0, Elapsed: time.Second, Verified: false, Tier: "none"},
	}}
	out := SuiteTable("T", []Sweep{sw}, nil)
	if !strings.Contains(out, "no(none)") {
		t.Fatalf("unverified run not marked: %q", out)
	}
}

func TestRunSweepUnknownBenchmark(t *testing.T) {
	if _, err := RunSweep(npbgo.Benchmark("XX"), 'S', []int{1}, false, 1); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
}
