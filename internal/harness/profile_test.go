package harness

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"npbgo"
	"npbgo/internal/fault"
	"npbgo/internal/journal"
	"npbgo/internal/profile"
	"npbgo/internal/report"
)

// TestProfiledSweepCapturesCells: a profiled sweep leaves one decodable
// CPU and heap profile per cell, and records their paths in the cell
// metrics and the bench record.
func TestProfiledSweepCapturesCells(t *testing.T) {
	dir := t.TempDir()
	sw, err := RunSweepOpts(npbgo.CG, 'S', []int{2}, Options{ProfileDir: dir})
	if err != nil {
		t.Fatalf("profiled sweep failed: %v", err)
	}
	if len(sw.Runs) != 2 {
		t.Fatalf("runs = %d, want serial + t2", len(sw.Runs))
	}
	for _, r := range sw.Runs {
		if r.CPUProfile == "" || r.HeapProfile == "" {
			t.Fatalf("cell t%d missing profile paths: %+v", r.Threads, r)
		}
		if _, err := profile.ParseFile(r.CPUProfile); err != nil {
			t.Fatalf("cell t%d CPU profile undecodable: %v", r.Threads, err)
		}
		if _, err := profile.ParseFile(r.HeapProfile); err != nil {
			t.Fatalf("cell t%d heap profile undecodable: %v", r.Threads, err)
		}
		m := cellMetrics(npbgo.CG, 'S', r)
		if m.CPUProfile != r.CPUProfile || m.HeapProfile != r.HeapProfile {
			t.Fatalf("metrics record lost profile paths: %+v", m)
		}
	}
	rec := BenchRecordFrom('S', []Sweep{sw}, "test")
	if rec.Env == nil || rec.Env.GoVersion == "" {
		t.Fatalf("bench record header carries no environment: %+v", rec.Env)
	}
	for _, c := range rec.Cells {
		if c.Env != nil {
			t.Fatalf("in-process cell carries a per-cell env (should only differ under isolation): %+v", c.Env)
		}
	}
}

// TestFailedCellProfileFlushedBeforeFail is the ordering satellite: a
// cell killed by an injected panic must have its CPU profile flushed
// and decodable on disk BEFORE the failure is recorded — the metrics
// sink's first Write happens after the cell dies but before FAIL
// rendering and before any journal Finish, so probing the profile from
// there proves the flush preceded both.
func TestFailedCellProfileFlushedBeforeFail(t *testing.T) {
	fault.Activate(1, fault.Rule{Site: "cg.iter", Kind: fault.KindPanic, Count: -1})
	defer fault.Reset()
	dir := t.TempDir()
	cpu, _ := profile.CellPaths(dir, "CG.S.serial")

	checked := false
	w := &recordingWriter{}
	w.onFirstWrite = func() {
		checked = true
		st, err := os.Stat(cpu)
		if err != nil || st.Size() == 0 {
			t.Errorf("at metrics-write time the failed cell's CPU profile is not on disk (err=%v)", err)
			return
		}
		if _, err := profile.ParseFile(cpu); err != nil {
			t.Errorf("failed cell's profile not decodable at metrics-write time: %v", err)
		}
	}
	sw, err := RunSweepOpts(npbgo.CG, 'S', nil, Options{Metrics: w, ProfileDir: dir})
	if err == nil {
		t.Fatal("panicking sweep reported success")
	}
	if !checked {
		t.Fatal("metrics sink never fired; ordering was not exercised")
	}
	if len(sw.Runs) != 1 || sw.Runs[0].Err == nil {
		t.Fatalf("runs = %+v, want one failed cell", sw.Runs)
	}
	if sw.Runs[0].CPUProfile != cpu {
		t.Fatalf("failed cell CPUProfile = %q, want %q (partial profile must be collected)", sw.Runs[0].CPUProfile, cpu)
	}
	failed := failedCellLines(t, &w.buf)
	if len(failed) != 1 || failed[0].CPUProfile != cpu {
		t.Fatalf("failed metrics line lost the profile path: %+v", failed)
	}
}

// TestFailedCellProfileSurvivesJournalAbort: the profile is flushed
// before the journal Finish, so a journal dying at exactly that point
// still leaves the failed cell's profile decodable on disk.
func TestFailedCellProfileSurvivesJournalAbort(t *testing.T) {
	fault.Activate(1, fault.Rule{Site: "cg.iter", Kind: fault.KindPanic, Count: -1})
	defer fault.Reset()
	dir := t.TempDir()
	cpu, _ := profile.CellPaths(dir, "CG.S.serial")
	path := filepath.Join(t.TempDir(), "sweep.jsonl")
	jw, err := journal.Create(path, journal.Plan{
		Stamp: "test", Class: "S", Benchmarks: []string{"CG"},
		Planned: PlannedCells([]npbgo.Benchmark{npbgo.CG}, 'S', nil),
	})
	if err != nil {
		t.Fatalf("journal.Create: %v", err)
	}
	w := &recordingWriter{onFirstWrite: func() { jw.Close() }}
	_, err = RunSweepOpts(npbgo.CG, 'S', nil, Options{Metrics: w, Journal: jw, ProfileDir: dir})
	if err == nil || !strings.Contains(err.Error(), "journal") {
		t.Fatalf("sweep error = %v, want the journal abort", err)
	}
	if _, err := profile.ParseFile(cpu); err != nil {
		t.Fatalf("after the journal abort the failed cell's profile must still decode: %v", err)
	}
}

// TestIsolatedProfileRoundTrip: under isolation the child captures its
// own profiles into the shared per-cell paths; the parent collects them
// and suppresses the child's env when identical to its own.
func TestIsolatedProfileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	res, env, err := runIsolated(context.Background(),
		npbgo.Config{Benchmark: npbgo.CG, Class: 'S', Threads: 1},
		0, isolationForTest(t), dir, "CG.S.serial")
	if err != nil {
		t.Fatalf("isolated profiled cell failed: %v", err)
	}
	if !res.Verified {
		t.Fatalf("isolated result unverified: %+v", res)
	}
	if env != nil {
		t.Fatalf("child env = %+v, want nil (same binary, same host)", env)
	}
	cpu, heap := profile.CellPaths(dir, "CG.S.serial")
	for _, p := range []string{cpu, heap} {
		if _, err := profile.ParseFile(p); err != nil {
			t.Fatalf("child-captured profile %s undecodable: %v", p, err)
		}
	}
}

// TestIsolatedKilledCellRecordsNoEmptyProfile: runtime/pprof writes the
// CPU profile proto only at StopCPUProfile, so a SIGKILL'd child leaves
// a zero-byte file — no samples survive a hard kill. The harness must
// not dress that up as data: the empty file is filtered out, the killed
// cell's record carries no profile path (absence, not a torn file), and
// the decoder rejects the empty file loudly if pointed at it anyway.
func TestIsolatedKilledCellRecordsNoEmptyProfile(t *testing.T) {
	iso := isolationForTest(t)
	iso.FaultSeed = 1
	iso.FaultRules = []fault.Rule{{Site: "cg.iter", Kind: fault.KindDelay,
		Count: -1, Sleep: 30 * time.Second}}
	dir := t.TempDir()
	opt := Options{Timeout: 500 * time.Millisecond, Isolate: iso, ProfileDir: dir}
	r := runCell(context.Background(), npbgo.CG, 'S', 0, opt)
	var ke *KilledError
	if !asKilled(r.Err, &ke) {
		t.Fatalf("err = %v, want KilledError", r.Err)
	}
	cpu, _ := profile.CellPaths(dir, "CG.S.serial")
	st, err := os.Stat(cpu)
	if err != nil {
		t.Fatalf("child never created its CPU profile file: %v", err)
	}
	if st.Size() != 0 {
		// The kill landed after a flush; then the file must be stamped.
		if r.CPUProfile != cpu {
			t.Fatalf("non-empty profile %q not collected into the killed cell's record", cpu)
		}
		return
	}
	if r.CPUProfile != "" {
		t.Fatalf("killed cell CPUProfile = %q, want empty (file has no bytes)", r.CPUProfile)
	}
	if _, err := profile.ParseFile(cpu); err == nil {
		t.Fatal("decoder accepted a zero-byte profile")
	}
}

// TestRunCellMainStampsEnv: the child-side entry point always stamps
// its environment into the CellResult, the raw material of the parent's
// differs-from-header suppression.
func TestRunCellMainStampsEnv(t *testing.T) {
	var out strings.Builder
	spec := `{"benchmark":"CG","class":"S","threads":1}`
	if code := RunCellMain(spec, &out); code != 0 {
		t.Fatalf("RunCellMain exit = %d, output %s", code, out.String())
	}
	var cr CellResult
	if err := json.Unmarshal([]byte(out.String()), &cr); err != nil {
		t.Fatalf("bad CellResult JSON: %v", err)
	}
	if cr.Env == nil || cr.Env.GoVersion == "" || cr.Env.NumCPU < 1 {
		t.Fatalf("child result carries no environment: %+v", cr.Env)
	}
	if *cr.Env != report.CollectEnv() {
		t.Fatalf("child env %+v differs from this process's (same process!)", cr.Env)
	}
}
