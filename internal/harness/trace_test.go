package harness

import (
	"os"
	"path/filepath"
	"testing"

	"npbgo/internal/trace"
)

// TestTraceDirWritesValidFilePerCell: a sweep with TraceDir set leaves
// one validating Perfetto file per cell, serial baseline included, and
// the kept Run carries its snapshot.
func TestTraceDirWritesValidFilePerCell(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "traces") // exercises MkdirAll too
	sw, err := RunSweepOpts("IS", 'S', []int{2}, Options{TraceDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range sw.Runs {
		if r.Trace == nil {
			t.Fatalf("cell %s has no trace snapshot", cellName(r.Threads))
		}
	}
	for _, name := range []string{"IS.S.serial.trace.json", "IS.S.t2.trace.json"} {
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatalf("expected trace file missing: %v", err)
		}
		if _, err := trace.Validate(data); err != nil {
			t.Fatalf("%s fails validation: %v", name, err)
		}
	}
}

// TestNoTraceDirNoSnapshot: tracing stays off unless asked for.
func TestNoTraceDirNoSnapshot(t *testing.T) {
	sw, err := RunSweepOpts("IS", 'S', nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range sw.Runs {
		if r.Trace != nil {
			t.Fatal("Run.Trace set without Options.TraceDir")
		}
	}
}

// TestCellRecordsFlattenSweeps: the bench-json cell list covers every
// run of every sweep in order.
func TestCellRecordsFlattenSweeps(t *testing.T) {
	sw, err := RunSweepOpts("IS", 'S', []int{2}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	cells := CellRecords([]Sweep{sw})
	if len(cells) != 2 {
		t.Fatalf("got %d cells, want 2", len(cells))
	}
	if cells[0].Threads != 0 || cells[1].Threads != 2 {
		t.Fatalf("cell order wrong: %+v", cells)
	}
	for _, c := range cells {
		if c.Benchmark != "IS" || c.Class != "S" || !c.Verified || c.Elapsed <= 0 {
			t.Fatalf("cell record malformed: %+v", c)
		}
	}
}
