// Package harness drives the experiments of the paper's evaluation
// section: for each benchmark it runs a serial baseline plus a sweep of
// thread counts, derives speedup and efficiency, and assembles the
// rows of Tables 2-6. The same code backs cmd/npbsuite and the
// regression benchmarks.
//
// The harness is fault tolerant, in the shape of a serving stack's
// timeout/retry/bulkhead plumbing: every cell can be bounded by a
// per-attempt timeout, failed cells are retried with exponential
// backoff, and a cell that still fails is recorded as Run{Err: ...} and
// rendered as FAIL(reason) while the rest of the sweep continues — the
// paper's long multi-machine sweeps kept failing in partial ways (§5),
// and one bad cell must not cost the whole table.
package harness

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"sync"
	"time"

	"npbgo"
	"npbgo/internal/fault"
	"npbgo/internal/journal"
	"npbgo/internal/obs"
	"npbgo/internal/perfcount"
	"npbgo/internal/profile"
	"npbgo/internal/report"
	"npbgo/internal/timer"
	"npbgo/internal/trace"
)

// Run is one measured cell of a sweep.
type Run struct {
	Threads  int // 0 marks the serial baseline column
	Elapsed  time.Duration
	Mops     float64
	Verified bool
	Tier     string
	Attempts int // benchmark executions this cell consumed (retries and repeats included)
	// Samples holds every successful repeat's elapsed time in run
	// order. Elapsed stays the best (minimum) sample — the headline the
	// tables print — but comparisons across records need the full
	// distribution: best-of-N discards exactly the noise a confidence
	// interval is built from (Hoefler & Belli's first rule).
	Samples []time.Duration
	Err     error           // non-nil marks a failed cell (after all retries)
	Obs     *obs.Stats      // runtime metrics of the kept repeat, nil unless Options.Obs
	Phases  []timer.Phase   // phase profile of the kept repeat, nil unless the benchmark exposes timers
	Trace   *trace.Snapshot // event timeline of the kept repeat, nil unless Options.TraceDir
	// Counters is the hardware-counter attribution of the kept repeat,
	// nil unless Options.Counters and counters were available;
	// CountersNote records why it is nil when they were requested.
	Counters     *perfcount.Stats
	CountersNote string
	// CPUProfile/HeapProfile are the cell's captured pprof files, empty
	// unless Options.ProfileDir. A failed cell keeps what it flushed
	// before dying; a hard-killed child flushes nothing (runtime/pprof
	// writes only at stop), so its zero-byte file is filtered out and
	// the killed cell records no profile — absence, not a torn file.
	CPUProfile  string
	HeapProfile string
	// Env is the environment of the process that executed the cell, set
	// only when it differs from this (recording) process's environment —
	// which can only happen under Isolate.
	Env *report.EnvInfo
	// Replayed marks a cell restored from a journal on resume instead of
	// executed; its numbers are the earlier run's.
	Replayed bool
	// Schedule is the loop schedule the cell ran under ("" means
	// static), stamped from Options.Schedule so journaled records stay
	// comparable across scheduling policies.
	Schedule string
}

// SkipError marks a cell the harness refused to launch — today always
// the memory admission guard. It renders as SKIP(memory: need X, have
// Y) rather than FAIL: a skip is a correct answer ("this machine cannot
// fit this cell"), not a failure, so it neither fails the sweep nor
// counts as terminal in the journal (a resume on a bigger machine
// re-attempts it).
type SkipError struct {
	Need uint64 // estimated working-set bytes (Config.FootprintBytes)
	Have uint64 // admissible bytes after headroom
}

func (e *SkipError) Error() string {
	return fmt.Sprintf("memory: need %s, have %s", FormatBytes(e.Need), FormatBytes(e.Have))
}

// KilledError marks an isolated cell hard-killed by the parent-side
// watchdog: Reason is "timeout-killed" (deadline breach) or
// "oom-killed" (RSS limit breach), the two failure modes an in-process
// timeout cannot stop — a runaway loop ignores its context and an
// OOM-ing kernel takes the whole process with it.
type KilledError struct {
	Reason string // "timeout-killed" or "oom-killed"
	After  time.Duration
}

func (e *KilledError) Error() string {
	return fmt.Sprintf("isolated cell %s after %s", e.Reason, e.After.Round(time.Millisecond))
}

// Sweep is the measured row set of one benchmark/class.
type Sweep struct {
	Benchmark npbgo.Benchmark
	Class     byte
	Runs      []Run
}

// Options tunes sweep execution.
type Options struct {
	Warmup  bool // apply the CG warmup fix of §5.2
	Repeats int  // repetitions per cell, best time kept; < 1 means 1
	// Schedule selects the team loop schedule for every cell
	// (npbgo.Config.Schedule): "static" (default when empty), "dynamic",
	// "guided", "stealing" or "auto".
	Schedule string
	Timeout  time.Duration // per-attempt deadline; 0 means unbounded
	Retries  int           // extra attempts after a failed one, per repeat
	Backoff  time.Duration // first retry delay, doubling each retry; 0 means 100ms

	// Obs enables runtime-metrics collection (npbgo.Config.Obs) for
	// every cell; each cell's snapshot lands in Run.Obs.
	Obs bool
	// Counters enables per-region hardware-counter sampling
	// (npbgo.Config.Counters) for every cell; each cell's totals land in
	// Run.Counters, or Run.CountersNote records why they could not be
	// collected.
	Counters bool
	// Metrics, when non-nil, receives one report.CellMetrics JSON line
	// per cell as the sweep progresses.
	Metrics io.Writer
	// ProfileDir, when non-empty, captures a CPU and a heap profile per
	// cell into the directory as "<BENCH>.<class>.<cell>.cpu.pprof" /
	// ".heap.pprof" (serial baseline named "serial", like traces). The
	// capture brackets each attempt — outside the benchmark's timed
	// region — and is flushed before a failure is rendered, so a dying
	// cell leaves its profile as the post-mortem. Under Isolate the child
	// process captures and the parent collects the files. Repeats and
	// retries overwrite in place: the surviving profile is the last
	// attempt's, which for a failed cell is the failing one.
	ProfileDir string
	// TraceDir, when non-empty, enables execution tracing
	// (npbgo.Config.Trace) for every cell and writes each cell's
	// timeline into the directory as Chrome/Perfetto JSON —
	// "<BENCH>.<class>.t<N>.trace.json", with the serial baseline named
	// "serial" — ready for ui.perfetto.dev. The directory is created if
	// missing. A failed cell still writes its partial timeline; that
	// trace is the post-mortem.
	TraceDir string

	// Context, when non-nil, bounds the whole sweep: cancelling it stops
	// the current cell (cooperatively in-process, by hard kill under
	// Isolate), skips further retries, and interrupts any in-flight
	// retry backoff immediately.
	Context context.Context

	// Journal, when non-nil, receives a durable (fsync'd) start entry
	// before each cell executes and a finish entry — with the cell's
	// measured report.CellMetrics — after it ends. A journal append
	// failure aborts the sweep: silently losing durability would defeat
	// the journal's whole point.
	Journal *journal.Writer

	// Resume maps cells to the metrics recorded by an earlier run's
	// journal. A cell found here is replayed (Run.Replayed) instead of
	// executed, and writes no new journal entries — its original
	// entries already stand.
	Resume map[journal.CellKey]*report.CellMetrics

	// Isolate, when non-nil, runs every cell execution as a child
	// process under a watchdog instead of in-process (see Isolation).
	Isolate *Isolation

	// MemGuard, when non-nil, checks each cell's estimated footprint
	// against available memory before launch and records a
	// SKIP(memory: ...) cell instead of executing one that cannot fit.
	MemGuard *MemGuard

	// sleep replaces time.Sleep between retries; tests inject it to
	// verify backoff without waiting.
	sleep func(time.Duration)
}

// RunSweep executes benchmark bench at the given class for the serial
// baseline (threads = 1, regions inline) and each requested thread
// count. Repeats > 1 keeps the best (minimum) time per cell, as
// benchmarkers do to suppress scheduling noise. It is RunSweepOpts with
// only Warmup and Repeats set.
func RunSweep(bench npbgo.Benchmark, class byte, threads []int, warmup bool, repeats int) (Sweep, error) {
	return RunSweepOpts(bench, class, threads, Options{Warmup: warmup, Repeats: repeats})
}

// RunSweepOpts executes a sweep under the given options. The sweep
// degrades gracefully: a cell that fails (after opt.Retries retries per
// repeat) is recorded with Run.Err set and the remaining cells still
// run. The returned error joins the per-cell failures, so callers can
// both render the partial table and report that something went wrong.
// Journal append failures are the one hard stop — durability broken
// mid-sweep must not masquerade as a journaled run.
func RunSweepOpts(bench npbgo.Benchmark, class byte, threads []int, opt Options) (Sweep, error) {
	ctx := opt.Context
	if ctx == nil {
		ctx = context.Background()
	}
	sw := Sweep{Benchmark: bench, Class: class}
	var errs []error
	cells := append([]int{0}, threads...)
	for _, th := range cells {
		key := journal.CellKey{Benchmark: string(bench), Class: string(class), Threads: th}
		if m, ok := opt.Resume[key]; ok && m != nil {
			sw.Runs = append(sw.Runs, RunFromMetrics(*m))
			continue
		}
		var r Run
		var skip error
		if opt.MemGuard != nil {
			skip = opt.MemGuard.check(cellConfig(bench, class, th, opt))
		}
		status := journal.StatusOK
		switch {
		case skip != nil:
			r = Run{Threads: th, Err: skip}
			status = journal.StatusSkip
		default:
			if opt.Journal != nil {
				if err := opt.Journal.Start(key); err != nil {
					return sw, errors.Join(append(errs, err)...)
				}
			}
			r = runCell(ctx, bench, class, th, opt)
			if r.Err != nil {
				status = journal.StatusFail
			}
		}
		sw.Runs = append(sw.Runs, r)
		if opt.TraceDir != "" && r.Trace != nil {
			if err := writeTrace(opt.TraceDir, bench, class, r); err != nil {
				errs = append(errs, fmt.Errorf("%s.%c trace: %w", bench, class, err))
			}
		}
		// The metrics line is written — and, for a failed or killed cell,
		// flushed to stable storage — before anything that can abort the
		// sweep or render FAIL(...): the partial record of a dying cell is
		// the post-mortem, and it must survive even a journal append
		// failure on the very next statement.
		if opt.Metrics != nil {
			if err := report.WriteJSONL(opt.Metrics, cellMetrics(bench, class, r)); err != nil {
				errs = append(errs, fmt.Errorf("%s.%c metrics: %w", bench, class, err))
			} else if r.Err != nil {
				if err := flushWriter(opt.Metrics); err != nil {
					errs = append(errs, fmt.Errorf("%s.%c metrics flush: %w", bench, class, err))
				}
			}
		}
		if opt.Journal != nil {
			m := cellMetrics(bench, class, r)
			if err := opt.Journal.Finish(key, status, &m); err != nil {
				return sw, errors.Join(append(errs, err)...)
			}
		}
		if r.Err != nil && !IsSkip(r.Err) {
			cell := fmt.Sprintf("threads=%d", th)
			if th == 0 {
				cell = "serial"
			}
			errs = append(errs, fmt.Errorf("%s.%c %s: %w", bench, class, cell, r.Err))
		}
	}
	return sw, errors.Join(errs...)
}

// flushWriter pushes w's buffered data toward stable storage: a
// *bufio.Writer-style wrapper is flushed, an *os.File-style writer is
// fsync'd, and a writer offering neither (an in-memory buffer) needs
// nothing.
func flushWriter(w io.Writer) error {
	if f, ok := w.(interface{ Flush() error }); ok {
		if err := f.Flush(); err != nil {
			return err
		}
	}
	if f, ok := w.(interface{ Sync() error }); ok {
		return f.Sync()
	}
	return nil
}

// IsSkip reports whether err is (or wraps) a cell skip — an admission
// decision, not a failure.
func IsSkip(err error) bool {
	var se *SkipError
	return errors.As(err, &se)
}

// cellConfig is the npbgo configuration of one cell under the sweep
// options.
func cellConfig(bench npbgo.Benchmark, class byte, threads int, opt Options) npbgo.Config {
	n := threads
	if n == 0 {
		n = 1 // the serial baseline runs with one inline worker
	}
	return npbgo.Config{Benchmark: bench, Class: class, Threads: n,
		Warmup: opt.Warmup, Obs: opt.Obs, Trace: opt.TraceDir != "",
		Schedule: opt.Schedule, Counters: opt.Counters}
}

// PlannedCells is the journal's cell list for a sweep set: for every
// benchmark, the serial baseline followed by each thread count —
// exactly the execution order of RunSweepOpts, so the plan and the run
// cannot drift.
func PlannedCells(benches []npbgo.Benchmark, class byte, threads []int) []journal.CellKey {
	var out []journal.CellKey
	for _, b := range benches {
		for _, th := range append([]int{0}, threads...) {
			out = append(out, journal.CellKey{Benchmark: string(b), Class: string(class), Threads: th})
		}
	}
	return out
}

// RunFromMetrics reconstructs a Run from a journaled cell record, for
// resume replay. Obs/trace snapshots are not round-tripped — the
// journal keeps the flattened counters, which is what the tables and
// bench records need.
func RunFromMetrics(m report.CellMetrics) Run {
	r := Run{
		Threads:  m.Threads,
		Elapsed:  time.Duration(m.Elapsed * float64(time.Second)),
		Mops:     m.Mops,
		Verified: m.Verified,
		Attempts: m.Attempts,
		Replayed: true,
		Schedule: m.Schedule,
	}
	for _, s := range m.Samples {
		r.Samples = append(r.Samples, time.Duration(s*float64(time.Second)))
	}
	if m.Error != "" {
		r.Err = errors.New(m.Error)
	}
	r.Counters = m.Counters
	r.CountersNote = m.CountersNote
	r.CPUProfile = m.CPUProfile
	r.HeapProfile = m.HeapProfile
	r.Env = m.Env
	return r
}

// runCell measures one cell: opt.Repeats repeats (best time kept), each
// repeat retried with exponential backoff on failure.
func runCell(ctx context.Context, bench npbgo.Benchmark, class byte, threads int, opt Options) Run {
	repeats := opt.Repeats
	if repeats < 1 {
		repeats = 1
	}
	cfg := cellConfig(bench, class, threads, opt)
	label := fmt.Sprintf("%s.%c.%s", bench, class, cellName(threads))
	var best *Run
	var samples []time.Duration
	attempts := 0
	for rep := 0; rep < repeats; rep++ {
		res, env, used, err := runAttempts(ctx, cfg, label, opt)
		attempts += used
		if err != nil {
			// A cancelled/failed run still carries its partial obs
			// snapshot (cancellation counts, busy time up to the stop),
			// which is exactly what a post-mortem wants to see — plus
			// the samples of the repeats that did complete.
			r := Run{Threads: threads, Attempts: attempts, Samples: samples,
				Err: err, Obs: res.Obs, Phases: res.Phases, Trace: res.Trace,
				Counters: res.Counters, CountersNote: res.CountersNote,
				Schedule: opt.Schedule, Env: env}
			stampProfiles(&r, opt, label)
			return r
		}
		samples = append(samples, res.Elapsed)
		r := Run{Threads: threads, Elapsed: res.Elapsed, Mops: res.Mops,
			Verified: res.Verified, Tier: res.Tier, Obs: res.Obs, Phases: res.Phases,
			Trace: res.Trace, Counters: res.Counters, CountersNote: res.CountersNote,
			Schedule: opt.Schedule, Env: env}
		if best == nil || r.Elapsed < best.Elapsed {
			cp := r
			best = &cp
		}
	}
	best.Attempts = attempts
	best.Samples = samples
	stampProfiles(best, opt, label)
	return *best
}

// stampProfiles records the cell's profile files on r — by probing the
// filesystem, not by trusting the runner: a hard-killed isolated child
// reports nothing back, but any profile it managed to flush before
// dying is on disk. Empty files (a SIGKILL'd child's never-flushed CPU
// profile) are filtered: absence must stay distinguishable from data.
func stampProfiles(r *Run, opt Options, label string) {
	if opt.ProfileDir == "" {
		return
	}
	cpu, heap := profile.CellPaths(opt.ProfileDir, label)
	if fileNonEmpty(cpu) {
		r.CPUProfile = cpu
	}
	if fileNonEmpty(heap) {
		r.HeapProfile = heap
	}
}

func fileNonEmpty(path string) bool {
	st, err := os.Stat(path)
	return err == nil && st.Size() > 0
}

// hostEnv is this process's environment snapshot, collected once — it
// heads every bench record and is the baseline per-cell child
// environments are compared against.
var hostEnvOnce = struct {
	once sync.Once
	env  report.EnvInfo
}{}

func hostEnv() report.EnvInfo {
	hostEnvOnce.once.Do(func() { hostEnvOnce.env = report.CollectEnv() })
	return hostEnvOnce.env
}

// runAttempts runs one measurement, retrying transient failures up to
// opt.Retries times with exponential backoff. The backoff sleep is
// context-interruptible: cancelling the sweep mid-backoff returns
// immediately instead of waiting out the delay, and a cancelled sweep
// stops retrying. It returns the number of attempts consumed.
func runAttempts(ctx context.Context, cfg npbgo.Config, label string, opt Options) (npbgo.Result, *report.EnvInfo, int, error) {
	backoff := opt.Backoff
	if backoff <= 0 {
		backoff = 100 * time.Millisecond
	}
	for attempt := 1; ; attempt++ {
		res, env, err := runOnce(ctx, cfg, label, opt)
		if err == nil {
			return res, env, attempt, nil
		}
		if attempt > opt.Retries || ctx.Err() != nil {
			return res, env, attempt, err
		}
		if !sleepCtx(ctx, backoff, opt.sleep) {
			return res, env, attempt, err
		}
		backoff *= 2
	}
}

// sleepCtx sleeps for d or until ctx is cancelled, reporting whether
// the full delay elapsed. An injected test sleeper bypasses the timer.
func sleepCtx(ctx context.Context, d time.Duration, injected func(time.Duration)) bool {
	if injected != nil {
		injected(d)
		return true
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}

// runOnce is a single panic-isolated, optionally deadline-bounded
// benchmark execution — in-process by default, or a watchdogged child
// process under opt.Isolate. The returned EnvInfo is non-nil only when
// an isolated child ran under a different environment than the parent.
func runOnce(ctx context.Context, cfg npbgo.Config, label string, opt Options) (res npbgo.Result, env *report.EnvInfo, err error) {
	// Defer ordering is load-bearing: the recovery defer is registered
	// first, so during a panic unwind the capture Stop defer (registered
	// below, thus running earlier) flushes and fsyncs the profile BEFORE
	// the panic becomes an error — before FAIL(...) rendering, before
	// any journal abort. Same discipline as the PR 9 metrics flush.
	defer func() {
		if v := recover(); v != nil {
			err = fmt.Errorf("harness: cell panicked: %v", v)
		}
	}()
	if opt.Isolate != nil {
		fault.Maybe("harness.cell")
		return runIsolated(ctx, cfg, opt.Timeout, opt.Isolate, opt.ProfileDir, label)
	}
	if opt.ProfileDir != "" {
		cap, perr := profile.Start(opt.ProfileDir, label)
		if perr != nil {
			return res, nil, fmt.Errorf("harness: %w", perr)
		}
		defer func() {
			if serr := cap.Stop(); serr != nil && err == nil {
				err = fmt.Errorf("harness: %w", serr)
			}
		}()
	}
	fault.Maybe("harness.cell")
	if opt.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, opt.Timeout)
		defer cancel()
	}
	res, err = npbgo.RunContext(ctx, cfg)
	return res, nil, err
}

// cellName is the short per-cell tag used in trace filenames and
// labels: "t<N>", or "serial" for the baseline column.
func cellName(threads int) string {
	if threads == 0 {
		return "serial"
	}
	return fmt.Sprintf("t%d", threads)
}

// writeTrace exports one cell's event timeline as a Chrome/Perfetto
// trace file into dir.
func writeTrace(dir string, bench npbgo.Benchmark, class byte, r Run) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	cell := cellName(r.Threads)
	f, err := os.Create(filepath.Join(dir, fmt.Sprintf("%s.%c.%s.trace.json", bench, class, cell)))
	if err != nil {
		return err
	}
	werr := r.Trace.WriteChrome(f, fmt.Sprintf("%s.%c %s", bench, class, cell))
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	return werr
}

// failReason compresses a cell error into the short tag rendered inside
// FAIL(...) table cells.
func failReason(err error) string {
	var ke *KilledError
	if errors.As(err, &ke) {
		return ke.Reason
	}
	if errors.Is(err, context.DeadlineExceeded) {
		return "timeout"
	}
	var re *npbgo.RunError
	if errors.As(err, &re) {
		return re.Kind
	}
	return "error"
}

// Serial returns the serial baseline cell.
func (s Sweep) Serial() (Run, bool) {
	for _, r := range s.Runs {
		if r.Threads == 0 {
			return r, true
		}
	}
	return Run{}, false
}

// Speedup returns serial time / threaded time for the given cell.
func (s Sweep) Speedup(threads int) float64 {
	base, ok := s.Serial()
	if !ok || base.Err != nil {
		return 0
	}
	for _, r := range s.Runs {
		if r.Threads == threads && r.Err == nil && r.Elapsed > 0 {
			return base.Elapsed.Seconds() / r.Elapsed.Seconds()
		}
	}
	return 0
}

// Efficiency returns Speedup(threads)/threads.
func (s Sweep) Efficiency(threads int) float64 {
	if threads <= 0 {
		return 0
	}
	return s.Speedup(threads) / float64(threads)
}

// cellText renders one measured cell: its time in seconds, FAIL(reason)
// for a cell that failed after all retries, or SKIP(memory: ...) for a
// cell the admission guard withheld.
func cellText(r Run) string {
	var se *SkipError
	if errors.As(r.Err, &se) {
		return "SKIP(" + se.Error() + ")"
	}
	if r.Err != nil {
		return "FAIL(" + failReason(r.Err) + ")"
	}
	return report.Seconds(r.Elapsed.Seconds())
}

// SuiteTable renders a set of sweeps as one paper-style table (rows:
// benchmark.class, columns: serial + thread counts, cells: seconds or
// FAIL(reason)).
func SuiteTable(title string, sweeps []Sweep, threads []int) string {
	header := []string{"Benchmark", "Serial"}
	for _, t := range threads {
		header = append(header, fmt.Sprintf("%d", t))
	}
	header = append(header, "verified")
	tb := report.New(title, header...)
	for _, sw := range sweeps {
		row := []string{fmt.Sprintf("%s.%c", sw.Benchmark, sw.Class)}
		ver := "yes"
		anyOK := false
		if base, ok := sw.Serial(); ok {
			row = append(row, cellText(base))
			if base.Err == nil {
				anyOK = true
				if !base.Verified {
					ver = "no(" + base.Tier + ")"
				}
			}
		} else {
			row = append(row, "-")
		}
		for _, t := range threads {
			found := false
			for _, r := range sw.Runs {
				if r.Threads == t {
					row = append(row, cellText(r))
					if r.Err == nil {
						anyOK = true
						if !r.Verified && ver == "yes" {
							ver = "no(" + r.Tier + ")"
						}
					}
					found = true
					break
				}
			}
			if !found {
				row = append(row, "-")
			}
		}
		if !anyOK {
			ver = "-" // no cell completed, so nothing was verified
		}
		row = append(row, ver)
		tb.AddRow(row...)
	}
	return tb.String()
}

// BenchRecordFrom assembles the machine-readable performance record of
// a sweep set under the current schema and host header. It is the one
// producer of report.BenchRecord, so the schema stamp, the host
// dimensions and the cell layout (including per-repeat samples) cannot
// drift between writers.
func BenchRecordFrom(class byte, sweeps []Sweep, stamp string) report.BenchRecord {
	env := hostEnv()
	return report.BenchRecord{
		Schema:     report.BenchSchema,
		Stamp:      stamp,
		Class:      string(class),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Env:        &env,
		Cells:      CellRecords(sweeps),
	}
}

// CellRecords flattens every measured cell of a sweep set into its
// structured metrics record, in sweep order — the cell list of a
// report.BenchRecord.
func CellRecords(sweeps []Sweep) []report.CellMetrics {
	var out []report.CellMetrics
	for _, sw := range sweeps {
		for _, r := range sw.Runs {
			out = append(out, cellMetrics(sw.Benchmark, sw.Class, r))
		}
	}
	return out
}

// cellMetrics flattens one measured cell into its structured JSONL
// record.
func cellMetrics(bench npbgo.Benchmark, class byte, r Run) report.CellMetrics {
	m := report.CellMetrics{
		Benchmark: string(bench),
		Class:     string(class),
		Threads:   r.Threads,
		Elapsed:   r.Elapsed.Seconds(),
		Mops:      r.Mops,
		Verified:  r.Verified,
		Attempts:  r.Attempts,
		TopPhases: topPhases(r.Phases, 5),
		Schedule:  r.Schedule,
	}
	if len(r.Samples) > 0 {
		m.Samples = make([]float64, len(r.Samples))
		for i, s := range r.Samples {
			m.Samples[i] = s.Seconds()
		}
	}
	if r.Err != nil {
		m.Error = r.Err.Error()
	}
	m.Counters = r.Counters
	m.CountersNote = r.CountersNote
	m.CPUProfile = r.CPUProfile
	m.HeapProfile = r.HeapProfile
	m.Env = r.Env
	if s := r.Obs; s != nil {
		m.Regions = s.Regions
		m.Cancellations = s.Cancellations
		m.Panics = s.Panics
		m.BarrierWait = s.BarrierWait.Seconds()
		m.JoinWait = s.JoinWait.Seconds()
		m.Imbalance = s.Imbalance()
		m.WorkerBusy = make([]float64, len(s.Busy))
		m.WorkerWait = make([]float64, len(s.Wait))
		for i := range s.Busy {
			m.WorkerBusy[i] = s.Busy[i].Seconds()
			m.WorkerWait[i] = s.Wait[i].Seconds()
		}
	}
	return m
}

// topPhases returns up to n phases ordered by descending time.
func topPhases(phases []timer.Phase, n int) []report.PhaseMetric {
	if len(phases) == 0 {
		return nil
	}
	sorted := append([]timer.Phase(nil), phases...)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].Seconds > sorted[j].Seconds })
	if len(sorted) > n {
		sorted = sorted[:n]
	}
	out := make([]report.PhaseMetric, len(sorted))
	for i, p := range sorted {
		out[i] = report.PhaseMetric{Name: p.Name, Seconds: p.Seconds, Laps: p.Laps}
	}
	return out
}

// ObsTable renders the runtime-metrics summary of a sweep set: one row
// per measured cell with the worker-imbalance ratio, the busy-time
// spread, aggregate barrier and join waits, and the heaviest phases —
// the table the paper's §5.2 CG diagnosis reads off (a healthy cell
// shows imbalance near 1.00; the scheduling anomaly shows a ratio near
// the thread count). Cells without obs data are skipped.
func ObsTable(title string, sweeps []Sweep) string {
	tb := report.New(title, "Cell", "Imbal", "BusyMin", "BusyMax", "Barrier", "Join", "Top phases")
	for _, sw := range sweeps {
		for _, r := range sw.Runs {
			if r.Obs == nil || r.Err != nil {
				continue
			}
			cell := fmt.Sprintf("%s.%c t%d", sw.Benchmark, sw.Class, r.Threads)
			if r.Threads == 0 {
				cell = fmt.Sprintf("%s.%c serial", sw.Benchmark, sw.Class)
			}
			phases := ""
			for i, p := range topPhases(r.Phases, 2) {
				if i > 0 {
					phases += " "
				}
				phases += fmt.Sprintf("%s=%ss", p.Name, report.Seconds(p.Seconds))
			}
			if phases == "" {
				phases = "-"
			}
			tb.AddRow(cell,
				fmt.Sprintf("%.2f", r.Obs.Imbalance()),
				report.Seconds(r.Obs.MinBusy().Seconds()),
				report.Seconds(r.Obs.MaxBusy().Seconds()),
				report.Seconds(r.Obs.BarrierWait.Seconds()),
				report.Seconds(r.Obs.JoinWait.Seconds()),
				phases)
		}
	}
	if tb.NumRows() == 0 {
		tb.AddRow("(no obs data)")
	}
	return tb.String()
}

// CountersTable renders the hardware-counter summary of a sweep set:
// one row per measured cell with IPC, the LLC miss rate, raw
// cycle/instruction/miss totals and the multiplexing scale — the
// evidence table behind every memory-bound diagnosis. Cells whose
// counters were requested but unavailable render their note instead, so
// a missing measurement is never mistaken for silent zeros.
func CountersTable(title string, sweeps []Sweep) string {
	tb := report.New(title, "Cell", "Set", "IPC", "MissRate", "Cycles", "Instr", "LLCMiss", "BrMiss", "Scale")
	for _, sw := range sweeps {
		for _, r := range sw.Runs {
			cell := fmt.Sprintf("%s.%c %s", sw.Benchmark, sw.Class, cellName(r.Threads))
			c := r.Counters
			if c == nil {
				if r.CountersNote != "" {
					tb.AddRow(cell, r.CountersNote)
				}
				continue
			}
			tb.AddRow(cell, c.Set,
				fmt.Sprintf("%.2f", c.IPC()),
				fmt.Sprintf("%.4f", c.LLCMissRate()),
				fmt.Sprintf("%d", c.Cycles),
				fmt.Sprintf("%d", c.Instructions),
				fmt.Sprintf("%d", c.LLCMisses),
				fmt.Sprintf("%d", c.BranchMisses),
				fmt.Sprintf("%.2f", c.Scale()))
		}
	}
	if tb.NumRows() == 0 {
		tb.AddRow("(no counter data)")
	}
	return tb.String()
}

// SpeedupTable renders speedup and efficiency per thread count.
func SpeedupTable(title string, sweeps []Sweep, threads []int) string {
	header := []string{"Benchmark"}
	for _, t := range threads {
		header = append(header, fmt.Sprintf("S(%d)", t), fmt.Sprintf("E(%d)", t))
	}
	tb := report.New(title, header...)
	for _, sw := range sweeps {
		row := []string{fmt.Sprintf("%s.%c", sw.Benchmark, sw.Class)}
		for _, t := range threads {
			row = append(row, report.Speedup(sw.Speedup(t)), report.Speedup(sw.Efficiency(t)))
		}
		tb.AddRow(row...)
	}
	return tb.String()
}
