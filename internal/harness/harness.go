// Package harness drives the experiments of the paper's evaluation
// section: for each benchmark it runs a serial baseline plus a sweep of
// thread counts, derives speedup and efficiency, and assembles the
// rows of Tables 2-6. The same code backs cmd/npbsuite and the
// regression benchmarks.
package harness

import (
	"fmt"
	"time"

	"npbgo"
	"npbgo/internal/report"
)

// Run is one measured cell of a sweep.
type Run struct {
	Threads  int // 0 marks the serial baseline column
	Elapsed  time.Duration
	Mops     float64
	Verified bool
	Tier     string
}

// Sweep is the measured row set of one benchmark/class.
type Sweep struct {
	Benchmark npbgo.Benchmark
	Class     byte
	Runs      []Run
}

// RunSweep executes benchmark bench at the given class for the serial
// baseline (threads = 1, regions inline) and each requested thread
// count. Repeats > 1 keeps the best (minimum) time per cell, as
// benchmarkers do to suppress scheduling noise.
func RunSweep(bench npbgo.Benchmark, class byte, threads []int, warmup bool, repeats int) (Sweep, error) {
	if repeats < 1 {
		repeats = 1
	}
	sw := Sweep{Benchmark: bench, Class: class}
	cells := append([]int{0}, threads...)
	for _, th := range cells {
		n := th
		if n == 0 {
			n = 1
		}
		var best *Run
		for rep := 0; rep < repeats; rep++ {
			res, err := npbgo.Run(npbgo.Config{Benchmark: bench, Class: class, Threads: n, Warmup: warmup})
			if err != nil {
				return sw, err
			}
			r := Run{Threads: th, Elapsed: res.Elapsed, Mops: res.Mops,
				Verified: res.Verified, Tier: res.Tier}
			if best == nil || r.Elapsed < best.Elapsed {
				cp := r
				best = &cp
			}
		}
		sw.Runs = append(sw.Runs, *best)
	}
	return sw, nil
}

// Serial returns the serial baseline cell.
func (s Sweep) Serial() (Run, bool) {
	for _, r := range s.Runs {
		if r.Threads == 0 {
			return r, true
		}
	}
	return Run{}, false
}

// Speedup returns serial time / threaded time for the given cell.
func (s Sweep) Speedup(threads int) float64 {
	base, ok := s.Serial()
	if !ok {
		return 0
	}
	for _, r := range s.Runs {
		if r.Threads == threads && r.Elapsed > 0 {
			return base.Elapsed.Seconds() / r.Elapsed.Seconds()
		}
	}
	return 0
}

// Efficiency returns Speedup(threads)/threads.
func (s Sweep) Efficiency(threads int) float64 {
	if threads <= 0 {
		return 0
	}
	return s.Speedup(threads) / float64(threads)
}

// SuiteTable renders a set of sweeps as one paper-style table (rows:
// benchmark.class, columns: serial + thread counts, cells: seconds).
func SuiteTable(title string, sweeps []Sweep, threads []int) string {
	header := []string{"Benchmark", "Serial"}
	for _, t := range threads {
		header = append(header, fmt.Sprintf("%d", t))
	}
	header = append(header, "verified")
	tb := report.New(title, header...)
	for _, sw := range sweeps {
		row := []string{fmt.Sprintf("%s.%c", sw.Benchmark, sw.Class)}
		ver := "yes"
		if base, ok := sw.Serial(); ok {
			row = append(row, report.Seconds(base.Elapsed.Seconds()))
			if !base.Verified {
				ver = "no(" + base.Tier + ")"
			}
		} else {
			row = append(row, "-")
		}
		for _, t := range threads {
			found := false
			for _, r := range sw.Runs {
				if r.Threads == t {
					row = append(row, report.Seconds(r.Elapsed.Seconds()))
					if !r.Verified && ver == "yes" {
						ver = "no(" + r.Tier + ")"
					}
					found = true
					break
				}
			}
			if !found {
				row = append(row, "-")
			}
		}
		row = append(row, ver)
		tb.AddRow(row...)
	}
	return tb.String()
}

// SpeedupTable renders speedup and efficiency per thread count.
func SpeedupTable(title string, sweeps []Sweep, threads []int) string {
	header := []string{"Benchmark"}
	for _, t := range threads {
		header = append(header, fmt.Sprintf("S(%d)", t), fmt.Sprintf("E(%d)", t))
	}
	tb := report.New(title, header...)
	for _, sw := range sweeps {
		row := []string{fmt.Sprintf("%s.%c", sw.Benchmark, sw.Class)}
		for _, t := range threads {
			row = append(row, report.Speedup(sw.Speedup(t)), report.Speedup(sw.Efficiency(t)))
		}
		tb.AddRow(row...)
	}
	return tb.String()
}
