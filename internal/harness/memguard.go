package harness

import (
	"bufio"
	"fmt"
	"os"
	"strconv"
	"strings"

	"npbgo"
)

// MemGuard is the sweep's memory admission controller: before a cell
// launches, its estimated working set (npbgo.Config.FootprintBytes) is
// checked against the machine's available memory, and a cell that
// cannot fit is recorded as SKIP(memory: need X, have Y) instead of
// being allowed to OOM mid-sweep. This is the paper's FT anomaly
// generalized: FT class A was simply unrunnable on the 256 MB machines
// (§5), and the honest outcome is a reasoned skip, not a dead run.
//
// The zero value is ready to use: it probes /proc/meminfo and admits a
// cell if its footprint fits inside Headroom (default 80%) of available
// memory. The guard fails open — an unknown footprint or an unreadable
// probe admits the cell, because a guess must never block a runnable
// run.
type MemGuard struct {
	// Available overrides the memory probe; tests inject it. The bool
	// reports whether the probe succeeded.
	Available func() (uint64, bool)
	// Headroom is the fraction of available memory a cell may claim;
	// <= 0 means 0.8. Benchmark footprints are dominant-array
	// estimates, so the slack absorbs what they do not count.
	Headroom float64
}

// check admits or skips one cell. A skip comes back as *SkipError.
func (g *MemGuard) check(cfg npbgo.Config) error {
	need, err := cfg.FootprintBytes()
	if err != nil {
		return nil // unknown footprint: fail open
	}
	probe := g.Available
	if probe == nil {
		probe = AvailableMemory
	}
	avail, ok := probe()
	if !ok {
		return nil // no probe on this platform: fail open
	}
	headroom := g.Headroom
	if headroom <= 0 {
		headroom = 0.8
	}
	have := uint64(float64(avail) * headroom)
	if need > have {
		return &SkipError{Need: need, Have: have}
	}
	return nil
}

// AvailableMemory reports the bytes of memory the kernel estimates are
// available for new allocations without swapping (/proc/meminfo
// MemAvailable). ok is false where the probe does not exist, and the
// guard fails open.
func AvailableMemory() (uint64, bool) {
	f, err := os.Open("/proc/meminfo")
	if err != nil {
		return 0, false
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) >= 2 && fields[0] == "MemAvailable:" {
			kb, err := strconv.ParseUint(fields[1], 10, 64)
			if err != nil {
				return 0, false
			}
			return kb * 1024, true
		}
	}
	return 0, false
}

// FormatBytes renders a byte count in the nearest binary unit with one
// decimal, as SKIP cells and the -mem-limit flag speak it.
func FormatBytes(n uint64) string {
	const unit = 1024
	if n < unit {
		return fmt.Sprintf("%dB", n)
	}
	div, exp := uint64(unit), 0
	for v := n / unit; v >= unit && exp < 4; v /= unit {
		div *= unit
		exp++
	}
	return fmt.Sprintf("%.1f%ciB", float64(n)/float64(div), "KMGTP"[exp])
}

// ParseBytes parses a human byte size: a plain number (bytes) or a
// number with a B/KB/KiB/MB/MiB/GB/GiB/TB/TiB suffix, decimal and
// binary prefixes both meaning 1024 (benchmark memory talk is binary).
func ParseBytes(s string) (uint64, error) {
	t := strings.TrimSpace(strings.ToUpper(s))
	mult := uint64(1)
	for _, suf := range []struct {
		tag string
		m   uint64
	}{
		{"TIB", 1 << 40}, {"TB", 1 << 40},
		{"GIB", 1 << 30}, {"GB", 1 << 30},
		{"MIB", 1 << 20}, {"MB", 1 << 20},
		{"KIB", 1 << 10}, {"KB", 1 << 10},
		{"B", 1},
	} {
		if strings.HasSuffix(t, suf.tag) {
			mult = suf.m
			t = strings.TrimSpace(strings.TrimSuffix(t, suf.tag))
			break
		}
	}
	v, err := strconv.ParseFloat(t, 64)
	if err != nil || v < 0 {
		return 0, fmt.Errorf("harness: bad byte size %q", s)
	}
	return uint64(v * float64(mult)), nil
}
