// Subprocess cell isolation: each sweep cell executes in a child
// process watched by the parent, which hard-kills it on a deadline or
// RSS breach. The in-process timeout of Options.Timeout is cooperative
// — a runaway kernel that stops polling its context, or one allocating
// toward OOM, cannot be stopped from inside because goroutines are not
// killable — so the only bulkhead that actually holds is a process
// boundary. A killed cell degrades to a structured
// FAIL(timeout-killed | oom-killed) record and the sweep continues; an
// OOM-killed child no longer takes the whole sweep (and its journal)
// down with it, which is what made the paper's FT memory-limit runs
// (§5) total losses.
package harness

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"os/exec"
	"strconv"
	"strings"
	"time"

	"npbgo"
	"npbgo/internal/fault"
	"npbgo/internal/perfcount"
	"npbgo/internal/profile"
	"npbgo/internal/report"
)

// Isolation configures subprocess cell execution.
type Isolation struct {
	// Cmd is the argv prefix that re-enters this program in cell-runner
	// mode; the cell's CellSpec JSON is appended as the final argument.
	// npbsuite uses []string{os.Executable(), "-run-cell"}; tests use
	// the test binary with a helper-test filter.
	Cmd []string
	// MemLimitBytes kills the child when its resident set exceeds it;
	// 0 disables the RSS watchdog (the deadline watchdog still runs).
	MemLimitBytes uint64
	// Poll is the watchdog sampling interval; <= 0 means 25ms.
	Poll time.Duration
	// FaultSeed/FaultRules are forwarded into each child's injection
	// registry — fault plans are process-local, so an isolated chaos or
	// robustness run must ship its plan across the process boundary.
	FaultSeed  int64
	FaultRules []fault.Rule
}

// CellSpec is the parent-to-child payload: everything a child process
// needs to execute one cell.
type CellSpec struct {
	Benchmark  string       `json:"benchmark"`
	Class      string       `json:"class"`
	Threads    int          `json:"threads"`
	Warmup     bool         `json:"warmup,omitempty"`
	Obs        bool         `json:"obs,omitempty"`
	Counters   bool         `json:"counters,omitempty"`
	FaultSeed  int64        `json:"fault_seed,omitempty"`
	FaultRules []fault.Rule `json:"fault_rules,omitempty"`
	// ProfileDir/ProfileLabel make the child capture its own CPU and
	// heap profiles (the profiler must run in the process being
	// profiled). The child writes to the shared per-cell paths; the
	// parent collects them from disk, so a child that flushed before
	// failing still hands over its profiles (a hard-killed child's
	// unflushed, zero-byte file is filtered out on collection).
	ProfileDir   string `json:"profile_dir,omitempty"`
	ProfileLabel string `json:"profile_label,omitempty"`
}

// CellResult is the child-to-parent payload, printed as one JSON object
// on the child's stdout. Errors travel inside it (with the child still
// exiting 0) so the parent can rebuild the structured *npbgo.RunError;
// a nonzero child exit means the protocol itself broke.
type CellResult struct {
	ElapsedSec float64 `json:"elapsed_sec"`
	Mops       float64 `json:"mops"`
	Verified   bool    `json:"verified"`
	Tier       string  `json:"tier,omitempty"`
	ErrKind    string  `json:"err_kind,omitempty"`
	Error      string  `json:"error,omitempty"`
	// Counter attribution crosses the process boundary with the cell:
	// the child samples, the parent stamps the metrics record.
	Counters     *perfcount.Stats `json:"counters,omitempty"`
	CountersNote string           `json:"counters_note,omitempty"`
	// Env is the child's own environment snapshot, always stamped; the
	// parent suppresses it when it matches its own, so per-cell
	// provenance appears in records only when it actually differs.
	Env *report.EnvInfo `json:"env,omitempty"`
}

// RunCellMain is the child-side entry point behind `npbsuite
// -run-cell`: decode the spec, arm any forwarded fault plan, execute
// the cell, print the CellResult. The return value is the process exit
// code.
func RunCellMain(specJSON string, out io.Writer) int {
	var spec CellSpec
	if err := json.Unmarshal([]byte(specJSON), &spec); err != nil {
		fmt.Fprintf(os.Stderr, "run-cell: bad spec: %v\n", err)
		return 2
	}
	if len(spec.FaultRules) > 0 {
		fault.Activate(spec.FaultSeed, spec.FaultRules...)
		defer fault.Reset()
	}
	cfg := npbgo.Config{
		Benchmark: npbgo.Benchmark(spec.Benchmark),
		Class:     classByte(spec.Class),
		Threads:   spec.Threads,
		Warmup:    spec.Warmup,
		Obs:       spec.Obs,
		Counters:  spec.Counters,
	}
	var cap *profile.Capture
	if spec.ProfileDir != "" {
		c, err := profile.Start(spec.ProfileDir, spec.ProfileLabel)
		if err != nil {
			// A requested-but-impossible capture is a cell failure, not a
			// protocol failure: it travels inside the result like any
			// other cell error.
			env := report.CollectEnv()
			json.NewEncoder(out).Encode(CellResult{
				ErrKind: "profile", Error: err.Error(), Env: &env})
			return 0
		}
		cap = c
	}
	res, err := npbgo.Run(cfg)
	if serr := cap.Stop(); serr != nil && err == nil {
		err = serr
	}
	env := report.CollectEnv()
	cr := CellResult{
		ElapsedSec:   res.Elapsed.Seconds(),
		Mops:         res.Mops,
		Verified:     res.Verified,
		Tier:         res.Tier,
		Counters:     res.Counters,
		CountersNote: res.CountersNote,
		Env:          &env,
	}
	if err != nil {
		cr.Error = err.Error()
		cr.ErrKind = "error"
		var re *npbgo.RunError
		if errors.As(err, &re) {
			cr.ErrKind = re.Kind
		}
	}
	if jerr := json.NewEncoder(out).Encode(cr); jerr != nil {
		fmt.Fprintf(os.Stderr, "run-cell: encode: %v\n", jerr)
		return 2
	}
	return 0
}

func classByte(s string) byte {
	if s == "" {
		return 'S'
	}
	return s[0]
}

// runIsolated executes one cell as a watched child process. timeout is
// the hard per-attempt deadline (0 = unbounded); the context cancels
// the child too (sweep-level cancellation). profileDir/label, when set,
// make the child capture its own profiles. The returned EnvInfo is the
// child's environment when it differs from this process's, nil when
// identical (the common case — same binary, same host) or when the
// child died before reporting.
func runIsolated(ctx context.Context, cfg npbgo.Config, timeout time.Duration, iso *Isolation, profileDir, label string) (npbgo.Result, *report.EnvInfo, error) {
	res := npbgo.Result{Benchmark: cfg.Benchmark, Class: cfg.Class, Threads: cfg.Threads}
	if len(iso.Cmd) == 0 {
		return res, nil, errors.New("harness: Isolation.Cmd is empty")
	}
	spec := CellSpec{
		Benchmark: string(cfg.Benchmark), Class: string(cfg.Class),
		Threads: cfg.Threads, Warmup: cfg.Warmup, Obs: cfg.Obs,
		Counters:  cfg.Counters,
		FaultSeed: iso.FaultSeed, FaultRules: iso.FaultRules,
		ProfileDir: profileDir, ProfileLabel: label,
	}
	payload, err := json.Marshal(spec)
	if err != nil {
		return res, nil, fmt.Errorf("harness: isolate: %w", err)
	}
	cmd := exec.Command(iso.Cmd[0], append(append([]string{}, iso.Cmd[1:]...), string(payload))...)
	var stdout, stderr bytes.Buffer
	cmd.Stdout, cmd.Stderr = &stdout, &stderr
	start := time.Now()
	if err := cmd.Start(); err != nil {
		return res, nil, fmt.Errorf("harness: isolate: %w", err)
	}
	waitErr, killed := watchChild(ctx, cmd, timeout, iso)
	res.Elapsed = time.Since(start)
	if killed != nil {
		return res, nil, killed
	}
	if waitErr != nil {
		return res, nil, fmt.Errorf("harness: isolated cell exited abnormally: %w (stderr: %s)",
			waitErr, strings.TrimSpace(stderr.String()))
	}
	var cr CellResult
	if err := json.NewDecoder(&stdout).Decode(&cr); err != nil {
		return res, nil, fmt.Errorf("harness: isolated cell protocol: %w (stderr: %s)",
			err, strings.TrimSpace(stderr.String()))
	}
	env := cr.Env
	if env != nil && *env == hostEnv() {
		env = nil
	}
	res.Elapsed = time.Duration(cr.ElapsedSec * float64(time.Second))
	res.Mops = cr.Mops
	res.Verified = cr.Verified
	res.Tier = cr.Tier
	res.Counters = cr.Counters
	res.CountersNote = cr.CountersNote
	if cr.Error != "" {
		return res, env, &npbgo.RunError{Benchmark: cfg.Benchmark, Class: cfg.Class,
			Threads: cfg.Threads, Kind: cr.ErrKind, Cause: errors.New(cr.Error)}
	}
	return res, env, nil
}

// watchChild waits for the child while running the deadline and RSS
// watchdogs. On a breach it hard-kills the child, reaps it, and returns
// the structured kill error; otherwise it returns the child's own exit
// status.
func watchChild(ctx context.Context, cmd *exec.Cmd, timeout time.Duration, iso *Isolation) (waitErr error, killed error) {
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()

	var deadline <-chan time.Time
	if timeout > 0 {
		t := time.NewTimer(timeout)
		defer t.Stop()
		deadline = t.C
	}
	poll := iso.Poll
	if poll <= 0 {
		poll = 25 * time.Millisecond
	}
	ticker := time.NewTicker(poll)
	defer ticker.Stop()

	start := time.Now()
	kill := func(reason string) error {
		cmd.Process.Kill()
		<-done // reap; the kill is the verdict, not the exit status
		return &KilledError{Reason: reason, After: time.Since(start)}
	}
	for {
		select {
		case err := <-done:
			return err, nil
		case <-ctx.Done():
			return nil, kill("cancelled")
		case <-deadline:
			return nil, kill("timeout-killed")
		case <-ticker.C:
			if iso.MemLimitBytes > 0 {
				if rss, ok := processRSS(cmd.Process.Pid); ok && rss > iso.MemLimitBytes {
					return nil, kill("oom-killed")
				}
			}
		}
	}
}

// processRSS reads a process's resident set size from
// /proc/<pid>/status (VmRSS). ok is false where the probe is
// unavailable, which disables the RSS watchdog gracefully.
func processRSS(pid int) (uint64, bool) {
	buf, err := os.ReadFile(fmt.Sprintf("/proc/%d/status", pid))
	if err != nil {
		return 0, false
	}
	for _, line := range strings.Split(string(buf), "\n") {
		if strings.HasPrefix(line, "VmRSS:") {
			fields := strings.Fields(line)
			if len(fields) >= 2 {
				kb, err := strconv.ParseUint(fields[1], 10, 64)
				if err == nil {
					return kb * 1024, true
				}
			}
			return 0, false
		}
	}
	return 0, false
}
