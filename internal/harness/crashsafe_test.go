package harness

// Crash-safety tests: the journal kill/resume drill, the subprocess
// watchdog, the memory admission guard, and the context-interruptible
// retry backoff. The kill test is the package's centerpiece: it
// SIGKILLs a real journaled sweep mid-cell (run in a helper process)
// and proves that -resume completes exactly the planned cell set with
// no cell executed twice.

import (
	"bytes"
	"context"
	"errors"
	"flag"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"npbgo"
	"npbgo/internal/fault"
	"npbgo/internal/journal"
	"npbgo/internal/report"
)

// TestHelperJournaledSweep is not a test: re-invoked by
// TestKillResumeJournal as a separate process, it runs a journaled,
// isolated sweep slowed by an injected per-cell delay so the parent
// can SIGKILL it mid-flight.
func TestHelperJournaledSweep(t *testing.T) {
	if os.Getenv("NPB_HARNESS_HELPER") != "journaled-sweep" {
		t.Skip("helper process entry point")
	}
	path := os.Getenv("NPB_HARNESS_JOURNAL")
	fault.Activate(1, fault.Rule{Site: "harness.cell", Kind: fault.KindDelay,
		Count: -1, Sleep: 500 * time.Millisecond})
	threads := []int{1, 2}
	w, err := journal.Create(path, journal.Plan{
		Class: "S", Threads: threads, Benchmarks: []string{"CG"},
		Planned: PlannedCells([]npbgo.Benchmark{npbgo.CG}, 'S', threads),
	})
	if err != nil {
		t.Fatalf("helper: %v", err)
	}
	RunSweepOpts(npbgo.CG, 'S', threads, Options{
		Journal: w,
		Isolate: &Isolation{Cmd: []string{os.Args[0], "-test.run=^TestHelperRunCell$"}},
	})
	w.Close()
	os.Exit(0)
}

// TestHelperRunCell is not a test: it is the child side of the
// isolation protocol, standing in for `npbsuite -run-cell`.
func TestHelperRunCell(t *testing.T) {
	if os.Getenv("NPB_HARNESS_RUNCELL") != "1" {
		t.Skip("helper process entry point")
	}
	os.Exit(RunCellMain(flag.Arg(0), os.Stdout))
}

// TestKillResumeJournal is the crash drill of ISSUE acceptance: SIGKILL
// an in-flight isolated journaled sweep, resume from its journal, and
// require (a) the completed-cell set to equal the uninterrupted plan,
// (b) no cell to have executed twice, and (c) cells finished before the
// kill to have been replayed, not re-run.
func TestKillResumeJournal(t *testing.T) {
	if testing.Short() {
		t.Skip("process kill drill in -short mode")
	}
	jp := filepath.Join(t.TempDir(), "sweep.jsonl")
	cmd := exec.Command(os.Args[0], "-test.run=^TestHelperJournaledSweep$")
	cmd.Env = append(os.Environ(),
		"NPB_HARNESS_HELPER=journaled-sweep",
		"NPB_HARNESS_RUNCELL=1",
		"NPB_HARNESS_JOURNAL="+jp)
	if err := cmd.Start(); err != nil {
		t.Fatalf("start helper: %v", err)
	}
	// Let at least one cell finish, then pull the plug mid-sweep.
	deadline := time.Now().Add(60 * time.Second)
	for {
		if lg, err := journal.Read(jp); err == nil && len(lg.State().Done) >= 1 {
			break
		}
		if time.Now().After(deadline) {
			cmd.Process.Kill()
			cmd.Wait()
			t.Fatal("helper produced no finished cell within 60s")
		}
		time.Sleep(5 * time.Millisecond)
	}
	cmd.Process.Kill() // SIGKILL: no deferred cleanup, no journal close
	cmd.Wait()

	w, lg, err := journal.AppendTo(jp, "resume-test")
	if err != nil {
		t.Fatalf("journal did not survive SIGKILL: %v", err)
	}
	st := lg.State()
	preDone := make(map[journal.CellKey]bool)
	for k := range st.Done {
		preDone[k] = true
	}
	plan := lg.Plan()
	if len(preDone) == len(plan.Planned) {
		t.Logf("note: helper finished all %d cells before the kill; resume is a pure replay", len(preDone))
	}
	if _, err := RunSweepOpts(npbgo.CG, 'S', plan.Threads, Options{
		Journal: w, Resume: st.Done,
	}); err != nil {
		t.Fatalf("resumed sweep failed: %v", err)
	}
	w.Close()

	final, err := journal.Read(jp)
	if err != nil {
		t.Fatalf("final journal unreadable: %v", err)
	}
	if final.Truncated {
		t.Error("final journal still torn after AppendTo recovery")
	}
	fst := final.State()
	if len(fst.Done) != len(plan.Planned) {
		t.Fatalf("completed %d cells, plan has %d", len(fst.Done), len(plan.Planned))
	}
	for _, k := range plan.Planned {
		if _, ok := fst.Done[k]; !ok {
			t.Errorf("planned cell %s never completed", k)
		}
	}
	starts := make(map[journal.CellKey]int)
	finishes := make(map[journal.CellKey]int)
	for _, e := range final.Entries {
		switch e.Kind {
		case journal.KindStart:
			starts[*e.Cell]++
		case journal.KindFinish:
			finishes[*e.Cell]++
		}
	}
	for k, n := range finishes {
		if n != 1 {
			t.Errorf("cell %s finished %d times, want exactly 1", k, n)
		}
	}
	for k := range preDone {
		if starts[k] != 1 {
			t.Errorf("pre-kill cell %s has %d starts: it was re-executed on resume", k, starts[k])
		}
	}
}

// isolationForTest returns an Isolation whose child is this test binary
// in run-cell mode.
func isolationForTest(t *testing.T) *Isolation {
	t.Setenv("NPB_HARNESS_RUNCELL", "1")
	return &Isolation{Cmd: []string{os.Args[0], "-test.run=^TestHelperRunCell$"}}
}

func TestIsolatedCellHappyPath(t *testing.T) {
	res, _, err := runIsolated(context.Background(),
		npbgo.Config{Benchmark: npbgo.CG, Class: 'S', Threads: 1},
		0, isolationForTest(t), "", "")
	if err != nil {
		t.Fatalf("isolated cell failed: %v", err)
	}
	if !res.Verified || res.Elapsed <= 0 || res.Mops <= 0 {
		t.Fatalf("implausible isolated result: %+v", res)
	}
}

// TestIsolatedTimeoutKilled: a child stuck in an injected 30s delay
// must be hard-killed at the deadline and surface as a structured
// KilledError — the failure mode an in-process timeout cannot stop.
func TestIsolatedTimeoutKilled(t *testing.T) {
	iso := isolationForTest(t)
	iso.FaultSeed = 1
	iso.FaultRules = []fault.Rule{{Site: "cg.iter", Kind: fault.KindDelay,
		Count: -1, Sleep: 30 * time.Second}}
	start := time.Now()
	_, _, err := runIsolated(context.Background(),
		npbgo.Config{Benchmark: npbgo.CG, Class: 'S', Threads: 1},
		300*time.Millisecond, iso, "", "")
	var ke *KilledError
	if !asKilled(err, &ke) || ke.Reason != "timeout-killed" {
		t.Fatalf("err = %v, want KilledError(timeout-killed)", err)
	}
	if took := time.Since(start); took > 10*time.Second {
		t.Fatalf("kill took %v: watchdog did not cut the 30s delay short", took)
	}
	if failReason(err) != "timeout-killed" {
		t.Fatalf("failReason = %q", failReason(err))
	}
}

// TestIsolatedOOMKilled: with an RSS limit any real child must breach,
// the watchdog kills it and reports oom-killed — the paper's FT
// memory-limit deaths (§5) degraded to one structured FAIL cell.
func TestIsolatedOOMKilled(t *testing.T) {
	iso := isolationForTest(t)
	iso.MemLimitBytes = 1
	iso.Poll = 2 * time.Millisecond
	iso.FaultSeed = 1
	// Keep the child alive long enough for the first RSS sample.
	iso.FaultRules = []fault.Rule{{Site: "cg.iter", Kind: fault.KindDelay,
		Count: -1, Sleep: 30 * time.Second}}
	_, _, err := runIsolated(context.Background(),
		npbgo.Config{Benchmark: npbgo.CG, Class: 'S', Threads: 1}, 0, iso, "", "")
	var ke *KilledError
	if !asKilled(err, &ke) || ke.Reason != "oom-killed" {
		t.Fatalf("err = %v, want KilledError(oom-killed)", err)
	}
	if failReason(err) != "oom-killed" {
		t.Fatalf("failReason = %q", failReason(err))
	}
}

// TestIsolatedCancelKillsChild: cancelling the sweep context must kill
// the child rather than leave it running unsupervised.
func TestIsolatedCancelKillsChild(t *testing.T) {
	iso := isolationForTest(t)
	iso.FaultSeed = 1
	iso.FaultRules = []fault.Rule{{Site: "cg.iter", Kind: fault.KindDelay,
		Count: -1, Sleep: 30 * time.Second}}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(150 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, _, err := runIsolated(ctx,
		npbgo.Config{Benchmark: npbgo.CG, Class: 'S', Threads: 1}, 0, iso, "", "")
	var ke *KilledError
	if !asKilled(err, &ke) || ke.Reason != "cancelled" {
		t.Fatalf("err = %v, want KilledError(cancelled)", err)
	}
	if took := time.Since(start); took > 10*time.Second {
		t.Fatalf("cancel kill took %v", took)
	}
}

// TestIsolatedErrorRoundTrip: a structured failure inside the child (an
// injected verification corruption) must come back across the process
// boundary as a RunError of the same kind, not as a flat exit failure.
func TestIsolatedErrorRoundTrip(t *testing.T) {
	iso := isolationForTest(t)
	iso.FaultSeed = 1
	iso.FaultRules = []fault.Rule{{Site: "cg.verify", Kind: fault.KindCorrupt, Count: -1}}
	_, _, err := runIsolated(context.Background(),
		npbgo.Config{Benchmark: npbgo.CG, Class: 'S', Threads: 1}, 0, iso, "", "")
	var re *npbgo.RunError
	if !asRunError(err, &re) || re.Kind != npbgo.ErrVerification {
		t.Fatalf("err = %v, want RunError(verification)", err)
	}
	if failReason(err) != "verification" {
		t.Fatalf("failReason = %q", failReason(err))
	}
}

func TestRunCellMainBadSpec(t *testing.T) {
	var out bytes.Buffer
	if code := RunCellMain("{not json", &out); code != 2 {
		t.Fatalf("exit code = %d, want 2 for a broken spec", code)
	}
}

// TestRetryBackoffInterruptedByCancel is the regression test for the
// satellite fix: the retry backoff used to be a bare time.Sleep, so
// cancelling a sweep mid-backoff still waited out the full delay. With
// a 30s backoff and a cancel after 100ms, the sweep must return almost
// immediately.
func TestRetryBackoffInterruptedByCancel(t *testing.T) {
	fault.Activate(1, fault.Rule{Site: "harness.cell", Kind: fault.KindPanic, Count: -1})
	defer fault.Reset()
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(100 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := RunSweepOpts(npbgo.EP, 'S', nil, Options{
		Retries: 3,
		Backoff: 30 * time.Second,
		Context: ctx,
	})
	if took := time.Since(start); took > 5*time.Second {
		t.Fatalf("sweep took %v: backoff was not interrupted by cancellation", took)
	}
	if err == nil {
		t.Fatal("sweep succeeded despite unlimited injected panics")
	}
}

// TestMemGuardSkipsAndJournals: an unfittable cell becomes
// SKIP(memory: ...) — not a failure, not an execution — and its journal
// entry is StatusSkip, which resume treats as still pending.
func TestMemGuardSkipsAndJournals(t *testing.T) {
	jp := filepath.Join(t.TempDir(), "j.jsonl")
	threads := []int{1}
	w, err := journal.Create(jp, journal.Plan{
		Class: "S", Threads: threads, Benchmarks: []string{"CG"},
		Planned: PlannedCells([]npbgo.Benchmark{npbgo.CG}, 'S', threads),
	})
	if err != nil {
		t.Fatal(err)
	}
	guard := &MemGuard{Available: func() (uint64, bool) { return 1024, true }}
	sw, err := RunSweepOpts(npbgo.CG, 'S', threads, Options{Journal: w, MemGuard: guard})
	w.Close()
	if err != nil {
		t.Fatalf("skips must not fail the sweep: %v", err)
	}
	for _, r := range sw.Runs {
		if !IsSkip(r.Err) {
			t.Fatalf("cell t%d not skipped: %+v", r.Threads, r)
		}
		if txt := cellText(r); !strings.HasPrefix(txt, "SKIP(memory:") {
			t.Fatalf("cell renders %q, want SKIP(memory: ...)", txt)
		}
		if r.Attempts != 0 {
			t.Fatalf("skipped cell consumed %d attempts", r.Attempts)
		}
	}
	lg, err := journal.Read(jp)
	if err != nil {
		t.Fatal(err)
	}
	st := lg.State()
	if len(st.Done) != 0 || len(st.Skipped) != 2 {
		t.Fatalf("journal state done=%d skipped=%d, want 0/2", len(st.Done), len(st.Skipped))
	}
	if got := len(st.Pending()); got != 2 {
		t.Fatalf("skipped cells must stay pending for resume, got %d pending", got)
	}
}

// TestMemGuardFailsOpen: an unreadable probe or unknown footprint must
// admit the cell — a guess never blocks a runnable run.
func TestMemGuardFailsOpen(t *testing.T) {
	noProbe := &MemGuard{Available: func() (uint64, bool) { return 0, false }}
	if err := noProbe.check(npbgo.Config{Benchmark: npbgo.CG, Class: 'S', Threads: 1}); err != nil {
		t.Fatalf("failed probe must admit: %v", err)
	}
	tiny := &MemGuard{Available: func() (uint64, bool) { return 1, true }}
	if err := tiny.check(npbgo.Config{Benchmark: "NOPE", Class: 'S', Threads: 1}); err != nil {
		t.Fatalf("unknown footprint must admit: %v", err)
	}
	if err := tiny.check(npbgo.Config{Benchmark: npbgo.CG, Class: 'S', Threads: 1}); !IsSkip(err) {
		t.Fatalf("1-byte budget admitted CG.S: %v", err)
	}
}

// TestResumeReplaysWithoutExecuting: cells present in Options.Resume
// come back from their journaled metrics; an always-panic fault rule
// proves no benchmark actually ran.
func TestResumeReplaysWithoutExecuting(t *testing.T) {
	fault.Activate(1, fault.Rule{Site: "harness.cell", Kind: fault.KindPanic, Count: -1})
	defer fault.Reset()
	key := func(th int) journal.CellKey {
		return journal.CellKey{Benchmark: "CG", Class: "S", Threads: th}
	}
	resume := map[journal.CellKey]*report.CellMetrics{
		key(0): {Benchmark: "CG", Class: "S", Threads: 0, Elapsed: 1.5, Mops: 10, Verified: true, Attempts: 1},
		key(1): {Benchmark: "CG", Class: "S", Threads: 1, Elapsed: 0.75, Mops: 20, Verified: true, Attempts: 2,
			Samples: []float64{0.8, 0.75}},
	}
	sw, err := RunSweepOpts(npbgo.CG, 'S', []int{1}, Options{Resume: resume})
	if err != nil {
		t.Fatalf("replayed sweep failed (a cell must have executed): %v", err)
	}
	if len(sw.Runs) != 2 {
		t.Fatalf("got %d runs", len(sw.Runs))
	}
	for _, r := range sw.Runs {
		if !r.Replayed {
			t.Fatalf("cell t%d not marked replayed", r.Threads)
		}
	}
	if sw.Runs[0].Elapsed != 1500*time.Millisecond {
		t.Fatalf("replayed serial elapsed = %v", sw.Runs[0].Elapsed)
	}
	if got := len(sw.Runs[1].Samples); got != 2 {
		t.Fatalf("replayed samples = %d, want 2", got)
	}
	if sp := sw.Speedup(1); sp < 1.99 || sp > 2.01 {
		t.Fatalf("speedup over replayed cells = %v, want 2.0", sp)
	}
}

func TestParseFormatBytes(t *testing.T) {
	cases := []struct {
		in   string
		want uint64
	}{
		{"0", 0}, {"512", 512}, {"1KiB", 1024}, {"2kb", 2048},
		{"1.5MiB", 3 << 19}, {"2GiB", 2 << 30}, {"2GB", 2 << 30}, {"1TiB", 1 << 40},
	}
	for _, c := range cases {
		got, err := ParseBytes(c.in)
		if err != nil || got != c.want {
			t.Errorf("ParseBytes(%q) = %d, %v; want %d", c.in, got, err, c.want)
		}
	}
	for _, bad := range []string{"", "x", "-1", "GiB"} {
		if _, err := ParseBytes(bad); err == nil {
			t.Errorf("ParseBytes(%q) did not fail", bad)
		}
	}
	if s := FormatBytes(2 << 30); s != "2.0GiB" {
		t.Errorf("FormatBytes(2GiB) = %q", s)
	}
	if s := FormatBytes(512); s != "512B" {
		t.Errorf("FormatBytes(512) = %q", s)
	}
}

func asKilled(err error, target **KilledError) bool      { return errors.As(err, target) }
func asRunError(err error, target **npbgo.RunError) bool { return errors.As(err, target) }
