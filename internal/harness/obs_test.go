package harness

import (
	"bufio"
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"npbgo"
	"npbgo/internal/obs"
	"npbgo/internal/report"
	"npbgo/internal/timer"
)

// TestObsSweepCollectsMetrics drives a tiny real sweep with Options.Obs
// and checks that every cell carries a snapshot and that the JSONL sink
// receives one well-formed record per cell.
func TestObsSweepCollectsMetrics(t *testing.T) {
	var sink bytes.Buffer
	sw, err := RunSweepOpts(npbgo.CG, 'S', []int{2}, Options{Obs: true, Metrics: &sink})
	if err != nil {
		t.Fatal(err)
	}
	if len(sw.Runs) != 2 { // serial + threads=2
		t.Fatalf("got %d runs", len(sw.Runs))
	}
	for _, r := range sw.Runs {
		if r.Obs == nil {
			t.Fatalf("threads=%d: no obs snapshot", r.Threads)
		}
		if r.Obs.Regions == 0 {
			t.Fatalf("threads=%d: no regions recorded", r.Threads)
		}
		if len(r.Phases) == 0 {
			t.Fatalf("threads=%d: no phase profile (Obs should imply timers for CG)", r.Threads)
		}
	}
	// Parallel cells should have attributed busy time on every worker.
	for _, r := range sw.Runs {
		if r.Threads != 2 {
			continue
		}
		for i, b := range r.Obs.Busy {
			if b <= 0 {
				t.Fatalf("worker %d has no busy time: %+v", i, r.Obs.Busy)
			}
		}
		if im := r.Obs.Imbalance(); im < 1 {
			t.Fatalf("imbalance %v < 1", im)
		}
	}

	lines := 0
	sc := bufio.NewScanner(&sink)
	for sc.Scan() {
		var m report.CellMetrics
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			t.Fatalf("bad JSONL line: %v", err)
		}
		if m.Benchmark != "CG" || m.Class != "S" {
			t.Fatalf("wrong cell identity: %+v", m)
		}
		if m.Regions == 0 || len(m.WorkerBusy) == 0 {
			t.Fatalf("metrics record missing obs data: %+v", m)
		}
		if len(m.TopPhases) == 0 {
			t.Fatalf("metrics record missing phases: %+v", m)
		}
		lines++
	}
	if lines != 2 {
		t.Fatalf("got %d JSONL records, want 2", lines)
	}
}

func TestObsTableRendersImbalance(t *testing.T) {
	stats := obs.New(2).Snapshot()
	stats.Busy = []time.Duration{2 * time.Second, time.Second}
	sw := Sweep{Benchmark: npbgo.CG, Class: 'S', Runs: []Run{
		{Threads: 2, Elapsed: time.Second, Obs: stats,
			Phases: []timer.Phase{{Name: "t_conj_grad", Seconds: 0.9, Laps: 15}}},
	}}
	out := ObsTable("metrics", []Sweep{sw})
	if !strings.Contains(out, "CG.S t2") {
		t.Fatalf("missing cell row:\n%s", out)
	}
	if !strings.Contains(out, "1.33") { // 2s / mean(1.5s)
		t.Fatalf("missing imbalance ratio:\n%s", out)
	}
	if !strings.Contains(out, "t_conj_grad") {
		t.Fatalf("missing top phase:\n%s", out)
	}
}

func TestObsTableSkipsCellsWithoutData(t *testing.T) {
	sw := Sweep{Benchmark: npbgo.EP, Class: 'S', Runs: []Run{{Threads: 1}}}
	out := ObsTable("metrics", []Sweep{sw})
	if !strings.Contains(out, "no obs data") {
		t.Fatalf("expected placeholder row:\n%s", out)
	}
}

func TestTopPhasesOrdersAndCaps(t *testing.T) {
	phases := []timer.Phase{
		{Name: "a", Seconds: 1},
		{Name: "b", Seconds: 3},
		{Name: "c", Seconds: 2},
	}
	top := topPhases(phases, 2)
	if len(top) != 2 || top[0].Name != "b" || top[1].Name != "c" {
		t.Fatalf("topPhases = %+v", top)
	}
}
