// Package escape turns the Go compiler's escape-analysis diagnostics
// (`go build -gcflags=-m=2`) into a stable, diffable report — the
// compiler-precision complement to the hotalloc analyzer and the
// allocgate budgets. The report format is JSONL tagged
// "npbgo/escape/v1": a header record followed by one record per heap
// escape, sorted, so reports are byte-comparable across runs and the
// committed baseline diffs cleanly in review.
//
// Diffing is by (package, file, message) with multiplicities, not by
// line number: editing an unrelated part of a file moves every
// diagnostic below it, and a line-keyed diff would drown the one new
// escape in hundreds of moved ones. A genuinely new escape changes the
// multiset and is reported with the current file:line as the named
// site.
package escape

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Format tags the report header; bump the suffix on incompatible
// schema changes.
const Format = "npbgo/escape/v1"

// Record is one heap-escape diagnostic.
type Record struct {
	Pkg  string `json:"pkg"`  // import path, from the compiler's "# pkg" group header
	File string `json:"file"` // path as the compiler printed it (repo-relative)
	Line int    `json:"line"`
	Col  int    `json:"col"`
	Msg  string `json:"msg"` // normalized diagnostic, e.g. "func literal escapes to heap"
}

// header is the first JSONL record of a report.
type header struct {
	Format string `json:"format"`
}

// diagRe matches one compiler diagnostic line: file:line:col: message.
var diagRe = regexp.MustCompile(`^([^\s:]+\.go):(\d+):(\d+): (.*)$`)

// Parse extracts the heap-escape records from raw `go build
// -gcflags=-m=2` output. Package attribution follows the "# importpath"
// group headers the go tool emits. The verbose -m=2 stream carries each
// escape twice (once with a trailing colon introducing the flow
// explanation, once bare) plus indented flow lines; Parse normalizes
// and deduplicates so each site yields exactly one record.
func Parse(output string) []Record {
	var recs []Record
	seen := make(map[Record]bool)
	pkg := ""
	sc := bufio.NewScanner(strings.NewReader(output))
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "# ") {
			pkg = strings.TrimSpace(line[2:])
			continue
		}
		m := diagRe.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		msg := m[4]
		if strings.HasPrefix(msg, " ") {
			continue // indented flow/from explanation line
		}
		msg = strings.TrimSuffix(msg, ":")
		if !isEscape(msg) {
			continue
		}
		ln, _ := strconv.Atoi(m[2])
		col, _ := strconv.Atoi(m[3])
		r := Record{Pkg: pkg, File: m[1], Line: ln, Col: col, Msg: msg}
		if !seen[r] {
			seen[r] = true
			recs = append(recs, r)
		}
	}
	Sort(recs)
	return recs
}

// isEscape reports whether a normalized diagnostic message describes a
// heap escape (as opposed to inlining chatter, "does not escape"
// confirmations, or parameter leak notes).
func isEscape(msg string) bool {
	return strings.HasSuffix(msg, "escapes to heap") ||
		strings.HasPrefix(msg, "moved to heap: ")
}

// Sort orders records deterministically: by package, file, line,
// column, message.
func Sort(recs []Record) {
	sort.Slice(recs, func(i, j int) bool {
		a, b := recs[i], recs[j]
		if a.Pkg != b.Pkg {
			return a.Pkg < b.Pkg
		}
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Msg < b.Msg
	})
}

// Write serializes a report: the format header followed by one JSON
// record per line, in sorted order.
func Write(w io.Writer, recs []Record) error {
	enc := json.NewEncoder(w)
	if err := enc.Encode(header{Format: Format}); err != nil {
		return err
	}
	sorted := append([]Record(nil), recs...)
	Sort(sorted)
	for _, r := range sorted {
		if err := enc.Encode(r); err != nil {
			return err
		}
	}
	return nil
}

// Read parses a report written by Write, validating the format header.
func Read(r io.Reader) ([]Record, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	if !sc.Scan() {
		return nil, fmt.Errorf("escape: empty report (missing %s header)", Format)
	}
	var h header
	if err := json.Unmarshal(sc.Bytes(), &h); err != nil {
		return nil, fmt.Errorf("escape: bad header: %w", err)
	}
	if h.Format != Format {
		return nil, fmt.Errorf("escape: format %q, want %q", h.Format, Format)
	}
	var recs []Record
	for n := 2; sc.Scan(); n++ {
		if len(strings.TrimSpace(sc.Text())) == 0 {
			continue
		}
		var r Record
		if err := json.Unmarshal(sc.Bytes(), &r); err != nil {
			return nil, fmt.Errorf("escape: line %d: %w", n, err)
		}
		recs = append(recs, r)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return recs, nil
}

// Site is one (package, file, message) diff identity.
type Site struct {
	Pkg, File, Msg string
}

// Delta is one changed site in a baseline/current comparison. Base and
// Cur are the occurrence counts on each side; Sample points at a
// current occurrence (or, for a disappeared site, a baseline one) so
// the finding names a file:line.
type Delta struct {
	Site
	Base, Cur int
	Sample    Record
}

// Diff compares the current report against a baseline. added holds
// sites whose occurrence count grew (new escapes — a CI failure);
// removed holds sites whose count shrank (improvements; refresh the
// baseline to lock them in).
func Diff(baseline, current []Record) (added, removed []Delta) {
	type tally struct {
		base, cur int
		sample    Record // prefer a current occurrence
	}
	m := make(map[Site]*tally)
	at := func(r Record) *tally {
		k := Site{Pkg: r.Pkg, File: r.File, Msg: r.Msg}
		t := m[k]
		if t == nil {
			t = &tally{}
			m[k] = t
		}
		return t
	}
	for _, r := range baseline {
		t := at(r)
		t.base++
		if t.cur == 0 {
			t.sample = r
		}
	}
	for _, r := range current {
		t := at(r)
		if t.cur == 0 {
			t.sample = r
		}
		t.cur++
	}
	for k, t := range m {
		d := Delta{Site: k, Base: t.base, Cur: t.cur, Sample: t.sample}
		switch {
		case t.cur > t.base:
			added = append(added, d)
		case t.cur < t.base:
			removed = append(removed, d)
		}
	}
	sortDeltas(added)
	sortDeltas(removed)
	return added, removed
}

func sortDeltas(ds []Delta) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.Pkg != b.Pkg {
			return a.Pkg < b.Pkg
		}
		if a.File != b.File {
			return a.File < b.File
		}
		return a.Msg < b.Msg
	})
}
