package escape

import (
	"bytes"
	"strings"
	"testing"
)

// canned is a trimmed slice of real `go build -gcflags=-m=2` output:
// group headers, inlining chatter, duplicated escape lines with flow
// explanations, a moved-to-heap site, and a does-not-escape
// confirmation that must not be reported.
const canned = `# npbgo/internal/ep
internal/ep/ep.go:77:6: can inline WithContext with cost 17 as: func(context.Context) Option { return func literal }
internal/ep/ep.go:41:36: map[byte][2]float64{...} escapes to heap:
internal/ep/ep.go:41:36:   flow: {heap} = &{storage for map[byte][2]float64{...}}:
internal/ep/ep.go:41:36:     from map[byte][2]float64{...} (spill) at internal/ep/ep.go:41:36
internal/ep/ep.go:41:36: map[byte][2]float64{...} escapes to heap
internal/ep/ep.go:78:9: func literal escapes to heap:
internal/ep/ep.go:78:9:   flow: ~r0 = &{storage for func literal}:
internal/ep/ep.go:78:9: func literal escapes to heap
internal/ep/ep.go:120:2: moved to heap: probe:
internal/ep/ep.go:120:2: moved to heap: probe
internal/ep/ep.go:150:20: b does not escape
# npbgo/internal/cg
internal/cg/cg.go:201:14: make([]float64, n) escapes to heap:
internal/cg/cg.go:201:14: make([]float64, n) escapes to heap
`

func TestParse(t *testing.T) {
	recs := Parse(canned)
	want := []Record{
		{Pkg: "npbgo/internal/cg", File: "internal/cg/cg.go", Line: 201, Col: 14, Msg: "make([]float64, n) escapes to heap"},
		{Pkg: "npbgo/internal/ep", File: "internal/ep/ep.go", Line: 41, Col: 36, Msg: "map[byte][2]float64{...} escapes to heap"},
		{Pkg: "npbgo/internal/ep", File: "internal/ep/ep.go", Line: 78, Col: 9, Msg: "func literal escapes to heap"},
		{Pkg: "npbgo/internal/ep", File: "internal/ep/ep.go", Line: 120, Col: 2, Msg: "moved to heap: probe"},
	}
	if len(recs) != len(want) {
		t.Fatalf("Parse returned %d records, want %d: %+v", len(recs), len(want), recs)
	}
	for i := range want {
		if recs[i] != want[i] {
			t.Errorf("record %d = %+v, want %+v", i, recs[i], want[i])
		}
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	recs := Parse(canned)
	var buf bytes.Buffer
	if err := Write(&buf, recs); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), `{"format":"npbgo/escape/v1"}`) {
		t.Fatalf("report does not lead with the format header: %q", buf.String()[:60])
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("round trip lost records: %d != %d", len(got), len(recs))
	}
	for i := range recs {
		if got[i] != recs[i] {
			t.Errorf("record %d = %+v, want %+v", i, got[i], recs[i])
		}
	}
}

func TestWriteDeterministic(t *testing.T) {
	recs := Parse(canned)
	rev := make([]Record, len(recs))
	for i, r := range recs {
		rev[len(recs)-1-i] = r
	}
	var a, b bytes.Buffer
	if err := Write(&a, recs); err != nil {
		t.Fatal(err)
	}
	if err := Write(&b, rev); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("Write output depends on input order")
	}
}

func TestReadRejectsBadHeader(t *testing.T) {
	if _, err := Read(strings.NewReader("")); err == nil {
		t.Error("Read accepted an empty report")
	}
	if _, err := Read(strings.NewReader(`{"format":"npbgo/escape/v0"}` + "\n")); err == nil {
		t.Error("Read accepted a wrong format tag")
	}
	if _, err := Read(strings.NewReader("not json\n")); err == nil {
		t.Error("Read accepted a non-JSON header")
	}
}

func TestDiff(t *testing.T) {
	base := Parse(canned)

	// Identical reports: no deltas.
	added, removed := Diff(base, base)
	if len(added) != 0 || len(removed) != 0 {
		t.Fatalf("self-diff produced deltas: +%v -%v", added, removed)
	}

	// A line shuffle of the same escapes is not a delta.
	shifted := make([]Record, len(base))
	copy(shifted, base)
	for i := range shifted {
		shifted[i].Line += 100
	}
	added, removed = Diff(base, shifted)
	if len(added) != 0 || len(removed) != 0 {
		t.Fatalf("line-shift diff produced deltas: +%v -%v", added, removed)
	}

	// A new site and a second occurrence of an existing site both fail.
	cur := append([]Record(nil), base...)
	cur = append(cur,
		Record{Pkg: "npbgo/internal/ep", File: "internal/ep/ep.go", Line: 300, Col: 5, Msg: "new thing escapes to heap"},
		Record{Pkg: "npbgo/internal/ep", File: "internal/ep/ep.go", Line: 400, Col: 9, Msg: "func literal escapes to heap"},
	)
	added, removed = Diff(base, cur)
	if len(removed) != 0 {
		t.Fatalf("unexpected removals: %v", removed)
	}
	if len(added) != 2 {
		t.Fatalf("added = %v, want 2 deltas", added)
	}
	if added[0].Msg != "func literal escapes to heap" || added[0].Base != 1 || added[0].Cur != 2 {
		t.Errorf("count-growth delta = %+v", added[0])
	}
	if added[1].Msg != "new thing escapes to heap" || added[1].Sample.Line != 300 {
		t.Errorf("new-site delta = %+v", added[1])
	}

	// An escape fixed in current shows up as removed.
	added, removed = Diff(cur, base)
	if len(added) != 0 || len(removed) != 2 {
		t.Fatalf("reverse diff: +%v -%v", added, removed)
	}
}
