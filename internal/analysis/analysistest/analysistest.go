// Package analysistest runs an analyzer over golden fixture files and
// checks its diagnostics against expectations embedded in the fixtures,
// mirroring the x/tools package of the same name.
//
// A fixture directory (conventionally testdata/ next to the analyzer)
// holds ordinary Go files that are parsed and type-checked — they may
// import real npbgo packages — but are never built by the go tool, so
// deliberately-buggy parallel code in them is harmless. Expected
// diagnostics are written as trailing comments:
//
//	tm.Barrier() // want `conditionally reached`
//
// Each `want` clause is a regular expression (backquoted or quoted)
// that must match exactly one diagnostic reported on that line; lines
// without a want comment must produce no diagnostics. Suppression
// comments (//npblint:ignore) are honored, so fixtures can also pin the
// suppression behaviour.
package analysistest

import (
	"fmt"
	"go/scanner"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"npbgo/internal/analysis"
	"npbgo/internal/analysis/driver"
)

// Run analyzes the fixture files in dir with a and reports mismatches
// between its diagnostics and the fixtures' want comments on t.
func Run(t *testing.T, a *analysis.Analyzer, dir string) {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}
	var files []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			files = append(files, filepath.Join(dir, e.Name()))
		}
	}
	if len(files) == 0 {
		t.Fatalf("analysistest: no fixture files in %s", dir)
	}
	sort.Strings(files)

	pkg, err := driver.LoadFiles(dir, "npbgo/internal/analysis/fixture/"+a.Name, files)
	if err != nil {
		t.Fatalf("analysistest: loading fixtures: %v", err)
	}
	findings, err := driver.Run([]*driver.Package{pkg}, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}

	wants, err := parseWants(files)
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}
	for _, f := range findings {
		key := fileLine{f.Pos.Filename, f.Pos.Line}
		matched := false
		for _, w := range wants[key] {
			if !w.used && w.re.MatchString(f.Message) {
				w.used = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: %s", f.Pos, f.Message)
		}
	}
	for key, ws := range wants {
		for _, w := range ws {
			if !w.used {
				t.Errorf("%s:%d: no diagnostic matching %q", key.file, key.line, w.re)
			}
		}
	}
}

type fileLine struct {
	file string
	line int
}

type want struct {
	re   *regexp.Regexp
	used bool
}

// wantRE extracts the expectation clauses of one comment: the text
// after a `// want` marker, as a sequence of Go string literals.
var wantRE = regexp.MustCompile(`//\s*want\s+(.*)`)

// parseWants scans the fixture files for want comments.
func parseWants(files []string) (map[fileLine][]*want, error) {
	wants := make(map[fileLine][]*want)
	fset := token.NewFileSet()
	for _, name := range files {
		src, err := os.ReadFile(name)
		if err != nil {
			return nil, err
		}
		var sc scanner.Scanner
		file := fset.AddFile(name, fset.Base(), len(src))
		sc.Init(file, src, nil, scanner.ScanComments)
		for {
			pos, tok, lit := sc.Scan()
			if tok == token.EOF {
				break
			}
			if tok != token.COMMENT {
				continue
			}
			m := wantRE.FindStringSubmatch(lit)
			if m == nil {
				continue
			}
			position := fset.Position(pos)
			key := fileLine{position.Filename, position.Line}
			for _, lit := range splitLiterals(m[1]) {
				pattern, err := strconv.Unquote(lit)
				if err != nil {
					return nil, fmt.Errorf("%s: bad want literal %s: %v", position, lit, err)
				}
				re, err := regexp.Compile(pattern)
				if err != nil {
					return nil, fmt.Errorf("%s: bad want regexp %q: %v", position, pattern, err)
				}
				wants[key] = append(wants[key], &want{re: re})
			}
		}
	}
	return wants, nil
}

// splitLiterals splits `"a" "b"` or "`a` `b`" into raw literal tokens.
func splitLiterals(s string) []string {
	var out []string
	s = strings.TrimSpace(s)
	for s != "" {
		switch s[0] {
		case '"':
			end := 1
			for end < len(s) && (s[end] != '"' || s[end-1] == '\\') {
				end++
			}
			out = append(out, s[:end+1])
			s = strings.TrimSpace(s[min(end+1, len(s)):])
		case '`':
			end := strings.IndexByte(s[1:], '`')
			if end < 0 {
				return out
			}
			out = append(out, s[:end+2])
			s = strings.TrimSpace(s[end+2:])
		default:
			return out
		}
	}
	return out
}
