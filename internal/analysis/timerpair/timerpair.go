// Package timerpair flags timer.Set.Start calls with no matching Stop
// in the same function.
//
// The per-phase profiles in the paper's tables are sums of Start/Stop
// laps; a Start whose Stop was lost to a refactor does not crash — it
// silently folds the rest of the run into that phase, which corrupts
// every percentage in the profile table. For each function, every
// Start("name") with a literal name must be paired with at least one
// Stop("name") (or defer Stop("name"), which covers all return paths)
// with the same literal in the same function. Starts with non-literal
// names are ignored: helpers that take the phase name as a parameter
// pair dynamically and cannot be checked syntactically.
package timerpair

import (
	"go/ast"

	"npbgo/internal/analysis"
)

const timerPath = "npbgo/internal/timer"

var Analyzer = &analysis.Analyzer{
	Name: "timerpair",
	Doc:  "flag timer.Set Start calls with no matching Stop for the same phase name in the same function",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkFunc(pass, fn)
		}
	}
	return nil
}

func checkFunc(pass *analysis.Pass, fn *ast.FuncDecl) {
	type startSite struct {
		pos  ast.Node
		name string
	}
	var starts []startSite
	stopped := make(map[string]bool)
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, isCall := n.(*ast.CallExpr)
		if !isCall {
			return true
		}
		recv, method, isMeth := analysis.Receiver(pass.TypesInfo, call)
		if !isMeth || !analysis.IsNamed(recv, timerPath, "Set") || len(call.Args) == 0 {
			return true
		}
		name, isLit := analysis.StringLit(call.Args[0])
		if !isLit {
			return true
		}
		switch method {
		case "Start":
			starts = append(starts, startSite{call, name})
		case "Stop":
			stopped[name] = true
		}
		return true
	})
	for _, s := range starts {
		if !stopped[s.name] {
			pass.Reportf(s.pos.Pos(),
				"timer.Start(%q) has no matching Stop in %s; the phase profile silently absorbs everything after it", s.name, fn.Name.Name)
		}
	}
}
