package timerpair_test

import (
	"testing"

	"npbgo/internal/analysis/analysistest"
	"npbgo/internal/analysis/timerpair"
)

func TestGolden(t *testing.T) {
	analysistest.Run(t, timerpair.Analyzer, "testdata")
}
