// Golden fixtures for the timerpair analyzer: phase timers started but
// never stopped. Never built by the go tool; type-checked by
// analysistest.
package fixture

import "npbgo/internal/timer"

// unmatched leaks the "rhs" phase: everything after Start is absorbed
// into it.
func unmatched(s *timer.Set) {
	s.Start("rhs") // want `no matching Stop`
	work()
}

// paired is the normal bracketed phase.
func paired(s *timer.Set) {
	s.Start("rhs")
	work()
	s.Stop("rhs")
}

// deferred stops via defer, which counts.
func deferred(s *timer.Set) {
	s.Start("total")
	defer s.Stop("total")
	work()
}

// dynamicName is a near miss: parameterized helpers pair at the call
// site, so non-literal names are skipped.
func dynamicName(s *timer.Set, name string) {
	s.Start(name)
	work()
}

// mismatched pairs the wrong names: "setup" never stops.
func mismatched(s *timer.Set) {
	s.Start("setup") // want `no matching Stop`
	work()
	s.Stop("teardown")
}

func work() {}
