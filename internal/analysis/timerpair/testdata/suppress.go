package fixture

import "npbgo/internal/timer"

// suppressedStart hands the running timer to its caller to stop.
func suppressedStart(s *timer.Set) {
	s.Start("sweep") //npblint:ignore timerpair the caller stops it after the pipelined sweep drains
}
