// Package tracepair flags trace.Tracer.BeginPhase calls with no
// matching EndPhase in the same function.
//
// Phase spans are the master track's named brackets in the exported
// Perfetto timeline; trace.Validate rejects a file whose spans do not
// pair and nest, so a BeginPhase whose EndPhase was lost to a refactor
// turns every trace the benchmark emits into an unloadable file — at
// sweep time, long after the edit. For each function, every
// BeginPhase("name") with a literal name must be paired with at least
// one EndPhase("name") (or defer EndPhase("name"), which covers all
// return paths) with the same literal in the same function. Begins
// with non-literal names are ignored: helpers that take the phase name
// as a parameter — cg's timed() — own the pairing internally and
// cannot be checked syntactically.
package tracepair

import (
	"go/ast"

	"npbgo/internal/analysis"
)

const tracePath = "npbgo/internal/trace"

var Analyzer = &analysis.Analyzer{
	Name: "tracepair",
	Doc:  "flag trace.Tracer BeginPhase calls with no matching EndPhase for the same phase name in the same function",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkFunc(pass, fn)
		}
	}
	return nil
}

func checkFunc(pass *analysis.Pass, fn *ast.FuncDecl) {
	type beginSite struct {
		pos  ast.Node
		name string
	}
	var begins []beginSite
	ended := make(map[string]bool)
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, isCall := n.(*ast.CallExpr)
		if !isCall {
			return true
		}
		recv, method, isMeth := analysis.Receiver(pass.TypesInfo, call)
		if !isMeth || !analysis.IsNamed(recv, tracePath, "Tracer") || len(call.Args) == 0 {
			return true
		}
		name, isLit := analysis.StringLit(call.Args[0])
		if !isLit {
			return true
		}
		switch method {
		case "BeginPhase":
			begins = append(begins, beginSite{call, name})
		case "EndPhase":
			ended[name] = true
		}
		return true
	})
	for _, b := range begins {
		if !ended[b.name] {
			pass.Reportf(b.pos.Pos(),
				"trace.BeginPhase(%q) has no matching EndPhase in %s; the exported timeline fails validation with an unclosed span", b.name, fn.Name.Name)
		}
	}
}
