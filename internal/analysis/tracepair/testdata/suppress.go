package fixture

import "npbgo/internal/trace"

// suppressedBegin hands the open span to its caller to close.
func suppressedBegin(tr *trace.Tracer) {
	tr.BeginPhase("warmup") //npblint:ignore tracepair the caller closes it once the team is warm
}
