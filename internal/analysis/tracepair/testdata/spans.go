// Golden fixtures for the tracepair analyzer: phase spans opened but
// never closed. Never built by the go tool; type-checked by
// analysistest.
package fixture

import "npbgo/internal/trace"

// unclosed leaks the "sweeps" span: the exported trace fails
// validation.
func unclosed(tr *trace.Tracer) {
	tr.BeginPhase("sweeps") // want `no matching EndPhase`
	work()
}

// paired is the normal bracketed phase.
func paired(tr *trace.Tracer) {
	tr.BeginPhase("sweeps")
	work()
	tr.EndPhase("sweeps")
}

// deferred closes via defer, which counts.
func deferred(tr *trace.Tracer) {
	tr.BeginPhase("total")
	defer tr.EndPhase("total")
	work()
}

// dynamicName is a near miss: parameterized helpers own the pairing,
// so non-literal names are skipped.
func dynamicName(tr *trace.Tracer, name string) {
	tr.BeginPhase(name)
	work()
}

// mismatched pairs the wrong names: "setup" never closes.
func mismatched(tr *trace.Tracer) {
	tr.BeginPhase("setup") // want `no matching EndPhase`
	work()
	tr.EndPhase("teardown")
}

func work() {}
