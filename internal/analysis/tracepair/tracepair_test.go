package tracepair_test

import (
	"testing"

	"npbgo/internal/analysis/analysistest"
	"npbgo/internal/analysis/tracepair"
)

func TestGolden(t *testing.T) {
	analysistest.Run(t, tracepair.Analyzer, "testdata")
}
