// Package gridindex flags hand-rolled linearized-array stride
// arithmetic and suspicious grid.Dim At calls.
//
// The paper's winning translation strategy (§3) linearizes every
// multi-dimensional array into a flat vector addressed as
// i1 + n1*(i2 + n2*i3), first index fastest. The grid package owns that
// formula (Dim3/Dim4/Dim5.At); when kernels re-derive it inline the
// stride factors drift from the allocation extents the moment a loop
// nest is rewritten, and the resulting corruption is silent because a
// flat index only has one bounds check. Two checks:
//
//  1. Nested multiply-add chains of integer type shaped like
//     a + b*(c + d*e) — the 3-D-or-deeper stride formula — are
//     reported; use grid.Dim3/4/5.At (or a helper that delegates to
//     it) instead. Single-level a + b*c terms are left alone: small
//     fixed strides like 5*i+m are idiomatic for component access.
//  2. Dim.At calls whose arguments are name-recognizable indices
//     (i1/i2/i3 digit suffixes, or the i/j/k convention) passed in
//     descending order — At(k, j, i) — are reported as transposed:
//     the first index must be the fastest-varying one.
//
// The grid package itself (and its tests) is exempt: it is the one
// place the formula is allowed to exist.
package gridindex

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"npbgo/internal/analysis"
)

const gridPath = "npbgo/internal/grid"

var Analyzer = &analysis.Analyzer{
	Name: "gridindex",
	Doc: "flag hand-rolled i + n1*(j + n2*k) stride arithmetic that should go through " +
		"grid.Dim3/4/5.At, and At calls with transposed index arguments",
	Run: run,
}

func run(pass *analysis.Pass) error {
	if strings.HasPrefix(pass.Pkg.Path(), gridPath) {
		return nil // the canonical implementation site
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				if isStrideChain(pass, n) {
					pass.Reportf(n.Pos(),
						"hand-rolled stride arithmetic; use grid.Dim3/4/5.At so the strides cannot drift from the allocation extents")
					return false // do not re-report the inner chain
				}
			case *ast.CallExpr:
				checkAtCall(pass, n)
			}
			return true
		})
	}
	return nil
}

// isStrideChain matches integer expressions of the form
// a + b*(c + d*e [+ ...]) — a multiply-add chain at least two levels
// deep, i.e. the linear-offset formula of a 3-D or deeper array.
func isStrideChain(pass *analysis.Pass, e *ast.BinaryExpr) bool {
	return strideDepth(pass, e) >= 2
}

// strideDepth returns the nesting depth of add-of-product terms under
// e: i+n*(j+m*k) has depth 2, i+n*j depth 1, anything else 0. Only
// integer-typed expressions count, so floating-point polynomial
// evaluation (Horner forms in the kernels) is never matched.
func strideDepth(pass *analysis.Pass, e ast.Expr) int {
	bin, ok := ast.Unparen(e).(*ast.BinaryExpr)
	if !ok || bin.Op != token.ADD || !isInteger(pass, bin) {
		return 0
	}
	depth := 0
	for _, side := range [...]ast.Expr{bin.X, bin.Y} {
		if mul, isMul := ast.Unparen(side).(*ast.BinaryExpr); isMul && mul.Op == token.MUL {
			for _, factor := range [...]ast.Expr{mul.X, mul.Y} {
				if d := strideDepth(pass, factor) + 1; d > depth {
					depth = d
				}
			}
		}
	}
	return depth
}

func isInteger(pass *analysis.Pass, e ast.Expr) bool {
	t := pass.TypesInfo.Types[e].Type
	if t == nil {
		return false
	}
	basic, ok := t.Underlying().(*types.Basic)
	return ok && basic.Info()&types.IsInteger != 0
}

// checkAtCall flags grid.DimN.At calls whose index arguments are
// recognizably passed fastest-index-last.
func checkAtCall(pass *analysis.Pass, call *ast.CallExpr) {
	recv, method, ok := analysis.Receiver(pass.TypesInfo, call)
	if !ok || method != "At" {
		return
	}
	if !analysis.IsNamed(recv, gridPath, "Dim3") &&
		!analysis.IsNamed(recv, gridPath, "Dim4") &&
		!analysis.IsNamed(recv, gridPath, "Dim5") {
		return
	}
	ranks := make([]int, 0, len(call.Args))
	for _, arg := range call.Args {
		id, isIdent := ast.Unparen(arg).(*ast.Ident)
		if !isIdent {
			return // expression arguments carry no ordering evidence
		}
		rank, known := indexRank(id.Name)
		if !known {
			return
		}
		ranks = append(ranks, rank)
	}
	if len(ranks) < 2 {
		return
	}
	ascending := true
	for i := 1; i < len(ranks); i++ {
		if ranks[i] <= ranks[i-1] {
			ascending = false
		}
	}
	if !ascending {
		pass.Reportf(call.Pos(),
			"Dim.At arguments appear transposed; the first argument is the fastest-varying index (Fortran order, §3 of the paper)")
	}
}

// indexRank assigns a conventional dimension rank to an index name:
// trailing digits win (i1→1, i2→2), then the i/j/k convention.
func indexRank(name string) (int, bool) {
	trimmed := strings.TrimRight(name, "0123456789")
	if digits := name[len(trimmed):]; digits != "" {
		rank := 0
		for _, c := range digits {
			rank = rank*10 + int(c-'0')
		}
		return rank, true
	}
	switch name {
	case "i":
		return 1, true
	case "j":
		return 2, true
	case "k":
		return 3, true
	}
	return 0, false
}
