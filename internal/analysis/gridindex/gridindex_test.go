package gridindex_test

import (
	"testing"

	"npbgo/internal/analysis/analysistest"
	"npbgo/internal/analysis/gridindex"
)

func TestGolden(t *testing.T) {
	analysistest.Run(t, gridindex.Analyzer, "testdata")
}
