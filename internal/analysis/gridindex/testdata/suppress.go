package fixture

// suppressedStride keeps the explicit formula for exposition.
func suppressedStride(buf []float64, n1, n2, i, j, k int) float64 {
	//npblint:ignore gridindex mirrors the paper's written-out index formula
	return buf[i+n1*(j+n2*k)]
}
