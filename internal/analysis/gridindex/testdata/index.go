// Golden fixtures for the gridindex analyzer: hand-rolled linearized
// index arithmetic and transposed Dim.At calls. Never built by the go
// tool; type-checked by analysistest.
package fixture

import "npbgo/internal/grid"

// manualStride re-derives the column-major formula inline instead of
// delegating to the allocation's Dim3.
func manualStride(buf []float64, n1, n2, i, j, k int) float64 {
	return buf[i+n1*(j+n2*k)] // want `hand-rolled stride arithmetic`
}

// dimAt is the accepted form of the same access.
func dimAt(d grid.Dim3, buf []float64, i, j, k int) float64 {
	return buf[d.At(i, j, k)]
}

// transposed passes the indices slowest-first, the C-order habit that
// silently scrambles a Fortran-order array.
func transposed(d grid.Dim3, buf []float64, i, j, k int) float64 {
	return buf[d.At(k, j, i)] // want `transposed`
}

// component is a near miss: one multiply-add level is idiomatic
// component access (5 solution components per cell), not a stride
// chain.
func component(u []float64, i, m int) float64 {
	return u[5*i+m]
}

// horner is a near miss: the same shape over floats is polynomial
// evaluation, not indexing.
func horner(x, a, b, c, d float64) float64 {
	return a + x*(b+x*(c+x*d))
}
