// Package analysis is a minimal, dependency-free re-implementation of
// the golang.org/x/tools/go/analysis vocabulary: an Analyzer is a named
// check with a Run function, a Pass hands it one type-checked package,
// and diagnostics are reported through the Pass.
//
// The suite cannot depend on x/tools (the module is deliberately
// stdlib-only), so this package mirrors the x/tools API shape closely
// enough that the npblint analyzers could be ported to the real
// framework by changing imports. The driver side — loading packages via
// `go list -export`, the `go vet -vettool` unit protocol, and
// //npblint:ignore suppressions — lives in the sibling driver package.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
)

// An Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //npblint:ignore comments. It must be a valid Go identifier.
	Name string

	// Doc is the one-paragraph description printed by `npblint help`.
	Doc string

	// Run applies the analyzer to one package.
	Run func(*Pass) error
}

func (a *Analyzer) String() string { return a.Name }

// A Pass provides one analyzer run with a single type-checked package
// and a sink for its diagnostics.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Report delivers one diagnostic. The driver fills in the
	// analyzer name and applies suppression comments.
	Report func(Diagnostic)
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// A Diagnostic is one finding, positioned within Pass.Fset.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Receiver returns the named type of the receiver if call is a method
// call expression x.M(...) on a (possibly pointer-to) named type, along
// with the method name. ok is false for plain function calls, interface
// methods and method values.
func Receiver(info *types.Info, call *ast.CallExpr) (recv *types.Named, method string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return nil, "", false
	}
	selection, isMeth := info.Selections[sel]
	if !isMeth || selection.Kind() != types.MethodVal {
		return nil, "", false
	}
	t := selection.Recv()
	if p, isPtr := t.(*types.Pointer); isPtr {
		t = p.Elem()
	}
	named, isNamed := t.(*types.Named)
	if !isNamed {
		return nil, "", false
	}
	return named, sel.Sel.Name, true
}

// IsNamed reports whether named is the type pkgPath.name.
func IsNamed(named *types.Named, pkgPath, name string) bool {
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil &&
		obj.Pkg().Path() == pkgPath && obj.Name() == name
}

// PkgFunc returns the package path and name of the package-level
// function called by call (fault.Maybe, team.Block, ...). ok is false
// for method calls, builtins, conversions and locals.
func PkgFunc(info *types.Info, call *ast.CallExpr) (pkgPath, name string, ok bool) {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return "", "", false
	}
	fn, isFn := info.Uses[id].(*types.Func)
	if !isFn || fn.Pkg() == nil {
		return "", "", false
	}
	if recv := fn.Type().(*types.Signature).Recv(); recv != nil {
		return "", "", false
	}
	return fn.Pkg().Path(), fn.Name(), true
}

// StringLit returns the constant value of a string literal expression
// (after unquoting). ok is false for anything but a direct literal —
// named constants deliberately don't count, so checks that require an
// auditable in-place literal can enforce that.
func StringLit(e ast.Expr) (string, bool) {
	lit, isLit := ast.Unparen(e).(*ast.BasicLit)
	if !isLit || lit.Kind != token.STRING {
		return "", false
	}
	s, err := strconv.Unquote(lit.Value)
	if err != nil {
		return "", false
	}
	return s, true
}
