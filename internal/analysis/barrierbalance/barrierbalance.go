// Package barrierbalance flags team synchronization that only some
// workers of a parallel region can reach.
//
// The team barrier is a counting barrier: every worker of the region
// must arrive the same number of times, exactly like an OpenMP barrier.
// The paper hit this the hard way in LU's pipelined sweep, where a
// mis-scoped wait left part of the team parked forever (§5, the
// pipeline stall the robustness work reproduces with fault injection).
// Three shapes are diagnosed inside Run/RunCtx/For/ForBlock/ReduceSum
// region bodies:
//
//  1. Team.Barrier reached under a conditional (if/switch/select) — a
//     worker that takes the other arm never arrives, and the region
//     deadlocks until the barrier is poisoned.
//  2. Team.Barrier inside a loop whose bounds depend on the worker id —
//     workers arrive different numbers of times, which desynchronizes
//     every later barrier of the region.
//  3. Any region-starting call (Run, RunCtx, For, ForBlock, ReduceSum,
//     Warmup) inside a region body — the runtime rejects nested regions
//     with a panic, so this is always a bug.
package barrierbalance

import (
	"go/ast"
	"go/types"

	"npbgo/internal/analysis"
)

const teamPath = "npbgo/internal/team"

// regionStarters are the Team methods that fork a complete parallel
// region; their final func-literal argument is a region body.
var regionStarters = map[string]bool{
	"Run":       true,
	"RunCtx":    true,
	"For":       true,
	"ForBlock":  true,
	"ReduceSum": true,
}

// nestable are Team methods that are also illegal anywhere inside a
// region body, in addition to the region starters.
var nestable = map[string]bool{"Warmup": true}

var Analyzer = &analysis.Analyzer{
	Name: "barrierbalance",
	Doc: "flag Team.Barrier calls not reached uniformly by all workers of a region, " +
		"and parallel regions nested inside region bodies",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if body := regionBody(pass, call); body != nil {
				checkRegion(pass, body)
			}
			return true
		})
	}
	return nil
}

// regionBody returns the func-literal region body if call starts a
// parallel region, else nil.
func regionBody(pass *analysis.Pass, call *ast.CallExpr) *ast.FuncLit {
	recv, method, ok := analysis.Receiver(pass.TypesInfo, call)
	if !ok || !analysis.IsNamed(recv, teamPath, "Team") || !regionStarters[method] {
		return nil
	}
	if len(call.Args) == 0 {
		return nil
	}
	lit, ok := call.Args[len(call.Args)-1].(*ast.FuncLit)
	if !ok {
		return nil
	}
	return lit
}

// checkRegion walks one region body, tracking the conditional and
// id-dependent-loop nesting of every team call inside it.
func checkRegion(pass *analysis.Pass, body *ast.FuncLit) {
	id := workerIDParam(pass, body)
	var walk func(n ast.Node, conditional bool, idLoop bool)
	walk = func(n ast.Node, conditional, idLoop bool) {
		switch n := n.(type) {
		case nil:
			return
		case *ast.FuncLit:
			if n != body {
				// A closure defined inside the region runs wherever it
				// is called; calls inside it are analyzed when their
				// own region is matched.
				return
			}
		case *ast.IfStmt:
			walk(n.Init, conditional, idLoop)
			walk(n.Cond, conditional, idLoop)
			walk(n.Body, true, idLoop)
			walk(n.Else, true, idLoop)
			return
		case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
			for _, c := range children(n) {
				walk(c, true, idLoop)
			}
			return
		case *ast.ForStmt:
			dep := idLoop || dependsOn(pass, n.Cond, id) || dependsOn(pass, n.Init, id)
			for _, c := range children(n) {
				walk(c, conditional, dep)
			}
			return
		case *ast.RangeStmt:
			dep := idLoop || dependsOn(pass, n.X, id)
			for _, c := range children(n) {
				walk(c, conditional, dep)
			}
			return
		case *ast.CallExpr:
			checkTeamCall(pass, n, conditional, idLoop)
		}
		for _, c := range children(n) {
			walk(c, conditional, idLoop)
		}
	}
	for _, stmt := range body.Body.List {
		walk(stmt, false, false)
	}
}

// checkTeamCall reports a team synchronization call that is nested or
// non-uniformly reached.
func checkTeamCall(pass *analysis.Pass, call *ast.CallExpr, conditional, idLoop bool) {
	recv, method, ok := analysis.Receiver(pass.TypesInfo, call)
	if !ok || !analysis.IsNamed(recv, teamPath, "Team") {
		return
	}
	switch {
	case regionStarters[method] || nestable[method]:
		pass.Reportf(call.Pos(),
			"Team.%s starts a parallel region inside a region body; the team runtime panics on nested regions", method)
	case method != "Barrier" && method != "BarrierID":
		return
	case conditional:
		pass.Reportf(call.Pos(),
			"Team.%s is conditionally reached inside a parallel region; workers that skip it leave the team deadlocked (the LU pipeline anomaly)", method)
	case idLoop:
		pass.Reportf(call.Pos(),
			"Team.%s inside a loop whose bounds depend on the worker id; workers arrive unequal numbers of times", method)
	}
}

// workerIDParam returns the object of the region body's worker-id
// parameter for Run/RunCtx bodies (func(id int)), or nil for the
// For/ForBlock/ReduceSum body shapes, which have no id parameter.
func workerIDParam(pass *analysis.Pass, body *ast.FuncLit) types.Object {
	params := body.Type.Params.List
	if len(params) != 1 || len(params[0].Names) != 1 {
		return nil
	}
	return pass.TypesInfo.Defs[params[0].Names[0]]
}

// dependsOn reports whether any identifier under n resolves to param.
func dependsOn(pass *analysis.Pass, n ast.Node, param types.Object) bool {
	if n == nil || param == nil {
		return false
	}
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		if id, ok := m.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == param {
			found = true
		}
		return !found
	})
	return found
}

// children returns the direct child nodes of n.
func children(n ast.Node) []ast.Node {
	var out []ast.Node
	first := true
	ast.Inspect(n, func(m ast.Node) bool {
		if first {
			first = false
			return true
		}
		if m != nil {
			out = append(out, m)
		}
		return false
	})
	return out
}
