// Golden fixtures for the barrierbalance analyzer: synchronization
// calls that are nested or non-uniformly reached inside parallel
// regions. Never built by the go tool; type-checked by analysistest.
package fixture

import "npbgo/internal/team"

// conditionalBarrier is the LU pipeline anomaly in miniature: only the
// master arrives at the barrier, every other worker runs past it and
// the team deadlocks on the next region.
func conditionalBarrier(tm *team.Team) {
	tm.Run(func(id int) {
		if id == 0 {
			tm.Barrier() // want `conditionally reached`
		}
		tm.Barrier() // unconditional: every worker arrives
	})
}

// idLoopBarrier arrives a different number of times per worker.
func idLoopBarrier(tm *team.Team) {
	tm.Run(func(id int) {
		for i := 0; i < id; i++ {
			tm.Barrier() // want `unequal numbers of times`
		}
	})
}

// nestedRegion starts a region inside a region body; the runtime
// panics on this at execution time, the analyzer catches it earlier.
func nestedRegion(tm *team.Team, n int) {
	tm.Run(func(id int) {
		tm.ForBlock(0, n, func(blo, bhi int) { // want `nested regions`
			_ = blo + bhi
		})
	})
}

// conditionalBarrierID: the id-attributed barrier variant (used for
// per-worker wait accounting in the obs layer) has the same arrival
// contract as Barrier and gets the same diagnostics.
func conditionalBarrierID(tm *team.Team) {
	tm.Run(func(id int) {
		if id == 0 {
			tm.BarrierID(id) // want `conditionally reached`
		}
		tm.BarrierID(id) // unconditional: every worker arrives
	})
}

// nearMiss holds the accepted idioms: a barrier inside a loop whose
// bounds are uniform across workers, and a master-only section that
// contains no synchronization.
func nearMiss(tm *team.Team, steps int) {
	tm.Run(func(id int) {
		for s := 0; s < steps; s++ {
			tm.Barrier() // uniform trip count: fine
		}
		if id == 0 {
			_ = id // master-only work without a barrier: fine
		}
	})
}
