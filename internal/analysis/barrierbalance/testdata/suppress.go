package fixture

import "npbgo/internal/team"

// suppressedBarrier shows the escape hatch: the conditional barrier is
// matched by a worker-side barrier elsewhere, and the author says so.
func suppressedBarrier(tm *team.Team) {
	tm.Run(func(id int) {
		if id == 0 {
			//npblint:ignore barrierbalance matched by the worker-side barrier in the else branch pattern
			tm.Barrier()
		}
	})
}
