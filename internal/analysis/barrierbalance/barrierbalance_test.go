package barrierbalance_test

import (
	"testing"

	"npbgo/internal/analysis/analysistest"
	"npbgo/internal/analysis/barrierbalance"
)

func TestGolden(t *testing.T) {
	analysistest.Run(t, barrierbalance.Analyzer, "testdata")
}
