// Package sharedwrite flags writes to captured shared state inside
// parallel region bodies that are not routed through a per-worker slot.
//
// Every worker of a team executes the region body concurrently, so an
// assignment to a variable captured from the enclosing function is a
// data race unless exactly one worker performs it or the destination is
// partitioned by worker. This is the bug class `go test -race` only
// catches when the schedule cooperates: a reduction accumulated into a
// captured scalar, or a write through a constant index, can run clean
// for thousands of iterations. The intended idioms are Team.Partial(id),
// per-worker slots indexed by id, or indices derived from the
// For/ForBlock/Block distribution — all of which this analyzer accepts.
//
// Accepted shapes inside a region body:
//   - writes to variables declared inside the body (worker-local);
//   - indexed writes whose index involves a body-local variable or the
//     worker id (assumed block-derived — static approximation);
//   - writes through pointers returned by calls (e.g. *tm.Partial(id));
//   - any write inside a conditional that tests the worker id (the
//     master-only section idiom between barriers).
//
// Everything else that targets captured state is reported.
package sharedwrite

import (
	"go/ast"
	"go/token"
	"go/types"

	"npbgo/internal/analysis"
)

const teamPath = "npbgo/internal/team"

var regionStarters = map[string]bool{
	"Run":       true,
	"RunCtx":    true,
	"For":       true,
	"ForBlock":  true,
	"ReduceSum": true,
}

var Analyzer = &analysis.Analyzer{
	Name: "sharedwrite",
	Doc: "flag writes to captured variables inside parallel regions that bypass " +
		"Partial(id), per-worker slots, and block-derived indices",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			recv, method, isMeth := analysis.Receiver(pass.TypesInfo, call)
			if !isMeth || !analysis.IsNamed(recv, teamPath, "Team") || !regionStarters[method] {
				return true
			}
			if len(call.Args) == 0 {
				return true
			}
			if body, isLit := call.Args[len(call.Args)-1].(*ast.FuncLit); isLit {
				checkRegion(pass, body)
			}
			return true
		})
	}
	return nil
}

// region carries the scope facts needed to classify a write.
type region struct {
	pass *analysis.Pass
	body *ast.FuncLit
	id   types.Object // worker-id parameter, nil for For/ForBlock/ReduceSum bodies
}

func checkRegion(pass *analysis.Pass, body *ast.FuncLit) {
	r := &region{pass: pass, body: body}
	if params := body.Type.Params.List; len(params) == 1 && len(params[0].Names) == 1 {
		// func(id int) — Run/RunCtx region body.
		r.id = pass.TypesInfo.Defs[params[0].Names[0]]
	}
	var walk func(n ast.Node, idGuarded bool)
	walk = func(n ast.Node, idGuarded bool) {
		switch n := n.(type) {
		case nil:
			return
		case *ast.FuncLit:
			if n != body {
				return // nested closures run wherever they are called
			}
		case *ast.IfStmt:
			guarded := idGuarded || r.mentionsID(n.Cond)
			walk(n.Init, idGuarded)
			walk(n.Body, guarded)
			walk(n.Else, guarded)
			return
		case *ast.AssignStmt:
			if n.Tok != token.DEFINE && !idGuarded {
				for _, lhs := range n.Lhs {
					r.checkWrite(lhs)
				}
			}
		case *ast.IncDecStmt:
			if !idGuarded {
				r.checkWrite(n.X)
			}
		}
		for _, c := range children(n) {
			walk(c, idGuarded)
		}
	}
	for _, stmt := range body.Body.List {
		walk(stmt, false)
	}
}

// checkWrite classifies one assignment target and reports it if it is
// captured shared state written without a per-worker route. The target
// is an access path (x, b.f, b.u[off], t.partial[id].v, *p, ...); it is
// accepted if its base is worker-local, or if any index along the path
// involves a body-local value — the static approximation of "routed
// through a per-worker slot or a block-derived index".
func (r *region) checkWrite(lhs ast.Expr) {
	base, indices, ok := accessPath(lhs)
	if !ok {
		return // writes through call results (*tm.Partial(id)) and the like
	}
	if !r.captured(r.pass.TypesInfo.Uses[base]) {
		return
	}
	for _, index := range indices {
		if r.localIndex(index) {
			return
		}
	}
	if len(indices) == 0 {
		r.pass.Reportf(lhs.Pos(),
			"assignment to captured %s inside a parallel region; use Team.Partial(id), a per-worker slot, or a block-derived index", base.Name)
	} else {
		r.pass.Reportf(lhs.Pos(),
			"captured %s is indexed only by captured or constant values inside a parallel region; derive the index from the worker id or its block", base.Name)
	}
}

// accessPath unwraps an assignment target to its base identifier,
// collecting every index expression crossed on the way. ok is false
// when the base is not an identifier (e.g. a call result).
func accessPath(e ast.Expr) (base *ast.Ident, indices []ast.Expr, ok bool) {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return x, indices, true
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			indices = append(indices, x.Index)
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil, nil, false
		}
	}
}

// captured reports whether obj is a variable declared outside the
// region body (including package-level variables).
func (r *region) captured(obj types.Object) bool {
	v, isVar := obj.(*types.Var)
	if !isVar {
		return false
	}
	return !r.inBody(v)
}

// inBody reports whether obj's declaration lies inside the region body
// (parameters included).
func (r *region) inBody(obj types.Object) bool {
	return obj.Pos() >= r.body.Pos() && obj.Pos() <= r.body.End()
}

// localIndex reports whether the index expression involves at least one
// body-local variable or the worker id — the static approximation of
// "derived from the worker's block of the iteration space".
func (r *region) localIndex(index ast.Expr) bool {
	local := false
	ast.Inspect(index, func(n ast.Node) bool {
		id, isIdent := n.(*ast.Ident)
		if !isIdent {
			return true
		}
		if obj, isVar := r.pass.TypesInfo.Uses[id].(*types.Var); isVar && r.inBody(obj) {
			local = true
		}
		return !local
	})
	return local
}

// mentionsID reports whether the worker-id parameter appears under n.
func (r *region) mentionsID(n ast.Node) bool {
	if n == nil || r.id == nil {
		return false
	}
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		if id, ok := m.(*ast.Ident); ok && r.pass.TypesInfo.Uses[id] == r.id {
			found = true
		}
		return !found
	})
	return found
}

// children returns the direct child nodes of n.
func children(n ast.Node) []ast.Node {
	var out []ast.Node
	first := true
	ast.Inspect(n, func(m ast.Node) bool {
		if first {
			first = false
			return true
		}
		if m != nil {
			out = append(out, m)
		}
		return false
	})
	return out
}
