package sharedwrite_test

import (
	"testing"

	"npbgo/internal/analysis/analysistest"
	"npbgo/internal/analysis/sharedwrite"
)

func TestGolden(t *testing.T) {
	analysistest.Run(t, sharedwrite.Analyzer, "testdata")
}
