// Golden fixtures for the sharedwrite analyzer: data races on
// variables captured by parallel region bodies. Never built by the go
// tool; type-checked by analysistest.
package fixture

import "npbgo/internal/team"

// capturedScalar is the classic reduction race: every worker
// read-modify-writes the same captured accumulator.
func capturedScalar(tm *team.Team, n int) float64 {
	sum := 0.0
	tm.ForBlock(0, n, func(blo, bhi int) {
		for i := blo; i < bhi; i++ {
			sum += float64(i) // want `assignment to captured sum`
		}
	})
	return sum
}

// capturedCounter races through an IncDecStmt rather than an assign.
func capturedCounter(tm *team.Team, n int) int {
	count := 0
	tm.For(0, n, func(i int) {
		count++ // want `assignment to captured count`
	})
	return count
}

// constIndex writes every worker into the same element.
func constIndex(tm *team.Team, out []float64) {
	tm.Run(func(id int) {
		out[0] = float64(id) // want `indexed only by captured or constant`
	})
}

// partialSlot is the accepted reduction idiom: the write goes through
// Team.Partial(id), a per-worker cell.
func partialSlot(tm *team.Team, n int) float64 {
	tm.Run(func(id int) {
		blo, bhi := team.Block(0, n, tm.Size(), id)
		s := 0.0
		for i := blo; i < bhi; i++ {
			s += float64(i)
		}
		*tm.Partial(id) = s
	})
	return tm.PartialSum()
}

// idSlot indexes the captured slice by the worker id: disjoint cells.
func idSlot(tm *team.Team, out []float64) {
	tm.Run(func(id int) {
		out[id] = float64(id)
	})
}

// blockIndex indexes by a loop variable derived from the block bounds,
// so workers touch disjoint ranges.
func blockIndex(tm *team.Team, out []float64) {
	tm.ForBlock(0, len(out), func(blo, bhi int) {
		for i := blo; i < bhi; i++ {
			out[i] = float64(i)
		}
	})
}

// masterOnly writes under an id guard: the accepted single-writer
// idiom for master-only sections between barriers.
func masterOnly(tm *team.Team) bool {
	done := false
	tm.Run(func(id int) {
		if id == 0 {
			done = true
		}
	})
	return done
}
