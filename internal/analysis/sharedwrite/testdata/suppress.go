package fixture

import "npbgo/internal/team"

// suppressedWrite documents a benign last-writer-wins flag.
func suppressedWrite(tm *team.Team, n int) bool {
	touched := false
	tm.For(0, n, func(i int) {
		touched = true //npblint:ignore sharedwrite every worker writes the same value
	})
	return touched
}
