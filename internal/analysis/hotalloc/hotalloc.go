// Package hotalloc flags heap allocations inside the suite's hot
// paths.
//
// The Go analogue of the paper's central serial result (managed-runtime
// overhead versus Fortran) is allocation pressure in the kernels: a
// make, a growing append, or a boxed interface argument inside a
// parallel region body runs once per worker per iteration, and the
// garbage it produces is exactly the GC pressure the paper measured in
// Java. ROADMAP item 4 wants a "zero-allocation steady state ...
// audited by a new npblint analyzer" — this is that analyzer, the
// static half of the allocation discipline whose dynamic half is
// internal/allocgate.
//
// Three region shapes are considered hot:
//
//  1. Function literals passed to team.Team region starters (Run,
//     RunCtx, For, ForBlock, ReduceSum) — the body every worker
//     executes. Pipeline steps are covered transitively: Wait/Post
//     brackets only occur inside such bodies.
//  2. Statements bracketed by timer.Set Start("name")/Stop("name")
//     calls with literal names in the same block — the benchmarks'
//     timed phases. Start/Stop wrapped in a nil guard (`if timers !=
//     nil { ... }`) toggle the phase too; Stops deferred with `defer`
//     do not close it (they run at function exit). Non-literal names
//     (per-worker timer.Worker names, pass-through helpers) are
//     ignored, mirroring the timerpair analyzer.
//  3. Code annotated `//npblint:hot` — on the line above (or the doc
//     comment of) a function declaration, the whole body; on the line
//     above or trailing a statement, that statement. An annotated
//     assignment whose right-hand sides are all function literals is
//     the hoisted-body idiom — the closure is constructed once at
//     setup and reused every iteration — so the literal itself is not
//     reported, but its interior is audited as hot code. This is how
//     region bodies stay audited after they move out of the lexical
//     region call.
//
// Inside a hot region the analyzer reports make, new, append (growth
// cannot be ruled out statically), slice/map composite literals,
// &composite allocations, function literals (each is a fresh closure
// allocation; region bodies escape to the worker channels by
// construction), and arguments boxed into interface parameters or
// conversions. Setup code that legitimately allocates inside a hot
// shape is silenced with `//npblint:ignore hotalloc <reason>`. Test
// files are skipped wholesale: tests allocate deliberately, and the
// discipline this analyzer enforces is a property of the production
// kernels.
package hotalloc

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"npbgo/internal/analysis"
)

const (
	teamPath  = "npbgo/internal/team"
	timerPath = "npbgo/internal/timer"

	// hotMarker annotates a declaration or statement as hot-path code.
	hotMarker = "//npblint:hot"
)

// regionStarters are the Team methods whose func-literal argument is a
// parallel region body.
var regionStarters = map[string]bool{
	"Run":       true,
	"RunCtx":    true,
	"For":       true,
	"ForBlock":  true,
	"ReduceSum": true,
}

var Analyzer = &analysis.Analyzer{
	Name: "hotalloc",
	Doc: "flag heap allocations (make/new/append/composites/closures/interface boxing) " +
		"inside parallel region bodies, timed phases, and //npblint:hot code",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		name := pass.Fset.Position(file.Pos()).Filename
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		hotLines := markerLines(pass.Fset, file)
		w := &walker{pass: pass, hotLines: hotLines, reported: make(map[token.Pos]bool)}
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			hot := w.annotated(fn.Pos()) || docAnnotated(fn.Doc)
			w.scanFunc(fn.Body, hot, "//npblint:hot function")
		}
	}
	return nil
}

// markerLines collects the lines carrying a //npblint:hot comment.
func markerLines(fset *token.FileSet, file *ast.File) map[int]bool {
	lines := make(map[int]bool)
	for _, group := range file.Comments {
		for _, c := range group.List {
			if isHotComment(c.Text) {
				lines[fset.Position(c.Pos()).Line] = true
			}
		}
	}
	return lines
}

func isHotComment(text string) bool {
	if !strings.HasPrefix(text, hotMarker) {
		return false
	}
	rest := text[len(hotMarker):]
	return rest == "" || rest[0] == ' ' || rest[0] == '\t'
}

func docAnnotated(doc *ast.CommentGroup) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if isHotComment(c.Text) {
			return true
		}
	}
	return false
}

type walker struct {
	pass     *analysis.Pass
	hotLines map[int]bool
	reported map[token.Pos]bool
}

// annotated reports whether pos sits on or directly below a
// //npblint:hot line.
func (w *walker) annotated(pos token.Pos) bool {
	line := w.pass.Fset.Position(pos).Line
	return w.hotLines[line] || w.hotLines[line-1]
}

// scanFunc walks one function (or closure) body. hot marks the whole
// body as a hot region (with `why` naming the reason); otherwise hot
// sub-regions — region-starter literals, timed phases, annotated
// statements — are discovered statement by statement.
func (w *walker) scanFunc(body *ast.BlockStmt, hot bool, why string) {
	if hot {
		w.reportAllocs(body, why)
	}
	w.scanBlock(body, hot, why)
}

// scanBlock tracks the open timed phases through one statement list
// and recurses into nested blocks and function literals.
func (w *walker) scanBlock(block *ast.BlockStmt, hot bool, why string) {
	open := map[string]bool{}
	for _, stmt := range block.List {
		starts, stops := phaseToggles(w.pass, stmt)
		for _, name := range stops {
			delete(open, name)
		}
		stmtHot, stmtWhy := hot, why
		if !stmtHot && len(open) > 0 {
			stmtHot, stmtWhy = true, fmt.Sprintf("timed phase %q", anyKey(open))
		}
		if !stmtHot && w.annotated(stmt.Pos()) {
			if lits := hoistedBodyLits(stmt); len(lits) > 0 {
				// The hoisted-body idiom: the annotated assignment
				// constructs the closure once at setup; the hot code is
				// its interior.
				for _, lit := range lits {
					w.reportAllocs(lit.Body, "//npblint:hot hoisted body")
					w.scanBlock(lit.Body, true, "//npblint:hot hoisted body")
				}
				for _, name := range starts {
					open[name] = true
				}
				continue
			}
			stmtHot, stmtWhy = true, "//npblint:hot statement"
		}
		if stmtHot && !hot {
			w.reportAllocs(stmt, stmtWhy)
		}
		w.descend(stmt, stmtHot, stmtWhy)
		for _, name := range starts {
			open[name] = true
		}
	}
}

// hoistedBodyLits returns the function literals of an assignment whose
// right-hand sides are all function literals — the hoisted region-body
// idiom — and nil for every other statement shape.
func hoistedBodyLits(stmt ast.Stmt) []*ast.FuncLit {
	as, ok := stmt.(*ast.AssignStmt)
	if !ok || len(as.Rhs) == 0 {
		return nil
	}
	lits := make([]*ast.FuncLit, 0, len(as.Rhs))
	for _, rhs := range as.Rhs {
		lit, ok := rhs.(*ast.FuncLit)
		if !ok {
			return nil
		}
		lits = append(lits, lit)
	}
	return lits
}

func anyKey(m map[string]bool) string {
	for k := range m {
		return k
	}
	return ""
}

// descend recurses into the blocks and function literals of one
// statement so nested statement lists get their own phase tracking and
// region-starter literals are discovered at any depth.
func (w *walker) descend(stmt ast.Stmt, hot bool, why string) {
	ast.Inspect(stmt, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.BlockStmt:
			w.scanBlock(v, hot, why)
			return false
		case *ast.CallExpr:
			if body, ok := regionBody(w.pass, v); ok {
				w.reportAllocs(body.Body, "parallel region body")
				// The body itself was handled; keep inspecting the
				// other arguments through the default path below.
				for _, arg := range v.Args {
					if arg != ast.Expr(body) {
						ast.Inspect(arg, func(m ast.Node) bool {
							if b, ok := m.(*ast.BlockStmt); ok {
								w.scanBlock(b, hot, why)
								return false
							}
							return true
						})
					}
				}
				w.scanBlock(body.Body, hot, why)
				return false
			}
		case *ast.FuncLit:
			w.scanBlock(v.Body, hot, why)
			return false
		}
		return true
	})
}

// regionBody returns the func-literal region body of a team
// region-starter call, if call is one.
func regionBody(pass *analysis.Pass, call *ast.CallExpr) (*ast.FuncLit, bool) {
	recv, method, isMeth := analysis.Receiver(pass.TypesInfo, call)
	if !isMeth || !analysis.IsNamed(recv, teamPath, "Team") || !regionStarters[method] {
		return nil, false
	}
	if len(call.Args) == 0 {
		return nil, false
	}
	lit, ok := call.Args[len(call.Args)-1].(*ast.FuncLit)
	return lit, ok
}

// phaseToggles returns the literal timer.Set phase names started and
// stopped by stmt, looking through nil guards but not into function
// literals (their Start/Stop runs on another goroutine's schedule) or
// defers (a deferred Stop closes the phase at function exit, not here).
func phaseToggles(pass *analysis.Pass, stmt ast.Stmt) (starts, stops []string) {
	if _, ok := stmt.(*ast.DeferStmt); ok {
		return nil, nil
	}
	ast.Inspect(stmt, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.DeferStmt:
			return false
		case *ast.CallExpr:
			recv, method, isMeth := analysis.Receiver(pass.TypesInfo, v)
			if !isMeth || !analysis.IsNamed(recv, timerPath, "Set") || len(v.Args) == 0 {
				return true
			}
			name, ok := analysis.StringLit(v.Args[0])
			if !ok {
				return true
			}
			switch method {
			case "Start":
				starts = append(starts, name)
			case "Stop":
				stops = append(stops, name)
			}
		}
		return true
	})
	return starts, stops
}

// reportAllocs reports every allocation site under root. Function
// literals that are themselves region bodies are reported as closure
// allocations (constructing one per iteration is the canonical hot
// leak) but their contents are reported with the more precise
// "parallel region body" reason by the caller's walk.
func (w *walker) reportAllocs(root ast.Node, why string) {
	ast.Inspect(root, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.CallExpr:
			w.checkCall(v, why)
		case *ast.CompositeLit:
			w.checkComposite(v, why)
		case *ast.UnaryExpr:
			if v.Op == token.AND {
				if _, ok := v.X.(*ast.CompositeLit); ok {
					w.report(v.Pos(), fmt.Sprintf("&composite literal allocates in %s", why))
				}
			}
		case *ast.FuncLit:
			w.report(v.Pos(), fmt.Sprintf("function literal allocates a closure per execution of %s; hoist it and reuse", why))
		}
		return true
	})
}

func (w *walker) checkCall(call *ast.CallExpr, why string) {
	tv, ok := w.pass.TypesInfo.Types[call.Fun]
	if !ok {
		return
	}
	switch {
	case tv.IsBuiltin():
		name := builtinName(call.Fun)
		switch name {
		case "make":
			w.report(call.Pos(), fmt.Sprintf("make allocates in %s; preallocate in setup and reuse", why))
		case "new":
			w.report(call.Pos(), fmt.Sprintf("new allocates in %s; preallocate in setup and reuse", why))
		case "append":
			w.report(call.Pos(), fmt.Sprintf("append may grow its backing array in %s; size the buffer in setup", why))
		}
	case tv.IsType():
		// Conversion: T(x) boxes when T is an interface and x is not.
		if types.IsInterface(tv.Type) && len(call.Args) == 1 && boxes(w.pass, call.Args[0]) {
			w.report(call.Pos(), fmt.Sprintf("conversion boxes its operand into an interface in %s", why))
		}
	default:
		sig, ok := tv.Type.Underlying().(*types.Signature)
		if !ok {
			return
		}
		w.checkBoxing(call, sig, why)
	}
}

// checkBoxing reports call arguments boxed into interface parameters —
// the fmt.Sprintf("%d", i) in a hot loop.
func (w *walker) checkBoxing(call *ast.CallExpr, sig *types.Signature, why string) {
	params := sig.Params()
	if params.Len() == 0 {
		return
	}
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // s... passes the slice through, no boxing here
			}
			slice, ok := params.At(params.Len() - 1).Type().(*types.Slice)
			if !ok {
				continue
			}
			pt = slice.Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if types.IsInterface(pt) && boxes(w.pass, arg) {
			w.report(arg.Pos(), fmt.Sprintf("argument is boxed into an interface parameter in %s", why))
		}
	}
}

// boxes reports whether passing arg to an interface allocates: its type
// is concrete, not already an interface, not untyped nil, and not a
// pointer (pointers fit the interface word).
func boxes(pass *analysis.Pass, arg ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[arg]
	if !ok || tv.Type == nil {
		return false
	}
	t := tv.Type
	if b, ok := t.(*types.Basic); ok && b.Kind() == types.UntypedNil {
		return false
	}
	if types.IsInterface(t) {
		return false
	}
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		// One-word reference types: stored directly, no box.
		return false
	}
	return true
}

func builtinName(fun ast.Expr) string {
	switch v := fun.(type) {
	case *ast.Ident:
		return v.Name
	case *ast.ParenExpr:
		return builtinName(v.X)
	}
	return ""
}

// checkComposite reports slice and map composite literals; struct and
// array values are stack values unless they escape, which the escape
// report (cmd/npbescape) tracks with compiler precision.
func (w *walker) checkComposite(lit *ast.CompositeLit, why string) {
	tv, ok := w.pass.TypesInfo.Types[lit]
	if !ok || tv.Type == nil {
		return
	}
	switch tv.Type.Underlying().(type) {
	case *types.Slice:
		w.report(lit.Pos(), fmt.Sprintf("slice literal allocates in %s; preallocate in setup and reuse", why))
	case *types.Map:
		w.report(lit.Pos(), fmt.Sprintf("map literal allocates in %s; preallocate in setup and reuse", why))
	}
}

func (w *walker) report(pos token.Pos, msg string) {
	if w.reported[pos] {
		return
	}
	w.reported[pos] = true
	w.pass.Report(analysis.Diagnostic{Pos: pos, Message: msg})
}
