package hotallocfixture

//npblint:hot hoisted region body, reused every iteration
func hotFunc(n int) []float64 {
	return make([]float64, n) // want `make allocates in //npblint:hot function`
}

func hotStmt(n int) {
	//npblint:hot steady-state path, executed once per iteration
	buf := make([]float64, n) // want `make allocates in //npblint:hot statement`
	_ = buf
	cold := make([]float64, n)
	_ = cold
}

// hoistedBody is the setup idiom the benchmarks use: the annotated
// assignment builds the closure once, so the literal itself is fine,
// but its interior runs every iteration and is audited as hot.
type hoistedBody struct {
	body func(id int)
}

func (h *hoistedBody) build(n int) {
	//npblint:hot hoisted region body, reused every iteration
	h.body = func(id int) {
		scratch := make([]float64, n) // want `make allocates in //npblint:hot hoisted body`
		_ = scratch
	}

	// Unannotated: neither the literal nor its interior is hot.
	h.body = func(id int) {
		scratch := make([]float64, n)
		_ = scratch
	}
}
