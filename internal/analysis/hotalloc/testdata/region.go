package hotallocfixture

import (
	"fmt"

	"npbgo/internal/team"
)

func regionAllocs(tm *team.Team, out []float64, n int) {
	tm.Run(func(id int) {
		buf := make([]float64, n) // want `make allocates in parallel region body`
		out[0] = buf[0]
	})
	tm.ForBlock(0, n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			p := new(float64) // want `new allocates in parallel region body`
			out[i] = *p
		}
	})
	sum := tm.ReduceSum(0, n, func(lo, hi int) float64 {
		s := []float64{0} // want `slice literal allocates in parallel region body`
		for i := lo; i < hi; i++ {
			s = append(s, out[i]) // want `append may grow its backing array in parallel region body`
		}
		return s[0]
	})
	_ = sum
	tm.For(0, n, func(i int) {
		m := map[int]int{} // want `map literal allocates in parallel region body`
		out[i] = float64(m[i])
	})
	// Setup allocations outside any hot region are fine.
	cold := make([]float64, n)
	_ = cold
}

func nestedClosure(tm *team.Team, out []float64, n int) {
	tm.Run(func(id int) {
		f := func() int { return id } // want `function literal allocates a closure per execution of parallel region body`
		out[id] = float64(f())
	})
}

func boxing(tm *team.Team, out []string) {
	tm.Run(func(id int) {
		out[id] = fmt.Sprintf("w%d", id) // want `argument is boxed into an interface parameter in parallel region body`
	})
}

var sink any

func conversion(tm *team.Team) {
	tm.Run(func(id int) {
		sink = any(id) // want `conversion boxes its operand into an interface in parallel region body`
	})
}
