package hotallocfixture

import "npbgo/internal/team"

func suppressedSetup(tm *team.Team, n int) {
	tm.Run(func(id int) {
		buf := make([]float64, n) //npblint:ignore hotalloc first-touch initialization, runs once before the timed loop
		_ = buf
	})
}
