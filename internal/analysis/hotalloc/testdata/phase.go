package hotallocfixture

import (
	"npbgo/internal/team"
	"npbgo/internal/timer"
)

func timedPhase(ts *timer.Set, n int) []float64 {
	var out []float64
	ts.Start("iterate")
	out = make([]float64, n) // want `make allocates in timed phase "iterate"`
	ts.Stop("iterate")
	// After the Stop the block is cold again.
	buf := make([]float64, n)
	return append(out, buf...)
}

func guarded(ts *timer.Set, n int) []float64 {
	var out []float64
	// Start/Stop behind the usual nil guard still toggle the phase.
	if ts != nil {
		ts.Start("guarded")
	}
	out = make([]float64, n) // want `make allocates in timed phase "guarded"`
	if ts != nil {
		ts.Stop("guarded")
	}
	return out
}

func helper(ts *timer.Set, name string, n int) []float64 {
	// Non-literal phase names are ignored, mirroring timerpair: the
	// helper owns the pairing, the analyzer cannot see the region.
	ts.Start(name)
	out := make([]float64, n)
	ts.Stop(name)
	return out
}

func phaseRegion(ts *timer.Set, tm *team.Team, out []float64, n int) {
	ts.Start("sweep")
	tm.ForBlock(0, n, func(lo, hi int) { // want `function literal allocates a closure per execution of timed phase "sweep"`
		for i := lo; i < hi; i++ {
			out[i] = 0
		}
	})
	ts.Stop("sweep")
}
