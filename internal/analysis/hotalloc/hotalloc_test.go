package hotalloc_test

import (
	"testing"

	"npbgo/internal/analysis/analysistest"
	"npbgo/internal/analysis/hotalloc"
)

func TestGolden(t *testing.T) {
	analysistest.Run(t, hotalloc.Analyzer, "testdata")
}
