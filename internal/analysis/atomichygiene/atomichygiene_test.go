package atomichygiene_test

import (
	"testing"

	"npbgo/internal/analysis/analysistest"
	"npbgo/internal/analysis/atomichygiene"
)

func TestGolden(t *testing.T) {
	analysistest.Run(t, atomichygiene.Analyzer, "testdata")
}
