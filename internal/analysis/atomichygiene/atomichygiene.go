// Package atomichygiene flags variables that are accessed both through
// sync/atomic calls and through plain loads or stores.
//
// Mixing the two is the race class fixed by hand in the team.Close
// work: an `atomic.AddInt64(&s.n, 1)` on the worker side paired with a
// plain `s.n` read on the master side compiles, passes tests, and is
// still a data race — the plain access can tear, be reordered, or be
// hoisted out of a loop by the compiler. Once one access site of a
// word is atomic, every access site must be: either all callers go
// through sync/atomic, or the field migrates to the atomic.Bool/Int64
// wrapper types whose method set makes plain access impossible (the
// style the team runtime itself uses).
//
// The analyzer records every variable whose address is taken as the
// first argument of a sync/atomic call, then reports every other
// plain mention of the same variable in the package. Initialization
// before any goroutine exists is a legitimate plain store; suppress
// those sites with `//npblint:ignore atomichygiene <reason>` or, better,
// use the wrapper types.
package atomichygiene

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"npbgo/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "atomichygiene",
	Doc:  "flag variables accessed both via sync/atomic calls and via plain loads/stores",
	Run:  run,
}

// atomicFuncs are the sync/atomic functions whose first argument is
// the address of the word they operate on.
func isAtomicFunc(name string) bool {
	for _, prefix := range []string{"Add", "And", "Or", "Load", "Store", "Swap", "CompareAndSwap"} {
		if strings.HasPrefix(name, prefix) {
			return true
		}
	}
	return false
}

func run(pass *analysis.Pass) error {
	// Pass 1: variables used atomically, and the positions of the
	// &x arguments themselves (excluded from the plain-access scan).
	atomicVars := make(map[types.Object]token.Position)
	atomicArgs := make(map[ast.Expr]bool)
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			pkg, name, ok := analysis.PkgFunc(pass.TypesInfo, call)
			if !ok || pkg != "sync/atomic" || !isAtomicFunc(name) || len(call.Args) == 0 {
				return true
			}
			addr, ok := call.Args[0].(*ast.UnaryExpr)
			if !ok || addr.Op != token.AND {
				return true
			}
			obj := referencedVar(pass, addr.X)
			if obj == nil {
				return true
			}
			atomicArgs[addr.X] = true
			if _, seen := atomicVars[obj]; !seen {
				atomicVars[obj] = pass.Fset.Position(call.Pos())
			}
			return true
		})
	}
	if len(atomicVars) == 0 {
		return nil
	}

	// Pass 2: every other mention of those variables is a plain access.
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			expr, ok := n.(ast.Expr)
			if !ok {
				return true
			}
			if atomicArgs[expr] {
				return false // the &x of an atomic call itself
			}
			obj := referencedVar(pass, expr)
			if obj == nil {
				return true
			}
			first, isAtomic := atomicVars[obj]
			if !isAtomic {
				return true
			}
			pass.Report(analysis.Diagnostic{
				Pos: expr.Pos(),
				Message: fmt.Sprintf("%s is accessed with sync/atomic (first at %s:%d) but plainly here; "+
					"every access must be atomic, or the field should use the atomic wrapper types",
					obj.Name(), trimPath(first.Filename), first.Line),
			})
			return false
		})
	}
	return nil
}

// referencedVar resolves an expression to the variable it names: a
// plain identifier or a field selector. Anything more indirect
// (indexing, dereference chains) is out of scope for this static check.
func referencedVar(pass *analysis.Pass, expr ast.Expr) types.Object {
	switch v := expr.(type) {
	case *ast.Ident:
		if obj, ok := pass.TypesInfo.Uses[v]; ok {
			if _, isVar := obj.(*types.Var); isVar {
				return obj
			}
		}
	case *ast.SelectorExpr:
		if sel, ok := pass.TypesInfo.Selections[v]; ok && sel.Kind() == types.FieldVal {
			return sel.Obj()
		}
	}
	return nil
}

func trimPath(file string) string {
	if i := strings.LastIndexByte(file, '/'); i >= 0 {
		return file[i+1:]
	}
	return file
}
