package atomicfixture

func (c *counter) construct() {
	c.n = 42 //npblint:ignore atomichygiene pre-spawn initialization, no concurrent accessors yet
}
