package atomicfixture

import "sync/atomic"

type counter struct {
	n    int64
	safe atomic.Int64
	m    int64
}

func (c *counter) incr() {
	atomic.AddInt64(&c.n, 1)
}

func (c *counter) read() int64 {
	return c.n // want `n is accessed with sync/atomic`
}

func (c *counter) reset() {
	c.n = 0 // want `n is accessed with sync/atomic`
}

func (c *counter) goodRead() int64 {
	return atomic.LoadInt64(&c.n)
}

func (c *counter) wrapper() int64 {
	// The atomic.Int64 wrapper cannot be accessed plainly; nothing to
	// report.
	c.safe.Add(1)
	return c.safe.Load()
}

func (c *counter) plainOnly() int64 {
	// Never touched atomically: plain access is fine.
	c.m++
	return c.m
}

var ready int32

func setReady() { atomic.StoreInt32(&ready, 1) }

func isReady() bool {
	return ready == 1 // want `ready is accessed with sync/atomic`
}
