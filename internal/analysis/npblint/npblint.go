// Package npblint assembles the analyzer suite enforced over this
// repository. cmd/npblint, the golden tests, and the repo-cleanliness
// test all draw from this one list.
package npblint

import (
	"npbgo/internal/analysis"
	"npbgo/internal/analysis/atomichygiene"
	"npbgo/internal/analysis/barrierbalance"
	"npbgo/internal/analysis/ctxpropagate"
	"npbgo/internal/analysis/faultsite"
	"npbgo/internal/analysis/gridindex"
	"npbgo/internal/analysis/hotalloc"
	"npbgo/internal/analysis/sharedwrite"
	"npbgo/internal/analysis/timerpair"
	"npbgo/internal/analysis/tracepair"
)

// Analyzers returns the full suite in stable order.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		atomichygiene.Analyzer,
		barrierbalance.Analyzer,
		ctxpropagate.Analyzer,
		faultsite.Analyzer,
		gridindex.Analyzer,
		hotalloc.Analyzer,
		sharedwrite.Analyzer,
		timerpair.Analyzer,
		tracepair.Analyzer,
	}
}
