package npblint_test

import (
	"testing"

	"npbgo/internal/analysis/driver"
	"npbgo/internal/analysis/npblint"
)

// TestRepoClean runs the whole suite over the whole module: the repo
// must stay lint-clean. This covers the non-test sources; `make lint`
// additionally covers _test.go files by routing through go vet.
func TestRepoClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the entire module")
	}
	root, err := driver.ModuleRoot(".")
	if err != nil {
		t.Fatalf("module root: %v", err)
	}
	pkgs, err := driver.Load(root, "./...")
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	findings, err := driver.Run(pkgs, npblint.Analyzers())
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		t.Errorf("%s: %s (%s)", f.Pos, f.Message, f.Analyzer)
	}
}
