package faultsite_test

import (
	"testing"

	"npbgo/internal/analysis/analysistest"
	"npbgo/internal/analysis/faultsite"
)

func TestGolden(t *testing.T) {
	analysistest.Run(t, faultsite.Analyzer, "testdata")
}
