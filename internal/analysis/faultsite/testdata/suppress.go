package fixture

import "npbgo/internal/fault"

// suppressedSite keeps a deliberately unregistered key.
func suppressedSite() {
	fault.Maybe("demo.site") //npblint:ignore faultsite fixture-only key, not wired into the suite
}
