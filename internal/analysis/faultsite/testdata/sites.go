// Golden fixtures for the faultsite analyzer: injection site keys that
// are misspelled, unregistered, or not literal. Never built by the go
// tool; type-checked by analysistest.
package fixture

import "npbgo/internal/fault"

// registered uses keys present in fault.Sites().
func registered() {
	fault.Maybe("team.region")
	if fault.Corrupted("cg.verify") {
		return
	}
}

// typo is a near-miss key one transposition away from "team.region".
func typo() {
	fault.Maybe("team.regoin") // want `unknown fault site`
}

// unregistered uses a key nobody added to the registry.
func unregistered() float64 {
	return fault.CorruptFloat("mg.norm", 1.0) // want `unknown fault site`
}

// dynamicKey hides the key from the registry check.
func dynamicKey(site string) {
	fault.Maybe(site) // want `must be an in-place string literal`
}

// ruleTypo misspells the key inside a plan rule.
func ruleTypo() fault.Rule {
	return fault.Rule{Site: "cg.itre", Kind: fault.KindPanic} // want `unknown fault site`
}

// ruleOK is the same rule with the registered key.
func ruleOK() fault.Rule {
	return fault.Rule{Site: "cg.iter", Kind: fault.KindPanic}
}
