// Package faultsite checks fault-injection site keys against the
// registry exported by the fault package.
//
// Injection sites are addressed by string keys ("cg.iter",
// "team.region", ...). Tests, documentation, and the npbsuite
// -list-faults output all refer to those keys, so a typo in any of them
// silently turns an injection plan into a no-op — the failure mode is a
// robustness test that cannot fail. Two rules for every call to
// fault.Maybe, fault.Corrupted, fault.CorruptFloat and fault.Hits, and
// for every Site field of a fault.Rule literal, in non-test files:
//
//  1. the site key must be an in-place string literal (auditable,
//     greppable, registrable);
//  2. the literal must appear in fault.Sites(), the single source of
//     truth in internal/fault/sites.go.
//
// Test files are exempt: tests may probe ad-hoc sites to exercise the
// registry machinery itself.
package faultsite

import (
	"go/ast"
	"go/types"
	"strings"

	"npbgo/internal/analysis"
	"npbgo/internal/fault"
)

const faultPath = "npbgo/internal/fault"

// siteFuncs maps the fault package functions to the index of their
// site-key argument.
var siteFuncs = map[string]int{
	"Maybe":        0,
	"Corrupted":    0,
	"CorruptFloat": 0,
	"Hits":         0,
}

var Analyzer = &analysis.Analyzer{
	Name: "faultsite",
	Doc: "check fault injection site keys against the fault.Sites() registry " +
		"so injection sites, tests and docs cannot drift",
	Run: run,
}

func run(pass *analysis.Pass) error {
	known := make(map[string]bool)
	for _, s := range fault.Sites() {
		known[s] = true
	}
	if pass.Pkg.Path() == faultPath {
		return nil // the registry's own package
	}
	for _, file := range pass.Files {
		name := pass.Fset.Position(file.Pos()).Filename
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkCall(pass, known, n)
			case *ast.CompositeLit:
				checkRuleLit(pass, known, n)
			}
			return true
		})
	}
	return nil
}

func checkCall(pass *analysis.Pass, known map[string]bool, call *ast.CallExpr) {
	pkg, fn, ok := analysis.PkgFunc(pass.TypesInfo, call)
	if !ok || pkg != faultPath {
		return
	}
	argIdx, tracked := siteFuncs[fn]
	if !tracked || len(call.Args) <= argIdx {
		return
	}
	checkSiteExpr(pass, known, call.Args[argIdx], "fault."+fn)
}

// checkRuleLit checks the Site field of fault.Rule composite literals.
func checkRuleLit(pass *analysis.Pass, known map[string]bool, lit *ast.CompositeLit) {
	t := pass.TypesInfo.Types[lit].Type
	if t == nil {
		return
	}
	named, isNamed := t.(*types.Named)
	if !isNamed || !analysis.IsNamed(named, faultPath, "Rule") {
		return
	}
	for _, elt := range lit.Elts {
		kv, isKV := elt.(*ast.KeyValueExpr)
		if !isKV {
			continue
		}
		if key, isIdent := kv.Key.(*ast.Ident); isIdent && key.Name == "Site" {
			checkSiteExpr(pass, known, kv.Value, "fault.Rule.Site")
		}
	}
}

func checkSiteExpr(pass *analysis.Pass, known map[string]bool, e ast.Expr, context string) {
	site, isLit := analysis.StringLit(e)
	if !isLit {
		pass.Reportf(e.Pos(),
			"%s site key must be an in-place string literal so the registry check can see it", context)
		return
	}
	if !known[site] {
		pass.Reportf(e.Pos(),
			"unknown fault site %q; register it in fault.Sites (internal/fault/sites.go) or fix the key", site)
	}
}
