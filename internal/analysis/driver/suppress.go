package driver

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// ignorePrefix introduces a suppression comment:
//
//	//npblint:ignore <analyzer>[,<analyzer>...] <reason>
//
// A suppression on line L (trailing the offending code or on the line
// directly above it) silences the named analyzers' diagnostics on that
// line. The reason is mandatory: a bare //npblint:ignore is itself
// reported, so suppressions stay auditable.
const ignorePrefix = "//npblint:ignore"

// ignoreEntry is one analyzer name of one suppression comment. A
// comment naming several analyzers produces several entries so the
// unused-suppression audit can point at the precise stale name.
type ignoreEntry struct {
	name string // analyzer name, or "all"
	pos  token.Position
	used bool
}

// suppressions indexes the ignore comments of one package.
type suppressions struct {
	// byLine maps file:line to the ignore entries anchored there.
	byLine map[fileLine][]*ignoreEntry
	// entries holds every entry in scan order, for the unused audit.
	entries []*ignoreEntry
	// invalid holds driver-level findings for ignore comments that are
	// malformed or name an analyzer outside the known catalog.
	invalid []Finding
	// generated marks files carrying the standard `Code generated ...
	// DO NOT EDIT.` header. Suppressions inside them still apply, but
	// the unused audit skips them: the fix for a stale suppression is
	// editing the generator, not the file.
	generated map[string]bool
}

type fileLine struct {
	file string
	line int
}

// scanSuppressions collects every //npblint:ignore comment in pkg.
// known, when non-empty, is the full analyzer catalog; entry names
// outside it (other than the "all" wildcard) are reported as invalid.
func scanSuppressions(pkg *Package, known map[string]bool) *suppressions {
	sup := &suppressions{
		byLine:    make(map[fileLine][]*ignoreEntry),
		generated: make(map[string]bool),
	}
	for _, f := range pkg.Files {
		if ast.IsGenerated(f) {
			sup.generated[pkg.Fset.Position(f.Pos()).Filename] = true
		}
		for _, group := range f.Comments {
			for _, c := range group.List {
				if !strings.HasPrefix(c.Text, ignorePrefix) {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				rest := strings.TrimSpace(strings.TrimPrefix(c.Text, ignorePrefix))
				names, reason, _ := strings.Cut(rest, " ")
				if names == "" || strings.TrimSpace(reason) == "" {
					sup.invalid = append(sup.invalid, Finding{
						Analyzer: "npblint",
						Pos:      pos,
						Message:  "malformed suppression: want //npblint:ignore <analyzer> <reason>",
					})
					continue
				}
				k := fileLine{pos.Filename, pos.Line}
				for _, name := range strings.Split(names, ",") {
					if len(known) > 0 && name != "all" && !known[name] {
						sup.invalid = append(sup.invalid, Finding{
							Analyzer: "npblint",
							Pos:      pos,
							Message: fmt.Sprintf("suppression names unknown analyzer %q (known: %s)",
								name, knownList(known)),
						})
						continue
					}
					e := &ignoreEntry{name: name, pos: pos}
					sup.byLine[k] = append(sup.byLine[k], e)
					sup.entries = append(sup.entries, e)
				}
			}
		}
	}
	return sup
}

// knownList renders the catalog for the unknown-name diagnostic.
func knownList(known map[string]bool) string {
	names := make([]string, 0, len(known))
	for n := range known {
		names = append(names, n)
	}
	sort.Strings(names)
	return strings.Join(names, ", ")
}

// suppressed reports whether a diagnostic from the named analyzer at
// pos is covered by an ignore comment on the same line or the line
// directly above, and marks the covering entries used.
func (s *suppressions) suppressed(analyzer string, pos token.Position) bool {
	hit := false
	for _, line := range [...]int{pos.Line, pos.Line - 1} {
		for _, e := range s.byLine[fileLine{pos.Filename, line}] {
			if e.name == analyzer || e.name == "all" {
				e.used = true
				hit = true
			}
		}
	}
	return hit
}

// unused returns warn-only findings for ignore entries that suppressed
// nothing during the run. ran is the set of analyzers that actually
// executed: an entry naming an analyzer that did not run is not
// reported (nothing can be concluded about it), and neither are entries
// in generated files. The "all" wildcard is audited whenever anything
// ran.
func (s *suppressions) unused(ran map[string]bool) []Finding {
	var out []Finding
	for _, e := range s.entries {
		if e.used || s.generated[e.pos.Filename] {
			continue
		}
		if e.name != "all" && !ran[e.name] {
			continue
		}
		out = append(out, Finding{
			Analyzer: "npblint",
			Pos:      e.pos,
			Message:  fmt.Sprintf("unused suppression: no %s diagnostic is anchored to this line", e.name),
		})
	}
	return out
}
