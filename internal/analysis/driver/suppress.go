package driver

import (
	"go/token"
	"strings"
)

// ignorePrefix introduces a suppression comment:
//
//	//npblint:ignore <analyzer>[,<analyzer>...] <reason>
//
// A suppression on line L (trailing the offending code or on the line
// directly above it) silences the named analyzers' diagnostics on that
// line. The reason is mandatory: a bare //npblint:ignore is itself
// reported, so suppressions stay auditable.
const ignorePrefix = "//npblint:ignore"

// suppressions indexes the ignore comments of one package.
type suppressions struct {
	// byLine maps file:line to the analyzer names suppressed there.
	byLine map[fileLine][]string
	// malformed holds driver-level findings for ignore comments with
	// no analyzer name or no reason.
	malformed []Finding
}

type fileLine struct {
	file string
	line int
}

// scanSuppressions collects every //npblint:ignore comment in pkg.
func scanSuppressions(pkg *Package) *suppressions {
	sup := &suppressions{byLine: make(map[fileLine][]string)}
	for _, f := range pkg.Files {
		for _, group := range f.Comments {
			for _, c := range group.List {
				if !strings.HasPrefix(c.Text, ignorePrefix) {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				rest := strings.TrimSpace(strings.TrimPrefix(c.Text, ignorePrefix))
				names, reason, _ := strings.Cut(rest, " ")
				if names == "" || strings.TrimSpace(reason) == "" {
					sup.malformed = append(sup.malformed, Finding{
						Analyzer: "npblint",
						Pos:      pos,
						Message:  "malformed suppression: want //npblint:ignore <analyzer> <reason>",
					})
					continue
				}
				k := fileLine{pos.Filename, pos.Line}
				sup.byLine[k] = append(sup.byLine[k], strings.Split(names, ",")...)
			}
		}
	}
	return sup
}

// suppressed reports whether a diagnostic from the named analyzer at
// pos is covered by an ignore comment on the same line or the line
// directly above.
func (s *suppressions) suppressed(analyzer string, pos token.Position) bool {
	for _, line := range [...]int{pos.Line, pos.Line - 1} {
		for _, name := range s.byLine[fileLine{pos.Filename, line}] {
			if name == analyzer || name == "all" {
				return true
			}
		}
	}
	return false
}
