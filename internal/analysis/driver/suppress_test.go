package driver

import (
	"go/ast"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"npbgo/internal/analysis"
)

// callAnalyzer reports every call to the function named target; the
// suppression tests pair two of them ("boomlint" on boom(), "zaplint"
// on zap()) against the fixtures in testdata/suppress.
func callAnalyzer(name, target string) *analysis.Analyzer {
	return &analysis.Analyzer{
		Name: name,
		Doc:  "test analyzer flagging calls to " + target,
		Run: func(pass *analysis.Pass) error {
			for _, f := range pass.Files {
				ast.Inspect(f, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					if id, ok := call.Fun.(*ast.Ident); ok && id.Name == target {
						pass.Report(analysis.Diagnostic{Pos: call.Pos(), Message: target + " called"})
					}
					return true
				})
			}
			return nil
		},
	}
}

func loadSuppressFixture(t *testing.T) *Package {
	t.Helper()
	dir := filepath.Join("testdata", "suppress")
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("reading fixtures: %v", err)
	}
	var files []string
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".go") {
			files = append(files, filepath.Join(dir, e.Name()))
		}
	}
	sort.Strings(files)
	pkg, err := LoadFiles(dir, "npbgo/internal/analysis/fixture/suppress", files)
	if err != nil {
		t.Fatalf("loading fixtures: %v", err)
	}
	return pkg
}

// key renders a finding as "file:line analyzer" with the path reduced
// to its base name, so expectations are independent of the checkout
// location.
func key(f Finding) string {
	return filepath.Base(f.Pos.Filename) + ":" + itoa(f.Pos.Line) + " " + f.Analyzer
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

func keys(fs []Finding) []string {
	out := make([]string, len(fs))
	for i, f := range fs {
		out[i] = key(f)
	}
	return out
}

func wantEqual(t *testing.T, what string, got, want []string) {
	t.Helper()
	if strings.Join(got, "\n") != strings.Join(want, "\n") {
		t.Errorf("%s mismatch:\ngot:\n  %s\nwant:\n  %s",
			what, strings.Join(got, "\n  "), strings.Join(want, "\n  "))
	}
}

func TestSuppressionPlacement(t *testing.T) {
	pkg := loadSuppressFixture(t)
	boom := callAnalyzer("boomlint", "boom")
	zap := callAnalyzer("zaplint", "zap")
	cfg := RunConfig{Known: []string{"boomlint", "zaplint"}, UnusedIgnores: true}

	findings, warnings, err := RunConfigured([]*Package{pkg}, []*analysis.Analyzer{boom, zap}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Same-line and line-above suppressions hold (lines 6 and 9 of
	// a.go are absent); a comment two lines above does not reach line
	// 13; the boomlint,zaplint comment on line 15 silences both
	// analyzers; the zaplint-only comment on line 17 does not cover
	// boomlint. unknown.go surfaces the unknown-name and missing-reason
	// diagnostics alongside the then-unsuppressed findings, and the
	// generated file's suppressions still apply.
	wantEqual(t, "findings", keys(findings), []string{
		"a.go:13 boomlint",
		"a.go:17 boomlint",
		"unknown.go:3 boomlint",
		"unknown.go:3 npblint",
		"unknown.go:5 boomlint",
		"unknown.go:5 npblint",
	})
	for _, f := range findings {
		if key(f) == "unknown.go:3 npblint" && !strings.Contains(f.Message, `unknown analyzer "nosuchlint"`) {
			t.Errorf("unknown-name diagnostic has wrong message: %s", f.Message)
		}
		if key(f) == "unknown.go:5 npblint" && !strings.Contains(f.Message, "malformed suppression") {
			t.Errorf("missing-reason diagnostic has wrong message: %s", f.Message)
		}
	}
	// Stale entries: the orphaned line-11 boomlint comment and the
	// zaplint name on line 17. The generated file's stale boomlint
	// entry is exempt.
	wantEqual(t, "warnings", keys(warnings), []string{
		"a.go:11 npblint",
		"a.go:17 npblint",
	})
	for _, w := range warnings {
		if !strings.Contains(w.Message, "unused suppression") {
			t.Errorf("warning has wrong message: %s", w.Message)
		}
	}
}

func TestUnusedIgnoresOnlyAuditsRanAnalyzers(t *testing.T) {
	pkg := loadSuppressFixture(t)
	boom := callAnalyzer("boomlint", "boom")
	cfg := RunConfig{Known: []string{"boomlint", "zaplint"}, UnusedIgnores: true}

	_, warnings, err := RunConfigured([]*Package{pkg}, []*analysis.Analyzer{boom}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// zaplint did not run, so nothing can be concluded about its
	// entries (lines 17 and 19); only boomlint's orphaned comment on
	// line 11 is reported.
	wantEqual(t, "warnings", keys(warnings), []string{"a.go:11 npblint"})
}

func TestLegacyRunSkipsNameValidation(t *testing.T) {
	pkg := loadSuppressFixture(t)
	boom := callAnalyzer("boomlint", "boom")

	// The zero RunConfig (what analysistest and plain Run use) has no
	// catalog, so fixtures naming other analyzers stay loadable.
	findings, err := Run([]*Package{pkg}, []*analysis.Analyzer{boom})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		if strings.Contains(f.Message, "unknown analyzer") {
			t.Errorf("unexpected unknown-name diagnostic without a catalog: %s", f)
		}
	}
	// With nosuchlint accepted, unknown.go line 3 is "suppressed" by a
	// name that matches nothing, so the boomlint finding still appears.
	got := keys(findings)
	want := []string{
		"a.go:13 boomlint",
		"a.go:17 boomlint",
		"unknown.go:3 boomlint",
		"unknown.go:5 boomlint",
		"unknown.go:5 npblint",
	}
	wantEqual(t, "findings", got, want)
}
