package driver

import (
	"encoding/json"
	"fmt"
	"go/importer"
	"go/token"
	"go/types"
	"io"
	"os"

	"npbgo/internal/analysis"
)

// vetConfig mirrors the JSON compilation-unit description `go vet`
// hands a -vettool (the unitchecker protocol of x/tools, which this
// file re-implements on the stdlib). Fields the npblint analyzers do
// not need (facts, fact files, gccgo fallbacks) are accepted and
// ignored.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	ImportMap                 map[string]string // import path -> package path
	PackageFile               map[string]string // package path -> export data file
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// importerFunc adapts a function to types.Importer.
type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// RunUnit performs the `go vet -vettool` side of the protocol: read the
// JSON config, analyze the single compilation unit it describes, print
// findings to w, and return the number of findings. The VetxOutput file
// is always written (empty — the suite exports no facts); go vet
// requires it to exist for build caching.
//
// cfg.Known flows through so suppression comments naming unknown
// analyzers are diagnosed, but cfg.UnusedIgnores is ignored here: go
// vet hands over one compilation unit at a time, and a suppression in a
// shared file is legitimately unused in some units (the non-test build
// of a package whose finding only exists in the test variant), so the
// audit is only meaningful in the standalone whole-module mode.
func RunUnit(w io.Writer, configFile string, analyzers []*analysis.Analyzer, rcfg RunConfig) (int, error) {
	data, err := os.ReadFile(configFile)
	if err != nil {
		return 0, err
	}
	cfg := new(vetConfig)
	if err := json.Unmarshal(data, cfg); err != nil {
		return 0, fmt.Errorf("cannot decode vet config %s: %v", configFile, err)
	}
	writeVetx := func() error {
		if cfg.VetxOutput == "" {
			return nil
		}
		return os.WriteFile(cfg.VetxOutput, nil, 0o666)
	}
	if cfg.VetxOnly {
		// Facts-only run for a dependency: the suite has no facts.
		return 0, writeVetx()
	}

	fset := token.NewFileSet()
	compilerImp := importer.ForCompiler(fset, cfg.Compiler, func(pkgPath string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[pkgPath]
		if !ok {
			return nil, fmt.Errorf("no package file for %q", pkgPath)
		}
		return os.Open(file)
	})
	imp := importerFunc(func(importPath string) (*types.Package, error) {
		if pkgPath, ok := cfg.ImportMap[importPath]; ok {
			importPath = pkgPath // resolve vendoring
		}
		return compilerImp.Import(importPath)
	})

	pkg, err := typecheckVersioned(fset, imp, cfg.ImportPath, cfg.GoFiles, cfg.GoVersion)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			// The compiler will report the error; vet stays quiet.
			return 0, writeVetx()
		}
		return 0, err
	}
	rcfg.UnusedIgnores = false
	findings, _, err := RunConfigured([]*Package{pkg}, analyzers, rcfg)
	if err != nil {
		return 0, err
	}
	for _, f := range findings {
		fmt.Fprintf(w, "%s: %s (%s)\n", f.Pos, f.Message, f.Analyzer)
	}
	return len(findings), writeVetx()
}
