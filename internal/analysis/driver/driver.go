// Package driver loads type-checked packages and runs npblint analyzers
// over them. It is the stdlib-only counterpart of the x/tools
// go/packages + checker machinery: package metadata comes from
// `go list -export -deps -json`, imports are resolved through the
// compiler export data the go command already produced in its build
// cache, and only the packages under analysis are parsed from source.
//
// The same loader backs three frontends: the standalone `npblint`
// command, the `go vet -vettool` unit protocol (unit.go), and the
// analysistest fixture harness used by the analyzer golden tests.
package driver

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"sync"

	"npbgo/internal/analysis"
)

// A Package is one parsed, type-checked package ready for analysis.
type Package struct {
	PkgPath string
	Fset    *token.FileSet
	Files   []*ast.File
	Types   *types.Package
	Info    *types.Info
}

// listedPkg is the subset of `go list -json` output the loader uses.
type listedPkg struct {
	Dir        string
	ImportPath string
	Export     string
	GoFiles    []string
	DepOnly    bool
	Error      *struct{ Err string }
}

// goList runs `go list -export -deps -json` in dir for the given
// patterns and decodes the JSON stream.
func goList(dir string, patterns ...string) ([]*listedPkg, error) {
	args := append([]string{"list", "-export", "-deps", "-json=Dir,ImportPath,Export,GoFiles,DepOnly,Error"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, stderr.Bytes())
	}
	var pkgs []*listedPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		p := new(listedPkg)
		if err := dec.Decode(p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list %v: decoding output: %v", patterns, err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// exportImporter resolves import paths through compiler export data
// files, as produced by `go list -export`.
func exportImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	return importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
}

// Load lists patterns in dir (a directory inside the module) and
// returns the matched packages parsed from source and type-checked,
// with their imports resolved from export data. Only non-test Go files
// are analyzed in this mode; `go vet -vettool` covers test variants.
func Load(dir string, patterns ...string) ([]*Package, error) {
	listed, err := goList(dir, patterns...)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string)
	var targets []*listedPkg
	for _, p := range listed {
		if p.Error != nil {
			return nil, fmt.Errorf("go list: package %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly {
			targets = append(targets, p)
		}
	}
	fset := token.NewFileSet()
	imp := exportImporter(fset, exports)
	var out []*Package
	for _, p := range targets {
		var files []string
		for _, f := range p.GoFiles {
			files = append(files, filepath.Join(p.Dir, f))
		}
		pkg, err := typecheck(fset, imp, p.ImportPath, files)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}

// moduleExports caches the export-data map for a module directory: one
// `go list -export -deps ./...` per process, shared by every fixture
// load the analyzer tests perform.
var moduleExports = struct {
	sync.Mutex
	m map[string]map[string]string
}{m: make(map[string]map[string]string)}

// ModuleRoot locates the enclosing module root of dir (the directory
// holding go.mod).
func ModuleRoot(dir string) (string, error) {
	d, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d, nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", fmt.Errorf("no go.mod above %s", dir)
		}
		d = parent
	}
}

// LoadFiles parses and type-checks an explicit set of Go files as one
// package named pkgPath, resolving imports against the module rooted at
// (or above) dir. The analyzer golden tests use this to load testdata
// fixtures, which may import real npbgo packages.
func LoadFiles(dir, pkgPath string, filenames []string) (*Package, error) {
	root, err := ModuleRoot(dir)
	if err != nil {
		return nil, err
	}
	moduleExports.Lock()
	exports, ok := moduleExports.m[root]
	if !ok {
		// `./...` with -deps covers every stdlib package the module
		// itself uses, which is all the fixtures may import.
		listed, err := goList(root, "./...")
		if err != nil {
			moduleExports.Unlock()
			return nil, err
		}
		exports = make(map[string]string)
		for _, p := range listed {
			if p.Export != "" {
				exports[p.ImportPath] = p.Export
			}
		}
		moduleExports.m[root] = exports
	}
	moduleExports.Unlock()
	fset := token.NewFileSet()
	return typecheck(fset, exportImporter(fset, exports), pkgPath, filenames)
}

// typecheck parses files and type-checks them as one package.
func typecheck(fset *token.FileSet, imp types.Importer, pkgPath string, filenames []string) (*Package, error) {
	return typecheckVersioned(fset, imp, pkgPath, filenames, "")
}

// typecheckVersioned is typecheck with an explicit language version
// ("go1.22"; empty means latest), as supplied by a vet config.
func typecheckVersioned(fset *token.FileSet, imp types.Importer, pkgPath string, filenames []string, goVersion string) (*Package, error) {
	var files []*ast.File
	for _, name := range filenames {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := &types.Config{Importer: imp, GoVersion: goVersion}
	pkg, err := conf.Check(pkgPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typechecking %s: %v", pkgPath, err)
	}
	return &Package{PkgPath: pkgPath, Fset: fset, Files: files, Types: pkg, Info: info}, nil
}

// A Finding is one diagnostic after suppression filtering, resolved to
// a file position.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s: %s", f.Pos, f.Analyzer, f.Message)
}

// RunConfig tunes a driver run beyond the analyzer list.
type RunConfig struct {
	// Known is the full analyzer catalog (independent of which
	// analyzers were selected for this run). When non-empty,
	// //npblint:ignore comments naming an analyzer outside it are
	// reported as findings instead of being silently accepted.
	Known []string
	// UnusedIgnores enables the warn-only suppression audit: ignore
	// entries that suppressed nothing are returned as warnings
	// (second return value of RunConfigured), never as findings.
	UnusedIgnores bool
}

// Run applies every analyzer to every package, filters the diagnostics
// through //npblint:ignore suppression comments, and returns the
// surviving findings sorted by position. Analyzer runtime errors are
// reported as errors, not findings.
func Run(pkgs []*Package, analyzers []*analysis.Analyzer) ([]Finding, error) {
	findings, _, err := RunConfigured(pkgs, analyzers, RunConfig{})
	return findings, err
}

// RunConfigured is Run with a RunConfig: it additionally validates
// suppression analyzer names against cfg.Known and, when
// cfg.UnusedIgnores is set, returns warn-only findings for stale
// suppressions as the second value. Warnings never fail a run; they are
// advisory output for the suppression audit.
func RunConfigured(pkgs []*Package, analyzers []*analysis.Analyzer, cfg RunConfig) (findings, warnings []Finding, err error) {
	known := make(map[string]bool, len(cfg.Known))
	for _, n := range cfg.Known {
		known[n] = true
	}
	ran := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		ran[a.Name] = true
	}
	for _, pkg := range pkgs {
		sup := scanSuppressions(pkg, known)
		findings = append(findings, sup.invalid...)
		for _, a := range analyzers {
			var diags []analysis.Diagnostic
			pass := &analysis.Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
				Report:    func(d analysis.Diagnostic) { diags = append(diags, d) },
			}
			if err := a.Run(pass); err != nil {
				return nil, nil, fmt.Errorf("analyzer %s on %s: %v", a.Name, pkg.PkgPath, err)
			}
			for _, d := range diags {
				pos := pkg.Fset.Position(d.Pos)
				if sup.suppressed(a.Name, pos) {
					continue
				}
				findings = append(findings, Finding{Analyzer: a.Name, Pos: pos, Message: d.Message})
			}
		}
		if cfg.UnusedIgnores {
			warnings = append(warnings, sup.unused(ran)...)
		}
	}
	sortFindings(findings)
	sortFindings(warnings)
	return findings, warnings, nil
}

func sortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Analyzer < b.Analyzer
	})
}
