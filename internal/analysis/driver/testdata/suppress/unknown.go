package suppresstest

var unknown = boom() //npblint:ignore nosuchlint typo in the analyzer name

var bare = boom() //npblint:ignore boomlint
