package suppresstest

func boom() int { return 0 }
func zap() int  { return 0 }

var sameLine = boom() //npblint:ignore boomlint suppressed on the same line

//npblint:ignore boomlint suppressed from the line above
var lineAbove = boom()

//npblint:ignore boomlint two lines above the use: must not suppress

var twoAbove = boom()

var multi = boom() + zap() //npblint:ignore boomlint,zaplint one comment suppresses both analyzers

var zapOnly = boom() //npblint:ignore zaplint wrong analyzer for this line

var notRun = zap() //npblint:ignore zaplint audited only when zaplint runs
