// Package ctxpropagate enforces the cancellation contract of the
// resilience work: a context handed to an exported entry point must
// actually thread through it.
//
// The run controller cancels stuck cells by context; that only works if
// every long-running exported function that accepts a ctx either checks
// it, passes it on, or wires it to the team (WatchContext). Two shapes
// are diagnosed:
//
//  1. An exported function or method with a context.Context parameter
//     that its body never mentions — the caller's deadline and
//     cancellation are silently dropped.
//  2. A call to context.Background() or context.TODO() inside a
//     function that already has a ctx parameter in scope — a fresh
//     root context severs the chain the caller set up.
//
// An intentionally detached context (a cleanup that must outlive the
// request) is suppressed with `//npblint:ignore ctxpropagate <reason>`.
package ctxpropagate

import (
	"fmt"
	"go/ast"
	"go/types"

	"npbgo/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "ctxpropagate",
	Doc: "flag exported funcs that drop an incoming context.Context and " +
		"context.Background()/TODO() calls where a ctx is already in scope",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkFunc(pass, fn)
		}
	}
	return nil
}

// isContextParam reports whether field's type is context.Context.
func isContextType(pass *analysis.Pass, expr ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[expr]
	if !ok || tv.Type == nil {
		return false
	}
	named, ok := tv.Type.(*types.Named)
	return ok && analysis.IsNamed(named, "context", "Context")
}

func checkFunc(pass *analysis.Pass, fn *ast.FuncDecl) {
	// Collect the ctx parameters.
	var ctxParams []*ast.Ident
	hasCtx := false
	if fn.Type.Params != nil {
		for _, field := range fn.Type.Params.List {
			if !isContextType(pass, field.Type) {
				continue
			}
			hasCtx = true
			ctxParams = append(ctxParams, field.Names...)
		}
	}
	if !hasCtx {
		return
	}

	// Shape 2: fresh root contexts under an incoming ctx.
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		pkg, name, ok := analysis.PkgFunc(pass.TypesInfo, call)
		if ok && pkg == "context" && (name == "Background" || name == "TODO") {
			pass.Report(analysis.Diagnostic{
				Pos: call.Pos(),
				Message: fmt.Sprintf("context.%s() creates a fresh root inside %s, which already receives a ctx; "+
					"thread the incoming context instead", name, fn.Name.Name),
			})
		}
		return true
	})

	// Shape 1: exported entry points that never mention their ctx.
	if !fn.Name.IsExported() {
		return
	}
	for _, param := range ctxParams {
		if param.Name == "_" {
			// An explicitly blanked ctx is still a dropped contract on
			// an exported API.
			pass.Report(analysis.Diagnostic{
				Pos:     param.Pos(),
				Message: fmt.Sprintf("exported %s blanks its context.Context parameter; thread it or drop it from the signature", fn.Name.Name),
			})
			continue
		}
		obj := pass.TypesInfo.Defs[param]
		if obj == nil {
			continue
		}
		used := false
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if ok && pass.TypesInfo.Uses[id] == obj {
				used = true
				return false
			}
			return !used
		})
		if !used {
			pass.Report(analysis.Diagnostic{
				Pos: param.Pos(),
				Message: fmt.Sprintf("exported %s takes ctx but never uses it; the caller's cancellation and deadline are dropped",
					fn.Name.Name),
			})
		}
	}
}
