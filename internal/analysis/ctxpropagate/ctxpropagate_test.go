package ctxpropagate_test

import (
	"testing"

	"npbgo/internal/analysis/analysistest"
	"npbgo/internal/analysis/ctxpropagate"
)

func TestGolden(t *testing.T) {
	analysistest.Run(t, ctxpropagate.Analyzer, "testdata")
}
