package ctxfixture

import "context"

func work(ctx context.Context) error {
	<-ctx.Done()
	return ctx.Err()
}

func Dropped(ctx context.Context, n int) int { // want `exported Dropped takes ctx but never uses it`
	return n * 2
}

func Threaded(ctx context.Context) error {
	return work(ctx)
}

func internal(ctx context.Context, n int) int {
	// Unexported helpers are not part of the cancellation contract.
	return n
}

func Blank(_ context.Context, n int) int { // want `exported Blank blanks its context.Context parameter`
	return n
}

func Detached(ctx context.Context) error {
	bg := context.Background() // want `context.Background\(\) creates a fresh root inside Detached`
	_ = bg
	return work(ctx)
}

func Todo(ctx context.Context) error {
	if ctx.Err() != nil {
		return ctx.Err()
	}
	return work(context.TODO()) // want `context.TODO\(\) creates a fresh root inside Todo`
}

type Server struct{}

func (s *Server) Serve(ctx context.Context) error {
	return work(ctx)
}

func (s *Server) Stop(ctx context.Context) error { // want `exported Stop takes ctx but never uses it`
	return nil
}
