package ctxfixture

import "context"

func Cleanup(ctx context.Context) error {
	detached := context.Background() //npblint:ignore ctxpropagate cleanup must outlive the request's context
	if err := work(ctx); err != nil {
		return err
	}
	return work(detached)
}
