package grid

import (
	"testing"
	"testing/quick"
)

func TestDim3OffsetsAreDenseAndUnique(t *testing.T) {
	d := Dim3{N1: 3, N2: 4, N3: 5}
	seen := make([]bool, d.Len())
	for i3 := 0; i3 < d.N3; i3++ {
		for i2 := 0; i2 < d.N2; i2++ {
			for i1 := 0; i1 < d.N1; i1++ {
				off := d.At(i1, i2, i3)
				if off < 0 || off >= d.Len() {
					t.Fatalf("offset %d out of range", off)
				}
				if seen[off] {
					t.Fatalf("offset %d hit twice at (%d,%d,%d)", off, i1, i2, i3)
				}
				seen[off] = true
			}
		}
	}
	for off, s := range seen {
		if !s {
			t.Fatalf("offset %d never produced", off)
		}
	}
}

func TestDim3FirstIndexFastest(t *testing.T) {
	d := Dim3{N1: 7, N2: 2, N3: 2}
	if d.At(1, 0, 0)-d.At(0, 0, 0) != 1 {
		t.Fatal("first index is not stride-1")
	}
	if d.At(0, 1, 0)-d.At(0, 0, 0) != d.N1 {
		t.Fatal("second index stride wrong")
	}
	if d.At(0, 0, 1)-d.At(0, 0, 0) != d.N1*d.N2 {
		t.Fatal("third index stride wrong")
	}
}

func TestDim4Dim5Offsets(t *testing.T) {
	d4 := Dim4{2, 3, 4, 5}
	if d4.Len() != 120 {
		t.Fatalf("Dim4 Len = %d", d4.Len())
	}
	if d4.At(1, 2, 3, 4) != 1+2*(2+3*(3+4*4)) {
		t.Fatalf("Dim4 At wrong: %d", d4.At(1, 2, 3, 4))
	}
	d5 := Dim5{5, 5, 3, 3, 3}
	if d5.Len() != 5*5*3*3*3 {
		t.Fatalf("Dim5 Len = %d", d5.Len())
	}
	if d5.At(4, 4, 2, 2, 2) != d5.Len()-1 {
		t.Fatalf("Dim5 last element offset %d, want %d", d5.At(4, 4, 2, 2, 2), d5.Len()-1)
	}
}

func TestOffsetsDenseProperty(t *testing.T) {
	f := func(a, b, c uint8) bool {
		d := Dim3{int(a%6) + 1, int(b%6) + 1, int(c%6) + 1}
		last := -1
		// Walking in memory order (i1 fastest) must produce 0..Len-1.
		for i3 := 0; i3 < d.N3; i3++ {
			for i2 := 0; i2 < d.N2; i2++ {
				for i1 := 0; i1 < d.N1; i1++ {
					if d.At(i1, i2, i3) != last+1 {
						return false
					}
					last++
				}
			}
		}
		return last == d.Len()-1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNestedSharesLayoutWithLinear(t *testing.T) {
	d := Dim3{N1: 4, N2: 3, N3: 2}
	lin := Alloc3(d)
	nst := AllocNested3(d)
	v := 0.0
	for i3 := 0; i3 < d.N3; i3++ {
		for i2 := 0; i2 < d.N2; i2++ {
			for i1 := 0; i1 < d.N1; i1++ {
				lin[d.At(i1, i2, i3)] = v
				nst[i3][i2][i1] = v
				v++
			}
		}
	}
	for i3 := 0; i3 < d.N3; i3++ {
		for i2 := 0; i2 < d.N2; i2++ {
			for i1 := 0; i1 < d.N1; i1++ {
				if lin[d.At(i1, i2, i3)] != nst[i3][i2][i1] {
					t.Fatalf("mismatch at (%d,%d,%d)", i1, i2, i3)
				}
			}
		}
	}
}

func TestNested4Shape(t *testing.T) {
	d := Dim4{5, 4, 3, 2}
	n := AllocNested4(d)
	if len(n) != d.N4 || len(n[0]) != d.N3 || len(n[0][0]) != d.N2 || len(n[0][0][0]) != d.N1 {
		t.Fatalf("Nested4 shape wrong: %d %d %d %d", len(n), len(n[0]), len(n[0][0]), len(n[0][0][0]))
	}
	n[1][2][3][4] = 7
	if n[1][2][3][4] != 7 {
		t.Fatal("write did not stick")
	}
}

func TestCheckBoundsPanics(t *testing.T) {
	d := Dim3{2, 2, 2}
	defer func() {
		if recover() == nil {
			t.Fatal("CheckBounds did not panic on out-of-range index")
		}
	}()
	d.CheckBounds(2, 0, 0)
}

func TestCheckBoundsAcceptsValid(t *testing.T) {
	d := Dim3{2, 3, 4}
	d.CheckBounds(1, 2, 3) // must not panic
}

func TestNested5Shape(t *testing.T) {
	d := Dim5{5, 5, 3, 2, 4}
	n := AllocNested5(d)
	if len(n) != d.N5 || len(n[0]) != d.N4 || len(n[0][0]) != d.N3 ||
		len(n[0][0][0]) != d.N2 || len(n[0][0][0][0]) != d.N1 {
		t.Fatal("Nested5 shape wrong")
	}
	n[3][1][2][4][0] = 9
	if n[3][1][2][4][0] != 9 {
		t.Fatal("write did not stick")
	}
	// Backing is shared and dense: writing the linear twin changes it.
	lin := Alloc5(d)
	if len(lin) != d.Len() {
		t.Fatal("Alloc5 length wrong")
	}
}
