// Package grid provides the array containers used throughout the suite.
//
// The paper's first experiment (§3) compares two Fortran→Java translation
// options for multi-dimensional arrays: preserving the dimensions (arrays
// of arrays) versus linearizing into a single vector with explicit index
// arithmetic. The linearized form won decisively, so the translated
// benchmarks use it throughout; this package provides both forms so the
// comparison itself (Table "layout study") can be reproduced.
//
// Linearized arrays follow the Fortran convention of the NPB sources: the
// first index varies fastest (column-major), i.e. for an (n1,n2,n3) array
// element (i1,i2,i3) lives at i1 + n1*(i2 + n2*i3). Keeping the NPB index
// order makes the translated loop nests read like the original code and,
// as in Fortran, makes the innermost loop stride-1.
package grid

import "fmt"

// Vec is a linearized array of float64 with no dimension bookkeeping;
// the benchmarks size and index it themselves, exactly as the paper's
// translated Java code does with flat double[] arrays.
type Vec = []float64

// Dim3 carries the extents of a 3-D array and computes linear offsets.
type Dim3 struct{ N1, N2, N3 int }

// Len returns the number of elements.
func (d Dim3) Len() int { return d.N1 * d.N2 * d.N3 }

// At returns the linear offset of (i1,i2,i3), first index fastest.
func (d Dim3) At(i1, i2, i3 int) int { return i1 + d.N1*(i2+d.N2*i3) }

// Dim4 carries the extents of a 4-D array and computes linear offsets.
type Dim4 struct{ N1, N2, N3, N4 int }

// Len returns the number of elements.
func (d Dim4) Len() int { return d.N1 * d.N2 * d.N3 * d.N4 }

// At returns the linear offset of (i1,i2,i3,i4), first index fastest.
func (d Dim4) At(i1, i2, i3, i4 int) int {
	return i1 + d.N1*(i2+d.N2*(i3+d.N3*i4))
}

// Dim5 carries the extents of a 5-D array (BT's 5x5 block fields) and
// computes linear offsets.
type Dim5 struct{ N1, N2, N3, N4, N5 int }

// Len returns the number of elements.
func (d Dim5) Len() int { return d.N1 * d.N2 * d.N3 * d.N4 * d.N5 }

// At returns the linear offset of (i1,...,i5), first index fastest.
func (d Dim5) At(i1, i2, i3, i4, i5 int) int {
	return i1 + d.N1*(i2+d.N2*(i3+d.N3*(i4+d.N4*i5)))
}

// Alloc3 allocates a zeroed linearized 3-D array with the given extents.
func Alloc3(d Dim3) Vec { return make(Vec, d.Len()) }

// Alloc4 allocates a zeroed linearized 4-D array with the given extents.
func Alloc4(d Dim4) Vec { return make(Vec, d.Len()) }

// Alloc5 allocates a zeroed linearized 5-D array with the given extents.
func Alloc5(d Dim5) Vec { return make(Vec, d.Len()) }

// Nested3 is the dimension-preserving translation option: a slice of
// slices of slices, indexed [i3][i2][i1] so that i1 remains the
// contiguous, fastest-varying index as in the linearized form.
type Nested3 [][][]float64

// AllocNested3 allocates a Nested3 with extents d. The rows are carved
// out of one backing allocation (the denser of the two layouts the paper
// considered; the indirection per dimension is the cost being measured).
func AllocNested3(d Dim3) Nested3 {
	backing := make([]float64, d.Len())
	out := make(Nested3, d.N3)
	for i3 := 0; i3 < d.N3; i3++ {
		plane := make([][]float64, d.N2)
		for i2 := 0; i2 < d.N2; i2++ {
			off := d.At(0, i2, i3)
			plane[i2] = backing[off : off+d.N1 : off+d.N1]
		}
		out[i3] = plane
	}
	return out
}

// Nested4 is the dimension-preserving 4-D variant, indexed [i4][i3][i2][i1].
type Nested4 [][][][]float64

// AllocNested4 allocates a Nested4 with extents d, rows carved from one
// backing allocation.
func AllocNested4(d Dim4) Nested4 {
	backing := make([]float64, d.Len())
	out := make(Nested4, d.N4)
	for i4 := 0; i4 < d.N4; i4++ {
		cube := make(Nested3, d.N3)
		for i3 := 0; i3 < d.N3; i3++ {
			plane := make([][]float64, d.N2)
			for i2 := 0; i2 < d.N2; i2++ {
				off := d.At(0, i2, i3, i4)
				plane[i2] = backing[off : off+d.N1 : off+d.N1]
			}
			cube[i3] = plane
		}
		out[i4] = cube
	}
	return out
}

// CheckBounds panics with a descriptive message if (i1,i2,i3) is outside
// d. The hot loops do not call it; it is for test assertions and for
// setup code where a mistake would otherwise corrupt neighbouring fields
// silently (linearized arrays trade Go's per-dimension bounds checks for
// a single flat check, one of the translation hazards the paper notes).
func (d Dim3) CheckBounds(i1, i2, i3 int) {
	if i1 < 0 || i1 >= d.N1 || i2 < 0 || i2 >= d.N2 || i3 < 0 || i3 >= d.N3 {
		panic(fmt.Sprintf("grid: index (%d,%d,%d) out of bounds (%d,%d,%d)", i1, i2, i3, d.N1, d.N2, d.N3))
	}
}

// Nested5 is the dimension-preserving 5-D variant (3-D arrays of 5x5
// blocks), indexed [i5][i4][i3][i2][i1].
type Nested5 [][][][][]float64

// AllocNested5 allocates a Nested5 with extents d, rows carved from one
// backing allocation.
func AllocNested5(d Dim5) Nested5 {
	backing := make([]float64, d.Len())
	out := make(Nested5, d.N5)
	for i5 := 0; i5 < d.N5; i5++ {
		b4 := make(Nested4, d.N4)
		for i4 := 0; i4 < d.N4; i4++ {
			b3 := make(Nested3, d.N3)
			for i3 := 0; i3 < d.N3; i3++ {
				b2 := make([][]float64, d.N2)
				for i2 := 0; i2 < d.N2; i2++ {
					off := d.At(0, i2, i3, i4, i5)
					b2[i2] = backing[off : off+d.N1 : off+d.N1]
				}
				b3[i3] = b2
			}
			b4[i4] = b3
		}
		out[i5] = b4
	}
	return out
}
