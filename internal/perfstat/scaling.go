// Scalability diagnostics per (benchmark, class): speedup and
// efficiency curves over the thread sweep, the Karp–Flatt
// experimentally determined serial fraction, and rule-based anomaly
// attribution joining the obs counters carried in each cell — the
// analysis the source paper performs by hand in §5, as code.
package perfstat

import (
	"fmt"

	"npbgo/internal/report"
)

// Anomaly names one of the paper's §5 scalability diagnoses.
type Anomaly string

const (
	// LoadImbalance is the §5.2 CG diagnosis: one worker owns most of
	// the region time (obs imbalance ratio far above 1), so added
	// threads idle instead of helping.
	LoadImbalance Anomaly = "load-imbalance"
	// BarrierSync is the §5 LU-pipeline diagnosis: a large share of
	// total worker time is spent waiting at barriers, the cost of
	// synchronizing a software-pipelined wavefront.
	BarrierSync Anomaly = "barrier-sync"
	// SmallWork is the §5 IS diagnosis: the whole cell finishes in
	// less time than thread coordination costs, so parallelism cannot
	// pay for itself.
	SmallWork Anomaly = "small-work"
	// MemoryBound is the counter-layer diagnosis the first three rules
	// cannot make: instructions-per-cycle falls while the LLC miss rate
	// rises as threads grow, so added threads fight over the memory
	// system instead of computing — the hypothesis the paper offers for
	// its FT/MG plateaus, tested against measured counters. It requires
	// records written with counters enabled (npbsuite -counters).
	MemoryBound Anomaly = "memory-bound"
)

// ScalingOptions tunes the anomaly attribution rules.
type ScalingOptions struct {
	// ImbalanceMin flags LoadImbalance at or above this obs imbalance
	// ratio (max busy / mean busy); default 1.5.
	ImbalanceMin float64
	// BarrierShareMin flags BarrierSync when barrier wait divided by
	// total worker time (threads x elapsed) reaches it; default 0.2.
	BarrierShareMin float64
	// SmallWorkSec flags SmallWork below this median elapsed time;
	// default 0.001 (1 ms).
	SmallWorkSec float64
	// IPCDropMin and MissRiseMin flag MemoryBound when, relative to the
	// group's baseline cell, IPC has fallen by at least IPCDropMin
	// (fraction; default 0.15) and the LLC miss rate has risen by at
	// least MissRiseMin (fraction; default 0.25). Both must hold: an IPC
	// drop alone can be synchronization, a miss-rate rise alone can be
	// harmless prefetch dilution.
	IPCDropMin  float64
	MissRiseMin float64
}

// withDefaults fills unset scaling options.
func (o ScalingOptions) withDefaults() ScalingOptions {
	if o.ImbalanceMin <= 0 {
		o.ImbalanceMin = 1.5
	}
	if o.BarrierShareMin <= 0 {
		o.BarrierShareMin = 0.2
	}
	if o.SmallWorkSec <= 0 {
		o.SmallWorkSec = 0.001
	}
	if o.IPCDropMin <= 0 {
		o.IPCDropMin = 0.15
	}
	if o.MissRiseMin <= 0 {
		o.MissRiseMin = 0.25
	}
	return o
}

// ScalePoint is one thread count of a scalability curve.
type ScalePoint struct {
	Threads int     `json:"threads"` // 0 = serial baseline
	Median  float64 `json:"median_sec"`
	Speedup float64 `json:"speedup,omitempty"`
	// Efficiency is Speedup/Threads, the paper's E(n) column.
	Efficiency float64 `json:"efficiency,omitempty"`
	// KarpFlatt is the experimentally determined serial fraction
	// e = (1/S - 1/p) / (1 - 1/p). Near-constant e across p means an
	// Amdahl-style serial section bounds the benchmark; e growing with
	// p means overhead (synchronization, imbalance) grows with the
	// thread count. Only meaningful for Threads > 1 with a valid
	// speedup; 0 otherwise.
	KarpFlatt float64 `json:"karp_flatt,omitempty"`
	// Imbalance and BarrierShare echo the obs counters the anomaly
	// rules fired on; zero when obs was off for the record.
	Imbalance    float64 `json:"imbalance,omitempty"`
	BarrierShare float64 `json:"barrier_share,omitempty"`
	// IPC and LLCMissRate echo the hardware counters the MemoryBound
	// rule fired on; zero when the record carries no counters.
	IPC         float64   `json:"ipc,omitempty"`
	LLCMissRate float64   `json:"llc_miss_rate,omitempty"`
	Anomalies   []Anomaly `json:"anomalies,omitempty"`
}

// BenchScaling is the scalability analysis of one (benchmark, class).
type BenchScaling struct {
	Benchmark string       `json:"benchmark"`
	Class     string       `json:"class"`
	BaseSec   float64      `json:"base_sec"` // the baseline median the curve divides by
	Points    []ScalePoint `json:"points"`
	// Anomalies is the union over all points, the per-benchmark
	// headline of the diagnosis.
	Anomalies []Anomaly `json:"anomalies,omitempty"`
}

// Scaling analyses every (benchmark, class) group of a record. The
// baseline is the serial cell (threads = 0), falling back to the
// 1-thread cell when a sweep recorded none; without either, speedups
// stay 0 and only the anomaly rules run. Failed cells are skipped.
func Scaling(rec report.BenchRecord, opt ScalingOptions) []BenchScaling {
	opt = opt.withDefaults()
	type group struct{ bench, class string }
	var order []group
	cells := make(map[group][]report.CellMetrics)
	for _, c := range rec.Cells {
		if c.Error != "" {
			continue
		}
		g := group{c.Benchmark, c.Class}
		if _, ok := cells[g]; !ok {
			order = append(order, g)
		}
		cells[g] = append(cells[g], c)
	}
	var out []BenchScaling
	for _, g := range order {
		bs := BenchScaling{Benchmark: g.bench, Class: g.class}
		var base float64
		for _, c := range cells[g] {
			if c.Threads == 0 {
				base = medianOf(c)
				break
			}
		}
		if base == 0 {
			for _, c := range cells[g] {
				if c.Threads == 1 {
					base = medianOf(c)
					break
				}
			}
		}
		bs.BaseSec = base
		baseIPC, baseMiss := baseCounters(cells[g])
		seen := make(map[Anomaly]bool)
		for _, c := range cells[g] {
			p := point(c, base, baseIPC, baseMiss, opt)
			for _, a := range p.Anomalies {
				if !seen[a] {
					seen[a] = true
					bs.Anomalies = append(bs.Anomalies, a)
				}
			}
			bs.Points = append(bs.Points, p)
		}
		out = append(out, bs)
	}
	return out
}

// medianOf is the cell's median elapsed time: over the retained repeat
// samples, or the headline for sample-less records.
func medianOf(c report.CellMetrics) float64 {
	s := samplesOf(c)
	if len(s) == 0 {
		return 0
	}
	return Summarize(s, CIOptions{Resamples: 1}).Median
}

// baseCounters finds the counter baseline of a cell group: the IPC and
// LLC miss rate of the serial cell, falling back to the 1-thread cell.
// Zeros mean the group has no counter baseline and MemoryBound cannot
// fire.
func baseCounters(cells []report.CellMetrics) (ipc, miss float64) {
	for _, want := range []int{0, 1} {
		for _, c := range cells {
			if c.Threads == want && c.Counters != nil && c.Counters.Cycles > 0 {
				return c.Counters.IPC(), c.Counters.LLCMissRate()
			}
		}
	}
	return 0, 0
}

// point computes one cell's scalability numbers and anomaly flags.
func point(c report.CellMetrics, base, baseIPC, baseMiss float64, opt ScalingOptions) ScalePoint {
	p := ScalePoint{Threads: c.Threads, Median: medianOf(c), Imbalance: c.Imbalance}
	if c.Counters != nil {
		p.IPC = c.Counters.IPC()
		p.LLCMissRate = c.Counters.LLCMissRate()
	}
	if base > 0 && p.Median > 0 {
		p.Speedup = base / p.Median
		workers := float64(c.Threads)
		if workers < 1 {
			workers = 1 // the serial baseline divides by itself: S=E=1
		}
		p.Efficiency = p.Speedup / workers
	}
	if c.Threads > 1 && p.Median > 0 {
		p.BarrierShare = c.BarrierWait / (float64(c.Threads) * p.Median)
	}
	if c.Threads > 1 && p.Speedup > 0 {
		fp := float64(c.Threads)
		p.KarpFlatt = (1/p.Speedup - 1/fp) / (1 - 1/fp)
	}
	if c.Threads > 1 && c.Imbalance >= opt.ImbalanceMin {
		p.Anomalies = append(p.Anomalies, LoadImbalance)
	}
	if c.Threads > 1 && p.BarrierShare >= opt.BarrierShareMin {
		p.Anomalies = append(p.Anomalies, BarrierSync)
	}
	if p.Median > 0 && p.Median < opt.SmallWorkSec {
		p.Anomalies = append(p.Anomalies, SmallWork)
	}
	if c.Threads > 1 && baseIPC > 0 && baseMiss > 0 && p.IPC > 0 &&
		p.IPC <= baseIPC*(1-opt.IPCDropMin) &&
		p.LLCMissRate >= baseMiss*(1+opt.MissRiseMin) {
		p.Anomalies = append(p.Anomalies, MemoryBound)
	}
	return p
}

// ScalingTable renders the analysis as an aligned text table: one row
// per (cell), with S(n), E(n), the Karp–Flatt serial fraction, the obs
// diagnostics and the fired anomaly flags.
func ScalingTable(reports []BenchScaling) string {
	tb := report.New(
		"Scalability: speedup S, efficiency E, Karp-Flatt serial fraction e, anomalies (cf. paper SS5)",
		"Cell", "Median", "S", "E", "e(KF)", "Imbal", "BarShare", "IPC", "MissRate", "Anomalies")
	for _, bs := range reports {
		for _, p := range bs.Points {
			cell := fmt.Sprintf("%s.%s t%d", bs.Benchmark, bs.Class, p.Threads)
			if p.Threads == 0 {
				cell = fmt.Sprintf("%s.%s serial", bs.Benchmark, bs.Class)
			}
			kf := "-"
			if p.Threads > 1 && p.Speedup > 0 {
				kf = fmt.Sprintf("%.3f", p.KarpFlatt)
			}
			sp, eff := "-", "-"
			if p.Speedup > 0 {
				sp = report.Speedup(p.Speedup)
				eff = report.Speedup(p.Efficiency)
			}
			ipc, miss := "-", "-"
			if p.IPC > 0 {
				ipc = fmt.Sprintf("%.2f", p.IPC)
				miss = fmt.Sprintf("%.4f", p.LLCMissRate)
			}
			tb.AddRow(cell, report.Seconds(p.Median), sp, eff, kf,
				fmt.Sprintf("%.2f", p.Imbalance),
				fmt.Sprintf("%.2f", p.BarrierShare),
				ipc, miss,
				anomalyText(p.Anomalies))
		}
	}
	return tb.String()
}

// anomalyText joins anomaly flags for a table cell.
func anomalyText(as []Anomaly) string {
	if len(as) == 0 {
		return "-"
	}
	s := ""
	for i, a := range as {
		if i > 0 {
			s += ","
		}
		s += string(a)
	}
	return s
}
