package perfstat

import (
	"math"
	"testing"
)

func TestSummarizeBasics(t *testing.T) {
	s := Summarize([]float64{3, 1, 2, 4, 5}, CIOptions{})
	if s.N != 5 || s.Min != 1 || s.Max != 5 || s.Median != 3 {
		t.Fatalf("order stats wrong: %+v", s)
	}
	if s.Mean != 3 {
		t.Fatalf("mean = %v", s.Mean)
	}
	if s.Q1 != 2 || s.Q3 != 4 || s.IQR != 2 {
		t.Fatalf("quartiles wrong: %+v", s)
	}
	if s.CILo > s.Median || s.CIHi < s.Median {
		t.Fatalf("CI [%v,%v] does not cover the median %v", s.CILo, s.CIHi, s.Median)
	}
	if s.CILo < s.Min || s.CIHi > s.Max {
		t.Fatalf("bootstrap CI escaped the sample range: %+v", s)
	}
}

func TestSummarizeEmptyAndSingle(t *testing.T) {
	if s := Summarize(nil, CIOptions{}); s.N != 0 || s.Median != 0 {
		t.Fatalf("empty sample set: %+v", s)
	}
	s := Summarize([]float64{0.42}, CIOptions{})
	if s.N != 1 || s.Median != 0.42 || s.CILo != 0.42 || s.CIHi != 0.42 {
		t.Fatalf("single sample should collapse the CI: %+v", s)
	}
}

func TestSummarizeDeterministic(t *testing.T) {
	samples := []float64{1.0, 1.1, 0.9, 1.05, 0.95, 1.2, 0.85}
	a := Summarize(samples, CIOptions{})
	b := Summarize(samples, CIOptions{})
	if a != b {
		t.Fatalf("same input, different summaries: %+v vs %+v", a, b)
	}
	c := Summarize(samples, CIOptions{Seed: 99})
	if c.Median != a.Median {
		t.Fatalf("seed must not move order statistics: %v vs %v", c.Median, a.Median)
	}
}

func TestSummarizeDoesNotMutateInput(t *testing.T) {
	samples := []float64{3, 1, 2}
	Summarize(samples, CIOptions{})
	if samples[0] != 3 || samples[1] != 1 || samples[2] != 2 {
		t.Fatalf("input mutated: %v", samples)
	}
}

func TestQuantileInterpolation(t *testing.T) {
	sorted := []float64{1, 2, 3, 4}
	if q := quantile(sorted, 0.5); q != 2.5 {
		t.Fatalf("median of 1..4 = %v", q)
	}
	if q := quantile(sorted, 0); q != 1 {
		t.Fatalf("q0 = %v", q)
	}
	if q := quantile(sorted, 1); q != 4 {
		t.Fatalf("q1 = %v", q)
	}
}

func TestBootstrapCITightensWithLowNoise(t *testing.T) {
	tight := Summarize([]float64{1.0, 1.001, 0.999, 1.0, 1.0005, 0.9995}, CIOptions{})
	wide := Summarize([]float64{1.0, 1.5, 0.6, 1.3, 0.8, 1.1}, CIOptions{})
	if tw, ww := tight.CIHi-tight.CILo, wide.CIHi-wide.CILo; tw >= ww {
		t.Fatalf("low-noise CI (%v) should be tighter than high-noise CI (%v)", tw, ww)
	}
	if math.IsNaN(tight.CILo) || math.IsNaN(wide.CIHi) {
		t.Fatal("NaN in CI")
	}
}
