package perfstat

import (
	"math"
	"strings"
	"testing"

	"npbgo/internal/report"
)

// scalingFixture is a record with one healthy curve (LU), one
// load-imbalanced cell (CG t4), one barrier-bound cell (LU t4 has
// moderate share; FT t4 exceeds it) and one too-small workload (IS).
func scalingFixture() report.BenchRecord {
	return report.BenchRecord{
		Schema: report.BenchSchema,
		Stamp:  "T",
		Class:  "S",
		Cells: []report.CellMetrics{
			{Benchmark: "CG", Class: "S", Threads: 0, Samples: []float64{0.40, 0.42, 0.41}},
			{Benchmark: "CG", Class: "S", Threads: 2, Samples: []float64{0.24, 0.25, 0.26}, Imbalance: 1.02},
			{Benchmark: "CG", Class: "S", Threads: 4, Samples: []float64{0.20, 0.21, 0.22}, Imbalance: 2.8, BarrierWait: 0.01},
			{Benchmark: "IS", Class: "S", Threads: 0, Samples: []float64{0.0006, 0.0007, 0.0008}},
			{Benchmark: "IS", Class: "S", Threads: 2, Samples: []float64{0.0004, 0.0005, 0.0006}, Imbalance: 1.05},
			{Benchmark: "FT", Class: "S", Threads: 0, Samples: []float64{0.80}},
			{Benchmark: "FT", Class: "S", Threads: 4, Samples: []float64{0.50}, Imbalance: 1.01, BarrierWait: 0.60},
			{Benchmark: "EP", Class: "S", Threads: 2, Error: "panic: injected"},
		},
	}
}

func TestScalingCurves(t *testing.T) {
	out := Scaling(scalingFixture(), ScalingOptions{})
	if len(out) != 3 { // EP had only a failed cell
		t.Fatalf("got %d groups: %+v", len(out), out)
	}
	cg := out[0]
	if cg.Benchmark != "CG" || cg.BaseSec != 0.41 {
		t.Fatalf("CG baseline wrong (want serial median 0.41): %+v", cg)
	}
	t2 := cg.Points[1]
	if t2.Threads != 2 || math.Abs(t2.Speedup-0.41/0.25) > 1e-9 {
		t.Fatalf("S(2) wrong: %+v", t2)
	}
	if math.Abs(t2.Efficiency-t2.Speedup/2) > 1e-9 {
		t.Fatalf("E(2) wrong: %+v", t2)
	}
	// Karp-Flatt at p=2, S=1.64: e = (1/S - 1/2)/(1 - 1/2).
	wantKF := (1/t2.Speedup - 0.5) / 0.5
	if math.Abs(t2.KarpFlatt-wantKF) > 1e-9 {
		t.Fatalf("Karp-Flatt = %v, want %v", t2.KarpFlatt, wantKF)
	}
	serial := cg.Points[0]
	if serial.KarpFlatt != 0 || serial.Speedup != 1 {
		t.Fatalf("serial point: %+v", serial)
	}
}

func TestScalingAnomalyRules(t *testing.T) {
	out := Scaling(scalingFixture(), ScalingOptions{})
	byBench := make(map[string]BenchScaling)
	for _, bs := range out {
		byBench[bs.Benchmark] = bs
	}
	if as := byBench["CG"].Anomalies; len(as) != 1 || as[0] != LoadImbalance {
		t.Fatalf("CG should flag load-imbalance only: %v", as)
	}
	if as := byBench["IS"].Anomalies; len(as) != 1 || as[0] != SmallWork {
		t.Fatalf("IS should flag small-work only: %v", as)
	}
	// FT t4: barrier share = 0.60/(4*0.5) = 0.30 >= 0.2.
	if as := byBench["FT"].Anomalies; len(as) != 1 || as[0] != BarrierSync {
		t.Fatalf("FT should flag barrier-sync only: %v", as)
	}
	ft4 := byBench["FT"].Points[1]
	if math.Abs(ft4.BarrierShare-0.30) > 1e-9 {
		t.Fatalf("barrier share = %v", ft4.BarrierShare)
	}
}

func TestScalingThresholdsConfigurable(t *testing.T) {
	out := Scaling(scalingFixture(), ScalingOptions{ImbalanceMin: 5, BarrierShareMin: 0.9, SmallWorkSec: 1e-9})
	for _, bs := range out {
		if len(bs.Anomalies) != 0 {
			t.Fatalf("loose thresholds still flagged %s: %v", bs.Benchmark, bs.Anomalies)
		}
	}
}

func TestScalingFallsBackToOneThreadBaseline(t *testing.T) {
	rec := report.BenchRecord{Schema: report.BenchSchema, Cells: []report.CellMetrics{
		{Benchmark: "MG", Class: "W", Threads: 1, Samples: []float64{1.0}},
		{Benchmark: "MG", Class: "W", Threads: 2, Samples: []float64{0.5}},
	}}
	out := Scaling(rec, ScalingOptions{})
	if len(out) != 1 || out[0].BaseSec != 1.0 {
		t.Fatalf("baseline fallback failed: %+v", out)
	}
	if s := out[0].Points[1].Speedup; s != 2 {
		t.Fatalf("S(2) over t1 baseline = %v", s)
	}
}

func TestScalingTableOutput(t *testing.T) {
	out := ScalingTable(Scaling(scalingFixture(), ScalingOptions{}))
	for _, want := range []string{"CG.S serial", "CG.S t4", "load-imbalance", "barrier-sync", "small-work", "e(KF)"} {
		if !strings.Contains(out, want) {
			t.Fatalf("scaling table missing %q:\n%s", want, out)
		}
	}
}
