// Package perfstat turns the raw bench records of internal/report into
// statistics, comparisons and scalability diagnoses — the consumer side
// of the performance pipeline whose producer side (obs counters,
// per-repeat samples, stamped BENCH_<stamp>.json records) earlier
// layers built.
//
// The methodology follows Hoefler & Belli, "Scientific Benchmarking of
// Parallel Computing Systems" (SC'15): report the full sample
// distribution rather than best-of-N, summarize with order statistics
// (median, quartiles) because run times are not normally distributed,
// and only call a difference real when nonparametric (bootstrap)
// confidence intervals separate. The scalability side adds the
// Karp–Flatt experimentally determined serial fraction (CACM 1990),
// which distinguishes "Amdahl ceiling" from "overhead grows with p" at
// a glance, and rule-based anomaly attribution that joins the obs
// counters to the three §5 diagnoses of the source paper: CG-style
// load imbalance, LU-pipeline-style barrier synchronization cost, and
// IS-style too-little-work-per-thread.
//
// Everything is deterministic: the bootstrap PRNG is explicitly
// seeded, so the same records always produce the same intervals — a
// regression gate must not be flaky by construction.
package perfstat

import (
	"math"
	"math/rand"
	"sort"
)

// CIOptions tunes the bootstrap confidence interval.
type CIOptions struct {
	Confidence float64 // CI mass, e.g. 0.95; default 0.95
	Resamples  int     // bootstrap resamples; default 1000
	Seed       int64   // PRNG seed; default 1 (determinism, not entropy)
}

// withDefaults fills unset CI options.
func (o CIOptions) withDefaults() CIOptions {
	if o.Confidence <= 0 || o.Confidence >= 1 {
		o.Confidence = 0.95
	}
	if o.Resamples <= 0 {
		o.Resamples = 1000
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// Summary is the distribution summary of one cell's repeat samples.
// CILo/CIHi bound the median at the requested confidence; with a
// single sample they collapse to the point value, which makes a
// comparison fall back to the relative-delta threshold alone.
type Summary struct {
	N      int     `json:"n"`
	Min    float64 `json:"min"`
	Max    float64 `json:"max"`
	Mean   float64 `json:"mean"`
	Median float64 `json:"median"`
	Q1     float64 `json:"q1"`
	Q3     float64 `json:"q3"`
	IQR    float64 `json:"iqr"`
	CILo   float64 `json:"ci_lo"`
	CIHi   float64 `json:"ci_hi"`
}

// Summarize computes the distribution summary of samples with a
// percentile-bootstrap confidence interval for the median. An empty
// sample set returns the zero Summary.
func Summarize(samples []float64, opt CIOptions) Summary {
	if len(samples) == 0 {
		return Summary{}
	}
	opt = opt.withDefaults()
	sorted := append([]float64(nil), samples...)
	sort.Float64s(sorted)
	s := Summary{
		N:      len(sorted),
		Min:    sorted[0],
		Max:    sorted[len(sorted)-1],
		Median: quantile(sorted, 0.5),
		Q1:     quantile(sorted, 0.25),
		Q3:     quantile(sorted, 0.75),
	}
	s.IQR = s.Q3 - s.Q1
	var sum float64
	for _, v := range sorted {
		sum += v
	}
	s.Mean = sum / float64(len(sorted))
	s.CILo, s.CIHi = bootstrapCI(sorted, opt)
	return s
}

// quantile returns the q-quantile of sorted data by linear
// interpolation between closest ranks (the R-7 rule both NumPy and Go
// benchstat use).
func quantile(sorted []float64, q float64) float64 {
	n := len(sorted)
	if n == 1 {
		return sorted[0]
	}
	pos := q * float64(n-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// bootstrapCI is the percentile-bootstrap confidence interval of the
// median: resample n-with-replacement Resamples times, take the
// (1±Confidence)/2 quantiles of the resampled medians. Deterministic
// for a given (samples, options) pair.
func bootstrapCI(sorted []float64, opt CIOptions) (lo, hi float64) {
	n := len(sorted)
	if n == 1 {
		return sorted[0], sorted[0]
	}
	rng := rand.New(rand.NewSource(opt.Seed))
	medians := make([]float64, opt.Resamples)
	resample := make([]float64, n)
	for i := range medians {
		for j := range resample {
			resample[j] = sorted[rng.Intn(n)]
		}
		sort.Float64s(resample)
		medians[i] = quantile(resample, 0.5)
	}
	sort.Float64s(medians)
	alpha := (1 - opt.Confidence) / 2
	return quantile(medians, alpha), quantile(medians, 1-alpha)
}
