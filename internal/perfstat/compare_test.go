package perfstat

import (
	"strings"
	"testing"

	"npbgo/internal/report"
)

// record builds a one-cell bench record from CG.S t2 samples.
func record(stamp string, samples ...float64) report.BenchRecord {
	best := samples[0]
	for _, s := range samples {
		if s < best {
			best = s
		}
	}
	return report.BenchRecord{
		Schema: report.BenchSchema,
		Stamp:  stamp,
		Class:  "S",
		Cells: []report.CellMetrics{{
			Benchmark: "CG", Class: "S", Threads: 2,
			Elapsed: best, Verified: true, Samples: samples,
		}},
	}
}

func TestCompareCleanOnNoise(t *testing.T) {
	// Same distribution, shuffled — back-to-back runs of identical
	// code must not flag.
	base := record("A", 1.00, 1.02, 0.98, 1.01, 0.99)
	head := record("B", 1.01, 0.99, 1.00, 0.98, 1.02)
	cmp := Compare(base, head, CompareOptions{})
	if cmp.Regressions != 0 || cmp.Improvements != 0 {
		t.Fatalf("noise flagged: %+v", cmp.Cells)
	}
	if len(cmp.Cells) != 1 || cmp.Cells[0].Regression {
		t.Fatalf("unexpected cells: %+v", cmp.Cells)
	}
}

func TestCompareFlagsRealRegression(t *testing.T) {
	base := record("A", 1.00, 1.01, 0.99, 1.00, 1.02)
	head := record("B", 1.50, 1.51, 1.49, 1.52, 1.50)
	cmp := Compare(base, head, CompareOptions{})
	if cmp.Regressions != 1 {
		t.Fatalf("50%% slowdown with tight CIs not flagged: %+v", cmp.Cells)
	}
	d := cmp.Cells[0]
	if !d.Separated || !d.Regression || d.RelDelta < 0.4 {
		t.Fatalf("delta fields wrong: %+v", d)
	}
}

func TestCompareFlagsImprovement(t *testing.T) {
	base := record("A", 1.50, 1.51, 1.49)
	head := record("B", 1.00, 1.01, 0.99)
	cmp := Compare(base, head, CompareOptions{})
	if cmp.Improvements != 1 || cmp.Regressions != 0 {
		t.Fatalf("speedup not classed as improvement: %+v", cmp.Cells)
	}
}

func TestCompareThresholdAbsorbsTinySeparation(t *testing.T) {
	// Perfectly separated but only ~0.5% apart: below the 2% default
	// threshold, so no regression.
	base := record("A", 1.000, 1.000, 1.000)
	head := record("B", 1.005, 1.005, 1.005)
	cmp := Compare(base, head, CompareOptions{})
	d := cmp.Cells[0]
	if !d.Separated {
		t.Fatalf("identical-sample records should separate: %+v", d)
	}
	if d.Regression || cmp.Regressions != 0 {
		t.Fatalf("sub-threshold separation flagged: %+v", d)
	}
	// A tighter threshold flips the verdict.
	cmp = Compare(base, head, CompareOptions{MinRelDelta: 0.001})
	if cmp.Regressions != 1 {
		t.Fatalf("explicit threshold ignored: %+v", cmp.Cells)
	}
}

func TestCompareMinTimeFloor(t *testing.T) {
	base := record("A", 0.0004, 0.0005, 0.0006)
	head := record("B", 0.0008, 0.0009, 0.0010)
	cmp := Compare(base, head, CompareOptions{MinTime: 0.001})
	d := cmp.Cells[0]
	if d.Regression || !strings.Contains(d.Note, "floor") {
		t.Fatalf("sub-floor cell judged: %+v", d)
	}
}

func TestCompareMismatchedAndFailedCells(t *testing.T) {
	base := record("A", 1.0, 1.0)
	base.Cells = append(base.Cells, report.CellMetrics{
		Benchmark: "EP", Class: "S", Threads: 2, Samples: []float64{2.0}})
	head := record("B", 1.0, 1.0)
	head.Cells[0].Error = "panic: injected"
	head.Cells = append(head.Cells, report.CellMetrics{
		Benchmark: "MG", Class: "S", Threads: 4, Samples: []float64{0.5}})
	cmp := Compare(base, head, CompareOptions{})
	byNote := make(map[string]int)
	for _, d := range cmp.Cells {
		byNote[d.Note]++
	}
	if byNote["cell only in base record"] != 1 || byNote["cell only in head record"] != 1 {
		t.Fatalf("mismatched cells not noted: %+v", cmp.Cells)
	}
	// CG worked in base, fails in head: that IS a regression.
	if byNote["failed in head record"] != 1 || cmp.Regressions != 1 {
		t.Fatalf("newly failing cell must count as regression: %+v", cmp.Cells)
	}
}

func TestCompareSingleSampleFallback(t *testing.T) {
	// Records written before repeats were retained carry no samples;
	// the headline elapsed is judged with the threshold alone.
	base := record("A", 1.0)
	base.Cells[0].Samples = nil
	base.Cells[0].Elapsed = 1.0
	head := record("B", 1.3)
	head.Cells[0].Samples = nil
	head.Cells[0].Elapsed = 1.3
	cmp := Compare(base, head, CompareOptions{})
	if cmp.Regressions != 1 {
		t.Fatalf("30%% single-sample slowdown not flagged: %+v", cmp.Cells)
	}
}

func TestComparisonTable(t *testing.T) {
	base := record("A", 1.0, 1.01, 0.99)
	head := record("B", 1.5, 1.51, 1.49)
	out := Compare(base, head, CompareOptions{}).Table()
	for _, want := range []string{"CG.S t2", "REGRESSION", "+50.0%", "Base CI"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table missing %q:\n%s", want, out)
		}
	}
}

func TestStatsTable(t *testing.T) {
	rec := record("A", 1.0, 1.2, 0.9)
	rec.Cells = append(rec.Cells, report.CellMetrics{
		Benchmark: "EP", Class: "S", Threads: 4, Error: "timeout"})
	cells := Stats(rec, CIOptions{})
	if len(cells) != 2 || cells[0].Summary.N != 3 {
		t.Fatalf("stats cells wrong: %+v", cells)
	}
	if !strings.HasPrefix(cells[1].Note, "failed") {
		t.Fatalf("failed cell not noted: %+v", cells[1])
	}
	out := StatsTable("A", cells)
	for _, want := range []string{"CG.S t2", "EP.S t4", "failed: timeout", "Median"} {
		if !strings.Contains(out, want) {
			t.Fatalf("stats table missing %q:\n%s", want, out)
		}
	}
}
