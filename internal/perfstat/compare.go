// Noise-aware comparison of two bench records, cell by cell. A cell is
// only called a regression when the medians' confidence intervals
// separate AND the relative slowdown clears a threshold — CI overlap
// absorbs run-to-run scheduling noise, the threshold absorbs
// differences too small to act on. Cells below a minimum-time floor
// are never judged: a sub-millisecond run is inside timer resolution
// and OS jitter, where the paper's own IS numbers stopped being
// meaningful.
package perfstat

import (
	"fmt"

	"npbgo/internal/report"
)

// CompareOptions tunes the regression decision.
type CompareOptions struct {
	CIOptions
	// MinRelDelta is the relative median change below which a
	// separated difference is still ignored; default 0.02 (2%).
	MinRelDelta float64
	// MinTime (seconds) is the floor below which cells are not judged
	// at all; default 0 (judge everything).
	MinTime float64
}

// withDefaults fills unset comparison options.
func (o CompareOptions) withDefaults() CompareOptions {
	o.CIOptions = o.CIOptions.withDefaults()
	if o.MinRelDelta <= 0 {
		o.MinRelDelta = 0.02
	}
	return o
}

// CellDelta is the judged difference of one (benchmark, class,
// threads) cell between a base and a head record.
type CellDelta struct {
	Benchmark string  `json:"benchmark"`
	Class     string  `json:"class"`
	Threads   int     `json:"threads"`
	Base      Summary `json:"base"`
	Head      Summary `json:"head"`
	// RelDelta is (head median - base median) / base median; positive
	// means head is slower.
	RelDelta float64 `json:"rel_delta"`
	// Separated reports that the two confidence intervals do not
	// overlap — the difference exceeds measured noise.
	Separated   bool `json:"separated"`
	Regression  bool `json:"regression"`
	Improvement bool `json:"improvement"`
	// Note explains a cell that was not judged: present in only one
	// record, failed in either, or below the minimum-time floor.
	Note string `json:"note,omitempty"`
}

// Comparison is the full cell-by-cell judgment of head against base.
type Comparison struct {
	BaseStamp    string      `json:"base_stamp"`
	HeadStamp    string      `json:"head_stamp"`
	Cells        []CellDelta `json:"cells"`
	Regressions  int         `json:"regressions"`
	Improvements int         `json:"improvements"`
}

// cellKey identifies a sweep cell across records.
type cellKey struct {
	bench, class string
	threads      int
}

// samplesOf returns the distribution a cell is judged on: the retained
// repeat samples, or the headline elapsed as a single point for
// records written before repeats were kept.
func samplesOf(c report.CellMetrics) []float64 {
	if len(c.Samples) > 0 {
		return c.Samples
	}
	if c.Elapsed > 0 {
		return []float64{c.Elapsed}
	}
	return nil
}

// Compare judges every cell of head against the matching cell of base.
// Cells are matched by (benchmark, class, threads); base-only and
// head-only cells are reported with a Note and never counted as
// regressions — a removed benchmark is a review question, not a perf
// fact.
func Compare(base, head report.BenchRecord, opt CompareOptions) Comparison {
	opt = opt.withDefaults()
	cmp := Comparison{BaseStamp: base.Stamp, HeadStamp: head.Stamp}
	headIdx := make(map[cellKey]report.CellMetrics, len(head.Cells))
	headSeen := make(map[cellKey]bool, len(head.Cells))
	for _, c := range head.Cells {
		headIdx[cellKey{c.Benchmark, c.Class, c.Threads}] = c
	}
	for _, b := range base.Cells {
		key := cellKey{b.Benchmark, b.Class, b.Threads}
		d := CellDelta{Benchmark: b.Benchmark, Class: b.Class, Threads: b.Threads}
		h, ok := headIdx[key]
		if !ok {
			d.Note = "cell only in base record"
			cmp.Cells = append(cmp.Cells, d)
			continue
		}
		headSeen[key] = true
		cmp.Cells = append(cmp.Cells, judge(d, b, h, opt))
	}
	for _, h := range head.Cells {
		if headSeen[cellKey{h.Benchmark, h.Class, h.Threads}] {
			continue
		}
		cmp.Cells = append(cmp.Cells, CellDelta{Benchmark: h.Benchmark,
			Class: h.Class, Threads: h.Threads, Note: "cell only in head record"})
	}
	for _, d := range cmp.Cells {
		if d.Regression {
			cmp.Regressions++
		}
		if d.Improvement {
			cmp.Improvements++
		}
	}
	return cmp
}

// judge fills one matched cell's delta fields.
func judge(d CellDelta, b, h report.CellMetrics, opt CompareOptions) CellDelta {
	switch {
	case b.Error != "" && h.Error != "":
		d.Note = "failed in both records"
		return d
	case b.Error != "":
		d.Note = "failed in base record"
		return d
	case h.Error != "":
		// A cell that worked and now fails is worse than a slowdown.
		d.Note = "failed in head record"
		d.Regression = true
		return d
	}
	bs, hs := samplesOf(b), samplesOf(h)
	if len(bs) == 0 || len(hs) == 0 {
		d.Note = "no samples"
		return d
	}
	d.Base = Summarize(bs, opt.CIOptions)
	d.Head = Summarize(hs, opt.CIOptions)
	if d.Base.Median > 0 {
		d.RelDelta = (d.Head.Median - d.Base.Median) / d.Base.Median
	}
	if opt.MinTime > 0 && d.Base.Median < opt.MinTime && d.Head.Median < opt.MinTime {
		d.Note = fmt.Sprintf("below %.3gs floor, not judged", opt.MinTime)
		return d
	}
	slower := d.Head.CILo > d.Base.CIHi
	faster := d.Head.CIHi < d.Base.CILo
	d.Separated = slower || faster
	d.Regression = slower && d.RelDelta >= opt.MinRelDelta
	d.Improvement = faster && -d.RelDelta >= opt.MinRelDelta
	return d
}

// CellSummary pairs one cell with its distribution summary — the row
// type of the `npbperf stats` report.
type CellSummary struct {
	Benchmark string  `json:"benchmark"`
	Class     string  `json:"class"`
	Threads   int     `json:"threads"`
	Summary   Summary `json:"summary"`
	Note      string  `json:"note,omitempty"`
}

// Stats summarizes every cell of a record.
func Stats(rec report.BenchRecord, opt CIOptions) []CellSummary {
	opt = opt.withDefaults()
	out := make([]CellSummary, 0, len(rec.Cells))
	for _, c := range rec.Cells {
		cs := CellSummary{Benchmark: c.Benchmark, Class: c.Class, Threads: c.Threads}
		if c.Error != "" {
			cs.Note = "failed: " + c.Error
		} else if s := samplesOf(c); len(s) > 0 {
			cs.Summary = Summarize(s, opt)
		} else {
			cs.Note = "no samples"
		}
		out = append(out, cs)
	}
	return out
}

// StatsTable renders per-cell distribution summaries as an aligned
// text table.
func StatsTable(stamp string, cells []CellSummary) string {
	tb := report.New(
		fmt.Sprintf("Distribution per cell, record %s (bootstrap CI of the median)", stamp),
		"Cell", "N", "Min", "Median", "CI", "IQR", "Max")
	for _, cs := range cells {
		cell := deltaCell(CellDelta{Benchmark: cs.Benchmark, Class: cs.Class, Threads: cs.Threads})
		if cs.Note != "" {
			tb.AddRow(cell, "-", "-", "-", cs.Note, "-", "-")
			continue
		}
		s := cs.Summary
		tb.AddRow(cell, fmt.Sprintf("%d", s.N), report.Seconds(s.Min),
			report.Seconds(s.Median), ciText(s), report.Seconds(s.IQR), report.Seconds(s.Max))
	}
	return tb.String()
}

// Table renders the comparison as an aligned text table: one row per
// cell with both medians, their confidence intervals, the relative
// delta and the verdict.
func (c Comparison) Table() string {
	tb := report.New(
		fmt.Sprintf("Compare %s -> %s (regression = CIs separate and slowdown >= threshold)", c.BaseStamp, c.HeadStamp),
		"Cell", "Base med", "Base CI", "Head med", "Head CI", "Delta", "Verdict")
	for _, d := range c.Cells {
		if d.Note != "" {
			tb.AddRow(deltaCell(d), "-", "-", "-", "-", "-", verdict(d))
			continue
		}
		tb.AddRow(deltaCell(d),
			report.Seconds(d.Base.Median),
			ciText(d.Base),
			report.Seconds(d.Head.Median),
			ciText(d.Head),
			fmt.Sprintf("%+.1f%%", 100*d.RelDelta),
			verdict(d))
	}
	return tb.String()
}

// deltaCell renders the cell tag of one delta row.
func deltaCell(d CellDelta) string {
	if d.Threads == 0 {
		return fmt.Sprintf("%s.%s serial", d.Benchmark, d.Class)
	}
	return fmt.Sprintf("%s.%s t%d", d.Benchmark, d.Class, d.Threads)
}

// ciText renders a summary's confidence interval.
func ciText(s Summary) string {
	return "[" + report.Seconds(s.CILo) + "," + report.Seconds(s.CIHi) + "]"
}

// verdict renders one delta's judgment column.
func verdict(d CellDelta) string {
	switch {
	case d.Note != "":
		return d.Note
	case d.Regression:
		return "REGRESSION"
	case d.Improvement:
		return "improvement"
	case d.Separated:
		return "separated(<thresh)"
	default:
		return "ok"
	}
}
