// Package jgf reproduces the Java Grande Forum lufact benchmark study of
// the paper's Table 7: the paper found that lufact — a direct port of
// LINPACK's unblocked, BLAS1-based DGEFA — is memory-bound ("the
// computations always wait for data"), which hides the language gap it
// was supposed to measure; a blocked DGETRF-style LU with a
// matrix-multiply update ("good cache reuse since it is based on MMULT")
// is vastly faster. Both variants are implemented here on the same
// deterministic matrices, classes A/B/C = 500/1000/2000.
package jgf

import (
	"fmt"
	"math"
	"time"

	"npbgo/internal/blas"
	"npbgo/internal/randdp"
)

// ClassSize maps Java Grande class letters to matrix orders.
var ClassSize = map[byte]int{'A': 500, 'B': 1000, 'C': 2000}

// Matgen fills the column-major n x n matrix a (lda >= n) with the
// deterministic pseudorandom entries in (-0.5, 0.5) and returns its
// largest absolute entry, following LINPACK's matgen (with the NPB
// generator supplying the stream).
func Matgen(a []float64, lda, n int) float64 {
	s := randdp.NewStream(1325.0*randdp.DefaultSeed/1e9+7, 0)
	norma := 0.0
	for j := 0; j < n; j++ {
		col := a[j*lda:]
		for i := 0; i < n; i++ {
			v := s.Next() - 0.5
			col[i] = v
			if av := math.Abs(v); av > norma {
				norma = av
			}
		}
	}
	return norma
}

// Dgefa factors the column-major n x n matrix a in place with partial
// pivoting using only BLAS1 operations — the LINPACK routine the Java
// Grande lufact benchmark ports. It records pivots in ipvt and returns
// the index+1 of a zero pivot, or 0 on success.
func Dgefa(a []float64, lda, n int, ipvt []int) int {
	info := 0
	for k := 0; k < n-1; k++ {
		col := a[k*lda:]
		l := blas.Idamax(n-k, col[k:n]) + k
		ipvt[k] = l
		if col[l] == 0 {
			info = k + 1
			continue
		}
		if l != k {
			col[l], col[k] = col[k], col[l]
		}
		t := -1.0 / col[k]
		blas.Dscal(n-k-1, t, col[k+1:n])
		for j := k + 1; j < n; j++ {
			cj := a[j*lda:]
			t := cj[l]
			if l != k {
				cj[l], cj[k] = cj[k], cj[l]
			}
			blas.Daxpy(n-k-1, t, col[k+1:n], cj[k+1:n])
		}
	}
	ipvt[n-1] = n - 1
	if a[(n-1)*lda+n-1] == 0 {
		info = n
	}
	return info
}

// Dgesl solves a*x = b using the Dgefa factorization, overwriting b
// with x (LINPACK dgesl, job 0).
func Dgesl(a []float64, lda, n int, ipvt []int, b []float64) {
	// Forward: solve L*y = b.
	for k := 0; k < n-1; k++ {
		l := ipvt[k]
		t := b[l]
		if l != k {
			b[l], b[k] = b[k], b[l]
		}
		blas.Daxpy(n-k-1, t, a[k*lda+k+1:k*lda+n], b[k+1:n])
	}
	// Backward: solve U*x = y.
	for k := n - 1; k >= 0; k-- {
		b[k] /= a[k*lda+k]
		t := -b[k]
		blas.Daxpy(k, t, a[k*lda:k*lda+k], b[:k])
	}
}

// Dgetrf factors a in place with partial pivoting using a right-looking
// blocked algorithm (panel DGEFA-style factorization, row interchanges,
// unit-lower triangular solve of the U panel, DGEMM trailing update) —
// the LAPACK-style LU the paper's Table 7 quotes as "LINPACK" with good
// cache reuse. nb is the block size (32 if nb <= 0).
func Dgetrf(a []float64, lda, n int, ipvt []int, nb int) int {
	if nb <= 0 {
		nb = 32
	}
	info := 0
	for k0 := 0; k0 < n; k0 += nb {
		kb := nb
		if k0+kb > n {
			kb = n - k0
		}
		// Factor the panel a[k0:n, k0:k0+kb] unblocked.
		for k := k0; k < k0+kb; k++ {
			col := a[k*lda:]
			l := blas.Idamax(n-k, col[k:n]) + k
			ipvt[k] = l
			if col[l] == 0 {
				if info == 0 {
					info = k + 1
				}
				continue
			}
			if l != k {
				// Swap rows l and k across the whole matrix (LAPACK
				// applies interchanges globally).
				for j := 0; j < n; j++ {
					a[j*lda+l], a[j*lda+k] = a[j*lda+k], a[j*lda+l]
				}
			}
			piv := 1.0 / col[k]
			for i := k + 1; i < n; i++ {
				col[i] *= piv
			}
			// Update the remainder of the panel only.
			for j := k + 1; j < k0+kb; j++ {
				cj := a[j*lda:]
				t := cj[k]
				for i := k + 1; i < n; i++ {
					cj[i] -= t * col[i]
				}
			}
		}
		if k0+kb < n {
			// U panel: solve L11 * U12 = A12.
			blas.DtrsmLLUnit(kb, n-k0-kb, a[k0*lda+k0:], lda, a[(k0+kb)*lda+k0:], lda)
			// Trailing update: A22 -= L21 * U12.
			blas.DgemmSub(n-k0-kb, n-k0-kb, kb,
				a[k0*lda+k0+kb:], lda,
				a[(k0+kb)*lda+k0:], lda,
				a[(k0+kb)*lda+k0+kb:], lda)
		}
	}
	return info
}

// DgetrfSolve solves a*x = b from a Dgetrf factorization (pivots were
// applied globally during factorization, so b needs the same row
// interchanges before the triangular solves).
func DgetrfSolve(a []float64, lda, n int, ipvt []int, b []float64) {
	for k := 0; k < n; k++ {
		if l := ipvt[k]; l != k {
			b[l], b[k] = b[k], b[l]
		}
	}
	// L (unit lower) forward solve.
	for k := 0; k < n; k++ {
		t := b[k]
		if t == 0 {
			continue
		}
		col := a[k*lda:]
		for i := k + 1; i < n; i++ {
			b[i] -= t * col[i]
		}
	}
	// U backward solve.
	for k := n - 1; k >= 0; k-- {
		b[k] /= a[k*lda+k]
		t := b[k]
		col := a[k*lda:]
		for i := 0; i < k; i++ {
			b[i] -= t * col[i]
		}
	}
}

// Result reports one LU factor+solve run.
type Result struct {
	N        int
	Factor   time.Duration
	Solve    time.Duration
	Mflops   float64
	Residual float64 // normalized LINPACK residual
	OK       bool
}

// Ops returns the standard LINPACK operation count for order n.
func Ops(n int) float64 {
	nf := float64(n)
	return 2.0/3.0*nf*nf*nf + 2.0*nf*nf
}

// runLU factors and solves with the supplied routines and validates the
// solution against the LINPACK normalized-residual criterion.
func runLU(n int, factor func(a []float64, lda int, ipvt []int),
	solve func(a []float64, lda int, ipvt []int, b []float64)) Result {
	lda := n + 1 // LINPACK pads the leading dimension to avoid cache thrash
	a := make([]float64, lda*n)
	norma := Matgen(a, lda, n)

	// b = A * ones, so the exact solution is x = ones.
	b := make([]float64, n)
	for j := 0; j < n; j++ {
		col := a[j*lda:]
		for i := 0; i < n; i++ {
			b[i] += col[i]
		}
	}
	aCopy := make([]float64, len(a))
	copy(aCopy, a)

	ipvt := make([]int, n)
	t0 := time.Now()
	factor(a, lda, ipvt)
	tFactor := time.Since(t0)
	t1 := time.Now()
	solve(a, lda, ipvt, b)
	tSolve := time.Since(t1)

	// Residual ||A x - b|| / (n ||A|| ||x|| eps).
	normx := 0.0
	resid := 0.0
	r := make([]float64, n)
	for j := 0; j < n; j++ {
		col := aCopy[j*lda:]
		xj := b[j]
		if math.Abs(xj) > normx {
			normx = math.Abs(xj)
		}
		for i := 0; i < n; i++ {
			r[i] += col[i] * xj
		}
	}
	for i := 0; i < n; i++ {
		// The right-hand side was A*ones; recompute it for the check.
		s := 0.0
		for j := 0; j < n; j++ {
			s += aCopy[j*lda+i]
		}
		if d := math.Abs(r[i] - s); d > resid {
			resid = d
		}
	}
	eps := 2.220446049250313e-16
	normResid := resid / (float64(n) * norma * normx * eps)

	var res Result
	res.N = n
	res.Factor = tFactor
	res.Solve = tSolve
	total := tFactor + tSolve
	if s := total.Seconds(); s > 0 {
		res.Mflops = Ops(n) * 1e-6 / s
	}
	res.Residual = normResid
	res.OK = normResid < 100.0 // generous LINPACK-style acceptance
	return res
}

// RunLufact runs the unblocked Java Grande lufact variant for class
// letter cl ('A', 'B', 'C') or an explicit order n when cl is 0.
func RunLufact(cl byte, n int) (Result, error) {
	if cl != 0 {
		var ok bool
		n, ok = ClassSize[cl]
		if !ok {
			return Result{}, fmt.Errorf("jgf: unknown class %q", string(cl))
		}
	}
	return runLU(n,
		func(a []float64, lda int, ipvt []int) { Dgefa(a, lda, n, ipvt) },
		func(a []float64, lda int, ipvt []int, b []float64) { Dgesl(a, lda, n, ipvt, b) }), nil
}

// RunBlocked runs the blocked DGETRF-style variant.
func RunBlocked(cl byte, n, nb int) (Result, error) {
	if cl != 0 {
		var ok bool
		n, ok = ClassSize[cl]
		if !ok {
			return Result{}, fmt.Errorf("jgf: unknown class %q", string(cl))
		}
	}
	return runLU(n,
		func(a []float64, lda int, ipvt []int) { Dgetrf(a, lda, n, ipvt, nb) },
		func(a []float64, lda int, ipvt []int, b []float64) { DgetrfSolve(a, lda, n, ipvt, b) }), nil
}
