package jgf

import (
	"math"
	"testing"
	"testing/quick"
)

func TestLufactSolvesKnownSystem(t *testing.T) {
	res, err := RunLufact(0, 120)
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK {
		t.Fatalf("residual %v too large", res.Residual)
	}
}

func TestBlockedSolvesKnownSystem(t *testing.T) {
	for _, nb := range []int{1, 8, 32, 200} {
		res, err := RunBlocked(0, 130, nb)
		if err != nil {
			t.Fatal(err)
		}
		if !res.OK {
			t.Fatalf("nb=%d residual %v too large", nb, res.Residual)
		}
	}
}

func TestBlockedMatchesUnblockedFactorization(t *testing.T) {
	// Both algorithms compute the same LU factorization (same pivot
	// choices) of the same matrix; solutions must agree to rounding.
	const n = 90
	lda := n
	a1 := make([]float64, lda*n)
	Matgen(a1, lda, n)
	a2 := make([]float64, lda*n)
	copy(a2, a1)
	b1 := make([]float64, n)
	b2 := make([]float64, n)
	for i := 0; i < n; i++ {
		b1[i] = float64(i%13) - 6
		b2[i] = b1[i]
	}
	p1 := make([]int, n)
	p2 := make([]int, n)
	Dgefa(a1, lda, n, p1)
	Dgesl(a1, lda, n, p1, b1)
	Dgetrf(a2, lda, n, p2, 16)
	DgetrfSolve(a2, lda, n, p2, b2)
	for i := 0; i < n; i++ {
		if p1[i] != p2[i] {
			t.Fatalf("pivot %d differs: %d vs %d", i, p1[i], p2[i])
		}
		if math.Abs(b1[i]-b2[i]) > 1e-8*(1+math.Abs(b1[i])) {
			t.Fatalf("solution %d differs: %v vs %v", i, b1[i], b2[i])
		}
	}
}

func TestDgefaSingularDetected(t *testing.T) {
	const n = 4
	a := make([]float64, n*n) // all zeros: singular
	ipvt := make([]int, n)
	if info := Dgefa(a, n, n, ipvt); info == 0 {
		t.Fatal("zero matrix not reported singular")
	}
}

func TestSolveRandomSystemsProperty(t *testing.T) {
	f := func(seed uint32) bool {
		n := 20 + int(seed%30)
		lda := n
		a := make([]float64, lda*n)
		Matgen(a, lda, n)
		// Perturb deterministically by seed so each case differs.
		a[int(seed)%(lda*n)] += 0.25
		want := make([]float64, n)
		b := make([]float64, n)
		for i := range want {
			want[i] = float64((int(seed)+i)%7) - 3
		}
		for j := 0; j < n; j++ {
			for i := 0; i < n; i++ {
				b[i] += a[j*lda+i] * want[j]
			}
		}
		ipvt := make([]int, n)
		Dgefa(a, lda, n, ipvt)
		Dgesl(a, lda, n, ipvt, b)
		for i := range want {
			if math.Abs(b[i]-want[i]) > 1e-6*(1+math.Abs(want[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestMatgenDeterministic(t *testing.T) {
	a := make([]float64, 25)
	b := make([]float64, 25)
	na := Matgen(a, 5, 5)
	nb := Matgen(b, 5, 5)
	if na != nb {
		t.Fatal("norms differ")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("matrices differ")
		}
		if a[i] <= -0.5 || a[i] >= 0.5 {
			t.Fatalf("entry %v out of range", a[i])
		}
	}
}

func TestOpsCount(t *testing.T) {
	if Ops(3) != 2.0/3.0*27+2*9 {
		t.Fatalf("Ops(3) = %v", Ops(3))
	}
}

func TestUnknownClass(t *testing.T) {
	if _, err := RunLufact('Z', 0); err == nil {
		t.Fatal("class Z accepted")
	}
	if _, err := RunBlocked('Z', 0, 0); err == nil {
		t.Fatal("class Z accepted")
	}
}
