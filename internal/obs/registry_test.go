package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestServeTwice is the regression test for the double-registration
// panic: the old endpoint registered its handlers on the process-global
// DefaultServeMux, so a second Serve (a second sweep in the same
// process, or a test after a test) crashed with "pattern already
// registered". Both servers must come up and both must answer.
func TestServeTwice(t *testing.T) {
	Register("serve-twice", New(2))
	defer Register("serve-twice", nil)

	var bounds []string
	for i := 0; i < 2; i++ {
		bound, shutdown, err := Serve("127.0.0.1:0")
		if err != nil {
			t.Fatalf("Serve #%d: %v", i+1, err)
		}
		defer shutdown() //nolint:errcheck
		bounds = append(bounds, bound)
	}
	for _, bound := range bounds {
		resp, err := http.Get("http://" + bound + "/debug/vars")
		if err != nil {
			t.Fatalf("GET %s/debug/vars: %v", bound, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s/debug/vars: status %d", bound, resp.StatusCode)
		}
		if !strings.Contains(string(body), "npb.obs") {
			t.Errorf("%s/debug/vars does not expose npb.obs", bound)
		}
	}
}

// TestHandlerIsSelfContained: Handler() must build a private mux each
// call — usable standalone, mountable many times, no global mutation.
func TestHandlerIsSelfContained(t *testing.T) {
	h1, h2 := Handler(), Handler()
	for i, h := range []http.Handler{h1, h2} {
		rr := httptest.NewRecorder()
		h.ServeHTTP(rr, httptest.NewRequest("GET", "/debug/vars", nil))
		if rr.Code != http.StatusOK {
			t.Fatalf("handler %d: /debug/vars status %d", i, rr.Code)
		}
		var vars map[string]json.RawMessage
		if err := json.Unmarshal(rr.Body.Bytes(), &vars); err != nil {
			t.Fatalf("handler %d: /debug/vars is not JSON: %v", i, err)
		}
		rr = httptest.NewRecorder()
		h.ServeHTTP(rr, httptest.NewRequest("GET", "/debug/pprof/cmdline", nil))
		if rr.Code != http.StatusOK {
			t.Fatalf("handler %d: /debug/pprof/cmdline status %d", i, rr.Code)
		}
	}
}

// TestRegisterSameNameTwice: re-registering a name replaces the entry
// (no panic, no duplicate), and nil unregisters it.
func TestRegisterSameNameTwice(t *testing.T) {
	a, b := New(1), New(2)
	Register("dup", a)
	Register("dup", b)
	defer Register("dup", nil)
	views := snapshotAll()
	v, ok := views["dup"]
	if !ok {
		t.Fatal("re-registered recorder missing from registry")
	}
	if v.Workers != 2 {
		t.Fatalf("registry kept the old recorder: workers = %d, want 2", v.Workers)
	}
	Register("dup", nil)
	if _, ok := snapshotAll()["dup"]; ok {
		t.Fatal("Register(name, nil) did not unregister")
	}
}
