// Registry and live endpoint: named recorders are published as one
// expvar variable ("npb.obs"), and Serve exposes expvar plus
// net/http/pprof on a local port so a long sweep can be profiled while
// it runs — the production-style "look inside the process" hooks every
// perf investigation in the paper needed.

package obs

import (
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"time"
)

var (
	regMu       sync.Mutex
	registry    = map[string]*Recorder{}
	publishOnce sync.Once
)

// Register names a recorder in the process-wide registry, replacing any
// previous recorder under the same name. The first registration
// publishes the "npb.obs" expvar, so registry contents appear at
// /debug/vars on any expvar endpoint (including Serve's).
func Register(name string, r *Recorder) {
	publishOnce.Do(func() {
		expvar.Publish("npb.obs", expvar.Func(func() any { return snapshotAll() }))
	})
	regMu.Lock()
	defer regMu.Unlock()
	if r == nil {
		delete(registry, name)
		return
	}
	registry[name] = r
}

// statsView is the JSON shape of one registry entry: durations in
// seconds (the paper's unit), never nanosecond ints.
type statsView struct {
	Workers       int       `json:"workers"`
	Regions       uint64    `json:"regions"`
	Cancellations uint64    `json:"cancellations"`
	Panics        uint64    `json:"panics"`
	BarrierWaits  uint64    `json:"barrier_waits"`
	BarrierSec    float64   `json:"barrier_wait_sec"`
	JoinSec       float64   `json:"join_wait_sec"`
	BusySec       []float64 `json:"worker_busy_sec"`
	WaitSec       []float64 `json:"worker_wait_sec"`
	Imbalance     float64   `json:"imbalance"`

	// Hardware-counter figures, present only when a sampler is attached
	// to the recorder: raw totals plus the two derived ratios the
	// memory-bound diagnosis reads.
	Counters    *countersView `json:"counters,omitempty"`
	IPC         float64       `json:"ipc,omitempty"`
	LLCMissRate float64       `json:"llc_miss_rate,omitempty"`
}

// countersView is the raw counter totals of a registry entry.
type countersView struct {
	Set          string `json:"set"`
	Cycles       uint64 `json:"cycles,omitempty"`
	Instructions uint64 `json:"instructions,omitempty"`
	LLCLoads     uint64 `json:"llc_loads,omitempty"`
	LLCMisses    uint64 `json:"llc_misses,omitempty"`
	BranchMisses uint64 `json:"branch_misses,omitempty"`
	TaskClockNs  uint64 `json:"task_clock_ns,omitempty"`
	Note         string `json:"note,omitempty"`
}

func viewOf(s *Stats) statsView {
	v := statsView{
		Workers:       s.Workers,
		Regions:       s.Regions,
		Cancellations: s.Cancellations,
		Panics:        s.Panics,
		BarrierWaits:  s.BarrierWaits,
		BarrierSec:    s.BarrierWait.Seconds(),
		JoinSec:       s.JoinWait.Seconds(),
		BusySec:       make([]float64, len(s.Busy)),
		WaitSec:       make([]float64, len(s.Wait)),
		Imbalance:     s.Imbalance(),
	}
	for i, d := range s.Busy {
		v.BusySec[i] = d.Seconds()
	}
	for i, d := range s.Wait {
		v.WaitSec[i] = d.Seconds()
	}
	if c := s.Counters; c != nil {
		v.Counters = &countersView{
			Set:          c.Set,
			Cycles:       c.Cycles,
			Instructions: c.Instructions,
			LLCLoads:     c.LLCLoads,
			LLCMisses:    c.LLCMisses,
			BranchMisses: c.BranchMisses,
			TaskClockNs:  c.TaskClockNs,
			Note:         c.Note,
		}
		v.IPC = c.IPC()
		v.LLCMissRate = c.LLCMissRate()
	}
	return v
}

func snapshotAll() map[string]statsView {
	regMu.Lock()
	defer regMu.Unlock()
	out := make(map[string]statsView, len(registry))
	for name, r := range registry {
		out[name] = viewOf(r.Snapshot())
	}
	return out
}

// Handler returns the observability endpoint as a fresh handler —
// expvar at /debug/vars and the standard pprof handlers under
// /debug/pprof/ — on a private mux. Each call builds a new mux and
// mutates no global state (in particular not http.DefaultServeMux), so
// daemon-style jobs can mount any number of endpoints, or mount this
// one under their own router.
func Handler() http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Serve starts the live observability endpoint on addr ("host:port";
// port 0 picks a free one), serving Handler(). It returns the bound
// address and a shutdown function. Serve can be called any number of
// times — each call gets its own listener, server and mux, and no
// process-global state is touched.
func Serve(addr string) (bound string, shutdown func() error, err error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{Handler: Handler(), ReadHeaderTimeout: 5 * time.Second}
	go srv.Serve(ln) //nolint:errcheck // Close() makes Serve return ErrServerClosed
	return ln.Addr().String(), srv.Close, nil
}
