// Package obs is the runtime observability layer: low-overhead
// per-region metrics for the team runtime, a process-wide registry
// published through expvar, and a live pprof/expvar HTTP endpoint.
//
// Every anomaly in the paper was found by exactly this kind of
// instrumentation: CG's thread-placement pathology (§5.2), FT's memory
// limits and LU's pipeline stalls all surfaced as per-phase and
// per-thread timing asymmetries. A Recorder attaches to a team
// (team.WithRecorder) and accumulates, per worker, busy time and
// barrier-wait time, plus region/cancellation/panic counts; Snapshot
// derives the worker-imbalance ratio (max busy / mean busy), the
// paper's load-balance diagnostic.
//
// The recorder is engineered to disappear when unused: a team without a
// recorder pays one nil pointer check per region, and a team with one
// pays two monotonic clock reads per worker region plus padded atomic
// adds — no locks, no allocation, no false sharing.
package obs

import (
	"fmt"
	"strings"
	"sync/atomic"
	"time"

	"npbgo/internal/perfcount"
)

// slot is one worker's counters, padded to its own cache lines so
// concurrent workers never false-share (the same trick the team's
// reduction partials use).
type slot struct {
	busyNs atomic.Int64  // time spent inside region bodies
	waitNs atomic.Int64  // time parked on id-attributed barriers
	chunks atomic.Uint64 // loop chunks claimed under a non-static schedule
	steals atomic.Uint64 // chunks taken from another worker's deque
	_      [96]byte      // pad the four 8-byte atomics to 128 bytes
}

// Recorder accumulates runtime metrics for one team. All methods are
// safe for concurrent use from every worker; a nil *Recorder is the
// disabled state and must be checked by the instrumented code, not
// passed in.
type Recorder struct {
	workers       []slot
	regions       atomic.Uint64
	cancellations atomic.Uint64
	panics        atomic.Uint64
	barrierWaits  atomic.Uint64 // await calls that actually blocked
	barrierWaitNs atomic.Int64  // aggregate, including unattributed waits
	joinNs        atomic.Int64  // master time draining the region join
	retunes       atomic.Uint64 // auto-tuner schedule switches

	// pc is the optional hardware-counter sampler folded into snapshots
	// (AttachCounters); atomic because the registry snapshots recorders
	// concurrently with a late attach.
	pc atomic.Pointer[perfcount.Sampler]
}

// New creates a recorder for a team of the given size (>= 1).
func New(workers int) *Recorder {
	if workers < 1 {
		workers = 1
	}
	return &Recorder{workers: make([]slot, workers)}
}

// Workers returns the worker count the recorder was sized for.
func (r *Recorder) Workers() int { return len(r.workers) }

// IncRegion counts one parallel region start.
func (r *Recorder) IncRegion() { r.regions.Add(1) }

// IncCancel counts a team cancellation (the first Cancel only; the team
// flag is sticky).
func (r *Recorder) IncCancel() { r.cancellations.Add(1) }

// IncPanic counts one panicking worker.
func (r *Recorder) IncPanic() { r.panics.Add(1) }

// AddBusy charges d of region-body time to worker id. Out-of-range ids
// are dropped rather than panicking, so a recorder sized for a smaller
// team never crashes the runtime.
func (r *Recorder) AddBusy(id int, d time.Duration) {
	if id >= 0 && id < len(r.workers) {
		r.workers[id].busyNs.Add(int64(d))
	}
}

// AddWait charges d of barrier-wait time. id < 0 records an
// unattributed wait (a Team.Barrier call without a worker id), which
// still counts toward the aggregate.
func (r *Recorder) AddWait(id int, d time.Duration) {
	r.barrierWaits.Add(1)
	r.barrierWaitNs.Add(int64(d))
	if id >= 0 && id < len(r.workers) {
		r.workers[id].waitNs.Add(int64(d))
	}
}

// AddJoin charges d of master time spent waiting for the last worker at
// the implicit region join — the skew of the slowest worker past the
// master's own finish.
func (r *Recorder) AddJoin(d time.Duration) { r.joinNs.Add(int64(d)) }

// IncChunk counts one loop chunk claimed by worker id under a
// non-static schedule. Out-of-range ids are dropped, as with AddBusy.
func (r *Recorder) IncChunk(id int) {
	if id >= 0 && id < len(r.workers) {
		r.workers[id].chunks.Add(1)
	}
}

// IncSteal counts one chunk worker id took from another worker's deque
// under the stealing schedule.
func (r *Recorder) IncSteal(id int) {
	if id >= 0 && id < len(r.workers) {
		r.workers[id].steals.Add(1)
	}
}

// IncRetune counts one schedule switch by the team's auto-tuner.
func (r *Recorder) IncRetune() { r.retunes.Add(1) }

// AttachCounters folds a hardware-counter sampler into this recorder's
// snapshots: Snapshot carries the sampler's accumulated cycles/IPC/
// cache-miss figures alongside the timing metrics, and the expvar view
// derives ipc and llc_miss_rate from them. A nil sampler (counters
// unavailable or not requested) leaves snapshots exactly as before.
func (r *Recorder) AttachCounters(pc *perfcount.Sampler) { r.pc.Store(pc) }

// BusyNs returns worker id's accumulated region-body time in
// nanoseconds, without allocating — the auto-tuner's feedback read.
func (r *Recorder) BusyNs(id int) int64 {
	if id < 0 || id >= len(r.workers) {
		return 0
	}
	return r.workers[id].busyNs.Load()
}

// WaitNs returns worker id's accumulated barrier-wait time in
// nanoseconds, without allocating.
func (r *Recorder) WaitNs(id int) int64 {
	if id < 0 || id >= len(r.workers) {
		return 0
	}
	return r.workers[id].waitNs.Load()
}

// Stats is a point-in-time snapshot of a Recorder, safe to serialize
// (expvar/JSON) and to read without synchronization.
type Stats struct {
	Workers       int
	Regions       uint64
	Cancellations uint64
	Panics        uint64
	BarrierWaits  uint64        // await calls that blocked
	BarrierWait   time.Duration // aggregate wait, attributed or not
	JoinWait      time.Duration // master wait at region joins
	Retunes       uint64        // auto-tuner schedule switches
	Busy          []time.Duration
	Wait          []time.Duration
	Chunks        []uint64 // per-worker scheduled-chunk claims
	Steals        []uint64 // per-worker deque steals

	// Counters is the hardware-counter snapshot when a sampler is
	// attached (AttachCounters); nil when counters are disabled or
	// unavailable.
	Counters *perfcount.Stats
}

// Snapshot captures the recorder's current counters.
func (r *Recorder) Snapshot() *Stats {
	s := &Stats{
		Workers:       len(r.workers),
		Regions:       r.regions.Load(),
		Cancellations: r.cancellations.Load(),
		Panics:        r.panics.Load(),
		BarrierWaits:  r.barrierWaits.Load(),
		BarrierWait:   time.Duration(r.barrierWaitNs.Load()),
		JoinWait:      time.Duration(r.joinNs.Load()),
		Retunes:       r.retunes.Load(),
		Busy:          make([]time.Duration, len(r.workers)),
		Wait:          make([]time.Duration, len(r.workers)),
		Chunks:        make([]uint64, len(r.workers)),
		Steals:        make([]uint64, len(r.workers)),
	}
	for i := range r.workers {
		s.Busy[i] = time.Duration(r.workers[i].busyNs.Load())
		s.Wait[i] = time.Duration(r.workers[i].waitNs.Load())
		s.Chunks[i] = r.workers[i].chunks.Load()
		s.Steals[i] = r.workers[i].steals.Load()
	}
	if pc := r.pc.Load(); pc != nil {
		s.Counters = pc.Snapshot()
	}
	return s
}

// Imbalance is the paper's load-balance diagnostic: the busiest
// worker's region time divided by the mean. 1.0 is perfect balance; the
// §5.2 CG anomaly shows up as a ratio near Workers (all work on one or
// two threads). It is 0 when no busy time has been recorded.
func (s *Stats) Imbalance() float64 {
	var max, sum time.Duration
	for _, b := range s.Busy {
		sum += b
		if b > max {
			max = b
		}
	}
	if sum <= 0 {
		return 0
	}
	mean := float64(sum) / float64(len(s.Busy))
	return float64(max) / mean
}

// MaxBusy returns the largest per-worker busy time.
func (s *Stats) MaxBusy() time.Duration {
	var max time.Duration
	for _, b := range s.Busy {
		if b > max {
			max = b
		}
	}
	return max
}

// MinBusy returns the smallest per-worker busy time.
func (s *Stats) MinBusy() time.Duration {
	if len(s.Busy) == 0 {
		return 0
	}
	min := s.Busy[0]
	for _, b := range s.Busy[1:] {
		if b < min {
			min = b
		}
	}
	return min
}

// String renders a one-look summary of the snapshot.
func (s *Stats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "regions=%d cancels=%d panics=%d imbalance=%.2f barrier=%.3fs join=%.3fs",
		s.Regions, s.Cancellations, s.Panics, s.Imbalance(),
		s.BarrierWait.Seconds(), s.JoinWait.Seconds())
	if s.Retunes > 0 {
		fmt.Fprintf(&b, " retunes=%d", s.Retunes)
	}
	for i := range s.Busy {
		fmt.Fprintf(&b, "\n  w%-2d busy=%.3fs wait=%.3fs", i, s.Busy[i].Seconds(), s.Wait[i].Seconds())
		if i < len(s.Chunks) && (s.Chunks[i] > 0 || s.Steals[i] > 0) {
			fmt.Fprintf(&b, " chunks=%d steals=%d", s.Chunks[i], s.Steals[i])
		}
	}
	if s.Counters != nil {
		fmt.Fprintf(&b, "\n  counters: %s", s.Counters)
	}
	return b.String()
}
