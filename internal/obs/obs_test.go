package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestSnapshotAndImbalance(t *testing.T) {
	r := New(4)
	r.IncRegion()
	r.IncRegion()
	r.AddBusy(0, 40*time.Millisecond)
	for id := 1; id < 4; id++ {
		r.AddBusy(id, 10*time.Millisecond)
	}
	r.AddWait(1, 5*time.Millisecond)
	r.AddWait(-1, 2*time.Millisecond) // unattributed still aggregates
	r.AddJoin(3 * time.Millisecond)
	r.IncCancel()
	r.IncPanic()

	s := r.Snapshot()
	if s.Regions != 2 || s.Cancellations != 1 || s.Panics != 1 {
		t.Fatalf("counts wrong: %+v", s)
	}
	if s.BarrierWaits != 2 || s.BarrierWait != 7*time.Millisecond {
		t.Fatalf("aggregate wait wrong: waits=%d wait=%v", s.BarrierWaits, s.BarrierWait)
	}
	if s.Wait[1] != 5*time.Millisecond {
		t.Fatalf("worker 1 wait = %v", s.Wait[1])
	}
	if s.JoinWait != 3*time.Millisecond {
		t.Fatalf("join wait = %v", s.JoinWait)
	}
	// mean busy = 70ms/4 = 17.5ms, max = 40ms -> ratio 40/17.5.
	want := 40.0 / 17.5
	if got := s.Imbalance(); got < want-1e-9 || got > want+1e-9 {
		t.Fatalf("imbalance = %v, want %v", got, want)
	}
	if s.MaxBusy() != 40*time.Millisecond || s.MinBusy() != 10*time.Millisecond {
		t.Fatalf("max/min busy = %v/%v", s.MaxBusy(), s.MinBusy())
	}
	if !strings.Contains(s.String(), "imbalance") {
		t.Fatalf("String() = %q", s.String())
	}
}

func TestOutOfRangeWorkerDropped(t *testing.T) {
	r := New(2)
	r.AddBusy(5, time.Second)  // dropped, no panic
	r.AddBusy(-1, time.Second) // dropped, no panic
	r.AddWait(9, time.Second)  // aggregate only
	s := r.Snapshot()
	if s.Busy[0] != 0 || s.Busy[1] != 0 {
		t.Fatalf("out-of-range busy leaked: %+v", s.Busy)
	}
	if s.BarrierWait != time.Second {
		t.Fatalf("aggregate wait = %v, want 1s", s.BarrierWait)
	}
}

func TestImbalanceEmpty(t *testing.T) {
	if got := New(3).Snapshot().Imbalance(); got != 0 {
		t.Fatalf("imbalance with no busy time = %v, want 0", got)
	}
}

// TestRecorderConcurrent hammers one recorder from many goroutines;
// under -race this is the lock-freedom regression test.
func TestRecorderConcurrent(t *testing.T) {
	r := New(8)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				r.IncRegion()
				r.AddBusy(w, time.Microsecond)
				r.AddWait(w, time.Microsecond)
			}
		}(w)
	}
	for i := 0; i < 100; i++ {
		_ = r.Snapshot()
	}
	wg.Wait()
	s := r.Snapshot()
	if s.Regions != 8000 {
		t.Fatalf("regions = %d, want 8000", s.Regions)
	}
	for w := 0; w < 8; w++ {
		if s.Busy[w] != time.Millisecond {
			t.Fatalf("worker %d busy = %v, want 1ms", w, s.Busy[w])
		}
	}
}

// TestServeExposesExpvarAndPprof boots the live endpoint on a free
// port, registers a recorder, and checks /debug/vars carries the
// npb.obs registry and /debug/pprof/ responds.
func TestServeExposesExpvarAndPprof(t *testing.T) {
	r := New(2)
	r.IncRegion()
	r.AddBusy(0, 2*time.Millisecond)
	r.AddBusy(1, time.Millisecond)
	Register("TEST.S.t2", r)
	defer Register("TEST.S.t2", nil)

	addr, shutdown, err := Serve("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Serve: %v", err)
	}
	defer shutdown()

	get := func(path string) []byte {
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: read: %v", path, err)
		}
		return body
	}

	var vars struct {
		Obs map[string]statsView `json:"npb.obs"`
	}
	if err := json.Unmarshal(get("/debug/vars"), &vars); err != nil {
		t.Fatalf("unmarshal /debug/vars: %v", err)
	}
	cell, ok := vars.Obs["TEST.S.t2"]
	if !ok {
		t.Fatalf("npb.obs missing registered cell: %+v", vars.Obs)
	}
	if cell.Regions != 1 || cell.Workers != 2 || cell.Imbalance <= 1 {
		t.Fatalf("cell view wrong: %+v", cell)
	}
	if body := get("/debug/pprof/"); !strings.Contains(string(body), "goroutine") {
		t.Fatalf("pprof index unexpected: %.200s", body)
	}
}

// TestServePprofSubroutes exercises the routing below /debug/pprof/:
// named profiles come through the index handler, the explicitly
// registered cmdline handler responds, and an unknown profile name is
// rejected rather than silently served as the index page.
func TestServePprofSubroutes(t *testing.T) {
	addr, shutdown, err := Serve("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Serve: %v", err)
	}
	defer shutdown()

	status := func(path string) (int, string) {
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: read: %v", path, err)
		}
		return resp.StatusCode, string(body)
	}

	if code, body := status("/debug/pprof/goroutine?debug=1"); code != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Fatalf("goroutine profile: status %d, body %.120q", code, body)
	}
	if code, _ := status("/debug/pprof/cmdline"); code != http.StatusOK {
		t.Fatalf("cmdline: status %d", code)
	}
	if code, _ := status("/debug/pprof/notaprofile"); code == http.StatusOK {
		t.Fatal("unknown profile name served 200; want an error status")
	}
	if code, _ := status("/debug/nothere"); code != http.StatusNotFound {
		t.Fatalf("unregistered path: status %d, want 404", code)
	}
}

// TestSnapshotZeroRegions pins the edge case of a recorder that never
// saw a region: every aggregate is zero (not NaN), the busy extrema
// are zero, and the rendering helpers still produce output.
func TestSnapshotZeroRegions(t *testing.T) {
	s := New(3).Snapshot()
	if s.Regions != 0 || s.BarrierWaits != 0 || s.BarrierWait != 0 || s.JoinWait != 0 {
		t.Fatalf("fresh recorder has nonzero aggregates: %+v", s)
	}
	if got := s.Imbalance(); got != 0 {
		t.Fatalf("imbalance = %v, want 0 (not NaN)", got)
	}
	if s.MaxBusy() != 0 || s.MinBusy() != 0 {
		t.Fatalf("busy extrema = %v/%v, want 0/0", s.MaxBusy(), s.MinBusy())
	}
	if s.String() == "" {
		t.Fatal("String() of an empty snapshot is empty")
	}
}

// TestRegisterReplaceAndRemove: same-name registration replaces; nil
// removes.
func TestRegisterReplaceAndRemove(t *testing.T) {
	a, b := New(1), New(1)
	b.IncRegion()
	Register("cell", a)
	Register("cell", b)
	if got := snapshotAll()["cell"].Regions; got != 1 {
		t.Fatalf("replacement not visible: regions = %d", got)
	}
	Register("cell", nil)
	if _, ok := snapshotAll()["cell"]; ok {
		t.Fatal("nil registration did not remove the cell")
	}
}
