package trace

import (
	"bytes"
	"strings"
	"testing"
)

// record plays a small two-worker run into tr: one region with both
// workers passing one traced barrier (generation 7), a pipeline stall
// on worker 1, a master phase, and a reduce.
func record(tr *Tracer) {
	tr.RegionBegin(1)
	tr.BeginPhase("sweeps")
	for id := 0; id < 2; id++ {
		tr.BlockBegin(id, 1)
		tr.BarrierArrive(id, 7)
		tr.BarrierRelease(id, 7)
	}
	tr.PipeWaitBegin(1, 0)
	tr.PipeWaitEnd(1, 0)
	tr.PipeSignal(0, 0)
	for id := 0; id < 2; id++ {
		tr.BlockEnd(id, 1)
	}
	tr.Reduce(1)
	tr.EndPhase("sweeps")
	tr.RegionEnd(1)
}

func TestSnapshotTracksAndCounts(t *testing.T) {
	tr := New(2)
	record(tr)
	s := tr.Snapshot()
	if s.Workers != 2 || len(s.Tracks) != 4 {
		t.Fatalf("got %d workers, %d tracks; want 2 workers, 4 tracks", s.Workers, len(s.Tracks))
	}
	wantNames := []string{"worker 0", "worker 1", "master", "runtime"}
	wantEvents := []int{5, 6, 5, 0} // w0 adds the pipe signal, w1 the wait pair; master: region+phase pairs + reduce
	for i, tk := range s.Tracks {
		if tk.Name != wantNames[i] {
			t.Errorf("track %d name = %q, want %q", i, tk.Name, wantNames[i])
		}
		if len(tk.Events) != wantEvents[i] {
			t.Errorf("track %q has %d events, want %d", tk.Name, len(tk.Events), wantEvents[i])
		}
		if tk.Drops != 0 {
			t.Errorf("track %q drops = %d, want 0", tk.Name, tk.Drops)
		}
	}
	if s.Events() != 16 {
		t.Errorf("Events() = %d, want 16", s.Events())
	}
	if s.Drops() != 0 {
		t.Errorf("Drops() = %d, want 0", s.Drops())
	}
}

func TestTimestampsMonotonicPerTrack(t *testing.T) {
	tr := New(2)
	record(tr)
	for _, tk := range tr.Snapshot().Tracks {
		last := int64(-1)
		for _, e := range tk.Events {
			if e.TS < last {
				t.Fatalf("track %q: ts %d < previous %d", tk.Name, e.TS, last)
			}
			last = e.TS
		}
	}
}

func TestRingDropsWhenFull(t *testing.T) {
	tr := New(1, WithCapacity(4))
	for i := 0; i < 10; i++ {
		tr.BlockBegin(0, uint64(i))
	}
	s := tr.Snapshot()
	w := s.Tracks[0]
	if len(w.Events) != 4 {
		t.Fatalf("kept %d events, want the 4-event prefix", len(w.Events))
	}
	if w.Drops != 6 {
		t.Fatalf("drops = %d, want 6", w.Drops)
	}
	// The prefix is complete: the first four emits, in order.
	for i, e := range w.Events {
		if e.ID != uint64(i) {
			t.Fatalf("event %d has ID %d, want %d (prefix not preserved)", i, e.ID, i)
		}
	}
}

func TestOutOfRangeWorkerLandsOnRuntimeTrack(t *testing.T) {
	tr := New(2)
	tr.Panic(99)
	tr.Panic(-1)
	s := tr.Snapshot()
	if n := len(s.Tracks[3].Events); n != 2 {
		t.Fatalf("runtime track has %d events, want 2 (clamped ids)", n)
	}
	if n := len(s.Tracks[0].Events) + len(s.Tracks[1].Events); n != 0 {
		t.Fatalf("worker tracks have %d events, want 0", n)
	}
}

func TestWriteChromeRoundTrip(t *testing.T) {
	tr := New(2)
	record(tr)
	tr.Cancel("deadline")
	var buf bytes.Buffer
	if err := tr.Snapshot().WriteChrome(&buf, "TEST.S t2"); err != nil {
		t.Fatal(err)
	}
	info, err := Validate(buf.Bytes())
	if err != nil {
		t.Fatalf("exported trace fails own validation: %v", err)
	}
	if info.FlowStarts < 1 || info.FlowEnds < 1 {
		t.Fatalf("barrier flow events missing: %d starts, %d ends", info.FlowStarts, info.FlowEnds)
	}
	names := map[string]bool{}
	for _, tk := range info.Tracks {
		names[tk.Name] = true
	}
	for _, want := range []string{"worker 0", "worker 1", "master"} {
		if !names[want] {
			t.Errorf("exported trace has no track named %q (tracks: %v)", want, names)
		}
	}
	if !strings.Contains(buf.String(), `"TEST.S t2"`) {
		t.Error("process label missing from export")
	}
}

func TestWriteChromeClosesTruncatedSpans(t *testing.T) {
	// Capacity 3 records BlockBegin+BarrierArrive and then drops
	// everything, leaving two spans open on a track with drops; the
	// exporter must close them so the file stays loadable.
	tr := New(1, WithCapacity(2))
	tr.BlockBegin(0, 1)
	tr.BarrierArrive(0, 1)
	tr.BarrierRelease(0, 1) // dropped
	tr.BlockEnd(0, 1)       // dropped
	s := tr.Snapshot()
	if s.Drops() == 0 {
		t.Fatal("test setup: expected drops")
	}
	var buf bytes.Buffer
	if err := s.WriteChrome(&buf, ""); err != nil {
		t.Fatal(err)
	}
	if _, err := Validate(buf.Bytes()); err != nil {
		t.Fatalf("truncated trace fails validation: %v", err)
	}
	if !strings.Contains(buf.String(), `"truncated":true`) {
		t.Error("synthetic closes not marked truncated")
	}
}

func TestUnpairedSpanFailsValidation(t *testing.T) {
	// On a track without drops an unclosed span is an instrumentation
	// bug, and the pipeline must say so rather than emit a broken file.
	tr := New(1)
	tr.BlockBegin(0, 1) // never ended
	var buf bytes.Buffer
	if err := tr.Snapshot().WriteChrome(&buf, ""); err != nil {
		t.Fatal(err)
	}
	if _, err := Validate(buf.Bytes()); err == nil {
		t.Fatal("unclosed span validated; want an error")
	}
}

func TestSummaryListsTracks(t *testing.T) {
	tr := New(2)
	record(tr)
	sum := tr.Snapshot().Summary()
	for _, want := range []string{"worker 0", "worker 1", "master", "2 workers"} {
		if !strings.Contains(sum, want) {
			t.Errorf("summary missing %q:\n%s", want, sum)
		}
	}
}

func TestNewClampsWorkers(t *testing.T) {
	tr := New(0)
	if tr.Workers() != 1 {
		t.Fatalf("Workers() = %d, want 1", tr.Workers())
	}
}
