// Validation of exported Chrome/Perfetto trace JSON: the self-check
// behind the trace tests, the CI smoke job and cmd/npbtrace. It parses
// a trace-event file and enforces the invariants the exporter
// guarantees — so a violation means an instrumentation bug (an
// unpaired Begin, a span crossing another) rather than a malformed
// file.
package trace

import (
	"encoding/json"
	"fmt"
	"sort"
)

// TrackInfo summarizes one validated track.
type TrackInfo struct {
	TID      int
	Name     string
	Events   int     // slice + instant events (flow events counted globally)
	Slices   int     // completed B/E pairs
	Instants int     // "i" events
	FirstUS  float64 // first event timestamp, microseconds
	LastUS   float64 // last event timestamp, microseconds
}

// FileInfo is the result of a successful validation.
type FileInfo struct {
	Tracks     []TrackInfo // ordered by tid
	FlowStarts int         // barrier flow "s" events
	FlowEnds   int         // barrier flow "f" events
	Events     int         // total events of all phases
}

// Validate parses data as Chrome trace-event JSON and checks, per
// track: that every B has a matching E with the same name (strict
// stack discipline, so spans nest and never cross), and that slice and
// instant timestamps are monotonically non-decreasing in file order.
// Across tracks it checks that every flow start has at least one flow
// finish with the same id and vice versa. It returns per-track
// statistics on success.
func Validate(data []byte) (*FileInfo, error) {
	var file struct {
		TraceEvents []chromeEvent `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &file); err != nil {
		return nil, fmt.Errorf("trace: parsing: %w", err)
	}
	if len(file.TraceEvents) == 0 {
		return nil, fmt.Errorf("trace: no events")
	}

	type trackState struct {
		info   TrackInfo
		stack  []string
		lastTS float64
		seen   bool
	}
	tracks := map[int]*trackState{}
	track := func(tid int) *trackState {
		st, ok := tracks[tid]
		if !ok {
			st = &trackState{info: TrackInfo{TID: tid}}
			tracks[tid] = st
		}
		return st
	}

	flowStarts := map[string]int{}
	flowEnds := map[string]int{}
	info := &FileInfo{}

	for i, e := range file.TraceEvents {
		info.Events++
		switch e.Ph {
		case "M": // metadata
			if e.Name == "thread_name" {
				if name, ok := e.Args["name"].(string); ok {
					track(e.TID).info.Name = name
				}
			}
		case "B", "E", "i":
			st := track(e.TID)
			if st.seen && e.TS < st.lastTS {
				return nil, fmt.Errorf("trace: event %d (tid %d %q ph=%s): timestamp %.3f < previous %.3f — not monotonic",
					i, e.TID, e.Name, e.Ph, e.TS, st.lastTS)
			}
			st.lastTS, st.seen = e.TS, true
			if !st.info.seenFirst() {
				st.info.FirstUS = e.TS
			}
			st.info.LastUS = e.TS
			st.info.Events++
			switch e.Ph {
			case "B":
				st.stack = append(st.stack, e.Name)
			case "E":
				if len(st.stack) == 0 {
					return nil, fmt.Errorf("trace: event %d (tid %d): E %q with no open span", i, e.TID, e.Name)
				}
				top := st.stack[len(st.stack)-1]
				if e.Name != "" && e.Name != top {
					return nil, fmt.Errorf("trace: event %d (tid %d): E %q closes open span %q — spans cross", i, e.TID, e.Name, top)
				}
				st.stack = st.stack[:len(st.stack)-1]
				st.info.Slices++
			case "i":
				st.info.Instants++
			}
		case "s":
			if e.ID == "" {
				return nil, fmt.Errorf("trace: event %d: flow start without id", i)
			}
			flowStarts[e.ID]++
			info.FlowStarts++
		case "f":
			if e.ID == "" {
				return nil, fmt.Errorf("trace: event %d: flow finish without id", i)
			}
			flowEnds[e.ID]++
			info.FlowEnds++
		default:
			return nil, fmt.Errorf("trace: event %d: unknown phase %q", i, e.Ph)
		}
	}

	for tid, st := range tracks {
		if len(st.stack) > 0 {
			return nil, fmt.Errorf("trace: tid %d (%s): %d span(s) never closed (innermost %q)",
				tid, st.info.Name, len(st.stack), st.stack[len(st.stack)-1])
		}
	}
	for id := range flowStarts {
		if flowEnds[id] == 0 {
			return nil, fmt.Errorf("trace: flow %s started but never finished", id)
		}
	}
	for id := range flowEnds {
		if flowStarts[id] == 0 {
			return nil, fmt.Errorf("trace: flow %s finished but never started", id)
		}
	}

	tids := make([]int, 0, len(tracks))
	for tid := range tracks {
		tids = append(tids, tid)
	}
	sort.Ints(tids)
	for _, tid := range tids {
		info.Tracks = append(info.Tracks, tracks[tid].info)
	}
	return info, nil
}

// seenFirst reports whether the track has recorded its first event.
func (t *TrackInfo) seenFirst() bool { return t.Events > 0 }

// String renders the validation result as a short per-track table.
func (fi *FileInfo) String() string {
	s := fmt.Sprintf("valid trace: %d events, %d flow links", fi.Events, fi.FlowStarts)
	for _, tr := range fi.Tracks {
		name := tr.Name
		if name == "" {
			name = fmt.Sprintf("tid %d", tr.TID)
		}
		s += fmt.Sprintf("\n  %-9s events=%-6d slices=%-5d instants=%-4d span=%.3fms",
			name, tr.Events, tr.Slices, tr.Instants, (tr.LastUS-tr.FirstUS)/1e3)
	}
	return s
}
