// Package trace is the execution tracer of the runtime: timestamped
// per-worker event timelines recorded into fixed-capacity ring buffers,
// exportable as Chrome/Perfetto trace-event JSON and as a plain-text
// timeline summary.
//
// The obs layer answers "how much time did worker w spend busy and
// waiting"; this package answers *when*. The paper's diagnoses all hang
// on timeline reasoning — CG's thread placement (§5.2) showed up as two
// processors doing all the work, LU's pipelined SSOR sweeps stall
// workers at per-plane synchronization, IS gives each thread too little
// work between barriers — and a timeline turns "LU scales poorly" into
// "worker 7 spent 40% of iteration k parked at the pipeline".
//
// The tracer follows the obs.Recorder engineering contract: a team
// without a tracer pays one nil pointer check per instrumentation
// point, and a team with one pays a clock read plus an atomic slot
// claim and a plain struct store into a cache-line-padded per-worker
// ring — no locks, no allocation on the hot path. Rings have fixed
// capacity; once a ring is full further events are counted as drops
// rather than recorded, so a trace is always a complete prefix of the
// run (begin/end pairing is validated on export, and a truncated trace
// is detectable from the drop counters).
//
// Tracks and writers: worker w's events are recorded only by the
// goroutine running worker w, the master track only by the goroutine
// driving the team's regions, and the runtime track is reserved for
// asynchronous events (cancellation from a context watcher). Keeping
// each ring single-writer is what guarantees per-track timestamp
// monotonicity without any ordering machinery.
package trace

import (
	"sync/atomic"
	"time"
)

// Kind classifies one trace event.
type Kind uint8

// Event kinds. Begin/End kinds open and close spans and must pair and
// nest strictly within one track; the remaining kinds are instants.
const (
	KindRegionBegin    Kind = iota + 1 // master: parallel region forked
	KindRegionEnd                      // master: region join complete
	KindBlockBegin                     // worker: region body started
	KindBlockEnd                       // worker: region body finished
	KindBarrierArrive                  // worker: arrived at an id-attributed barrier
	KindBarrierRelease                 // worker: released from that barrier
	KindPipeWaitBegin                  // worker: blocked on a pipeline token
	KindPipeWaitEnd                    // worker: pipeline token consumed
	KindPipeSignal                     // worker instant: pipeline token posted
	KindReduce                         // master instant: reduction combined
	KindCancel                         // runtime instant: team cancelled
	KindPanic                          // worker instant: panic captured
	KindPhaseBegin                     // master: named benchmark phase started
	KindPhaseEnd                       // master: named benchmark phase finished
	KindChunk                          // worker instant: scheduled loop chunk claimed
	KindSteal                          // worker instant: chunk stolen from another worker's deque
	KindRetune                         // master instant: auto-tuner switched schedule
)

// String returns the short event-kind label used by the exporters.
func (k Kind) String() string {
	switch k {
	case KindRegionBegin, KindRegionEnd:
		return "region"
	case KindBlockBegin, KindBlockEnd:
		return "work"
	case KindBarrierArrive, KindBarrierRelease:
		return "barrier"
	case KindPipeWaitBegin, KindPipeWaitEnd:
		return "pipeline wait"
	case KindPipeSignal:
		return "pipeline post"
	case KindReduce:
		return "reduce"
	case KindCancel:
		return "cancel"
	case KindPanic:
		return "panic"
	case KindPhaseBegin, KindPhaseEnd:
		return "phase"
	case KindChunk:
		return "chunk"
	case KindSteal:
		return "steal"
	case KindRetune:
		return "retune"
	}
	return "?"
}

// Event is one timestamped trace record. Worker identity is implied by
// the ring the event sits in, so the struct stays small enough that a
// ring slot is one store.
type Event struct {
	TS   int64  // nanoseconds since the tracer epoch (monotonic clock)
	ID   uint64 // correlation id: region sequence, barrier generation, pipeline token
	Kind Kind
	Name string // phase name or cancellation reason; "" for most kinds
}

// ring is one track's buffer, padded so concurrent tracks never
// false-share the claim counters.
type ring struct {
	_      [64]byte
	pos    atomic.Uint64 // total emit attempts; valid events are [0, min(pos, cap))
	_      [56]byte
	events []Event
}

func (r *ring) emit(e Event) {
	idx := r.pos.Add(1) - 1
	if idx >= uint64(len(r.events)) {
		return // ring full: counted as a drop, never recorded
	}
	r.events[idx] = e
}

// Tracer records event timelines for one team: one ring per worker,
// one master ring for region/phase/reduce events, and one runtime ring
// for asynchronous events. A nil *Tracer is the disabled state; the
// instrumented code checks the pointer, exactly like obs.Recorder.
type Tracer struct {
	rings []ring // workers 0..n-1, then master, then runtime
	n     int
	epoch time.Time
}

// DefaultCapacity is the per-track event capacity used by New unless
// WithCapacity overrides it. At ~48 bytes per event the default costs
// about 3 MiB per track — enough for every class-S and most class-W
// runs; larger runs truncate and report drops.
const DefaultCapacity = 1 << 16

// Option configures a Tracer at construction.
type Option func(*config)

type config struct{ capacity int }

// WithCapacity sets the per-track ring capacity in events (>= 1).
func WithCapacity(events int) Option {
	return func(c *config) {
		if events >= 1 {
			c.capacity = events
		}
	}
}

// New creates a tracer for a team of the given worker count (>= 1).
// The epoch — timestamp zero — is the moment of creation.
func New(workers int, opts ...Option) *Tracer {
	if workers < 1 {
		workers = 1
	}
	cfg := config{capacity: DefaultCapacity}
	for _, o := range opts {
		o(&cfg)
	}
	t := &Tracer{
		rings: make([]ring, workers+2),
		n:     workers,
		epoch: time.Now(),
	}
	for i := range t.rings {
		t.rings[i].events = make([]Event, cfg.capacity)
	}
	return t
}

// Workers returns the worker count the tracer was sized for.
func (t *Tracer) Workers() int { return t.n }

func (t *Tracer) now() int64 { return int64(time.Since(t.epoch)) }

// worker clamps id to a valid worker ring so an out-of-range id can
// never crash the runtime (the obs.Recorder drop-don't-panic stance);
// out-of-range events land on the runtime ring instead.
func (t *Tracer) ring(id int) *ring {
	if id < 0 || id >= t.n {
		return &t.rings[t.n+1]
	}
	return &t.rings[id]
}

func (t *Tracer) master() *ring  { return &t.rings[t.n] }
func (t *Tracer) runtime() *ring { return &t.rings[t.n+1] }

// RegionBegin marks the master forking parallel region seq.
func (t *Tracer) RegionBegin(seq uint64) {
	t.master().emit(Event{TS: t.now(), ID: seq, Kind: KindRegionBegin})
}

// RegionEnd marks the master completing region seq's join.
func (t *Tracer) RegionEnd(seq uint64) {
	t.master().emit(Event{TS: t.now(), ID: seq, Kind: KindRegionEnd})
}

// BlockBegin marks worker id starting its body of region seq.
func (t *Tracer) BlockBegin(id int, seq uint64) {
	t.ring(id).emit(Event{TS: t.now(), ID: seq, Kind: KindBlockBegin})
}

// BlockEnd marks worker id finishing its body of region seq.
func (t *Tracer) BlockEnd(id int, seq uint64) {
	t.ring(id).emit(Event{TS: t.now(), ID: seq, Kind: KindBlockEnd})
}

// BarrierArrive marks worker id arriving at the barrier trip with
// generation gen. Only id-attributed barriers (Team.BarrierID) are
// traced; an unattributed Team.Barrier has no worker ring to land on.
func (t *Tracer) BarrierArrive(id int, gen uint64) {
	t.ring(id).emit(Event{TS: t.now(), ID: gen, Kind: KindBarrierArrive})
}

// BarrierRelease marks worker id leaving barrier generation gen —
// released by the last arriver, or unwound by poisoning; either way the
// arrive span closes.
func (t *Tracer) BarrierRelease(id int, gen uint64) {
	t.ring(id).emit(Event{TS: t.now(), ID: gen, Kind: KindBarrierRelease})
}

// PipeWaitBegin marks worker id blocking for pipeline token tok.
func (t *Tracer) PipeWaitBegin(id int, tok uint64) {
	t.ring(id).emit(Event{TS: t.now(), ID: tok, Kind: KindPipeWaitBegin})
}

// PipeWaitEnd marks worker id consuming pipeline token tok.
func (t *Tracer) PipeWaitEnd(id int, tok uint64) {
	t.ring(id).emit(Event{TS: t.now(), ID: tok, Kind: KindPipeWaitEnd})
}

// PipeSignal marks worker id posting pipeline token tok (instant).
func (t *Tracer) PipeSignal(id int, tok uint64) {
	t.ring(id).emit(Event{TS: t.now(), ID: tok, Kind: KindPipeSignal})
}

// Chunk marks worker id claiming chunk ordinal c of a dynamically
// scheduled loop — the Perfetto-visible pulse of the chunk traffic the
// obs chunk counters total up.
func (t *Tracer) Chunk(id int, c uint64) {
	t.ring(id).emit(Event{TS: t.now(), ID: c, Kind: KindChunk})
}

// Steal marks worker id taking a chunk from worker victim's deque under
// the stealing schedule.
func (t *Tracer) Steal(id int, victim uint64) {
	t.ring(id).emit(Event{TS: t.now(), ID: victim, Kind: KindSteal})
}

// Retune marks the auto-tuner switching the team's loop schedule; name
// is the new schedule's name.
func (t *Tracer) Retune(name string) {
	t.master().emit(Event{TS: t.now(), Kind: KindRetune, Name: name})
}

// Reduce marks the master combining the partials of region seq.
func (t *Tracer) Reduce(seq uint64) {
	t.master().emit(Event{TS: t.now(), ID: seq, Kind: KindReduce})
}

// Cancel marks the team's (first) cancellation. It may be called from
// any goroutine — a context watcher, typically — so it records on the
// runtime track, never a worker's.
func (t *Tracer) Cancel(reason string) {
	t.runtime().emit(Event{TS: t.now(), Kind: KindCancel, Name: reason})
}

// Panic marks a panic captured on worker id.
func (t *Tracer) Panic(id int) {
	t.ring(id).emit(Event{TS: t.now(), Kind: KindPanic})
}

// BeginPhase opens a named benchmark phase span on the master track
// (the per-phase brackets of the paper's profile tables: "sweeps",
// "t_conj_grad", ...). Phases must strictly nest and must be closed by
// EndPhase with the same name on the same goroutine; the tracepair
// npblint analyzer enforces the pairing for literal names.
func (t *Tracer) BeginPhase(name string) {
	t.master().emit(Event{TS: t.now(), Kind: KindPhaseBegin, Name: name})
}

// EndPhase closes the innermost open phase span named name.
func (t *Tracer) EndPhase(name string) {
	t.master().emit(Event{TS: t.now(), Kind: KindPhaseEnd, Name: name})
}

// Track is one timeline of a Snapshot.
type Track struct {
	Name   string // "worker 0", ..., "master", "runtime"
	Events []Event
	Drops  uint64 // events lost to ring capacity
}

// Snapshot is a copied, read-only view of the tracer's rings, safe to
// export and serialize. Take it only when the traced team is quiescent
// (after the run's regions have joined): ring slots are plain stores,
// so a snapshot concurrent with recording would race.
type Snapshot struct {
	Workers int
	Epoch   time.Time
	Tracks  []Track // Workers worker tracks, then master, then runtime
}

// Snapshot copies the recorded prefix of every ring.
func (t *Tracer) Snapshot() *Snapshot {
	s := &Snapshot{Workers: t.n, Epoch: t.epoch, Tracks: make([]Track, len(t.rings))}
	for i := range t.rings {
		r := &t.rings[i]
		pos := r.pos.Load()
		n := pos
		if cap := uint64(len(r.events)); n > cap {
			s.Tracks[i].Drops = n - cap
			n = cap
		}
		s.Tracks[i].Events = append([]Event(nil), r.events[:n]...)
		switch {
		case i < t.n:
			s.Tracks[i].Name = workerName(i)
		case i == t.n:
			s.Tracks[i].Name = "master"
		default:
			s.Tracks[i].Name = "runtime"
		}
	}
	return s
}

// Drops returns the total number of events lost to ring capacity
// across all tracks.
func (s *Snapshot) Drops() uint64 {
	var d uint64
	for _, tr := range s.Tracks {
		d += tr.Drops
	}
	return d
}

// Events returns the total number of recorded events across all tracks.
func (s *Snapshot) Events() int {
	n := 0
	for _, tr := range s.Tracks {
		n += len(tr.Events)
	}
	return n
}
