// Optional runtime/trace integration: when the process is being traced
// with the Go execution tracer (go test -trace, or the /debug/pprof/
// trace endpoint obs.Serve exposes), benchmark runs are annotated as
// runtime/trace tasks and parallel regions as runtime/trace regions,
// so `go tool trace` shows NPB phases on the same timeline as the
// scheduler's goroutine view — where a thread-placement anomaly like
// the paper's §5.2 actually lives. When the Go tracer is off both
// helpers reduce to one atomic load.
package trace

import (
	"context"
	rt "runtime/trace"
)

func noop() {}

// StartTask opens a runtime/trace task for one benchmark run (name is
// the cell, e.g. "LU.S.t4") and returns the task context and an end
// function. A no-op unless Go execution tracing is active.
func StartTask(ctx context.Context, name string) (context.Context, func()) {
	if !rt.IsEnabled() {
		return ctx, noop
	}
	ctx, task := rt.NewTask(ctx, name)
	return ctx, task.End
}

// StartRegion opens a runtime/trace region on the calling goroutine
// and returns its end function; begin and end must happen on the same
// goroutine. A no-op unless Go execution tracing is active.
func StartRegion(name string) func() {
	if !rt.IsEnabled() {
		return noop
	}
	return rt.StartRegion(context.Background(), name).End
}
