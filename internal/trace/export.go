// Chrome/Perfetto trace-event-format export and the plain-text
// timeline summary.
//
// The JSON exporter emits the classic trace-event format — an object
// with a "traceEvents" array of B/E duration slices, "i" instants and
// s/f flow events — which both chrome://tracing and ui.perfetto.dev
// open directly. One timeline track is produced per worker plus a
// master track (regions, phases, reductions) and a runtime track
// (asynchronous cancellation); barrier trips are linked with flow
// arrows from the last arriver — the worker that tripped the barrier —
// to every released waiter, so a stall chain reads straight off the UI.
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// chromeEvent is one trace-event-format record. ts is in microseconds
// (fractional), per the format spec.
type chromeEvent struct {
	Name string         `json:"name,omitempty"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	ID   string         `json:"id,omitempty"`
	BP   string         `json:"bp,omitempty"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

const chromePID = 1

func workerName(id int) string { return fmt.Sprintf("worker %d", id) }

func usec(ns int64) float64 { return float64(ns) / 1e3 }

// spanName returns the slice label for a begin event.
func spanName(e Event) string {
	if e.Kind == KindPhaseBegin || e.Kind == KindPhaseEnd {
		return e.Name
	}
	return e.Kind.String()
}

// argsFor attaches the correlation id under a kind-appropriate key.
func argsFor(e Event) map[string]any {
	switch e.Kind {
	case KindRegionBegin, KindBlockBegin, KindReduce:
		return map[string]any{"seq": e.ID}
	case KindBarrierArrive:
		return map[string]any{"gen": e.ID}
	case KindPipeWaitBegin, KindPipeSignal:
		return map[string]any{"token": e.ID}
	case KindChunk:
		return map[string]any{"chunk": e.ID}
	case KindSteal:
		return map[string]any{"victim": e.ID}
	case KindRetune:
		if e.Name != "" {
			return map[string]any{"schedule": e.Name}
		}
	case KindCancel:
		if e.Name != "" {
			return map[string]any{"reason": e.Name}
		}
	}
	return nil
}

// isBegin/isEnd classify the span-opening and span-closing kinds.
func isBegin(k Kind) bool {
	switch k {
	case KindRegionBegin, KindBlockBegin, KindBarrierArrive, KindPipeWaitBegin, KindPhaseBegin:
		return true
	}
	return false
}

func isEnd(k Kind) bool {
	switch k {
	case KindRegionEnd, KindBlockEnd, KindBarrierRelease, KindPipeWaitEnd, KindPhaseEnd:
		return true
	}
	return false
}

// WriteChrome writes the snapshot as Chrome/Perfetto trace-event JSON.
// label names the process in the UI (typically "BENCH.C.tN").
//
// Tracks with drops are truncated prefixes; their spans still open at
// truncation are closed synthetically at the track's last timestamp
// (marked args.truncated) so the file stays loadable and validatable.
// On a track without drops an unpaired span is a real instrumentation
// bug, and Validate will report it.
func (s *Snapshot) WriteChrome(w io.Writer, label string) error {
	var evs []chromeEvent
	if label == "" {
		label = "npbgo"
	}
	evs = append(evs, chromeEvent{
		Name: "process_name", Ph: "M", PID: chromePID,
		Args: map[string]any{"name": label},
	})

	for tid, tr := range s.Tracks {
		evs = append(evs, chromeEvent{
			Name: "thread_name", Ph: "M", PID: chromePID, TID: tid,
			Args: map[string]any{"name": tr.Name},
		})
		evs = append(evs, trackEvents(tid, tr)...)
	}
	evs = append(evs, s.barrierFlows()...)

	if _, err := io.WriteString(w, `{"displayTimeUnit":"ns","traceEvents":[`); err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	for i, e := range evs {
		if i > 0 {
			if _, err := io.WriteString(w, ","); err != nil {
				return err
			}
		}
		buf, err := json.Marshal(e)
		if err != nil {
			return err
		}
		if _, err := w.Write(buf); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "]}\n")
	return err
}

// trackEvents converts one track's events, closing truncated spans.
func trackEvents(tid int, tr Track) []chromeEvent {
	var out []chromeEvent
	type open struct{ name string }
	var stack []open
	var lastTS int64
	for _, e := range tr.Events {
		lastTS = e.TS
		switch {
		case isBegin(e.Kind):
			stack = append(stack, open{spanName(e)})
			out = append(out, chromeEvent{
				Name: spanName(e), Cat: e.Kind.String(), Ph: "B",
				TS: usec(e.TS), PID: chromePID, TID: tid, Args: argsFor(e),
			})
		case isEnd(e.Kind):
			if len(stack) > 0 {
				stack = stack[:len(stack)-1]
			}
			out = append(out, chromeEvent{
				Name: spanName(e), Cat: e.Kind.String(), Ph: "E",
				TS: usec(e.TS), PID: chromePID, TID: tid,
			})
		default:
			out = append(out, chromeEvent{
				Name: e.Kind.String(), Cat: e.Kind.String(), Ph: "i", S: "t",
				TS: usec(e.TS), PID: chromePID, TID: tid, Args: argsFor(e),
			})
		}
	}
	// A truncated track (ring filled mid-span) closes its open spans at
	// the last recorded instant, innermost first.
	if tr.Drops > 0 {
		for i := len(stack) - 1; i >= 0; i-- {
			out = append(out, chromeEvent{
				Name: stack[i].name, Ph: "E", TS: usec(lastTS),
				PID: chromePID, TID: tid,
				Args: map[string]any{"truncated": true},
			})
		}
	}
	return out
}

// barrierFlows links each barrier trip: a flow start at the last
// arriver (the worker whose arrival tripped the barrier) and a flow
// finish at every other released worker.
func (s *Snapshot) barrierFlows() []chromeEvent {
	type point struct {
		tid int
		ts  int64
	}
	arrives := map[uint64][]point{}
	releases := map[uint64][]point{}
	for tid := 0; tid < s.Workers; tid++ {
		for _, e := range s.Tracks[tid].Events {
			switch e.Kind {
			case KindBarrierArrive:
				arrives[e.ID] = append(arrives[e.ID], point{tid, e.TS})
			case KindBarrierRelease:
				releases[e.ID] = append(releases[e.ID], point{tid, e.TS})
			}
		}
	}
	gens := make([]uint64, 0, len(arrives))
	for gen := range arrives {
		gens = append(gens, gen)
	}
	sort.Slice(gens, func(i, j int) bool { return gens[i] < gens[j] })

	var out []chromeEvent
	for _, gen := range gens {
		arr := arrives[gen]
		tripper := arr[0]
		for _, p := range arr[1:] {
			if p.ts > tripper.ts {
				tripper = p
			}
		}
		var fins []point
		for _, p := range releases[gen] {
			if p.tid != tripper.tid {
				fins = append(fins, p)
			}
		}
		// A trip with no cross-worker release — a single-worker barrier,
		// or the releases lost to ring truncation — gets no arrow; a
		// flow start with no finish would fail validation.
		if len(fins) == 0 {
			continue
		}
		id := fmt.Sprintf("%d", gen)
		out = append(out, chromeEvent{
			Name: "barrier", Cat: "barrier", Ph: "s", ID: id,
			TS: usec(tripper.ts), PID: chromePID, TID: tripper.tid,
		})
		for _, p := range fins {
			out = append(out, chromeEvent{
				Name: "barrier", Cat: "barrier", Ph: "f", BP: "e", ID: id,
				TS: usec(p.ts), PID: chromePID, TID: p.tid,
			})
		}
	}
	return out
}

// trackStats aggregates one track's timeline for the text summary.
type trackStats struct {
	events           int
	spans            int
	work, wait, pipe time.Duration
	panics           int
}

func statsOf(tr Track) trackStats {
	var st trackStats
	st.events = len(tr.Events)
	type open struct {
		kind Kind
		ts   int64
	}
	var stack []open
	for _, e := range tr.Events {
		switch {
		case isBegin(e.Kind):
			stack = append(stack, open{e.Kind, e.TS})
		case isEnd(e.Kind):
			if len(stack) == 0 {
				continue
			}
			top := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			st.spans++
			d := time.Duration(e.TS - top.ts)
			switch top.kind {
			case KindBlockBegin, KindRegionBegin:
				st.work += d
			case KindBarrierArrive:
				st.wait += d
			case KindPipeWaitBegin:
				st.pipe += d
			}
		case e.Kind == KindPanic:
			st.panics++
		}
	}
	return st
}

// Summary renders the plain-text timeline digest: per track, the event
// and span counts, the time split between computing and the two wait
// states, and the drop count — the one-glance version of the Perfetto
// view, printable at the end of a sweep cell.
func (s *Snapshot) Summary() string {
	var b strings.Builder
	first, last := s.bounds()
	fmt.Fprintf(&b, "trace: %d workers, %d events, %d dropped, span %.3fs",
		s.Workers, s.Events(), s.Drops(), time.Duration(last-first).Seconds())
	for _, tr := range s.Tracks {
		st := statsOf(tr)
		if st.events == 0 && tr.Drops == 0 {
			continue
		}
		fmt.Fprintf(&b, "\n  %-9s events=%-6d spans=%-5d work=%.3fs barrier=%.3fs pipeline=%.3fs",
			tr.Name, st.events, st.spans, st.work.Seconds(), st.wait.Seconds(), st.pipe.Seconds())
		if st.panics > 0 {
			fmt.Fprintf(&b, " panics=%d", st.panics)
		}
		if tr.Drops > 0 {
			fmt.Fprintf(&b, " dropped=%d", tr.Drops)
		}
	}
	return b.String()
}

// bounds returns the first and last recorded timestamps.
func (s *Snapshot) bounds() (first, last int64) {
	set := false
	for _, tr := range s.Tracks {
		for _, e := range tr.Events {
			if !set || e.TS < first {
				first = e.TS
			}
			if !set || e.TS > last {
				last = e.TS
			}
			set = true
		}
	}
	return first, last
}
