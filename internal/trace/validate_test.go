package trace

import (
	"strings"
	"testing"
)

// Validate is the contract the exporter, the CI smoke job and npbtrace
// rely on; these cases pin down that it actually rejects each class of
// malformed file.
func TestValidateRejectsMalformed(t *testing.T) {
	cases := []struct {
		name string
		json string
		want string // substring of the error
	}{
		{
			"unclosed span",
			`{"traceEvents":[{"ph":"B","ts":1,"pid":1,"tid":0,"name":"work"}]}`,
			"never closed",
		},
		{
			"end without begin",
			`{"traceEvents":[{"ph":"E","ts":1,"pid":1,"tid":0,"name":"work"}]}`,
			"no open span",
		},
		{
			"crossing spans",
			`{"traceEvents":[
				{"ph":"B","ts":1,"pid":1,"tid":0,"name":"a"},
				{"ph":"B","ts":2,"pid":1,"tid":0,"name":"b"},
				{"ph":"E","ts":3,"pid":1,"tid":0,"name":"a"},
				{"ph":"E","ts":4,"pid":1,"tid":0,"name":"b"}]}`,
			"spans cross",
		},
		{
			"non-monotonic track",
			`{"traceEvents":[
				{"ph":"B","ts":5,"pid":1,"tid":0,"name":"a"},
				{"ph":"E","ts":3,"pid":1,"tid":0,"name":"a"}]}`,
			"not monotonic",
		},
		{
			"dangling flow start",
			`{"traceEvents":[
				{"ph":"i","ts":1,"pid":1,"tid":0,"s":"t","name":"x"},
				{"ph":"s","ts":1,"pid":1,"tid":0,"id":"9","name":"barrier"}]}`,
			"never finished",
		},
		{
			"dangling flow finish",
			`{"traceEvents":[
				{"ph":"i","ts":1,"pid":1,"tid":0,"s":"t","name":"x"},
				{"ph":"f","ts":1,"pid":1,"tid":0,"bp":"e","id":"9","name":"barrier"}]}`,
			"never started",
		},
		{
			"flow without id",
			`{"traceEvents":[{"ph":"s","ts":1,"pid":1,"tid":0,"name":"barrier"}]}`,
			"without id",
		},
		{
			"unknown phase",
			`{"traceEvents":[{"ph":"X","ts":1,"pid":1,"tid":0}]}`,
			"unknown phase",
		},
		{
			"empty file",
			`{"traceEvents":[]}`,
			"no events",
		},
		{
			"not json",
			`]`,
			"parsing",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Validate([]byte(tc.json))
			if err == nil {
				t.Fatalf("validated; want error containing %q", tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not contain %q", err, tc.want)
			}
		})
	}
}

func TestValidateAcceptsWellFormed(t *testing.T) {
	// An anonymous E ("") may close any span: the truncation closer
	// emits named Es, but viewers accept both, and so does Validate.
	data := `{"displayTimeUnit":"ns","traceEvents":[
		{"ph":"M","pid":1,"ts":0,"tid":0,"name":"thread_name","args":{"name":"worker 0"}},
		{"ph":"B","ts":1,"pid":1,"tid":0,"name":"work"},
		{"ph":"i","ts":2,"pid":1,"tid":0,"s":"t","name":"reduce"},
		{"ph":"E","ts":3,"pid":1,"tid":0,"name":""},
		{"ph":"s","ts":3,"pid":1,"tid":0,"id":"4","name":"barrier"},
		{"ph":"f","ts":4,"pid":1,"tid":1,"bp":"e","id":"4","name":"barrier"}]}`
	info, err := Validate([]byte(data))
	if err != nil {
		t.Fatal(err)
	}
	if info.Events != 6 || info.FlowStarts != 1 || info.FlowEnds != 1 {
		t.Fatalf("got events=%d flows=%d/%d, want 6, 1/1", info.Events, info.FlowStarts, info.FlowEnds)
	}
	tk := info.Tracks[0]
	if tk.Name != "worker 0" || tk.Slices != 1 || tk.Instants != 1 {
		t.Fatalf("track info = %+v, want worker 0 with 1 slice, 1 instant", tk)
	}
	if !strings.Contains(info.String(), "worker 0") {
		t.Errorf("String() missing track name:\n%s", info)
	}
}
