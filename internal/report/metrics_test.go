package report

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestWriteJSONLRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	rec := CellMetrics{
		Benchmark:  "cg",
		Class:      "S",
		Threads:    4,
		Elapsed:    1.25,
		Mops:       42.0,
		Verified:   true,
		Regions:    100,
		WorkerBusy: []float64{1.0, 0.9, 1.1, 1.0},
		Imbalance:  1.1,
		TopPhases:  []PhaseMetric{{Name: "t_conj_grad", Seconds: 1.2, Laps: 15}},
	}
	if err := WriteJSONL(&buf, rec); err != nil {
		t.Fatalf("WriteJSONL: %v", err)
	}
	line := buf.String()
	if !strings.HasSuffix(line, "\n") || strings.Count(line, "\n") != 1 {
		t.Fatalf("not exactly one line: %q", line)
	}
	var back CellMetrics
	if err := json.Unmarshal([]byte(line), &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if back.Benchmark != "cg" || back.Threads != 4 || back.Imbalance != 1.1 {
		t.Fatalf("round trip mismatch: %+v", back)
	}
	if len(back.TopPhases) != 1 || back.TopPhases[0].Laps != 15 {
		t.Fatalf("phases lost: %+v", back.TopPhases)
	}
}

func TestWriteJSONLOmitsDisabledObs(t *testing.T) {
	var buf bytes.Buffer
	rec := CellMetrics{Benchmark: "ep", Class: "S", Threads: 1, Verified: true}
	if err := WriteJSONL(&buf, rec); err != nil {
		t.Fatalf("WriteJSONL: %v", err)
	}
	s := buf.String()
	for _, key := range []string{"regions", "worker_busy_sec", "imbalance", "top_phases", "error"} {
		if strings.Contains(s, key) {
			t.Fatalf("disabled-obs record should omit %q: %s", key, s)
		}
	}
}
