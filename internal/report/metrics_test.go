package report

import (
	"bytes"
	"encoding/json"
	"os"
	"strings"
	"testing"
)

func TestWriteJSONLRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	rec := CellMetrics{
		Benchmark:  "cg",
		Class:      "S",
		Threads:    4,
		Elapsed:    1.25,
		Mops:       42.0,
		Verified:   true,
		Regions:    100,
		WorkerBusy: []float64{1.0, 0.9, 1.1, 1.0},
		Imbalance:  1.1,
		TopPhases:  []PhaseMetric{{Name: "t_conj_grad", Seconds: 1.2, Laps: 15}},
	}
	if err := WriteJSONL(&buf, rec); err != nil {
		t.Fatalf("WriteJSONL: %v", err)
	}
	line := buf.String()
	if !strings.HasSuffix(line, "\n") || strings.Count(line, "\n") != 1 {
		t.Fatalf("not exactly one line: %q", line)
	}
	var back CellMetrics
	if err := json.Unmarshal([]byte(line), &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if back.Benchmark != "cg" || back.Threads != 4 || back.Imbalance != 1.1 {
		t.Fatalf("round trip mismatch: %+v", back)
	}
	if len(back.TopPhases) != 1 || back.TopPhases[0].Laps != 15 {
		t.Fatalf("phases lost: %+v", back.TopPhases)
	}
}

// benchFixture is a two-cell record used by the writer/reader tests.
func benchFixture() BenchRecord {
	return BenchRecord{
		Schema:     BenchSchema,
		Stamp:      "20260801T120000Z",
		Class:      "S",
		GoMaxProcs: 4,
		NumCPU:     8,
		Cells: []CellMetrics{
			{Benchmark: "CG", Class: "S", Threads: 0, Elapsed: 0.40, Mops: 160,
				Verified: true, Attempts: 3, Samples: []float64{0.42, 0.40, 0.41}},
			{Benchmark: "CG", Class: "S", Threads: 2, Elapsed: 0.24, Mops: 270,
				Verified: true, Attempts: 3, Samples: []float64{0.24, 0.25, 0.26},
				Imbalance: 1.02, BarrierWait: 0.03},
		},
	}
}

func TestReadBenchRecordsRoundTripBenchJSON(t *testing.T) {
	var buf bytes.Buffer
	want := benchFixture()
	if err := WriteBenchJSON(&buf, want); err != nil {
		t.Fatalf("WriteBenchJSON: %v", err)
	}
	recs, err := ReadBenchRecords(&buf)
	if err != nil {
		t.Fatalf("ReadBenchRecords: %v", err)
	}
	if len(recs) != 1 {
		t.Fatalf("got %d records, want 1", len(recs))
	}
	got := recs[0]
	if got.Stamp != want.Stamp || got.GoMaxProcs != 4 || len(got.Cells) != 2 {
		t.Fatalf("round trip mismatch: %+v", got)
	}
	if !strings.Contains(got.Schema, "npbgo/bench") {
		t.Fatalf("schema lost: %q", got.Schema)
	}
	if s := got.Cells[0].Samples; len(s) != 3 || s[0] != 0.42 {
		t.Fatalf("samples lost: %+v", s)
	}
}

func TestReadBenchRecordsConcatenatedStream(t *testing.T) {
	// Two records in one stream — indented then JSONL — as produced by
	// `cat results/BENCH_*.json`.
	var buf bytes.Buffer
	if err := WriteBenchJSON(&buf, benchFixture()); err != nil {
		t.Fatal(err)
	}
	second := benchFixture()
	second.Stamp = "20260802T000000Z"
	if err := WriteJSONL(&buf, second); err != nil {
		t.Fatal(err)
	}
	recs, err := ReadBenchRecords(&buf)
	if err != nil {
		t.Fatalf("ReadBenchRecords: %v", err)
	}
	if len(recs) != 2 || recs[1].Stamp != "20260802T000000Z" {
		t.Fatalf("stream decode mismatch: %d records", len(recs))
	}
}

func TestReadBenchRecordsRejectsUnknownSchema(t *testing.T) {
	rec := benchFixture()
	rec.Schema = "npbgo/bench/v999"
	var buf bytes.Buffer
	if err := WriteBenchJSON(&buf, rec); err != nil {
		t.Fatal(err)
	}
	_, err := ReadBenchRecords(&buf)
	if err == nil {
		t.Fatal("unknown schema accepted")
	}
	if !strings.Contains(err.Error(), "npbgo/bench/v999") || !strings.Contains(err.Error(), BenchSchema) {
		t.Fatalf("error should name found and supported schemas: %v", err)
	}
}

func TestReadBenchRecordsEmptyInput(t *testing.T) {
	if _, err := ReadBenchRecords(strings.NewReader("")); err == nil {
		t.Fatal("empty input accepted")
	}
	if _, err := ReadBenchRecords(strings.NewReader("{not json")); err == nil {
		t.Fatal("malformed input accepted")
	}
}

func TestReadBenchRecordsGoldenFixture(t *testing.T) {
	f, err := os.Open("testdata/bench_v1.json")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	recs, err := ReadBenchRecords(f)
	if err != nil {
		t.Fatalf("golden fixture must stay readable (schema %s): %v", BenchSchema, err)
	}
	if len(recs) != 1 {
		t.Fatalf("got %d records", len(recs))
	}
	rec := recs[0]
	if rec.Class != "S" || len(rec.Cells) != 8 {
		t.Fatalf("fixture shape changed: class=%q cells=%d", rec.Class, len(rec.Cells))
	}
	var sampled, failed int
	for _, c := range rec.Cells {
		if len(c.Samples) > 0 {
			sampled++
		}
		if c.Error != "" {
			failed++
		}
	}
	if sampled != 7 || failed != 1 {
		t.Fatalf("fixture cells: %d sampled, %d failed", sampled, failed)
	}
}

func TestWriteJSONLOmitsDisabledObs(t *testing.T) {
	var buf bytes.Buffer
	rec := CellMetrics{Benchmark: "ep", Class: "S", Threads: 1, Verified: true}
	if err := WriteJSONL(&buf, rec); err != nil {
		t.Fatalf("WriteJSONL: %v", err)
	}
	s := buf.String()
	for _, key := range []string{"regions", "worker_busy_sec", "imbalance", "top_phases", "error"} {
		if strings.Contains(s, key) {
			t.Fatalf("disabled-obs record should omit %q: %s", key, s)
		}
	}
}

// TestReadBenchRecordsTruncatedTailFixture reads the checked-in
// crash-cut history file: two complete JSONL records followed by a
// record torn mid-object, exactly what a kill -9 during an append
// leaves behind. The complete records must come back; the torn tail
// must be dropped, not turned into an error.
func TestReadBenchRecordsTruncatedTailFixture(t *testing.T) {
	f, err := os.Open("testdata/bench_truncated.jsonl")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	recs, err := ReadBenchRecords(f)
	if err != nil {
		t.Fatalf("truncated tail not tolerated: %v", err)
	}
	if len(recs) != 2 {
		t.Fatalf("got %d records, want the 2 complete ones", len(recs))
	}
	if recs[0].Stamp != "20260805T100000Z" || recs[1].Stamp != "20260805T110000Z" {
		t.Fatalf("wrong records survived: %s, %s", recs[0].Stamp, recs[1].Stamp)
	}
}

// TestReadBenchRecordsTruncatedEverywhere sweeps every cut point of a
// two-record stream: a cut inside the second record yields the first; a
// cut inside the first (no complete record) is an error; no cut point
// may panic or fabricate a record.
func TestReadBenchRecordsTruncatedEverywhere(t *testing.T) {
	var buf bytes.Buffer
	first := benchFixture()
	if err := WriteJSONL(&buf, first); err != nil {
		t.Fatal(err)
	}
	firstLen := buf.Len()
	second := benchFixture()
	second.Stamp = "20260802T000000Z"
	if err := WriteJSONL(&buf, second); err != nil {
		t.Fatal(err)
	}
	whole := buf.Bytes()
	// A cut keeping the first record's closing brace (firstLen-1 strips
	// only its newline) leaves one complete record.
	for cut := 1; cut < len(whole)-1; cut++ {
		recs, err := ReadBenchRecords(bytes.NewReader(whole[:cut]))
		if cut < firstLen-1 {
			if err == nil {
				t.Fatalf("cut %d inside the first record accepted with %d records", cut, len(recs))
			}
			continue
		}
		if err != nil {
			t.Fatalf("cut %d after a complete record rejected: %v", cut, err)
		}
		if len(recs) != 1 || recs[0].Stamp != first.Stamp {
			t.Fatalf("cut %d returned %d records", cut, len(recs))
		}
	}
}

// TestReadBenchRecordsMidStreamCorruptionStillFatal: tolerance is for
// the tail only — garbage between records means the file is damaged,
// and must stay a loud error.
func TestReadBenchRecordsMidStreamCorruptionStillFatal(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, benchFixture()); err != nil {
		t.Fatal(err)
	}
	buf.WriteString("]]not json[[\n")
	if err := WriteJSONL(&buf, benchFixture()); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadBenchRecords(&buf); err == nil {
		t.Fatal("mid-stream corruption accepted")
	}
}
