package report

import (
	"strings"
	"testing"
)

func TestTableAlignment(t *testing.T) {
	tb := New("Title", "Name", "Time")
	tb.AddRow("BT.A", "1.23")
	tb.AddRow("LongBenchmarkName.C", "456")
	s := tb.String()
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if lines[0] != "Title" {
		t.Fatalf("first line %q", lines[0])
	}
	// Header, separator, two rows.
	if len(lines) != 5 {
		t.Fatalf("got %d lines: %q", len(lines), s)
	}
	if !strings.HasPrefix(lines[1], "Name") {
		t.Fatalf("header line %q", lines[1])
	}
	if !strings.Contains(lines[2], "---") {
		t.Fatalf("separator line %q", lines[2])
	}
	// Both data rows should end at the same column (right-aligned 2nd col).
	if len(lines[3]) != len(lines[4]) {
		t.Fatalf("rows not aligned: %q vs %q", lines[3], lines[4])
	}
}

func TestAddf(t *testing.T) {
	tb := New("", "a", "b")
	tb.Addf("x", 3.14159)
	if !strings.Contains(tb.String(), "3.14") {
		t.Fatalf("float not formatted: %q", tb.String())
	}
	if tb.NumRows() != 1 {
		t.Fatalf("NumRows = %d", tb.NumRows())
	}
}

func TestRowsWiderThanHeader(t *testing.T) {
	tb := New("", "only")
	tb.AddRow("a", "b", "c")
	s := tb.String()
	if !strings.Contains(s, "c") {
		t.Fatalf("extra cells dropped: %q", s)
	}
}

func TestSecondsFormatting(t *testing.T) {
	cases := map[float64]string{
		123.4:  "123",
		12.34:  "12.3",
		1.234:  "1.23",
		0.1234: "0.123",
	}
	for in, want := range cases {
		if got := Seconds(in); got != want {
			t.Fatalf("Seconds(%v) = %q, want %q", in, got, want)
		}
	}
}

func TestSpeedup(t *testing.T) {
	if Speedup(6.789) != "6.79" {
		t.Fatalf("Speedup = %q", Speedup(6.789))
	}
}
