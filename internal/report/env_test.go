package report

import (
	"os"
	"path/filepath"
	"runtime"
	"testing"
)

func TestCollectEnv(t *testing.T) {
	env := CollectEnv()
	if env.GoVersion != runtime.Version() {
		t.Fatalf("GoVersion = %q, want %q", env.GoVersion, runtime.Version())
	}
	if env.GoMaxProcs < 1 || env.NumCPU < 1 {
		t.Fatalf("GoMaxProcs = %d, NumCPU = %d, want >= 1", env.GoMaxProcs, env.NumCPU)
	}
	if env.GOGC == "" {
		t.Fatal("GOGC empty: unset must report the documented default")
	}
	// On this CI platform procfs exists, so the kernel release must be
	// populated; CPUModel may legitimately be empty on some arm64 hosts.
	if _, err := os.Stat("/proc/sys/kernel/osrelease"); err == nil && env.Kernel == "" {
		t.Fatal("Kernel empty despite procfs being available")
	}
}

func TestGOGCSetting(t *testing.T) {
	t.Setenv("GOGC", "")
	if got := gogcSetting(); got != "100" {
		t.Fatalf("unset GOGC = %q, want the documented default \"100\"", got)
	}
	t.Setenv("GOGC", "off")
	if got := gogcSetting(); got != "off" {
		t.Fatalf("GOGC=off reported as %q", got)
	}
}

func TestEnvComparable(t *testing.T) {
	// The isolate protocol suppresses per-cell env copies via ==; a
	// slice or map field would turn that into a compile error, but guard
	// the semantic too: two snapshots of the same process are equal.
	if a, b := CollectEnv(), CollectEnv(); a != b {
		t.Fatalf("two snapshots of one process differ: %+v vs %+v", a, b)
	}
}

func TestCPUModelParsing(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "cpuinfo")
	const cpuinfo = "processor\t: 0\nvendor_id\t: GenuineIntel\nmodel name\t: Intel(R) Xeon(R) CPU @ 2.20GHz\nprocessor\t: 1\nmodel name\t: ignored second entry\n"
	if err := os.WriteFile(path, []byte(cpuinfo), 0o644); err != nil {
		t.Fatal(err)
	}
	if got := cpuModel(path); got != "Intel(R) Xeon(R) CPU @ 2.20GHz" {
		t.Fatalf("cpuModel = %q", got)
	}
	if got := cpuModel(filepath.Join(dir, "missing")); got != "" {
		t.Fatalf("missing file should degrade to empty, got %q", got)
	}
	if got := firstLine(filepath.Join(dir, "missing")); got != "" {
		t.Fatalf("firstLine on missing file = %q", got)
	}
}
