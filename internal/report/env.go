// Environment provenance: the host facts that make performance records
// comparable — or incomparable — across machines. A bench record's
// Mop/s, counters and profiles only mean something relative to the Go
// toolchain, the GC setting, the kernel and the silicon they ran on, so
// every record carries them in its header (and, under subprocess
// isolation, each cell can carry the environment of the child that
// actually executed it, if that ever differs from the parent's).
package report

import (
	"bufio"
	"os"
	"runtime"
	"strings"
)

// EnvInfo is one execution environment. All fields are scalars so two
// EnvInfo values compare with ==; the isolate protocol relies on that
// to suppress per-cell copies identical to the record header.
type EnvInfo struct {
	GoVersion  string `json:"go_version"`
	GoMaxProcs int    `json:"gomaxprocs"`
	NumCPU     int    `json:"numcpu"`
	// GOGC is the garbage-collector target the process started under
	// ("100" when the variable is unset — the runtime default; "off"
	// disables collection).
	GOGC string `json:"gogc"`
	// Kernel is the running kernel release (/proc/sys/kernel/osrelease);
	// empty where the proc interface is unavailable.
	Kernel string `json:"kernel,omitempty"`
	// CPUModel is the first "model name" of /proc/cpuinfo; empty where
	// unavailable (some arm64 kernels expose no model name).
	CPUModel string `json:"cpu_model,omitempty"`
}

// CollectEnv snapshots the current process's environment.
func CollectEnv() EnvInfo {
	return EnvInfo{
		GoVersion:  runtime.Version(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		GOGC:       gogcSetting(),
		Kernel:     firstLine("/proc/sys/kernel/osrelease"),
		CPUModel:   cpuModel("/proc/cpuinfo"),
	}
}

// gogcSetting reports the GOGC value the runtime started with; unset
// means the documented default of 100.
func gogcSetting() string {
	if v := os.Getenv("GOGC"); v != "" {
		return v
	}
	return "100"
}

// firstLine reads the first line of a proc-style one-line file, "" on
// any failure (provenance degrades to absence, never to an error — a
// record from a platform without procfs is still a record).
func firstLine(path string) string {
	data, err := os.ReadFile(path)
	if err != nil {
		return ""
	}
	line, _, _ := strings.Cut(string(data), "\n")
	return strings.TrimSpace(line)
}

// cpuModel extracts the first "model name" value of a cpuinfo file.
func cpuModel(path string) string {
	f, err := os.Open(path)
	if err != nil {
		return ""
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		key, val, ok := strings.Cut(sc.Text(), ":")
		if !ok {
			continue
		}
		if strings.TrimSpace(key) == "model name" {
			return strings.TrimSpace(val)
		}
	}
	return ""
}
