// Structured per-cell metrics records: one JSON object per (benchmark,
// class, threads) cell, written as JSON Lines so sweeps can be appended
// to a single file and post-processed with standard tooling. The record
// carries the obs-layer runtime counters (per-worker busy and
// barrier-wait time, imbalance ratio) next to the headline numbers, so
// a load-balance anomaly like the paper's §5.2 CG scheduling problem is
// visible in the same row as the slowdown it causes.
package report

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"npbgo/internal/perfcount"
)

// PhaseMetric is one named phase of a run profile.
type PhaseMetric struct {
	Name    string  `json:"name"`
	Seconds float64 `json:"seconds"`
	Laps    int     `json:"laps,omitempty"`
}

// CellMetrics is the structured record for one sweep cell.
type CellMetrics struct {
	Benchmark string  `json:"benchmark"`
	Class     string  `json:"class"`
	Threads   int     `json:"threads"` // 0 = serial reference
	Elapsed   float64 `json:"elapsed_sec"`
	Mops      float64 `json:"mops"`
	Verified  bool    `json:"verified"`
	Attempts  int     `json:"attempts,omitempty"`
	Error     string  `json:"error,omitempty"`
	// Schedule is the team loop schedule the cell ran under; empty means
	// static (also the value on records written before schedules
	// existed, which is accurate — they all ran static).
	Schedule string `json:"schedule,omitempty"`

	// Samples holds every repeat's elapsed time in seconds, in run
	// order. Elapsed stays the best (minimum) repeat for back-compat;
	// the full distribution is what noise-aware comparison (perfstat)
	// needs — a single best-of-N number cannot carry a confidence
	// interval. Empty on records written before repeats were retained.
	Samples []float64 `json:"samples_sec,omitempty"`

	// Obs-layer runtime counters; zero-valued when obs was disabled.
	Regions       uint64    `json:"regions,omitempty"`
	Cancellations uint64    `json:"cancellations,omitempty"`
	Panics        uint64    `json:"panics,omitempty"`
	WorkerBusy    []float64 `json:"worker_busy_sec,omitempty"`
	WorkerWait    []float64 `json:"worker_barrier_wait_sec,omitempty"`
	BarrierWait   float64   `json:"barrier_wait_sec,omitempty"`
	JoinWait      float64   `json:"join_wait_sec,omitempty"`
	Imbalance     float64   `json:"imbalance,omitempty"`

	TopPhases []PhaseMetric `json:"top_phases,omitempty"`

	// Counters is the hardware-counter attribution for the cell when
	// sampling was enabled and available: run totals (cycles,
	// instructions, LLC loads/misses, branch misses, task clock) plus
	// the per-worker split. Additive: absent on records written before
	// counters existed and on runs without -counters.
	Counters *perfcount.Stats `json:"counters,omitempty"`
	// CountersNote records why Counters is absent when counters were
	// *requested* but could not be collected ("unavailable (<reason>)"),
	// so a missing measurement is always distinguishable from silent
	// zeros.
	CountersNote string `json:"counters_note,omitempty"`

	// CPUProfile/HeapProfile are the per-cell pprof files captured when
	// the sweep ran with profiling enabled (-profile), as written by the
	// harness — the inputs `npbperf hotspots` decodes. A failed or
	// killed cell keeps whatever it flushed before dying; absent on runs
	// without profiling.
	CPUProfile  string `json:"cpu_profile,omitempty"`
	HeapProfile string `json:"heap_profile,omitempty"`

	// Env is the environment of the process that actually executed the
	// cell, recorded only when it differs from the record header's Env —
	// under subprocess isolation the child stamps its own and the parent
	// forwards it here if the two ever disagree.
	Env *EnvInfo `json:"env,omitempty"`
}

// BenchSchema identifies the BenchRecord layout; bump it when the
// record shape changes incompatibly so downstream tooling can dispatch.
const BenchSchema = "npbgo/bench/v1"

// BenchRecord is the machine-readable performance trajectory of one
// suite sweep: every cell's headline numbers (Mop/s, elapsed time,
// thread count, imbalance) under a stamped header describing the host.
// One file per sweep (results/BENCH_<stamp>.json) accumulates into a
// perf history that can be diffed across commits — the paper's tables,
// but for trend tooling instead of eyeballs.
type BenchRecord struct {
	Schema     string `json:"schema"` // BenchSchema
	Stamp      string `json:"stamp"`  // UTC, 20060102T150405Z
	Class      string `json:"class"`
	GoMaxProcs int    `json:"gomaxprocs"`
	NumCPU     int    `json:"numcpu"`
	// Env is the recording host's provenance (Go version, GOGC, kernel,
	// CPU model), stamped so profiles and counters stay comparable —
	// or visibly incomparable — across machines. Additive: absent on
	// records written before provenance existed.
	Env   *EnvInfo      `json:"env,omitempty"`
	Cells []CellMetrics `json:"cells"`
}

// WriteBenchJSON writes rec as indented JSON (one record per file, so
// indentation costs nothing and keeps the history reviewable).
func WriteBenchJSON(w io.Writer, rec BenchRecord) error {
	return writeIndentedJSON(w, rec)
}

// writeIndentedJSON is the shared one-record writer behind every
// indented record schema.
func writeIndentedJSON(w io.Writer, v any) error {
	buf, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	_, err = w.Write(buf)
	return err
}

// WriteJSONL writes v as one JSON line.
func WriteJSONL(w io.Writer, v any) error {
	buf, err := json.Marshal(v)
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	_, err = w.Write(buf)
	return err
}

// ReadBenchRecords decodes every BenchRecord in r, accepting both the
// indented one-record-per-file layout of WriteBenchJSON and streams of
// concatenated/JSONL records (so `cat results/BENCH_*.json` pipes
// straight in). Each record's schema is dispatched against BenchSchema;
// an unknown schema is a hard error naming both the found and the
// supported version, so stale tooling fails loudly instead of
// misreading a future layout. An input with no records is an error —
// every caller wants at least one.
//
// A record cut off by the end of the input is tolerated: a crash (or a
// kill -9) mid-append leaves exactly one torn record at the tail of an
// append-mode history file, and the complete records before it are
// still good data. The torn tail is dropped; corruption anywhere
// earlier in the stream stays a hard error, because it means the file
// was damaged, not merely interrupted.
func ReadBenchRecords(r io.Reader) ([]BenchRecord, error) {
	return readRecordStream[BenchRecord](r, "bench", BenchSchema,
		func(rec *BenchRecord) string { return rec.Schema })
}

// readRecordStream is the shared loader behind every record schema:
// decode a stream of JSON records, dispatch each record's schema stamp
// against the one supported version, tolerate exactly one crash-torn
// record at the tail, and treat an empty input as an error.
func readRecordStream[T any](r io.Reader, kind, want string, schema func(*T) string) ([]T, error) {
	dec := json.NewDecoder(r)
	var out []T
	for {
		var rec T
		if err := dec.Decode(&rec); err == io.EOF {
			break
		} else if errors.Is(err, io.ErrUnexpectedEOF) {
			if len(out) == 0 {
				return nil, fmt.Errorf("report: input is one truncated %s record (crash-cut before any record completed)", kind)
			}
			return out, nil
		} else if err != nil {
			return nil, fmt.Errorf("report: %s record %d: %w", kind, len(out)+1, err)
		}
		if got := schema(&rec); got != want {
			return nil, fmt.Errorf("report: %s record %d: unknown schema %q (this tool reads %q)",
				kind, len(out)+1, got, want)
		}
		out = append(out, rec)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("report: no %s records in input", kind)
	}
	return out, nil
}
