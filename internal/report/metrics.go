// Structured per-cell metrics records: one JSON object per (benchmark,
// class, threads) cell, written as JSON Lines so sweeps can be appended
// to a single file and post-processed with standard tooling. The record
// carries the obs-layer runtime counters (per-worker busy and
// barrier-wait time, imbalance ratio) next to the headline numbers, so
// a load-balance anomaly like the paper's §5.2 CG scheduling problem is
// visible in the same row as the slowdown it causes.
package report

import (
	"encoding/json"
	"io"
)

// PhaseMetric is one named phase of a run profile.
type PhaseMetric struct {
	Name    string  `json:"name"`
	Seconds float64 `json:"seconds"`
	Laps    int     `json:"laps,omitempty"`
}

// CellMetrics is the structured record for one sweep cell.
type CellMetrics struct {
	Benchmark string  `json:"benchmark"`
	Class     string  `json:"class"`
	Threads   int     `json:"threads"` // 0 = serial reference
	Elapsed   float64 `json:"elapsed_sec"`
	Mops      float64 `json:"mops"`
	Verified  bool    `json:"verified"`
	Attempts  int     `json:"attempts,omitempty"`
	Error     string  `json:"error,omitempty"`

	// Obs-layer runtime counters; zero-valued when obs was disabled.
	Regions       uint64    `json:"regions,omitempty"`
	Cancellations uint64    `json:"cancellations,omitempty"`
	Panics        uint64    `json:"panics,omitempty"`
	WorkerBusy    []float64 `json:"worker_busy_sec,omitempty"`
	WorkerWait    []float64 `json:"worker_barrier_wait_sec,omitempty"`
	BarrierWait   float64   `json:"barrier_wait_sec,omitempty"`
	JoinWait      float64   `json:"join_wait_sec,omitempty"`
	Imbalance     float64   `json:"imbalance,omitempty"`

	TopPhases []PhaseMetric `json:"top_phases,omitempty"`
}

// BenchSchema identifies the BenchRecord layout; bump it when the
// record shape changes incompatibly so downstream tooling can dispatch.
const BenchSchema = "npbgo/bench/v1"

// BenchRecord is the machine-readable performance trajectory of one
// suite sweep: every cell's headline numbers (Mop/s, elapsed time,
// thread count, imbalance) under a stamped header describing the host.
// One file per sweep (results/BENCH_<stamp>.json) accumulates into a
// perf history that can be diffed across commits — the paper's tables,
// but for trend tooling instead of eyeballs.
type BenchRecord struct {
	Schema     string        `json:"schema"` // BenchSchema
	Stamp      string        `json:"stamp"`  // UTC, 20060102T150405Z
	Class      string        `json:"class"`
	GoMaxProcs int           `json:"gomaxprocs"`
	NumCPU     int           `json:"numcpu"`
	Cells      []CellMetrics `json:"cells"`
}

// WriteBenchJSON writes rec as indented JSON (one record per file, so
// indentation costs nothing and keeps the history reviewable).
func WriteBenchJSON(w io.Writer, rec BenchRecord) error {
	buf, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	_, err = w.Write(buf)
	return err
}

// WriteJSONL writes v as one JSON line.
func WriteJSONL(w io.Writer, v any) error {
	buf, err := json.Marshal(v)
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	_, err = w.Write(buf)
	return err
}
