// Package report renders the paper-style text tables (benchmark times
// per thread count, basic-operation times, LU decomposition classes)
// with aligned columns, so the harness output can be compared
// side-by-side with the tables in the paper.
package report

import (
	"fmt"
	"strings"
)

// Table is a simple aligned text table.
type Table struct {
	Title  string
	Header []string
	rows   [][]string
}

// New creates a table with a title and column headers.
func New(title string, header ...string) *Table {
	return &Table{Title: title, Header: header}
}

// AddRow appends a row; missing cells render empty, extra cells extend
// the width bookkeeping.
func (t *Table) AddRow(cells ...string) {
	t.rows = append(t.rows, cells)
}

// Addf appends a row of formatted cells: each argument is rendered with
// %v unless it is a float64, which uses %.2f.
func (t *Table) Addf(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.AddRow(row...)
}

// NumRows reports how many data rows the table has.
func (t *Table) NumRows() int { return len(t.rows) }

// String renders the table.
func (t *Table) String() string {
	ncol := len(t.Header)
	for _, r := range t.rows {
		if len(r) > ncol {
			ncol = len(r)
		}
	}
	width := make([]int, ncol)
	for i, h := range t.Header {
		width[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}

	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	line := func(cells []string) {
		for i := 0; i < ncol; i++ {
			c := ""
			if i < len(cells) {
				c = cells[i]
			}
			if i == 0 {
				fmt.Fprintf(&b, "%-*s", width[i], c)
			} else {
				fmt.Fprintf(&b, "  %*s", width[i], c)
			}
		}
		b.WriteByte('\n')
	}
	if len(t.Header) > 0 {
		line(t.Header)
		total := 0
		for _, w := range width {
			total += w + 2
		}
		b.WriteString(strings.Repeat("-", total-2))
		b.WriteByte('\n')
	}
	for _, r := range t.rows {
		line(r)
	}
	return b.String()
}

// Seconds formats a duration in seconds the way the paper's tables do.
func Seconds(s float64) string {
	switch {
	case s >= 100:
		return fmt.Sprintf("%.0f", s)
	case s >= 10:
		return fmt.Sprintf("%.1f", s)
	case s >= 1:
		return fmt.Sprintf("%.2f", s)
	default:
		return fmt.Sprintf("%.3f", s)
	}
}

// Speedup formats a speedup/efficiency ratio.
func Speedup(r float64) string { return fmt.Sprintf("%.2f", r) }
