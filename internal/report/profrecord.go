// The hotspot record schema (npbgo/profile/v1): the machine-readable
// output of `npbperf hotspots`, one record per analyzed bench record
// with one cell per decoded profile. It sits beside the bench schema
// the same way the journal schema does — a stamped, versioned layout
// that downstream tooling dispatches on instead of guessing.
package report

import (
	"io"

	"npbgo/internal/profile"
)

// ProfileSchema identifies the ProfileRecord layout; bump on
// incompatible change.
const ProfileSchema = "npbgo/profile/v1"

// ProfileCell is the hot-function attribution of one sweep cell,
// cross-referenced with the cell's runtime diagnostics: the hotspot
// table says *where* the time went, Imbalance and IPC say *why* — a
// single row reads "CG spends 61% in sparseMatVec, IPC 0.8, imbalance
// 1.02".
type ProfileCell struct {
	Benchmark string `json:"benchmark"`
	Class     string `json:"class"`
	Threads   int    `json:"threads"` // 0 = serial reference
	Schedule  string `json:"schedule,omitempty"`
	// Profile is the decoded pprof file, as recorded in the bench cell.
	Profile string `json:"profile"`
	// Type/Unit/Total/Samples mirror the aggregated dimension
	// (cpu/nanoseconds for CPU tables, alloc_space/bytes for heap).
	Type    string `json:"type,omitempty"`
	Unit    string `json:"unit,omitempty"`
	Total   int64  `json:"total,omitempty"`
	Samples int    `json:"samples,omitempty"`
	// AttributedPct is the share of the profile whose stacks touch
	// symbolized npbgo/internal/... code.
	AttributedPct float64 `json:"attributed_pct,omitempty"`
	// Imbalance and IPC are joined from the cell's obs and perfcount
	// records (zero when the sweep ran without -obs/-counters).
	Imbalance float64 `json:"imbalance,omitempty"`
	IPC       float64 `json:"ipc,omitempty"`
	// Note records why Functions is empty when the profile could not be
	// decoded (missing file, capture cut by a hard kill, ...) — absence
	// with a reason, never silently.
	Note      string             `json:"note,omitempty"`
	Functions []profile.FuncStat `json:"functions,omitempty"`
}

// ProfileRecord is the hotspot view of one bench record.
type ProfileRecord struct {
	Schema string        `json:"schema"` // ProfileSchema
	Stamp  string        `json:"stamp"`  // the source bench record's stamp
	Cells  []ProfileCell `json:"cells"`
}

// WriteProfileJSON writes rec as indented JSON, one record per call,
// mirroring WriteBenchJSON.
func WriteProfileJSON(w io.Writer, rec ProfileRecord) error {
	return writeIndentedJSON(w, rec)
}

// ReadProfileRecords decodes every ProfileRecord in r under the same
// stream conventions as ReadBenchRecords: indented or JSONL layouts,
// hard schema dispatch, one crash-torn tail record tolerated, empty
// input rejected.
func ReadProfileRecords(r io.Reader) ([]ProfileRecord, error) {
	return readRecordStream[ProfileRecord](r, "profile", ProfileSchema,
		func(rec *ProfileRecord) string { return rec.Schema })
}
