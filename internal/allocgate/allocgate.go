// Package allocgate is the dynamic half of the suite's allocation
// discipline: it measures the steady-state heap allocations of every
// benchmark's Iter hook and asserts them against the checked-in
// budgets in budgets.go. The static half is the hotalloc analyzer
// (internal/analysis/hotalloc), which proves by inspection that the
// hot region bodies contain no allocation sites; this package proves
// the same thing by measurement, catching what the analyzer cannot see
// (allocations inside callees, lazily built state, compiler-inserted
// escapes).
//
// Each gate builds a benchmark, runs a few warm-up iterations so every
// lazily constructed structure (cached pipelines, reused teams) exists,
// then measures allocations per Iter with testing.AllocsPerRun. Field
// values are irrelevant to the measurement — allocation counts in
// these kernels do not depend on the data — so the gates run Iter on
// freshly constructed (zero-valued) grids rather than reproducing each
// benchmark's untimed setup phase.
package allocgate

import (
	"fmt"
	"testing"

	"npbgo/internal/bt"
	"npbgo/internal/cg"
	"npbgo/internal/ep"
	"npbgo/internal/ft"
	"npbgo/internal/is"
	"npbgo/internal/lu"
	"npbgo/internal/mg"
	"npbgo/internal/perfcount"
	"npbgo/internal/sp"
	"npbgo/internal/team"
)

// Threads is the team size every gate measures at. Two workers is the
// smallest size that exercises the parallel paths (closure hand-off to
// worker goroutines, pipelines, partial-sum reduction); n=1 short
// circuits them.
const Threads = 2

// Key identifies one gated configuration.
type Key struct {
	Bench string // "cg", "ep", "ft", "is", "is-buckets", "mg", "lu", "bt", "sp"
	Class byte   // 'S' or 'W'
}

func (k Key) String() string { return fmt.Sprintf("%s.%c", k.Bench, k.Class) }

// Measure builds benchmark k.Bench at class k.Class, warms its
// steady-state hook with warm iterations, then returns the average
// allocations per Iter over runs measured iterations (via
// testing.AllocsPerRun, which pins GOMAXPROCS to 1 for the
// measurement).
func Measure(k Key, warm, runs int) (float64, error) {
	iter, err := newIter(k)
	if err != nil {
		return 0, err
	}
	tm := team.New(Threads)
	defer tm.Close()
	for i := 0; i < warm; i++ {
		iter(tm)
	}
	return testing.AllocsPerRun(runs, func() { iter(tm) }), nil
}

// MeasureCounters measures the steady-state allocations of one sampled
// parallel region: a team with a software perf-event sampler attached
// (the same group-read path the hardware sets use) runs warm regions,
// then allocations per region are averaged over runs measurements. The
// budget is zero — RegionStart/RegionEnd must read into the groups'
// hoisted buffers, never the heap — so turning -counters on cannot
// perturb the allocation discipline it is meant to diagnose. Where perf
// events are unavailable the *perfcount.UnavailableError is returned
// for the caller to skip on.
func MeasureCounters(warm, runs int) (float64, error) {
	pc, err := perfcount.NewSoftware(Threads)
	if err != nil {
		return 0, err
	}
	tm := team.New(Threads, team.WithCounters(pc))
	defer func() {
		tm.Close()
		pc.Close()
	}()
	region := func() {
		tm.Run(func(id int) {})
	}
	for i := 0; i < warm; i++ {
		region()
	}
	return testing.AllocsPerRun(runs, region), nil
}

// newIter constructs the benchmark behind k and returns its Iter hook.
func newIter(k Key) (func(tm *team.Team), error) {
	switch k.Bench {
	case "cg":
		b, err := cg.New(k.Class, Threads)
		if err != nil {
			return nil, err
		}
		return func(tm *team.Team) { b.Iter(tm) }, nil
	case "ep":
		b, err := ep.New(k.Class, Threads)
		if err != nil {
			return nil, err
		}
		return b.Iter, nil
	case "ft":
		b, err := ft.New(k.Class, Threads)
		if err != nil {
			return nil, err
		}
		return func(tm *team.Team) { b.Iter(tm) }, nil
	case "is":
		b, err := is.New(k.Class, Threads)
		if err != nil {
			return nil, err
		}
		return b.Iter, nil
	case "is-buckets":
		b, err := is.New(k.Class, Threads, is.WithBuckets())
		if err != nil {
			return nil, err
		}
		return b.Iter, nil
	case "mg":
		b, err := mg.New(k.Class, Threads)
		if err != nil {
			return nil, err
		}
		return b.Iter, nil
	case "lu":
		b, err := lu.New(k.Class, Threads)
		if err != nil {
			return nil, err
		}
		return b.Iter, nil
	case "bt":
		b, err := bt.New(k.Class, Threads)
		if err != nil {
			return nil, err
		}
		return b.Iter, nil
	case "sp":
		b, err := sp.New(k.Class, Threads)
		if err != nil {
			return nil, err
		}
		return b.Iter, nil
	}
	return nil, fmt.Errorf("allocgate: unknown benchmark %q", k.Bench)
}
