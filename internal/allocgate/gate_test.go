package allocgate

import (
	"errors"
	"fmt"
	"sort"
	"testing"

	"npbgo/internal/perfcount"
)

// TestGate measures every budgeted configuration and asserts the
// steady-state allocations per Iter stay within budget. Class S gates
// always run; the W gates are skipped under -short (they execute
// full-size iterations — EP's W iteration alone is seconds of work).
//
// AllocsPerRun counts mallocs process-wide, so a stray background
// allocation (GC worker, timer) can leak into a small sample; a gate
// only fails after a second measurement confirms the excess.
func TestGate(t *testing.T) {
	keys := make([]Key, 0, len(Budgets))
	for k := range Budgets {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Bench != keys[j].Bench {
			return keys[i].Bench < keys[j].Bench
		}
		return keys[i].Class < keys[j].Class
	})

	for _, k := range keys {
		k := k
		t.Run(k.String(), func(t *testing.T) {
			if k.Class != 'S' && testing.Short() {
				t.Skipf("class %c gate skipped in -short mode", k.Class)
			}
			warm, runs := 2, 10
			if k.Class != 'S' {
				warm, runs = 1, 2
			}
			budget := Budgets[k]
			got, err := Measure(k, warm, runs)
			if err != nil {
				t.Fatal(err)
			}
			if got > float64(budget) {
				// Confirm before failing: absorb one-off process noise.
				got, err = Measure(k, warm, runs)
				if err != nil {
					t.Fatal(err)
				}
			}
			if got > float64(budget) {
				t.Errorf("%s: %.1f allocs per Iter, budget %d (budgets.go)", k, got, budget)
			}
		})
	}
}

// TestGateCounters asserts the counter sampling hot path is
// allocation-free: a region on a sampled team must cost exactly as
// many allocations as on an unsampled one — zero.
func TestGateCounters(t *testing.T) {
	got, err := MeasureCounters(5, 20)
	if err != nil {
		var ue *perfcount.UnavailableError
		if errors.As(err, &ue) {
			t.Skipf("software counters unavailable here: %v", err)
		}
		t.Fatal(err)
	}
	if got > 0 {
		// Confirm before failing: absorb one-off process noise.
		if got, err = MeasureCounters(5, 20); err != nil {
			t.Fatal(err)
		}
	}
	if got > 0 {
		t.Errorf("sampled region: %.1f allocs per region, budget 0", got)
	}
}

// TestMeasureUnknown covers the error path for a benchmark name that
// is not wired into the gate.
func TestMeasureUnknown(t *testing.T) {
	if _, err := Measure(Key{Bench: "nope", Class: 'S'}, 0, 1); err == nil {
		t.Fatal("Measure accepted unknown benchmark")
	}
	if _, err := Measure(Key{Bench: "cg", Class: 'Q'}, 0, 1); err == nil {
		t.Fatal("Measure accepted unknown class")
	}
}

// ExampleKey_String pins the gate naming used in test output and CI
// logs.
func ExampleKey_String() {
	fmt.Println(Key{Bench: "ep", Class: 'S'})
	// Output: ep.S
}
