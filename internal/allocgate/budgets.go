package allocgate

// Budgets is the checked-in ceiling on steady-state heap allocations
// per Iter for every gated configuration, measured at Threads workers.
// Lowering a budget is always safe; raising one is a performance
// regression and needs the same scrutiny as a slower benchmark result.
//
// Every kernel holds a zero budget at both classes: region bodies are
// closures built once at construction time (including the nscore.Field
// RHS bodies BT and SP share and their own solve/transform bodies),
// operands are staged through benchmark fields, reductions go through
// the team's block-indexed partial slots, and LU's plane pipeline is
// cached per team. The former BT/SP per-step phase thunks were replaced
// by plain Start/Stop calls, which is what took their budgets from
// 22/30 to zero.
var Budgets = map[Key]int{
	{"cg", 'S'}: 0,
	{"cg", 'W'}: 0,

	{"ep", 'S'}: 0,
	{"ep", 'W'}: 0,

	{"ft", 'S'}: 0,
	{"ft", 'W'}: 0,

	{"is", 'S'}:         0,
	{"is", 'W'}:         0,
	{"is-buckets", 'S'}: 0,
	{"is-buckets", 'W'}: 0,

	{"mg", 'S'}: 0,
	{"mg", 'W'}: 0,

	{"lu", 'S'}: 0,
	{"lu", 'W'}: 0,

	{"bt", 'S'}: 0,
	{"bt", 'W'}: 0,

	{"sp", 'S'}: 0,
	{"sp", 'W'}: 0,
}
