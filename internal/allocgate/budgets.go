package allocgate

// Budgets is the checked-in ceiling on steady-state heap allocations
// per Iter for every gated configuration, measured at Threads workers.
// Lowering a budget is always safe; raising one is a performance
// regression and needs the same scrutiny as a slower benchmark result.
//
// The fully hoisted kernels (CG, EP, FT, IS, MG, LU) hold a zero
// budget at both classes: their region bodies are closures built once
// at construction time, operands are staged through benchmark fields,
// reductions go through the team's per-worker partial slots, and LU's
// plane pipeline is cached per team. The zero entries for EP and CG
// class S are the floor the roadmap requires; the rest reached zero
// with the same refactor.
//
// BT and SP still build their phase and region closures per time step
// — a handful of fixed-size allocations whose count is pinned here
// (BT: 5 phase thunks plus the per-direction and rhs/add region
// bodies; SP: 6 phase thunks plus the eigenvector-transform and solver
// region bodies). They are deliberate: each allocation is ~tens of
// bytes per *step* (not per grid point), invisible next to the O(n^3)
// sweep they launch. The pinned budget keeps them from growing
// silently; driving them to zero is future work tracked in the
// ROADMAP.
var Budgets = map[Key]int{
	{"cg", 'S'}: 0,
	{"cg", 'W'}: 0,

	{"ep", 'S'}: 0,
	{"ep", 'W'}: 0,

	{"ft", 'S'}: 0,
	{"ft", 'W'}: 0,

	{"is", 'S'}:         0,
	{"is", 'W'}:         0,
	{"is-buckets", 'S'}: 0,
	{"is-buckets", 'W'}: 0,

	{"mg", 'S'}: 0,
	{"mg", 'W'}: 0,

	{"lu", 'S'}: 0,
	{"lu", 'W'}: 0,

	{"bt", 'S'}: 22,
	{"bt", 'W'}: 22,

	{"sp", 'S'}: 30,
	{"sp", 'W'}: 30,
}
