package bt

import (
	"npbgo/internal/nscore"
	"npbgo/internal/team"
)

// The three ADI sweeps share one implementation parameterized by
// direction: the flux Jacobian (fjac) and viscous Jacobian (njac) have
// the same shape in x, y and z with the convective velocity component
// swapped, and the block-tridiagonal assembly differs only in the
// dt*t?1 / dt*t?2 factors and the d?1..d?5 diffusion diagonals. This is
// exactly the symmetry the Fortran x_solve/y_solve/z_solve triplicates.

// dirSpec carries the per-direction parameters of the implicit solve.
type dirSpec struct {
	cv         int        // 0-based velocity component: 1 (u), 2 (v), 3 (w)
	tmp1, tmp2 float64    // dt*t1, dt*t2
	d          [5]float64 // diffusion diagonal Dx1..Dx5 / dy / dz
}

// buildJacobians fills ls.fjac/ls.njac for cell l of a line from the
// state at flat offsets (uoff = conserved variables, soff = scalars),
// delegating to the shared nscore Jacobian builder.
func (b *Benchmark) buildJacobians(ls *lineScratch, l int, uoff, soff int, cv int) {
	uvec := [5]float64{b.f.U[uoff], b.f.U[uoff+1], b.f.U[uoff+2], b.f.U[uoff+3], b.f.U[uoff+4]}
	nscore.FluxViscJacobians(&b.c, &uvec, b.f.RhoI[soff], b.f.Qs[soff], b.f.Square[soff],
		cv, blk(ls.fjac, l), blk(ls.njac, l))
}

// assembleLHS builds the aa/bb/cc block diagonals for the interior cells
// of a line of length isize+1, as the lhs section of x_solve.
func (b *Benchmark) assembleLHS(ls *lineScratch, isize int, ds *dirSpec) {
	ls.lhsinit(isize)
	t1, t2 := ds.tmp1, ds.tmp2
	for l := 1; l <= isize-1; l++ {
		am := blk(ls.aa, l)
		bm := blk(ls.bb, l)
		cm := blk(ls.cc, l)
		fm1 := blk(ls.fjac, l-1)
		fp1 := blk(ls.fjac, l+1)
		nm1 := blk(ls.njac, l-1)
		nc := blk(ls.njac, l)
		np1 := blk(ls.njac, l+1)
		for n := 0; n < 5; n++ {
			for m := 0; m < 5; m++ {
				e := m + 5*n
				am[e] = -t2*fm1[e] - t1*nm1[e]
				bm[e] = t1 * 2.0 * nc[e]
				cm[e] = t2*fp1[e] - t1*np1[e]
			}
		}
		for m := 0; m < 5; m++ {
			e := m + 5*m
			am[e] -= t1 * ds.d[m]
			bm[e] += 1.0 + t1*2.0*ds.d[m]
			cm[e] -= t1 * ds.d[m]
		}
	}
}

// solveLine runs the block Thomas elimination over one line whose rhs
// 5-vectors live at rhs[base+l*stride:]. The m-fastest layout makes
// every sweep direction affine in l, so a base and stride replace the
// per-line accessor closure the Fortran arrays never needed either.
func (b *Benchmark) solveLine(ls *lineScratch, isize int, rhs []float64, base, stride int) {
	binvcrhs(blk(ls.bb, 0), blk(ls.cc, 0), rhs[base:])
	for l := 1; l <= isize-1; l++ {
		matvecSub(blk(ls.aa, l), rhs[base+(l-1)*stride:], rhs[base+l*stride:])
		matmulSub(blk(ls.aa, l), blk(ls.cc, l-1), blk(ls.bb, l))
		binvcrhs(blk(ls.bb, l), blk(ls.cc, l), rhs[base+l*stride:])
	}
	matvecSub(blk(ls.aa, isize), rhs[base+(isize-1)*stride:], rhs[base+isize*stride:])
	matmulSub(blk(ls.aa, isize), blk(ls.cc, isize-1), blk(ls.bb, isize))
	binvrhs(blk(ls.bb, isize), rhs[base+isize*stride:])
	for l := isize - 1; l >= 0; l-- {
		r := rhs[base+l*stride:]
		rn := rhs[base+(l+1)*stride:]
		cm := blk(ls.cc, l)
		for m := 0; m < 5; m++ {
			r[m] -= cm[m+0]*rn[0] + cm[m+5]*rn[1] + cm[m+10]*rn[2] +
				cm[m+15]*rn[3] + cm[m+20]*rn[4]
		}
	}
}

// buildBodies constructs the three solve-region bodies once. Each is a
// func(id int) handed straight to Team.Run; chunk bounds come from the
// team's loop iterator (honoring the configured schedule), per-worker
// scratch from the pools and the team from the tm staging field, so the
// ADI loop creates no closures.
func (b *Benchmark) buildBodies() {
	n := b.n
	b.dsX = dirSpec{cv: 1, tmp1: b.c.Dt * b.c.Tx1, tmp2: b.c.Dt * b.c.Tx2,
		d: [5]float64{b.c.Dx1, b.c.Dx2, b.c.Dx3, b.c.Dx4, b.c.Dx5}}
	b.dsY = dirSpec{cv: 2, tmp1: b.c.Dt * b.c.Ty1, tmp2: b.c.Dt * b.c.Ty2,
		d: [5]float64{b.c.Dy1, b.c.Dy2, b.c.Dy3, b.c.Dy4, b.c.Dy5}}
	b.dsZ = dirSpec{cv: 3, tmp1: b.c.Dt * b.c.Tz1, tmp2: b.c.Dt * b.c.Tz2,
		d: [5]float64{b.c.Dz1, b.c.Dz2, b.c.Dz3, b.c.Dz4, b.c.Dz5}}

	//npblint:hot xi-line implicit solves, k planes chunked
	b.xBody = func(id int) {
		isize := n - 1
		ls := b.scratch[id]
		for it := b.tm.Loop(id, 1, n-1); it.Next(); {
			for k := it.Lo; k < it.Hi; k++ {
				for j := 1; j < n-1; j++ {
					for i := 0; i <= isize; i++ {
						b.buildJacobians(ls, i, b.f.UAt(0, i, j, k), b.f.SAt(i, j, k), b.dsX.cv)
					}
					b.assembleLHS(ls, isize, &b.dsX)
					b.solveLine(ls, isize, b.f.Rhs, b.f.FAt(0, 0, j, k), 5)
				}
			}
		}
	}

	//npblint:hot eta-line implicit solves, k planes chunked
	b.yBody = func(id int) {
		jsize := n - 1
		ls := b.scratch[id]
		for it := b.tm.Loop(id, 1, n-1); it.Next(); {
			for k := it.Lo; k < it.Hi; k++ {
				for i := 1; i < n-1; i++ {
					for j := 0; j <= jsize; j++ {
						b.buildJacobians(ls, j, b.f.UAt(0, i, j, k), b.f.SAt(i, j, k), b.dsY.cv)
					}
					b.assembleLHS(ls, jsize, &b.dsY)
					b.solveLine(ls, jsize, b.f.Rhs, b.f.FAt(0, i, 0, k), 5*n)
				}
			}
		}
	}

	//npblint:hot zeta-line implicit solves, j rows chunked
	b.zBody = func(id int) {
		ksize := n - 1
		ls := b.scratch[id]
		for it := b.tm.Loop(id, 1, n-1); it.Next(); {
			for j := it.Lo; j < it.Hi; j++ {
				for i := 1; i < n-1; i++ {
					for k := 0; k <= ksize; k++ {
						b.buildJacobians(ls, k, b.f.UAt(0, i, j, k), b.f.SAt(i, j, k), b.dsZ.cv)
					}
					b.assembleLHS(ls, ksize, &b.dsZ)
					b.solveLine(ls, ksize, b.f.Rhs, b.f.FAt(0, i, j, 0), 5*n*n)
				}
			}
		}
	}
}

// xSolve performs the implicit solves along every xi line, planes k
// split over the team.
func (b *Benchmark) xSolve(tm *team.Team) {
	b.tm = tm
	tm.Run(b.xBody)
}

// ySolve performs the implicit solves along every eta line.
func (b *Benchmark) ySolve(tm *team.Team) {
	b.tm = tm
	tm.Run(b.yBody)
}

// zSolve performs the implicit solves along every zeta line, rows j
// split over the team.
func (b *Benchmark) zSolve(tm *team.Team) {
	b.tm = tm
	tm.Run(b.zBody)
}

// adi advances one time step, charging each phase to the profile
// timers when enabled.
func (b *Benchmark) adi(tm *team.Team) {
	b.phaseStart("rhs")
	b.f.ComputeRHS(&b.c, tm)
	b.phaseStop("rhs")
	b.phaseStart("xsolve")
	b.xSolve(tm)
	b.phaseStop("xsolve")
	b.phaseStart("ysolve")
	b.ySolve(tm)
	b.phaseStop("ysolve")
	b.phaseStart("zsolve")
	b.zSolve(tm)
	b.phaseStop("zsolve")
	b.phaseStart("add")
	b.f.Add(tm)
	b.phaseStop("add")
}

// phaseStart begins charging the named timer when profiling.
func (b *Benchmark) phaseStart(name string) {
	if b.timers != nil {
		b.timers.Start(name)
	}
}

// phaseStop stops charging the named timer when profiling.
func (b *Benchmark) phaseStop(name string) {
	if b.timers != nil {
		b.timers.Stop(name)
	}
}

// Iter advances one steady-state time step on tm, whose Size must equal
// the thread count the Benchmark was built with. Every region body is
// prebuilt, so the step performs no heap allocation (enforced at a zero
// budget by internal/allocgate).
func (b *Benchmark) Iter(tm *team.Team) {
	b.adi(tm)
}
