// Package bt implements the NPB BT pseudo-application: an Alternating
// Direction Implicit (ADI) approximate factorization of the 3-D
// compressible Navier-Stokes equations in which each direction yields a
// block-tridiagonal system of 5x5 blocks, solved with a block Thomas
// algorithm. BT leads the paper's structured-grid benchmark group, and
// its inner kernels (stencil fluxes, 5x5 block matrix-vector work) are
// exactly the basic operations of the paper's Table 1.
package bt

import (
	"fmt"
	"time"

	"npbgo/internal/nscore"
	"npbgo/internal/obs"
	"npbgo/internal/perfcount"
	"npbgo/internal/team"
	"npbgo/internal/timer"
	"npbgo/internal/trace"
	"npbgo/internal/verify"
)

// classSpec defines one BT problem class.
type classSpec struct {
	size  int     // grid points per side
	niter int     // time steps
	dt    float64 // time step size
}

var classes = map[byte]classSpec{
	'S': {12, 60, 0.010},
	'W': {24, 200, 0.0008},
	'A': {64, 200, 0.0008},
	'B': {102, 200, 0.0003},
	'C': {162, 200, 0.0001},
}

// Benchmark is a configured BT instance with all state allocated.
type Benchmark struct {
	Class   byte
	n       int
	niter   int
	threads int
	c       nscore.Consts
	f       *nscore.Field

	timers *timer.Set         // nil unless WithTimers
	rec    *obs.Recorder      // nil without WithObs
	tr     *trace.Tracer      // nil without WithTrace
	pc     *perfcount.Sampler // nil without WithCounters
	sched  team.Schedule      // loop schedule, Static without WithSchedule

	scratch []*lineScratch // per-worker line solve storage

	// Steady-state machinery: the solve bodies below are built once by
	// New and reused every ADI step (a closure literal at the call site
	// would allocate per invocation), keeping the timed loop free of
	// heap allocation (enforced by internal/allocgate). tm stages the
	// current step's team; the dirSpecs are precomputed from the
	// constants.
	tm                  *team.Team
	dsX, dsY, dsZ       dirSpec
	xBody, yBody, zBody func(id int)
}

// Option configures optional benchmark behaviour.
type Option func(*Benchmark)

// WithObs attaches a runtime-metrics recorder to the run's team:
// per-worker busy and barrier-wait times, region counts and the
// worker-imbalance ratio of the obs layer.
func WithObs(rec *obs.Recorder) Option { return func(b *Benchmark) { b.rec = rec } }

// WithTrace attaches an execution tracer to the run's team: per-worker
// event timelines (region blocks, barrier and pipeline waits),
// exportable as Chrome/Perfetto JSON — the when-view that complements
// the obs layer's how-much totals.
func WithTrace(tr *trace.Tracer) Option { return func(b *Benchmark) { b.tr = tr } }

// WithCounters attaches a hardware-counter sampler to the run's team:
// per-worker cycles/instructions/cache-miss deltas are charged to pc at
// every parallel region. pc should be sized perfcount.New(threads); nil
// leaves counter sampling disabled.
func WithCounters(pc *perfcount.Sampler) Option { return func(b *Benchmark) { b.pc = pc } }

// WithSchedule selects the team's loop schedule for the plane loops of
// the RHS evaluation and the three implicit solves; team.Static (the
// default) is the paper's block distribution. Every loop writes
// disjoint planes, so results are bit-identical under every schedule.
func WithSchedule(s team.Schedule) Option { return func(b *Benchmark) { b.sched = s } }

// WithTimers enables per-phase profiling of the ADI steps (rhs and the
// three solves), as the paper does when analyzing where the translated
// code spends its time.
func WithTimers() Option { return func(b *Benchmark) { b.timers = timer.NewSet() } }

// New configures BT for the given class and thread count and allocates
// its fields.
func New(class byte, threads int, opts ...Option) (*Benchmark, error) {
	spec, ok := classes[class]
	if !ok {
		return nil, fmt.Errorf("bt: unknown class %q", string(class))
	}
	if threads < 1 {
		return nil, fmt.Errorf("bt: threads %d < 1", threads)
	}
	b := &Benchmark{Class: class, n: spec.size, niter: spec.niter, threads: threads}
	for _, o := range opts {
		o(b)
	}
	b.c = nscore.SetConstants(spec.size, spec.dt)
	b.f = nscore.NewField(spec.size, false)
	b.scratch = make([]*lineScratch, threads)
	for i := range b.scratch {
		b.scratch[i] = newLineScratch(spec.size)
	}
	b.buildBodies()
	return b, nil
}

// Result reports one BT run.
type Result struct {
	XCR     [5]float64 // rhs residual norms
	XCE     [5]float64 // solution error norms
	Elapsed time.Duration
	Mops    float64
	Verify  *verify.Report
	Timers  *timer.Set // per-phase profile when WithTimers was given
}

// Run executes the benchmark: initialization, one untimed warm-up step
// with re-initialization (as bt.f), then niter timed ADI steps and
// verification.
func (b *Benchmark) Run() Result {
	tm := team.New(b.threads, team.WithRecorder(b.rec), team.WithTracer(b.tr), team.WithCounters(b.pc), team.WithSchedule(b.sched))
	defer tm.Close()

	b.f.Initialize(&b.c)
	b.f.ExactRHS(&b.c)

	// One feed-through step, then reset, as the Fortran main does.
	b.adi(tm)
	b.f.Initialize(&b.c)

	start := time.Now()
	for step := 1; step <= b.niter; step++ {
		b.Iter(tm)
	}
	elapsed := time.Since(start)

	// Verification values: xcr = ||rhs||/dt from a fresh rhs evaluation,
	// xce = solution error (verify.f).
	b.f.ComputeRHS(&b.c, tm)
	xcr := b.f.RHSNorm()
	for m := 0; m < 5; m++ {
		xcr[m] /= b.c.Dt
	}
	xce := b.f.ErrorNorm(&b.c)

	var res Result
	res.XCR = xcr
	res.XCE = xce
	res.Elapsed = elapsed
	res.Timers = b.timers
	nf := float64(b.n)
	flops := float64(b.niter) * (3478.8*nf*nf*nf - 17655.7*nf*nf + 28023.7*nf)
	if s := elapsed.Seconds(); s > 0 {
		res.Mops = flops * 1e-6 / s
	}

	rep := &verify.Report{Tier: verify.TierOfficial}
	if ref, ok := reference[b.Class]; ok {
		for m := 0; m < 5; m++ {
			rep.Add(fmt.Sprintf("xcr(%d)", m+1), xcr[m], ref.xcr[m])
		}
		for m := 0; m < 5; m++ {
			rep.Add(fmt.Sprintf("xce(%d)", m+1), xce[m], ref.xce[m])
		}
	} else {
		rep.Tier = verify.TierNone
	}
	res.Verify = rep
	return res
}

// refVals holds the 5+5 verification norms of one class.
type refVals struct {
	xcr, xce [5]float64
}

// reference holds the verification norms for classes S, W and A. The
// values below were produced by this implementation and agree with the
// published NPB verify.f constants to at least 11 significant digits
// (the implementation's flux/forcing consistency is additionally pinned
// by TestForcingBalancesExactSolution), so they are treated as
// official-tier. Classes B and C run unverified.
var reference = map[byte]refVals{
	'S': {
		xcr: [5]float64{1.7034283709543e-01, 1.2975252070025e-02, 3.2527926989478e-02, 2.6436421275150e-02, 1.9211784131744e-01},
		xce: [5]float64{4.9976913345804e-04, 4.5195666782965e-05, 7.3973765172944e-05, 7.3821238632376e-05, 8.9269630987489e-04},
	},
	'W': {
		xcr: [5]float64{1.1255904093440e+02, 1.1800075957308e+01, 2.7103297678457e+01, 2.4691749376689e+01, 2.6384278743168e+02},
		xce: [5]float64{4.4196557360080e+00, 4.6385312600017e-01, 1.0115517499669e+00, 9.2358787299439e-01, 1.0180458377175e+01},
	},
	'A': {
		xcr: [5]float64{1.0806346714637e+02, 1.1319730901221e+01, 2.5974354511582e+01, 2.3665622544679e+01, 2.5278963211749e+02},
		xce: [5]float64{4.2348416040525e+00, 4.4390282496996e-01, 9.6692480136346e-01, 8.8302063039765e-01, 9.7379901770829e+00},
	},
}
