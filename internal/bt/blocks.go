package bt

// 5x5 blocks are stored column-major in 25-element slices (element
// (row, col) at row + 5*col), matching the Fortran lhs(m,n,...) layout.
// These four primitives are the inner kernels of the block-tridiagonal
// Thomas algorithm (solve_subs.f): an unpivoted Gauss-Jordan that
// simultaneously transforms the coupling block and right-hand side, a
// 5x5 matrix-matrix multiply-subtract, and a matrix-vector
// multiply-subtract. Pivoting is unnecessary because the blocks are
// strongly diagonally dominant by construction (I + dt * Jacobian terms).

// binvcrhs performs in-place Gauss-Jordan elimination on blk, applying
// the same row operations to the coupling block c and the 5-vector r:
// on return c = blk0^-1 * c and r = blk0^-1 * r.
func binvcrhs(blk, c, r []float64) {
	for p := 0; p < 5; p++ {
		pivot := 1.0 / blk[p+5*p]
		for n := p + 1; n < 5; n++ {
			blk[p+5*n] *= pivot
		}
		for n := 0; n < 5; n++ {
			c[p+5*n] *= pivot
		}
		r[p] *= pivot
		for q := 0; q < 5; q++ {
			if q == p {
				continue
			}
			coeff := blk[q+5*p]
			for n := p + 1; n < 5; n++ {
				blk[q+5*n] -= coeff * blk[p+5*n]
			}
			for n := 0; n < 5; n++ {
				c[q+5*n] -= coeff * c[p+5*n]
			}
			r[q] -= coeff * r[p]
		}
	}
}

// binvrhs is binvcrhs without a coupling block (used at the last cell of
// each line): r = blk^-1 * r.
func binvrhs(blk, r []float64) {
	for p := 0; p < 5; p++ {
		pivot := 1.0 / blk[p+5*p]
		for n := p + 1; n < 5; n++ {
			blk[p+5*n] *= pivot
		}
		r[p] *= pivot
		for q := 0; q < 5; q++ {
			if q == p {
				continue
			}
			coeff := blk[q+5*p]
			for n := p + 1; n < 5; n++ {
				blk[q+5*n] -= coeff * blk[p+5*n]
			}
			r[q] -= coeff * r[p]
		}
	}
}

// matvecSub computes r2 -= a * r1 for a 5x5 block a and 5-vectors.
func matvecSub(a, r1, r2 []float64) {
	for m := 0; m < 5; m++ {
		r2[m] -= a[m+0]*r1[0] + a[m+5]*r1[1] + a[m+10]*r1[2] +
			a[m+15]*r1[3] + a[m+20]*r1[4]
	}
}

// matmulSub computes c -= a * bblk for 5x5 blocks.
func matmulSub(a, bblk, c []float64) {
	for n := 0; n < 5; n++ {
		b0 := bblk[0+5*n]
		b1 := bblk[1+5*n]
		b2 := bblk[2+5*n]
		b3 := bblk[3+5*n]
		b4 := bblk[4+5*n]
		for m := 0; m < 5; m++ {
			c[m+5*n] -= a[m+0]*b0 + a[m+5]*b1 + a[m+10]*b2 +
				a[m+15]*b3 + a[m+20]*b4
		}
	}
}

// lineScratch is the per-worker storage for one implicit line solve:
// flux and viscous Jacobians at every cell of the line plus the three
// block diagonals.
type lineScratch struct {
	fjac, njac []float64 // 25 * (n) each
	aa, bb, cc []float64 // 25 * (n) each
}

func newLineScratch(n int) *lineScratch {
	return &lineScratch{
		fjac: make([]float64, 25*n),
		njac: make([]float64, 25*n),
		aa:   make([]float64, 25*n),
		bb:   make([]float64, 25*n),
		cc:   make([]float64, 25*n),
	}
}

// lhsinit clears the first and last block rows of the line and puts
// identity on their main diagonals, as the Fortran lhsinit.
func (ls *lineScratch) lhsinit(isize int) {
	for _, i := range [2]int{0, isize} {
		off := 25 * i
		for e := 0; e < 25; e++ {
			ls.aa[off+e] = 0
			ls.bb[off+e] = 0
			ls.cc[off+e] = 0
		}
		for d := 0; d < 5; d++ {
			ls.bb[off+d+5*d] = 1.0
		}
	}
}

// blk returns the 25-element block i of a packed block array.
func blk(a []float64, i int) []float64 { return a[25*i : 25*i+25] }
