package bt

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"npbgo/internal/nscore"
	"npbgo/internal/team"
)

func TestExactSolutionBoundaryValues(t *testing.T) {
	var d [5]float64
	nscore.ExactSolution(0, 0, 0, &d)
	// At the origin only the constant coefficients survive.
	want := [5]float64{2.0, 1.0, 2.0, 2.0, 5.0}
	for m := 0; m < 5; m++ {
		if d[m] != want[m] {
			t.Fatalf("exact(0,0,0)[%d] = %v, want %v", m, d[m], want[m])
		}
	}
}

func TestInitializeMatchesExactOnBoundaries(t *testing.T) {
	b, err := New('S', 1)
	if err != nil {
		t.Fatal(err)
	}
	b.f.Initialize(&b.c)
	var ue [5]float64
	n := b.n
	// Check one point on each face.
	checks := [][3]int{{0, 3, 4}, {n - 1, 3, 4}, {3, 0, 4}, {3, n - 1, 4}, {3, 4, 0}, {3, 4, n - 1}}
	for _, p := range checks {
		i, j, k := p[0], p[1], p[2]
		nscore.ExactSolution(float64(i)*b.c.Dnxm1, float64(j)*b.c.Dnym1, float64(k)*b.c.Dnzm1, &ue)
		off := b.f.UAt(0, i, j, k)
		for m := 0; m < 5; m++ {
			if b.f.U[off+m] != ue[m] {
				t.Fatalf("boundary (%d,%d,%d) component %d: %v != exact %v", i, j, k, m, b.f.U[off+m], ue[m])
			}
		}
	}
}

// TestForcingBalancesExactSolution is the key analytic check on the
// whole spatial discretization: when u IS the exact solution, the rhs
// (forcing + fluxes + dissipation) must vanish identically, because the
// forcing was constructed as exactly minus the operator applied to the
// exact solution.
func TestForcingBalancesExactSolution(t *testing.T) {
	b, err := New('S', 1)
	if err != nil {
		t.Fatal(err)
	}
	tm := team.New(1)
	defer tm.Close()
	// Set u to the exact solution everywhere.
	var ue [5]float64
	n := b.n
	for k := 0; k < n; k++ {
		for j := 0; j < n; j++ {
			for i := 0; i < n; i++ {
				nscore.ExactSolution(float64(i)*b.c.Dnxm1, float64(j)*b.c.Dnym1, float64(k)*b.c.Dnzm1, &ue)
				off := b.f.UAt(0, i, j, k)
				for m := 0; m < 5; m++ {
					b.f.U[off+m] = ue[m]
				}
			}
		}
	}
	b.f.ExactRHS(&b.c)
	b.f.ComputeRHS(&b.c, tm)
	worst := 0.0
	for k := 1; k < n-1; k++ {
		for j := 1; j < n-1; j++ {
			for i := 1; i < n-1; i++ {
				off := b.f.FAt(0, i, j, k)
				for m := 0; m < 5; m++ {
					if a := math.Abs(b.f.Rhs[off+m]); a > worst {
						worst = a
					}
				}
			}
		}
	}
	if worst > 1e-11 {
		t.Fatalf("rhs of exact solution not zero: max |rhs| = %v", worst)
	}
}

func TestBinvcrhsSolvesSystem(t *testing.T) {
	// After binvcrhs, c and r must equal B^-1*C and B^-1*r for the
	// original B. Verify by multiplying back.
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		b0 := make([]float64, 25)
		c0 := make([]float64, 25)
		r0 := make([]float64, 5)
		for i := range b0 {
			b0[i] = rng.Float64() - 0.5
		}
		for d := 0; d < 5; d++ {
			b0[d+5*d] += 4.0 // diagonal dominance, as in BT's blocks
		}
		for i := range c0 {
			c0[i] = rng.Float64() - 0.5
		}
		for i := range r0 {
			r0[i] = rng.Float64() - 0.5
		}
		bw := append([]float64(nil), b0...)
		cw := append([]float64(nil), c0...)
		rw := append([]float64(nil), r0...)
		binvcrhs(bw, cw, rw)
		// Check B*cw == c0 and B*rw == r0.
		for n := 0; n < 5; n++ {
			for m := 0; m < 5; m++ {
				sum := 0.0
				for q := 0; q < 5; q++ {
					sum += b0[m+5*q] * cw[q+5*n]
				}
				if math.Abs(sum-c0[m+5*n]) > 1e-10 {
					t.Fatalf("trial %d: B*(B^-1 C) != C at (%d,%d): %v vs %v", trial, m, n, sum, c0[m+5*n])
				}
			}
		}
		for m := 0; m < 5; m++ {
			sum := 0.0
			for q := 0; q < 5; q++ {
				sum += b0[m+5*q] * rw[q]
			}
			if math.Abs(sum-r0[m]) > 1e-10 {
				t.Fatalf("trial %d: B*(B^-1 r) != r at %d", trial, m)
			}
		}
	}
}

func TestMatmulMatvecSub(t *testing.T) {
	a := make([]float64, 25)
	bb := make([]float64, 25)
	c := make([]float64, 25)
	for i := range a {
		a[i] = float64(i%7) * 0.25
		bb[i] = float64(i%5) * 0.5
		c[i] = 1.0
	}
	cRef := append([]float64(nil), c...)
	matmulSub(a, bb, c)
	for n := 0; n < 5; n++ {
		for m := 0; m < 5; m++ {
			want := cRef[m+5*n]
			for q := 0; q < 5; q++ {
				want -= a[m+5*q] * bb[q+5*n]
			}
			if math.Abs(c[m+5*n]-want) > 1e-14 {
				t.Fatalf("matmulSub (%d,%d): %v vs %v", m, n, c[m+5*n], want)
			}
		}
	}
	r1 := []float64{1, 2, 3, 4, 5}
	r2 := []float64{5, 4, 3, 2, 1}
	r2Ref := append([]float64(nil), r2...)
	matvecSub(a, r1, r2)
	for m := 0; m < 5; m++ {
		want := r2Ref[m]
		for q := 0; q < 5; q++ {
			want -= a[m+5*q] * r1[q]
		}
		if math.Abs(r2[m]-want) > 1e-14 {
			t.Fatalf("matvecSub %d: %v vs %v", m, r2[m], want)
		}
	}
}

// TestSolveLineAgainstDenseSolve checks the block Thomas algorithm on a
// random diagonally dominant block-tridiagonal system by comparing with
// a dense Gaussian elimination of the assembled system.
func TestSolveLineAgainstDenseSolve(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const cells = 6
		const dim = 5 * cells
		b, _ := New('S', 1)
		ls := newLineScratch(cells)
		// Random diagonally dominant blocks; first and last cells are
		// identity rows as lhsinit would make them.
		ls.lhsinit(cells - 1)
		for l := 1; l < cells-1; l++ {
			for e := 0; e < 25; e++ {
				blk(ls.aa, l)[e] = 0.2 * (rng.Float64() - 0.5)
				blk(ls.bb, l)[e] = 0.2 * (rng.Float64() - 0.5)
				blk(ls.cc, l)[e] = 0.2 * (rng.Float64() - 0.5)
			}
			for d := 0; d < 5; d++ {
				blk(ls.bb, l)[d+5*d] += 3.0
			}
		}
		rhs := make([]float64, dim)
		for i := range rhs {
			rhs[i] = rng.Float64() - 0.5
		}
		rhsCopy := append([]float64(nil), rhs...)

		// Assemble the dense system.
		dense := make([]float64, dim*dim)
		for l := 0; l < cells; l++ {
			for m := 0; m < 5; m++ {
				row := (5*l + m) * dim // dense is row-major, unlike the grid arrays
				for n := 0; n < 5; n++ {
					if l > 0 {
						dense[row+5*(l-1)+n] = blk(ls.aa, l)[m+5*n]
					}
					dense[row+5*l+n] = blk(ls.bb, l)[m+5*n]
					if l < cells-1 {
						dense[row+5*(l+1)+n] = blk(ls.cc, l)[m+5*n]
					}
				}
			}
		}
		want := denseSolve(dense, rhsCopy, dim)

		b.solveLine(ls, cells-1, rhs, 0, 5)
		for i := 0; i < dim; i++ {
			if math.Abs(rhs[i]-want[i]) > 1e-8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

// denseSolve is a plain partial-pivoting Gaussian elimination used only
// as a test oracle.
func denseSolve(a []float64, b []float64, n int) []float64 {
	x := append([]float64(nil), b...)
	for col := 0; col < n; col++ {
		p := col
		for r := col + 1; r < n; r++ {
			if math.Abs(a[r*n+col]) > math.Abs(a[p*n+col]) {
				p = r
			}
		}
		if p != col {
			for c := 0; c < n; c++ {
				a[col*n+c], a[p*n+c] = a[p*n+c], a[col*n+c]
			}
			x[col], x[p] = x[p], x[col]
		}
		piv := a[col*n+col]
		for r := col + 1; r < n; r++ {
			f := a[r*n+col] / piv
			for c := col; c < n; c++ {
				a[r*n+c] -= f * a[col*n+c]
			}
			x[r] -= f * x[col]
		}
	}
	for r := n - 1; r >= 0; r-- {
		s := x[r]
		for c := r + 1; c < n; c++ {
			s -= a[r*n+c] * x[c]
		}
		x[r] = s / a[r*n+r]
	}
	return x
}

func TestErrorDecreasesOverSteps(t *testing.T) {
	// The ADI iteration drives u toward the steady solution of the
	// forced system; the solution error must decrease from its initial
	// value over the run.
	b, _ := New('S', 1)
	tm := team.New(1)
	defer tm.Close()
	b.f.Initialize(&b.c)
	b.f.ExactRHS(&b.c)
	e0 := b.f.ErrorNorm(&b.c)
	for s := 0; s < 20; s++ {
		b.adi(tm)
	}
	e1 := b.f.ErrorNorm(&b.c)
	for m := 0; m < 5; m++ {
		if e1[m] >= e0[m] {
			t.Fatalf("component %d error grew: %v -> %v", m, e0[m], e1[m])
		}
	}
	// And the field must stay finite.
	for _, v := range b.f.U {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatal("field blew up")
		}
	}
}

func TestParallelMatchesSerialBitwise(t *testing.T) {
	bs, _ := New('S', 1)
	bp, _ := New('S', 3)
	tms := team.New(1)
	tmp := team.New(3)
	defer tms.Close()
	defer tmp.Close()
	bs.f.Initialize(&bs.c)
	bs.f.ExactRHS(&bs.c)
	bp.f.Initialize(&bp.c)
	bp.f.ExactRHS(&bp.c)
	for s := 0; s < 5; s++ {
		bs.adi(tms)
		bp.adi(tmp)
	}
	for i := range bs.f.U {
		if bs.f.U[i] != bp.f.U[i] {
			t.Fatalf("u[%d] differs between 1 and 3 threads: %v vs %v", i, bs.f.U[i], bp.f.U[i])
		}
	}
}

func TestClassSGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("full class S run in -short mode")
	}
	b, _ := New('S', 1)
	res := b.Run()
	if res.Verify.Failed() {
		t.Fatalf("class S failed verification:\n%s", res.Verify)
	}
	for m := 0; m < 5; m++ {
		if math.IsNaN(res.XCR[m]) || math.IsNaN(res.XCE[m]) {
			t.Fatal("NaN in verification norms")
		}
	}
}

func TestUnknownClassRejected(t *testing.T) {
	if _, err := New('Q', 1); err == nil {
		t.Fatal("class Q accepted")
	}
	if _, err := New('S', 0); err == nil {
		t.Fatal("zero threads accepted")
	}
}
