package bt

import "fmt"

// Footprint estimates the working-set bytes a BT run of the given class
// and thread count allocates: the nscore field (three 5-component grids
// plus six scalar grids over n³ points) and the per-thread block-line
// scratch. The estimate feeds the harness memory admission guard — the
// paper's FT memory-limit anomaly (§5) generalized to every benchmark —
// so it tracks the dominant arrays, not every last slice.
func Footprint(class byte, threads int) (uint64, error) {
	spec, ok := classes[class]
	if !ok {
		return 0, fmt.Errorf("bt: unknown class %q", string(class))
	}
	if threads < 1 {
		threads = 1
	}
	n := uint64(spec.size)
	n3 := n * n * n
	field := 21 * n3 * 8                        // U+Rhs+Forcing (5 each) + 6 scalar grids
	scratch := uint64(threads) * 5 * 25 * n * 8 // fjac/njac/aa/bb/cc per line
	return field + scratch, nil
}
