package lu

import (
	"math"
	"math/rand"
	"testing"

	"npbgo/internal/team"
)

// TestForcingBalancesExactSolution: with u set to the exact solution,
// rsd = R(u) - frct must vanish because frct = R(u_exact).
func TestForcingBalancesExactSolution(t *testing.T) {
	b, err := New('S', 1)
	if err != nil {
		t.Fatal(err)
	}
	tm := team.New(1)
	defer tm.Close()
	var ue [5]float64
	n := b.n
	for k := 0; k < n; k++ {
		for j := 0; j < n; j++ {
			for i := 0; i < n; i++ {
				b.exactAt(i, j, k, &ue)
				off := b.at(i, j, k)
				for m := 0; m < 5; m++ {
					b.u[off+m] = ue[m]
				}
			}
		}
	}
	b.erhs(tm)
	b.rhs(tm)
	worst := 0.0
	for k := 1; k < n-1; k++ {
		for j := 1; j < n-1; j++ {
			for i := 1; i < n-1; i++ {
				off := b.at(i, j, k)
				for m := 0; m < 5; m++ {
					if a := math.Abs(b.rsd[off+m]); a > worst {
						worst = a
					}
				}
			}
		}
	}
	if worst > 1e-11 {
		t.Fatalf("rsd of exact solution not zero: max = %v", worst)
	}
}

func TestSolve5AgainstOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 100; trial++ {
		a := make([]float64, 25)
		var r [5]float64
		aCopy := make([]float64, 25)
		var rCopy [5]float64
		for i := range a {
			a[i] = rng.Float64() - 0.5
		}
		for d := 0; d < 5; d++ {
			a[d+5*d] += 3.0
		}
		for m := 0; m < 5; m++ {
			r[m] = rng.Float64() - 0.5
		}
		copy(aCopy, a)
		rCopy = r
		solve5(a, &r)
		// Check A*x == r0.
		for m := 0; m < 5; m++ {
			s := 0.0
			for l := 0; l < 5; l++ {
				s += aCopy[m+5*l] * r[l]
			}
			if math.Abs(s-rCopy[m]) > 1e-10 {
				t.Fatalf("trial %d row %d: A*x = %v, want %v", trial, m, s, rCopy[m])
			}
		}
	}
}

func TestSetbvExactOnFaces(t *testing.T) {
	b, _ := New('S', 1)
	b.setbv()
	var ue [5]float64
	n := b.n
	for _, p := range [][3]int{{0, 5, 6}, {n - 1, 5, 6}, {5, 0, 6}, {5, n - 1, 6}, {5, 6, 0}, {5, 6, n - 1}} {
		b.exactAt(p[0], p[1], p[2], &ue)
		off := b.at(p[0], p[1], p[2])
		for m := 0; m < 5; m++ {
			if b.u[off+m] != ue[m] {
				t.Fatalf("boundary %v component %d mismatch", p, m)
			}
		}
	}
}

func TestResidualDecreasesOverSSORSteps(t *testing.T) {
	b, _ := New('S', 1)
	tm := team.New(1)
	defer tm.Close()
	b.setbv()
	b.setiv()
	b.erhs(tm)
	b.rhs(tm)
	r0 := b.l2norm(b.rsd)
	// Run a shortened SSOR loop manually.
	b.itmax = 10
	b.ssor(tm)
	r1 := b.l2norm(b.rsd)
	for m := 0; m < 5; m++ {
		if !(r1[m] < r0[m]) {
			t.Fatalf("component %d residual did not decrease: %v -> %v", m, r0[m], r1[m])
		}
	}
}

func TestParallelMatchesSerialBitwise(t *testing.T) {
	run := func(threads, steps int) []float64 {
		b, _ := New('S', threads)
		tm := team.New(threads)
		defer tm.Close()
		b.setbv()
		b.setiv()
		b.erhs(tm)
		b.itmax = steps
		b.ssor(tm)
		out := make([]float64, len(b.u))
		copy(out, b.u)
		return out
	}
	u1 := run(1, 5)
	u3 := run(3, 5)
	for i := range u1 {
		if u1[i] != u3[i] {
			t.Fatalf("u[%d] differs between 1 and 3 threads: %v vs %v", i, u1[i], u3[i])
		}
	}
}

func TestClassSRun(t *testing.T) {
	b, _ := New('S', 1)
	res := b.Run()
	if res.Verify.Failed() {
		t.Fatalf("class S failed verification:\n%s", res.Verify)
	}
	for m := 0; m < 5; m++ {
		if math.IsNaN(res.RsdNm[m]) || math.IsNaN(res.ErrNm[m]) {
			t.Fatal("NaN in verification norms")
		}
	}
	if math.IsNaN(res.Frc) || res.Frc == 0 {
		t.Fatalf("suspicious surface integral %v", res.Frc)
	}
}

func TestUnknownClassRejected(t *testing.T) {
	if _, err := New('D', 1); err == nil {
		t.Fatal("class D accepted")
	}
	if _, err := New('S', 0); err == nil {
		t.Fatal("zero threads accepted")
	}
}

func TestHyperplaneMatchesPipelinedBitwise(t *testing.T) {
	// Both schedules respect the same data dependences, so every point
	// update reads identical values: the results must match bitwise.
	run := func(hyper bool, threads int) []float64 {
		var opts []Option
		if hyper {
			opts = append(opts, WithHyperplane())
		}
		b, _ := New('S', threads, opts...)
		tm := team.New(threads)
		defer tm.Close()
		b.setbv()
		b.setiv()
		b.erhs(tm)
		b.itmax = 5
		b.ssor(tm)
		out := make([]float64, len(b.u))
		copy(out, b.u)
		return out
	}
	pipe := run(false, 2)
	hyp := run(true, 3)
	for i := range pipe {
		if pipe[i] != hyp[i] {
			t.Fatalf("u[%d] differs between schedules: %v vs %v", i, pipe[i], hyp[i])
		}
	}
}

func TestHyperplaneRunVerifies(t *testing.T) {
	b, _ := New('S', 2, WithHyperplane())
	if res := b.Run(); res.Verify.Failed() {
		t.Fatalf("hyperplane run failed verification:\n%s", res.Verify)
	}
}
