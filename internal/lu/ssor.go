package lu

import (
	"time"

	"npbgo/internal/nscore"
	"npbgo/internal/team"
)

// Lower/upper triangular block construction. LU's jacld/jacu write out
// by hand exactly the combinations BT assembles from the flux Jacobian F
// and viscous Jacobian N of each direction:
//
//	lower(dir, p) = -dt*t2*F(p) - dt*t1*N(p) - dt*t1*diag(d1..d5)
//	upper(dir, p) = +dt*t2*F(p) - dt*t1*N(p) - dt*t1*diag(d1..d5)
//	diag(p)       = I + 2dt*(tx1*Nx + ty1*Ny + tz1*Nz)(p)
//	                  + 2dt*diag(tx1*dxm + ty1*dym + tz1*dzm)
//
// evaluated at the neighbouring point p the block couples to.

// dirConsts returns (t1, t2, d[5]) for direction cv.
func (b *Benchmark) dirConsts(cv int) (t1, t2 float64, d [5]float64) {
	c := &b.c
	switch cv {
	case 1:
		return c.Tx1, c.Tx2, [5]float64{c.Dx1, c.Dx2, c.Dx3, c.Dx4, c.Dx5}
	case 2:
		return c.Ty1, c.Ty2, [5]float64{c.Dy1, c.Dy2, c.Dy3, c.Dy4, c.Dy5}
	default:
		return c.Tz1, c.Tz2, [5]float64{c.Dz1, c.Dz2, c.Dz3, c.Dz4, c.Dz5}
	}
}

// pointJacobians computes F and N for direction cv at grid offset off
// (offset of component 0), deriving the scalar helpers from u directly.
func (b *Benchmark) pointJacobians(ws *sweepScratch, off, cv int) {
	var uvec [5]float64
	copy(uvec[:], b.u[off:off+5])
	rhoI := 1.0 / uvec[0]
	sq := 0.5 * (uvec[1]*uvec[1] + uvec[2]*uvec[2] + uvec[3]*uvec[3]) * rhoI
	qs := sq * rhoI
	nscore.FluxViscJacobians(&b.c, &uvec, rhoI, qs, sq, cv, ws.fj, ws.nj)
}

// offDiagBlock fills dst with the lower (sign = -1) or upper (sign = +1)
// coupling block of direction cv evaluated at offset off.
func (b *Benchmark) offDiagBlock(ws *sweepScratch, dst []float64, off, cv int, sign float64) {
	dt := b.c.Dt
	t1, t2, d := b.dirConsts(cv)
	b.pointJacobians(ws, off, cv)
	for e := 0; e < 25; e++ {
		dst[e] = sign*dt*t2*ws.fj[e] - dt*t1*ws.nj[e]
	}
	for m := 0; m < 5; m++ {
		dst[m+5*m] -= dt * t1 * d[m]
	}
}

// diagBlock fills dst with the block-diagonal matrix at offset off.
func (b *Benchmark) diagBlock(ws *sweepScratch, dst []float64, off int) {
	c := &b.c
	dt := c.Dt
	for e := 0; e < 25; e++ {
		dst[e] = 0
	}
	for _, cv := range [3]int{1, 2, 3} {
		t1, _, _ := b.dirConsts(cv)
		b.pointJacobians(ws, off, cv)
		for e := 0; e < 25; e++ {
			dst[e] += 2.0 * dt * t1 * ws.nj[e]
		}
	}
	dd := [5][3]float64{
		{c.Dx1, c.Dy1, c.Dz1},
		{c.Dx2, c.Dy2, c.Dz2},
		{c.Dx3, c.Dy3, c.Dz3},
		{c.Dx4, c.Dy4, c.Dz4},
		{c.Dx5, c.Dy5, c.Dz5},
	}
	for m := 0; m < 5; m++ {
		dst[m+5*m] += 1.0 + 2.0*dt*(c.Tx1*dd[m][0]+c.Ty1*dd[m][1]+c.Tz1*dd[m][2])
	}
}

// solve5 solves the 5x5 system a*x = r in place (unpivoted Gaussian
// elimination, as blts/buts do; the blocks are diagonally dominant).
func solve5(a []float64, r *[5]float64) {
	for p := 0; p < 5; p++ {
		piv := 1.0 / a[p+5*p]
		for n := p + 1; n < 5; n++ {
			a[p+5*n] *= piv
		}
		r[p] *= piv
		for q := p + 1; q < 5; q++ {
			coeff := a[q+5*p]
			for n := p + 1; n < 5; n++ {
				a[q+5*n] -= coeff * a[p+5*n]
			}
			r[q] -= coeff * r[p]
		}
	}
	for p := 4; p >= 0; p-- {
		for n := p + 1; n < 5; n++ {
			r[p] -= a[p+5*n] * r[n]
		}
	}
}

// lowerRow performs the fused jacld+blts update for row j of plane k:
// for each interior i, apply the k-1, j-1 and i-1 couplings and invert
// the diagonal block.
func (b *Benchmark) lowerRow(ws *sweepScratch, j, k int) {
	for i := 1; i < b.n-1; i++ {
		b.lowerPoint(ws, i, j, k)
	}
}

// upperRow performs the fused jacu+buts update for row j of plane k,
// sweeping i downward.
func (b *Benchmark) upperRow(ws *sweepScratch, j, k int) {
	for i := b.n - 2; i >= 1; i-- {
		b.upperPoint(ws, i, j, k)
	}
}

// ensurePipe binds the benchmark to tm and (re)builds the cached
// plane pipeline when the team changes. The team-wired pipeline charges
// per-plane stalls to each worker's obs wait slot and trace timeline —
// the paper's LU scalability culprit, made visible per worker instead
// of folded into run time.
func (b *Benchmark) ensurePipe(tm *team.Team) {
	b.tm = tm
	if b.pipeOwner != tm {
		b.pipe = tm.NewPipeline(b.n)
		b.pipeOwner = tm
	}
}

// Iter runs one timed SSOR istep — residual scaling, the pipelined (or
// hyperplane) triangular sweeps, the flow-variable update and the rhs
// recomputation — on tm, whose Size must equal the thread count the
// Benchmark was built with. Iter is the steady-state hook the
// allocation gate measures: after the first call it performs no heap
// allocation.
func (b *Benchmark) Iter(tm *team.Team) {
	b.ensurePipe(tm)
	if b.timers != nil {
		b.timers.Start("scale+update")
	}
	if b.tr != nil {
		b.tr.BeginPhase("scale+update")
	}
	// Scale the residual by the pseudo-time step.
	tm.Run(b.scaleBody)

	if b.timers != nil {
		b.timers.Stop("scale+update")
		b.timers.Start("sweeps")
	}
	if b.tr != nil {
		b.tr.EndPhase("scale+update")
		b.tr.BeginPhase("sweeps")
	}
	if b.hyper {
		b.lowerSweepHyperplane(tm)
		b.upperSweepHyperplane(tm)
	} else {
		// Lower-triangular sweep, pipelined forward.
		tm.Run(b.lowerBody)
		b.pipe.Drain()

		// Upper-triangular sweep, pipelined backward.
		tm.Run(b.upperBody)
		b.pipe.Drain()
	}

	if b.timers != nil {
		b.timers.Stop("sweeps")
		b.timers.Start("scale+update")
	}
	if b.tr != nil {
		b.tr.EndPhase("sweeps")
		b.tr.BeginPhase("scale+update")
	}
	// Update the flow variables.
	tm.Run(b.updateBody)

	if b.timers != nil {
		b.timers.Stop("scale+update")
		b.timers.Start("rhs")
	}
	if b.tr != nil {
		b.tr.EndPhase("scale+update")
		b.tr.BeginPhase("rhs")
	}
	b.rhs(tm)
	if b.timers != nil {
		b.timers.Stop("rhs")
	}
	if b.tr != nil {
		b.tr.EndPhase("rhs")
	}
}

// ssor runs the timed SSOR iteration loop and returns the elapsed time
// of the timed section (lu.f's ssor). The triangular sweeps are
// pipelined over j-blocks: worker w may process plane k only after
// worker w-1 has finished plane k (and the reverse for the upper sweep)
// — the in-loop synchronization the paper blames for LU's scalability.
func (b *Benchmark) ssor(tm *team.Team) time.Duration {
	b.rhs(tm)
	b.l2norm(b.rsd) // initial residual, reported by the cmd wrapper

	start := time.Now()
	for istep := 1; istep <= b.itmax; istep++ {
		b.Iter(tm)
	}
	return time.Since(start)
}
