package lu

import "fmt"

// Footprint estimates the working-set bytes an LU run of the given
// class and thread count allocates: the three 5-component n³ fields
// (u, rsd, frct); the per-thread jacobian scratch is constant-sized and
// folded in as a flat allowance. Feeds the harness memory admission
// guard; dominant arrays only.
func Footprint(class byte, threads int) (uint64, error) {
	spec, ok := classes[class]
	if !ok {
		return 0, fmt.Errorf("lu: unknown class %q", string(class))
	}
	if threads < 1 {
		threads = 1
	}
	n := uint64(spec.size)
	n3 := n * n * n
	fields := 15 * n3 * 8                   // u + rsd + frct, 5 components each
	scratch := uint64(threads) * 6 * 25 * 8 // az/ay/ax/d/fj/nj
	return fields + scratch, nil
}
