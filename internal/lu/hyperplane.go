package lu

import "npbgo/internal/team"

// Hyperplane-scheduled SSOR sweeps: the alternative to pipelining that
// the NPB distribution ships as LU-HP. Points on the diagonal wavefront
// i+j+k = l depend only on points of wavefront l-1 (l+1 for the upper
// sweep), so each wavefront is embarrassingly parallel at the cost of a
// full barrier per wavefront and strided memory access. Both schedules
// compute bitwise-identical results; the ablation benchmark contrasts
// their overheads, which is the design choice behind the paper's LU
// scalability discussion.

// lowerPoint applies the lower-triangular update at one grid point.
func (b *Benchmark) lowerPoint(ws *sweepScratch, i, j, k int) {
	off := b.at(i, j, k)
	okm := b.at(i, j, k-1)
	ojm := b.at(i, j-1, k)
	oim := b.at(i-1, j, k)

	b.offDiagBlock(ws, ws.az, okm, 3, -1)
	b.offDiagBlock(ws, ws.ay, ojm, 2, -1)
	b.offDiagBlock(ws, ws.ax, oim, 1, -1)
	b.diagBlock(ws, ws.d, off)

	for m := 0; m < 5; m++ {
		s := 0.0
		for l := 0; l < 5; l++ {
			s += ws.az[m+5*l]*b.rsd[okm+l] +
				ws.ay[m+5*l]*b.rsd[ojm+l] +
				ws.ax[m+5*l]*b.rsd[oim+l]
		}
		ws.tv[m] = b.rsd[off+m] - omega*s
	}
	solve5(ws.d, &ws.tv)
	for m := 0; m < 5; m++ {
		b.rsd[off+m] = ws.tv[m]
	}
}

// upperPoint applies the upper-triangular update at one grid point.
func (b *Benchmark) upperPoint(ws *sweepScratch, i, j, k int) {
	off := b.at(i, j, k)
	okp := b.at(i, j, k+1)
	ojp := b.at(i, j+1, k)
	oip := b.at(i+1, j, k)

	b.offDiagBlock(ws, ws.az, okp, 3, +1)
	b.offDiagBlock(ws, ws.ay, ojp, 2, +1)
	b.offDiagBlock(ws, ws.ax, oip, 1, +1)
	b.diagBlock(ws, ws.d, off)

	for m := 0; m < 5; m++ {
		s := 0.0
		for l := 0; l < 5; l++ {
			s += ws.az[m+5*l]*b.rsd[okp+l] +
				ws.ay[m+5*l]*b.rsd[ojp+l] +
				ws.ax[m+5*l]*b.rsd[oip+l]
		}
		ws.tv[m] = omega * s
	}
	solve5(ws.d, &ws.tv)
	for m := 0; m < 5; m++ {
		b.rsd[off+m] -= ws.tv[m]
	}
}

// lowerSweepHyperplane runs the lower sweep over increasing wavefronts
// i+j+k = l, each a complete parallel region (one barrier per front).
func (b *Benchmark) lowerSweepHyperplane(tm *team.Team) {
	n := b.n
	for l := 3; l <= 3*(n-2); l++ {
		tm.Run(func(id int) {
			ws := b.scratch[id]
			jlo, jhi := team.Block(1, n-1, tm.Size(), id)
			for j := jlo; j < jhi; j++ {
				for k := 1; k < n-1; k++ {
					i := l - j - k
					if i >= 1 && i <= n-2 {
						b.lowerPoint(ws, i, j, k)
					}
				}
			}
		})
	}
}

// upperSweepHyperplane runs the upper sweep over decreasing wavefronts.
func (b *Benchmark) upperSweepHyperplane(tm *team.Team) {
	n := b.n
	for l := 3 * (n - 2); l >= 3; l-- {
		tm.Run(func(id int) {
			ws := b.scratch[id]
			jlo, jhi := team.Block(1, n-1, tm.Size(), id)
			for j := jlo; j < jhi; j++ {
				for k := 1; k < n-1; k++ {
					i := l - j - k
					if i >= 1 && i <= n-2 {
						b.upperPoint(ws, i, j, k)
					}
				}
			}
		})
	}
}
