package lu

import "npbgo/internal/team"

// applyOperator adds the discrete steady-state Navier-Stokes operator
// R(w) to out: central convective flux differences, viscous flux
// differences and fourth-order dissipation in the three directions —
// the common body of lu.f's rhs and erhs routines (which differ only in
// what out starts from and which field they differentiate). The
// operands are staged for the three prebuilt direction bodies, so no
// closure or scratch is allocated per call.
func (b *Benchmark) applyOperator(out, w []float64, tm *team.Team) {
	b.tm, b.opOut, b.opW = tm, out, w
	tm.Run(b.xiBody)
	tm.Run(b.etaBody)
	tm.Run(b.zetaBody)
}

// xiFluxRange applies the xi-direction operator terms on planes
// [klo, khi) using the caller's 5*n flux line scratch — one worker's
// share of the first applyOperator region.
func (b *Benchmark) xiFluxRange(out, w, flux []float64, klo, khi int) {
	n := b.n
	c := &b.c
	for k := klo; k < khi; k++ {
		for j := 1; j < n-1; j++ {
			for i := 0; i < n; i++ {
				off := b.at(i, j, k)
				u21 := w[off+1] / w[off]
				q := 0.5 * (w[off+1]*w[off+1] + w[off+2]*w[off+2] + w[off+3]*w[off+3]) / w[off]
				flux[5*i+0] = w[off+1]
				flux[5*i+1] = w[off+1]*u21 + c.C2*(w[off+4]-q)
				flux[5*i+2] = w[off+2] * u21
				flux[5*i+3] = w[off+3] * u21
				flux[5*i+4] = (c.C1*w[off+4] - c.C2*q) * u21
			}
			for i := 1; i < n-1; i++ {
				off := b.at(i, j, k)
				for m := 0; m < 5; m++ {
					out[off+m] -= c.Tx2 * (flux[5*(i+1)+m] - flux[5*(i-1)+m])
				}
			}
			for i := 1; i < n; i++ {
				off := b.at(i, j, k)
				offm := b.at(i-1, j, k)
				tmp := 1.0 / w[off]
				u21i, u31i, u41i, u51i := tmp*w[off+1], tmp*w[off+2], tmp*w[off+3], tmp*w[off+4]
				tmp = 1.0 / w[offm]
				u21im1, u31im1, u41im1, u51im1 := tmp*w[offm+1], tmp*w[offm+2], tmp*w[offm+3], tmp*w[offm+4]
				flux[5*i+1] = (4.0 / 3.0) * c.Tx3 * (u21i - u21im1)
				flux[5*i+2] = c.Tx3 * (u31i - u31im1)
				flux[5*i+3] = c.Tx3 * (u41i - u41im1)
				flux[5*i+4] = 0.5*(1.0-c.C1c5)*c.Tx3*
					((u21i*u21i+u31i*u31i+u41i*u41i)-(u21im1*u21im1+u31im1*u31im1+u41im1*u41im1)) +
					(1.0/6.0)*c.Tx3*(u21i*u21i-u21im1*u21im1) +
					c.C1c5*c.Tx3*(u51i-u51im1)
			}
			for i := 1; i < n-1; i++ {
				off := b.at(i, j, k)
				om := b.at(i-1, j, k)
				op := b.at(i+1, j, k)
				out[off+0] += c.Dx1 * c.Tx1 * (w[om+0] - 2.0*w[off+0] + w[op+0])
				out[off+1] += c.Tx3*c.C3*c.C4*(flux[5*(i+1)+1]-flux[5*i+1]) +
					c.Dx2*c.Tx1*(w[om+1]-2.0*w[off+1]+w[op+1])
				out[off+2] += c.Tx3*c.C3*c.C4*(flux[5*(i+1)+2]-flux[5*i+2]) +
					c.Dx3*c.Tx1*(w[om+2]-2.0*w[off+2]+w[op+2])
				out[off+3] += c.Tx3*c.C3*c.C4*(flux[5*(i+1)+3]-flux[5*i+3]) +
					c.Dx4*c.Tx1*(w[om+3]-2.0*w[off+3]+w[op+3])
				out[off+4] += c.Tx3*c.C3*c.C4*(flux[5*(i+1)+4]-flux[5*i+4]) +
					c.Dx5*c.Tx1*(w[om+4]-2.0*w[off+4]+w[op+4])
			}
			b.dissip(out, w, 0, j, k)
		}
	}
}

// etaFluxRange applies the eta-direction operator terms on planes
// [klo, khi) — one worker's share of the second applyOperator region.
func (b *Benchmark) etaFluxRange(out, w, flux []float64, klo, khi int) {
	n := b.n
	c := &b.c
	for k := klo; k < khi; k++ {
		for i := 1; i < n-1; i++ {
			for j := 0; j < n; j++ {
				off := b.at(i, j, k)
				u31 := w[off+2] / w[off]
				q := 0.5 * (w[off+1]*w[off+1] + w[off+2]*w[off+2] + w[off+3]*w[off+3]) / w[off]
				flux[5*j+0] = w[off+2]
				flux[5*j+1] = w[off+1] * u31
				flux[5*j+2] = w[off+2]*u31 + c.C2*(w[off+4]-q)
				flux[5*j+3] = w[off+3] * u31
				flux[5*j+4] = (c.C1*w[off+4] - c.C2*q) * u31
			}
			for j := 1; j < n-1; j++ {
				off := b.at(i, j, k)
				for m := 0; m < 5; m++ {
					out[off+m] -= c.Ty2 * (flux[5*(j+1)+m] - flux[5*(j-1)+m])
				}
			}
			for j := 1; j < n; j++ {
				off := b.at(i, j, k)
				offm := b.at(i, j-1, k)
				tmp := 1.0 / w[off]
				u21j, u31j, u41j, u51j := tmp*w[off+1], tmp*w[off+2], tmp*w[off+3], tmp*w[off+4]
				tmp = 1.0 / w[offm]
				u21jm1, u31jm1, u41jm1, u51jm1 := tmp*w[offm+1], tmp*w[offm+2], tmp*w[offm+3], tmp*w[offm+4]
				flux[5*j+1] = c.Ty3 * (u21j - u21jm1)
				flux[5*j+2] = (4.0 / 3.0) * c.Ty3 * (u31j - u31jm1)
				flux[5*j+3] = c.Ty3 * (u41j - u41jm1)
				flux[5*j+4] = 0.5*(1.0-c.C1c5)*c.Ty3*
					((u21j*u21j+u31j*u31j+u41j*u41j)-(u21jm1*u21jm1+u31jm1*u31jm1+u41jm1*u41jm1)) +
					(1.0/6.0)*c.Ty3*(u31j*u31j-u31jm1*u31jm1) +
					c.C1c5*c.Ty3*(u51j-u51jm1)
			}
			for j := 1; j < n-1; j++ {
				off := b.at(i, j, k)
				om := b.at(i, j-1, k)
				op := b.at(i, j+1, k)
				out[off+0] += c.Dy1 * c.Ty1 * (w[om+0] - 2.0*w[off+0] + w[op+0])
				out[off+1] += c.Ty3*c.C3*c.C4*(flux[5*(j+1)+1]-flux[5*j+1]) +
					c.Dy2*c.Ty1*(w[om+1]-2.0*w[off+1]+w[op+1])
				out[off+2] += c.Ty3*c.C3*c.C4*(flux[5*(j+1)+2]-flux[5*j+2]) +
					c.Dy3*c.Ty1*(w[om+2]-2.0*w[off+2]+w[op+2])
				out[off+3] += c.Ty3*c.C3*c.C4*(flux[5*(j+1)+3]-flux[5*j+3]) +
					c.Dy4*c.Ty1*(w[om+3]-2.0*w[off+3]+w[op+3])
				out[off+4] += c.Ty3*c.C3*c.C4*(flux[5*(j+1)+4]-flux[5*j+4]) +
					c.Dy5*c.Ty1*(w[om+4]-2.0*w[off+4]+w[op+4])
			}
			b.dissip(out, w, 1, i, k)
		}
	}
}

// zetaFluxRange applies the zeta-direction operator terms on j-rows
// [jlo, jhi) (the line runs along k) — one worker's share of the third
// applyOperator region.
func (b *Benchmark) zetaFluxRange(out, w, flux []float64, jlo, jhi int) {
	n := b.n
	c := &b.c
	for j := jlo; j < jhi; j++ {
		for i := 1; i < n-1; i++ {
			for k := 0; k < n; k++ {
				off := b.at(i, j, k)
				u41 := w[off+3] / w[off]
				q := 0.5 * (w[off+1]*w[off+1] + w[off+2]*w[off+2] + w[off+3]*w[off+3]) / w[off]
				flux[5*k+0] = w[off+3]
				flux[5*k+1] = w[off+1] * u41
				flux[5*k+2] = w[off+2] * u41
				flux[5*k+3] = w[off+3]*u41 + c.C2*(w[off+4]-q)
				flux[5*k+4] = (c.C1*w[off+4] - c.C2*q) * u41
			}
			for k := 1; k < n-1; k++ {
				off := b.at(i, j, k)
				for m := 0; m < 5; m++ {
					out[off+m] -= c.Tz2 * (flux[5*(k+1)+m] - flux[5*(k-1)+m])
				}
			}
			for k := 1; k < n; k++ {
				off := b.at(i, j, k)
				offm := b.at(i, j, k-1)
				tmp := 1.0 / w[off]
				u21k, u31k, u41k, u51k := tmp*w[off+1], tmp*w[off+2], tmp*w[off+3], tmp*w[off+4]
				tmp = 1.0 / w[offm]
				u21km1, u31km1, u41km1, u51km1 := tmp*w[offm+1], tmp*w[offm+2], tmp*w[offm+3], tmp*w[offm+4]
				flux[5*k+1] = c.Tz3 * (u21k - u21km1)
				flux[5*k+2] = c.Tz3 * (u31k - u31km1)
				flux[5*k+3] = (4.0 / 3.0) * c.Tz3 * (u41k - u41km1)
				flux[5*k+4] = 0.5*(1.0-c.C1c5)*c.Tz3*
					((u21k*u21k+u31k*u31k+u41k*u41k)-(u21km1*u21km1+u31km1*u31km1+u41km1*u41km1)) +
					(1.0/6.0)*c.Tz3*(u41k*u41k-u41km1*u41km1) +
					c.C1c5*c.Tz3*(u51k-u51km1)
			}
			for k := 1; k < n-1; k++ {
				off := b.at(i, j, k)
				om := b.at(i, j, k-1)
				op := b.at(i, j, k+1)
				out[off+0] += c.Dz1 * c.Tz1 * (w[om+0] - 2.0*w[off+0] + w[op+0])
				out[off+1] += c.Tz3*c.C3*c.C4*(flux[5*(k+1)+1]-flux[5*k+1]) +
					c.Dz2*c.Tz1*(w[om+1]-2.0*w[off+1]+w[op+1])
				out[off+2] += c.Tz3*c.C3*c.C4*(flux[5*(k+1)+2]-flux[5*k+2]) +
					c.Dz3*c.Tz1*(w[om+2]-2.0*w[off+2]+w[op+2])
				out[off+3] += c.Tz3*c.C3*c.C4*(flux[5*(k+1)+3]-flux[5*k+3]) +
					c.Dz4*c.Tz1*(w[om+3]-2.0*w[off+3]+w[op+3])
				out[off+4] += c.Tz3*c.C3*c.C4*(flux[5*(k+1)+4]-flux[5*k+4]) +
					c.Dz5*c.Tz1*(w[om+4]-2.0*w[off+4]+w[op+4])
			}
			b.dissip(out, w, 2, i, j)
		}
	}
}

// dissip subtracts the boundary-adjusted fourth-difference dissipation
// of w from out along one grid line of direction dir (0 = xi at
// (j,k)=(a,bb), 1 = eta at (i,k)=(a,bb), 2 = zeta at (i,j)=(a,bb)).
func (b *Benchmark) dissip(out, w []float64, dir, a, bb int) {
	n := b.n
	dssp := b.c.Dssp
	at := func(l int) int {
		switch dir {
		case 0:
			return b.at(l, a, bb)
		case 1:
			return b.at(a, l, bb)
		default:
			return b.at(a, bb, l)
		}
	}
	for m := 0; m < 5; m++ {
		l := 1
		out[at(l)+m] -= dssp * (5.0*w[at(l)+m] - 4.0*w[at(l+1)+m] + w[at(l+2)+m])
		l = 2
		out[at(l)+m] -= dssp * (-4.0*w[at(l-1)+m] + 6.0*w[at(l)+m] - 4.0*w[at(l+1)+m] + w[at(l+2)+m])
		for l = 3; l <= n-4; l++ {
			out[at(l)+m] -= dssp * (w[at(l-2)+m] - 4.0*w[at(l-1)+m] + 6.0*w[at(l)+m] - 4.0*w[at(l+1)+m] + w[at(l+2)+m])
		}
		l = n - 3
		out[at(l)+m] -= dssp * (w[at(l-2)+m] - 4.0*w[at(l-1)+m] + 6.0*w[at(l)+m] - 4.0*w[at(l+1)+m])
		l = n - 2
		out[at(l)+m] -= dssp * (w[at(l-2)+m] - 4.0*w[at(l-1)+m] + 5.0*w[at(l)+m])
	}
}

// rhs computes the steady-state residual rsd = R(u) - frct (lu.f's rhs).
func (b *Benchmark) rhs(tm *team.Team) {
	b.tm = tm
	tm.Run(b.rhsInitBody)
	b.applyOperator(b.rsd, b.u, tm)
}

// erhs computes the forcing frct = R(u_exact), using rsd as scratch for
// the exact-solution field exactly as lu.f's erhs does.
func (b *Benchmark) erhs(tm *team.Team) {
	n := b.n
	for i := range b.frct {
		b.frct[i] = 0
	}
	var ue [5]float64
	for k := 0; k < n; k++ {
		for j := 0; j < n; j++ {
			for i := 0; i < n; i++ {
				b.exactAt(i, j, k, &ue)
				off := b.at(i, j, k)
				for m := 0; m < 5; m++ {
					b.rsd[off+m] = ue[m]
				}
			}
		}
	}
	b.applyOperator(b.frct, b.rsd, tm)
}
