// Package lu implements the NPB LU pseudo-application: a symmetric
// successive over-relaxation (SSOR) solver for the 3-D compressible
// Navier-Stokes equations, splitting the implicit operator into block
// lower and upper triangular sweeps. The parallel sweeps are pipelined
// along the j dimension, reproducing the structure whose per-plane
// synchronization the paper identifies as the cause of LU's lower
// scalability compared to BT and SP (§5.2).
package lu

import (
	"fmt"
	"math"
	"time"

	"npbgo/internal/grid"
	"npbgo/internal/nscore"
	"npbgo/internal/obs"
	"npbgo/internal/perfcount"
	"npbgo/internal/team"
	"npbgo/internal/timer"
	"npbgo/internal/trace"
	"npbgo/internal/verify"
)

// classSpec defines one LU problem class.
type classSpec struct {
	size  int
	itmax int
	dt    float64
}

var classes = map[byte]classSpec{
	'S': {12, 50, 0.5},
	'W': {33, 300, 1.5e-3},
	'A': {64, 250, 2.0},
	'B': {102, 250, 2.0},
	'C': {162, 250, 2.0},
}

const omega = 1.2

// Benchmark is a configured LU instance.
type Benchmark struct {
	Class   byte
	n       int
	itmax   int
	threads int
	hyper   bool // hyperplane-scheduled sweeps instead of pipelined
	timers  *timer.Set
	rec     *obs.Recorder      // nil without WithObs
	tr      *trace.Tracer      // nil without WithTrace
	pc      *perfcount.Sampler // nil without WithCounters
	sched   team.Schedule      // loop schedule, Static without WithSchedule
	c       nscore.Consts

	u, rsd, frct []float64 // 5-vector fields, m fastest

	// Per-worker sweep scratch: four 5x5 blocks, two 5-vectors and a
	// flux line.
	scratch []*sweepScratch

	// Steady-state machinery: the region bodies below are built once by
	// New and reused every istep (a closure literal at the call site
	// would allocate per invocation), keeping the timed loop free of
	// heap allocation (enforced by internal/allocgate). The op* fields
	// stage applyOperator's operands for the direction bodies; the
	// pipeline is cached per team.
	tm         *team.Team
	pipe       *team.Pipeline
	pipeOwner  *team.Team // team the cached pipeline was built for
	opOut, opW []float64

	xiBody      func(id int)
	etaBody     func(id int)
	zetaBody    func(id int)
	rhsInitBody func(id int)
	scaleBody   func(id int)
	updateBody  func(id int)
	lowerBody   func(id int)
	upperBody   func(id int)
}

type sweepScratch struct {
	az, ay, ax, d []float64 // 25 each
	fj, nj        []float64 // jacobian temporaries
	flux          []float64 // 5*n line scratch for applyOperator
	tv            [5]float64
}

func newSweepScratch(n int) *sweepScratch {
	return &sweepScratch{
		az: make([]float64, 25), ay: make([]float64, 25),
		ax: make([]float64, 25), d: make([]float64, 25),
		fj: make([]float64, 25), nj: make([]float64, 25),
		flux: make([]float64, 5*n),
	}
}

// Option configures optional benchmark behaviour.
type Option func(*Benchmark)

// WithObs attaches a runtime-metrics recorder to the run's team:
// per-worker busy and barrier-wait times, region counts and the
// worker-imbalance ratio of the obs layer.
func WithObs(rec *obs.Recorder) Option { return func(b *Benchmark) { b.rec = rec } }

// WithTrace attaches an execution tracer to the run's team: per-worker
// event timelines (region blocks, barrier and pipeline waits),
// exportable as Chrome/Perfetto JSON — the when-view that complements
// the obs layer's how-much totals.
func WithTrace(tr *trace.Tracer) Option { return func(b *Benchmark) { b.tr = tr } }

// WithCounters attaches a hardware-counter sampler to the run's team:
// per-worker cycles/instructions/cache-miss deltas are charged to pc at
// every parallel region. pc should be sized perfcount.New(threads); nil
// leaves counter sampling disabled.
func WithCounters(pc *perfcount.Sampler) Option { return func(b *Benchmark) { b.pc = pc } }

// WithSchedule selects the team's loop schedule for the explicit
// phases (operator sweeps, residual init/scale, flow update);
// team.Static (the default) is the paper's block distribution. The
// pipelined triangular sweeps always keep the static j-split: the
// per-plane Wait/Post handshake assumes worker id owns a fixed band.
func WithSchedule(s team.Schedule) Option { return func(b *Benchmark) { b.sched = s } }

// WithHyperplane selects hyperplane (wavefront) scheduling for the
// triangular sweeps instead of the default j-pipelined scheduling — the
// LU-HP variant, used by the scheduling ablation benchmark.
func WithHyperplane() Option { return func(b *Benchmark) { b.hyper = true } }

// WithTimers enables per-phase profiling of the SSOR iteration.
func WithTimers() Option { return func(b *Benchmark) { b.timers = timer.NewSet() } }

// New configures LU for the given class and thread count.
func New(class byte, threads int, opts ...Option) (*Benchmark, error) {
	spec, ok := classes[class]
	if !ok {
		return nil, fmt.Errorf("lu: unknown class %q", string(class))
	}
	if threads < 1 {
		return nil, fmt.Errorf("lu: threads %d < 1", threads)
	}
	b := &Benchmark{Class: class, n: spec.size, itmax: spec.itmax, threads: threads}
	for _, o := range opts {
		o(b)
	}
	b.c = nscore.SetConstants(spec.size, spec.dt)
	n3 := spec.size * spec.size * spec.size
	b.u = make([]float64, 5*n3)
	b.rsd = make([]float64, 5*n3)
	b.frct = make([]float64, 5*n3)
	b.scratch = make([]*sweepScratch, threads)
	for i := range b.scratch {
		b.scratch[i] = newSweepScratch(spec.size)
	}
	b.buildBodies()
	return b, nil
}

// buildBodies constructs every parallel-region body once. Each is a
// func(id int) handed straight to Team.Run; block bounds come from
// team.Block inside the body, per-worker scratch from the pools, and
// applyOperator's operands from the op* staging fields, so the SSOR
// loop creates no closures.
func (b *Benchmark) buildBodies() {
	n := b.n

	//npblint:hot xi-direction operator over the staged operands
	b.xiBody = func(id int) {
		for it := b.tm.Loop(id, 1, n-1); it.Next(); {
			b.xiFluxRange(b.opOut, b.opW, b.scratch[id].flux, it.Lo, it.Hi)
		}
	}

	//npblint:hot eta-direction operator over the staged operands
	b.etaBody = func(id int) {
		for it := b.tm.Loop(id, 1, n-1); it.Next(); {
			b.etaFluxRange(b.opOut, b.opW, b.scratch[id].flux, it.Lo, it.Hi)
		}
	}

	//npblint:hot zeta-direction operator over the staged operands
	b.zetaBody = func(id int) {
		for it := b.tm.Loop(id, 1, n-1); it.Next(); {
			b.zetaFluxRange(b.opOut, b.opW, b.scratch[id].flux, it.Lo, it.Hi)
		}
	}

	//npblint:hot residual initialization rsd = -frct
	b.rhsInitBody = func(id int) {
		for it := b.tm.Loop(id, 0, len(b.rsd)); it.Next(); {
			for i := it.Lo; i < it.Hi; i++ {
				b.rsd[i] = -b.frct[i]
			}
		}
	}

	//npblint:hot residual scaling by the pseudo-time step
	b.scaleBody = func(id int) {
		for it := b.tm.Loop(id, 1, n-1); it.Next(); {
			for k := it.Lo; k < it.Hi; k++ {
				for j := 1; j < n-1; j++ {
					off := b.at(1, j, k)
					for e := 0; e < 5*(n-2); e++ {
						b.rsd[off+e] *= b.c.Dt
					}
				}
			}
		}
	}

	//npblint:hot flow-variable update u += tmp*rsd
	b.updateBody = func(id int) {
		tmp := 1.0 / (omega * (2.0 - omega))
		for it := b.tm.Loop(id, 1, n-1); it.Next(); {
			for k := it.Lo; k < it.Hi; k++ {
				for j := 1; j < n-1; j++ {
					off := b.at(1, j, k)
					for e := 0; e < 5*(n-2); e++ {
						b.u[off+e] += tmp * b.rsd[off+e]
					}
				}
			}
		}
	}

	// The pipelined sweeps below must keep the static team.Block split:
	// each worker's Wait/Post handshake with its neighbours assumes
	// worker id owns the same fixed j-band on every k-plane, which a
	// dynamic chunk assignment would break.

	//npblint:hot lower-triangular sweep, pipelined forward over planes
	b.lowerBody = func(id int) {
		jlo, jhi := team.Block(1, n-1, b.tm.Size(), id)
		ws := b.scratch[id]
		for k := 1; k < n-1; k++ {
			b.pipe.Wait(id)
			for j := jlo; j < jhi; j++ {
				b.lowerRow(ws, j, k)
			}
			b.pipe.Post(id)
		}
	}

	//npblint:hot upper-triangular sweep, pipelined backward over planes
	b.upperBody = func(id int) {
		jlo, jhi := team.Block(1, n-1, b.tm.Size(), id)
		ws := b.scratch[id]
		for k := n - 2; k >= 1; k-- {
			b.pipe.WaitReverse(id)
			for j := jhi - 1; j >= jlo; j-- {
				b.upperRow(ws, j, k)
			}
			b.pipe.PostReverse(id)
		}
	}
}

// at returns the flat offset of component 0 at (i,j,k) for the 5-vector
// fields.
func (b *Benchmark) at(i, j, k int) int {
	return grid.Dim4{N1: 5, N2: b.n, N3: b.n, N4: b.n}.At(0, i, j, k)
}

// exactAt evaluates the exact solution at grid point (i,j,k).
func (b *Benchmark) exactAt(i, j, k int, out *[5]float64) {
	nscore.ExactSolution(
		float64(i)*b.c.Dnxm1, float64(j)*b.c.Dnym1, float64(k)*b.c.Dnzm1, out)
}

// setbv sets the exact solution on all six boundary faces (setbv).
func (b *Benchmark) setbv() {
	n := b.n
	var ue [5]float64
	set := func(i, j, k int) {
		b.exactAt(i, j, k, &ue)
		off := b.at(i, j, k)
		for m := 0; m < 5; m++ {
			b.u[off+m] = ue[m]
		}
	}
	for j := 0; j < n; j++ {
		for i := 0; i < n; i++ {
			set(i, j, 0)
			set(i, j, n-1)
		}
	}
	for k := 0; k < n; k++ {
		for i := 0; i < n; i++ {
			set(i, 0, k)
			set(i, n-1, k)
		}
	}
	for k := 0; k < n; k++ {
		for j := 0; j < n; j++ {
			set(0, j, k)
			set(n-1, j, k)
		}
	}
}

// setiv sets the interior initial values by transfinite interpolation of
// the boundary exact values (setiv).
func (b *Benchmark) setiv() {
	n := b.n
	var ue1, ue2, ue3, ue4, ue5, ue6 [5]float64
	for k := 1; k < n-1; k++ {
		zeta := float64(k) * b.c.Dnzm1
		for j := 1; j < n-1; j++ {
			eta := float64(j) * b.c.Dnym1
			for i := 1; i < n-1; i++ {
				xi := float64(i) * b.c.Dnxm1
				b.exactAt(0, j, k, &ue1)
				b.exactAt(n-1, j, k, &ue2)
				b.exactAt(i, 0, k, &ue3)
				b.exactAt(i, n-1, k, &ue4)
				b.exactAt(i, j, 0, &ue5)
				b.exactAt(i, j, n-1, &ue6)
				off := b.at(i, j, k)
				for m := 0; m < 5; m++ {
					pxi := (1.0-xi)*ue1[m] + xi*ue2[m]
					peta := (1.0-eta)*ue3[m] + eta*ue4[m]
					pzeta := (1.0-zeta)*ue5[m] + zeta*ue6[m]
					b.u[off+m] = pxi + peta + pzeta -
						pxi*peta - peta*pzeta - pzeta*pxi +
						pxi*peta*pzeta
				}
			}
		}
	}
}

// l2norm computes the component-wise L2 norms of v's interior, scaled by
// the interior point count (l2norm).
func (b *Benchmark) l2norm(v []float64) [5]float64 {
	n := b.n
	var sum [5]float64
	for k := 1; k < n-1; k++ {
		for j := 1; j < n-1; j++ {
			for i := 1; i < n-1; i++ {
				off := b.at(i, j, k)
				for m := 0; m < 5; m++ {
					sum[m] += v[off+m] * v[off+m]
				}
			}
		}
	}
	den := float64(n-2) * float64(n-2) * float64(n-2)
	for m := 0; m < 5; m++ {
		sum[m] = math.Sqrt(sum[m] / den)
	}
	return sum
}

// errorNorm computes the interior RMS difference between u and the
// exact solution (error).
func (b *Benchmark) errorNorm() [5]float64 {
	n := b.n
	var sum [5]float64
	var ue [5]float64
	for k := 1; k < n-1; k++ {
		for j := 1; j < n-1; j++ {
			for i := 1; i < n-1; i++ {
				b.exactAt(i, j, k, &ue)
				off := b.at(i, j, k)
				for m := 0; m < 5; m++ {
					d := ue[m] - b.u[off+m]
					sum[m] += d * d
				}
			}
		}
	}
	den := float64(n-2) * float64(n-2) * float64(n-2)
	for m := 0; m < 5; m++ {
		sum[m] = math.Sqrt(sum[m] / den)
	}
	return sum
}

// pintgr computes the surface-integral verification quantity frc.
func (b *Benchmark) pintgr() float64 {
	n := b.n
	c := &b.c
	// Integration sub-domain bounds (0-based translation of pintgr's
	// ibeg/ifin etc. for the serial full grid).
	ii1, ii2 := 1, n-2
	ji1, ji2 := 1, n-3
	ki1, ki2 := 2, n-2

	phi := func(off int) float64 {
		return c.C2 * (b.u[off+4] -
			0.5*(b.u[off+1]*b.u[off+1]+b.u[off+2]*b.u[off+2]+b.u[off+3]*b.u[off+3])/b.u[off])
	}

	frc1 := 0.0
	for j := ji1; j < ji2; j++ {
		for i := ii1; i < ii2; i++ {
			s := 0.0
			for _, k := range [2]int{ki1, ki2} {
				s += phi(b.at(i, j, k)) + phi(b.at(i+1, j, k)) +
					phi(b.at(i, j+1, k)) + phi(b.at(i+1, j+1, k))
			}
			frc1 += s
		}
	}
	frc1 *= c.Dnxm1 * c.Dnym1

	frc2 := 0.0
	for k := ki1; k < ki2; k++ {
		for i := ii1; i < ii2; i++ {
			s := 0.0
			for _, j := range [2]int{ji1, ji2} {
				s += phi(b.at(i, j, k)) + phi(b.at(i+1, j, k)) +
					phi(b.at(i, j, k+1)) + phi(b.at(i+1, j, k+1))
			}
			frc2 += s
		}
	}
	frc2 *= c.Dnxm1 * c.Dnzm1

	frc3 := 0.0
	for k := ki1; k < ki2; k++ {
		for j := ji1; j < ji2; j++ {
			s := 0.0
			for _, i := range [2]int{ii1, ii2} {
				s += phi(b.at(i, j, k)) + phi(b.at(i, j+1, k)) +
					phi(b.at(i, j, k+1)) + phi(b.at(i, j+1, k+1))
			}
			frc3 += s
		}
	}
	frc3 *= c.Dnym1 * c.Dnzm1

	return 0.25 * (frc1 + frc2 + frc3)
}

// Result reports one LU run.
type Result struct {
	RsdNm   [5]float64 // final Newton residual norms
	ErrNm   [5]float64 // solution error norms
	Frc     float64    // surface integral
	Elapsed time.Duration
	Mops    float64
	Verify  *verify.Report
	Timers  *timer.Set // per-phase profile when WithTimers was given
}

// Run executes the benchmark following lu.f: boundary and interior
// initialization, forcing computation, then itmax timed SSOR iterations
// and verification.
func (b *Benchmark) Run() Result {
	tm := team.New(b.threads, team.WithRecorder(b.rec), team.WithTracer(b.tr), team.WithCounters(b.pc), team.WithSchedule(b.sched))
	defer tm.Close()

	b.setbv()
	b.setiv()
	b.erhs(tm)

	elapsed := b.ssor(tm)

	var res Result
	res.Timers = b.timers
	res.RsdNm = b.l2norm(b.rsd)
	res.ErrNm = b.errorNorm()
	res.Frc = b.pintgr()
	res.Elapsed = elapsed
	nf := float64(b.n)
	flops := float64(b.itmax) * (1984.77*nf*nf*nf - 10923.3*nf*nf + 27770.9*nf - 144010.0)
	if s := elapsed.Seconds(); s > 0 {
		res.Mops = flops * 1e-6 / s
	}

	rep := &verify.Report{Tier: verify.TierOfficial}
	if ref, ok := reference[b.Class]; ok {
		for m := 0; m < 5; m++ {
			rep.Add(fmt.Sprintf("rsdnm(%d)", m+1), res.RsdNm[m], ref.xcr[m])
		}
		for m := 0; m < 5; m++ {
			rep.Add(fmt.Sprintf("errnm(%d)", m+1), res.ErrNm[m], ref.xce[m])
		}
		rep.Add("frc", res.Frc, ref.xci)
	} else {
		rep.Tier = verify.TierNone
	}
	res.Verify = rep
	return res
}

// refVals holds the 5+5+1 verification values of one class.
type refVals struct {
	xcr, xce [5]float64
	xci      float64
}

// reference verification values for classes S, W and A: produced by
// this implementation and agreeing with the published verify.f
// constants to 12+ significant digits where cross-checked (S and A
// residual norms and surface integrals). Classes B and C run
// unverified.
var reference = map[byte]refVals{
	'S': {
		xcr: [5]float64{1.6196343210977e-02, 2.1976745164819e-03, 1.5179927653403e-03, 1.5029584436006e-03, 3.4264073155897e-02},
		xce: [5]float64{6.4223319957962e-04, 8.4144342047378e-05, 5.8588269616503e-05, 5.8474222595125e-05, 1.3103347914112e-03},
		xci: 7.8418928865937e+00,
	},
	'W': {
		xcr: [5]float64{1.2365116381922e+01, 1.3172284777985e+00, 2.5501207130948e+00, 2.3261877502524e+00, 2.8267994441886e+01},
		xce: [5]float64{4.8678771442163e-01, 5.0646528809815e-02, 9.2818181019599e-02, 8.5701265427329e-02, 1.0842774177923e+00},
		xci: 1.1613993110230e+01,
	},
	'A': {
		xcr: [5]float64{7.7902107606689e+02, 6.3402765259693e+01, 1.9499249727293e+02, 1.7845301160419e+02, 1.8384760349464e+03},
		xce: [5]float64{2.9964085685472e+01, 2.8194576365003e+00, 7.3473412698775e+00, 6.7139225687777e+00, 7.0715315688393e+01},
		xci: 2.6030925604886e+01,
	},
}
