package ft

import (
	"math"
	"math/cmplx"
	"testing"

	"npbgo/internal/team"
)

func TestFFTRoundTrip(t *testing.T) {
	// inverse(forward(x)) == ntotal * x for the unnormalized pair.
	b, err := New('S', 1)
	if err != nil {
		t.Fatal(err)
	}
	tm := team.New(1)
	defer tm.Close()
	b.computeInitialConditions(tm)
	orig := make([]complex128, len(b.u1))
	copy(orig, b.u1)

	b.fft3d(1, b.u1, b.u0, tm)
	b.fft3d(-1, b.u0, b.u2, tm)

	ntotal := float64(b.p.nx) * float64(b.p.ny) * float64(b.p.nz)
	for i := 0; i < len(orig); i += 997 { // sample
		want := orig[i] * complex(ntotal, 0)
		if cmplx.Abs(b.u2[i]-want) > 1e-6*cmplx.Abs(want) {
			t.Fatalf("roundtrip mismatch at %d: %v vs %v", i, b.u2[i], want)
		}
	}
}

func TestForwardDeltaFunctionIsFlat(t *testing.T) {
	// The transform of a delta at the origin is constant 1 across the
	// spectrum — a classic analytic FFT check.
	b, _ := New('S', 1)
	tm := team.New(1)
	defer tm.Close()
	for i := range b.u1 {
		b.u1[i] = 0
	}
	b.u1[0] = 1
	b.fft3d(1, b.u1, b.u0, tm)
	for i := 0; i < len(b.u0); i += 1013 {
		if cmplx.Abs(b.u0[i]-1) > 1e-10 {
			t.Fatalf("spectrum of delta not flat at %d: %v", i, b.u0[i])
		}
	}
}

func TestParseval(t *testing.T) {
	// sum|x|^2 * ntotal == sum|X|^2 for the unnormalized forward
	// transform.
	b, _ := New('S', 1)
	tm := team.New(1)
	defer tm.Close()
	b.computeInitialConditions(tm)
	var inE float64
	for _, v := range b.u1 {
		inE += real(v)*real(v) + imag(v)*imag(v)
	}
	b.fft3d(1, b.u1, b.u0, tm)
	var outE float64
	for _, v := range b.u0 {
		outE += real(v)*real(v) + imag(v)*imag(v)
	}
	ntotal := float64(b.p.nx) * float64(b.p.ny) * float64(b.p.nz)
	if math.Abs(outE-inE*ntotal) > 1e-8*outE {
		t.Fatalf("Parseval violated: %v vs %v", outE, inE*ntotal)
	}
}

func TestTwiddleRange(t *testing.T) {
	b, _ := New('S', 1)
	tm := team.New(1)
	defer tm.Close()
	b.computeIndexMap(tm)
	if b.twiddle[0] != 1 {
		t.Fatalf("zero frequency twiddle = %v, want 1", b.twiddle[0])
	}
	for i, w := range b.twiddle {
		if w <= 0 || w > 1 {
			t.Fatalf("twiddle[%d]=%v outside (0,1]", i, w)
		}
	}
}

func TestClassSVerifies(t *testing.T) {
	b, err := New('S', 1)
	if err != nil {
		t.Fatal(err)
	}
	res := b.Run()
	if !res.Verify.Passed() {
		t.Fatalf("class S failed verification:\n%s", res.Verify)
	}
}

func TestParallelBitwiseMatchesSerial(t *testing.T) {
	s, _ := New('S', 1)
	sres := s.Run()
	for _, n := range []int{2, 4} {
		p, _ := New('S', n)
		pres := p.Run()
		for i := range sres.Sums {
			if sres.Sums[i] != pres.Sums[i] {
				t.Fatalf("threads=%d checksum %d differs: %v vs %v", n, i, sres.Sums[i], pres.Sums[i])
			}
		}
	}
}

func TestFFTInitTable(t *testing.T) {
	r := fftInit(8)
	if r.m != 3 {
		t.Fatalf("m = %d, want 3", r.m)
	}
	// Stage 1 root is exp(0) = 1.
	if r.u[0] != 1 {
		t.Fatalf("first root = %v", r.u[0])
	}
	// Stage 3 roots are exp(i*pi*k/4), k=0..3, at offset 3.
	want := cmplx.Exp(complex(0, math.Pi/4))
	if cmplx.Abs(r.u[4]-want) > 1e-15 {
		t.Fatalf("root = %v, want %v", r.u[4], want)
	}
}

func TestIlog2(t *testing.T) {
	for _, c := range []struct{ n, m int }{{1, 0}, {2, 1}, {32, 5}, {256, 8}} {
		if got := ilog2(c.n); got != c.m {
			t.Fatalf("ilog2(%d) = %d, want %d", c.n, got, c.m)
		}
	}
}

func TestUnknownClassRejected(t *testing.T) {
	if _, err := New('X', 1); err == nil {
		t.Fatal("class X accepted")
	}
	if _, err := New('S', 0); err == nil {
		t.Fatal("zero threads accepted")
	}
}

func TestEvolveAppliesTwiddle(t *testing.T) {
	b, _ := New('S', 1)
	tm := team.New(1)
	defer tm.Close()
	b.computeIndexMap(tm)
	for i := range b.u0 {
		b.u0[i] = complex(1, 1)
	}
	b.evolve(tm)
	for i := 0; i < len(b.u0); i += 2048 {
		want := complex(b.twiddle[i], b.twiddle[i])
		if b.u0[i] != want || b.u1[i] != want {
			t.Fatalf("evolve at %d: u0=%v u1=%v want %v", i, b.u0[i], b.u1[i], want)
		}
	}
	// A second evolve squares the factor.
	b.evolve(tm)
	i := 4096
	want := complex(b.twiddle[i]*b.twiddle[i], b.twiddle[i]*b.twiddle[i])
	if cmplx.Abs(b.u0[i]-want) > 1e-15 {
		t.Fatalf("second evolve at %d: %v want %v", i, b.u0[i], want)
	}
}

func TestIndexMapSymmetry(t *testing.T) {
	// twiddle depends only on squared signed frequencies, so index i and
	// nx-i (i > 0) must map to the same factor.
	b, _ := New('S', 1)
	tm := team.New(1)
	defer tm.Close()
	b.computeIndexMap(tm)
	nx := b.p.nx
	for i := 1; i < nx/2; i += 7 {
		a := b.twiddle[b.c.at(i, 3, 5)]
		c := b.twiddle[b.c.at(nx-i, 3, 5)]
		if a != c {
			t.Fatalf("twiddle asymmetric at i=%d: %v vs %v", i, a, c)
		}
	}
}
