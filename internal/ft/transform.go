package ft

import (
	"fmt"

	"npbgo/internal/team"
)

// Transform3D computes the unnormalized 3-D discrete Fourier transform
// (dir = +1) or its unnormalized inverse (dir = -1; divide by nx*ny*nz
// to invert exactly) of data in place. data holds nx*ny*nz complex
// values with the first index fastest; each extent must be a power of
// two. This is the benchmark's FFT machinery exposed as a library
// routine.
func Transform3D(dir, nx, ny, nz int, data []complex128, threads int) error {
	if dir != 1 && dir != -1 {
		return fmt.Errorf("ft: dir must be +1 or -1, got %d", dir)
	}
	for _, n := range [3]int{nx, ny, nz} {
		if n < 2 || n&(n-1) != 0 {
			return fmt.Errorf("ft: extent %d is not a power of two >= 2", n)
		}
	}
	if len(data) != nx*ny*nz {
		return fmt.Errorf("ft: data has %d values, want %d", len(data), nx*ny*nz)
	}
	if threads < 1 {
		return fmt.Errorf("ft: threads %d < 1", threads)
	}
	c := cube{nx, ny, nz}
	r1 := fftInit(nx)
	r2 := fftInit(ny)
	r3 := fftInit(nz)
	tm := team.New(threads)
	defer tm.Close()
	if dir == 1 {
		cffts1(1, c, data, data, r1, tm)
		cffts2(1, c, data, data, r2, tm)
		cffts3(1, c, data, data, r3, tm)
	} else {
		cffts3(-1, c, data, data, r3, tm)
		cffts2(-1, c, data, data, r2, tm)
		cffts1(-1, c, data, data, r1, tm)
	}
	return nil
}
