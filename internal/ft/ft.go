// Package ft implements the NPB FT kernel: the numerical solution of a
// 3-D heat-type PDE with periodic boundaries by forward FFT of a random
// initial state, repeated spectral evolution, and inverse FFT with a
// running checksum. FT is the paper's memory-hungriest benchmark (class
// A needs roughly 350 MB, which is what exposed the JVM memory ceiling
// on the paper's SUN Enterprise).
package ft

import (
	"context"
	"fmt"
	"math"
	"time"

	"npbgo/internal/obs"
	"npbgo/internal/perfcount"
	"npbgo/internal/randdp"
	"npbgo/internal/team"
	"npbgo/internal/trace"
	"npbgo/internal/verify"
)

const (
	seed  = 314159265.0
	alpha = 1.0e-6
)

type params struct {
	nx, ny, nz int
	niter      int
	sums       []complex128 // per-iteration reference checksums
	tier       verify.Tier
}

// Reference checksums transcribed from the FT verification tables
// (see DESIGN.md §5 on verification tiers).
var classes = map[byte]params{
	'S': {64, 64, 64, 6, []complex128{
		complex(5.546087004964e+02, 4.845363331978e+02),
		complex(5.546385409189e+02, 4.865304269511e+02),
		complex(5.546148406171e+02, 4.883910722336e+02),
		complex(5.545423607415e+02, 4.901273169046e+02),
		complex(5.544255039624e+02, 4.917475857993e+02),
		complex(5.542683411902e+02, 4.932597244941e+02),
	}, verify.TierOfficial},
	'W': {128, 128, 32, 6, []complex128{
		complex(5.673612178944e+02, 5.293246849175e+02),
		complex(5.631436885271e+02, 5.282149986629e+02),
		complex(5.594024089970e+02, 5.270996558037e+02),
		complex(5.560698047020e+02, 5.260027904925e+02),
		complex(5.530898991250e+02, 5.249400845633e+02),
		complex(5.504159734538e+02, 5.239212247086e+02),
	}, verify.TierOfficial},
	'A': {256, 256, 128, 6, []complex128{
		complex(5.046735008193e+02, 5.114047905510e+02),
		complex(5.059412319734e+02, 5.098809666433e+02),
		complex(5.069376896287e+02, 5.098144042213e+02),
		complex(5.077892868474e+02, 5.101336130759e+02),
		complex(5.085233095391e+02, 5.104914655194e+02),
		complex(5.091487099959e+02, 5.107917842803e+02),
	}, verify.TierOfficial},
	'B': {512, 256, 256, 20, nil, verify.TierNone},
	'C': {512, 512, 512, 20, nil, verify.TierNone},
}

// Benchmark is a configured FT instance; New allocates the three complex
// fields and the twiddle array.
type Benchmark struct {
	Class   byte
	p       params
	threads int
	ctx     context.Context    // nil means not cancellable
	rec     *obs.Recorder      // nil without WithObs
	tr      *trace.Tracer      // nil without WithTrace
	pc      *perfcount.Sampler // nil without WithCounters
	sched   team.Schedule      // loop schedule, Static without WithSchedule

	c          cube
	u0, u1, u2 []complex128
	twiddle    []float64
	r1, r2, r3 *roots

	// Steady-state machinery: per-worker scratch and region bodies are
	// built once by New and reused on every call, so the timed loop
	// performs no heap allocation (enforced by internal/allocgate). The
	// fft* fields stage the current transform's direction and operands
	// for the prebuilt bodies.
	tm        *team.Team
	ws        []*workspace // per-worker FFT pencil scratch, sized max extent
	icScratch [][]float64  // per-worker plane scratch for the initial field
	starts    []float64    // per-plane generator seeds

	fftDir        int
	fftIn, fftOut []complex128

	initCondBody func(id int)
	evolveBody   func(id int)
	c1Body       func(id int)
	c2Body       func(id int)
	c3Body       func(id int)
}

// Option configures optional benchmark behaviour.
type Option func(*Benchmark)

// WithObs attaches a runtime-metrics recorder to the run's team:
// per-worker busy and barrier-wait times, region counts and the
// worker-imbalance ratio of the obs layer.
func WithObs(rec *obs.Recorder) Option { return func(b *Benchmark) { b.rec = rec } }

// WithTrace attaches an execution tracer to the run's team: per-worker
// event timelines (region blocks, barrier and pipeline waits),
// exportable as Chrome/Perfetto JSON — the when-view that complements
// the obs layer's how-much totals.
func WithTrace(tr *trace.Tracer) Option { return func(b *Benchmark) { b.tr = tr } }

// WithCounters attaches a hardware-counter sampler to the run's team:
// per-worker cycles/instructions/cache-miss deltas are charged to pc at
// every parallel region. pc should be sized perfcount.New(threads); nil
// leaves counter sampling disabled.
func WithCounters(pc *perfcount.Sampler) Option { return func(b *Benchmark) { b.pc = pc } }

// WithSchedule selects the team's loop schedule for the FFT plane
// sweeps; team.Static (the default) is the paper's block distribution.
func WithSchedule(s team.Schedule) Option { return func(b *Benchmark) { b.sched = s } }

// WithContext makes Run cancellable: when ctx expires the team is
// cancelled and the timed iteration loop stops within about one
// iteration, returning a partial (unverifiable) result.
func WithContext(ctx context.Context) Option {
	return func(b *Benchmark) { b.ctx = ctx }
}

// New configures FT for the given class and thread count.
func New(class byte, threads int, opts ...Option) (*Benchmark, error) {
	p, ok := classes[class]
	if !ok {
		return nil, fmt.Errorf("ft: unknown class %q", string(class))
	}
	if threads < 1 {
		return nil, fmt.Errorf("ft: threads %d < 1", threads)
	}
	b := &Benchmark{Class: class, p: p, threads: threads}
	for _, o := range opts {
		o(b)
	}
	b.c = cube{p.nx, p.ny, p.nz}
	n := b.c.len()
	b.u0 = make([]complex128, n)
	b.u1 = make([]complex128, n)
	b.u2 = make([]complex128, n)
	b.twiddle = make([]float64, n)
	b.r1 = fftInit(p.nx)
	b.r2 = fftInit(p.ny)
	b.r3 = fftInit(p.nz)
	maxN := p.nx
	if p.ny > maxN {
		maxN = p.ny
	}
	if p.nz > maxN {
		maxN = p.nz
	}
	b.ws = make([]*workspace, threads)
	b.icScratch = make([][]float64, threads)
	for i := range b.ws {
		b.ws[i] = newWorkspace(maxN)
		b.icScratch[i] = make([]float64, 2*p.nx*p.ny)
	}
	b.starts = make([]float64, p.nz)
	b.buildBodies()
	return b, nil
}

// buildBodies constructs every parallel-region body once. Each is a
// func(id int) handed straight to Team.Run; loop shares come from the
// team's schedule iterator inside the body, scratch from the per-worker
// pools, and the FFT operands from the fft* staging fields, so the
// timed loop creates no closures.
func (b *Benchmark) buildBodies() {
	//npblint:hot random plane fill with the per-worker scratch buffer
	b.initCondBody = func(id int) {
		nx, ny, nz := b.p.nx, b.p.ny, b.p.nz
		scratch := b.icScratch[id]
		for it := b.tm.Loop(id, 0, nz); it.Next(); {
			for k := it.Lo; k < it.Hi; k++ {
				x0 := b.starts[k]
				randdp.Vranlc(len(scratch), &x0, randdp.A, scratch)
				base := b.c.at(0, 0, k)
				for e := 0; e < nx*ny; e++ {
					b.u1[base+e] = complex(scratch[2*e], scratch[2*e+1])
				}
			}
		}
	}

	//npblint:hot spectral evolution u0 *= twiddle, u1 = u0
	b.evolveBody = func(id int) {
		for it := b.tm.Loop(id, 0, b.c.len()); it.Next(); {
			for i := it.Lo; i < it.Hi; i++ {
				b.u0[i] *= complex(b.twiddle[i], 0)
				b.u1[i] = b.u0[i]
			}
		}
	}

	//npblint:hot first-dimension FFT over the staged operands
	b.c1Body = func(id int) {
		for it := b.tm.Loop(id, 0, b.c.d3); it.Next(); {
			cffts1Range(b.fftDir, b.c, b.fftIn, b.fftOut, b.r1, b.ws[id], it.Lo, it.Hi)
		}
	}

	//npblint:hot second-dimension FFT over the staged operands
	b.c2Body = func(id int) {
		for it := b.tm.Loop(id, 0, b.c.d3); it.Next(); {
			cffts2Range(b.fftDir, b.c, b.fftIn, b.fftOut, b.r2, b.ws[id], it.Lo, it.Hi)
		}
	}

	//npblint:hot third-dimension FFT over the staged operands
	b.c3Body = func(id int) {
		for it := b.tm.Loop(id, 0, b.c.d2); it.Next(); {
			cffts3Range(b.fftDir, b.c, b.fftIn, b.fftOut, b.r3, b.ws[id], it.Lo, it.Hi)
		}
	}
}

// computeIndexMap fills twiddle(i,j,k) = exp(ap*(i'^2+j'^2+k'^2)) where
// the primes are the signed frequencies of each index, as ft.f's
// compute_indexmap.
func (b *Benchmark) computeIndexMap(tm *team.Team) {
	nx, ny, nz := b.p.nx, b.p.ny, b.p.nz
	ap := -4.0 * alpha * math.Pi * math.Pi
	tm.ForBlock(0, nz, func(klo, khi int) {
		for k := klo; k < khi; k++ {
			kk := ((k + nz/2) % nz) - nz/2
			for j := 0; j < ny; j++ {
				jj := ((j + ny/2) % ny) - ny/2
				base := b.c.at(0, j, k)
				for i := 0; i < nx; i++ {
					ii := ((i + nx/2) % nx) - nx/2
					b.twiddle[base+i] = math.Exp(ap * float64(ii*ii+jj*jj+kk*kk))
				}
			}
		}
	})
}

// computeInitialConditions fills u1 with the standard random complex
// field: 2*nx*ny generator draws per k-plane (real/imaginary
// interleaved), with the plane seeds jumped ahead so planes can be
// filled independently, matching ft.f point-for-point.
func (b *Benchmark) computeInitialConditions(tm *team.Team) {
	nx, ny, nz := b.p.nx, b.p.ny, b.p.nz
	an := randdp.Ipow46(randdp.A, 2*nx*ny)
	s := seed
	for k := 0; k < nz; k++ {
		b.starts[k] = s
		if k != nz-1 {
			randdp.Randlc(&s, an)
		}
	}
	b.tm = tm
	tm.Run(b.initCondBody)
}

// evolve advances the spectral field one time step: u0 *= twiddle,
// u1 = u0, as ft.f's evolve.
func (b *Benchmark) evolve(tm *team.Team) {
	b.tm = tm
	tm.Run(b.evolveBody)
}

// runFFT stages one transform's direction and operands for body and
// dispatches it on the current team.
func (b *Benchmark) runFFT(body func(id int), dir int, in, out []complex128) {
	b.fftDir, b.fftIn, b.fftOut = dir, in, out
	b.tm.Run(body)
}

// fft3d applies the full 3-D transform (dir = +1 forward, -1 inverse,
// unnormalized; checksums carry the 1/ntotal factor as in the original).
func (b *Benchmark) fft3d(dir int, in, out []complex128, tm *team.Team) {
	b.tm = tm
	if dir == 1 {
		b.runFFT(b.c1Body, 1, in, out)
		b.runFFT(b.c2Body, 1, out, out)
		b.runFFT(b.c3Body, 1, out, out)
	} else {
		b.runFFT(b.c3Body, -1, in, out)
		b.runFFT(b.c2Body, -1, out, out)
		b.runFFT(b.c1Body, -1, out, out)
	}
}

// Iter runs one timed evolution step — spectral evolve, inverse 3-D
// FFT, checksum — on tm, whose Size must equal the thread count the
// Benchmark was built with, and returns the step's checksum. Iter is
// the steady-state hook the allocation gate measures: after the first
// call it performs no heap allocation.
func (b *Benchmark) Iter(tm *team.Team) complex128 {
	b.evolve(tm)
	b.fft3d(-1, b.u1, b.u2, tm)
	return b.checksum(b.u2)
}

// checksum accumulates the standard 1024-point checksum of u, scaled by
// the total point count.
func (b *Benchmark) checksum(u []complex128) complex128 {
	nx, ny, nz := b.p.nx, b.p.ny, b.p.nz
	chk := complex(0, 0)
	for j := 1; j <= 1024; j++ {
		q := j % nx
		r := (3 * j) % ny
		s := (5 * j) % nz
		chk += u[b.c.at(q, r, s)]
	}
	ntotal := float64(nx) * float64(ny) * float64(nz)
	return chk / complex(ntotal, 0)
}

// Result reports one FT run.
type Result struct {
	Sums    []complex128 // per-iteration checksums
	Elapsed time.Duration
	Mops    float64
	Verify  *verify.Report
}

// Run executes the benchmark: untimed setup feed-through, then the timed
// section (initialization, forward FFT, niter evolve/inverse-FFT/
// checksum steps), then verification, following ft.f.
func (b *Benchmark) Run() Result {
	tm := team.New(b.threads, team.WithRecorder(b.rec), team.WithTracer(b.tr), team.WithCounters(b.pc), team.WithSchedule(b.sched))
	defer tm.Close()
	if b.ctx != nil {
		stop := tm.WatchContext(b.ctx)
		defer stop()
	}

	// Untimed warm-up touching all code paths and pages.
	b.computeIndexMap(tm)
	b.computeInitialConditions(tm)
	b.fft3d(1, b.u1, b.u0, tm)

	start := time.Now()
	b.computeIndexMap(tm)
	b.computeInitialConditions(tm)
	b.fft3d(1, b.u1, b.u0, tm)
	sums := make([]complex128, 0, b.p.niter)
	for iter := 1; iter <= b.p.niter; iter++ {
		if tm.Cancelled() {
			break
		}
		sums = append(sums, b.Iter(tm))
	}
	elapsed := time.Since(start)

	var res Result
	res.Sums = sums
	res.Elapsed = elapsed
	ntotal := float64(b.p.nx) * float64(b.p.ny) * float64(b.p.nz)
	ntLog := math.Log2(ntotal)
	// Standard NPB FT flop estimate.
	flops := ntotal * (14.8157 + 7.19641*ntLog + (5.23518+7.21113*ntLog)*float64(b.p.niter))
	if s := elapsed.Seconds(); s > 0 {
		res.Mops = flops * 1e-6 / s
	}

	rep := &verify.Report{Tier: b.p.tier}
	if b.p.sums != nil {
		for i, ref := range b.p.sums {
			if i >= len(sums) {
				break // cancelled run: only the completed iterations exist
			}
			rep.AddTol(fmt.Sprintf("checksum[%d].re", i+1), real(sums[i]), real(ref), 1e-12)
			rep.AddTol(fmt.Sprintf("checksum[%d].im", i+1), imag(sums[i]), imag(ref), 1e-12)
		}
	}
	res.Verify = rep
	return res
}
