package ft

import (
	"math"
	"math/cmplx"

	"npbgo/internal/grid"
	"npbgo/internal/team"
)

// fftBlock is the number of pencils transformed together, the cache
// blocking factor of the Fortran original (fftblock = 16). All NPB grid
// extents are powers of two >= 32, so it always divides evenly, but
// partial blocks are handled anyway.
const fftBlock = 16

// roots holds the precomputed roots-of-unity table of fft_init: for each
// FFT stage j (sub-transform length ln = 2^(j-1)), the ln roots
// exp(i*pi*k/ln), stored consecutively as in the Fortran u array.
type roots struct {
	m int // log2(n)
	u []complex128
}

// fftInit builds the roots table for transforms of length n (power of
// two), as ft.f's fft_init.
func fftInit(n int) *roots {
	m := ilog2(n)
	r := &roots{m: m, u: make([]complex128, n)}
	ku := 0
	ln := 1
	for j := 1; j <= m; j++ {
		t := math.Pi / float64(ln)
		for i := 0; i < ln; i++ {
			ti := float64(i) * t
			r.u[ku+i] = complex(math.Cos(ti), math.Sin(ti))
		}
		ku += ln
		ln *= 2
	}
	return r
}

// ilog2 returns log2(n) for a positive power of two.
func ilog2(n int) int {
	m := 0
	for 1<<m < n {
		m++
	}
	return m
}

// workspace is the per-worker pencil scratch: two (block x n) complex
// buffers laid out pencil-index fastest, matching the Fortran
// x(fftblock, n) arrays.
type workspace struct {
	x, y []complex128
}

func newWorkspace(maxN int) *workspace {
	return &workspace{
		x: make([]complex128, fftBlock*maxN),
		y: make([]complex128, fftBlock*maxN),
	}
}

// fftz2 performs one (or one pair of) Stockham radix-2 stages l of an
// n-point transform over ny pencils, reading x and writing y, a literal
// transcription of ft.f's fftz2. is >= 1 selects the forward sign; the
// inverse uses conjugated roots.
func fftz2(is, l, m, n, ny int, u []complex128, x, y []complex128) {
	n1 := n / 2
	lk := 1 << (l - 1)
	li := 1 << (m - l)
	lj := 2 * lk
	// The Fortran u table stores m in u(1) with roots from u(2), so its
	// u(li+1+i) is index li+i-1 of this header-less table.
	ku := li - 1
	for i := 0; i < li; i++ {
		i11 := i * lk
		i12 := i11 + n1
		i21 := i * lj
		i22 := i21 + lk
		u1 := u[ku+i]
		if is < 1 {
			u1 = cmplx.Conj(u1)
		}
		for k := 0; k < lk; k++ {
			xo1 := (i11 + k) * fftBlock
			xo2 := (i12 + k) * fftBlock
			yo1 := (i21 + k) * fftBlock
			yo2 := (i22 + k) * fftBlock
			for j := 0; j < ny; j++ {
				x11 := x[xo1+j]
				x21 := x[xo2+j]
				y[yo1+j] = x11 + x21
				y[yo2+j] = u1 * (x11 - x21)
			}
		}
	}
}

// cfftz computes ny simultaneous n-point complex FFTs over the pencils
// in ws.x (is = 1 forward, is = -1 inverse, unnormalized), leaving the
// result in ws.x, as ft.f's cfftz.
func cfftz(is, n, ny int, r *roots, ws *workspace) {
	m := r.m
	for l := 1; l <= m; l += 2 {
		fftz2(is, l, m, n, ny, r.u, ws.x, ws.y)
		if l == m {
			// Odd number of stages: result currently in y; copy back.
			copy(ws.x[:n*fftBlock], ws.y[:n*fftBlock])
			return
		}
		fftz2(is, l+1, m, n, ny, r.u, ws.y, ws.x)
	}
}

// cube is the 3-D complex field layout, first index fastest.
type cube struct{ d1, d2, d3 int }

func (c cube) len() int { return c.d1 * c.d2 * c.d3 }
func (c cube) at(i, j, k int) int {
	return grid.Dim3{N1: c.d1, N2: c.d2, N3: c.d3}.At(i, j, k)
}

// cffts1Range transforms the planes [klo, khi) along the first
// (contiguous) dimension using the caller's workspace: for every (j,k)
// pencil batch, gather into the block scratch, transform, scatter into
// out. One worker's share of cffts1.
func cffts1Range(is int, c cube, in, out []complex128, r *roots, ws *workspace, klo, khi int) {
	n := c.d1
	for k := klo; k < khi; k++ {
		for j0 := 0; j0 < c.d2; j0 += fftBlock {
			ny := min(fftBlock, c.d2-j0)
			for i := 0; i < n; i++ {
				base := c.at(i, j0, k)
				for jj := 0; jj < ny; jj++ {
					ws.x[i*fftBlock+jj] = in[base+jj*c.d1]
				}
			}
			cfftz(is, n, ny, r, ws)
			for i := 0; i < n; i++ {
				base := c.at(i, j0, k)
				for jj := 0; jj < ny; jj++ {
					out[base+jj*c.d1] = ws.x[i*fftBlock+jj]
				}
			}
		}
	}
}

// cffts1 transforms along the first dimension with planes k split over
// the team, allocating each worker a fresh workspace — the
// convenience form the library tests use. The Benchmark's timed loop
// goes through the preallocated per-worker workspaces instead.
func cffts1(is int, c cube, in, out []complex128, r *roots, tm *team.Team) {
	tm.ForBlock(0, c.d3, func(klo, khi int) {
		cffts1Range(is, c, in, out, r, newWorkspace(c.d1), klo, khi)
	})
}

// cffts2Range transforms the planes [klo, khi) along the second
// dimension, batching over i. One worker's share of cffts2.
func cffts2Range(is int, c cube, in, out []complex128, r *roots, ws *workspace, klo, khi int) {
	n := c.d2
	for k := klo; k < khi; k++ {
		for i0 := 0; i0 < c.d1; i0 += fftBlock {
			ny := min(fftBlock, c.d1-i0)
			for j := 0; j < n; j++ {
				base := c.at(i0, j, k)
				for ii := 0; ii < ny; ii++ {
					ws.x[j*fftBlock+ii] = in[base+ii]
				}
			}
			cfftz(is, n, ny, r, ws)
			for j := 0; j < n; j++ {
				base := c.at(i0, j, k)
				for ii := 0; ii < ny; ii++ {
					out[base+ii] = ws.x[j*fftBlock+ii]
				}
			}
		}
	}
}

// cffts2 transforms along the second dimension with planes k split over
// the team (convenience form; see cffts1).
func cffts2(is int, c cube, in, out []complex128, r *roots, tm *team.Team) {
	tm.ForBlock(0, c.d3, func(klo, khi int) {
		cffts2Range(is, c, in, out, r, newWorkspace(c.d2), klo, khi)
	})
}

// cffts3Range transforms the rows [jlo, jhi) along the third dimension,
// batching over i. One worker's share of cffts3.
func cffts3Range(is int, c cube, in, out []complex128, r *roots, ws *workspace, jlo, jhi int) {
	n := c.d3
	for j := jlo; j < jhi; j++ {
		for i0 := 0; i0 < c.d1; i0 += fftBlock {
			ny := min(fftBlock, c.d1-i0)
			for k := 0; k < n; k++ {
				base := c.at(i0, j, k)
				for ii := 0; ii < ny; ii++ {
					ws.x[k*fftBlock+ii] = in[base+ii]
				}
			}
			cfftz(is, n, ny, r, ws)
			for k := 0; k < n; k++ {
				base := c.at(i0, j, k)
				for ii := 0; ii < ny; ii++ {
					out[base+ii] = ws.x[k*fftBlock+ii]
				}
			}
		}
	}
}

// cffts3 transforms along the third dimension with rows j split over
// the team (convenience form; see cffts1).
func cffts3(is int, c cube, in, out []complex128, r *roots, tm *team.Team) {
	tm.ForBlock(0, c.d2, func(jlo, jhi int) {
		cffts3Range(is, c, in, out, r, newWorkspace(c.d3), jlo, jhi)
	})
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
