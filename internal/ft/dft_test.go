package ft

import (
	"math"
	"math/cmplx"
	"testing"

	"npbgo/internal/team"
)

// naiveDFT3 computes the 3-D DFT by direct summation with sign s —
// O(N^2), used only as an oracle on tiny grids.
func naiveDFT3(c cube, in []complex128, s float64) []complex128 {
	out := make([]complex128, len(in))
	for ko := 0; ko < c.d3; ko++ {
		for jo := 0; jo < c.d2; jo++ {
			for io := 0; io < c.d1; io++ {
				var sum complex128
				for ki := 0; ki < c.d3; ki++ {
					for ji := 0; ji < c.d2; ji++ {
						for ii := 0; ii < c.d1; ii++ {
							phase := 2 * math.Pi * s * (float64(io*ii)/float64(c.d1) +
								float64(jo*ji)/float64(c.d2) +
								float64(ko*ki)/float64(c.d3))
							sum += in[c.at(ii, ji, ki)] * cmplx.Exp(complex(0, phase))
						}
					}
				}
				out[c.at(io, jo, ko)] = sum
			}
		}
	}
	return out
}

// TestForwardMatchesNaiveDFT pins the transform's sign convention and
// correctness against direct summation on a small grid.
func TestForwardMatchesNaiveDFT(t *testing.T) {
	c := cube{8, 4, 2}
	in := make([]complex128, c.len())
	for i := range in {
		in[i] = complex(math.Sin(float64(i))*0.7, math.Cos(float64(2*i))*0.3)
	}
	tm := team.New(1)
	defer tm.Close()

	got := make([]complex128, len(in))
	copy(got, in)
	r1, r2, r3 := fftInit(c.d1), fftInit(c.d2), fftInit(c.d3)
	cffts1(1, c, got, got, r1, tm)
	cffts2(1, c, got, got, r2, tm)
	cffts3(1, c, got, got, r3, tm)

	// The NPB forward transform (is=1) uses exp(+i theta) roots, i.e.
	// the +1 sign convention.
	want := naiveDFT3(c, in, +1)
	for i := range want {
		if cmplx.Abs(got[i]-want[i]) > 1e-10*(1+cmplx.Abs(want[i])) {
			t.Fatalf("element %d: %v, want %v", i, got[i], want[i])
		}
	}
}

func TestInverseMatchesNaiveDFT(t *testing.T) {
	c := cube{4, 4, 4}
	in := make([]complex128, c.len())
	for i := range in {
		in[i] = complex(float64(i%7)-3, float64(i%3))
	}
	tm := team.New(2)
	defer tm.Close()

	got := make([]complex128, len(in))
	copy(got, in)
	r := fftInit(4)
	cffts3(-1, c, got, got, r, tm)
	cffts2(-1, c, got, got, r, tm)
	cffts1(-1, c, got, got, r, tm)

	want := naiveDFT3(c, in, -1)
	for i := range want {
		if cmplx.Abs(got[i]-want[i]) > 1e-10*(1+cmplx.Abs(want[i])) {
			t.Fatalf("element %d: %v, want %v", i, got[i], want[i])
		}
	}
}
