package ft

import "fmt"

// Footprint estimates the working-set bytes an FT run of the given
// class and thread count allocates: three complex128 grids plus the
// real twiddle array over nx·ny·nz points, and the per-thread FFT plane
// scratch. FT is the benchmark whose class-A/B runs the paper could not
// fit on its smaller machines (§5 "FT memory limits") — this estimator
// is that anomaly generalized, feeding the harness admission guard.
func Footprint(class byte, threads int) (uint64, error) {
	p, ok := classes[class]
	if !ok {
		return 0, fmt.Errorf("ft: unknown class %q", string(class))
	}
	if threads < 1 {
		threads = 1
	}
	n := uint64(p.nx) * uint64(p.ny) * uint64(p.nz)
	grids := n * (3*16 + 8)                                          // u0,u1,u2 complex128 + twiddle float64
	scratch := uint64(threads) * 2 * uint64(p.nx) * uint64(p.ny) * 8 // per-worker plane buffer
	return grids + scratch, nil
}
