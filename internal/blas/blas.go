// Package blas provides the handful of dense linear-algebra kernels the
// Java Grande LU study (paper Table 7) is built from: the BLAS1
// operations that lufact/LINPACK DGEFA uses, and the blocked BLAS3-style
// update that makes LAPACK DGETRF cache-friendly. Matrices are stored
// column-major in flat slices, as in the Fortran originals.
package blas

import "math"

// Idamax returns the index of the element of largest absolute value in
// dx[:n] (increment 1), -1 for n < 1 — BLAS idamax, 0-based.
func Idamax(n int, dx []float64) int {
	if n < 1 {
		return -1
	}
	best := 0
	dmax := math.Abs(dx[0])
	for i := 1; i < n; i++ {
		if d := math.Abs(dx[i]); d > dmax {
			dmax = d
			best = i
		}
	}
	return best
}

// Daxpy computes dy[:n] += da * dx[:n] (increment 1).
func Daxpy(n int, da float64, dx, dy []float64) {
	if da == 0 {
		return
	}
	for i := 0; i < n; i++ {
		dy[i] += da * dx[i]
	}
}

// Dscal scales dx[:n] by da.
func Dscal(n int, da float64, dx []float64) {
	for i := 0; i < n; i++ {
		dx[i] *= da
	}
}

// Ddot returns the dot product of dx[:n] and dy[:n].
func Ddot(n int, dx, dy []float64) float64 {
	s := 0.0
	for i := 0; i < n; i++ {
		s += dx[i] * dy[i]
	}
	return s
}

// DgemmSub computes C -= A*B for column-major blocks: A is m x kk, B is
// kk x n, C is m x n, with leading dimensions lda, ldb, ldc. This is
// the trailing-submatrix update that gives blocked LU its cache reuse
// (the paper's Table 7 contrast between lufact and LINPACK DGETRF).
//
// The kernel is a plain rank-1-update loop nest: measured on this
// project's reference host, a 4-column register-tiled variant was
// slower (Go's bounds checks and aliasing analysis favour the
// two-slice loop), so the simple form is kept; see EXPERIMENTS.md's
// Table 7 discussion.
func DgemmSub(m, n, kk int, a []float64, lda int, b []float64, ldb int, c []float64, ldc int) {
	for j := 0; j < n; j++ {
		cj := c[j*ldc:]
		bj := b[j*ldb:]
		for l := 0; l < kk; l++ {
			blj := bj[l]
			if blj == 0 {
				continue
			}
			al := a[l*lda:]
			for i := 0; i < m; i++ {
				cj[i] -= blj * al[i]
			}
		}
	}
}

// DtrsmLLUnit solves L * X = B in place for a unit-lower-triangular
// m x m block L (column-major, leading dimension lda), with B an m x n
// block (leading dimension ldb) — the panel update of blocked LU.
func DtrsmLLUnit(m, n int, l []float64, lda int, b []float64, ldb int) {
	for j := 0; j < n; j++ {
		bj := b[j*ldb:]
		for k := 0; k < m; k++ {
			bkj := bj[k]
			if bkj == 0 {
				continue
			}
			lk := l[k*lda:]
			for i := k + 1; i < m; i++ {
				bj[i] -= bkj * lk[i]
			}
		}
	}
}
