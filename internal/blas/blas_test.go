package blas

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestIdamax(t *testing.T) {
	if Idamax(0, nil) != -1 {
		t.Fatal("empty vector should return -1")
	}
	x := []float64{1, -7, 3, 7, -2}
	if got := Idamax(len(x), x); got != 1 {
		t.Fatalf("Idamax = %d, want 1 (first of equal magnitudes)", got)
	}
}

func TestIdamaxProperty(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) == 0 {
			return true
		}
		for i, v := range raw {
			if math.IsNaN(v) {
				raw[i] = 0
			}
		}
		k := Idamax(len(raw), raw)
		for _, v := range raw {
			if math.Abs(v) > math.Abs(raw[k]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDaxpyDscalDdot(t *testing.T) {
	x := []float64{1, 2, 3}
	y := []float64{10, 20, 30}
	Daxpy(3, 2, x, y)
	if y[0] != 12 || y[1] != 24 || y[2] != 36 {
		t.Fatalf("Daxpy result %v", y)
	}
	Daxpy(3, 0, x, y) // no-op
	if y[0] != 12 {
		t.Fatal("Daxpy with zero alpha changed y")
	}
	Dscal(3, 0.5, y)
	if y[0] != 6 || y[2] != 18 {
		t.Fatalf("Dscal result %v", y)
	}
	if d := Ddot(3, x, x); d != 14 {
		t.Fatalf("Ddot = %v", d)
	}
}

func TestDgemmSubMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m, n, k := 7, 5, 6
	lda, ldb, ldc := m+2, k+1, m+3
	a := make([]float64, lda*k)
	b := make([]float64, ldb*n)
	c := make([]float64, ldc*n)
	want := make([]float64, ldc*n)
	for i := range a {
		a[i] = rng.Float64()
	}
	for i := range b {
		b[i] = rng.Float64()
	}
	for i := range c {
		c[i] = rng.Float64()
		want[i] = c[i]
	}
	DgemmSub(m, n, k, a, lda, b, ldb, c, ldc)
	for j := 0; j < n; j++ {
		for i := 0; i < m; i++ {
			s := want[j*ldc+i]
			for l := 0; l < k; l++ {
				s -= a[l*lda+i] * b[j*ldb+l]
			}
			if math.Abs(c[j*ldc+i]-s) > 1e-12 {
				t.Fatalf("C(%d,%d) = %v, want %v", i, j, c[j*ldc+i], s)
			}
		}
	}
}

func TestDtrsmLLUnit(t *testing.T) {
	// Build a unit-lower L, a known X, compute B = L*X, then verify the
	// solve recovers X.
	rng := rand.New(rand.NewSource(4))
	m, n := 6, 4
	lda, ldb := m, m
	l := make([]float64, lda*m)
	for j := 0; j < m; j++ {
		l[j*lda+j] = 1
		for i := j + 1; i < m; i++ {
			l[j*lda+i] = rng.Float64() - 0.5
		}
	}
	x := make([]float64, ldb*n)
	for i := range x {
		x[i] = rng.Float64()
	}
	b := make([]float64, ldb*n)
	for j := 0; j < n; j++ {
		for i := 0; i < m; i++ {
			s := 0.0
			for q := 0; q <= i; q++ {
				lv := l[q*lda+i]
				if q == i {
					lv = 1
				}
				s += lv * x[j*ldb+q]
			}
			b[j*ldb+i] = s
		}
	}
	DtrsmLLUnit(m, n, l, lda, b, ldb)
	for i := range x {
		if math.Abs(b[i]-x[i]) > 1e-12 {
			t.Fatalf("element %d: %v vs %v", i, b[i], x[i])
		}
	}
}
