package sp

import (
	"math"
	"math/rand"
	"testing"

	"npbgo/internal/team"
)

func TestSolveFactorAgainstDenseSolve(t *testing.T) {
	// The scalar pentadiagonal Thomas algorithm (no pivoting) must match
	// a dense solve on a diagonally dominant system with identity
	// boundary rows, the exact shape produced by buildLHS.
	rng := rand.New(rand.NewSource(7))
	const n = 9
	for trial := 0; trial < 25; trial++ {
		bands := make([]float64, 5*n)
		for i := 1; i < n-1; i++ {
			for bd := 0; bd < 5; bd++ {
				*band(bands, bd, i) = 0.3 * (rng.Float64() - 0.5)
			}
			*band(bands, 2, i) += 2.5
		}
		*band(bands, 2, 0) = 1
		*band(bands, 2, n-1) = 1
		// Boundary rows have only the diagonal; zero the rest.
		for _, i := range [2]int{0, n - 1} {
			*band(bands, 0, i) = 0
			*band(bands, 1, i) = 0
			*band(bands, 3, i) = 0
			*band(bands, 4, i) = 0
		}
		rhs := make([]float64, 5*n)
		dense := make([]float64, n*n)
		vec := make([]float64, n)
		for i := 0; i < n; i++ {
			rhs[5*i] = rng.Float64()
			vec[i] = rhs[5*i]
			for bd := 0; bd < 5; bd++ {
				col := i + bd - 2
				if col >= 0 && col < n {
					dense[i*n+col] = *band(bands, bd, i)
				}
			}
		}
		want := denseSolve(dense, vec, n)
		solveFactor(bands, n, []int{0}, rhs, 0, 5)
		for i := 0; i < n; i++ {
			if math.Abs(rhs[5*i]-want[i]) > 1e-9 {
				t.Fatalf("trial %d cell %d: %v vs %v", trial, i, rhs[5*i], want[i])
			}
		}
	}
}

func denseSolve(a []float64, b []float64, n int) []float64 {
	x := append([]float64(nil), b...)
	for col := 0; col < n; col++ {
		p := col
		for r := col + 1; r < n; r++ {
			if math.Abs(a[r*n+col]) > math.Abs(a[p*n+col]) {
				p = r
			}
		}
		if p != col {
			for c := 0; c < n; c++ {
				a[col*n+c], a[p*n+c] = a[p*n+c], a[col*n+c]
			}
			x[col], x[p] = x[p], x[col]
		}
		piv := a[col*n+col]
		for r := col + 1; r < n; r++ {
			f := a[r*n+col] / piv
			for c := col; c < n; c++ {
				a[r*n+c] -= f * a[col*n+c]
			}
			x[r] -= f * x[col]
		}
	}
	for r := n - 1; r >= 0; r-- {
		s := x[r]
		for c := r + 1; c < n; c++ {
			s -= a[r*n+c] * x[c]
		}
		x[r] = s / a[r*n+r]
	}
	return x
}

func TestTransformsAreInverses(t *testing.T) {
	// tzetar . pinvr . ninvr . txinvr is NOT the identity, but the
	// composition of txinvr with the full eigenvector chain must
	// preserve finiteness and scale: check that applying the four
	// transforms to a smooth rhs keeps values bounded and nonzero.
	b, err := New('S', 1)
	if err != nil {
		t.Fatal(err)
	}
	tm := team.New(1)
	defer tm.Close()
	b.f.Initialize(&b.c)
	b.f.ExactRHS(&b.c)
	b.f.ComputeRHS(&b.c, tm)
	norm0 := b.f.RHSNorm()
	b.txinvr(tm)
	b.ninvr(tm)
	b.pinvr(tm)
	b.tzetar(tm)
	norm1 := b.f.RHSNorm()
	for m := 0; m < 5; m++ {
		if math.IsNaN(norm1[m]) || norm1[m] == 0 {
			t.Fatalf("component %d norm degenerate: %v", m, norm1[m])
		}
		if norm1[m] > 1e3*norm0[m]+1e3 {
			t.Fatalf("component %d norm exploded: %v -> %v", m, norm0[m], norm1[m])
		}
	}
}

func TestErrorDecreasesOverSteps(t *testing.T) {
	b, _ := New('S', 1)
	tm := team.New(1)
	defer tm.Close()
	b.f.Initialize(&b.c)
	b.f.ExactRHS(&b.c)
	e0 := b.f.ErrorNorm(&b.c)
	for s := 0; s < 30; s++ {
		b.adi(tm)
	}
	e1 := b.f.ErrorNorm(&b.c)
	for m := 0; m < 5; m++ {
		if e1[m] >= e0[m] {
			t.Fatalf("component %d error grew: %v -> %v", m, e0[m], e1[m])
		}
	}
	for _, v := range b.f.U {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatal("field blew up")
		}
	}
}

func TestParallelMatchesSerialBitwise(t *testing.T) {
	bs, _ := New('S', 1)
	bp, _ := New('S', 3)
	tms := team.New(1)
	tmp := team.New(3)
	defer tms.Close()
	defer tmp.Close()
	bs.f.Initialize(&bs.c)
	bs.f.ExactRHS(&bs.c)
	bp.f.Initialize(&bp.c)
	bp.f.ExactRHS(&bp.c)
	for s := 0; s < 5; s++ {
		bs.adi(tms)
		bp.adi(tmp)
	}
	for i := range bs.f.U {
		if bs.f.U[i] != bp.f.U[i] {
			t.Fatalf("u[%d] differs between 1 and 3 threads", i)
		}
	}
}

func TestClassSRun(t *testing.T) {
	b, _ := New('S', 1)
	res := b.Run()
	if res.Verify.Failed() {
		t.Fatalf("class S failed verification:\n%s", res.Verify)
	}
	for m := 0; m < 5; m++ {
		if math.IsNaN(res.XCR[m]) || math.IsNaN(res.XCE[m]) {
			t.Fatal("NaN in verification norms")
		}
	}
}

func TestUnknownClassRejected(t *testing.T) {
	if _, err := New('Z', 1); err == nil {
		t.Fatal("class Z accepted")
	}
	if _, err := New('S', 0); err == nil {
		t.Fatal("zero threads accepted")
	}
}
