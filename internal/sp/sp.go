// Package sp implements the NPB SP pseudo-application: the Beam-Warming
// approximate factorization of the 3-D compressible Navier-Stokes
// equations. Diagonalization of each direction's implicit operator
// reduces the 5x5 block systems of BT to three independent *scalar
// pentadiagonal* systems per grid line (for the convective eigenvalue
// and the two acoustic eigenvalues u±c), bracketed by the
// block-diagonal eigenvector transforms txinvr, ninvr, pinvr and
// tzetar.
package sp

import (
	"fmt"
	"math"
	"time"

	"npbgo/internal/nscore"
	"npbgo/internal/obs"
	"npbgo/internal/perfcount"
	"npbgo/internal/team"
	"npbgo/internal/timer"
	"npbgo/internal/trace"
	"npbgo/internal/verify"
)

// classSpec defines one SP problem class.
type classSpec struct {
	size  int
	niter int
	dt    float64
}

var classes = map[byte]classSpec{
	'S': {12, 100, 0.015},
	'W': {36, 400, 0.0015},
	'A': {64, 400, 0.0015},
	'B': {102, 400, 0.001},
	'C': {162, 400, 0.00067},
}

// bts is the sqrt(1/2) constant the Fortran calls bt.
var bts = math.Sqrt(0.5)

// Benchmark is a configured SP instance.
type Benchmark struct {
	Class   byte
	n       int
	niter   int
	threads int
	c       nscore.Consts
	f       *nscore.Field

	timers *timer.Set         // nil unless WithTimers
	rec    *obs.Recorder      // nil without WithObs
	tr     *trace.Tracer      // nil without WithTrace
	pc     *perfcount.Sampler // nil without WithCounters
	sched  team.Schedule      // loop schedule, Static without WithSchedule

	// Derived constants specific to SP's scalar solver.
	dttx1, dttx2, dtty1, dtty2, dttz1, dttz2 float64
	c2dttx1, c2dtty1, c2dttz1                float64
	comz1, comz4, comz5, comz6               float64
	dxmax, dymax, dzmax                      float64

	scratch []*lineScratch

	// Steady-state machinery: the region bodies below are built once by
	// New and reused every ADI step (a closure literal at the call site
	// would allocate per invocation), keeping the timed loop free of
	// heap allocation (enforced by internal/allocgate). tm stages the
	// current step's team; the dirParams are precomputed from the
	// constants.
	tm         *team.Team
	pX, pY, pZ dirParams
	txinvrBody func(id int)
	ninvrBody  func(id int)
	pinvrBody  func(id int)
	tzetarBody func(id int)
	xBody      func(id int)
	yBody      func(id int)
	zBody      func(id int)
}

// lineScratch is the per-worker storage for one pentadiagonal line
// solve: the three five-band coefficient sets plus the eigenvalue rows.
type lineScratch struct {
	lhs, lhsp, lhsm []float64 // 5 bands x line length
	cv, rho         []float64
}

func newLineScratch(n int) *lineScratch {
	return &lineScratch{
		lhs:  make([]float64, 5*n),
		lhsp: make([]float64, 5*n),
		lhsm: make([]float64, 5*n),
		cv:   make([]float64, n),
		rho:  make([]float64, n),
	}
}

// band returns a pointer into the packed band array: coefficient band
// (0..4) of cell i.
func band(a []float64, b, i int) *float64 { return &a[b+5*i] }

// Option configures optional benchmark behaviour.
type Option func(*Benchmark)

// WithObs attaches a runtime-metrics recorder to the run's team:
// per-worker busy and barrier-wait times, region counts and the
// worker-imbalance ratio of the obs layer.
func WithObs(rec *obs.Recorder) Option { return func(b *Benchmark) { b.rec = rec } }

// WithTrace attaches an execution tracer to the run's team: per-worker
// event timelines (region blocks, barrier and pipeline waits),
// exportable as Chrome/Perfetto JSON — the when-view that complements
// the obs layer's how-much totals.
func WithTrace(tr *trace.Tracer) Option { return func(b *Benchmark) { b.tr = tr } }

// WithCounters attaches a hardware-counter sampler to the run's team:
// per-worker cycles/instructions/cache-miss deltas are charged to pc at
// every parallel region. pc should be sized perfcount.New(threads); nil
// leaves counter sampling disabled.
func WithCounters(pc *perfcount.Sampler) Option { return func(b *Benchmark) { b.pc = pc } }

// WithSchedule selects the team's loop schedule for the plane loops of
// the RHS evaluation, the eigenvector transforms and the three factor
// sweeps; team.Static (the default) is the paper's block distribution.
// Every loop writes disjoint planes, so results are bit-identical under
// every schedule.
func WithSchedule(s team.Schedule) Option { return func(b *Benchmark) { b.sched = s } }

// WithTimers enables per-phase profiling of the factorization steps.
func WithTimers() Option { return func(b *Benchmark) { b.timers = timer.NewSet() } }

// New configures SP for the given class and thread count.
func New(class byte, threads int, opts ...Option) (*Benchmark, error) {
	spec, ok := classes[class]
	if !ok {
		return nil, fmt.Errorf("sp: unknown class %q", string(class))
	}
	if threads < 1 {
		return nil, fmt.Errorf("sp: threads %d < 1", threads)
	}
	b := &Benchmark{Class: class, n: spec.size, niter: spec.niter, threads: threads}
	for _, o := range opts {
		o(b)
	}
	b.c = nscore.SetConstants(spec.size, spec.dt)
	b.f = nscore.NewField(spec.size, true)
	c := &b.c
	b.dttx1 = c.Dt * c.Tx1
	b.dttx2 = c.Dt * c.Tx2
	b.dtty1 = c.Dt * c.Ty1
	b.dtty2 = c.Dt * c.Ty2
	b.dttz1 = c.Dt * c.Tz1
	b.dttz2 = c.Dt * c.Tz2
	b.c2dttx1 = 2.0 * b.dttx1
	b.c2dtty1 = 2.0 * b.dtty1
	b.c2dttz1 = 2.0 * b.dttz1
	dtdssp := c.Dt * c.Dssp
	b.comz1 = dtdssp
	b.comz4 = 4.0 * dtdssp
	b.comz5 = 5.0 * dtdssp
	b.comz6 = 6.0 * dtdssp
	b.dxmax = math.Max(c.Dx3, c.Dx4)
	b.dymax = math.Max(c.Dy2, c.Dy4)
	b.dzmax = math.Max(c.Dz2, c.Dz3)
	b.scratch = make([]*lineScratch, threads)
	for i := range b.scratch {
		b.scratch[i] = newLineScratch(spec.size)
	}
	b.buildBodies()
	return b, nil
}

// buildTransformBodies constructs the pointwise eigenvector-transform
// bodies once (see buildBodies).
func (b *Benchmark) buildTransformBodies() {
	n := b.n
	f := b.f
	c := &b.c

	//npblint:hot txinvr transform, k planes chunked
	b.txinvrBody = func(id int) {
		for it := b.tm.Loop(id, 1, n-1); it.Next(); {
			for k := it.Lo; k < it.Hi; k++ {
				for j := 1; j < n-1; j++ {
					for i := 1; i < n-1; i++ {
						s := f.SAt(i, j, k)
						ro := f.FAt(0, i, j, k)
						ru1 := f.RhoI[s]
						uu, vv, ww := f.Us[s], f.Vs[s], f.Ws[s]
						ac := f.Speed[s]
						ac2inv := 1.0 / (ac * ac)
						r1, r2, r3, r4, r5 := f.Rhs[ro], f.Rhs[ro+1], f.Rhs[ro+2], f.Rhs[ro+3], f.Rhs[ro+4]
						t1 := c.C2 * ac2inv * (f.Qs[s]*r1 - uu*r2 - vv*r3 - ww*r4 + r5)
						t2 := bts * ru1 * (uu*r1 - r2)
						t3 := bts * ru1 * ac * t1
						f.Rhs[ro] = r1 - t1
						f.Rhs[ro+1] = -ru1 * (ww*r1 - r4)
						f.Rhs[ro+2] = ru1 * (vv*r1 - r3)
						f.Rhs[ro+3] = -t2 + t3
						f.Rhs[ro+4] = t2 + t3
					}
				}
			}
		}
	}

	//npblint:hot ninvr transform, k planes chunked
	b.ninvrBody = func(id int) {
		for it := b.tm.Loop(id, 1, n-1); it.Next(); {
			for k := it.Lo; k < it.Hi; k++ {
				for j := 1; j < n-1; j++ {
					for i := 1; i < n-1; i++ {
						ro := f.FAt(0, i, j, k)
						r1, r2, r3, r4, r5 := f.Rhs[ro], f.Rhs[ro+1], f.Rhs[ro+2], f.Rhs[ro+3], f.Rhs[ro+4]
						t1 := bts * r3
						t2 := 0.5 * (r4 + r5)
						f.Rhs[ro] = -r2
						f.Rhs[ro+1] = r1
						f.Rhs[ro+2] = bts * (r4 - r5)
						f.Rhs[ro+3] = -t1 + t2
						f.Rhs[ro+4] = t1 + t2
					}
				}
			}
		}
	}

	//npblint:hot pinvr transform, k planes chunked
	b.pinvrBody = func(id int) {
		for it := b.tm.Loop(id, 1, n-1); it.Next(); {
			for k := it.Lo; k < it.Hi; k++ {
				for j := 1; j < n-1; j++ {
					for i := 1; i < n-1; i++ {
						ro := f.FAt(0, i, j, k)
						r1, r2, r3, r4, r5 := f.Rhs[ro], f.Rhs[ro+1], f.Rhs[ro+2], f.Rhs[ro+3], f.Rhs[ro+4]
						t1 := bts * r1
						t2 := 0.5 * (r4 + r5)
						f.Rhs[ro] = bts * (r4 - r5)
						f.Rhs[ro+1] = -r3
						f.Rhs[ro+2] = r2
						f.Rhs[ro+3] = -t1 + t2
						f.Rhs[ro+4] = t1 + t2
					}
				}
			}
		}
	}

	//npblint:hot tzetar transform, k planes chunked
	b.tzetarBody = func(id int) {
		for it := b.tm.Loop(id, 1, n-1); it.Next(); {
			for k := it.Lo; k < it.Hi; k++ {
				for j := 1; j < n-1; j++ {
					for i := 1; i < n-1; i++ {
						s := f.SAt(i, j, k)
						ro := f.FAt(0, i, j, k)
						xvel, yvel, zvel := f.Us[s], f.Vs[s], f.Ws[s]
						ac := f.Speed[s]
						ac2u := ac * ac
						r1, r2, r3, r4, r5 := f.Rhs[ro], f.Rhs[ro+1], f.Rhs[ro+2], f.Rhs[ro+3], f.Rhs[ro+4]
						uzik1 := f.U[f.UAt(0, i, j, k)]
						btuz := bts * uzik1
						t1 := btuz / ac * (r4 + r5)
						t2 := r3 + t1
						t3 := btuz * (r4 - r5)
						f.Rhs[ro] = t2
						f.Rhs[ro+1] = -uzik1*r2 + xvel*t2
						f.Rhs[ro+2] = uzik1*r1 + yvel*t2
						f.Rhs[ro+3] = zvel*t2 + t3
						f.Rhs[ro+4] = uzik1*(-xvel*r2+yvel*r1) +
							f.Qs[s]*t2 + c.C2iv*ac2u*t1 + zvel*t3
					}
				}
			}
		}
	}
}

// txinvr premultiplies the rhs by the inverse of the x-direction
// eigenvector matrix (block-diagonal, pointwise).
func (b *Benchmark) txinvr(tm *team.Team) {
	b.tm = tm
	tm.Run(b.txinvrBody)
}

// ninvr applies the x-direction eigenvector matrix after the x sweep.
func (b *Benchmark) ninvr(tm *team.Team) {
	b.tm = tm
	tm.Run(b.ninvrBody)
}

// pinvr applies the y-direction eigenvector matrix after the y sweep.
func (b *Benchmark) pinvr(tm *team.Team) {
	b.tm = tm
	tm.Run(b.pinvrBody)
}

// tzetar applies the z-direction eigenvector matrix after the z sweep,
// returning to conserved-variable space.
func (b *Benchmark) tzetar(tm *team.Team) {
	b.tm = tm
	tm.Run(b.tzetarBody)
}

// adi advances one SP time step.
func (b *Benchmark) adi(tm *team.Team) {
	b.phaseStart("rhs")
	b.f.ComputeRHS(&b.c, tm)
	b.phaseStop("rhs")
	b.phaseStart("txinvr")
	b.txinvr(tm)
	b.phaseStop("txinvr")
	b.phaseStart("xsolve")
	b.xSolve(tm)
	b.phaseStop("xsolve")
	b.phaseStart("ysolve")
	b.ySolve(tm)
	b.phaseStop("ysolve")
	b.phaseStart("zsolve")
	b.zSolve(tm)
	b.phaseStop("zsolve")
	b.phaseStart("add")
	b.f.Add(tm)
	b.phaseStop("add")
}

// phaseStart begins charging the named timer when profiling.
func (b *Benchmark) phaseStart(name string) {
	if b.timers != nil {
		b.timers.Start(name)
	}
}

// phaseStop stops charging the named timer when profiling.
func (b *Benchmark) phaseStop(name string) {
	if b.timers != nil {
		b.timers.Stop(name)
	}
}

// Iter advances one steady-state time step on tm, whose Size must equal
// the thread count the Benchmark was built with. Every region body is
// prebuilt, so the step performs no heap allocation (enforced at a zero
// budget by internal/allocgate).
func (b *Benchmark) Iter(tm *team.Team) {
	b.adi(tm)
}

// Result reports one SP run.
type Result struct {
	XCR     [5]float64
	XCE     [5]float64
	Elapsed time.Duration
	Mops    float64
	Verify  *verify.Report
	Timers  *timer.Set // per-phase profile when WithTimers was given
}

// Run executes the benchmark following sp.f: initialization, one
// feed-through step, re-initialization, then niter timed steps and
// verification.
func (b *Benchmark) Run() Result {
	tm := team.New(b.threads, team.WithRecorder(b.rec), team.WithTracer(b.tr), team.WithCounters(b.pc), team.WithSchedule(b.sched))
	defer tm.Close()

	b.f.Initialize(&b.c)
	b.f.ExactRHS(&b.c)

	b.adi(tm)
	b.f.Initialize(&b.c)

	start := time.Now()
	for step := 1; step <= b.niter; step++ {
		b.Iter(tm)
	}
	elapsed := time.Since(start)

	b.f.ComputeRHS(&b.c, tm)
	xcr := b.f.RHSNorm()
	for m := 0; m < 5; m++ {
		xcr[m] /= b.c.Dt
	}
	xce := b.f.ErrorNorm(&b.c)

	var res Result
	res.XCR = xcr
	res.XCE = xce
	res.Elapsed = elapsed
	res.Timers = b.timers
	nf := float64(b.n)
	flops := float64(b.niter) * (881.174*nf*nf*nf - 4683.91*nf*nf + 11484.5*nf - 19272.4)
	if s := elapsed.Seconds(); s > 0 {
		res.Mops = flops * 1e-6 / s
	}

	rep := &verify.Report{Tier: verify.TierOfficial}
	if ref, ok := reference[b.Class]; ok {
		for m := 0; m < 5; m++ {
			rep.Add(fmt.Sprintf("xcr(%d)", m+1), xcr[m], ref.xcr[m])
		}
		for m := 0; m < 5; m++ {
			rep.Add(fmt.Sprintf("xce(%d)", m+1), xce[m], ref.xce[m])
		}
	} else {
		rep.Tier = verify.TierNone
	}
	res.Verify = rep
	return res
}

// refVals holds the 5+5 verification norms of one class.
type refVals struct {
	xcr, xce [5]float64
}

// reference verification norms for classes S, W and A: produced by this
// implementation and agreeing with the published verify.f constants to
// 11+ significant digits where cross-checked (S and A). Classes B and C
// run unverified.
var reference = map[byte]refVals{
	'S': {
		xcr: [5]float64{2.7470315451360e-02, 1.0360746705279e-02, 1.6235745065073e-02, 1.5840557224476e-02, 3.4849040609406e-02},
		xce: [5]float64{2.7289258557395e-05, 1.0364446640832e-05, 1.6154798287135e-05, 1.5750704994500e-05, 3.4177666183436e-05},
	},
	'W': {
		xcr: [5]float64{1.8932537335838e-03, 1.7170754477733e-04, 2.7781533509356e-04, 2.8874754099850e-04, 3.1436111612420e-03},
		xce: [5]float64{7.5420885995335e-05, 6.5128522530843e-06, 1.0490922856890e-05, 1.1288386715353e-05, 1.2128456397730e-04},
	},
	'A': {
		xcr: [5]float64{2.4799822399302e+00, 1.1276337964370e+00, 1.5028977888770e+00, 1.4217816211694e+00, 2.1292113035138e+00},
		xce: [5]float64{1.0900140297816e-04, 3.7343951769286e-05, 5.0092785406538e-05, 4.7671093939533e-05, 1.3621613399212e-04},
	},
}
