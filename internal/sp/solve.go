package sp

import "npbgo/internal/team"

// Bands of the pentadiagonal coefficient arrays: band 0 couples cell
// i-2, band 1 cell i-1, band 2 is the diagonal, bands 3 and 4 couple
// cells i+1 and i+2 (the Fortran lhs(1..5,i)).

// dirParams carries the per-direction constants of the scalar solver.
type dirParams struct {
	dtt1, dtt2, c2dtt1 float64
	dmax               float64
	d2or3or4, d5, d1   float64 // dx2/dy3/dz4, d?5, d?1 of the eigenvalue bound
}

// fillEigenRows loads the line's convective velocity cv and spectral
// bound rho for cell l from scalar offset soff.
func (b *Benchmark) fillEigenRows(ls *lineScratch, l, soff int, p *dirParams, vel []float64) {
	c := &b.c
	ru1 := c.C3c4 * b.f.RhoI[soff]
	ls.cv[l] = vel[soff]
	r := p.d2or3or4 + c.Con43*ru1
	if v := p.d5 + c.C1c5*ru1; v > r {
		r = v
	}
	if v := p.dmax + ru1; v > r {
		r = v
	}
	if p.d1 > r {
		r = p.d1
	}
	ls.rho[l] = r
}

// buildLHS assembles the three pentadiagonal factors for one line of
// length n, given the already-filled cv/rho rows and the line's sound
// speeds at speed[sbase+l*sstride].
func (b *Benchmark) buildLHS(ls *lineScratch, n int, p *dirParams, speed []float64, sbase, sstride int) {
	// Identity boundary rows for all three factors (lhsinit).
	for _, i := range [2]int{0, n - 1} {
		for bd := 0; bd < 5; bd++ {
			*band(ls.lhs, bd, i) = 0
			*band(ls.lhsp, bd, i) = 0
			*band(ls.lhsm, bd, i) = 0
		}
		*band(ls.lhs, 2, i) = 1
		*band(ls.lhsp, 2, i) = 1
		*band(ls.lhsm, 2, i) = 1
	}

	for i := 1; i < n-1; i++ {
		*band(ls.lhs, 0, i) = 0
		*band(ls.lhs, 1, i) = -p.dtt2*ls.cv[i-1] - p.dtt1*ls.rho[i-1]
		*band(ls.lhs, 2, i) = 1.0 + p.c2dtt1*ls.rho[i]
		*band(ls.lhs, 3, i) = p.dtt2*ls.cv[i+1] - p.dtt1*ls.rho[i+1]
		*band(ls.lhs, 4, i) = 0
	}

	// Fourth-order dissipation contributions.
	i := 1
	*band(ls.lhs, 2, i) += b.comz5
	*band(ls.lhs, 3, i) -= b.comz4
	*band(ls.lhs, 4, i) += b.comz1
	*band(ls.lhs, 1, i+1) -= b.comz4
	*band(ls.lhs, 2, i+1) += b.comz6
	*band(ls.lhs, 3, i+1) -= b.comz4
	*band(ls.lhs, 4, i+1) += b.comz1
	for i = 3; i <= n-4; i++ {
		*band(ls.lhs, 0, i) += b.comz1
		*band(ls.lhs, 1, i) -= b.comz4
		*band(ls.lhs, 2, i) += b.comz6
		*band(ls.lhs, 3, i) -= b.comz4
		*band(ls.lhs, 4, i) += b.comz1
	}
	i = n - 3
	*band(ls.lhs, 0, i) += b.comz1
	*band(ls.lhs, 1, i) -= b.comz4
	*band(ls.lhs, 2, i) += b.comz6
	*band(ls.lhs, 3, i) -= b.comz4
	*band(ls.lhs, 0, i+1) += b.comz1
	*band(ls.lhs, 1, i+1) -= b.comz4
	*band(ls.lhs, 2, i+1) += b.comz5

	// Acoustic factors u+c and u-c.
	for i = 1; i < n-1; i++ {
		*band(ls.lhsp, 0, i) = *band(ls.lhs, 0, i)
		*band(ls.lhsp, 1, i) = *band(ls.lhs, 1, i) - p.dtt2*speed[sbase+(i-1)*sstride]
		*band(ls.lhsp, 2, i) = *band(ls.lhs, 2, i)
		*band(ls.lhsp, 3, i) = *band(ls.lhs, 3, i) + p.dtt2*speed[sbase+(i+1)*sstride]
		*band(ls.lhsp, 4, i) = *band(ls.lhs, 4, i)
		*band(ls.lhsm, 0, i) = *band(ls.lhs, 0, i)
		*band(ls.lhsm, 1, i) = *band(ls.lhs, 1, i) + p.dtt2*speed[sbase+(i-1)*sstride]
		*band(ls.lhsm, 2, i) = *band(ls.lhs, 2, i)
		*band(ls.lhsm, 3, i) = *band(ls.lhs, 3, i) - p.dtt2*speed[sbase+(i+1)*sstride]
		*band(ls.lhsm, 4, i) = *band(ls.lhs, 4, i)
	}
}

// solveFactor runs the scalar pentadiagonal Thomas algorithm on one
// factor's bands, transforming in place the components comps of the
// rhs 5-vectors at rhs[base+l*stride:].
func solveFactor(bands []float64, n int, comps []int, rhs []float64, base, stride int) {
	for i := 0; i <= n-3; i++ {
		i1, i2 := i+1, i+2
		fac1 := 1.0 / *band(bands, 2, i)
		*band(bands, 3, i) *= fac1
		*band(bands, 4, i) *= fac1
		ri := rhs[base+i*stride:]
		for _, m := range comps {
			ri[m] *= fac1
		}
		r1 := rhs[base+i1*stride:]
		b1 := *band(bands, 1, i1)
		*band(bands, 2, i1) -= b1 * *band(bands, 3, i)
		*band(bands, 3, i1) -= b1 * *band(bands, 4, i)
		for _, m := range comps {
			r1[m] -= b1 * ri[m]
		}
		r2 := rhs[base+i2*stride:]
		b0 := *band(bands, 0, i2)
		*band(bands, 1, i2) -= b0 * *band(bands, 3, i)
		*band(bands, 2, i2) -= b0 * *band(bands, 4, i)
		for _, m := range comps {
			r2[m] -= b0 * ri[m]
		}
	}
	// The last two rows.
	i := n - 2
	i1 := n - 1
	fac1 := 1.0 / *band(bands, 2, i)
	*band(bands, 3, i) *= fac1
	*band(bands, 4, i) *= fac1
	ri := rhs[base+i*stride:]
	for _, m := range comps {
		ri[m] *= fac1
	}
	r1 := rhs[base+i1*stride:]
	b1 := *band(bands, 1, i1)
	*band(bands, 2, i1) -= b1 * *band(bands, 3, i)
	*band(bands, 3, i1) -= b1 * *band(bands, 4, i)
	for _, m := range comps {
		r1[m] -= b1 * ri[m]
	}
	fac2 := 1.0 / *band(bands, 2, i1)
	for _, m := range comps {
		r1[m] *= fac2
	}
	// Back substitution.
	ri = rhs[base+(n-2)*stride:]
	r1 = rhs[base+(n-1)*stride:]
	for _, m := range comps {
		ri[m] -= *band(bands, 3, n-2) * r1[m]
	}
	for i := n - 3; i >= 0; i-- {
		r := rhs[base+i*stride:]
		rp1 := rhs[base+(i+1)*stride:]
		rp2 := rhs[base+(i+2)*stride:]
		for _, m := range comps {
			r[m] -= *band(bands, 3, i)*rp1[m] + *band(bands, 4, i)*rp2[m]
		}
	}
}

var (
	compsU = []int{0, 1, 2}
	compsP = []int{3}
	compsM = []int{4}
)

// solveDirectionLine factorizes and solves one grid line: convective
// factor on components 1-3, acoustic factors on components 4 and 5.
// The line's sound speeds live at speed[sbase+l*sstride] and its rhs
// 5-vectors at rhs[rbase+l*rstride:]; both sweeps are affine in l for
// every direction, so bases and strides replace accessor closures.
func (b *Benchmark) solveDirectionLine(ls *lineScratch, n int, p *dirParams,
	speed []float64, sbase, sstride int, rhs []float64, rbase, rstride int) {
	b.buildLHS(ls, n, p, speed, sbase, sstride)
	solveFactor(ls.lhs, n, compsU, rhs, rbase, rstride)
	solveFactor(ls.lhsp, n, compsP, rhs, rbase, rstride)
	solveFactor(ls.lhsm, n, compsM, rhs, rbase, rstride)
}

// buildBodies constructs every parallel-region body once. Each is a
// func(id int) handed straight to Team.Run; chunk bounds come from the
// team's loop iterator (honoring the configured schedule), per-worker
// scratch from the pools and the team from the tm staging field, so the
// ADI loop creates no closures.
func (b *Benchmark) buildBodies() {
	n := b.n
	f := b.f
	b.pX = dirParams{dtt1: b.dttx1, dtt2: b.dttx2, c2dtt1: b.c2dttx1,
		dmax: b.dxmax, d2or3or4: b.c.Dx2, d5: b.c.Dx5, d1: b.c.Dx1}
	b.pY = dirParams{dtt1: b.dtty1, dtt2: b.dtty2, c2dtt1: b.c2dtty1,
		dmax: b.dymax, d2or3or4: b.c.Dy3, d5: b.c.Dy5, d1: b.c.Dy1}
	b.pZ = dirParams{dtt1: b.dttz1, dtt2: b.dttz2, c2dtt1: b.c2dttz1,
		dmax: b.dzmax, d2or3or4: b.c.Dz4, d5: b.c.Dz5, d1: b.c.Dz1}
	b.buildTransformBodies()

	//npblint:hot xi-direction factor sweep, k planes chunked
	b.xBody = func(id int) {
		ls := b.scratch[id]
		for it := b.tm.Loop(id, 1, n-1); it.Next(); {
			for k := it.Lo; k < it.Hi; k++ {
				for j := 1; j < n-1; j++ {
					for i := 0; i < n; i++ {
						b.fillEigenRows(ls, i, f.SAt(i, j, k), &b.pX, f.Us)
					}
					b.solveDirectionLine(ls, n, &b.pX,
						f.Speed, f.SAt(0, j, k), 1,
						f.Rhs, f.FAt(0, 0, j, k), 5)
				}
			}
		}
	}

	//npblint:hot eta-direction factor sweep, k planes chunked
	b.yBody = func(id int) {
		ls := b.scratch[id]
		for it := b.tm.Loop(id, 1, n-1); it.Next(); {
			for k := it.Lo; k < it.Hi; k++ {
				for i := 1; i < n-1; i++ {
					for j := 0; j < n; j++ {
						b.fillEigenRows(ls, j, f.SAt(i, j, k), &b.pY, f.Vs)
					}
					b.solveDirectionLine(ls, n, &b.pY,
						f.Speed, f.SAt(i, 0, k), n,
						f.Rhs, f.FAt(0, i, 0, k), 5*n)
				}
			}
		}
	}

	//npblint:hot zeta-direction factor sweep, j rows chunked
	b.zBody = func(id int) {
		ls := b.scratch[id]
		for it := b.tm.Loop(id, 1, n-1); it.Next(); {
			for j := it.Lo; j < it.Hi; j++ {
				for i := 1; i < n-1; i++ {
					for k := 0; k < n; k++ {
						b.fillEigenRows(ls, k, f.SAt(i, j, k), &b.pZ, f.Ws)
					}
					b.solveDirectionLine(ls, n, &b.pZ,
						f.Speed, f.SAt(i, j, 0), n*n,
						f.Rhs, f.FAt(0, i, j, 0), 5*n*n)
				}
			}
		}
	}
}

// xSolve runs the xi-direction factor sweep followed by ninvr.
func (b *Benchmark) xSolve(tm *team.Team) {
	b.tm = tm
	tm.Run(b.xBody)
	b.ninvr(tm)
}

// ySolve runs the eta-direction factor sweep followed by pinvr.
func (b *Benchmark) ySolve(tm *team.Team) {
	b.tm = tm
	tm.Run(b.yBody)
	b.pinvr(tm)
}

// zSolve runs the zeta-direction factor sweep followed by tzetar.
func (b *Benchmark) zSolve(tm *team.Team) {
	b.tm = tm
	tm.Run(b.zBody)
	b.tzetar(tm)
}
