package sp

import "fmt"

// Footprint estimates the working-set bytes an SP run of the given
// class and thread count allocates: the nscore field with the Speed
// grid (22 scalar-grid equivalents over n³ points) plus the per-thread
// pentadiagonal line scratch. Feeds the harness memory admission guard;
// dominant arrays only.
func Footprint(class byte, threads int) (uint64, error) {
	spec, ok := classes[class]
	if !ok {
		return 0, fmt.Errorf("sp: unknown class %q", string(class))
	}
	if threads < 1 {
		threads = 1
	}
	n := uint64(spec.size)
	n3 := n * n * n
	field := 22 * n3 * 8                    // BT's 21 grids + Speed
	scratch := uint64(threads) * 17 * n * 8 // lhs/lhsp/lhsm (5n) + cv/rho (n)
	return field + scratch, nil
}
