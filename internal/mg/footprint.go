package mg

import "fmt"

// Footprint estimates the working-set bytes an MG run of the given
// class allocates: the u and r grids on every level of the hierarchy
// (levels 1..lt, each (2^k+2)³ points with ghost shells) plus the
// top-level v grid. MG shares no per-thread arrays, so the thread count
// only participates for signature symmetry with the other benchmarks.
// Feeds the harness memory admission guard; dominant arrays only.
func Footprint(class byte, threads int) (uint64, error) {
	p, ok := classes[class]
	if !ok {
		return 0, fmt.Errorf("mg: unknown class %q", string(class))
	}
	_ = threads
	var total uint64
	for k := 1; k <= p.lt; k++ {
		side := uint64((1 << k) + 2)
		total += 2 * side * side * side * 8 // u[k] + r[k]
	}
	top := uint64((1 << p.lt) + 2)
	total += top * top * top * 8 // v
	return total, nil
}
