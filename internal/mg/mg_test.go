package mg

import (
	"math"
	"testing"

	"npbgo/internal/team"
)

func TestClassSVerifies(t *testing.T) {
	b, err := New('S', 1)
	if err != nil {
		t.Fatal(err)
	}
	res := b.Run()
	if !res.Verify.Passed() {
		t.Fatalf("class S failed verification:\n%s", res.Verify)
	}
}

func TestParallelMatchesReference(t *testing.T) {
	for _, n := range []int{2, 4} {
		b, err := New('S', n)
		if err != nil {
			t.Fatal(err)
		}
		if res := b.Run(); !res.Verify.Passed() {
			t.Fatalf("threads=%d failed:\n%s", n, res.Verify)
		}
	}
}

func TestZran3ChargeCount(t *testing.T) {
	l := level{18, 18, 18}
	z := make([]float64, l.len())
	zran3(z, l, 16, 16)
	plus, minus, other := 0, 0, 0
	for i3 := 1; i3 < l.n3-1; i3++ {
		for i2 := 1; i2 < l.n2-1; i2++ {
			for i1 := 1; i1 < l.n1-1; i1++ {
				switch z[l.at(i1, i2, i3)] {
				case 1:
					plus++
				case -1:
					minus++
				case 0:
				default:
					other++
				}
			}
		}
	}
	if plus != 10 || minus != 10 || other != 0 {
		t.Fatalf("charges: +%d -%d other %d, want 10/10/0", plus, minus, other)
	}
}

func TestZran3Deterministic(t *testing.T) {
	l := level{10, 10, 10}
	z1 := make([]float64, l.len())
	z2 := make([]float64, l.len())
	zran3(z1, l, 8, 8)
	zran3(z2, l, 8, 8)
	for i := range z1 {
		if z1[i] != z2[i] {
			t.Fatalf("zran3 not deterministic at %d", i)
		}
	}
}

func TestComm3Periodic(t *testing.T) {
	l := level{6, 6, 6}
	u := make([]float64, l.len())
	for i3 := 1; i3 < 5; i3++ {
		for i2 := 1; i2 < 5; i2++ {
			for i1 := 1; i1 < 5; i1++ {
				u[l.at(i1, i2, i3)] = float64(100*i1 + 10*i2 + i3)
			}
		}
	}
	comm3(u, l)
	if u[l.at(0, 2, 3)] != u[l.at(4, 2, 3)] {
		t.Fatal("x ghost not periodic")
	}
	if u[l.at(5, 2, 3)] != u[l.at(1, 2, 3)] {
		t.Fatal("x ghost (high) not periodic")
	}
	if u[l.at(2, 0, 3)] != u[l.at(2, 4, 3)] {
		t.Fatal("y ghost not periodic")
	}
	if u[l.at(2, 3, 5)] != u[l.at(2, 3, 1)] {
		t.Fatal("z ghost not periodic")
	}
}

func TestResidZeroFieldGivesRHS(t *testing.T) {
	// With u = 0, r = v on the interior.
	l := level{6, 6, 6}
	tm := team.New(1)
	defer tm.Close()
	u := make([]float64, l.len())
	v := make([]float64, l.len())
	r := make([]float64, l.len())
	for i := range v {
		v[i] = float64(i%7) * 0.25
	}
	a := [4]float64{-8.0 / 3.0, 0, 1.0 / 6.0, 1.0 / 12.0}
	resid(r, u, v, l, &a, tm)
	for i3 := 1; i3 < 5; i3++ {
		for i2 := 1; i2 < 5; i2++ {
			for i1 := 1; i1 < 5; i1++ {
				off := l.at(i1, i2, i3)
				if r[off] != v[off] {
					t.Fatalf("r != v at %d: %v vs %v", off, r[off], v[off])
				}
			}
		}
	}
}

func TestResidConstantFieldAnnihilated(t *testing.T) {
	// The operator's stencil weights sum to zero (a0 + 6*0 + 12*a2 +
	// 8*a3 with a=(-8/3,0,1/6,1/12) gives -8/3 + 2 + 2/3 = 0), so a
	// constant u yields r = v.
	l := level{8, 8, 8}
	tm := team.New(1)
	defer tm.Close()
	u := make([]float64, l.len())
	v := make([]float64, l.len())
	r := make([]float64, l.len())
	for i := range u {
		u[i] = 4.2
	}
	a := [4]float64{-8.0 / 3.0, 0, 1.0 / 6.0, 1.0 / 12.0}
	resid(r, u, v, l, &a, tm)
	for i3 := 1; i3 < 7; i3++ {
		for i2 := 1; i2 < 7; i2++ {
			for i1 := 1; i1 < 7; i1++ {
				if got := r[l.at(i1, i2, i3)]; math.Abs(got) > 1e-13 {
					t.Fatalf("constant field not annihilated: r=%v", got)
				}
			}
		}
	}
}

func TestRprj3ConstantField(t *testing.T) {
	// Full-weighting of a constant field: weights 0.5 + 6*0.25 + 12*.125
	// + 8*.0625 = 4, so a constant c restricts to 4c.
	fine := level{10, 10, 10}
	coarse := level{6, 6, 6}
	tm := team.New(1)
	defer tm.Close()
	r := make([]float64, fine.len())
	s := make([]float64, coarse.len())
	for i := range r {
		r[i] = 1.5
	}
	rprj3(r, fine, s, coarse, tm)
	for i3 := 1; i3 < 5; i3++ {
		for i2 := 1; i2 < 5; i2++ {
			for i1 := 1; i1 < 5; i1++ {
				if got := s[coarse.at(i1, i2, i3)]; math.Abs(got-6.0) > 1e-13 {
					t.Fatalf("restriction of constant 1.5 = %v, want 6", got)
				}
			}
		}
	}
}

func TestVCyclesReduceResidual(t *testing.T) {
	// Independent of the pinned verification value, each V-cycle must
	// shrink the residual substantially (MG's defining property).
	b, err := New('S', 1)
	if err != nil {
		t.Fatal(err)
	}
	tm := team.New(1)
	defer tm.Close()
	lt := b.p.lt
	fin := b.lv[lt]
	nxyz := float64(b.p.nx) * float64(b.p.nx) * float64(b.p.nx)
	zero3(b.u[lt])
	zran3(b.v, fin, b.p.nx, b.p.nx)
	resid(b.r[lt], b.u[lt], b.v, fin, &b.a, tm)
	prev, _ := norm2u3(b.r[lt], fin, nxyz, tm)
	for it := 0; it < 4; it++ {
		b.mg3P(tm)
		resid(b.r[lt], b.u[lt], b.v, fin, &b.a, tm)
		cur, _ := norm2u3(b.r[lt], fin, nxyz, tm)
		if cur > prev*0.5 {
			t.Fatalf("cycle %d: residual %v did not drop enough from %v", it, cur, prev)
		}
		prev = cur
	}
}

func TestUnknownClassRejected(t *testing.T) {
	if _, err := New('Y', 1); err == nil {
		t.Fatal("class Y accepted")
	}
	if _, err := New('S', 0); err == nil {
		t.Fatal("zero threads accepted")
	}
}

func TestInterpConstantCoarseField(t *testing.T) {
	// Trilinear prolongation of a constant coarse correction adds that
	// constant at every fine point (all interpolation weights sum to 1
	// per target point).
	coarse := level{6, 6, 6}
	fine := level{10, 10, 10}
	tm := team.New(1)
	defer tm.Close()
	z := make([]float64, coarse.len())
	for i := range z {
		z[i] = 2.5
	}
	u := make([]float64, fine.len())
	interp(z, coarse, u, fine, tm)
	// Interior fine points that interp writes (indices below 2*(mm-1))
	// must all have received exactly 2.5.
	for k := 0; k < 8; k++ {
		for j := 0; j < 8; j++ {
			for i := 0; i < 8; i++ {
				if got := u[fine.at(i, j, k)]; math.Abs(got-2.5) > 1e-13 {
					t.Fatalf("interp constant at (%d,%d,%d) = %v", i, j, k, got)
				}
			}
		}
	}
}
