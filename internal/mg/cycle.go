package mg

import (
	"math"

	"npbgo/internal/team"
)

// cycle is the reusable V-cycle engine shared by Benchmark and Solver:
// per-worker stencil scratch and prebuilt region bodies, so the timed
// loop performs no heap allocation (enforced by internal/allocgate).
// Operands of the current stencil are staged in the st* fields; the
// bodies read them and split planes with team.Block, replacing the
// closure a ForBlock call site would create per invocation.
type cycle struct {
	tm   *team.Team
	a, c [4]float64
	rows [][3][]float64 // per-worker scratch rows, sized to the finest n1
	maxs []float64      // per-worker max-norm slots

	stR, stU, stV []float64 // staged operands (roles vary per stencil)
	stF, stC      level     // staged fine/coarse levels

	residBody  func(id int)
	psinvBody  func(id int)
	rprj3Body  func(id int)
	interpBody func(id int)
	normBody   func(id int)
}

// newCycle builds the engine for a team of the given size working on
// grids whose finest extent (including ghosts) is maxN1.
func newCycle(workers, maxN1 int, a, c [4]float64) *cycle {
	cy := &cycle{a: a, c: c}
	cy.rows = newRowScratch(workers, maxN1)
	cy.maxs = make([]float64, workers)

	//npblint:hot residual stencil over the staged operands
	cy.residBody = func(id int) {
		l := cy.stF
		for it := cy.tm.Loop(id, 1, l.n3-1); it.Next(); {
			residRange(cy.stR, cy.stU, cy.stV, l, &cy.a, cy.rows[id][0], cy.rows[id][1], it.Lo, it.Hi)
		}
	}

	//npblint:hot smoother stencil over the staged operands
	cy.psinvBody = func(id int) {
		l := cy.stF
		for it := cy.tm.Loop(id, 1, l.n3-1); it.Next(); {
			psinvRange(cy.stR, cy.stU, l, &cy.c, cy.rows[id][0], cy.rows[id][1], it.Lo, it.Hi)
		}
	}

	//npblint:hot full-weighting restriction over the staged operands
	cy.rprj3Body = func(id int) {
		for it := cy.tm.Loop(id, 1, cy.stC.n3-1); it.Next(); {
			rprj3Range(cy.stR, cy.stF, cy.stU, cy.stC, cy.rows[id][0], cy.rows[id][1], it.Lo, it.Hi)
		}
	}

	//npblint:hot trilinear prolongation over the staged operands
	cy.interpBody = func(id int) {
		for it := cy.tm.Loop(id, 0, cy.stC.n3-1); it.Next(); {
			interpRange(cy.stR, cy.stC, cy.stU, cy.stF, cy.rows[id][0], cy.rows[id][1], cy.rows[id][2], it.Lo, it.Hi)
		}
	}

	//npblint:hot residual norms into the block-indexed reduction and max slots
	cy.normBody = func(id int) {
		tm := cy.tm
		l := cy.stF
		r := cy.stR
		n1, n2 := l.n1, l.n2
		for it := tm.ReduceBlocks(id, 1, l.n3-1); it.Next(); {
			s, m := 0.0, 0.0
			for i3 := it.Lo; i3 < it.Hi; i3++ {
				for i2 := 1; i2 < n2-1; i2++ {
					c := l.at(0, i2, i3)
					for i1 := 1; i1 < n1-1; i1++ {
						v := r[c+i1]
						s += v * v
						if a := math.Abs(v); a > m {
							m = a
						}
					}
				}
			}
			*tm.Partial(it.Chunk()) = s
			cy.maxs[it.Chunk()] = m
		}
	}

	return cy
}

// resid computes r = v - A u on the interior of level l and refreshes
// r's ghost shells.
func (cy *cycle) resid(tm *team.Team, r, u, v []float64, l level) {
	cy.tm, cy.stR, cy.stU, cy.stV, cy.stF = tm, r, u, v, l
	tm.Run(cy.residBody)
	comm3(r, l)
}

// psinv applies the smoother u += C r on the interior of level l and
// refreshes u's ghost shells.
func (cy *cycle) psinv(tm *team.Team, r, u []float64, l level) {
	cy.tm, cy.stR, cy.stU, cy.stF = tm, r, u, l
	tm.Run(cy.psinvBody)
	comm3(u, l)
}

// rprj3 restricts the fine residual r (level lk) onto the coarse grid
// s (level lj) and refreshes s's ghost shells.
func (cy *cycle) rprj3(tm *team.Team, r []float64, lk level, s []float64, lj level) {
	cy.tm, cy.stR, cy.stF, cy.stU, cy.stC = tm, r, lk, s, lj
	tm.Run(cy.rprj3Body)
	comm3(s, lj)
}

// interp adds the trilinear prolongation of the coarse correction z
// (level lj) into the fine grid u (level lk).
func (cy *cycle) interp(tm *team.Team, z []float64, lj level, u []float64, lk level) {
	cy.tm, cy.stR, cy.stC, cy.stU, cy.stF = tm, z, lj, u, lk
	tm.Run(cy.interpBody)
}

// norm2u3 returns the discrete L2 norm (scaled by the interior point
// count nxyz) and the max norm of r's interior on level l.
func (cy *cycle) norm2u3(tm *team.Team, r []float64, l level, nxyz float64) (rnm2, rnmu float64) {
	cy.tm, cy.stR, cy.stF = tm, r, l
	tm.Run(cy.normBody)
	sum := tm.PartialSum()
	for id := 0; id < tm.Size(); id++ {
		if cy.maxs[id] > rnmu {
			rnmu = cy.maxs[id]
		}
	}
	return math.Sqrt(sum / nxyz), rnmu
}
