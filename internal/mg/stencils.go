package mg

import (
	"math"

	"npbgo/internal/grid"
	"npbgo/internal/team"
)

// level describes one grid of the multigrid hierarchy: an (n+2)^3 box
// (n interior points per side plus periodic ghost shells).
type level struct {
	n1, n2, n3 int // box extents including ghosts
}

func (l level) len() int { return l.n1 * l.n2 * l.n3 }
func (l level) at(i1, i2, i3 int) int {
	return grid.Dim3{N1: l.n1, N2: l.n2, N3: l.n3}.At(i1, i2, i3)
}

// comm3 applies the periodic boundary condition to u by copying the
// opposite interior faces into the ghost shells (the serial analogue of
// the MPI ghost exchange, kept as a distinct phase as in mg.f).
func comm3(u []float64, l level) {
	n1, n2, n3 := l.n1, l.n2, l.n3
	for i3 := 1; i3 < n3-1; i3++ {
		for i2 := 1; i2 < n2-1; i2++ {
			row := l.at(0, i2, i3)
			u[row] = u[row+n1-2]
			u[row+n1-1] = u[row+1]
		}
	}
	for i3 := 1; i3 < n3-1; i3++ {
		lo := l.at(0, 0, i3)
		copy(u[lo:lo+n1], u[l.at(0, n2-2, i3):l.at(0, n2-2, i3)+n1])
		hi := l.at(0, n2-1, i3)
		copy(u[hi:hi+n1], u[l.at(0, 1, i3):l.at(0, 1, i3)+n1])
	}
	plane := n1 * n2
	copy(u[0:plane], u[(n3-2)*plane:(n3-1)*plane])
	copy(u[(n3-1)*plane:n3*plane], u[plane:2*plane])
}

// residRange computes r = v - A u on the interior planes [k0, k1) using
// the caller's two scratch rows (each at least n1 long). The 27-point
// operator is expressed through the temporary rows u1 (face-neighbour
// sums) and u2 (edge-neighbour sums) exactly as mg.f's resid; the a[1]
// term is dropped because a[1] = 0 in every NPB class (the Fortran
// omits it too). One worker's share of resid.
func residRange(r, u, v []float64, l level, a *[4]float64, u1, u2 []float64, k0, k1 int) {
	n1, n2 := l.n1, l.n2
	for i3 := k0; i3 < k1; i3++ {
		for i2 := 1; i2 < n2-1; i2++ {
			c := l.at(0, i2, i3)
			cm2 := l.at(0, i2-1, i3)
			cp2 := l.at(0, i2+1, i3)
			cm3 := l.at(0, i2, i3-1)
			cp3 := l.at(0, i2, i3+1)
			cmm := l.at(0, i2-1, i3-1)
			cpm := l.at(0, i2+1, i3-1)
			cmp := l.at(0, i2-1, i3+1)
			cpp := l.at(0, i2+1, i3+1)
			for i1 := 0; i1 < n1; i1++ {
				u1[i1] = u[cm2+i1] + u[cp2+i1] + u[cm3+i1] + u[cp3+i1]
				u2[i1] = u[cmm+i1] + u[cpm+i1] + u[cmp+i1] + u[cpp+i1]
			}
			for i1 := 1; i1 < n1-1; i1++ {
				r[c+i1] = v[c+i1] -
					a[0]*u[c+i1] -
					a[2]*(u2[i1]+u1[i1-1]+u1[i1+1]) -
					a[3]*(u2[i1-1]+u2[i1+1])
			}
		}
	}
}

// resid computes r = v - A u on the interior and refreshes r's ghost
// shells, allocating each worker fresh scratch rows — the convenience
// form the library tests use. The Benchmark's timed loop goes through
// the cycle engine's preallocated scratch instead.
func resid(r, u, v []float64, l level, a *[4]float64, tm *team.Team) {
	scr := newRowScratch(tm.Size(), l.n1)
	tm.Run(func(id int) {
		k0, k1 := team.Block(1, l.n3-1, tm.Size(), id)
		residRange(r, u, v, l, a, scr[id][0], scr[id][1], k0, k1)
	})
	comm3(r, l)
}

// psinvRange applies the smoother u += C r on the interior planes
// [k0, k1) using the caller's two scratch rows; c[3] = 0 in every class
// so its term is dropped, as in mg.f. One worker's share of psinv.
func psinvRange(r, u []float64, l level, c *[4]float64, r1, r2 []float64, k0, k1 int) {
	n1, n2 := l.n1, l.n2
	for i3 := k0; i3 < k1; i3++ {
		for i2 := 1; i2 < n2-1; i2++ {
			cc := l.at(0, i2, i3)
			cm2 := l.at(0, i2-1, i3)
			cp2 := l.at(0, i2+1, i3)
			cm3 := l.at(0, i2, i3-1)
			cp3 := l.at(0, i2, i3+1)
			cmm := l.at(0, i2-1, i3-1)
			cpm := l.at(0, i2+1, i3-1)
			cmp := l.at(0, i2-1, i3+1)
			cpp := l.at(0, i2+1, i3+1)
			for i1 := 0; i1 < n1; i1++ {
				r1[i1] = r[cm2+i1] + r[cp2+i1] + r[cm3+i1] + r[cp3+i1]
				r2[i1] = r[cmm+i1] + r[cpm+i1] + r[cmp+i1] + r[cpp+i1]
			}
			for i1 := 1; i1 < n1-1; i1++ {
				u[cc+i1] += c[0]*r[cc+i1] +
					c[1]*(r[cc+i1-1]+r[cc+i1+1]+r1[i1]) +
					c[2]*(r2[i1]+r1[i1-1]+r1[i1+1])
			}
		}
	}
}

// psinv applies the smoother u += C r on the interior and refreshes u's
// ghost shells (convenience form; see resid).
func psinv(r, u []float64, l level, c *[4]float64, tm *team.Team) {
	scr := newRowScratch(tm.Size(), l.n1)
	tm.Run(func(id int) {
		k0, k1 := team.Block(1, l.n3-1, tm.Size(), id)
		psinvRange(r, u, l, c, scr[id][0], scr[id][1], k0, k1)
	})
	comm3(u, l)
}

// rprj3Range restricts the fine residual r (level lk) onto the coarse
// planes [j3lo, j3hi) of s (level lj) with full weighting, using the
// caller's two scratch rows (each at least lk.n1 long). One worker's
// share of rprj3; the caller refreshes s's ghost shells after the join.
func rprj3Range(r []float64, lk level, s []float64, lj level, x1, y1 []float64, j3lo, j3hi int) {
	d1, d2, d3 := 1, 1, 1
	if lk.n1 == 3 {
		d1 = 2
	}
	if lk.n2 == 3 {
		d2 = 2
	}
	if lk.n3 == 3 {
		d3 = 2
	}
	m1j, m2j := lj.n1, lj.n2
	for j3 := j3lo; j3 < j3hi; j3++ {
		i3 := 2*(j3+1) - d3 - 1 // 0-based translation of i3 = 2*j3 - d3
		for j2 := 1; j2 < m2j-1; j2++ {
			i2 := 2*(j2+1) - d2 - 1
			for j1 := 1; j1 < m1j; j1++ {
				i1 := 2*(j1+1) - d1 - 1
				x1[i1-1] = r[lk.at(i1-1, i2-1, i3)] + r[lk.at(i1-1, i2+1, i3)] +
					r[lk.at(i1-1, i2, i3-1)] + r[lk.at(i1-1, i2, i3+1)]
				y1[i1-1] = r[lk.at(i1-1, i2-1, i3-1)] + r[lk.at(i1-1, i2-1, i3+1)] +
					r[lk.at(i1-1, i2+1, i3-1)] + r[lk.at(i1-1, i2+1, i3+1)]
			}
			for j1 := 1; j1 < m1j-1; j1++ {
				i1 := 2*(j1+1) - d1 - 1
				y2 := r[lk.at(i1, i2-1, i3-1)] + r[lk.at(i1, i2-1, i3+1)] +
					r[lk.at(i1, i2+1, i3-1)] + r[lk.at(i1, i2+1, i3+1)]
				x2 := r[lk.at(i1, i2-1, i3)] + r[lk.at(i1, i2+1, i3)] +
					r[lk.at(i1, i2, i3-1)] + r[lk.at(i1, i2, i3+1)]
				s[lj.at(j1, j2, j3)] = 0.5*r[lk.at(i1, i2, i3)] +
					0.25*(r[lk.at(i1-1, i2, i3)]+r[lk.at(i1+1, i2, i3)]+x2) +
					0.125*(x1[i1-1]+x1[i1+1]+y2) +
					0.0625*(y1[i1-1]+y1[i1+1])
			}
		}
	}
}

// rprj3 restricts with each worker allocated fresh scratch rows
// (convenience form; see resid).
func rprj3(r []float64, lk level, s []float64, lj level, tm *team.Team) {
	scr := newRowScratch(tm.Size(), lk.n1)
	tm.Run(func(id int) {
		j3lo, j3hi := team.Block(1, lj.n3-1, tm.Size(), id)
		rprj3Range(r, lk, s, lj, scr[id][0], scr[id][1], j3lo, j3hi)
	})
	comm3(s, lj)
}

// interpRange adds the trilinear prolongation of the coarse planes
// [i3lo, i3hi) of z (level lj) into the fine grid u (level lk), using
// the caller's three scratch rows (each at least lj.n1 long). NPB grids
// always have at least 2 interior points per side at the coarsest
// level, so only the general branch of mg.f's interp is needed. One
// worker's share of interp.
func interpRange(z []float64, lj level, u []float64, lk level, z1, z2, z3 []float64, i3lo, i3hi int) {
	mm1, mm2 := lj.n1, lj.n2
	for i3 := i3lo; i3 < i3hi; i3++ {
		for i2 := 0; i2 < mm2-1; i2++ {
			for i1 := 0; i1 < mm1; i1++ {
				z1[i1] = z[lj.at(i1, i2+1, i3)] + z[lj.at(i1, i2, i3)]
				z2[i1] = z[lj.at(i1, i2, i3+1)] + z[lj.at(i1, i2, i3)]
				z3[i1] = z[lj.at(i1, i2+1, i3+1)] + z[lj.at(i1, i2, i3+1)] + z1[i1]
			}
			for i1 := 0; i1 < mm1-1; i1++ {
				u[lk.at(2*i1, 2*i2, 2*i3)] += z[lj.at(i1, i2, i3)]
				u[lk.at(2*i1+1, 2*i2, 2*i3)] += 0.5 * (z[lj.at(i1+1, i2, i3)] + z[lj.at(i1, i2, i3)])
			}
			for i1 := 0; i1 < mm1-1; i1++ {
				u[lk.at(2*i1, 2*i2+1, 2*i3)] += 0.5 * z1[i1]
				u[lk.at(2*i1+1, 2*i2+1, 2*i3)] += 0.25 * (z1[i1] + z1[i1+1])
			}
			for i1 := 0; i1 < mm1-1; i1++ {
				u[lk.at(2*i1, 2*i2, 2*i3+1)] += 0.5 * z2[i1]
				u[lk.at(2*i1+1, 2*i2, 2*i3+1)] += 0.25 * (z2[i1] + z2[i1+1])
			}
			for i1 := 0; i1 < mm1-1; i1++ {
				u[lk.at(2*i1, 2*i2+1, 2*i3+1)] += 0.25 * z3[i1]
				u[lk.at(2*i1+1, 2*i2+1, 2*i3+1)] += 0.125 * (z3[i1] + z3[i1+1])
			}
		}
	}
}

// interp adds the trilinear prolongation with each worker allocated
// fresh scratch rows (convenience form; see resid).
func interp(z []float64, lj level, u []float64, lk level, tm *team.Team) {
	scr := newRowScratch(tm.Size(), lj.n1)
	tm.Run(func(id int) {
		i3lo, i3hi := team.Block(0, lj.n3-1, tm.Size(), id)
		interpRange(z, lj, u, lk, scr[id][0], scr[id][1], scr[id][2], i3lo, i3hi)
	})
}

// newRowScratch allocates per-worker stencil scratch: three rows of n
// values for each of workers workers. The convenience stencil wrappers
// allocate one per call, outside the parallel region; the cycle engine
// allocates one at construction and reuses it.
func newRowScratch(workers, n int) [][3][]float64 {
	scr := make([][3][]float64, workers)
	for i := range scr {
		scr[i] = [3][]float64{
			make([]float64, n),
			make([]float64, n),
			make([]float64, n),
		}
	}
	return scr
}

// norm2u3 returns the discrete L2 norm (scaled by the interior point
// count nxyz) and the max norm of r's interior.
func norm2u3(r []float64, l level, nxyz float64, tm *team.Team) (rnm2, rnmu float64) {
	n1, n2 := l.n1, l.n2
	maxes := make([]float64, tm.Size())
	sum := 0.0
	tm.Run(func(id int) {
		k0, k1 := team.Block(1, l.n3-1, tm.Size(), id)
		s, m := 0.0, 0.0
		for i3 := k0; i3 < k1; i3++ {
			for i2 := 1; i2 < n2-1; i2++ {
				c := l.at(0, i2, i3)
				for i1 := 1; i1 < n1-1; i1++ {
					v := r[c+i1]
					s += v * v
					if a := math.Abs(v); a > m {
						m = a
					}
				}
			}
		}
		*tm.Partial(id) = s
		maxes[id] = m
	})
	sum = tm.PartialSum()
	for _, m := range maxes {
		if m > rnmu {
			rnmu = m
		}
	}
	return math.Sqrt(sum / nxyz), rnmu
}

// zero3 clears u.
func zero3(u []float64) {
	for i := range u {
		u[i] = 0
	}
}
