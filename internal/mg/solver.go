package mg

import (
	"fmt"
	"math"

	"npbgo/internal/team"
)

// Solver is a reusable V-cycle multigrid solver for the periodic scalar
// Poisson-type equation A u = v on an n^3 grid, using the same operator
// and smoother as the MG benchmark. It is the library surface behind
// the benchmark: allocate once, Solve many right-hand sides.
type Solver struct {
	n       int
	lt      int
	threads int
	lv      []level
	u, r    [][]float64
	v       []float64
	a, c    [4]float64
	cy      *cycle // reusable stencil engine
}

// NewSolver creates a solver for an n^3 periodic grid; n must be a
// power of two, at least 4.
func NewSolver(n, threads int) (*Solver, error) {
	if n < 4 || n&(n-1) != 0 {
		return nil, fmt.Errorf("mg: grid size %d is not a power of two >= 4", n)
	}
	if threads < 1 {
		return nil, fmt.Errorf("mg: threads %d < 1", threads)
	}
	lt := 0
	for 1<<lt < n {
		lt++
	}
	s := &Solver{n: n, lt: lt, threads: threads}
	s.lv = make([]level, lt+1)
	s.u = make([][]float64, lt+1)
	s.r = make([][]float64, lt+1)
	for k := 1; k <= lt; k++ {
		m := (1 << k) + 2
		s.lv[k] = level{m, m, m}
		s.u[k] = make([]float64, s.lv[k].len())
		s.r[k] = make([]float64, s.lv[k].len())
	}
	s.v = make([]float64, s.lv[lt].len())
	s.a = [4]float64{-8.0 / 3.0, 0.0, 1.0 / 6.0, 1.0 / 12.0}
	s.c = [4]float64{-3.0 / 8.0, 1.0 / 32.0, -1.0 / 64.0, 0.0}
	s.cy = newCycle(threads, s.lv[lt].n1, s.a, s.c)
	return s, nil
}

// N returns the grid size per side.
func (s *Solver) N() int { return s.n }

// Solve runs cycles V-cycles against the right-hand side rhs (n^3
// values, first index fastest, no ghost shells) and returns the
// approximate solution in the same layout plus the final residual L2
// norm. The mean of rhs should be zero for the periodic problem to be
// well posed; Solve subtracts it automatically.
func (s *Solver) Solve(rhs []float64, cycles int) (u []float64, resNorm float64, err error) {
	n := s.n
	if len(rhs) != n*n*n {
		return nil, 0, fmt.Errorf("mg: rhs has %d values, want %d", len(rhs), n*n*n)
	}
	if cycles < 1 {
		cycles = 1
	}
	tm := team.New(s.threads)
	defer tm.Close()

	// Load rhs into the ghosted fine grid, removing its mean.
	mean := 0.0
	for _, v := range rhs {
		mean += v
	}
	mean /= float64(len(rhs))
	fin := s.lv[s.lt]
	zero3(s.v)
	for k := 0; k < n; k++ {
		for j := 0; j < n; j++ {
			src := n * (j + n*k)
			dst := fin.at(1, j+1, k+1)
			for i := 0; i < n; i++ {
				s.v[dst+i] = rhs[src+i] - mean
			}
		}
	}
	comm3(s.v, fin)

	zero3(s.u[s.lt])
	nxyz := float64(n) * float64(n) * float64(n)
	s.cy.resid(tm, s.r[s.lt], s.u[s.lt], s.v, fin)
	for it := 0; it < cycles; it++ {
		s.mg3P(tm)
		s.cy.resid(tm, s.r[s.lt], s.u[s.lt], s.v, fin)
	}
	resNorm, _ = s.cy.norm2u3(tm, s.r[s.lt], fin, nxyz)

	out := make([]float64, n*n*n)
	for k := 0; k < n; k++ {
		for j := 0; j < n; j++ {
			src := fin.at(1, j+1, k+1)
			dst := n * (j + n*k)
			for i := 0; i < n; i++ {
				out[dst+i] = s.u[s.lt][src+i]
			}
		}
	}
	return out, resNorm, nil
}

// mg3P is the benchmark's V-cycle on the solver's own hierarchy.
func (s *Solver) mg3P(tm *team.Team) {
	lt := s.lt
	const lb = 1
	for k := lt; k >= lb+1; k-- {
		s.cy.rprj3(tm, s.r[k], s.lv[k], s.r[k-1], s.lv[k-1])
	}
	zero3(s.u[lb])
	s.cy.psinv(tm, s.r[lb], s.u[lb], s.lv[lb])
	for k := lb + 1; k <= lt-1; k++ {
		zero3(s.u[k])
		s.cy.interp(tm, s.u[k-1], s.lv[k-1], s.u[k], s.lv[k])
		s.cy.resid(tm, s.r[k], s.u[k], s.r[k], s.lv[k])
		s.cy.psinv(tm, s.r[k], s.u[k], s.lv[k])
	}
	s.cy.interp(tm, s.u[lt-1], s.lv[lt-1], s.u[lt], s.lv[lt])
	s.cy.resid(tm, s.r[lt], s.u[lt], s.v, s.lv[lt])
	s.cy.psinv(tm, s.r[lt], s.u[lt], s.lv[lt])
}

// ResidualOf computes ||v - A u|| / n^1.5 for externally supplied u and
// v in the ghost-free layout — a convenience for tests and examples.
func (s *Solver) ResidualOf(u, v []float64) (float64, error) {
	n := s.n
	if len(u) != n*n*n || len(v) != n*n*n {
		return 0, fmt.Errorf("mg: need %d values", n*n*n)
	}
	tm := team.New(1)
	defer tm.Close()
	fin := s.lv[s.lt]
	ug := make([]float64, fin.len())
	vg := make([]float64, fin.len())
	rg := make([]float64, fin.len())
	for k := 0; k < n; k++ {
		for j := 0; j < n; j++ {
			src := n * (j + n*k)
			dst := fin.at(1, j+1, k+1)
			copy(ug[dst:dst+n], u[src:src+n])
			copy(vg[dst:dst+n], v[src:src+n])
		}
	}
	comm3(ug, fin)
	comm3(vg, fin)
	resid(rg, ug, vg, fin, &s.a, tm)
	nxyz := float64(n) * float64(n) * float64(n)
	r2, _ := norm2u3(rg, fin, nxyz, tm)
	if math.IsNaN(r2) {
		return 0, fmt.Errorf("mg: residual is NaN")
	}
	return r2, nil
}
