package mg

import "npbgo/internal/randdp"

// zran3 initializes the right-hand side z: it fills the interior with
// the NPB pseudorandom field (one generator jump of nx per row and
// nx*ny per plane, so the field matches the reference implementation
// point-for-point), locates the mm largest and mm smallest interior
// values, then zeroes the field and plants +1 at the maxima positions
// and -1 at the minima positions — a set of 2*mm point charges.
func zran3(z []float64, l level, nx, ny int) {
	const mm = 10
	zero3(z)

	a1 := randdp.Ipow46(randdp.A, nx)
	a2 := randdp.Ipow46(randdp.A, nx*ny)

	x0 := 314159265.0
	d1 := nx // interior row length
	for i3 := 1; i3 < l.n3-1; i3++ {
		x1 := x0
		for i2 := 1; i2 < l.n2-1; i2++ {
			xx := x1
			off := l.at(1, i2, i3)
			randdp.Vranlc(d1, &xx, randdp.A, z[off:off+d1])
			randdp.Randlc(&x1, a1)
		}
		randdp.Randlc(&x0, a2)
	}

	// Track the mm largest and mm smallest interior values. The lists
	// are kept sorted (ascending for maxima candidates, descending for
	// minima candidates) by insertion, mirroring mg.f's bubble.
	large := make([]cand, 0, mm+1)
	small := make([]cand, 0, mm+1)
	for i3 := 1; i3 < l.n3-1; i3++ {
		for i2 := 1; i2 < l.n2-1; i2++ {
			for i1 := 1; i1 < l.n1-1; i1++ {
				off := l.at(i1, i2, i3)
				v := z[off]
				if len(large) < mm || v > large[0].val {
					large = insertAsc(large, cand{v, off}, mm)
				}
				if len(small) < mm || v < small[0].val {
					small = insertDesc(small, cand{v, off}, mm)
				}
			}
		}
	}

	zero3(z)
	for _, c := range small {
		z[c.off] = -1.0
	}
	for _, c := range large {
		z[c.off] = +1.0
	}
	comm3(z, l)
}

// cand is one extremum candidate: a field value and its flat offset.
type cand struct {
	val float64
	off int
}

// insertAsc inserts c into list kept ascending by val, evicting the
// smallest element when the list exceeds capacity m.
func insertAsc(list []cand, c cand, m int) []cand {
	list = append(list, c)
	for i := len(list) - 1; i > 0 && list[i].val < list[i-1].val; i-- {
		list[i], list[i-1] = list[i-1], list[i]
	}
	if len(list) > m {
		copy(list, list[1:])
		list = list[:m]
	}
	return list
}

// insertDesc inserts c into list kept descending by val, evicting the
// largest element when the list exceeds capacity m.
func insertDesc(list []cand, c cand, m int) []cand {
	list = append(list, c)
	for i := len(list) - 1; i > 0 && list[i].val > list[i-1].val; i-- {
		list[i], list[i-1] = list[i-1], list[i]
	}
	if len(list) > m {
		copy(list, list[1:])
		list = list[:m]
	}
	return list
}
