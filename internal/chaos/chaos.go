// Package chaos is the soak-campaign driver over the fault-injection
// registry: from one seed it derives a deterministic schedule of cells,
// each armed with a randomized plan of injected panics, delays and
// verification corruptions plus randomized cancellation and timeout
// pressure, runs them back to back, and asserts the suite's recovery
// invariants after every cell:
//
//   - the cell returns — a poisoned barrier or lost wakeup would hang
//     it, so each cell runs under a generous wall deadline;
//   - the runtime recovers — a clean probe run must verify after every
//     faulted cell, proving no panic/poison leaked into global state;
//   - verified means verified — a cell may not report verification
//     success if a corrupt rule fired at its verify site;
//   - the journal stays parseable — after every cell the campaign's
//     own journal must recover cleanly, torn tail or not.
//
// The same seed always reproduces the same schedule, failures and
// order, so a red CI soak is a repro command, not an anecdote.
package chaos

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"strings"
	"time"

	"npbgo"
	"npbgo/internal/fault"
	"npbgo/internal/journal"
	"npbgo/internal/report"
)

// Campaign configures one soak run.
type Campaign struct {
	Seed       int64
	Cells      int               // number of chaos cells; <= 0 means 8
	Class      byte              // problem class; 0 means 'S'
	Benchmarks []npbgo.Benchmark // cell population; nil means {CG, EP}
	Threads    []int             // thread-count population; nil means {1, 2}
	WallLimit  time.Duration     // per-cell hang deadline; <= 0 means 30s
	Journal    string            // journal file path; "" disables journaling
	Out        io.Writer         // progress log; nil discards
}

// CellPlan is one scheduled chaos cell: its configuration and the
// pressure applied to it.
type CellPlan struct {
	Cfg         npbgo.Config
	Rules       []fault.Rule
	CancelAfter time.Duration // > 0: cancel the context mid-run
	Timeout     time.Duration // > 0: per-run context deadline
	Seed        int64         // per-cell fault plan seed
}

// CellOutcome is a cell's observed result.
type CellOutcome struct {
	Plan     CellPlan
	Err      error
	Verified bool
	Elapsed  time.Duration

	// hung marks a wall-deadline breach; unexported so the violation
	// list stays the single source of truth for consumers.
	hung bool
}

// Report is the campaign's summary.
type Report struct {
	Cells      []CellOutcome
	Violations []string // empty means every invariant held
}

// Failed reports whether any invariant was violated.
func (r *Report) Failed() bool { return len(r.Violations) > 0 }

// Summary renders the campaign result as text.
func (r *Report) Summary() string {
	var b strings.Builder
	ok, failed, cancelled := 0, 0, 0
	for _, c := range r.Cells {
		switch {
		case c.Err == nil:
			ok++
		case isCancel(c.Err):
			cancelled++
		default:
			failed++
		}
	}
	fmt.Fprintf(&b, "chaos: %d cells — %d ok, %d failed (injected), %d cancelled/timed out\n",
		len(r.Cells), ok, failed, cancelled)
	if len(r.Violations) == 0 {
		b.WriteString("chaos: all invariants held (no hangs, runtime recovered after every cell, verification honest, journal parseable)\n")
	}
	for _, v := range r.Violations {
		fmt.Fprintf(&b, "chaos: INVARIANT VIOLATED: %s\n", v)
	}
	return b.String()
}

// Schedule derives the campaign's deterministic cell schedule from its
// seed. Exposed so tests and tooling can inspect what a seed will do
// without running it.
func (c *Campaign) Schedule() []CellPlan {
	cells := c.Cells
	if cells <= 0 {
		cells = 8
	}
	class := c.Class
	if class == 0 {
		class = 'S'
	}
	benches := c.Benchmarks
	if len(benches) == 0 {
		benches = []npbgo.Benchmark{npbgo.CG, npbgo.EP}
	}
	threads := c.Threads
	if len(threads) == 0 {
		threads = []int{1, 2}
	}
	sites := fault.Sites() // sorted: the draw sequence is reproducible
	rng := rand.New(rand.NewSource(c.Seed))
	plans := make([]CellPlan, cells)
	for i := range plans {
		p := CellPlan{
			Cfg: npbgo.Config{
				Benchmark: benches[rng.Intn(len(benches))],
				Class:     class,
				Threads:   threads[rng.Intn(len(threads))],
			},
			Seed: rng.Int63(),
		}
		for _, site := range sites {
			if rng.Float64() >= 0.5 {
				continue
			}
			kind := []fault.Kind{fault.KindPanic, fault.KindDelay, fault.KindCorrupt}[rng.Intn(3)]
			//npblint:ignore faultsite sites are drawn from fault.Sites(), the registry itself
			rule := fault.Rule{Site: site, Kind: kind, On: 1 + rng.Intn(3)}
			if kind == fault.KindDelay {
				rule.Sleep = time.Duration(1+rng.Intn(15)) * time.Millisecond
				rule.Count = -1
			}
			if rng.Float64() < 0.3 {
				rule.Prob = 0.5
			}
			p.Rules = append(p.Rules, rule)
		}
		if rng.Float64() < 0.3 {
			p.CancelAfter = time.Duration(5+rng.Intn(45)) * time.Millisecond
		}
		if rng.Float64() < 0.3 {
			p.Timeout = time.Duration(30+rng.Intn(70)) * time.Millisecond
		}
		plans[i] = p
	}
	return plans
}

// Run executes the campaign. The returned error is non-nil only for
// campaign plumbing failures (journal I/O); injected cell failures are
// expected output, and invariant violations are reported via
// Report.Violations.
func (c *Campaign) Run() (*Report, error) {
	out := c.Out
	if out == nil {
		out = io.Discard
	}
	wall := c.WallLimit
	if wall <= 0 {
		wall = 30 * time.Second
	}
	plans := c.Schedule()

	var jw *journal.Writer
	if c.Journal != "" {
		planned := make([]journal.CellKey, len(plans))
		for i, p := range plans {
			planned[i] = cellKey(p.Cfg)
		}
		var err error
		jw, err = journal.Create(c.Journal, journal.Plan{
			Class:      string(plans[0].Cfg.Class),
			Benchmarks: []string{"chaos"},
			Planned:    planned,
		})
		if err != nil {
			return nil, err
		}
		defer jw.Close()
	}

	rep := &Report{}
	for i, p := range plans {
		fmt.Fprintf(out, "chaos: cell %d/%d %s.%c t%d (%d rules, cancel=%v, timeout=%v)\n",
			i+1, len(plans), p.Cfg.Benchmark, p.Cfg.Class, p.Cfg.Threads,
			len(p.Rules), p.CancelAfter > 0, p.Timeout > 0)
		if jw != nil {
			if err := jw.Start(cellKey(p.Cfg)); err != nil {
				return rep, err
			}
		}
		oc, corruptFired := runCell(p, wall)
		rep.Cells = append(rep.Cells, oc)

		// Invariant: no hang. runCell signals a wall-deadline breach
		// with a nil-Err, Elapsed >= wall outcome marked hung.
		if oc.hung {
			rep.Violations = append(rep.Violations,
				fmt.Sprintf("cell %d (%s.%c t%d, seed %d): did not return within %v (deadlock?)",
					i+1, p.Cfg.Benchmark, p.Cfg.Class, p.Cfg.Threads, p.Seed, wall))
			// The cell's goroutine may still hold global fault state;
			// stop the campaign rather than pile violations on a wedged
			// runtime.
			if jw != nil {
				m := outcomeMetrics(oc)
				jw.Finish(cellKey(p.Cfg), journal.StatusFail, &m)
			}
			break
		}

		// Invariant: verified means verified.
		if oc.Verified && corruptFired {
			rep.Violations = append(rep.Violations,
				fmt.Sprintf("cell %d (%s.%c t%d, seed %d): reported verified although a corrupt rule fired",
					i+1, p.Cfg.Benchmark, p.Cfg.Class, p.Cfg.Threads, p.Seed))
		}

		if jw != nil {
			status := journal.StatusOK
			if oc.Err != nil {
				status = journal.StatusFail
			}
			m := outcomeMetrics(oc)
			if err := jw.Finish(cellKey(p.Cfg), status, &m); err != nil {
				return rep, err
			}
			// Invariant: the journal recovers cleanly after every append.
			if lg, err := journal.Read(c.Journal); err != nil {
				rep.Violations = append(rep.Violations,
					fmt.Sprintf("cell %d: journal unreadable afterwards: %v", i+1, err))
			} else if lg.Truncated {
				rep.Violations = append(rep.Violations,
					fmt.Sprintf("cell %d: journal torn although the writer is alive", i+1))
			}
		}

		// Invariant: the runtime recovered — a clean probe must verify.
		if err := probe(); err != nil {
			rep.Violations = append(rep.Violations,
				fmt.Sprintf("cell %d (%s.%c t%d, seed %d): clean probe failed afterwards: %v",
					i+1, p.Cfg.Benchmark, p.Cfg.Class, p.Cfg.Threads, p.Seed, err))
		}
	}
	fmt.Fprint(out, rep.Summary())
	return rep, nil
}

// runCell executes one chaos cell under its fault plan and wall
// deadline, and reports whether a corrupt rule fired during it.
func runCell(p CellPlan, wall time.Duration) (CellOutcome, bool) {
	fault.Activate(p.Seed, p.Rules...)
	defer fault.Reset()

	ctx := context.Background()
	var cancels []context.CancelFunc
	if p.Timeout > 0 {
		c, cancel := context.WithTimeout(ctx, p.Timeout)
		ctx, cancels = c, append(cancels, cancel)
	}
	if p.CancelAfter > 0 {
		c, cancel := context.WithTimeout(ctx, p.CancelAfter)
		ctx, cancels = c, append(cancels, cancel)
	}
	defer func() {
		for _, c := range cancels {
			c()
		}
	}()

	type res struct {
		r   npbgo.Result
		err error
	}
	done := make(chan res, 1)
	start := time.Now()
	go func() {
		r, err := npbgo.RunContext(ctx, p.Cfg)
		done <- res{r, err}
	}()
	select {
	case r := <-done:
		corrupt := fault.Fired(verifySite(p.Cfg.Benchmark), fault.KindCorrupt) > 0
		return CellOutcome{Plan: p, Err: r.err, Verified: r.r.Verified,
			Elapsed: time.Since(start)}, corrupt
	case <-time.After(wall):
		return CellOutcome{Plan: p, Elapsed: time.Since(start), hung: true}, false
	}
}

// probe runs a small clean cell (no faults, no pressure) and returns an
// error unless it verifies — the "poisoned barriers recover" check.
func probe() error {
	fault.Reset()
	res, err := npbgo.Run(npbgo.Config{Benchmark: npbgo.CG, Class: 'S', Threads: 2})
	if err != nil {
		return err
	}
	if !res.Verified {
		return fmt.Errorf("probe ran but did not verify (tier %s)", res.Tier)
	}
	return nil
}

// verifySite maps a benchmark to its corrupt-injection verify site key.
func verifySite(b npbgo.Benchmark) string {
	switch b {
	case npbgo.CG:
		return "cg.verify"
	case npbgo.EP:
		return "ep.verify"
	}
	return string(b) + ".verify" // no registered site: Fired reports 0
}

func cellKey(cfg npbgo.Config) journal.CellKey {
	return journal.CellKey{Benchmark: string(cfg.Benchmark),
		Class: string(cfg.Class), Threads: cfg.Threads}
}

func outcomeMetrics(oc CellOutcome) report.CellMetrics {
	m := report.CellMetrics{
		Benchmark: string(oc.Plan.Cfg.Benchmark),
		Class:     string(oc.Plan.Cfg.Class),
		Threads:   oc.Plan.Cfg.Threads,
		Elapsed:   oc.Elapsed.Seconds(),
		Verified:  oc.Verified,
	}
	if oc.Err != nil {
		m.Error = oc.Err.Error()
	}
	return m
}

func isCancel(err error) bool {
	var re *npbgo.RunError
	if errors.As(err, &re) {
		return re.Kind == npbgo.ErrCancelled
	}
	return false
}
