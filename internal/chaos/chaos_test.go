package chaos

import (
	"bytes"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"npbgo"
	"npbgo/internal/journal"
)

// TestScheduleDeterministic: the whole point of a seeded campaign is
// that a red CI run is a repro command.
func TestScheduleDeterministic(t *testing.T) {
	c1 := &Campaign{Seed: 42, Cells: 12}
	c2 := &Campaign{Seed: 42, Cells: 12}
	if !reflect.DeepEqual(c1.Schedule(), c2.Schedule()) {
		t.Fatal("same seed produced different schedules")
	}
	c3 := &Campaign{Seed: 7, Cells: 12}
	if reflect.DeepEqual(c1.Schedule(), c3.Schedule()) {
		t.Fatal("different seeds produced identical schedules (suspicious)")
	}
}

// TestScheduleInjectsPressure: across a modest schedule at least one
// cell must carry fault rules and at least one cancel or timeout —
// a campaign that never injects anything soaks nothing.
func TestScheduleInjectsPressure(t *testing.T) {
	plans := (&Campaign{Seed: 1, Cells: 16}).Schedule()
	rules, pressure := 0, 0
	for _, p := range plans {
		rules += len(p.Rules)
		if p.CancelAfter > 0 || p.Timeout > 0 {
			pressure++
		}
	}
	if rules == 0 {
		t.Fatal("no fault rules in a 16-cell schedule")
	}
	if pressure == 0 {
		t.Fatal("no cancellation/timeout pressure in a 16-cell schedule")
	}
}

// TestCampaignInvariantsHold runs a real seeded campaign against the
// suite and requires every invariant to hold: injected failures are
// fine, violations are not.
func TestCampaignInvariantsHold(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos campaign in -short mode")
	}
	jp := filepath.Join(t.TempDir(), "chaos.jsonl")
	var out bytes.Buffer
	rep, err := (&Campaign{
		Seed:      1,
		Cells:     4,
		WallLimit: 60 * time.Second,
		Journal:   jp,
		Out:       &out,
	}).Run()
	if err != nil {
		t.Fatalf("campaign plumbing failed: %v\n%s", err, out.String())
	}
	if rep.Failed() {
		t.Fatalf("invariants violated:\n%s", strings.Join(rep.Violations, "\n"))
	}
	if len(rep.Cells) != 4 {
		t.Fatalf("ran %d cells, want 4", len(rep.Cells))
	}

	// The journal must round-trip: a plan, and a start+finish per cell.
	lg, err := journal.Read(jp)
	if err != nil {
		t.Fatalf("journal unreadable after campaign: %v", err)
	}
	st := lg.State()
	starts := 0
	for _, n := range st.Starts {
		starts += n
	}
	if starts != 4 {
		t.Fatalf("journal records %d starts, want 4", starts)
	}
}

// TestSummaryReportsViolations: a violated campaign must say so loudly.
func TestSummaryReportsViolations(t *testing.T) {
	rep := &Report{
		Cells:      []CellOutcome{{}},
		Violations: []string{"cell 1: the sky is falling"},
	}
	if !rep.Failed() {
		t.Fatal("Failed() false with violations present")
	}
	s := rep.Summary()
	if !strings.Contains(s, "INVARIANT VIOLATED") || !strings.Contains(s, "sky is falling") {
		t.Fatalf("summary does not surface the violation:\n%s", s)
	}
}

func TestIsCancelClassification(t *testing.T) {
	cancelErr := &npbgo.RunError{Kind: npbgo.ErrCancelled}
	if !isCancel(cancelErr) {
		t.Fatal("cancelled RunError not classified as cancel")
	}
	verErr := &npbgo.RunError{Kind: npbgo.ErrVerification}
	if isCancel(verErr) {
		t.Fatal("verification RunError classified as cancel")
	}
}
