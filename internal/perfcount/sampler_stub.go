//go:build !linux || !(amd64 || arm64)

// Stub build: perf_event_open is Linux-only (and the raw syscall layer
// here targets amd64/arm64), so every other platform gets the disabled
// state. Probe and the constructors report unavailability with the
// standard *UnavailableError so callers journal "counters: unavailable
// (...)" exactly as on a PMU-less Linux host, and the sampling methods
// compile to no-ops — the rest of the stack builds and tests green
// everywhere.
package perfcount

// group has no per-OS state on stub builds.
type group struct{}

var errUnsupported = &UnavailableError{
	Reason: "perf_event_open not supported on this platform (Linux amd64/arm64 only)",
}

// Probe reports that hardware counters are unavailable on this build.
func Probe() error { return errUnsupported }

// ProbeSoftware reports that software counters are unavailable on this
// build.
func ProbeSoftware() error { return errUnsupported }

// New always fails on stub builds; callers fall back to a nil sampler.
func New(workers int) (*Sampler, error) { return nil, errUnsupported }

// NewSoftware always fails on stub builds.
func NewSoftware(workers int) (*Sampler, error) { return nil, errUnsupported }

// Bind is a no-op on stub builds.
func (s *Sampler) Bind(id int) error { return nil }

// Unbind is a no-op on stub builds.
func (s *Sampler) Unbind(id int) {}

// Close is a no-op on stub builds.
func (s *Sampler) Close() {}

// RegionStart is a no-op on stub builds.
func (s *Sampler) RegionStart(id int) {}

// RegionEnd is a no-op on stub builds.
func (s *Sampler) RegionEnd(id int) {}
