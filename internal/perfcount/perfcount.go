// Package perfcount is the hardware-counter attribution layer: a Linux
// perf_event_open-based sampler that charges CPU cycles, retired
// instructions, last-level-cache traffic and branch misses to each team
// worker, region by region. It answers the question the obs/trace
// layers cannot: not *where* the time went, but *why* — the paper
// explains its Java-vs-Fortran gaps and scaling anomalies by
// hypothesizing about cache behaviour and memory traffic (§4, §5), and
// this package turns those hypotheses into measured miss rates.
//
// One Sampler serves one run. Each worker owns a perf event *group* —
// all six events opened against the worker's locked OS thread and read
// atomically in a single read(2) — so cycles, instructions and misses
// are mutually consistent per sample. The team reads the group at
// region start and stop (team.WithCounters) and accumulates the deltas
// into padded per-worker atomic slots, exactly the shape of the obs
// recorder. Derived figures (instructions per cycle, LLC miss rate)
// come out of Snapshot.
//
// The contract is nil-disabled, like obs.Recorder and trace.Tracer: a
// team without a sampler pays one pointer check per region. And the
// layer degrades gracefully: availability is probed once per process
// (perf_event_paranoid policy, missing PMU, non-Linux build), and when
// the probe fails New returns an *UnavailableError whose reason is
// journaled as "counters: unavailable (<reason>)" — CI containers and
// cross-OS builds stay green, with the absence recorded instead of
// silently reporting zeros.
//
// The hot path holds the suite's zero-allocation discipline: read
// buffers are hoisted into the per-worker group state at construction,
// the group read is a raw syscall into that buffer, and delta
// accumulation is plain atomic adds — no allocation after Bind.
package perfcount

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// UnavailableError reports why hardware counters cannot be used in this
// process (restrictive perf_event_paranoid, no PMU exposed to the
// container/VM, non-Linux build). It is the reason behind every
// "counters: unavailable (...)" note in journals and cell metrics.
type UnavailableError struct{ Reason string }

func (e *UnavailableError) Error() string { return e.Reason }

// Counter field indices: every event in a set maps its delta onto one
// of these named accumulators.
const (
	fCycles = iota
	fInstructions
	fLLCLoads
	fLLCMisses
	fBranchMisses
	fTaskClock
	fCPUClock
	fPageFaults
	fCtxSwitches
	nFields
)

// Values is one worker's (or the run total's) counter readings. The
// first six fields are the hardware set; the last three belong to the
// software fallback set used where no PMU is exposed (NewSoftware).
type Values struct {
	TimeEnabledNs uint64 `json:"time_enabled_ns,omitempty"`
	TimeRunningNs uint64 `json:"time_running_ns,omitempty"`
	Cycles        uint64 `json:"cycles,omitempty"`
	Instructions  uint64 `json:"instructions,omitempty"`
	LLCLoads      uint64 `json:"llc_loads,omitempty"`
	LLCMisses     uint64 `json:"llc_misses,omitempty"`
	BranchMisses  uint64 `json:"branch_misses,omitempty"`
	TaskClockNs   uint64 `json:"task_clock_ns,omitempty"`
	CPUClockNs    uint64 `json:"cpu_clock_ns,omitempty"`
	PageFaults    uint64 `json:"page_faults,omitempty"`
	CtxSwitches   uint64 `json:"ctx_switches,omitempty"`
}

// add charges delta to the named field.
func (v *Values) add(field int, delta uint64) {
	switch field {
	case fCycles:
		v.Cycles += delta
	case fInstructions:
		v.Instructions += delta
	case fLLCLoads:
		v.LLCLoads += delta
	case fLLCMisses:
		v.LLCMisses += delta
	case fBranchMisses:
		v.BranchMisses += delta
	case fTaskClock:
		v.TaskClockNs += delta
	case fCPUClock:
		v.CPUClockNs += delta
	case fPageFaults:
		v.PageFaults += delta
	case fCtxSwitches:
		v.CtxSwitches += delta
	}
}

// IPC is instructions retired per CPU cycle — the paper's §4.2
// efficiency discussion, measured. 0 when no cycles were counted.
func (v Values) IPC() float64 {
	if v.Cycles == 0 {
		return 0
	}
	return float64(v.Instructions) / float64(v.Cycles)
}

// LLCMissRate is last-level-cache read misses per read access — the
// locality evidence behind every cache-blocking decision. 0 when no
// loads were counted.
func (v Values) LLCMissRate() float64 {
	if v.LLCLoads == 0 {
		return 0
	}
	return float64(v.LLCMisses) / float64(v.LLCLoads)
}

// Scale is the multiplexing correction running/enabled: below 1.0 the
// kernel time-shared the PMU between groups and raw counts undercount
// by that factor. 1 when the group was never descheduled (or never
// enabled).
func (v Values) Scale() float64 {
	if v.TimeEnabledNs == 0 {
		return 1
	}
	return float64(v.TimeRunningNs) / float64(v.TimeEnabledNs)
}

// Stats is a point-in-time snapshot of a Sampler: run totals plus the
// per-worker split, safe to serialize and read without synchronization.
// It is the counter payload of report.CellMetrics ("counters") and of
// obs.Stats.Counters.
type Stats struct {
	// Set names the event set: "hardware" (the full
	// cycles/instructions/LLC group) or "software" (the PMU-less
	// fallback used by tests).
	Set string `json:"set"`
	// Workers is the worker count the sampler was sized for.
	Workers int `json:"workers"`
	// Note carries a non-fatal degradation, e.g. a per-worker bind
	// failure; empty on a clean run.
	Note string `json:"note,omitempty"`

	Values // run totals, flattened into the same JSON object

	PerWorker []Values `json:"per_worker,omitempty"`
}

// eventDesc is one perf event of a set: its ABI selector plus the
// accumulator field its deltas land in.
type eventDesc struct {
	typ    uint32 // PERF_TYPE_*
	config uint64 // PERF_COUNT_*
	field  int
}

// eventSet is a named group of events; the first entry is the group
// leader.
type eventSet struct {
	name   string
	events []eventDesc
}

// ABI selectors (linux/perf_event.h). They are plain numbers shared
// across architectures, kept here so the stub build can name them too.
const (
	perfTypeHardware = 0
	perfTypeSoftware = 1
	perfTypeHWCache  = 3

	hwCPUCycles    = 0
	hwInstructions = 1
	hwBranchMisses = 5

	// HW cache config: cache id | (op << 8) | (result << 16).
	cacheLLReadAccess = 2 | 0<<8 | 0<<16 // LL, read, access
	cacheLLReadMiss   = 2 | 0<<8 | 1<<16 // LL, read, miss

	swCPUClock    = 0
	swTaskClock   = 1
	swPageFaults  = 2
	swCtxSwitches = 3
)

// hardwareSet is the production group: every figure the memory-bound
// diagnosis needs, read together so the ratios are consistent.
var hardwareSet = &eventSet{name: "hardware", events: []eventDesc{
	{perfTypeHardware, hwCPUCycles, fCycles},
	{perfTypeHardware, hwInstructions, fInstructions},
	{perfTypeHWCache, cacheLLReadAccess, fLLCLoads},
	{perfTypeHWCache, cacheLLReadMiss, fLLCMisses},
	{perfTypeHardware, hwBranchMisses, fBranchMisses},
	{perfTypeSoftware, swTaskClock, fTaskClock},
}}

// softwareSet is the PMU-less fallback: kernel software clocks and
// fault counts, available even inside VMs and containers that expose no
// PMU. It backs the test suite's coverage of the group-read path; the
// benchmark-facing layer never silently degrades to it — a PMU-less
// host reports "counters: unavailable" instead.
var softwareSet = &eventSet{name: "software", events: []eventDesc{
	{perfTypeSoftware, swTaskClock, fTaskClock},
	{perfTypeSoftware, swCPUClock, fCPUClock},
	{perfTypeSoftware, swPageFaults, fPageFaults},
	{perfTypeSoftware, swCtxSwitches, fCtxSwitches},
}}

// maxGroupWords bounds the group read buffer: nr + time_enabled +
// time_running + one value per event.
const maxGroupWords = 3 + 6

// wslot is one worker's delta accumulators, padded to its own cache
// lines so concurrent workers never false-share (the obs slot trick).
// vals[k] accumulates the set's k-th event; vals[nFields] and
// vals[nFields+1] hold the enabled/running time deltas.
type wslot struct {
	vals [nFields + 2]atomic.Uint64
	_    [40]byte // pad the 11 8-byte atomics (88B) to 128B
}

// Sampler accumulates per-worker counter deltas for one team. Slot 0
// belongs to the master and is bound by the run driver
// (npbgo.RunContext); slots 1..n-1 are bound by the team's worker
// goroutines when the sampler is attached with team.WithCounters. All
// sampling methods are safe for concurrent use from every worker; a nil
// *Sampler is the disabled state and is checked by the instrumented
// code, not passed in.
type Sampler struct {
	set    *eventSet
	slots  []wslot
	groups []group // per-OS thread-bound perf fds + hoisted read buffers

	noteMu sync.Mutex
	note   string
}

// Workers returns the worker count the sampler was sized for.
func (s *Sampler) Workers() int { return len(s.slots) }

// setNote records the first non-fatal degradation of the run.
func (s *Sampler) setNote(n string) {
	s.noteMu.Lock()
	if s.note == "" {
		s.note = n
	}
	s.noteMu.Unlock()
}

// Snapshot captures the sampler's accumulated counters: per-worker
// values and their totals. It allocates and is meant for run
// boundaries, not the region hot path.
func (s *Sampler) Snapshot() *Stats {
	st := &Stats{
		Set:       s.set.name,
		Workers:   len(s.slots),
		PerWorker: make([]Values, len(s.slots)),
	}
	s.noteMu.Lock()
	st.Note = s.note
	s.noteMu.Unlock()
	for id := range s.slots {
		w := &st.PerWorker[id]
		for k, ev := range s.set.events {
			w.add(ev.field, s.slots[id].vals[k].Load())
		}
		w.TimeEnabledNs = s.slots[id].vals[nFields].Load()
		w.TimeRunningNs = s.slots[id].vals[nFields+1].Load()

		st.Cycles += w.Cycles
		st.Instructions += w.Instructions
		st.LLCLoads += w.LLCLoads
		st.LLCMisses += w.LLCMisses
		st.BranchMisses += w.BranchMisses
		st.TaskClockNs += w.TaskClockNs
		st.CPUClockNs += w.CPUClockNs
		st.PageFaults += w.PageFaults
		st.CtxSwitches += w.CtxSwitches
		st.TimeEnabledNs += w.TimeEnabledNs
		st.TimeRunningNs += w.TimeRunningNs
	}
	return st
}

// String renders a one-look summary of the snapshot.
func (s *Stats) String() string {
	if s.Set == "software" {
		return fmt.Sprintf("set=software task_clock=%.3fs cpu_clock=%.3fs faults=%d ctxsw=%d",
			float64(s.TaskClockNs)/1e9, float64(s.CPUClockNs)/1e9, s.PageFaults, s.CtxSwitches)
	}
	return fmt.Sprintf("set=%s cycles=%d instr=%d ipc=%.2f llc_loads=%d llc_misses=%d miss_rate=%.4f branch_misses=%d scale=%.2f",
		s.Set, s.Cycles, s.Instructions, s.IPC(), s.LLCLoads, s.LLCMisses, s.LLCMissRate(), s.BranchMisses, s.Scale())
}
