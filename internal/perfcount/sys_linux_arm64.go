//go:build linux && arm64

package perfcount

// perf_event_open syscall number on arm64.
const sysPerfEventOpen = 241
