package perfcount

import (
	"errors"
	"runtime"
	"testing"
)

// spin burns CPU long enough for the kernel clocks to advance.
func spin(iters int) float64 {
	x := 1.0
	for i := 0; i < iters; i++ {
		x = x*1.0000001 + 0.5
		if x > 2e9 {
			x *= 0.5
		}
	}
	return x
}

// softwareSampler returns a bound 1..n-worker software-set sampler or
// skips the test where even software events are unavailable (non-Linux
// stub builds).
func softwareSampler(t *testing.T, workers int) *Sampler {
	t.Helper()
	s, err := NewSoftware(workers)
	if err != nil {
		var ue *UnavailableError
		if !errors.As(err, &ue) {
			t.Fatalf("NewSoftware: error is %T, want *UnavailableError: %v", err, err)
		}
		t.Skipf("software counters unavailable here: %v", err)
	}
	return s
}

func TestUnavailableErrorCarriesReason(t *testing.T) {
	if err := Probe(); err != nil {
		var ue *UnavailableError
		if !errors.As(err, &ue) {
			t.Fatalf("Probe error is %T, want *UnavailableError: %v", err, err)
		}
		if ue.Reason == "" {
			t.Fatal("UnavailableError with empty reason: the journaled note would be blank")
		}
		if _, nerr := New(2); nerr == nil {
			t.Fatal("New succeeded although Probe failed")
		}
		t.Logf("hardware counters unavailable (expected in CI): %v", ue.Reason)
		return
	}
	s, err := New(2)
	if err != nil {
		t.Fatalf("Probe passed but New failed: %v", err)
	}
	if s.Workers() != 2 {
		t.Fatalf("Workers() = %d, want 2", s.Workers())
	}
	s.Close()
}

// TestReadsMonotonic is the core property of the group-read path:
// accumulated counters never decrease across region samples, region
// after region.
func TestReadsMonotonic(t *testing.T) {
	s := softwareSampler(t, 1)
	runtime.LockOSThread()
	defer runtime.UnlockOSThread()
	if err := s.Bind(0); err != nil {
		t.Fatalf("Bind(0): %v", err)
	}
	defer func() { s.Unbind(0); s.Close() }()

	var prev Values
	for region := 0; region < 20; region++ {
		s.RegionStart(0)
		spin(200_000)
		s.RegionEnd(0)
		cur := s.Snapshot().Values
		if cur.TaskClockNs < prev.TaskClockNs || cur.CPUClockNs < prev.CPUClockNs ||
			cur.PageFaults < prev.PageFaults || cur.CtxSwitches < prev.CtxSwitches ||
			cur.TimeEnabledNs < prev.TimeEnabledNs || cur.TimeRunningNs < prev.TimeRunningNs {
			t.Fatalf("region %d: snapshot went backwards: %+v -> %+v", region, prev, cur)
		}
		prev = cur
	}
	if prev.TaskClockNs == 0 {
		t.Fatal("no task-clock time accumulated over 20 busy regions")
	}
}

// TestPerWorkerDeltasSumToTotals: the snapshot's totals are exactly the
// sum of its per-worker values, and each worker's running time stays
// within its enabled time (running/enabled is the kernel's multiplexing
// scale, so running > enabled would mean an impossible scale > 1).
func TestPerWorkerDeltasSumToTotals(t *testing.T) {
	const workers = 3
	s := softwareSampler(t, workers)
	done := make(chan struct{})
	for id := 0; id < workers; id++ {
		go func(id int) {
			defer func() { done <- struct{}{} }()
			runtime.LockOSThread()
			defer runtime.UnlockOSThread()
			if err := s.Bind(id); err != nil {
				t.Errorf("Bind(%d): %v", id, err)
				return
			}
			defer s.Unbind(id)
			for r := 0; r < 10; r++ {
				s.RegionStart(id)
				spin(100_000)
				s.RegionEnd(id)
			}
		}(id)
	}
	for i := 0; i < workers; i++ {
		<-done
	}
	st := s.Snapshot()
	if len(st.PerWorker) != workers {
		t.Fatalf("PerWorker has %d entries, want %d", len(st.PerWorker), workers)
	}
	var sum Values
	for id, w := range st.PerWorker {
		sum.TaskClockNs += w.TaskClockNs
		sum.CPUClockNs += w.CPUClockNs
		sum.PageFaults += w.PageFaults
		sum.CtxSwitches += w.CtxSwitches
		sum.TimeEnabledNs += w.TimeEnabledNs
		sum.TimeRunningNs += w.TimeRunningNs
		if w.TimeRunningNs > w.TimeEnabledNs {
			t.Errorf("worker %d: running %dns > enabled %dns (scale %.3f > 1)",
				id, w.TimeRunningNs, w.TimeEnabledNs, w.Scale())
		}
		if w.TaskClockNs == 0 {
			t.Errorf("worker %d accumulated no task clock over 10 busy regions", id)
		}
	}
	if st.Values != sum {
		t.Fatalf("totals %+v != per-worker sum %+v", st.Values, sum)
	}
	s.Close()
}

// TestUnboundSlotsAreNoOps: sampling methods on never-bound or
// out-of-range slots must be safe no-ops — the team calls them
// unconditionally once a sampler is attached.
func TestUnboundSlotsAreNoOps(t *testing.T) {
	s := softwareSampler(t, 2)
	s.RegionStart(0)
	s.RegionEnd(0)
	s.RegionStart(-1)
	s.RegionEnd(99)
	s.Unbind(0)
	s.Unbind(-1)
	s.Unbind(99)
	st := s.Snapshot()
	if st.TaskClockNs != 0 {
		t.Fatalf("unbound sampling accumulated %dns task clock", st.TaskClockNs)
	}
	s.Close()
}

func TestDerivedRatios(t *testing.T) {
	v := Values{Cycles: 1000, Instructions: 2500, LLCLoads: 400, LLCMisses: 100,
		TimeEnabledNs: 200, TimeRunningNs: 100}
	if got := v.IPC(); got != 2.5 {
		t.Errorf("IPC = %v, want 2.5", got)
	}
	if got := v.LLCMissRate(); got != 0.25 {
		t.Errorf("LLCMissRate = %v, want 0.25", got)
	}
	if got := v.Scale(); got != 0.5 {
		t.Errorf("Scale = %v, want 0.5", got)
	}
	var zero Values
	if zero.IPC() != 0 || zero.LLCMissRate() != 0 || zero.Scale() != 1 {
		t.Errorf("zero values: IPC=%v missRate=%v scale=%v, want 0, 0, 1",
			zero.IPC(), zero.LLCMissRate(), zero.Scale())
	}
}

func TestSnapshotSetName(t *testing.T) {
	s := softwareSampler(t, 1)
	defer s.Close()
	st := s.Snapshot()
	if st.Set != "software" {
		t.Fatalf("Set = %q, want software", st.Set)
	}
	if st.Workers != 1 {
		t.Fatalf("Workers = %d, want 1", st.Workers)
	}
	if st.String() == "" {
		t.Fatal("empty String()")
	}
}
