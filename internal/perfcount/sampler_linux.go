//go:build linux && (amd64 || arm64)

// Linux implementation: raw perf_event_open(2) groups, one per worker
// OS thread, read with a single raw read(2) syscall into a hoisted
// buffer. No cgo and no external modules — the attr struct and the ABI
// constants are declared here directly.
//
// Group-read layout (PERF_FORMAT_GROUP | TOTAL_TIME_ENABLED |
// TOTAL_TIME_RUNNING), all u64:
//
//	[0] nr            — number of events in the group
//	[1] time_enabled  — ns the group was scheduled or queued
//	[2] time_running  — ns the group actually counted
//	[3+k]             — value of event k, leader first
//
// When time_running < time_enabled the kernel multiplexed the PMU;
// Values.Scale exposes the correction factor rather than silently
// inflating counts.
package perfcount

import (
	"fmt"
	"os"
	"runtime"
	"strings"
	"sync"
	"syscall"
	"unsafe"
)

// perfEventAttr mirrors struct perf_event_attr up to and including the
// sample_max_stack field (ABI size 112, PERF_ATTR_SIZE_VER5); the
// kernel accepts any historical size it knows.
type perfEventAttr struct {
	Type             uint32
	Size             uint32
	Config           uint64
	Sample           uint64
	SampleType       uint64
	ReadFormat       uint64
	Bits             uint64 // flag bitfield: disabled, exclude_kernel, ...
	Wakeup           uint32
	BPType           uint32
	Config1          uint64
	Config2          uint64
	BranchSampleType uint64
	SampleRegsUser   uint64
	SampleStackUser  uint32
	ClockID          int32
	SampleRegsIntr   uint64
	AuxWatermark     uint32
	SampleMaxStack   uint16
	_                uint16
}

const (
	// ReadFormat bits.
	fmtTotalTimeEnabled = 1 << 0
	fmtTotalTimeRunning = 1 << 1
	fmtGroup            = 1 << 3

	// Bits flags.
	bitDisabled      = 1 << 0
	bitExcludeKernel = 1 << 5
	bitExcludeHV     = 1 << 6

	perfFlagFDCloexec = 8

	ioctlEnable    = 0x2400 // PERF_EVENT_IOC_ENABLE
	iocFlagGroup   = 1      // PERF_IOC_FLAG_GROUP
	paranoidSysctl = "/proc/sys/kernel/perf_event_paranoid"
	groupReadWords = 3 // nr + time_enabled + time_running before values
)

// group is one worker's thread-bound perf event group: the leader fd,
// its member fds (closed together), and the hoisted read buffers the
// region hot path reads into. Everything here is owned by the bound
// worker; only the accumulator slots are shared.
type group struct {
	fd      int // leader fd; -1 when unbound
	members []int
	locked  bool // this goroutine holds runtime.LockOSThread
	start   [maxGroupWords]uint64
	buf     [maxGroupWords]uint64
}

// openEvent issues the raw perf_event_open syscall for the calling
// thread (pid 0, cpu -1) under groupFD (-1 opens a leader).
func openEvent(ev eventDesc, disabled bool, groupFD int) (int, error) {
	attr := perfEventAttr{
		Type:       ev.typ,
		Config:     ev.config,
		ReadFormat: fmtGroup | fmtTotalTimeEnabled | fmtTotalTimeRunning,
		Bits:       bitExcludeKernel | bitExcludeHV,
	}
	if disabled {
		attr.Bits |= bitDisabled
	}
	attr.Size = uint32(unsafe.Sizeof(attr))
	fd, _, errno := syscall.Syscall6(sysPerfEventOpen,
		uintptr(unsafe.Pointer(&attr)), 0, ^uintptr(0), uintptr(groupFD), perfFlagFDCloexec, 0)
	if errno != 0 {
		return -1, errno
	}
	return int(fd), nil
}

// openGroup opens a whole event set against the calling thread, leader
// first and initially disabled, then enables the group atomically. On
// any member failure everything already opened is closed.
func openGroup(set *eventSet) (leader int, members []int, err error) {
	leader, err = openEvent(set.events[0], true, -1)
	if err != nil {
		return -1, nil, fmt.Errorf("perf_event_open(%s leader): %w", set.name, err)
	}
	for _, ev := range set.events[1:] {
		fd, err := openEvent(ev, false, leader)
		if err != nil {
			for _, m := range members {
				syscall.Close(m)
			}
			syscall.Close(leader)
			return -1, nil, fmt.Errorf("perf_event_open(%s type=%d config=%#x): %w", set.name, ev.typ, ev.config, err)
		}
		members = append(members, fd)
	}
	if _, _, errno := syscall.Syscall(syscall.SYS_IOCTL, uintptr(leader), ioctlEnable, iocFlagGroup); errno != 0 {
		for _, m := range members {
			syscall.Close(m)
		}
		syscall.Close(leader)
		return -1, nil, fmt.Errorf("PERF_EVENT_IOC_ENABLE: %w", errno)
	}
	return leader, members, nil
}

// paranoidLevel reads the kernel's perf_event_paranoid policy for error
// messages; "?" when the sysctl itself is unreadable.
func paranoidLevel() string {
	buf, err := os.ReadFile(paranoidSysctl)
	if err != nil {
		return "?"
	}
	return strings.TrimSpace(string(buf))
}

// probeSet checks once whether a whole event set can be opened on this
// host by opening and immediately closing a group on a locked thread.
func probeSet(set *eventSet) error {
	runtime.LockOSThread()
	defer runtime.UnlockOSThread()
	leader, members, err := openGroup(set)
	if err != nil {
		reason := fmt.Sprintf("%v (perf_event_paranoid=%s)", err, paranoidLevel())
		if errno, ok := unwrapErrno(err); ok {
			switch errno {
			case syscall.EACCES, syscall.EPERM:
				reason = fmt.Sprintf("%v — perf_event_paranoid=%s denies unprivileged counters", err, paranoidLevel())
			case syscall.ENOENT, syscall.ENODEV, syscall.EOPNOTSUPP:
				reason = fmt.Sprintf("%v — event not supported here (no PMU exposed to this VM/container?)", err)
			}
		}
		return &UnavailableError{Reason: reason}
	}
	for _, m := range members {
		syscall.Close(m)
	}
	syscall.Close(leader)
	return nil
}

func unwrapErrno(err error) (syscall.Errno, bool) {
	for err != nil {
		if errno, ok := err.(syscall.Errno); ok {
			return errno, true
		}
		u, ok := err.(interface{ Unwrap() error })
		if !ok {
			return 0, false
		}
		err = u.Unwrap()
	}
	return 0, false
}

var (
	hwProbeOnce sync.Once
	hwProbeErr  error
	swProbeOnce sync.Once
	swProbeErr  error
)

// Probe reports whether the full hardware counter group is available in
// this process, probing the kernel once and caching the verdict. A nil
// return means New will succeed.
func Probe() error {
	hwProbeOnce.Do(func() { hwProbeErr = probeSet(hardwareSet) })
	return hwProbeErr
}

// ProbeSoftware is Probe for the software fallback set.
func ProbeSoftware() error {
	swProbeOnce.Do(func() { swProbeErr = probeSet(softwareSet) })
	return swProbeErr
}

// New creates a sampler over the hardware event set for a team of the
// given size (>= 1). It returns an *UnavailableError — with the
// journaled reason — when the host cannot open the group; callers then
// run with a nil sampler, the disabled state.
func New(workers int) (*Sampler, error) {
	if err := Probe(); err != nil {
		return nil, err
	}
	return newSampler(hardwareSet, workers), nil
}

// NewSoftware creates a sampler over the kernel's software clock/fault
// events instead of the hardware PMU group. Software events stay
// available where the PMU is not (VMs, CI containers), so this set
// backs the test suite's group-read coverage and the allocation gates;
// it has no benchmark-facing wiring — requesting counters on a PMU-less
// host reports unavailable rather than silently degrading.
func NewSoftware(workers int) (*Sampler, error) {
	if err := ProbeSoftware(); err != nil {
		return nil, err
	}
	return newSampler(softwareSet, workers), nil
}

func newSampler(set *eventSet, workers int) *Sampler {
	if workers < 1 {
		workers = 1
	}
	s := &Sampler{set: set, slots: make([]wslot, workers), groups: make([]group, workers)}
	for id := range s.groups {
		s.groups[id].fd = -1
	}
	return s
}

// Bind pins the calling goroutine to its OS thread and opens worker
// id's event group against it. The worker owns the slot until Unbind:
// the team binds ids 1..n-1 from its worker goroutines, and the run
// driver binds id 0 (the master) for the duration of the run — region
// deltas are only attributable while the goroutine cannot migrate.
// Binding an already-bound or out-of-range slot is a no-op.
func (s *Sampler) Bind(id int) error {
	if id < 0 || id >= len(s.groups) {
		return nil
	}
	g := &s.groups[id]
	if g.fd >= 0 {
		return nil
	}
	runtime.LockOSThread()
	leader, members, err := openGroup(s.set)
	if err != nil {
		runtime.UnlockOSThread()
		s.setNote(fmt.Sprintf("worker %d bind failed: %v", id, err))
		return err
	}
	g.fd, g.members, g.locked = leader, members, true
	g.readInto(&g.start)
	return nil
}

// Unbind closes worker id's group and releases its OS thread. Safe on
// never-bound slots.
func (s *Sampler) Unbind(id int) {
	if id < 0 || id >= len(s.groups) {
		return
	}
	g := &s.groups[id]
	if g.fd < 0 {
		return
	}
	for _, m := range g.members {
		syscall.Close(m)
	}
	syscall.Close(g.fd)
	g.fd, g.members = -1, nil
	if g.locked {
		g.locked = false
		runtime.UnlockOSThread()
	}
}

// Close unbinds every still-bound slot. The worker-owned slots are
// normally unbound by their own goroutines (team close); Close is the
// master-side backstop for fds, not threads — it must only run once the
// team has joined.
func (s *Sampler) Close() {
	for id := range s.groups {
		g := &s.groups[id]
		if g.fd < 0 {
			continue
		}
		for _, m := range g.members {
			syscall.Close(m)
		}
		syscall.Close(g.fd)
		g.fd, g.members = -1, nil
		// The owning goroutine's LockOSThread cannot be released from
		// here; workers unlock themselves on exit.
	}
}

// readInto reads the whole group into dst with one raw syscall. The
// buffer is hoisted and the syscall allocates nothing, which is what
// keeps the region hot path inside the zero-allocation gates. A short
// or failed read leaves dst's nr word zero, which the callers treat as
// "no sample".
func (g *group) readInto(dst *[maxGroupWords]uint64) {
	dst[0] = 0
	n, _, errno := syscall.Syscall(syscall.SYS_READ, uintptr(g.fd),
		uintptr(unsafe.Pointer(&dst[0])), unsafe.Sizeof(*dst))
	if errno != 0 || int(n) < (groupReadWords+1)*8 {
		dst[0] = 0
	}
}

// RegionStart samples worker id's group at a parallel region entry.
// It is a single raw read into the worker-owned start buffer; unbound
// slots cost one comparison.
func (s *Sampler) RegionStart(id int) {
	if id < 0 || id >= len(s.groups) || s.groups[id].fd < 0 {
		return
	}
	g := &s.groups[id]
	g.readInto(&g.start)
}

// RegionEnd samples worker id's group at region exit and charges the
// deltas since RegionStart to the worker's accumulator slot. Counter
// wrap/reset (which perf never does on running counters) and torn
// samples degrade to a dropped region, never a negative delta.
func (s *Sampler) RegionEnd(id int) {
	if id < 0 || id >= len(s.groups) || s.groups[id].fd < 0 {
		return
	}
	g := &s.groups[id]
	g.readInto(&g.buf)
	nev := uint64(len(s.set.events))
	if g.start[0] != nev || g.buf[0] != nev {
		return // torn or failed sample on either side
	}
	slot := &s.slots[id]
	for k := 0; k < int(nev); k++ {
		end, begin := g.buf[groupReadWords+k], g.start[groupReadWords+k]
		if end > begin {
			slot.vals[k].Add(end - begin)
		}
	}
	if g.buf[1] > g.start[1] {
		slot.vals[nFields].Add(g.buf[1] - g.start[1])
	}
	if g.buf[2] > g.start[2] {
		slot.vals[nFields+1].Add(g.buf[2] - g.start[2])
	}
}
