//go:build linux && amd64

package perfcount

// perf_event_open syscall number on x86-64.
const sysPerfEventOpen = 298
