package ep

import "fmt"

// Footprint estimates the working-set bytes an EP run of the given
// class and thread count allocates: one 2·2^mk random-pair buffer per
// worker plus a flat allowance for the per-worker batch states. EP's
// footprint is class-independent (the class only scales the pair
// count), so the estimate depends on threads alone — but an unknown
// class still errors, for parity with the other estimators.
func Footprint(class byte, threads int) (uint64, error) {
	if _, ok := classM[class]; !ok {
		return 0, fmt.Errorf("ep: unknown class %q", string(class))
	}
	if threads < 1 {
		threads = 1
	}
	perWorker := uint64(2*nk)*8 + (1 << 12) // x buffer + batch state
	return uint64(threads) * perWorker, nil
}
