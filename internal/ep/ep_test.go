package ep

import (
	"math"
	"testing"

	"npbgo/internal/randdp"
)

func TestClassSVerifies(t *testing.T) {
	b, err := New('S', 1)
	if err != nil {
		t.Fatal(err)
	}
	res := b.Run()
	if !res.Verify.Passed() {
		t.Fatalf("class S failed verification:\n%s", res.Verify)
	}
	if res.Gc <= 0 || res.Gc > b.Pairs() {
		t.Fatalf("accepted pair count %v outside (0, %v]", res.Gc, b.Pairs())
	}
}

func TestAcceptanceRateNearPiOver4(t *testing.T) {
	// The polar method accepts points inside the unit disc; the
	// acceptance rate must be close to pi/4.
	b, _ := New('S', 1)
	res := b.Run()
	rate := res.Gc / b.Pairs()
	if math.Abs(rate-math.Pi/4) > 0.001 {
		t.Fatalf("acceptance rate %v far from pi/4", rate)
	}
}

func TestAnnulusCountsDecrease(t *testing.T) {
	// Gaussian mass decays with radius: the first annulus must dominate
	// and counts must be (weakly) decreasing.
	b, _ := New('S', 1)
	res := b.Run()
	for l := 1; l < nq; l++ {
		if res.Q[l] > res.Q[l-1] {
			t.Fatalf("annulus counts not decreasing: q[%d]=%v > q[%d]=%v", l, res.Q[l], l-1, res.Q[l-1])
		}
	}
	// For max(|X|,|Y|) of two standard normals, P(max < 1) = 0.683^2,
	// about 47% of accepted pairs.
	if res.Q[0] < 0.4*res.Gc {
		t.Fatalf("first annulus holds only %v of %v", res.Q[0], res.Gc)
	}
}

func TestParallelMatchesSerialExactly(t *testing.T) {
	serial, _ := New('S', 1)
	sres := serial.Run()
	for _, n := range []int{2, 4} {
		par, _ := New('S', n)
		pres := par.Run()
		// Worker partials are combined in deterministic order, so a
		// parallel run is reproducible, but the association differs
		// from serial; allow last-bit drift only.
		if math.Abs(sres.Sx-pres.Sx) > 1e-10*math.Abs(sres.Sx) ||
			math.Abs(sres.Sy-pres.Sy) > 1e-10*math.Abs(sres.Sy) {
			t.Fatalf("threads=%d sums differ: (%v,%v) vs (%v,%v)", n, sres.Sx, sres.Sy, pres.Sx, pres.Sy)
		}
		if sres.Gc != pres.Gc {
			t.Fatalf("threads=%d counts differ: %v vs %v", n, sres.Gc, pres.Gc)
		}
		for l := range sres.Q {
			if sres.Q[l] != pres.Q[l] {
				t.Fatalf("threads=%d annulus %d differs: %v vs %v", n, l, sres.Q[l], pres.Q[l])
			}
		}
		if !pres.Verify.Passed() {
			t.Fatalf("threads=%d failed verification:\n%s", n, pres.Verify)
		}
	}
}

func TestUnknownClassRejected(t *testing.T) {
	if _, err := New('Z', 1); err == nil {
		t.Fatal("class Z accepted")
	}
	if _, err := New('S', 0); err == nil {
		t.Fatal("zero threads accepted")
	}
}

func TestPairsPerClass(t *testing.T) {
	b, _ := New('A', 1)
	if b.Pairs() != float64(1<<28) {
		t.Fatalf("class A pairs = %v, want 2^28", b.Pairs())
	}
}

func TestBatchSeedJumpMatchesDirectStream(t *testing.T) {
	// Batch kk's starting seed must equal the raw stream advanced past
	// kk full batches (2*nk draws each): generate batch 1 directly by
	// drawing 2*nk values after batch 0's and compare sums.
	an := amult
	for i := 0; i < mk+1; i++ {
		randdp.Randlc(&an, an)
	}
	// Direct: advance a stream past batch 0, then fill batch 1's block.
	s := seed
	x := make([]float64, 2*nk)
	randdp.Vranlc(2*nk, &s, amult, x) // batch 0 consumed
	direct := make([]float64, 2*nk)
	randdp.Vranlc(2*nk, &s, amult, direct)

	var st batchState
	scratch := make([]float64, 2*nk)
	runBatch(1, an, &st, scratch)
	// Recompute what runBatch saw for batch 1 by reproducing its seed.
	t1 := seed
	randdp.Randlc(&t1, an)
	batch := make([]float64, 2*nk)
	randdp.Vranlc(2*nk, &t1, amult, batch)
	for i := range batch {
		if batch[i] != direct[i] {
			t.Fatalf("element %d: jumped stream %v != direct stream %v", i, batch[i], direct[i])
		}
	}
}
