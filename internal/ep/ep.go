// Package ep implements the NPB EP (Embarrassingly Parallel) kernel: it
// generates pairs of uniform pseudorandom numbers, maps them to Gaussian
// deviates with the Marsaglia polar method, and tallies the deviates in
// square annuli. EP is the fifth NPB kernel (the paper lists five
// kernels; it reports results for the other four, and EP is included
// here for suite completeness as in NPB2.3/3.0).
//
// Independent batches of 2^mk pairs are generated from jumped-ahead
// generator seeds, which is what makes the kernel embarrassingly
// parallel: the batch list is statically split over the team and partial
// sums are combined in deterministic order.
package ep

import (
	"context"
	"fmt"
	"math"
	"time"

	"npbgo/internal/fault"
	"npbgo/internal/obs"
	"npbgo/internal/perfcount"
	"npbgo/internal/randdp"
	"npbgo/internal/team"
	"npbgo/internal/timer"
	"npbgo/internal/trace"
	"npbgo/internal/verify"
)

const (
	mk    = 16 // batch size exponent: 2^mk pairs per batch
	nk    = 1 << mk
	nq    = 10 // number of annuli tallied
	seed  = 271828183.0
	amult = randdp.A
)

// classM maps problem class to the total-pairs exponent m (2^m pairs).
var classM = map[byte]int{'S': 24, 'W': 25, 'A': 28, 'B': 30, 'C': 32}

// reference sums from the official ep verification, per class.
var reference = map[byte][2]float64{
	'S': {-3.247834652034740e+3, -6.958407078382297e+3},
	'W': {-2.863319731645753e+3, -6.320053679109499e+3},
	'A': {-4.295875165629892e+3, -1.580732573678431e+4},
	'B': {4.033815542441498e+4, -2.660669192809235e+4},
	'C': {4.764367927995374e+4, -8.084072988043731e+4},
}

// Benchmark is one configured EP instance. All buffers a run needs —
// per-worker accumulation states, vranlc scratch, the hoisted region
// body — are allocated once here, so the batch sweep itself runs
// allocation-free (gated at zero by internal/allocgate).
type Benchmark struct {
	Class   byte
	m       int
	nn      int // number of 2^mk batches
	an      float64
	threads int
	ctx     context.Context    // nil means not cancellable
	rec     *obs.Recorder      // nil without WithObs
	tr      *trace.Tracer      // nil without WithTrace
	pc      *perfcount.Sampler // nil without WithCounters
	timers  *timer.Set         // nil without WithTimers
	sched   team.Schedule      // loop schedule, Static without WithSchedule

	states []batchState // per-block tallies, reset each Iter
	x      [][]float64  // per-worker vranlc scratch, 2*nk doubles each
	phases []string     // per-worker timer names when profiling
	tm     *team.Team   // team of the current Iter, read by body
	body   func(id int) // hoisted batch-sweep region body
}

// Option configures optional benchmark behaviour.
type Option func(*Benchmark)

// WithContext makes Run cancellable: when ctx expires the team is
// cancelled and every worker stops at its next batch boundary,
// returning a partial (unverifiable) result.
func WithContext(ctx context.Context) Option {
	return func(b *Benchmark) { b.ctx = ctx }
}

// WithObs attaches a runtime-metrics recorder to the run's team.
func WithObs(rec *obs.Recorder) Option { return func(b *Benchmark) { b.rec = rec } }

// WithTrace attaches an execution tracer to the run's team: per-worker
// event timelines (region blocks, barrier and pipeline waits),
// exportable as Chrome/Perfetto JSON — the when-view that complements
// the obs layer's how-much totals.
func WithTrace(tr *trace.Tracer) Option { return func(b *Benchmark) { b.tr = tr } }

// WithCounters attaches a hardware-counter sampler to the run's team:
// per-worker cycles/instructions/cache-miss deltas are charged to pc at
// every parallel region. pc should be sized perfcount.New(threads); nil
// leaves counter sampling disabled.
func WithCounters(pc *perfcount.Sampler) Option { return func(b *Benchmark) { b.pc = pc } }

// WithSchedule selects the team's loop schedule for the batch sweep;
// team.Static (the default) is the paper's block distribution. Batch
// tallies are indexed by static block, not by worker, so the summed
// result is bit-identical under every schedule.
func WithSchedule(s team.Schedule) Option { return func(b *Benchmark) { b.sched = s } }

// WithTimers enables the per-worker phase profile: each worker charges
// its batch loop to its own timer (t_batch/w<id>) on a concurrent set,
// so the profile shows both the per-thread time split and, via lap
// counts, how many batches each worker processed — the per-thread view
// the paper's load-balance analysis is built on.
func WithTimers() Option { return func(b *Benchmark) { b.timers = timer.NewConcurrentSet() } }

// Result reports one EP run.
type Result struct {
	Sx, Sy  float64        // Gaussian deviate sums
	Q       [nq]float64    // annulus counts
	Gc      float64        // total accepted pairs
	Elapsed time.Duration  // wall time of the timed section
	Mops    float64        // millions of Gaussian pairs per second scale
	Verify  *verify.Report // verification outcome
	Timers  *timer.Set     // per-worker batch profile when WithTimers was given
}

// New configures EP for the given class ('S','W','A','B','C') and thread
// count.
func New(class byte, threads int, opts ...Option) (*Benchmark, error) {
	m, ok := classM[class]
	if !ok {
		return nil, fmt.Errorf("ep: unknown class %q", string(class))
	}
	if threads < 1 {
		return nil, fmt.Errorf("ep: threads %d < 1", threads)
	}
	b := &Benchmark{Class: class, m: m, threads: threads}
	for _, o := range opts {
		o(b)
	}
	b.nn = 1 << (b.m - mk)
	// an = a^(2*nk) mod 2^46: mk+1 squarings of a.
	an := amult
	for i := 0; i < mk+1; i++ {
		randdp.Randlc(&an, an)
	}
	b.an = an
	b.states = make([]batchState, threads)
	b.x = make([][]float64, threads)
	for id := range b.x {
		b.x[id] = make([]float64, 2*nk)
	}
	if b.timers != nil {
		b.phases = make([]string, threads)
		for id := range b.phases {
			b.phases[id] = timer.Worker("t_batch", id)
		}
	}
	//npblint:hot per-worker batch sweep, constructed once and reused every run.
	// Tallies accumulate per static block (it.Chunk()), not per worker, so
	// the final sums are bit-identical under every schedule.
	b.body = func(id int) {
		tm := b.tm
		x := b.x[id]
		phase := ""
		if b.timers != nil {
			phase = b.phases[id]
		}
		for it := tm.ReduceBlocks(id, 0, b.nn); it.Next(); {
			st := &b.states[it.Chunk()]
			for kk := it.Lo; kk < it.Hi; kk++ {
				if tm.Cancelled() {
					return
				}
				fault.Maybe("ep.batch")
				if phase != "" {
					b.timers.Start(phase)
				}
				runBatch(kk, b.an, st, x)
				if phase != "" {
					b.timers.Stop(phase)
				}
			}
		}
	}
	return b, nil
}

// Iter runs one steady-state pass over every batch on tm: the whole
// timed section of EP, with no per-pass allocation. Run wraps it;
// internal/allocgate measures it.
func (b *Benchmark) Iter(tm *team.Team) {
	b.tm = tm
	for i := range b.states {
		b.states[i] = batchState{}
	}
	tm.Run(b.body)
}

// Pairs returns the total number of random pairs the configured class
// generates.
func (b *Benchmark) Pairs() float64 { return math.Pow(2, float64(b.m)) }

// batchState is the per-worker accumulation state, padded apart by
// being separate values returned from each worker.
type batchState struct {
	sx, sy float64
	q      [nq]float64
}

// runBatch processes batch index kk (0-based: ep.f iterates k = 1..nn
// with k_offset = -1, so the first batch starts from the raw seed),
// starting from the jumped-ahead seed, and accumulates into st. x is the
// caller-provided scratch of 2*nk doubles.
func runBatch(kk int, an float64, st *batchState, x []float64) {
	t1 := seed
	t2 := an
	// Find the starting seed for batch kk by binary exponentiation over
	// the batch index, exactly as ep.f does.
	for i := 1; i <= 100; i++ {
		ik := kk / 2
		if 2*ik != kk {
			randdp.Randlc(&t1, t2)
		}
		if ik == 0 {
			break
		}
		randdp.Randlc(&t2, t2)
		kk = ik
	}
	randdp.Vranlc(2*nk, &t1, amult, x)

	for i := 0; i < nk; i++ {
		x1 := 2.0*x[2*i] - 1.0
		x2 := 2.0*x[2*i+1] - 1.0
		t := x1*x1 + x2*x2
		if t <= 1.0 {
			t3 := math.Sqrt(-2.0 * math.Log(t) / t)
			g1 := x1 * t3
			g2 := x2 * t3
			l := int(math.Max(math.Abs(g1), math.Abs(g2)))
			st.q[l]++
			st.sx += g1
			st.sy += g2
		}
	}
}

// Run executes the kernel and returns its result.
func (b *Benchmark) Run() Result {
	tm := team.New(b.threads, team.WithRecorder(b.rec), team.WithTracer(b.tr), team.WithCounters(b.pc), team.WithSchedule(b.sched))
	defer tm.Close()
	if b.ctx != nil {
		stop := tm.WatchContext(b.ctx)
		defer stop()
	}

	start := time.Now()
	b.Iter(tm)
	elapsed := time.Since(start)

	var res Result
	res.Elapsed = elapsed
	res.Timers = b.timers
	for id := 0; id < b.threads; id++ {
		res.Sx += b.states[id].sx
		res.Sy += b.states[id].sy
		for l := 0; l < nq; l++ {
			res.Q[l] += b.states[id].q[l]
		}
	}
	for l := 0; l < nq; l++ {
		res.Gc += res.Q[l]
	}
	if s := elapsed.Seconds(); s > 0 {
		res.Mops = b.Pairs() * 1e-6 / s
	}

	rep := &verify.Report{Tier: verify.TierOfficial}
	if ref, ok := reference[b.Class]; ok {
		rep.Add("sx", fault.CorruptFloat("ep.verify", res.Sx), ref[0])
		rep.Add("sy", res.Sy, ref[1])
	} else {
		rep.Tier = verify.TierNone
	}
	res.Verify = rep
	return res
}
