package is

import "fmt"

// Footprint estimates the working-set bytes an IS run of the given
// class and thread count allocates: the key and shuffle arrays
// (2^totalKeysLog2 int32 each), the global density array and one
// density array per thread (2^maxKeyLog2 int32 each). The per-thread
// term is what makes high thread counts of class C heavy — exactly
// what the harness admission guard needs to know before launch.
func Footprint(class byte, threads int) (uint64, error) {
	p, ok := classes[class]
	if !ok {
		return 0, fmt.Errorf("is: unknown class %q", string(class))
	}
	if threads < 1 {
		threads = 1
	}
	numKeys := uint64(1) << p.totalKeysLog2
	maxKey := uint64(1) << p.maxKeyLog2
	keys := 2 * numKeys * 4                    // keys + buff2
	dens := (1 + uint64(threads)) * maxKey * 4 // global + per-thread densities
	return keys + dens, nil
}
